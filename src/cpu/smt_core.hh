/**
 * @file
 * The SMT out-of-order core (Figure 2).
 *
 * Pipeline per cycle: commit (per-thread in-order graduation) -> advance
 * in-flight stream memory operations -> issue from the four queues ->
 * dispatch (decode/rename) -> fetch (policy-selected, up to 2 groups of
 * 4). Mispredicted branches flush the offending thread's younger
 * instructions, restore its rename state and stall its fetch for the
 * redirect penalty.
 *
 * Execution is trace-driven: each thread walks a Program's dynamic
 * instruction stream. Register dependences come from the traces' true
 * dataflow; memory timing comes from the attached MemorySystem; wrong
 * paths after a branch mispredict are charged as flush + redirect bubbles
 * rather than executed (see DESIGN.md, substitutions).
 */

#ifndef MOMSIM_CPU_SMT_CORE_HH
#define MOMSIM_CPU_SMT_CORE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "cpu/branch_predictor.hh"
#include "cpu/core_config.hh"
#include "isa/trace_inst.hh"
#include "mem/hierarchy.hh"
#include "trace/program.hh"

namespace momsim::cpu
{

class SmtCore
{
  public:
    SmtCore(const CoreConfig &cfg, mem::MemorySystem &mem);

    /** Bind (or replace) the program running in hardware context @p tid. */
    void attachProgram(int tid, const trace::Program *prog);

    /** True once the context has fetched and committed its whole trace. */
    bool threadIdle(int tid) const;

    /** Committed equivalent instructions of the current program so far. */
    uint64_t threadCommittedEq(int tid) const;

    /** Advance the machine one cycle. */
    void step();

    uint64_t now() const { return _now; }

    // ---- aggregate metrics ----
    uint64_t committedRecords() const { return _committedRecords; }
    uint64_t committedEq() const { return _committedEq; }

    /** Committed equivalent instructions per cycle. */
    double
    ipc() const
    {
        return _now ? static_cast<double>(_committedEq) / _now : 0.0;
    }

    StatGroup &stats() { return _stats; }
    BranchPredictor &predictor() { return _bpred; }
    const CoreConfig &config() const { return _cfg; }

    /** Dump per-thread pipeline state (debugging aid). */
    void debugDump() const;

  private:
    enum class State : uint8_t
    {
        Empty,
        Dispatched,     ///< waiting in an issue queue
        Executing,      ///< issued; stream memory still expanding
        Done,           ///< result ready at doneCycle
    };

    struct RobEntry
    {
        isa::TraceInst inst;
        uint64_t pos = 0;           ///< absolute position (age within thread)
        uint64_t doneCycle = 0;
        int64_t prod[3] = { -1, -1, -1 };   ///< producer positions
        int64_t prevWriter = -1;    ///< for rename rollback on flush
        State state = State::Empty;
        bool mispredicted = false;
        bool storeDone = false;     ///< scalar store performed at commit
        uint16_t elemsIssued = 0;   ///< stream memory progress
        uint64_t streamReady = 0;   ///< max element completion
    };

    struct FetchedInst
    {
        isa::TraceInst inst;
        bool mispredicted = false;
    };

    struct Thread
    {
        const trace::Program *prog = nullptr;
        size_t cursor = 0;              ///< next trace index to fetch
        uint64_t fetchReady = 0;        ///< icache stall / redirect
        std::deque<FetchedInst> fetchQ;
        std::vector<RobEntry> rob;      ///< circular, capacity = window
        uint64_t head = 0;              ///< oldest in-flight position
        uint64_t tail = 0;              ///< next position to allocate
        int64_t rename[256];            ///< logical reg -> producer pos
        uint64_t committedEq = 0;       ///< for the current program
        int iqCount = 0;                ///< decoded-not-issued (ICOUNT)
        int64_t oqCount = 0;            ///< eq-weighted (OCOUNT)
        bool lastFetchVector = false;   ///< for BALANCE
    };

    struct IqEntry
    {
        int tid;
        uint64_t pos;
    };

    void commitStage();
    void issueStage();
    void streamStage();
    void dispatchStage();
    void fetchStage();

    bool operandsReady(const Thread &t, const RobEntry &e) const;
    void flushThread(int tid, uint64_t branchPos);
    RobEntry &entryAt(Thread &t, uint64_t pos);
    const RobEntry &entryAt(const Thread &t, uint64_t pos) const;
    int physPoolOf(isa::RegRef reg) const;
    std::vector<int> fetchOrder();
    bool vectorPipeEmpty() const;
    void issueFromQueue(std::vector<IqEntry> &queue, int width,
                        isa::QueueKind kind);
    bool tryExecute(int tid, RobEntry &e, isa::QueueKind kind);

    CoreConfig _cfg;
    mem::MemorySystem &_mem;
    BranchPredictor _bpred;

    std::vector<Thread> _threads;
    std::vector<IqEntry> _intQ, _memQ, _fpQ, _simdQ;
    std::vector<IqEntry> _activeStreams;

    // Shared physical register pools: [0]=int, [1]=fp, [2]=simd.
    int _freeRegs[3] = { 0, 0, 0 };

    // Unpipelined / occupied functional units.
    uint64_t _divBusyUntil = 0;
    uint64_t _fdivBusyUntil = 0;
    uint64_t _momFuBusyUntil = 0;

    uint64_t _now = 0;
    uint64_t _committedRecords = 0;
    uint64_t _committedEq = 0;
    int _fetchRotate = 0;
    int _dispatchRotate = 0;
    StatGroup _stats;
};

} // namespace momsim::cpu

#endif // MOMSIM_CPU_SMT_CORE_HH
