/**
 * @file
 * The SMT out-of-order core (Figure 2).
 *
 * Pipeline per cycle: commit (per-thread in-order graduation) -> advance
 * in-flight stream memory operations -> issue from the four queues ->
 * dispatch (decode/rename) -> fetch (policy-selected, up to 2 groups of
 * 4). Mispredicted branches flush the offending thread's younger
 * instructions, restore its rename state and stall its fetch for the
 * redirect penalty.
 *
 * Execution is trace-driven: each thread walks a Program's dynamic
 * instruction stream. Register dependences come from the traces' true
 * dataflow; memory timing comes from the attached MemorySystem; wrong
 * paths after a branch mispredict are charged as flush + redirect bubbles
 * rather than executed (see DESIGN.md, substitutions).
 *
 * Simulation-throughput machinery (results are identical to the naive
 * per-cycle walk; the kernel_equivalence CTest gate holds it to the
 * pre-refactor rows byte for byte):
 *
 *  - Readiness tracking: instead of rescanning every issue-queue entry's
 *    producers each cycle, each ROB entry carries a pending-producer
 *    count and a ready cycle. Producers keep a wakeup list of waiting
 *    consumers; completing an instruction decrements its consumers'
 *    counts and relaxes their ready cycles, so the issue scan is O(1)
 *    per entry. Wakeup records are validated by a per-entry generation
 *    tag, which makes records from squashed (flushed) consumers inert
 *    even after their ROB slot is recycled.
 *
 *  - Power-of-two ROB storage: the circular reorder buffer is sized to
 *    the next power of two above the configured window so position
 *    lookup is a mask, not a modulo. Logical capacity is still exactly
 *    windowPerThread.
 *
 *  - Idle fast-forward: when no stage can make progress this cycle,
 *    step() jumps straight to the next cycle at which anything can
 *    change (earliest completion, fetch redirect, queue-entry ready
 *    time, or a memory-structure event from
 *    MemorySystem::nextEventCycle), advancing the round-robin rotations
 *    and per-cycle stall statistics exactly as the skipped no-op cycles
 *    would have.
 */

#ifndef MOMSIM_CPU_SMT_CORE_HH
#define MOMSIM_CPU_SMT_CORE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bits.hh"
#include "common/stats.hh"
#include "cpu/branch_predictor.hh"
#include "cpu/core_config.hh"
#include "isa/trace_inst.hh"
#include "mem/hierarchy.hh"
#include "trace/program.hh"

namespace momsim::cpu
{

class SmtCore
{
  public:
    SmtCore(const CoreConfig &cfg, mem::MemorySystem &mem);

    /** Bind (or replace) the program running in hardware context @p tid. */
    void attachProgram(int tid, const trace::Program *prog);

    /** True once the context has fetched and committed its whole trace. */
    bool threadIdle(int tid) const;

    /** Committed equivalent instructions of the current program so far. */
    uint64_t threadCommittedEq(int tid) const;

    /**
     * Advance the machine one cycle — or, when no stage can make
     * progress, fast-forward to the next cycle at which one can (never
     * past @p horizon, so a caller's cycle limit stays exact).
     */
    void step(uint64_t horizon = ~0ull);

    uint64_t now() const { return _now; }

    // ---- aggregate metrics ----
    uint64_t committedRecords() const { return _committedRecords; }
    uint64_t committedEq() const { return _committedEq; }

    /** Committed equivalent instructions per cycle. */
    double
    ipc() const
    {
        return _now ? static_cast<double>(_committedEq) / _now : 0.0;
    }

    StatGroup &stats() { return _stats; }
    BranchPredictor &predictor() { return _bpred; }
    const CoreConfig &config() const { return _cfg; }

    /** Dump per-thread pipeline state (debugging aid). */
    void debugDump() const;

  private:
    enum class State : uint8_t
    {
        Empty,
        Dispatched,     ///< waiting in an issue queue
        Executing,      ///< issued; stream memory still expanding
        Done,           ///< result ready at doneCycle
    };

    /** One wakeup registration: a consumer waiting on a producer. */
    struct Waiter
    {
        uint64_t pos;       ///< consumer ROB position
        uint32_t gen;       ///< consumer generation at registration
    };

    /**
     * Field order is deliberate: the scheduling fields every per-cycle
     * scan touches (position/identity, completion and readiness state)
     * come first so they share one cache line; the instruction payload
     * and rename/flush bookkeeping follow.
     */
    struct RobEntry
    {
        uint64_t pos = 0;           ///< absolute position (age within thread)
        uint64_t doneCycle = 0;
        // ---- readiness tracking ----
        uint64_t readyCycle = 0;    ///< max doneCycle of resolved producers
        int pendingProducers = 0;   ///< producers not yet executed
        uint32_t gen = 0;           ///< bumped on (re)allocation
        uint8_t qKind = 0;          ///< isa::QueueKind, fixed at dispatch
        State state = State::Empty;
        bool mispredicted = false;
        bool storeDone = false;     ///< scalar store performed at commit
        uint16_t elemsIssued = 0;   ///< stream memory progress
        uint64_t streamReady = 0;   ///< max element completion
        int64_t prod[3] = { -1, -1, -1 };   ///< producer positions
        int64_t prevWriter = -1;    ///< for rename rollback on flush
        const isa::TraceInst *inst = nullptr;   ///< into the thread's trace
        std::vector<Waiter> waiters;    ///< consumers to wake when Done
    };

    /**
     * Both the fetch queue and the ROB reference trace instructions by
     * pointer into the (immutable) Program rather than by value: a
     * thread's ROB position equals its trace index, so the pointed-at
     * record outlives the entry, and the pipeline structures shrink to
     * a fraction of the memory traffic per dispatched instruction.
     */
    struct FetchedInst
    {
        const isa::TraceInst *inst = nullptr;
        bool mispredicted = false;
    };

    /**
     * Fixed-capacity ring buffer for the per-thread fetch queue. The
     * queue is bounded by fetchQueueDepth and lives on the kernel's
     * hottest path (one push per fetched instruction, one pop per
     * dispatched one), where std::deque's segmented bookkeeping is
     * measurable overhead.
     */
    class FetchRing
    {
      public:
        void
        init(size_t capacity)
        {
            _buf.resize(pow2Ceil(capacity));
            _mask = _buf.size() - 1;
            _head = _tail = 0;
        }

        bool empty() const { return _head == _tail; }
        size_t size() const { return _tail - _head; }
        const FetchedInst &front() const { return _buf[_head & _mask]; }
        void push_back(const FetchedInst &f) { _buf[_tail++ & _mask] = f; }
        void pop_front() { ++_head; }
        void clear() { _head = _tail = 0; }

      private:
        std::vector<FetchedInst> _buf;
        uint64_t _mask = 0;
        uint64_t _head = 0;
        uint64_t _tail = 0;
    };

    /**
     * The 2KB rename table sits last on purpose: the per-cycle
     * commit/dispatch/fetch scans walk every thread's control fields,
     * which this layout keeps within the struct's first cache lines.
     */
    struct Thread
    {
        const trace::Program *prog = nullptr;
        size_t cursor = 0;              ///< next trace index to fetch
        uint64_t fetchReady = 0;        ///< icache stall / redirect
        uint64_t robMask = 0;           ///< rob.size() - 1
        uint64_t head = 0;              ///< oldest in-flight position
        uint64_t tail = 0;              ///< next position to allocate
        uint64_t committedEq = 0;       ///< for the current program
        uint32_t genTick = 0;           ///< generation source for entries
        int iqCount = 0;                ///< decoded-not-issued (ICOUNT)
        int64_t oqCount = 0;            ///< eq-weighted (OCOUNT)
        bool lastFetchVector = false;   ///< for BALANCE
        FetchRing fetchQ;
        std::vector<RobEntry> rob;      ///< circular, pow2-rounded storage
        int64_t rename[256];            ///< logical reg -> producer pos
    };

    /**
     * Issue-queue/stream-list reference. Carries the entry pointer
     * (ROB storage never moves after construction) so queue scans
     * check readiness without touching the Thread indirection; tid and
     * pos stay for flush scrubbing and staleness validation.
     */
    struct IqEntry
    {
        RobEntry *entry;
        uint64_t pos;
        int tid;
    };

    /** Why (or whether) the head of a thread's fetch queue can't rename. */
    enum class DispatchGate : uint8_t
    {
        Ok,
        RobFull,
        IqFull,
        RegFull,
    };

    void commitStage();
    void issueStage();
    void streamStage();
    void dispatchStage();
    void fetchStage();

    void flushThread(int tid, uint64_t branchPos);
    RobEntry &entryAt(Thread &t, uint64_t pos);
    const RobEntry &entryAt(const Thread &t, uint64_t pos) const;
    int physPoolOf(isa::RegRef reg) const;
    const std::vector<int> &fetchOrder();
    bool vectorPipeEmpty() const;
    void issueFromQueue(std::vector<IqEntry> &queue, int width,
                        isa::QueueKind kind);
    bool tryExecute(int tid, RobEntry &e, isa::QueueKind kind);

    /** Resolve producers of a freshly allocated entry; register waiters. */
    void trackProducers(Thread &t, RobEntry &e);
    /** Producer @p e just reached Done: wake registered consumers. */
    void wakeDependents(Thread &t, RobEntry &e);
    /** Entry @p e became ready: lower its queue's earliest-ready bound. */
    void relaxQueueBound(const RobEntry &e);
    /**
     * The structural gate dispatch would hit for thread @p t's head.
     * On Ok, @p kindOut (when given) receives the target queue kind so
     * the dispatcher doesn't re-derive it.
     */
    DispatchGate dispatchGate(const Thread &t, const FetchedInst &f,
                              isa::QueueKind *kindOut = nullptr) const;

    /**
     * Earliest cycle >= _now at which any stage can make progress (_now
     * itself when one can right now; ~0ull when nothing is scheduled).
     */
    uint64_t nextEventCycle() const;
    /** Jump to @p target, accounting the skipped no-op cycles. */
    void fastForwardTo(uint64_t target);

    CoreConfig _cfg;
    mem::MemorySystem &_mem;
    BranchPredictor _bpred;

    std::vector<Thread> _threads;
    std::vector<IqEntry> _intQ, _memQ, _fpQ, _simdQ;
    std::vector<IqEntry> _activeStreams;

    /**
     * Per-queue lower bound (indexed by QueueKind) on the earliest
     * cycle any entry can be ready: issueFromQueue skips its whole scan
     * while the bound is in the future. Lowered when a ready entry
     * dispatches or a wakeup clears an entry's last pending producer;
     * recomputed exactly from the surviving entries after each scan. A
     * too-low bound only costs a no-op scan, never correctness.
     */
    uint64_t _queueMinReady[4] = { ~0ull, ~0ull, ~0ull, ~0ull };

    // Shared physical register pools: [0]=int, [1]=fp, [2]=simd.
    int _freeRegs[3] = { 0, 0, 0 };

    // Unpipelined / occupied functional units.
    uint64_t _divBusyUntil = 0;
    uint64_t _fdivBusyUntil = 0;
    uint64_t _momFuBusyUntil = 0;

    uint64_t _now = 0;
    uint64_t _committedRecords = 0;
    uint64_t _committedEq = 0;
    int _fetchRotate = 0;
    int _dispatchRotate = 0;
    StatGroup _stats;

    // Per-cycle scratch (a member so the hot loop never allocates).
    std::vector<int> _fetchOrderBuf;

    // Hot-path counters, cached once so per-event accounting is an
    // increment instead of a string lookup (StatGroup counter
    // references are stable for the group's lifetime).
    uint64_t *_ctrCommits = nullptr;
    uint64_t *_ctrCommitInt = nullptr;
    uint64_t *_ctrCommitFp = nullptr;
    uint64_t *_ctrCommitSimd = nullptr;
    uint64_t *_ctrCommitMem = nullptr;
    uint64_t *_ctrIssued = nullptr;
    uint64_t *_ctrDispatched = nullptr;
    uint64_t *_ctrFetched = nullptr;
    uint64_t *_ctrCondBranches = nullptr;
    uint64_t *_ctrRobFullStalls = nullptr;
    uint64_t *_ctrIqFullStalls = nullptr;
    uint64_t *_ctrRegFullStalls = nullptr;
    uint64_t *_ctrIdleCyclesSkipped = nullptr;
    uint64_t *_ctrCommitStoreStalls = nullptr;
    uint64_t *_ctrMispredicts = nullptr;
    uint64_t *_ctrFlushes = nullptr;
    uint64_t *_ctrSquashed = nullptr;
    uint64_t *_ctrIfetchRejected = nullptr;
    uint64_t *_ctrIcacheMissStalls = nullptr;

    /**
     * Set when the last stage pass made no visible progress; gates the
     * nextEventCycle() scan so active cycles never pay for it. Purely a
     * scheduling heuristic — results are identical with or without it.
     */
    bool _probablyIdle = false;
};

} // namespace momsim::cpu

#endif // MOMSIM_CPU_SMT_CORE_HH
