/**
 * @file
 * The SMT out-of-order core (Figure 2).
 *
 * Pipeline per cycle: commit (per-thread in-order graduation) -> advance
 * in-flight stream memory operations -> issue from the four queues ->
 * dispatch (decode/rename) -> fetch (policy-selected, up to 2 groups of
 * 4). Mispredicted branches flush the offending thread's younger
 * instructions, restore its rename state and stall its fetch for the
 * redirect penalty.
 *
 * Execution is trace-driven: each thread walks a Program's dynamic
 * instruction stream. Register dependences come from the traces' true
 * dataflow; memory timing comes from the attached MemorySystem; wrong
 * paths after a branch mispredict are charged as flush + redirect bubbles
 * rather than executed (see DESIGN.md, substitutions).
 *
 * Simulation-throughput machinery (results are identical to the naive
 * per-cycle walk; the kernel_equivalence CTest gate holds it to the
 * pre-refactor rows byte for byte):
 *
 *  - Structure-of-arrays ROB storage: the scheduling state every
 *    per-cycle scan touches lives in flat arrays — a position column
 *    and a 16-byte hot record per slot pairing a packed metadata word
 *    (generation tag, pending-producer count, queue kind, state) with
 *    a single state-dependent timestamp (ready cycle while waiting,
 *    done cycle once complete) — one slot per (thread, window entry),
 *    all carved from a single core-owned arena together with the
 *    per-thread rename tables and fetch-queue rings. Queue entries
 *    validate by generation tag, so a scan's entire readiness test is
 *    one 16-byte load per entry; a dispatch initializes the whole
 *    record with two stores. The wide per-instruction payload (trace
 *    pointer, producer positions, rename rollback, stream progress)
 *    sits in a cold side array touched once per dispatch/issue/commit.
 *
 *  - Readiness tracking: instead of rescanning every issue-queue entry's
 *    producers each cycle, each ROB slot carries a pending-producer
 *    count and a ready cycle. Producers keep a wakeup list of waiting
 *    consumers; completing an instruction decrements its consumers'
 *    counts and relaxes their ready cycles, so the issue scan is O(1)
 *    per entry. Wakeup records are validated by a per-slot generation
 *    tag, which makes records from squashed (flushed) consumers inert
 *    even after their ROB slot is recycled.
 *
 *  - Power-of-two ROB storage: the circular reorder buffer is sized to
 *    the next power of two above the configured window so position
 *    lookup is a mask, not a modulo. Logical capacity is still exactly
 *    windowPerThread.
 *
 *  - Idle fast-forward: when no stage can make progress this cycle,
 *    step() jumps straight to the next cycle at which anything can
 *    change (earliest completion, fetch redirect, queue-entry ready
 *    time, or a memory-structure event from
 *    MemorySystem::nextEventCycle), advancing the round-robin rotations
 *    and per-cycle stall statistics exactly as the skipped no-op cycles
 *    would have.
 */

#ifndef MOMSIM_CPU_SMT_CORE_HH
#define MOMSIM_CPU_SMT_CORE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bits.hh"
#include "common/stats.hh"
#include "cpu/branch_predictor.hh"
#include "cpu/core_config.hh"
#include "isa/trace_inst.hh"
#include "mem/hierarchy.hh"
#include "trace/program.hh"

namespace momsim::cpu
{

class SmtCore
{
  public:
    SmtCore(const CoreConfig &cfg, mem::MemorySystem &mem);

    /** Bind (or replace) the program running in hardware context @p tid. */
    void attachProgram(int tid, const trace::Program *prog);

    /** True once the context has fetched and committed its whole trace. */
    bool threadIdle(int tid) const;

    /** Committed equivalent instructions of the current program so far. */
    uint64_t threadCommittedEq(int tid) const;

    /**
     * Advance the machine one cycle — or, when no stage can make
     * progress, fast-forward to the next cycle at which one can (never
     * past @p horizon, so a caller's cycle limit stays exact).
     */
    void step(uint64_t horizon = ~0ull);

    uint64_t now() const { return _now; }

    // ---- aggregate metrics ----
    uint64_t committedRecords() const { return _committedRecords; }
    uint64_t committedEq() const { return _committedEq; }

    /** Committed equivalent instructions per cycle. */
    double
    ipc() const
    {
        return _now ? static_cast<double>(_committedEq) / _now : 0.0;
    }

    StatGroup &stats() { return _stats; }
    BranchPredictor &predictor() { return _bpred; }
    const CoreConfig &config() const { return _cfg; }

    /** Dump per-thread pipeline state (debugging aid). */
    void debugDump() const;

    /**
     * Cross-check the structure-of-arrays invariants (test hook; see
     * tests/test_kernel.cc). Returns an empty string when consistent,
     * else a description of the first violated invariant. Checked:
     * every in-flight position maps to a slot whose position column
     * holds the position (live) or the squash sentinel; live slots are
     * never State::Empty; queue/stream references resolve to their
     * slot; per-thread queue occupancy counters match the queues;
     * waiter generation tags never run ahead of the owning thread.
     */
    std::string debugLayoutIssue() const;

  private:
    enum class State : uint8_t
    {
        Empty,
        Dispatched,     ///< waiting in an issue queue
        Executing,      ///< issued; stream memory still expanding
        Done,           ///< result ready at doneCycle
    };

    /** One wakeup registration: a consumer waiting on a producer. */
    struct Waiter
    {
        uint64_t pos;       ///< consumer ROB position
        uint64_t gen;       ///< consumer generation at registration
    };

    /**
     * Per-slot payload the per-cycle scans never touch: read/written
     * once per dispatch, issue or commit of that instruction. The hot
     * scheduling state lives in the flat columns (_colPos etc.).
     */
    struct RobCold
    {
        const isa::TraceInst *inst = nullptr;   ///< into the thread's trace
        int64_t prod[3] = { -1, -1, -1 };       ///< producer positions
        int64_t prevWriter = -1;    ///< for rename rollback on flush
        uint64_t streamReady = 0;   ///< max element completion
        uint16_t elemsIssued = 0;   ///< stream memory progress
        bool mispredicted = false;
        bool storeDone = false;     ///< scalar store performed at commit
    };

    /**
     * Both the fetch queue and the ROB reference trace instructions by
     * pointer into the (immutable) Program rather than by value: a
     * thread's ROB position equals its trace index, so the pointed-at
     * record outlives the entry, and the pipeline structures shrink to
     * a fraction of the memory traffic per dispatched instruction.
     */
    struct FetchedInst
    {
        const isa::TraceInst *inst = nullptr;
        bool mispredicted = false;
    };

    /**
     * Fixed-capacity ring buffer for the per-thread fetch queue. The
     * queue is bounded by fetchQueueDepth and lives on the kernel's
     * hottest path (one push per fetched instruction, one pop per
     * dispatched one). Storage is a caller-provided span carved from
     * the core arena so every thread's ring sits in one allocation.
     */
    class FetchRing
    {
      public:
        void
        init(FetchedInst *storage, size_t capacityPow2)
        {
            _buf = storage;
            _mask = capacityPow2 - 1;
            _head = _tail = 0;
        }

        bool empty() const { return _head == _tail; }
        size_t size() const { return _tail - _head; }
        const FetchedInst &front() const { return _buf[_head & _mask]; }
        void push_back(const FetchedInst &f) { _buf[_tail++ & _mask] = f; }
        void pop_front() { ++_head; }
        void clear() { _head = _tail = 0; }

      private:
        FetchedInst *_buf = nullptr;
        uint64_t _mask = 0;
        uint64_t _head = 0;
        uint64_t _tail = 0;
    };

    /**
     * Per-thread control state. The wide per-entry structures (ROB
     * columns, rename table, fetch-ring storage) live in the core
     * arena; the thread carries its slot base and pointers into it, so
     * the per-cycle commit/dispatch/fetch scans walking every thread
     * stay within a few cache lines per thread.
     */
    struct Thread
    {
        const trace::Program *prog = nullptr;
        size_t cursor = 0;              ///< next trace index to fetch
        uint64_t head = 0;              ///< oldest in-flight position
        uint64_t tail = 0;              ///< next position to allocate
        uint64_t fetchReady = 0;        ///< icache stall / redirect
        uint64_t committedEq = 0;       ///< for the current program
        uint64_t genTick = 0;           ///< generation source for entries
        uint32_t slotBase = 0;          ///< first column slot of this thread
        int iqCount = 0;                ///< decoded-not-issued (ICOUNT)
        int64_t oqCount = 0;            ///< eq-weighted (OCOUNT)
        bool lastFetchVector = false;   ///< for BALANCE
        FetchRing fetchQ;
        int64_t *rename = nullptr;      ///< logical reg -> producer pos (256)
    };

    /**
     * Issue-queue/stream-list reference. Carries the flat column slot
     * (slots never move) plus the allocation's generation tag, so a
     * scan validates the entry (generation + state) and reads its
     * readiness from the slot's single 16-byte hot record — no Thread
     * indirection, no position column. tid and pos stay for flush
     * scrubbing and the debug layout invariants.
     */
    struct IqEntry
    {
        uint64_t pos;
        uint64_t gen;
        uint32_t slot;
        int32_t tid;
    };

    /** Why (or whether) the head of a thread's fetch queue can't rename. */
    enum class DispatchGate : uint8_t
    {
        Ok,
        RobFull,
        IqFull,
        RegFull,
    };

    void commitStage();
    void issueStage();
    void streamStage();
    void dispatchStage();
    void fetchStage();

    void flushThread(int tid, uint64_t branchPos);
    /** Column slot of @p pos within thread @p t (pos may be in flight). */
    size_t
    slotOf(const Thread &t, uint64_t pos) const
    {
        return t.slotBase + static_cast<size_t>(pos & _robMask);
    }

    // ---- per-slot hot record: the two words every scan reads ----
    //
    // `meta` packs [63:16] generation tag, [15:8] pending producers
    // (<= 3), [7:4] isa::QueueKind, [3:0] State. `when` is the slot's
    // scheduling timestamp, interpreted by state: the operand-ready
    // cycle while Dispatched, the completion cycle once Done — the two
    // are never needed at the same time, so they share one word. Pairing
    // the words keeps a scan's entire readiness test (staleness, state,
    // pending count, cycle comparison) inside a single 16-byte load.
    struct SlotHot
    {
        uint64_t when;      ///< ready cycle (Dispatched) / done cycle (Done)
        uint64_t meta;      ///< packed gen/pending/qkind/state
    };

    static constexpr uint64_t kMetaStateMask = 0xfull;
    static constexpr int kMetaQKindShift = 4;
    static constexpr int kMetaPendShift = 8;
    static constexpr uint64_t kMetaPendOne = 1ull << kMetaPendShift;
    static constexpr int kMetaGenShift = 16;
    /// 48-bit generation space: unique per allocation for any run short
    /// of 2^48 dispatches per thread (centuries of simulated time).
    static constexpr uint64_t kMetaGenMask = ~0ull >> kMetaGenShift;

    static State
    metaState(uint64_t m)
    {
        return static_cast<State>(m & kMetaStateMask);
    }
    static int
    metaQKind(uint64_t m)
    {
        return static_cast<int>((m >> kMetaQKindShift) & 0xf);
    }
    static int
    metaPending(uint64_t m)
    {
        return static_cast<int>((m >> kMetaPendShift) & 0xff);
    }
    static uint64_t
    metaGen(uint64_t m)
    {
        return m >> kMetaGenShift;
    }
    static uint64_t
    metaPack(uint64_t gen, int pending, isa::QueueKind kind, State st)
    {
        return (gen << kMetaGenShift) |
               (static_cast<uint64_t>(pending) << kMetaPendShift) |
               (static_cast<uint64_t>(kind) << kMetaQKindShift) |
               static_cast<uint64_t>(st);
    }
    /** Rewrite only the state field of slot @p s. */
    void
    setMetaState(size_t s, State st)
    {
        _hot[s].meta = (_hot[s].meta & ~kMetaStateMask) |
                       static_cast<uint64_t>(st);
    }
    int physPoolOf(isa::RegRef reg) const;
    const std::vector<int> &fetchOrder();
    bool vectorPipeEmpty() const;
    void issueFromQueue(std::vector<IqEntry> &queue, int width,
                        isa::QueueKind kind);
    bool tryExecute(int tid, size_t slot, isa::QueueKind kind);

    /**
     * Resolve producers of a freshly allocated slot: set its ready
     * column, register waiters (tagged @p pos / @p gen) on unresolved
     * producers, and return the pending-producer count for the
     * dispatcher's metadata pack.
     */
    int trackProducers(Thread &t, size_t slot, uint64_t pos, uint64_t gen);
    /** Producer @p slot just reached Done: wake registered consumers. */
    void wakeDependents(Thread &t, size_t slot);
    /** Slot @p slot became ready: lower its queue's earliest-ready bound. */
    void
    relaxQueueBound(size_t slot)
    {
        const SlotHot h = _hot[slot];
        uint64_t &bound = _queueMinReady[metaQKind(h.meta)];
        if (h.when < bound)
            bound = h.when;
    }
    /**
     * The structural gate dispatch would hit for thread @p t's head.
     * On Ok, @p kindOut (when given) receives the target queue kind so
     * the dispatcher doesn't re-derive it.
     */
    DispatchGate dispatchGate(const Thread &t, const FetchedInst &f,
                              isa::QueueKind *kindOut = nullptr) const;

    /**
     * Earliest cycle >= _now at which any stage can make progress (_now
     * itself when one can right now; ~0ull when nothing is scheduled).
     */
    uint64_t nextEventCycle() const;
    /** Jump to @p target, accounting the skipped no-op cycles. */
    void fastForwardTo(uint64_t target);

    CoreConfig _cfg;
    mem::MemorySystem &_mem;
    BranchPredictor _bpred;

    std::vector<Thread> _threads;
    std::vector<IqEntry> _intQ, _memQ, _fpQ, _simdQ;
    std::vector<IqEntry> _activeStreams;

    // ---- structure-of-arrays ROB state ----
    //
    // One slot per (thread, window entry): slot = thread.slotBase +
    // (pos & _robMask). The hot scheduling columns below plus every
    // thread's rename table and fetch-ring buffer are carved from
    // _arenaStore, one contiguous cache-aligned allocation, so a
    // simulation's per-cycle working set is dense and prefetchable.
    std::unique_ptr<std::byte[]> _arenaStore;
    uint64_t *_colPos = nullptr;    ///< absolute position, ~0ull = squashed
    SlotHot *_hot = nullptr;        ///< when + meta, see SlotHot
    uint64_t _robMask = 0;          ///< per-thread window storage mask
    size_t _numSlots = 0;
    // Cold payload and wakeup lists, parallel to the columns. Waiter
    // vectors are recycled with the slot so their capacity survives.
    std::vector<RobCold> _cold;
    std::vector<std::vector<Waiter>> _waiters;

    /**
     * Per-queue lower bound (indexed by QueueKind) on the earliest
     * cycle any entry can be ready: issueFromQueue skips its whole scan
     * while the bound is in the future. Lowered when a ready entry
     * dispatches or a wakeup clears an entry's last pending producer;
     * recomputed exactly from the surviving entries after each scan. A
     * too-low bound only costs a no-op scan, never correctness.
     */
    uint64_t _queueMinReady[4] = { ~0ull, ~0ull, ~0ull, ~0ull };

    // Shared physical register pools: [0]=int, [1]=fp, [2]=simd.
    int _freeRegs[3] = { 0, 0, 0 };

    // Unpipelined / occupied functional units.
    uint64_t _divBusyUntil = 0;
    uint64_t _fdivBusyUntil = 0;
    uint64_t _momFuBusyUntil = 0;

    uint64_t _now = 0;
    uint64_t _committedRecords = 0;
    uint64_t _committedEq = 0;
    int _fetchRotate = 0;
    int _dispatchRotate = 0;
    StatGroup _stats;

    // Per-cycle scratch (a member so the hot loop never allocates).
    std::vector<int> _fetchOrderBuf;

    // Hot-path counters, resolved to stable StatIds once so per-event
    // accounting is an indexed increment instead of a string lookup.
    StatId _ctrCommits = 0;
    StatId _ctrCommitInt = 0;
    StatId _ctrCommitFp = 0;
    StatId _ctrCommitSimd = 0;
    StatId _ctrCommitMem = 0;
    StatId _ctrIssued = 0;
    StatId _ctrDispatched = 0;
    StatId _ctrFetched = 0;
    StatId _ctrCondBranches = 0;
    StatId _ctrRobFullStalls = 0;
    StatId _ctrIqFullStalls = 0;
    StatId _ctrRegFullStalls = 0;
    StatId _ctrIdleCyclesSkipped = 0;
    StatId _ctrCommitStoreStalls = 0;
    StatId _ctrMispredicts = 0;
    StatId _ctrFlushes = 0;
    StatId _ctrSquashed = 0;
    StatId _ctrIfetchRejected = 0;
    StatId _ctrIcacheMissStalls = 0;

    /**
     * Set when the last stage pass made no visible progress; gates the
     * nextEventCycle() scan so active cycles never pay for it. Purely a
     * scheduling heuristic — results are identical with or without it.
     */
    bool _probablyIdle = false;
};

} // namespace momsim::cpu

#endif // MOMSIM_CPU_SMT_CORE_HH
