/**
 * @file
 * Gshare branch predictor with per-thread histories over shared tables.
 *
 * Sharing the pattern-history table across threads deliberately exposes
 * inter-thread aliasing, one of the classic SMT effects the paper's
 * related work highlights. Branch targets are modelled as precise (the
 * trace knows them), so only direction prediction matters.
 */

#ifndef MOMSIM_CPU_BRANCH_PREDICTOR_HH
#define MOMSIM_CPU_BRANCH_PREDICTOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hh"

namespace momsim::cpu
{

class BranchPredictor
{
  public:
    /** @param tableBits log2 of the counter-table size. */
    explicit BranchPredictor(int tableBits = 12, int historyBits = 8)
        : _tableBits(tableBits),
          _historyBits(historyBits),
          _counters(static_cast<size_t>(1) << tableBits, 2),
          _stats("bpred")
    {
        _history.fill(0);
        // Cached: update() runs once per fetched conditional branch and
        // must not do string-keyed lookups there.
        _ctrUpdates = _stats.id("updates");
        _ctrTaken = _stats.id("taken");
        _ctrNotTaken = _stats.id("notTaken");
    }

    /** Predict the direction of the branch at @p pc for thread @p tid. */
    bool
    predict(int tid, uint64_t pc) const
    {
        return _counters[index(tid, pc)] >= 2;
    }

    /** Train with the actual outcome and advance the thread history. */
    void
    update(int tid, uint64_t pc, bool taken)
    {
        uint8_t &ctr = _counters[index(tid, pc)];
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
        uint32_t mask = (1u << _historyBits) - 1;
        _history[static_cast<size_t>(tid)] =
            ((_history[static_cast<size_t>(tid)] << 1) | (taken ? 1 : 0)) &
            mask;
        _stats.at(_ctrUpdates) += 1;
        _stats.at(taken ? _ctrTaken : _ctrNotTaken) += 1;
    }

    StatGroup &stats() { return _stats; }

  private:
    size_t
    index(int tid, uint64_t pc) const
    {
        uint64_t h = _history[static_cast<size_t>(tid)];
        uint64_t idx = ((pc >> 2) ^ h) & ((1ull << _tableBits) - 1);
        return static_cast<size_t>(idx);
    }

    int _tableBits;
    int _historyBits;
    std::vector<uint8_t> _counters;
    std::array<uint32_t, 16> _history{};
    StatGroup _stats;
    StatId _ctrUpdates = 0;
    StatId _ctrTaken = 0;
    StatId _ctrNotTaken = 0;
};

} // namespace momsim::cpu

#endif // MOMSIM_CPU_BRANCH_PREDICTOR_HH
