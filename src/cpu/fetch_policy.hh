/**
 * @file
 * The four fetch-selection policies of Section 5.3.
 *
 *  ROUND_ROBIN  classic rotation among ready threads.
 *  ICOUNT       Tullsen's policy: prioritize threads with the fewest
 *               instructions decoded but not yet issued.
 *  OCOUNT       ICOUNT extended with the Stream Length register: stream
 *               instructions weigh as their remaining element count, so
 *               a thread with long in-flight streams yields the front end.
 *  BALANCE      mix scalar and vector fetch: when the vector pipeline is
 *               empty, prefer threads that last fetched vector work;
 *               otherwise prefer threads that did not.
 */

#ifndef MOMSIM_CPU_FETCH_POLICY_HH
#define MOMSIM_CPU_FETCH_POLICY_HH

#include <cstring>

namespace momsim::cpu
{

enum class FetchPolicy
{
    RoundRobin,
    ICount,
    OCount,
    Balance,
};

inline const char *
toString(FetchPolicy p)
{
    switch (p) {
      case FetchPolicy::RoundRobin: return "RR";
      case FetchPolicy::ICount:     return "IC";
      case FetchPolicy::OCount:     return "OC";
      case FetchPolicy::Balance:    return "BL";
    }
    return "?";
}

/** Inverse of toString(); false when @p s names no policy. */
inline bool
fromString(const char *s, FetchPolicy &out)
{
    if (std::strcmp(s, "RR") == 0) {
        out = FetchPolicy::RoundRobin;
        return true;
    }
    if (std::strcmp(s, "IC") == 0) {
        out = FetchPolicy::ICount;
        return true;
    }
    if (std::strcmp(s, "OC") == 0) {
        out = FetchPolicy::OCount;
        return true;
    }
    if (std::strcmp(s, "BL") == 0) {
        out = FetchPolicy::Balance;
        return true;
    }
    return false;
}

} // namespace momsim::cpu

#endif // MOMSIM_CPU_FETCH_POLICY_HH
