#include "cpu/smt_core.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace momsim::cpu
{

using isa::OpClass;
using isa::QueueKind;
using isa::RegClass;

CoreConfig
CoreConfig::preset(int threads, isa::SimdIsa simd, FetchPolicy policy)
{
    CoreConfig cfg;
    cfg.numThreads = threads;
    cfg.simd = simd;
    cfg.fetchPolicy = policy;

    // Near-saturation sizes from the table1_saturation sweep.
    switch (threads) {
      case 1:
        cfg.windowPerThread = 64;
        cfg.intQueue = 16;
        cfg.memQueue = 16;
        cfg.fpQueue = 12;
        cfg.simdQueue = 12;
        break;
      case 2:
        cfg.windowPerThread = 64;
        cfg.intQueue = 24;
        cfg.memQueue = 24;
        cfg.fpQueue = 16;
        cfg.simdQueue = 16;
        break;
      case 4:
        cfg.windowPerThread = 48;
        cfg.intQueue = 32;
        cfg.memQueue = 32;
        cfg.fpQueue = 24;
        cfg.simdQueue = 24;
        break;
      default:
        cfg.windowPerThread = 40;
        cfg.intQueue = 48;
        cfg.memQueue = 48;
        cfg.fpQueue = 32;
        cfg.simdQueue = 32;
        break;
    }

    cfg.intPhysRegs = 32 * threads + 64;
    cfg.fpPhysRegs = 32 * threads + 32;
    if (simd == isa::SimdIsa::Mmx) {
        cfg.simdPhysRegs = 32 * threads + 32;
        cfg.simdIssue = 2;
    } else {
        // 16 stream registers + 2 accumulators per thread, plus slack.
        cfg.simdPhysRegs = 18 * threads + 12;
        cfg.simdIssue = 1;
    }
    return cfg;
}

SmtCore::SmtCore(const CoreConfig &cfg, mem::MemorySystem &mem)
    : _cfg(cfg), _mem(mem), _threads(cfg.numThreads), _stats("core")
{
    // Checked unconditionally (not via MOMSIM_ASSERT, which Release
    // compiles away): the per-cycle commit/dispatch rounds use
    // 8-slot stack arrays sized to this bound, so an oversized config
    // must fail loudly here rather than corrupt the stack later.
    if (cfg.numThreads < 1 || cfg.numThreads > 8)
        panic(strfmt("numThreads=%d outside the supported 1..8 hardware "
                     "contexts", cfg.numThreads));

    // Structure-of-arrays ROB state: one arena carries the hot columns
    // for every (thread, window slot), the per-thread rename tables and
    // the fetch-ring buffers. Storage per thread is rounded up to a
    // power of two so position lookup is a mask; the logical capacity
    // stays exactly windowPerThread (dispatch checks tail - head
    // against the configured window).
    uint64_t robSize = pow2Ceil(static_cast<uint64_t>(cfg.windowPerThread));
    _robMask = robSize - 1;
    _numSlots = static_cast<size_t>(cfg.numThreads) *
                static_cast<size_t>(robSize);
    size_t fqCap = static_cast<size_t>(
        pow2Ceil(static_cast<uint64_t>(cfg.fetchQueueDepth)));

    size_t off = 0;
    auto carve = [&off](size_t bytes) {
        size_t at = off;
        off = (off + bytes + 63) & ~static_cast<size_t>(63);
        return at;
    };
    size_t oPos = carve(_numSlots * sizeof(uint64_t));
    size_t oHot = carve(_numSlots * sizeof(SlotHot));
    size_t oRename = carve(static_cast<size_t>(cfg.numThreads) * 256 *
                           sizeof(int64_t));
    size_t oRings = carve(static_cast<size_t>(cfg.numThreads) * fqCap *
                          sizeof(FetchedInst));

    _arenaStore = std::make_unique<std::byte[]>(off + 64);
    std::byte *base = _arenaStore.get();
    base += (64 - reinterpret_cast<uintptr_t>(base) % 64) % 64;
    // All-zero bytes are the correct initial value for every column
    // (pos 0, zero hot record = cycle 0 + gen 0 + State::Empty, null
    // fetch records); the rename tables are refilled with -1 below.
    std::memset(base, 0, off);
    _colPos = reinterpret_cast<uint64_t *>(base + oPos);
    _hot = reinterpret_cast<SlotHot *>(base + oHot);
    int64_t *renameBase = reinterpret_cast<int64_t *>(base + oRename);
    FetchedInst *ringBase = reinterpret_cast<FetchedInst *>(base + oRings);

    _cold.assign(_numSlots, RobCold{});
    _waiters.assign(_numSlots, {});

    for (int tid = 0; tid < cfg.numThreads; ++tid) {
        Thread &t = _threads[static_cast<size_t>(tid)];
        t.slotBase = static_cast<uint32_t>(
            static_cast<uint64_t>(tid) * robSize);
        t.rename = renameBase + static_cast<size_t>(tid) * 256;
        std::fill(t.rename, t.rename + 256, -1);
        t.fetchQ.init(ringBase + static_cast<size_t>(tid) * fqCap, fqCap);
    }

    int logicalSimd =
        cfg.simd == isa::SimdIsa::Mmx ? isa::kNumLogicalMmx
                                      : isa::kNumLogicalMomStream +
                                        isa::kNumLogicalMomAcc;
    _freeRegs[0] = cfg.intPhysRegs - 32 * cfg.numThreads;
    _freeRegs[1] = cfg.fpPhysRegs - 32 * cfg.numThreads;
    _freeRegs[2] = cfg.simdPhysRegs - logicalSimd * cfg.numThreads;
    // MMX code also names MMX registers under the MOM machine (both
    // extensions share the SIMD file organization).
    if (cfg.simd == isa::SimdIsa::Mom)
        _freeRegs[2] = std::max(_freeRegs[2], 12);
    for (int p = 0; p < 3; ++p) {
        if (_freeRegs[p] < 8)
            panic("physical register file too small for rename slack");
    }

    _fetchOrderBuf.reserve(static_cast<size_t>(cfg.numThreads));

    // Resolve the hot counters once: the per-event cost becomes an
    // indexed increment instead of a string-keyed lookup (StatIds stay
    // valid across later registrations).
    _ctrCommits = _stats.id("commits");
    _ctrCommitInt = _stats.id("commitInt");
    _ctrCommitFp = _stats.id("commitFp");
    _ctrCommitSimd = _stats.id("commitSimd");
    _ctrCommitMem = _stats.id("commitMem");
    _ctrIssued = _stats.id("issued");
    _ctrDispatched = _stats.id("dispatched");
    _ctrFetched = _stats.id("fetched");
    _ctrCondBranches = _stats.id("condBranches");
    _ctrRobFullStalls = _stats.id("robFullStalls");
    _ctrIqFullStalls = _stats.id("iqFullStalls");
    _ctrRegFullStalls = _stats.id("regFullStalls");
    _ctrIdleCyclesSkipped = _stats.id("idleCyclesSkipped");
    _ctrCommitStoreStalls = _stats.id("commitStoreStalls");
    _ctrMispredicts = _stats.id("mispredicts");
    _ctrFlushes = _stats.id("flushes");
    _ctrSquashed = _stats.id("squashed");
    _ctrIfetchRejected = _stats.id("ifetchRejected");
    _ctrIcacheMissStalls = _stats.id("icacheMissStalls");
}

void
SmtCore::attachProgram(int tid, const trace::Program *prog)
{
    MOMSIM_ASSERT(threadIdle(tid), "attach to a busy context");
    Thread &t = _threads[static_cast<size_t>(tid)];
    t.prog = prog;
    t.cursor = 0;
    t.head = t.tail = 0;
    t.fetchReady = _now;
    t.fetchQ.clear();
    std::fill(t.rename, t.rename + 256, -1);
    t.committedEq = 0;
    t.iqCount = 0;
    t.oqCount = 0;
}

bool
SmtCore::threadIdle(int tid) const
{
    const Thread &t = _threads[static_cast<size_t>(tid)];
    return t.prog == nullptr ||
           (t.cursor >= t.prog->size() && t.head == t.tail &&
            t.fetchQ.empty());
}

uint64_t
SmtCore::threadCommittedEq(int tid) const
{
    return _threads[static_cast<size_t>(tid)].committedEq;
}

int
SmtCore::physPoolOf(isa::RegRef reg) const
{
    switch (isa::regClass(reg)) {
      case RegClass::Int: return 0;
      case RegClass::Fp:  return 1;
      case RegClass::Mmx:
      case RegClass::Mom: return 2;
    }
    return 0;
}

// ---------------------------------------------------------------------
// Readiness tracking
// ---------------------------------------------------------------------

int
SmtCore::trackProducers(Thread &t, size_t slot, uint64_t pos, uint64_t gen)
{
    int pending = 0;
    uint64_t ready = 0;
    for (int64_t p : _cold[slot].prod) {
        if (p < 0)
            continue;
        uint64_t pp = static_cast<uint64_t>(p);
        if (pp < t.head)
            continue;       // producer already graduated
        size_t sp = slotOf(t, pp);
        if (_colPos[sp] != pp)
            continue;       // producer slot was recycled (graduated)
        const SlotHot h = _hot[sp];
        if (metaState(h.meta) == State::Done) {
            ready = std::max(ready, h.when);
        } else {
            _waiters[sp].push_back({ pos, gen });
            pending += 1;
        }
    }
    _hot[slot].when = ready;
    return pending;
}

void
SmtCore::wakeDependents(Thread &t, size_t slot)
{
    std::vector<Waiter> &ws = _waiters[slot];
    uint64_t done = _hot[slot].when;
    for (const Waiter &w : ws) {
        size_t sc = slotOf(t, w.pos);
        uint64_t m = _hot[sc].meta;
        // Generations are unique per allocation, so a tag match proves
        // the registration still names this slot's current instruction;
        // it must then also still be waiting (only a Dispatched slot
        // can carry a pending count — nops carry no sources).
        if (metaGen(m) != w.gen || metaState(m) != State::Dispatched)
            continue;       // consumer was squashed since registering
        _hot[sc].when = std::max(_hot[sc].when, done);
        m -= kMetaPendOne;
        _hot[sc].meta = m;
        if (metaPending(m) == 0)
            relaxQueueBound(sc);
    }
    ws.clear();
}

void
SmtCore::debugDump() const
{
    std::string out;
    out += strfmt("cycle %llu  momFuBusy=%lld  IQ sizes "
                  "int=%zu mem=%zu fp=%zu simd=%zu streams=%zu  "
                  "freeRegs=%d/%d/%d\n",
                  static_cast<unsigned long long>(_now),
                  static_cast<long long>(_momFuBusyUntil) -
                      static_cast<long long>(_now),
                  _intQ.size(), _memQ.size(), _fpQ.size(), _simdQ.size(),
                  _activeStreams.size(),
                  _freeRegs[0], _freeRegs[1], _freeRegs[2]);
    for (int tid = 0; tid < _cfg.numThreads; ++tid) {
        const Thread &t = _threads[static_cast<size_t>(tid)];
        out += strfmt("  t%d cursor=%zu/%zu inflight=%llu fq=%zu "
                      "fetchReady=%+lld iq=%d",
                      tid, t.cursor, t.prog ? t.prog->size() : 0,
                      static_cast<unsigned long long>(t.tail - t.head),
                      t.fetchQ.size(),
                      static_cast<long long>(t.fetchReady) -
                          static_cast<long long>(_now),
                      t.iqCount);
        if (t.head != t.tail) {
            size_t s = slotOf(t, t.head);
            out += strfmt("  head: %s state=%d done=%+lld",
                          isa::opName(_cold[s].inst->opcode()),
                          static_cast<int>(metaState(_hot[s].meta)),
                          static_cast<long long>(_hot[s].when) -
                              static_cast<long long>(_now));
        }
        out += "\n";
    }
    // One atomic write: dumps from concurrent pool workers must not
    // interleave mid-line.
    dumpRaw(out);
}

std::string
SmtCore::debugLayoutIssue() const
{
    uint64_t robSize = _robMask + 1;
    for (int tid = 0; tid < _cfg.numThreads; ++tid) {
        const Thread &t = _threads[static_cast<size_t>(tid)];
        if (t.slotBase != static_cast<uint64_t>(tid) * robSize)
            return strfmt("t%d slotBase %u != tid*robSize", tid, t.slotBase);
        if (t.tail - t.head > static_cast<uint64_t>(_cfg.windowPerThread))
            return strfmt("t%d inflight %llu exceeds window", tid,
                          static_cast<unsigned long long>(t.tail - t.head));
        for (uint64_t pos = t.head; pos < t.tail; ++pos) {
            size_t s = slotOf(t, pos);
            if (_colPos[s] != pos && _colPos[s] != ~0ull)
                return strfmt("t%d pos %llu: slot holds foreign pos", tid,
                              static_cast<unsigned long long>(pos));
            if (_colPos[s] != pos)
                continue;   // squashed slot awaiting reallocation
            if (metaState(_hot[s].meta) == State::Empty)
                return strfmt("t%d pos %llu: live slot is Empty", tid,
                              static_cast<unsigned long long>(pos));
            if (_cold[s].inst == nullptr)
                return strfmt("t%d pos %llu: live slot has no inst", tid,
                              static_cast<unsigned long long>(pos));
            uint64_t g = metaGen(_hot[s].meta);
            if (g == 0 || g > (t.genTick & kMetaGenMask))
                return strfmt("t%d pos %llu: gen %llu outside (0, %llu]",
                              tid, static_cast<unsigned long long>(pos),
                              static_cast<unsigned long long>(g),
                              static_cast<unsigned long long>(t.genTick));
        }
    }

    // Queue references must resolve to their slot; live per-thread
    // occupancy must match the iq/oq fetch-policy counters.
    int64_t iqLive[8] = {};
    int64_t oqLive[8] = {};
    for (const std::vector<IqEntry> *q :
         { &_intQ, &_memQ, &_fpQ, &_simdQ, &_activeStreams }) {
        for (const IqEntry &ref : *q) {
            if (ref.tid < 0 || ref.tid >= _cfg.numThreads)
                return strfmt("queue ref tid %d out of range", ref.tid);
            const Thread &t = _threads[static_cast<size_t>(ref.tid)];
            if (ref.slot != slotOf(t, ref.pos))
                return strfmt("t%d pos %llu: ref slot %u != slotOf",
                              ref.tid,
                              static_cast<unsigned long long>(ref.pos),
                              ref.slot);
            if (metaGen(_hot[ref.slot].meta) == ref.gen &&
                metaState(_hot[ref.slot].meta) == State::Dispatched) {
                iqLive[ref.tid] += 1;
                oqLive[ref.tid] += _cold[ref.slot].inst->eqInsts();
            }
        }
    }
    for (int tid = 0; tid < _cfg.numThreads; ++tid) {
        const Thread &t = _threads[static_cast<size_t>(tid)];
        if (iqLive[tid] != t.iqCount)
            return strfmt("t%d iqCount %d != live dispatched %lld", tid,
                          t.iqCount, static_cast<long long>(iqLive[tid]));
        if (oqLive[tid] != t.oqCount)
            return strfmt("t%d oqCount %lld != live eq %lld", tid,
                          static_cast<long long>(t.oqCount),
                          static_cast<long long>(oqLive[tid]));
    }

    // Wakeup registrations never run ahead of the owning thread's
    // generation source (a tag from the future could resurrect).
    for (size_t s = 0; s < _numSlots; ++s) {
        int tid = static_cast<int>(s / robSize);
        const Thread &t = _threads[static_cast<size_t>(tid)];
        for (const Waiter &w : _waiters[s]) {
            if (w.gen == 0 || w.gen > (t.genTick & kMetaGenMask))
                return strfmt("t%d slot %zu: waiter gen %llu outside "
                              "(0, %llu]", tid, s,
                              static_cast<unsigned long long>(w.gen),
                              static_cast<unsigned long long>(t.genTick));
        }
    }
    return std::string();
}

// ---------------------------------------------------------------------
// Stepping and idle fast-forward
// ---------------------------------------------------------------------

uint64_t
SmtCore::nextEventCycle() const
{
    // In-flight stream expansions issue elements every cycle.
    if (!_activeStreams.empty())
        return _now;

    uint64_t next = ~0ull;

    for (int tid = 0; tid < _cfg.numThreads; ++tid) {
        const Thread &t = _threads[static_cast<size_t>(tid)];
        // Commit: a Done head graduates (or retries its store) the
        // cycle its result is ready. A non-Done head completes through
        // an issue/stream event accounted below.
        if (t.head != t.tail) {
            const SlotHot h = _hot[slotOf(t, t.head)];
            if (metaState(h.meta) == State::Done) {
                if (h.when <= _now)
                    return _now;
                next = std::min(next, h.when);
            }
        }
        // Dispatch: a fetch-queue head that passes the structural
        // gates renames this cycle. A gated head unblocks only through
        // commit/issue events.
        if (!t.fetchQ.empty() &&
            dispatchGate(t, t.fetchQ.front()) == DispatchGate::Ok)
            return _now;
        // Fetch: an eligible thread accesses the I-cache this cycle.
        if (t.prog && t.cursor < t.prog->size() &&
            static_cast<int>(t.fetchQ.size()) + _cfg.fetchGroupSize <=
                _cfg.fetchQueueDepth) {
            if (t.fetchReady <= _now)
                return _now;
            next = std::min(next, t.fetchReady);
        }
    }

    // Issue: a ready entry attempts to issue every cycle, even when the
    // attempt keeps failing on a busy FU or a rejected memory access —
    // so readiness, not executability, is what schedules the machine.
    // One 16-byte hot-record load per entry answers validation
    // (generation + state), the pending count and the ready cycle.
    for (const std::vector<IqEntry> *q :
         { &_intQ, &_memQ, &_fpQ, &_simdQ }) {
        for (const IqEntry &ref : *q) {
            const SlotHot h = _hot[ref.slot];
            if (metaGen(h.meta) != ref.gen ||
                metaState(h.meta) != State::Dispatched)
                return _now;    // stale entry: the issue scan drops it
            if (metaPending(h.meta) > 0)
                continue;       // wakes through a producer completion
            if (h.when <= _now)
                return _now;
            next = std::min(next, h.when);
        }
    }
    return next;
}

void
SmtCore::fastForwardTo(uint64_t target)
{
    uint64_t skipped = target - _now;
    uint64_t n = static_cast<uint64_t>(_cfg.numThreads);

    // The naive path runs every stage on a no-op cycle; the only
    // residue is the per-cycle rotation advance and one dispatch-stall
    // count per gated thread per cycle. Replay both exactly.
    _fetchRotate = static_cast<int>(
        (static_cast<uint64_t>(_fetchRotate) + skipped) % n);
    _dispatchRotate = static_cast<int>(
        (static_cast<uint64_t>(_dispatchRotate) + skipped) % n);
    for (int tid = 0; tid < _cfg.numThreads; ++tid) {
        const Thread &t = _threads[static_cast<size_t>(tid)];
        if (t.fetchQ.empty())
            continue;
        switch (dispatchGate(t, t.fetchQ.front())) {
          case DispatchGate::RobFull:
            _stats.at(_ctrRobFullStalls) += skipped;
            break;
          case DispatchGate::IqFull:
            _stats.at(_ctrIqFullStalls) += skipped;
            break;
          case DispatchGate::RegFull:
            _stats.at(_ctrRegFullStalls) += skipped;
            break;
          case DispatchGate::Ok:
            break;      // unreachable: an Ok gate prevents fast-forward
        }
    }
    _stats.at(_ctrIdleCyclesSkipped) += skipped;
    _now = target;
    // The jump landed on the next event; the machine acts this cycle.
    _probablyIdle = false;
}

void
SmtCore::step(uint64_t horizon)
{
    // Only pay for the idle scan when the previous cycle made no
    // visible progress — a cheap heuristic that keeps the fast-forward
    // machinery entirely off the busy path. Skipping the scan on an
    // idle cycle is harmless (the stages no-op and account their own
    // stalls), so results are identical either way.
    if (_cfg.enableFastForward && _probablyIdle) {
        uint64_t next = nextEventCycle();
        if (next > _now) {
            // Let the memory hierarchy cap the jump at its own next
            // structural event (bank frees, miss completes, write
            // buffer drains), then never skip past the caller's cycle
            // horizon.
            next = std::min(next, _mem.nextEventCycle(_now));
            uint64_t target = std::min(next, horizon);
            if (target <= _now)
                target = _now + 1;
            fastForwardTo(target);
            return;
        }
    }
    uint64_t before =
        _stats.at(_ctrCommits) + _stats.at(_ctrIssued) +
        _stats.at(_ctrDispatched) + _stats.at(_ctrFetched);
    commitStage();
    streamStage();
    issueStage();
    dispatchStage();
    fetchStage();
    ++_now;
    uint64_t after =
        _stats.at(_ctrCommits) + _stats.at(_ctrIssued) +
        _stats.at(_ctrDispatched) + _stats.at(_ctrFetched);
    _probablyIdle = after == before;
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
SmtCore::commitStage()
{
    int budget = _cfg.commitWidth;
    int n = _cfg.numThreads;
    int start = static_cast<int>(_now % static_cast<uint64_t>(n));

    // Try to graduate one instruction from @p tid; false when the head
    // is absent, not ready, or its store was rejected — all conditions
    // that cannot clear within this cycle, so the thread drops out of
    // the round-robin for the rest of the stage. The ready check reads
    // only the state/done columns; the cold payload is touched once a
    // graduation is certain.
    auto tryCommitOne = [this](int tid) -> bool {
        Thread &t = _threads[static_cast<size_t>(tid)];
        if (t.head == t.tail)
            return false;
        size_t s = slotOf(t, t.head);
        const SlotHot h = _hot[s];
        if (metaState(h.meta) != State::Done || h.when > _now)
            return false;

        RobCold &cold = _cold[s];
        OpClass cls = cold.inst->opClass();
        bool scalarStore =
            (cls == OpClass::Store || cls == OpClass::MmxStore);
        if (scalarStore && !cold.storeDone) {
            mem::MemAccess req;
            req.addr = cold.inst->addr;
            req.size = cold.inst->accessSize;
            req.isWrite = true;
            req.isVector = (cls == OpClass::MmxStore);
            req.threadId = tid;
            mem::MemReply rep = _mem.access(_now, req);
            if (!rep.accepted) {
                _stats.at(_ctrCommitStoreStalls) += 1;
                return false;   // write buffer full; retry next cycle
            }
            cold.storeDone = true;
        }

        // Graduate.
        if (isa::isValidReg(cold.inst->dst))
            _freeRegs[physPoolOf(cold.inst->dst)] += 1;
        uint32_t eq = cold.inst->eqInsts();
        _committedRecords += 1;
        _committedEq += eq;
        t.committedEq += eq;
        _stats.at(_ctrCommits) += 1;
        switch (isa::mixGroup(cls)) {
          case isa::MixGroup::Int:
            _stats.at(_ctrCommitInt) += eq;
            break;
          case isa::MixGroup::Fp:
            _stats.at(_ctrCommitFp) += eq;
            break;
          case isa::MixGroup::SimdArith:
            _stats.at(_ctrCommitSimd) += eq;
            break;
          case isa::MixGroup::Mem:
            _stats.at(_ctrCommitMem) += eq;
            break;
        }
        setMetaState(s, State::Empty);
        ++t.head;
        return true;
    };

    // Round-robin starting at (_now % n), one commit per thread per
    // round; after the first round only the threads that just committed
    // can commit again, so later rounds visit exactly those.
    int active[8];
    int numActive = 0;
    int tid = start;
    for (int i = 0; i < n && budget > 0;
         ++i, tid = (tid + 1 == n ? 0 : tid + 1)) {
        if (tryCommitOne(tid)) {
            --budget;
            active[numActive++] = tid;
        }
    }
    while (budget > 0 && numActive > 0) {
        int stillActive = 0;
        for (int i = 0; i < numActive && budget > 0; ++i) {
            if (tryCommitOne(active[i])) {
                --budget;
                active[stillActive++] = active[i];
            }
        }
        numActive = stillActive;
    }
}

// ---------------------------------------------------------------------
// Stream memory expansion
// ---------------------------------------------------------------------

void
SmtCore::streamStage()
{
    // The stream memory unit sustains at most `vectorLanes` element
    // accesses per cycle in total, shared by all in-flight streams (two
    // address generators feeding the two vector ports).
    int budget = _cfg.vectorLanes;
    for (size_t i = 0; i < _activeStreams.size();) {
        if (budget <= 0)
            break;
        IqEntry ref = _activeStreams[i];
        Thread &t = _threads[static_cast<size_t>(ref.tid)];
        size_t s = ref.slot;
        if (metaGen(_hot[s].meta) != ref.gen ||
            metaState(_hot[s].meta) != State::Executing) {
            // Squashed or otherwise gone.
            _activeStreams.erase(_activeStreams.begin() +
                                 static_cast<long>(i));
            continue;
        }
        RobCold &cold = _cold[s];
        uint32_t total = cold.inst->memAccesses();
        int issuedThisCycle = 0;
        while (cold.elemsIssued < total && issuedThisCycle < budget) {
            mem::MemAccess req;
            req.addr = cold.inst->elementAddr(cold.elemsIssued);
            req.size = cold.inst->accessSize;
            req.isWrite = cold.inst->isStore();
            req.isVector = true;
            req.nonTemporal = false;
            req.threadId = ref.tid;
            mem::MemReply rep = _mem.access(_now, req);
            if (!rep.accepted)
                break;
            cold.streamReady = std::max(cold.streamReady, rep.readyCycle);
            ++cold.elemsIssued;
            ++issuedThisCycle;
        }
        budget -= issuedThisCycle;
        if (cold.elemsIssued >= total) {
            setMetaState(s, State::Done);
            _hot[s].when = std::max(cold.streamReady, _now + 1);
            wakeDependents(t, s);
            _activeStreams.erase(_activeStreams.begin() +
                                 static_cast<long>(i));
            continue;
        }
        ++i;
    }
}

// ---------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------

bool
SmtCore::tryExecute(int tid, size_t slot, QueueKind kind)
{
    RobCold &cold = _cold[slot];
    const isa::OpInfo &info = isa::opInfo(cold.inst->opcode());
    OpClass cls = info.cls;

    switch (kind) {
      case QueueKind::Int:
        if (cls == OpClass::IntDiv) {
            if (_divBusyUntil > _now)
                return false;
            _divBusyUntil = _now + info.latency;
        }
        setMetaState(slot, State::Done);
        _hot[slot].when = _now + info.latency;
        if (cold.mispredicted) {
            _stats.at(_ctrMispredicts) += 1;
            flushThread(tid, _colPos[slot]);
        }
        return true;

      case QueueKind::Fp:
        if (cls == OpClass::FpDiv) {
            if (_fdivBusyUntil > _now)
                return false;
            _fdivBusyUntil = _now + info.latency;
        }
        setMetaState(slot, State::Done);
        _hot[slot].when = _now + info.latency;
        return true;

      case QueueKind::Simd:
        if (isa::isMom(cls)) {
            if (_momFuBusyUntil > _now)
                return false;
            uint32_t len = std::max<uint32_t>(1, cold.inst->streamLen);
            uint64_t occupancy =
                (len + _cfg.vectorLanes - 1) /
                static_cast<uint32_t>(_cfg.vectorLanes);
            _momFuBusyUntil = _now + occupancy;
            setMetaState(slot, State::Done);
            _hot[slot].when = _now + info.latency + occupancy - 1;
        } else {
            setMetaState(slot, State::Done);
            _hot[slot].when = _now + info.latency;
        }
        return true;

      case QueueKind::Mem: {
        if (cls == OpClass::MomLoad || cls == OpClass::MomStore) {
            // Hand over to the stream engine.
            setMetaState(slot, State::Executing);
            cold.elemsIssued = 0;
            cold.streamReady = 0;
            _activeStreams.push_back({ _colPos[slot],
                                       metaGen(_hot[slot].meta),
                                       static_cast<uint32_t>(slot), tid });
            return true;
        }
        if (cold.inst->isStore()) {
            // Address generation; the access happens at graduation.
            setMetaState(slot, State::Done);
            _hot[slot].when = _now + 1;
            return true;
        }
        mem::MemAccess req;
        req.addr = cold.inst->addr;
        req.size = cold.inst->accessSize;
        req.isWrite = false;
        req.isVector = cold.inst->isMmx();
        req.threadId = tid;
        mem::MemReply rep = _mem.access(_now, req);
        if (!rep.accepted)
            return false;       // retry next cycle
        setMetaState(slot, State::Done);
        _hot[slot].when = rep.readyCycle;
        return true;
      }
    }
    return false;
}

void
SmtCore::issueFromQueue(std::vector<IqEntry> &queue, int width,
                        QueueKind kind)
{
    // Nothing can possibly be ready before the queue's bound: skip the
    // scan outright. A skipped scan has no side effects (no entry
    // issues, no compaction, no counters), so results are unchanged.
    uint64_t &bound = _queueMinReady[static_cast<int>(kind)];
    if (bound > _now)
        return;

    // The scan body reads one 16-byte hot record per entry: generation
    // and state validate the reference, the pending count and the
    // timestamp decide readiness — the common keep-in-place iterations
    // touch one dense array and no per-entry payload.
    uint64_t nextReady = ~0ull;
    int used = 0;
    size_t keep = 0;
    size_t i = 0;
    for (; i < queue.size(); ++i) {
        IqEntry ref = queue[i];
        size_t s = ref.slot;
        // Compaction writes only once the kept range diverges from the
        // scanned range (i.e. after the first issue/drop) — on most
        // cycles most entries just stay put.
        auto keepEntry = [&queue, &keep](size_t at, IqEntry entry) {
            if (keep != at)
                queue[keep] = entry;
            ++keep;
        };
        const SlotHot h = _hot[s];
        if (metaGen(h.meta) != ref.gen ||
            metaState(h.meta) != State::Dispatched)
            continue;           // squashed/stale: drop from the queue
        if (used >= width) {
            keepEntry(i, ref);      // ready now, out of issue slots
            nextReady = std::min(nextReady, h.when);
            continue;
        }
        if (metaPending(h.meta) > 0) {
            keepEntry(i, ref);      // its wakeup will relax the bound
            continue;
        }
        if (h.when > _now) {
            keepEntry(i, ref);      // operands not ready yet
            nextReady = std::min(nextReady, h.when);
            continue;
        }
        ++used;                 // an issue slot is consumed by the attempt
        if (tryExecute(ref.tid, s, kind)) {
            Thread &t = _threads[static_cast<size_t>(ref.tid)];
            if (metaState(_hot[s].meta) == State::Done)
                wakeDependents(t, s);
            t.iqCount -= 1;
            t.oqCount -= _cold[s].inst->eqInsts();
            _stats.at(_ctrIssued) += 1;
        } else {
            keepEntry(i, ref);      // FU busy / access rejected: retry
            nextReady = std::min(nextReady, h.when);
        }
    }
    queue.resize(keep);
    // Exact as of this scan; later dispatches/wakeups only lower it.
    bound = nextReady;
}

void
SmtCore::issueStage()
{
    issueFromQueue(_memQ, _cfg.memIssue, QueueKind::Mem);
    issueFromQueue(_intQ, _cfg.intIssue, QueueKind::Int);
    issueFromQueue(_fpQ, _cfg.fpIssue, QueueKind::Fp);
    issueFromQueue(_simdQ, _cfg.simdIssue, QueueKind::Simd);
}

// ---------------------------------------------------------------------
// Dispatch (decode + rename)
// ---------------------------------------------------------------------

SmtCore::DispatchGate
SmtCore::dispatchGate(const Thread &t, const FetchedInst &f,
                      QueueKind *kindOut) const
{
    if (t.tail - t.head >= static_cast<uint64_t>(_cfg.windowPerThread))
        return DispatchGate::RobFull;
    QueueKind kind = isa::queueKind(f.inst->opClass());
    if (kindOut)
        *kindOut = kind;
    const std::vector<IqEntry> *queue = nullptr;
    int cap = 0;
    switch (kind) {
      case QueueKind::Int:
        queue = &_intQ;
        cap = _cfg.intQueue;
        break;
      case QueueKind::Mem:
        queue = &_memQ;
        cap = _cfg.memQueue;
        break;
      case QueueKind::Fp:
        queue = &_fpQ;
        cap = _cfg.fpQueue;
        break;
      case QueueKind::Simd:
        queue = &_simdQ;
        cap = _cfg.simdQueue;
        break;
    }
    bool isNop = f.inst->opClass() == OpClass::Nop;
    if (!isNop && static_cast<int>(queue->size()) >= cap)
        return DispatchGate::IqFull;
    if (isa::isValidReg(f.inst->dst) &&
        _freeRegs[physPoolOf(f.inst->dst)] <= 0)
        return DispatchGate::RegFull;
    return DispatchGate::Ok;
}

void
SmtCore::dispatchStage()
{
    int budget = _cfg.decodeWidth;
    int n = _cfg.numThreads;
    int start = _dispatchRotate % n;

    // Decode/rename one instruction from @p tid; false when its fetch
    // queue is empty or a structural gate blocks it (the gates only
    // tighten within a cycle, so a refused thread drops out of the
    // round-robin for the rest of the stage).
    auto tryDispatchOne = [this](int tid) -> bool {
        Thread &t = _threads[static_cast<size_t>(tid)];
        if (t.fetchQ.empty())
            return false;

        // Structural checks.
        const FetchedInst &f = t.fetchQ.front();
        QueueKind kind = QueueKind::Int;
        switch (dispatchGate(t, f, &kind)) {
          case DispatchGate::RobFull:
            _stats.at(_ctrRobFullStalls) += 1;
            return false;
          case DispatchGate::IqFull:
            _stats.at(_ctrIqFullStalls) += 1;
            return false;
          case DispatchGate::RegFull:
            _stats.at(_ctrRegFullStalls) += 1;
            return false;
          case DispatchGate::Ok:
            break;
        }
        std::vector<IqEntry> *queue = nullptr;
        switch (kind) {
          case QueueKind::Int:  queue = &_intQ;  break;
          case QueueKind::Mem:  queue = &_memQ;  break;
          case QueueKind::Fp:   queue = &_fpQ;   break;
          case QueueKind::Simd: queue = &_simdQ; break;
        }
        bool isNop = f.inst->opClass() == OpClass::Nop;

        // Allocate and rename: reset the recycled slot's columns and
        // cold payload (the waiter vector is cleared, not replaced, so
        // it keeps its capacity). The metadata word — generation,
        // pending count, queue kind, state — is assembled in registers
        // and written once.
        uint64_t pos = t.tail++;
        size_t s = slotOf(t, pos);
        RobCold &cold = _cold[s];
        cold.inst = f.inst;
        _colPos[s] = pos;
        cold.prevWriter = -1;
        cold.mispredicted = f.mispredicted;
        cold.storeDone = false;
        cold.elemsIssued = 0;
        cold.streamReady = 0;
        uint64_t gen = ++t.genTick & kMetaGenMask;
        _waiters[s].clear();

        isa::RegRef srcs[3] = { f.inst->src0, f.inst->src1, f.inst->src2 };
        for (int sidx = 0; sidx < 3; ++sidx) {
            cold.prod[sidx] = isa::isValidReg(srcs[sidx])
                ? t.rename[srcs[sidx]] : -1;
        }
        int pending = trackProducers(t, s, pos, gen);
        if (isa::isValidReg(f.inst->dst)) {
            cold.prevWriter = t.rename[f.inst->dst];
            t.rename[f.inst->dst] = static_cast<int64_t>(pos);
            _freeRegs[physPoolOf(f.inst->dst)] -= 1;
        }

        if (isNop) {
            _hot[s].meta = metaPack(gen, pending, kind, State::Done);
            _hot[s].when = _now;
        } else {
            _hot[s].meta = metaPack(gen, pending, kind, State::Dispatched);
            queue->push_back({ pos, gen, static_cast<uint32_t>(s), tid });
            t.iqCount += 1;
            t.oqCount += cold.inst->eqInsts();
            if (pending == 0)
                relaxQueueBound(s);
        }

        t.fetchQ.pop_front();
        _stats.at(_ctrDispatched) += 1;
        return true;
    };

    // Round-robin from _dispatchRotate, one instruction per thread per
    // round; only threads that just dispatched stay in later rounds
    // (a stall counter fires at the moment a thread drops out gated,
    // exactly like the naive every-pass walk did).
    int active[8];
    int numActive = 0;
    int tid = start;
    for (int i = 0; i < n && budget > 0;
         ++i, tid = (tid + 1 == n ? 0 : tid + 1)) {
        if (tryDispatchOne(tid)) {
            --budget;
            active[numActive++] = tid;
        }
    }
    while (budget > 0 && numActive > 0) {
        int stillActive = 0;
        for (int i = 0; i < numActive && budget > 0; ++i) {
            if (tryDispatchOne(active[i])) {
                --budget;
                active[stillActive++] = active[i];
            }
        }
        numActive = stillActive;
    }
    _dispatchRotate = (_dispatchRotate + 1 == n ? 0 : _dispatchRotate + 1);
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

bool
SmtCore::vectorPipeEmpty() const
{
    return _simdQ.empty() && _momFuBusyUntil <= _now;
}

const std::vector<int> &
SmtCore::fetchOrder()
{
    std::vector<int> &order = _fetchOrderBuf;
    order.clear();
    int n = _cfg.numThreads;
    int tid = _fetchRotate % n;
    for (int i = 0; i < n; ++i, tid = (tid + 1 == n ? 0 : tid + 1))
        order.push_back(tid);

    // Stable insertion sort over a precomputed key array: at most 8
    // threads, runs every cycle, never touches an allocator, and loads
    // each thread's counter once instead of per comparison.
    int64_t keys[8];
    auto sortByKeys = [&order, &keys]() {
        for (size_t i = 1; i < order.size(); ++i) {
            int v = order[i];
            int64_t k = keys[v];
            size_t j = i;
            while (j > 0 && k < keys[order[j - 1]]) {
                order[j] = order[j - 1];
                --j;
            }
            order[j] = v;
        }
    };
    switch (_cfg.fetchPolicy) {
      case FetchPolicy::RoundRobin:
        break;
      case FetchPolicy::ICount:
        for (int t = 0; t < n; ++t)
            keys[t] = _threads[static_cast<size_t>(t)].iqCount;
        sortByKeys();
        break;
      case FetchPolicy::OCount:
        for (int t = 0; t < n; ++t)
            keys[t] = _threads[static_cast<size_t>(t)].oqCount;
        sortByKeys();
        break;
      case FetchPolicy::Balance: {
        // Promote one thread of the class the vector pipeline needs to
        // the front; the rest keep the round-robin rotation (the paper
        // breaks same-priority ties round-robin — a full class sort
        // would let two permanently-scalar threads monopolize both
        // fetch groups and starve the machine).
        bool wantVector = vectorPipeEmpty();
        for (size_t i = 0; i < order.size(); ++i) {
            if (_threads[static_cast<size_t>(order[i])].lastFetchVector ==
                wantVector) {
                int chosen = order[i];
                order.erase(order.begin() + static_cast<long>(i));
                order.insert(order.begin(), chosen);
                break;
            }
        }
        break;
      }
    }
    _fetchRotate = (_fetchRotate + 1 == n ? 0 : _fetchRotate + 1);
    return order;
}

void
SmtCore::fetchStage()
{
    const std::vector<int> &order = fetchOrder();
    size_t orderIdx = 0;

    for (int g = 0; g < _cfg.fetchGroups; ++g) {
        // Find the next eligible thread (the same thread may supply both
        // groups when it is the only one ready).
        int tid = -1;
        for (size_t scanned = 0; scanned < order.size(); ++scanned) {
            int cand = order[(orderIdx + scanned) % order.size()];
            Thread &t = _threads[static_cast<size_t>(cand)];
            if (!t.prog || t.cursor >= t.prog->size())
                continue;
            if (t.fetchReady > _now)
                continue;
            if (static_cast<int>(t.fetchQ.size()) + _cfg.fetchGroupSize >
                _cfg.fetchQueueDepth)
                continue;
            tid = cand;
            orderIdx = (orderIdx + scanned + 1) % order.size();
            break;
        }
        if (tid < 0)
            return;

        Thread &t = _threads[static_cast<size_t>(tid)];
        const auto &insts = t.prog->insts();
        uint64_t groupPc = insts[t.cursor].pc;
        mem::FetchReply rep = _mem.ifetch(_now, groupPc);
        if (!rep.accepted) {
            _stats.at(_ctrIfetchRejected) += 1;
            continue;       // I-cache port/bank conflict this cycle
        }
        if (!rep.hit) {
            t.fetchReady = rep.readyCycle;
            _stats.at(_ctrIcacheMissStalls) += 1;
            continue;
        }

        bool fetchedVector = false;
        for (int k = 0; k < _cfg.fetchGroupSize &&
                        t.cursor < t.prog->size(); ++k) {
            FetchedInst f;
            f.inst = &insts[t.cursor];
            ++t.cursor;

            if (f.inst->isCondBranch()) {
                bool pred = _bpred.predict(tid, f.inst->pc);
                bool actual = f.inst->taken();
                f.mispredicted = (pred != actual);
                _bpred.update(tid, f.inst->pc, actual);
                _stats.at(_ctrCondBranches) += 1;
            }
            if (isa::isSimd(f.inst->opClass()))
                fetchedVector = true;

            t.fetchQ.push_back(f);
            _stats.at(_ctrFetched) += 1;

            // A group ends at taken control flow.
            if (f.inst->isControl() && f.inst->taken())
                break;
        }
        t.lastFetchVector = fetchedVector;
    }
}

// ---------------------------------------------------------------------
// Flush
// ---------------------------------------------------------------------

void
SmtCore::flushThread(int tid, uint64_t branchPos)
{
    Thread &t = _threads[static_cast<size_t>(tid)];

    // Roll back rename state and free registers, youngest first.
    // Squashed slots keep their generation tag until reallocated, so
    // wakeup records pointing at them stay inert (the pos column is
    // set to the squash sentinel here; a recycled slot gets a fresh
    // gen).
    while (t.tail > branchPos + 1) {
        uint64_t pos = --t.tail;
        size_t s = slotOf(t, pos);
        if (_colPos[s] != pos)
            continue;
        const RobCold &cold = _cold[s];
        if (isa::isValidReg(cold.inst->dst)) {
            t.rename[cold.inst->dst] = cold.prevWriter;
            _freeRegs[physPoolOf(cold.inst->dst)] += 1;
        }
        if (metaState(_hot[s].meta) == State::Dispatched) {
            t.iqCount -= 1;
            t.oqCount -= cold.inst->eqInsts();
        }
        setMetaState(s, State::Empty);
        _colPos[s] = ~0ull;
        _stats.at(_ctrSquashed) += 1;
    }

    auto scrub = [tid, branchPos](std::vector<IqEntry> &q) {
        q.erase(std::remove_if(q.begin(), q.end(),
                               [tid, branchPos](const IqEntry &ref) {
                    return ref.tid == tid && ref.pos > branchPos;
                }), q.end());
    };
    scrub(_intQ);
    scrub(_memQ);
    scrub(_fpQ);
    scrub(_simdQ);
    scrub(_activeStreams);

    // Redirect the front end. Dispatch follows fetch order exactly, so a
    // thread's ROB position equals its trace index; the correct-path
    // continuation starts right after the branch.
    t.fetchQ.clear();
    t.cursor = static_cast<size_t>(branchPos + 1);

    t.fetchReady = std::max(t.fetchReady,
                            _hot[slotOf(t, branchPos)].when +
                            static_cast<uint64_t>(_cfg.mispredictPenalty));
    _stats.at(_ctrFlushes) += 1;
}

} // namespace momsim::cpu
