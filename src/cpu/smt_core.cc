#include "cpu/smt_core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace momsim::cpu
{

using isa::OpClass;
using isa::QueueKind;
using isa::RegClass;

CoreConfig
CoreConfig::preset(int threads, isa::SimdIsa simd, FetchPolicy policy)
{
    CoreConfig cfg;
    cfg.numThreads = threads;
    cfg.simd = simd;
    cfg.fetchPolicy = policy;

    // Near-saturation sizes from the table1_saturation sweep.
    switch (threads) {
      case 1:
        cfg.windowPerThread = 64;
        cfg.intQueue = 16;
        cfg.memQueue = 16;
        cfg.fpQueue = 12;
        cfg.simdQueue = 12;
        break;
      case 2:
        cfg.windowPerThread = 64;
        cfg.intQueue = 24;
        cfg.memQueue = 24;
        cfg.fpQueue = 16;
        cfg.simdQueue = 16;
        break;
      case 4:
        cfg.windowPerThread = 48;
        cfg.intQueue = 32;
        cfg.memQueue = 32;
        cfg.fpQueue = 24;
        cfg.simdQueue = 24;
        break;
      default:
        cfg.windowPerThread = 40;
        cfg.intQueue = 48;
        cfg.memQueue = 48;
        cfg.fpQueue = 32;
        cfg.simdQueue = 32;
        break;
    }

    cfg.intPhysRegs = 32 * threads + 64;
    cfg.fpPhysRegs = 32 * threads + 32;
    if (simd == isa::SimdIsa::Mmx) {
        cfg.simdPhysRegs = 32 * threads + 32;
        cfg.simdIssue = 2;
    } else {
        // 16 stream registers + 2 accumulators per thread, plus slack.
        cfg.simdPhysRegs = 18 * threads + 12;
        cfg.simdIssue = 1;
    }
    return cfg;
}

SmtCore::SmtCore(const CoreConfig &cfg, mem::MemorySystem &mem)
    : _cfg(cfg), _mem(mem), _threads(cfg.numThreads), _stats("core")
{
    MOMSIM_ASSERT(cfg.numThreads >= 1 && cfg.numThreads <= 8,
                  "1..8 hardware contexts supported");
    for (auto &t : _threads) {
        t.rob.resize(static_cast<size_t>(cfg.windowPerThread));
        std::fill(std::begin(t.rename), std::end(t.rename), -1);
    }

    int logicalSimd =
        cfg.simd == isa::SimdIsa::Mmx ? isa::kNumLogicalMmx
                                      : isa::kNumLogicalMomStream +
                                        isa::kNumLogicalMomAcc;
    _freeRegs[0] = cfg.intPhysRegs - 32 * cfg.numThreads;
    _freeRegs[1] = cfg.fpPhysRegs - 32 * cfg.numThreads;
    _freeRegs[2] = cfg.simdPhysRegs - logicalSimd * cfg.numThreads;
    // MMX code also names MMX registers under the MOM machine (both
    // extensions share the SIMD file organization).
    if (cfg.simd == isa::SimdIsa::Mom)
        _freeRegs[2] = std::max(_freeRegs[2], 12);
    for (int p = 0; p < 3; ++p) {
        MOMSIM_ASSERT(_freeRegs[p] >= 8,
                      "physical register file too small for rename slack");
    }
}

void
SmtCore::attachProgram(int tid, const trace::Program *prog)
{
    MOMSIM_ASSERT(threadIdle(tid), "attach to a busy context");
    Thread &t = _threads[static_cast<size_t>(tid)];
    t.prog = prog;
    t.cursor = 0;
    t.head = t.tail = 0;
    t.fetchReady = _now;
    t.fetchQ.clear();
    std::fill(std::begin(t.rename), std::end(t.rename), -1);
    t.committedEq = 0;
    t.iqCount = 0;
    t.oqCount = 0;
}

bool
SmtCore::threadIdle(int tid) const
{
    const Thread &t = _threads[static_cast<size_t>(tid)];
    return t.prog == nullptr ||
           (t.cursor >= t.prog->size() && t.head == t.tail &&
            t.fetchQ.empty());
}

uint64_t
SmtCore::threadCommittedEq(int tid) const
{
    return _threads[static_cast<size_t>(tid)].committedEq;
}

SmtCore::RobEntry &
SmtCore::entryAt(Thread &t, uint64_t pos)
{
    return t.rob[pos % t.rob.size()];
}

const SmtCore::RobEntry &
SmtCore::entryAt(const Thread &t, uint64_t pos) const
{
    return t.rob[pos % t.rob.size()];
}

int
SmtCore::physPoolOf(isa::RegRef reg) const
{
    switch (isa::regClass(reg)) {
      case RegClass::Int: return 0;
      case RegClass::Fp:  return 1;
      case RegClass::Mmx:
      case RegClass::Mom: return 2;
    }
    return 0;
}

bool
SmtCore::operandsReady(const Thread &t, const RobEntry &e) const
{
    for (int64_t p : e.prod) {
        if (p < 0)
            continue;
        if (static_cast<uint64_t>(p) < t.head)
            continue;       // producer already graduated
        const RobEntry &src = entryAt(t, static_cast<uint64_t>(p));
        if (src.pos != static_cast<uint64_t>(p))
            continue;       // producer slot was recycled (graduated)
        if (src.state != State::Done || src.doneCycle > _now)
            return false;
    }
    return true;
}

void
SmtCore::debugDump() const
{
    std::fprintf(stderr, "cycle %llu  momFuBusy=%lld  IQ sizes "
                 "int=%zu mem=%zu fp=%zu simd=%zu streams=%zu  "
                 "freeRegs=%d/%d/%d\n",
                 static_cast<unsigned long long>(_now),
                 static_cast<long long>(_momFuBusyUntil) -
                     static_cast<long long>(_now),
                 _intQ.size(), _memQ.size(), _fpQ.size(), _simdQ.size(),
                 _activeStreams.size(),
                 _freeRegs[0], _freeRegs[1], _freeRegs[2]);
    for (int tid = 0; tid < _cfg.numThreads; ++tid) {
        const Thread &t = _threads[static_cast<size_t>(tid)];
        std::fprintf(stderr,
                     "  t%d cursor=%zu/%zu inflight=%llu fq=%zu "
                     "fetchReady=%+lld iq=%d",
                     tid, t.cursor, t.prog ? t.prog->size() : 0,
                     static_cast<unsigned long long>(t.tail - t.head),
                     t.fetchQ.size(),
                     static_cast<long long>(t.fetchReady) -
                         static_cast<long long>(_now),
                     t.iqCount);
        if (t.head != t.tail) {
            const RobEntry &e = entryAt(t, t.head);
            std::fprintf(stderr, "  head: %s state=%d done=%+lld",
                         isa::opName(e.inst.opcode()),
                         static_cast<int>(e.state),
                         static_cast<long long>(e.doneCycle) -
                             static_cast<long long>(_now));
        }
        std::fprintf(stderr, "\n");
    }
}

void
SmtCore::step()
{
    commitStage();
    streamStage();
    issueStage();
    dispatchStage();
    fetchStage();
    ++_now;
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
SmtCore::commitStage()
{
    int budget = _cfg.commitWidth;
    int n = _cfg.numThreads;
    bool progress = true;
    std::vector<bool> blocked(static_cast<size_t>(n), false);
    while (budget > 0 && progress) {
        progress = false;
        for (int i = 0; i < n && budget > 0; ++i) {
            int tid = (i + static_cast<int>(_now)) % n;
            if (blocked[static_cast<size_t>(tid)])
                continue;
            Thread &t = _threads[static_cast<size_t>(tid)];
            if (t.head == t.tail)
                continue;
            RobEntry &e = entryAt(t, t.head);
            if (e.state != State::Done || e.doneCycle > _now) {
                blocked[static_cast<size_t>(tid)] = true;
                continue;
            }

            OpClass cls = e.inst.opClass();
            bool scalarStore =
                (cls == OpClass::Store || cls == OpClass::MmxStore);
            if (scalarStore && !e.storeDone) {
                mem::MemAccess req;
                req.addr = e.inst.addr;
                req.size = e.inst.accessSize;
                req.isWrite = true;
                req.isVector = (cls == OpClass::MmxStore);
                req.threadId = tid;
                mem::MemReply rep = _mem.access(_now, req);
                if (!rep.accepted) {
                    _stats.counter("commitStoreStalls") += 1;
                    blocked[static_cast<size_t>(tid)] = true;
                    continue;   // write buffer full; retry next cycle
                }
                e.storeDone = true;
            }

            // Graduate.
            if (isa::isValidReg(e.inst.dst))
                _freeRegs[physPoolOf(e.inst.dst)] += 1;
            uint32_t eq = e.inst.eqInsts();
            _committedRecords += 1;
            _committedEq += eq;
            t.committedEq += eq;
            _stats.counter("commits") += 1;
            switch (isa::mixGroup(cls)) {
              case isa::MixGroup::Int:
                _stats.counter("commitInt") += eq;
                break;
              case isa::MixGroup::Fp:
                _stats.counter("commitFp") += eq;
                break;
              case isa::MixGroup::SimdArith:
                _stats.counter("commitSimd") += eq;
                break;
              case isa::MixGroup::Mem:
                _stats.counter("commitMem") += eq;
                break;
            }
            e.state = State::Empty;
            ++t.head;
            --budget;
            progress = true;
        }
    }
}

// ---------------------------------------------------------------------
// Stream memory expansion
// ---------------------------------------------------------------------

void
SmtCore::streamStage()
{
    // The stream memory unit sustains at most `vectorLanes` element
    // accesses per cycle in total, shared by all in-flight streams (two
    // address generators feeding the two vector ports).
    int budget = _cfg.vectorLanes;
    for (size_t i = 0; i < _activeStreams.size();) {
        if (budget <= 0)
            break;
        IqEntry ref = _activeStreams[i];
        Thread &t = _threads[static_cast<size_t>(ref.tid)];
        RobEntry &e = entryAt(t, ref.pos);
        if (e.pos != ref.pos || e.state != State::Executing) {
            // Squashed or otherwise gone.
            _activeStreams.erase(_activeStreams.begin() +
                                 static_cast<long>(i));
            continue;
        }
        uint32_t total = e.inst.memAccesses();
        int issuedThisCycle = 0;
        while (e.elemsIssued < total && issuedThisCycle < budget) {
            mem::MemAccess req;
            req.addr = e.inst.elementAddr(e.elemsIssued);
            req.size = e.inst.accessSize;
            req.isWrite = e.inst.isStore();
            req.isVector = true;
            req.nonTemporal = false;
            req.threadId = ref.tid;
            mem::MemReply rep = _mem.access(_now, req);
            if (!rep.accepted)
                break;
            e.streamReady = std::max(e.streamReady, rep.readyCycle);
            ++e.elemsIssued;
            ++issuedThisCycle;
        }
        budget -= issuedThisCycle;
        if (e.elemsIssued >= total) {
            e.state = State::Done;
            e.doneCycle = std::max(e.streamReady, _now + 1);
            _activeStreams.erase(_activeStreams.begin() +
                                 static_cast<long>(i));
            continue;
        }
        ++i;
    }
}

// ---------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------

bool
SmtCore::tryExecute(int tid, RobEntry &e, QueueKind kind)
{
    const isa::OpInfo &info = isa::opInfo(e.inst.opcode());
    OpClass cls = info.cls;

    switch (kind) {
      case QueueKind::Int:
        if (cls == OpClass::IntDiv) {
            if (_divBusyUntil > _now)
                return false;
            _divBusyUntil = _now + info.latency;
        }
        e.state = State::Done;
        e.doneCycle = _now + info.latency;
        if (e.mispredicted) {
            _stats.counter("mispredicts") += 1;
            flushThread(tid, e.pos);
        }
        return true;

      case QueueKind::Fp:
        if (cls == OpClass::FpDiv) {
            if (_fdivBusyUntil > _now)
                return false;
            _fdivBusyUntil = _now + info.latency;
        }
        e.state = State::Done;
        e.doneCycle = _now + info.latency;
        return true;

      case QueueKind::Simd:
        if (isa::isMom(cls)) {
            if (_momFuBusyUntil > _now)
                return false;
            uint32_t len = std::max<uint32_t>(1, e.inst.streamLen);
            uint64_t occupancy =
                (len + _cfg.vectorLanes - 1) /
                static_cast<uint32_t>(_cfg.vectorLanes);
            _momFuBusyUntil = _now + occupancy;
            e.state = State::Done;
            e.doneCycle = _now + info.latency + occupancy - 1;
        } else {
            e.state = State::Done;
            e.doneCycle = _now + info.latency;
        }
        return true;

      case QueueKind::Mem: {
        if (cls == OpClass::MomLoad || cls == OpClass::MomStore) {
            // Hand over to the stream engine.
            e.state = State::Executing;
            e.elemsIssued = 0;
            e.streamReady = 0;
            _activeStreams.push_back({ tid, e.pos });
            return true;
        }
        if (e.inst.isStore()) {
            // Address generation; the access happens at graduation.
            e.state = State::Done;
            e.doneCycle = _now + 1;
            return true;
        }
        mem::MemAccess req;
        req.addr = e.inst.addr;
        req.size = e.inst.accessSize;
        req.isWrite = false;
        req.isVector = e.inst.isMmx();
        req.threadId = tid;
        mem::MemReply rep = _mem.access(_now, req);
        if (!rep.accepted)
            return false;       // retry next cycle
        e.state = State::Done;
        e.doneCycle = rep.readyCycle;
        return true;
      }
    }
    return false;
}

void
SmtCore::issueFromQueue(std::vector<IqEntry> &queue, int width,
                        QueueKind kind)
{
    int used = 0;
    size_t keep = 0;
    size_t i = 0;
    for (; i < queue.size(); ++i) {
        IqEntry ref = queue[i];
        Thread &t = _threads[static_cast<size_t>(ref.tid)];
        RobEntry &e = entryAt(t, ref.pos);
        if (e.pos != ref.pos || e.state != State::Dispatched)
            continue;           // squashed/stale: drop from the queue
        if (used >= width) {
            queue[keep++] = ref;
            continue;
        }
        if (!operandsReady(t, e)) {
            queue[keep++] = ref;
            continue;
        }
        ++used;                 // an issue slot is consumed by the attempt
        if (tryExecute(ref.tid, e, kind)) {
            t.iqCount -= 1;
            t.oqCount -= e.inst.eqInsts();
            _stats.counter("issued") += 1;
        } else {
            queue[keep++] = ref;
        }
    }
    queue.resize(keep);
}

void
SmtCore::issueStage()
{
    issueFromQueue(_memQ, _cfg.memIssue, QueueKind::Mem);
    issueFromQueue(_intQ, _cfg.intIssue, QueueKind::Int);
    issueFromQueue(_fpQ, _cfg.fpIssue, QueueKind::Fp);
    issueFromQueue(_simdQ, _cfg.simdIssue, QueueKind::Simd);
}

// ---------------------------------------------------------------------
// Dispatch (decode + rename)
// ---------------------------------------------------------------------

void
SmtCore::dispatchStage()
{
    int budget = _cfg.decodeWidth;
    int n = _cfg.numThreads;
    std::vector<bool> blocked(static_cast<size_t>(n), false);
    bool progress = true;
    while (budget > 0 && progress) {
        progress = false;
        for (int i = 0; i < n && budget > 0; ++i) {
            int tid = (i + _dispatchRotate) % n;
            if (blocked[static_cast<size_t>(tid)])
                continue;
            Thread &t = _threads[static_cast<size_t>(tid)];
            if (t.fetchQ.empty())
                continue;

            // Structural checks.
            if (t.tail - t.head >= t.rob.size()) {
                blocked[static_cast<size_t>(tid)] = true;
                _stats.counter("robFullStalls") += 1;
                continue;
            }
            const FetchedInst &f = t.fetchQ.front();
            QueueKind kind = isa::queueKind(f.inst.opClass());
            std::vector<IqEntry> *queue = nullptr;
            int cap = 0;
            switch (kind) {
              case QueueKind::Int:
                queue = &_intQ;
                cap = _cfg.intQueue;
                break;
              case QueueKind::Mem:
                queue = &_memQ;
                cap = _cfg.memQueue;
                break;
              case QueueKind::Fp:
                queue = &_fpQ;
                cap = _cfg.fpQueue;
                break;
              case QueueKind::Simd:
                queue = &_simdQ;
                cap = _cfg.simdQueue;
                break;
            }
            bool isNop = f.inst.opClass() == OpClass::Nop;
            if (!isNop && static_cast<int>(queue->size()) >= cap) {
                blocked[static_cast<size_t>(tid)] = true;
                _stats.counter("iqFullStalls") += 1;
                continue;
            }
            if (isa::isValidReg(f.inst.dst) &&
                _freeRegs[physPoolOf(f.inst.dst)] <= 0) {
                blocked[static_cast<size_t>(tid)] = true;
                _stats.counter("regFullStalls") += 1;
                continue;
            }

            // Allocate and rename.
            uint64_t pos = t.tail++;
            RobEntry &e = entryAt(t, pos);
            e = RobEntry{};
            e.inst = f.inst;
            e.pos = pos;
            e.mispredicted = f.mispredicted;

            isa::RegRef srcs[3] = { f.inst.src0, f.inst.src1, f.inst.src2 };
            for (int sidx = 0; sidx < 3; ++sidx) {
                e.prod[sidx] = isa::isValidReg(srcs[sidx])
                    ? t.rename[srcs[sidx]] : -1;
            }
            if (isa::isValidReg(f.inst.dst)) {
                e.prevWriter = t.rename[f.inst.dst];
                t.rename[f.inst.dst] = static_cast<int64_t>(pos);
                _freeRegs[physPoolOf(f.inst.dst)] -= 1;
            }

            if (isNop) {
                e.state = State::Done;
                e.doneCycle = _now;
            } else {
                e.state = State::Dispatched;
                queue->push_back({ tid, pos });
                t.iqCount += 1;
                t.oqCount += e.inst.eqInsts();
            }

            t.fetchQ.pop_front();
            --budget;
            progress = true;
            _stats.counter("dispatched") += 1;
        }
    }
    _dispatchRotate = (_dispatchRotate + 1) % std::max(1, n);
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

bool
SmtCore::vectorPipeEmpty() const
{
    return _simdQ.empty() && _momFuBusyUntil <= _now;
}

std::vector<int>
SmtCore::fetchOrder()
{
    std::vector<int> order;
    order.reserve(static_cast<size_t>(_cfg.numThreads));
    for (int i = 0; i < _cfg.numThreads; ++i)
        order.push_back((i + _fetchRotate) % _cfg.numThreads);

    switch (_cfg.fetchPolicy) {
      case FetchPolicy::RoundRobin:
        break;
      case FetchPolicy::ICount:
        std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
            return _threads[static_cast<size_t>(a)].iqCount <
                   _threads[static_cast<size_t>(b)].iqCount;
        });
        break;
      case FetchPolicy::OCount:
        std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
            return _threads[static_cast<size_t>(a)].oqCount <
                   _threads[static_cast<size_t>(b)].oqCount;
        });
        break;
      case FetchPolicy::Balance: {
        // Promote one thread of the class the vector pipeline needs to
        // the front; the rest keep the round-robin rotation (the paper
        // breaks same-priority ties round-robin — a full class sort
        // would let two permanently-scalar threads monopolize both
        // fetch groups and starve the machine).
        bool wantVector = vectorPipeEmpty();
        for (size_t i = 0; i < order.size(); ++i) {
            if (_threads[static_cast<size_t>(order[i])].lastFetchVector ==
                wantVector) {
                int chosen = order[i];
                order.erase(order.begin() + static_cast<long>(i));
                order.insert(order.begin(), chosen);
                break;
            }
        }
        break;
      }
    }
    _fetchRotate = (_fetchRotate + 1) % std::max(1, _cfg.numThreads);
    return order;
}

void
SmtCore::fetchStage()
{
    std::vector<int> order = fetchOrder();
    size_t orderIdx = 0;

    for (int g = 0; g < _cfg.fetchGroups; ++g) {
        // Find the next eligible thread (the same thread may supply both
        // groups when it is the only one ready).
        int tid = -1;
        for (size_t scanned = 0; scanned < order.size(); ++scanned) {
            int cand = order[(orderIdx + scanned) % order.size()];
            Thread &t = _threads[static_cast<size_t>(cand)];
            if (!t.prog || t.cursor >= t.prog->size())
                continue;
            if (t.fetchReady > _now)
                continue;
            if (static_cast<int>(t.fetchQ.size()) + _cfg.fetchGroupSize >
                _cfg.fetchQueueDepth)
                continue;
            tid = cand;
            orderIdx = (orderIdx + scanned + 1) % order.size();
            break;
        }
        if (tid < 0)
            return;

        Thread &t = _threads[static_cast<size_t>(tid)];
        const auto &insts = t.prog->insts();
        uint64_t groupPc = insts[t.cursor].pc;
        mem::FetchReply rep = _mem.ifetch(_now, groupPc);
        if (!rep.accepted) {
            _stats.counter("ifetchRejected") += 1;
            continue;       // I-cache port/bank conflict this cycle
        }
        if (!rep.hit) {
            t.fetchReady = rep.readyCycle;
            _stats.counter("icacheMissStalls") += 1;
            continue;
        }

        bool fetchedVector = false;
        for (int k = 0; k < _cfg.fetchGroupSize &&
                        t.cursor < t.prog->size(); ++k) {
            FetchedInst f;
            f.inst = insts[t.cursor];
            ++t.cursor;

            if (f.inst.isCondBranch()) {
                bool pred = _bpred.predict(tid, f.inst.pc);
                bool actual = f.inst.taken();
                f.mispredicted = (pred != actual);
                _bpred.update(tid, f.inst.pc, actual);
                _stats.counter("condBranches") += 1;
            }
            if (isa::isSimd(f.inst.opClass()))
                fetchedVector = true;

            t.fetchQ.push_back(f);
            _stats.counter("fetched") += 1;

            // A group ends at taken control flow.
            if (f.inst.isControl() && f.inst.taken())
                break;
        }
        t.lastFetchVector = fetchedVector;
    }
}

// ---------------------------------------------------------------------
// Flush
// ---------------------------------------------------------------------

void
SmtCore::flushThread(int tid, uint64_t branchPos)
{
    Thread &t = _threads[static_cast<size_t>(tid)];
    RobEntry &branch = entryAt(t, branchPos);

    // Roll back rename state and free registers, youngest first.
    while (t.tail > branchPos + 1) {
        uint64_t pos = --t.tail;
        RobEntry &e = entryAt(t, pos);
        if (e.pos != pos)
            continue;
        if (isa::isValidReg(e.inst.dst)) {
            t.rename[e.inst.dst] = e.prevWriter;
            _freeRegs[physPoolOf(e.inst.dst)] += 1;
        }
        if (e.state == State::Dispatched) {
            t.iqCount -= 1;
            t.oqCount -= e.inst.eqInsts();
        }
        e.state = State::Empty;
        e.pos = ~0ull;
        _stats.counter("squashed") += 1;
    }

    auto scrub = [tid, branchPos](std::vector<IqEntry> &q) {
        q.erase(std::remove_if(q.begin(), q.end(),
                               [tid, branchPos](const IqEntry &ref) {
                    return ref.tid == tid && ref.pos > branchPos;
                }), q.end());
    };
    scrub(_intQ);
    scrub(_memQ);
    scrub(_fpQ);
    scrub(_simdQ);
    scrub(_activeStreams);

    // Redirect the front end. Dispatch follows fetch order exactly, so a
    // thread's ROB position equals its trace index; the correct-path
    // continuation starts right after the branch.
    t.fetchQ.clear();
    t.cursor = static_cast<size_t>(branchPos + 1);

    t.fetchReady = std::max(t.fetchReady,
                            branch.doneCycle +
                            static_cast<uint64_t>(_cfg.mispredictPenalty));
    _stats.counter("flushes") += 1;
}

} // namespace momsim::cpu
