/**
 * @file
 * Configuration of the SMT core (Section 3, "Architectural Parameters").
 *
 * The machine is an 8-way R10000-flavoured out-of-order core: it fetches
 * up to two groups of four instructions per cycle, renames through shared
 * physical register pools, issues up to 4 integer + 4 memory + 4 FP
 * operations per cycle, plus 2 MMX ops (two media FUs) or 1 MOM stream op
 * (one media FU with two vector lanes) depending on the extension.
 */

#ifndef MOMSIM_CPU_CORE_CONFIG_HH
#define MOMSIM_CPU_CORE_CONFIG_HH

#include "cpu/fetch_policy.hh"
#include "isa/simd_isa.hh"

namespace momsim::cpu
{

struct CoreConfig
{
    int numThreads = 1;
    isa::SimdIsa simd = isa::SimdIsa::Mmx;
    FetchPolicy fetchPolicy = FetchPolicy::RoundRobin;

    // Front end.
    int fetchGroups = 2;            ///< thread groups per cycle
    int fetchGroupSize = 4;         ///< instructions per group
    int fetchQueueDepth = 16;       ///< per-thread fetch buffer
    int decodeWidth = 8;
    int mispredictPenalty = 3;      ///< redirect bubble after resolve

    // Issue widths per queue (paper: 4 int, 4 mem, 4 fp; 2 MMX or 1 MOM).
    int intIssue = 4;
    int memIssue = 4;
    int fpIssue = 4;
    int simdIssue = 2;              ///< set to 1 for MOM by preset()

    int vectorLanes = 2;            ///< MOM media FU width
    int commitWidth = 8;

    // Window / queue / register-file sizing (Table 1; see preset()).
    int windowPerThread = 64;       ///< graduation-window share per thread
    int intQueue = 32;
    int memQueue = 32;
    int fpQueue = 24;
    int simdQueue = 24;
    int intPhysRegs = 80;
    int fpPhysRegs = 64;
    int simdPhysRegs = 64;          ///< MMX regs, or MOM stream regs

    /**
     * Let the core jump over cycles in which no pipeline stage can make
     * progress (see SmtCore::nextEventCycle). Purely a simulator-speed
     * knob: results are identical either way — the differential test in
     * tests/test_kernel.cc holds both settings to the same RunResult.
     */
    bool enableFastForward = true;

    /**
     * The Table-1 presets: near-saturation sizes for 1/2/4/8 threads,
     * derived by the saturation sweep in bench/table1_saturation (the
     * paper's own procedure; its printed numbers are unreadable in the
     * available scan).
     */
    static CoreConfig preset(int threads, isa::SimdIsa simd,
                             FetchPolicy policy = FetchPolicy::RoundRobin);
};

} // namespace momsim::cpu

#endif // MOMSIM_CPU_CORE_CONFIG_HH
