/**
 * @file
 * Logical register references.
 *
 * A RegRef packs a register class and index into one byte:
 *   bits 7..6  class (int / fp / mmx / mom-stream)
 *   bits 5..0  index within the class
 *
 * Register-file shapes per the paper:
 *   - 32 logical integer registers; index 30 is the MOM stream-length (SL)
 *     register, which is architecturally an integer register and is renamed
 *     through the integer pool; index 31 is the hardwired zero register.
 *   - 32 logical FP registers.
 *   - 32 logical MMX registers ("as opposed to 8" in real SSE).
 *   - 16 logical MOM stream registers (each up to 16 MMX-like registers),
 *     plus 2 logical 192-bit packed accumulators at indices 16 and 17.
 */

#ifndef MOMSIM_ISA_REGS_HH
#define MOMSIM_ISA_REGS_HH

#include <cstdint>

namespace momsim::isa
{

using RegRef = uint8_t;

/** Register class encoded in a RegRef's top bits. */
enum class RegClass : uint8_t
{
    Int = 0,
    Fp = 1,
    Mmx = 2,
    Mom = 3,
};

constexpr RegRef kNoReg = 0xFF;

constexpr int kNumLogicalInt = 32;
constexpr int kNumLogicalFp = 32;
constexpr int kNumLogicalMmx = 32;
constexpr int kNumLogicalMomStream = 16;
constexpr int kNumLogicalMomAcc = 2;

/** Integer index of the stream-length register. */
constexpr int kSlRegIndex = 30;
/** Integer index of the hardwired zero register. */
constexpr int kZeroRegIndex = 31;

constexpr RegRef
makeReg(RegClass cls, int index)
{
    return static_cast<RegRef>((static_cast<int>(cls) << 6) | (index & 0x3F));
}

constexpr RegRef intReg(int i) { return makeReg(RegClass::Int, i); }
constexpr RegRef fpReg(int i) { return makeReg(RegClass::Fp, i); }
constexpr RegRef mmxReg(int i) { return makeReg(RegClass::Mmx, i); }
constexpr RegRef momReg(int i) { return makeReg(RegClass::Mom, i); }

/** The two packed accumulators live in the MOM class above the streams. */
constexpr RegRef accReg(int i) { return makeReg(RegClass::Mom, 16 + i); }

/** The renamed-through-int-pool stream length register. */
constexpr RegRef slReg() { return intReg(kSlRegIndex); }

constexpr RegClass
regClass(RegRef r)
{
    return static_cast<RegClass>((r >> 6) & 0x3);
}

constexpr int
regIndex(RegRef r)
{
    return r & 0x3F;
}

constexpr bool
isValidReg(RegRef r)
{
    return r != kNoReg;
}

const char *toString(RegClass c);

} // namespace momsim::isa

#endif // MOMSIM_ISA_REGS_HH
