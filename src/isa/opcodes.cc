#include "isa/opcodes.hh"

#include "common/logging.hh"

namespace momsim::isa
{

namespace detail
{

const OpInfo kOpTable[kNumOps] = {
#define X(name, cls, lat, pipe) { #name, OpClass::cls, lat, pipe },
    MOMSIM_SCALAR_OPS(X)
    MOMSIM_MMX_OPS(X)
    MOMSIM_MOM_OPS(X)
#undef X
};

} // namespace detail

const char *
toString(OpClass c)
{
    switch (c) {
      case OpClass::IntAlu:   return "IntAlu";
      case OpClass::IntMul:   return "IntMul";
      case OpClass::IntDiv:   return "IntDiv";
      case OpClass::Branch:   return "Branch";
      case OpClass::Jump:     return "Jump";
      case OpClass::Load:     return "Load";
      case OpClass::Store:    return "Store";
      case OpClass::FpAlu:    return "FpAlu";
      case OpClass::FpMul:    return "FpMul";
      case OpClass::FpDiv:    return "FpDiv";
      case OpClass::MmxAlu:   return "MmxAlu";
      case OpClass::MmxMul:   return "MmxMul";
      case OpClass::MmxLoad:  return "MmxLoad";
      case OpClass::MmxStore: return "MmxStore";
      case OpClass::MomAlu:   return "MomAlu";
      case OpClass::MomMul:   return "MomMul";
      case OpClass::MomAcc:   return "MomAcc";
      case OpClass::MomLoad:  return "MomLoad";
      case OpClass::MomStore: return "MomStore";
      case OpClass::MomCtl:   return "MomCtl";
      case OpClass::Nop:      return "Nop";
    }
    return "?";
}

const char *
toString(MixGroup g)
{
    switch (g) {
      case MixGroup::Int:       return "int";
      case MixGroup::Fp:        return "fp";
      case MixGroup::SimdArith: return "simd";
      case MixGroup::Mem:       return "mem";
    }
    return "?";
}

} // namespace momsim::isa
