/**
 * @file
 * Operation classes and instruction-mix groups.
 *
 * OpClass drives pipeline behaviour (which issue queue, which functional
 * unit, which latency family). MixGroup is the coarser 4-way taxonomy the
 * paper's Table 3 reports (integer / FP / SIMD arithmetic / memory).
 */

#ifndef MOMSIM_ISA_OPCLASS_HH
#define MOMSIM_ISA_OPCLASS_HH

#include <cstdint>

namespace momsim::isa
{

/** Functional class of an instruction; selects queue/FU/latency. */
enum class OpClass : uint8_t
{
    IntAlu,     ///< simple integer ALU / logical / compare / cmov
    IntMul,     ///< integer multiply
    IntDiv,     ///< integer divide (unpipelined)
    Branch,     ///< conditional branch
    Jump,       ///< unconditional jump / call / return
    Load,       ///< scalar load (int or fp data)
    Store,      ///< scalar store
    FpAlu,      ///< FP add/sub/compare/convert/abs/neg
    FpMul,      ///< FP multiply
    FpDiv,      ///< FP divide / sqrt (unpipelined)
    MmxAlu,     ///< packed 64-bit SIMD ALU op
    MmxMul,     ///< packed SIMD multiply / multiply-add / SAD
    MmxLoad,    ///< 64-bit SIMD load
    MmxStore,   ///< 64-bit SIMD store
    MomAlu,     ///< stream SIMD ALU op (per-element MmxAlu semantics)
    MomMul,     ///< stream SIMD multiply family
    MomAcc,     ///< packed-accumulator op (MDMX-style, 192-bit accs)
    MomLoad,    ///< stream SIMD load (strided)
    MomStore,   ///< stream SIMD store (strided)
    MomCtl,     ///< stream control (stream-length register, moves)
    Nop,        ///< no-operation
};

/** Table-3 instruction-mix category. */
enum class MixGroup : uint8_t
{
    Int,        ///< integer arithmetic + control
    Fp,         ///< floating point arithmetic
    SimdArith,  ///< SIMD (MMX or MOM) non-memory work
    Mem,        ///< all memory operations, scalar and vector
};

/** Which back-end issue queue services an OpClass. */
enum class QueueKind : uint8_t
{
    Int,
    Mem,
    Fp,
    Simd,
};

constexpr bool
isLoad(OpClass c)
{
    return c == OpClass::Load || c == OpClass::MmxLoad ||
           c == OpClass::MomLoad;
}

constexpr bool
isStore(OpClass c)
{
    return c == OpClass::Store || c == OpClass::MmxStore ||
           c == OpClass::MomStore;
}

constexpr bool
isMemory(OpClass c)
{
    return isLoad(c) || isStore(c);
}

constexpr bool
isControl(OpClass c)
{
    return c == OpClass::Branch || c == OpClass::Jump;
}

constexpr bool
isMmx(OpClass c)
{
    return c == OpClass::MmxAlu || c == OpClass::MmxMul ||
           c == OpClass::MmxLoad || c == OpClass::MmxStore;
}

constexpr bool
isMom(OpClass c)
{
    return c == OpClass::MomAlu || c == OpClass::MomMul ||
           c == OpClass::MomAcc || c == OpClass::MomLoad ||
           c == OpClass::MomStore || c == OpClass::MomCtl;
}

constexpr bool
isSimd(OpClass c)
{
    return isMmx(c) || isMom(c);
}

constexpr bool
isFp(OpClass c)
{
    return c == OpClass::FpAlu || c == OpClass::FpMul ||
           c == OpClass::FpDiv;
}

/** Table-3 bucket for an OpClass. */
constexpr MixGroup
mixGroup(OpClass c)
{
    if (isMemory(c))
        return MixGroup::Mem;
    if (isFp(c))
        return MixGroup::Fp;
    if (isSimd(c))
        return MixGroup::SimdArith;
    return MixGroup::Int;
}

/** Issue queue servicing an OpClass. */
constexpr QueueKind
queueKind(OpClass c)
{
    if (isMemory(c))
        return QueueKind::Mem;
    if (isFp(c))
        return QueueKind::Fp;
    if (isSimd(c))
        return QueueKind::Simd;
    return QueueKind::Int;
}

const char *toString(OpClass c);
const char *toString(MixGroup g);

} // namespace momsim::isa

#endif // MOMSIM_ISA_OPCLASS_HH
