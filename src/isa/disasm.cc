#include "isa/trace_inst.hh"

#include "common/logging.hh"

namespace momsim::isa
{

const char *
toString(RegClass c)
{
    switch (c) {
      case RegClass::Int: return "r";
      case RegClass::Fp:  return "f";
      case RegClass::Mmx: return "mm";
      case RegClass::Mom: return "v";
    }
    return "?";
}

namespace
{

std::string
regStr(RegRef r)
{
    if (!isValidReg(r))
        return "-";
    RegClass cls = regClass(r);
    int idx = regIndex(r);
    if (cls == RegClass::Int && idx == kSlRegIndex)
        return "sl";
    if (cls == RegClass::Int && idx == kZeroRegIndex)
        return "rz";
    if (cls == RegClass::Mom && idx >= 16)
        return strfmt("acc%d", idx - 16);
    return strfmt("%s%d", toString(cls), idx);
}

} // namespace

std::string
disasm(const TraceInst &inst)
{
    std::string out = strfmt("%08x  %-10s", inst.pc, opName(inst.opcode()));
    bool first = true;
    auto append = [&](const std::string &operand) {
        out += first ? " " : ", ";
        out += operand;
        first = false;
    };
    if (isValidReg(inst.dst))
        append(regStr(inst.dst));
    for (RegRef src : { inst.src0, inst.src1, inst.src2 }) {
        if (isValidReg(src))
            append(regStr(src));
    }
    if (inst.isMemory()) {
        append(strfmt("[0x%x]", inst.addr));
        if (inst.isMom()) {
            out += strfmt(" len=%u stride=%d", inst.streamLen, inst.stride);
        }
    } else if (inst.isControl()) {
        append(strfmt("-> 0x%x%s", inst.addr,
                      inst.taken() ? " (T)" : " (NT)"));
    } else if (inst.isMom() && inst.opClass() != OpClass::MomCtl) {
        out += strfmt(" len=%u", inst.streamLen);
    }
    return out;
}

} // namespace momsim::isa
