/**
 * @file
 * Selector for which µ-SIMD extension a program / processor uses.
 */

#ifndef MOMSIM_ISA_SIMD_ISA_HH
#define MOMSIM_ISA_SIMD_ISA_HH

#include <cstring>

namespace momsim::isa
{

/** The two µ-SIMD extensions the paper compares on the same SMT core. */
enum class SimdIsa
{
    Mmx,    ///< conventional packed 64-bit extension (SSE-int-like)
    Mom,    ///< streaming vector µ-SIMD extension (the authors' MOM)
};

inline const char *
toString(SimdIsa isa)
{
    return isa == SimdIsa::Mmx ? "MMX" : "MOM";
}

/** Inverse of toString(); false when @p s names no ISA. */
inline bool
fromString(const char *s, SimdIsa &out)
{
    if (std::strcmp(s, "MMX") == 0) {
        out = SimdIsa::Mmx;
        return true;
    }
    if (std::strcmp(s, "MOM") == 0) {
        out = SimdIsa::Mom;
        return true;
    }
    return false;
}

} // namespace momsim::isa

#endif // MOMSIM_ISA_SIMD_ISA_HH
