/**
 * @file
 * The dynamic-instruction record produced by the emulation libraries and
 * consumed by the cycle-level SMT core.
 *
 * One TraceInst is one architected instruction. A MOM stream instruction is
 * a single TraceInst whose streamLen/stride fields describe the stream; the
 * core expands it into per-element work, and the statistics layer counts it
 * as streamLen "equivalent instructions" exactly as the paper's Table 3
 * does.
 */

#ifndef MOMSIM_ISA_TRACE_INST_HH
#define MOMSIM_ISA_TRACE_INST_HH

#include <cstdint>
#include <string>

#include "isa/opcodes.hh"
#include "isa/regs.hh"

namespace momsim::isa
{

/** TraceInst::flags bits. */
enum : uint8_t
{
    kFlagTaken = 0x01,      ///< control op whose branch was taken
    kFlagCond = 0x02,       ///< conditional branch (predictable)
    kFlagKernel = 0x04,     ///< emitted inside a vectorizable kernel
};

/** One dynamic instruction (packed to 20 bytes; traces hold millions). */
struct TraceInst
{
    uint32_t pc = 0;        ///< synthetic instruction address
    uint32_t addr = 0;      ///< effective address / branch target
    uint16_t op = 0;        ///< isa::Op
    uint8_t flags = 0;
    RegRef dst = kNoReg;
    RegRef src0 = kNoReg;
    RegRef src1 = kNoReg;
    RegRef src2 = kNoReg;
    uint8_t accessSize = 0; ///< bytes per element for memory ops
    uint8_t streamLen = 1;  ///< MOM stream length (1 otherwise)
    int16_t stride = 0;     ///< byte distance between stream elements

    Op opcode() const { return static_cast<Op>(op); }
    OpClass opClass() const { return isa::opClass(opcode()); }

    bool isLoad() const { return isa::isLoad(opClass()); }
    bool isStore() const { return isa::isStore(opClass()); }
    bool isMemory() const { return isa::isMemory(opClass()); }
    bool isControl() const { return isa::isControl(opClass()); }
    bool isCondBranch() const { return flags & kFlagCond; }
    bool taken() const { return flags & kFlagTaken; }
    bool isMom() const { return isa::isMom(opClass()); }
    bool isMmx() const { return isa::isMmx(opClass()); }

    /**
     * Equivalent-instruction weight: a MOM stream op of length L counts as
     * L instructions (the paper's accounting for Table 3 and EIPC).
     */
    uint32_t
    eqInsts() const
    {
        if (isMom() && opClass() != OpClass::MomCtl)
            return streamLen ? streamLen : 1;
        return 1;
    }

    /** Number of per-element memory accesses this instruction performs. */
    uint32_t
    memAccesses() const
    {
        if (!isMemory())
            return 0;
        return isMom() ? (streamLen ? streamLen : 1) : 1;
    }

    /** Address of the i-th element access. */
    uint64_t
    elementAddr(uint32_t i) const
    {
        return static_cast<uint64_t>(addr) +
               static_cast<int64_t>(stride) * i;
    }
};

static_assert(sizeof(TraceInst) <= 20, "TraceInst must stay compact");

/** Render a TraceInst for debugging. */
std::string disasm(const TraceInst &inst);

} // namespace momsim::isa

#endif // MOMSIM_ISA_TRACE_INST_HH
