/**
 * @file
 * Full opcode enumeration for the three ISA layers the paper models:
 *
 *  - a scalar Alpha-flavoured core ISA (loads/stores, integer, control, FP);
 *  - the MMX-like conventional packed µ-SIMD extension: an approximation of
 *    the SSE integer opcodes with 67 instructions plus the paper's extras
 *    (horizontal reductions, a three-source multiply-add);
 *  - the MOM streaming vector µ-SIMD extension: 121 opcodes, loosely
 *    MDMX-based, operating on streams of up to 16 MMX-like registers with
 *    two 192-bit packed accumulators and a renamed stream-length register.
 *
 * The per-extension opcode counts (67 and 121) are exactly the counts the
 * paper states in Section 3 and are pinned by static_asserts below.
 *
 * Format suffix conventions (MDMX style):
 *   .OB = eight packed unsigned bytes in 64 bits
 *   .QH = four packed signed halfwords in 64 bits
 *   VS  = vector (op) broadcast-scalar-element variant
 */

#ifndef MOMSIM_ISA_OPCODES_HH
#define MOMSIM_ISA_OPCODES_HH

#include <cstdint>

#include "common/logging.hh"
#include "isa/opclass.hh"

namespace momsim::isa
{

// Columns: name, OpClass, execution latency (cycles), pipelined.
// For MOM opcodes the latency is the per-element latency; the core adds
// the ceil(streamLen / laneCount) occupancy on top.

#define MOMSIM_SCALAR_OPS(X)                                                  \
    /* scalar loads */                                                        \
    X(LDBU,      Load,   1, true)  /* load byte, zero-extend          */      \
    X(LDWU,      Load,   1, true)  /* load halfword, zero-extend      */      \
    X(LDL,       Load,   1, true)  /* load 32-bit word                */      \
    X(LDQ,       Load,   1, true)  /* load 64-bit quadword            */      \
    X(FLDS,      Load,   1, true)  /* load FP single                  */      \
    /* scalar stores */                                                       \
    X(STB,       Store,  1, true)                                             \
    X(STW,       Store,  1, true)                                             \
    X(STL,       Store,  1, true)                                             \
    X(STQ,       Store,  1, true)                                             \
    X(FSTS,      Store,  1, true)                                             \
    /* integer ALU */                                                         \
    X(LDA,       IntAlu, 1, true)  /* address/immediate materialize   */      \
    X(ADDL,      IntAlu, 1, true)                                             \
    X(SUBL,      IntAlu, 1, true)                                             \
    X(AND,       IntAlu, 1, true)                                             \
    X(BIC,       IntAlu, 1, true)                                             \
    X(OR,        IntAlu, 1, true)                                             \
    X(ORNOT,     IntAlu, 1, true)                                             \
    X(XOR,       IntAlu, 1, true)                                             \
    X(SLL,       IntAlu, 1, true)                                             \
    X(SRL,       IntAlu, 1, true)                                             \
    X(SRA,       IntAlu, 1, true)                                             \
    X(CMPEQ,     IntAlu, 1, true)                                             \
    X(CMPLT,     IntAlu, 1, true)                                             \
    X(CMPLE,     IntAlu, 1, true)                                             \
    X(CMPULT,    IntAlu, 1, true)                                             \
    X(CMOVEQ,    IntAlu, 1, true)                                             \
    X(CMOVNE,    IntAlu, 1, true)                                             \
    X(SEXTB,     IntAlu, 1, true)                                             \
    X(SEXTW,     IntAlu, 1, true)                                             \
    X(ZAPNOT,    IntAlu, 1, true)  /* byte mask                       */      \
    /* integer multiply / divide */                                           \
    X(MULL,      IntMul, 3, true)                                             \
    X(UMULH,     IntMul, 3, true)                                             \
    X(DIVL,      IntDiv, 20, false)                                           \
    /* control */                                                             \
    X(BEQ,       Branch, 1, true)                                             \
    X(BNE,       Branch, 1, true)                                             \
    X(BLT,       Branch, 1, true)                                             \
    X(BGE,       Branch, 1, true)                                             \
    X(BLE,       Branch, 1, true)                                             \
    X(BGT,       Branch, 1, true)                                             \
    X(BR,        Jump,   1, true)                                             \
    X(JMP,       Jump,   1, true)                                             \
    X(JSR,       Jump,   1, true)                                             \
    X(RET,       Jump,   1, true)                                             \
    /* floating point */                                                      \
    X(FADD,      FpAlu,  4, true)                                             \
    X(FSUB,      FpAlu,  4, true)                                             \
    X(FMUL,      FpMul,  4, true)                                             \
    X(FDIV,      FpDiv,  16, false)                                           \
    X(FSQRT,     FpDiv,  20, false)                                           \
    X(FCMP,      FpAlu,  4, true)                                             \
    X(FCVTIF,    FpAlu,  4, true)                                             \
    X(FCVTFI,    FpAlu,  4, true)                                             \
    X(FABS,      FpAlu,  1, true)                                             \
    X(FNEG,      FpAlu,  1, true)                                             \
    /* misc */                                                                \
    X(NOP,       Nop,    1, true)

#define MOMSIM_MMX_OPS(X)                                                     \
    /* packed add/subtract: wrapping, signed-sat, unsigned-sat (14) */        \
    X(PADDB,     MmxAlu, 1, true)                                             \
    X(PADDW,     MmxAlu, 1, true)                                             \
    X(PADDD,     MmxAlu, 1, true)                                             \
    X(PADDSB,    MmxAlu, 1, true)                                             \
    X(PADDSW,    MmxAlu, 1, true)                                             \
    X(PADDUSB,   MmxAlu, 1, true)                                             \
    X(PADDUSW,   MmxAlu, 1, true)                                             \
    X(PSUBB,     MmxAlu, 1, true)                                             \
    X(PSUBW,     MmxAlu, 1, true)                                             \
    X(PSUBD,     MmxAlu, 1, true)                                             \
    X(PSUBSB,    MmxAlu, 1, true)                                             \
    X(PSUBSW,    MmxAlu, 1, true)                                             \
    X(PSUBUSB,   MmxAlu, 1, true)                                             \
    X(PSUBUSW,   MmxAlu, 1, true)                                             \
    /* packed multiply family (4) */                                          \
    X(PMULLW,    MmxMul, 3, true)                                             \
    X(PMULHW,    MmxMul, 3, true)                                             \
    X(PMULHUW,   MmxMul, 3, true)                                             \
    X(PMADDWD,   MmxMul, 3, true)                                             \
    /* SSE-int extras: average, min/max, sum of absolute differences (7) */   \
    X(PAVGB,     MmxAlu, 1, true)                                             \
    X(PAVGW,     MmxAlu, 1, true)                                             \
    X(PMAXUB,    MmxAlu, 1, true)                                             \
    X(PMAXSW,    MmxAlu, 1, true)                                             \
    X(PMINUB,    MmxAlu, 1, true)                                             \
    X(PMINSW,    MmxAlu, 1, true)                                             \
    X(PSADBW,    MmxMul, 3, true)                                             \
    /* packed compares (6) */                                                 \
    X(PCMPEQB,   MmxAlu, 1, true)                                             \
    X(PCMPEQW,   MmxAlu, 1, true)                                             \
    X(PCMPEQD,   MmxAlu, 1, true)                                             \
    X(PCMPGTB,   MmxAlu, 1, true)                                             \
    X(PCMPGTW,   MmxAlu, 1, true)                                             \
    X(PCMPGTD,   MmxAlu, 1, true)                                             \
    /* logical (4) */                                                         \
    X(PAND,      MmxAlu, 1, true)                                             \
    X(PANDN,     MmxAlu, 1, true)                                             \
    X(POR,       MmxAlu, 1, true)                                             \
    X(PXOR,      MmxAlu, 1, true)                                             \
    /* shifts (8) */                                                          \
    X(PSLLW,     MmxAlu, 1, true)                                             \
    X(PSLLD,     MmxAlu, 1, true)                                             \
    X(PSLLQ,     MmxAlu, 1, true)                                             \
    X(PSRLW,     MmxAlu, 1, true)                                             \
    X(PSRLD,     MmxAlu, 1, true)                                             \
    X(PSRLQ,     MmxAlu, 1, true)                                             \
    X(PSRAW,     MmxAlu, 1, true)                                             \
    X(PSRAD,     MmxAlu, 1, true)                                             \
    /* pack / unpack (9) */                                                   \
    X(PACKSSWB,  MmxAlu, 1, true)                                             \
    X(PACKSSDW,  MmxAlu, 1, true)                                             \
    X(PACKUSWB,  MmxAlu, 1, true)                                             \
    X(PUNPCKLBW, MmxAlu, 1, true)                                             \
    X(PUNPCKLWD, MmxAlu, 1, true)                                             \
    X(PUNPCKLDQ, MmxAlu, 1, true)                                             \
    X(PUNPCKHBW, MmxAlu, 1, true)                                             \
    X(PUNPCKHWD, MmxAlu, 1, true)                                             \
    X(PUNPCKHDQ, MmxAlu, 1, true)                                             \
    /* shuffle / insert / extract / mask-move (4) */                          \
    X(PSHUFW,    MmxAlu, 1, true)                                             \
    X(PINSRW,    MmxAlu, 1, true)                                             \
    X(PEXTRW,    MmxAlu, 1, true)                                             \
    X(PMOVMSKB,  MmxAlu, 1, true)                                             \
    /* moves between files and memory (6) */                                  \
    X(MOVDTM,    MmxAlu, 1, true)  /* int reg -> mmx low 32          */       \
    X(MOVDFM,    MmxAlu, 1, true)  /* mmx low 32 -> int reg          */       \
    X(MOVQRR,    MmxAlu, 1, true)                                             \
    X(MOVQLD,    MmxLoad, 1, true)                                            \
    X(MOVQST,    MmxStore, 1, true)                                           \
    X(MOVNTQ,    MmxStore, 1, true) /* non-temporal store            */       \
    /* paper extras: horizontal reductions + 3-source madd (5) */             \
    X(PHSUMBW,   MmxMul, 3, true)  /* reduce-add 8 bytes -> word     */       \
    X(PHSUMWD,   MmxMul, 3, true)  /* reduce-add 4 words -> dword    */       \
    X(PHMAXW,    MmxAlu, 2, true)  /* horizontal max of words        */       \
    X(PHMINW,    MmxAlu, 2, true)  /* horizontal min of words        */       \
    X(PMADD3WD,  MmxMul, 3, true)  /* three-source multiply-add      */

#define MOMSIM_MOM_OPS(X)                                                     \
    /* dual-format streaming ALU (24) */                                      \
    X(MADD_OB,   MomAlu, 1, true)                                             \
    X(MADD_QH,   MomAlu, 1, true)                                             \
    X(MADDS_OB,  MomAlu, 1, true)                                             \
    X(MADDS_QH,  MomAlu, 1, true)                                             \
    X(MADDUS_OB, MomAlu, 1, true)                                             \
    X(MADDUS_QH, MomAlu, 1, true)                                             \
    X(MSUB_OB,   MomAlu, 1, true)                                             \
    X(MSUB_QH,   MomAlu, 1, true)                                             \
    X(MSUBS_OB,  MomAlu, 1, true)                                             \
    X(MSUBS_QH,  MomAlu, 1, true)                                             \
    X(MSUBUS_OB, MomAlu, 1, true)                                             \
    X(MSUBUS_QH, MomAlu, 1, true)                                             \
    X(MMIN_OB,   MomAlu, 1, true)                                             \
    X(MMIN_QH,   MomAlu, 1, true)                                             \
    X(MMAX_OB,   MomAlu, 1, true)                                             \
    X(MMAX_QH,   MomAlu, 1, true)                                             \
    X(MAVG_OB,   MomAlu, 1, true)                                             \
    X(MAVG_QH,   MomAlu, 1, true)                                             \
    X(MCMPEQ_OB, MomAlu, 1, true)                                             \
    X(MCMPEQ_QH, MomAlu, 1, true)                                             \
    X(MCMPGT_OB, MomAlu, 1, true)                                             \
    X(MCMPGT_QH, MomAlu, 1, true)                                             \
    X(MABSD_OB,  MomAlu, 1, true)  /* |a-b| per element              */       \
    X(MABSD_QH,  MomAlu, 1, true)                                             \
    /* streaming multiplies (4) */                                            \
    X(MMULL_QH,  MomMul, 3, true)                                             \
    X(MMULH_QH,  MomMul, 3, true)                                             \
    X(MMULHU_QH, MomMul, 3, true)                                             \
    X(MMADD_QH,  MomMul, 3, true)  /* pmaddwd per element            */       \
    /* streaming logical (4) */                                               \
    X(MAND,      MomAlu, 1, true)                                             \
    X(MANDN,     MomAlu, 1, true)                                             \
    X(MOR,       MomAlu, 1, true)                                             \
    X(MXOR,      MomAlu, 1, true)                                             \
    /* streaming shifts (7) */                                                \
    X(MSLL_QH,   MomAlu, 1, true)                                             \
    X(MSRL_QH,   MomAlu, 1, true)                                             \
    X(MSRA_QH,   MomAlu, 1, true)                                             \
    X(MSLL_OB,   MomAlu, 1, true)                                             \
    X(MSRL_OB,   MomAlu, 1, true)                                             \
    X(MSLLQ,     MomAlu, 1, true)                                             \
    X(MSRLQ,     MomAlu, 1, true)                                             \
    /* streaming pack / unpack (9) */                                         \
    X(MPACKSS_WB, MomAlu, 1, true)                                            \
    X(MPACKSS_DW, MomAlu, 1, true)                                            \
    X(MPACKUS_WB, MomAlu, 1, true)                                            \
    X(MUNPCKL_BW, MomAlu, 1, true)                                            \
    X(MUNPCKL_WD, MomAlu, 1, true)                                            \
    X(MUNPCKL_DQ, MomAlu, 1, true)                                            \
    X(MUNPCKH_BW, MomAlu, 1, true)                                            \
    X(MUNPCKH_WD, MomAlu, 1, true)                                            \
    X(MUNPCKH_DQ, MomAlu, 1, true)                                            \
    /* vector (op) broadcast-scalar-element forms (12) */                     \
    X(MADDVS_OB, MomAlu, 1, true)                                             \
    X(MADDVS_QH, MomAlu, 1, true)                                             \
    X(MSUBVS_QH, MomAlu, 1, true)                                             \
    X(MMULLVS_QH, MomMul, 3, true)                                            \
    X(MMULHVS_QH, MomMul, 3, true)                                            \
    X(MMINVS_QH, MomAlu, 1, true)                                             \
    X(MMAXVS_QH, MomAlu, 1, true)                                             \
    X(MSLLVS_QH, MomAlu, 1, true)                                             \
    X(MSRAVS_QH, MomAlu, 1, true)                                             \
    X(MANDVS,    MomAlu, 1, true)                                             \
    X(MORVS,     MomAlu, 1, true)                                             \
    X(MXORVS,    MomAlu, 1, true)                                             \
    /* 192-bit packed-accumulator family (20) */                              \
    X(ACCADD_OB, MomAcc, 1, true)  /* acc += elements (widened)      */       \
    X(ACCADD_QH, MomAcc, 1, true)                                             \
    X(ACCSUB_OB, MomAcc, 1, true)                                             \
    X(ACCSUB_QH, MomAcc, 1, true)                                             \
    X(ACCMAC_QH, MomAcc, 3, true)  /* acc += a*b per halfword        */       \
    X(ACCMACU_OB, MomAcc, 3, true)                                            \
    X(ACCMACVS_QH, MomAcc, 3, true)                                           \
    X(ACCSAD_OB, MomAcc, 3, true)  /* acc += |a-b| summed            */       \
    X(ACCSQR_QH, MomAcc, 3, true)  /* acc += a*a                     */       \
    X(ACCABSD_OB, MomAcc, 1, true)                                            \
    X(RACC_OB,   MomAcc, 2, true)  /* read accumulator, truncate     */       \
    X(RACC_QH,   MomAcc, 2, true)                                             \
    X(RACCR_QH,  MomAcc, 2, true)  /* read with rounding             */       \
    X(RACCS_QH,  MomAcc, 2, true)  /* read with saturation           */       \
    X(RACCSR_QH, MomAcc, 2, true)                                             \
    X(RACC_DW,   MomAcc, 2, true)  /* read full 64-bit lanes         */       \
    X(ACCMAX_QH, MomAcc, 1, true)                                             \
    X(ACCMIN_QH, MomAcc, 1, true)                                             \
    X(CLRACC,    MomAcc, 1, true)                                             \
    X(MOVACC,    MomAcc, 1, true)                                             \
    /* streaming memory (11) */                                               \
    X(MLDQ,      MomLoad, 1, true)  /* unit-stride stream load        */      \
    X(MLDQS,     MomLoad, 1, true)  /* strided stream load            */      \
    X(MLDQNT,    MomLoad, 1, true)  /* non-temporal stream load       */      \
    X(MSTQ,      MomStore, 1, true)                                           \
    X(MSTQS,     MomStore, 1, true)                                           \
    X(MSTQNT,    MomStore, 1, true)                                           \
    X(MLDBC,     MomLoad, 1, true)  /* load one qword, broadcast      */      \
    X(MLDUB2QH,  MomLoad, 1, true)  /* load bytes, widen to halfwords */      \
    X(MLDUB2QHS, MomLoad, 1, true)                                            \
    X(MSTQH2UB,  MomStore, 1, true) /* store halfwords, sat to bytes  */      \
    X(MSTQH2UBS, MomStore, 1, true)                                           \
    /* stream control (6) */                                                  \
    X(MSETLEN,   MomCtl, 1, true)  /* int reg -> stream-length reg   */       \
    X(MRDLEN,    MomCtl, 1, true)                                             \
    X(MMOVQ,     MomCtl, 1, true)  /* stream register move           */       \
    X(MEXTR,     MomCtl, 1, true)  /* stream element -> mmx/int      */       \
    X(MINSR,     MomCtl, 1, true)                                             \
    X(MZERO,     MomCtl, 1, true)                                             \
    /* extended ops (24) */                                                   \
    X(MPACKRS_WB, MomAlu, 1, true) /* pack with rounding             */       \
    X(MPACKRS_DW, MomAlu, 1, true)                                            \
    X(MAVGR_OB,  MomAlu, 1, true)                                             \
    X(MAVGR_QH,  MomAlu, 1, true)                                             \
    X(MCMPGE_OB, MomAlu, 1, true)                                             \
    X(MCMPGE_QH, MomAlu, 1, true)                                             \
    X(MCMPLT_OB, MomAlu, 1, true)                                             \
    X(MCMPLT_QH, MomAlu, 1, true)                                             \
    X(MCMOV_OB,  MomAlu, 1, true)  /* mask select                    */       \
    X(MCMOV_QH,  MomAlu, 1, true)                                             \
    X(MABS_QH,   MomAlu, 1, true)                                             \
    X(MNEG_QH,   MomAlu, 1, true)                                             \
    X(MSCALEVS_QH, MomMul, 3, true) /* Q15 round-mult by scalar       */      \
    X(MMULR_QH,  MomMul, 3, true)  /* Q15 round-mult vector          */       \
    X(MPAIRADD_OB, MomAlu, 1, true)                                           \
    X(MPAIRADD_QH, MomAlu, 1, true)                                           \
    X(MSAD_OB,   MomMul, 3, true)  /* per-register psadbw            */       \
    X(MSHUF_QH,  MomAlu, 1, true)                                             \
    X(MLDL_M,    MomLoad, 1, true) /* 32-bit load into low half      */       \
    X(MCLAMP_QH, MomAlu, 1, true)                                             \
    X(MNOP,      MomCtl, 1, true)                                             \
    X(MSRAR_QH,  MomAlu, 1, true)  /* arith shift right w/ rounding  */       \
    X(MBITSEL,   MomAlu, 1, true)  /* three-source bitwise select    */       \
    X(MSWAPHL,   MomAlu, 1, true)

/** Every opcode across the three ISA layers. */
enum class Op : uint16_t
{
#define X(name, cls, lat, pipe) name,
    MOMSIM_SCALAR_OPS(X)
    MOMSIM_MMX_OPS(X)
    MOMSIM_MOM_OPS(X)
#undef X
    NumOps
};

constexpr uint16_t kNumOps = static_cast<uint16_t>(Op::NumOps);

constexpr uint16_t kFirstMmxOp = static_cast<uint16_t>(Op::PADDB);
constexpr uint16_t kLastMmxOp = static_cast<uint16_t>(Op::PMADD3WD);
constexpr uint16_t kFirstMomOp = static_cast<uint16_t>(Op::MADD_OB);
constexpr uint16_t kLastMomOp = static_cast<uint16_t>(Op::MSWAPHL);

constexpr int kNumScalarOps = kFirstMmxOp;
constexpr int kNumMmxOps = kLastMmxOp - kFirstMmxOp + 1;
constexpr int kNumMomOps = kLastMomOp - kFirstMomOp + 1;

// The paper, Section 3: "an approximation of SSE integer opcodes with 67
// instructions" and "MOM has 121 different opcodes".
static_assert(kNumMmxOps == 67, "MMX extension must have 67 opcodes");
static_assert(kNumMomOps == 121, "MOM extension must have 121 opcodes");

/** Static properties of an opcode. */
struct OpInfo
{
    const char *name;   ///< mnemonic
    OpClass cls;        ///< functional class
    uint8_t latency;    ///< execution latency (per element for MOM)
    bool pipelined;     ///< false => FU is busy for the whole latency
};

namespace detail
{
/** The static opcode-property table (defined in opcodes.cc). */
extern const OpInfo kOpTable[kNumOps];
} // namespace detail

/**
 * Look up the static properties of @p op. Inline on purpose: every
 * TraceInst accessor (opClass, isStore, eqInsts, ...) funnels through
 * this on the simulation kernel's hottest lines, so it must compile to
 * a single indexed load rather than a cross-TU call (the range check
 * survives only in Debug builds, where MOMSIM_ASSERT is live).
 */
inline const OpInfo &
opInfo(Op op)
{
    MOMSIM_ASSERT(static_cast<uint16_t>(op) < kNumOps,
                  "opcode out of range");
    return detail::kOpTable[static_cast<uint16_t>(op)];
}

inline OpClass
opClass(Op op)
{
    return opInfo(op).cls;
}

inline const char *
opName(Op op)
{
    return opInfo(op).name;
}

inline bool
isMmxOp(Op op)
{
    uint16_t v = static_cast<uint16_t>(op);
    return v >= kFirstMmxOp && v <= kLastMmxOp;
}

inline bool
isMomOp(Op op)
{
    uint16_t v = static_cast<uint16_t>(op);
    return v >= kFirstMomOp && v <= kLastMomOp;
}

} // namespace momsim::isa

#endif // MOMSIM_ISA_OPCODES_HH
