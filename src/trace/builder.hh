/**
 * @file
 * TraceBuilder: the infrastructure of the emulation libraries.
 *
 * A TraceBuilder owns, for one benchmark instance:
 *  - the simulated data memory (allocated with alloc(), accessed by the
 *    emitters, so the codecs genuinely compute through simulated memory);
 *  - the synthetic code layout: every routine gets a code region, each
 *    invocation re-emits the same PCs, and loop helpers re-emit identical
 *    loop-body PCs with an explicit backward branch — so the I-cache and
 *    branch predictor observe realistic static/dynamic code behaviour;
 *  - compiler-style round-robin logical register allocation;
 *  - the growing TraceInst vector.
 *
 * The typed emitters (ScalarEmitter, MmxEmitter, MomEmitter) layer the
 * instruction-set semantics on top of this class.
 */

#ifndef MOMSIM_TRACE_BUILDER_HH
#define MOMSIM_TRACE_BUILDER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "isa/simd_isa.hh"
#include "trace/program.hh"

namespace momsim::trace
{

/** Default virtual span reserved for one routine's code. */
constexpr uint32_t kDefaultRoutineSpan = 2048;

class TraceBuilder
{
  public:
    /**
     * @param name benchmark instance name
     * @param simd which µ-SIMD extension the vectorized kernels use
     * @param base start of this instance's address space (code then data)
     * @param dataCapacity simulated data memory size in bytes
     */
    TraceBuilder(std::string name, isa::SimdIsa simd, uint32_t base,
                 uint32_t dataCapacity = 4u << 20);

    isa::SimdIsa simdIsa() const { return _program.simdIsa(); }

    // -----------------------------------------------------------------
    // Simulated data memory
    // -----------------------------------------------------------------

    /** Reserve @p bytes of simulated memory; returns its address. */
    uint32_t alloc(uint32_t bytes, uint32_t align = 64);

    uint8_t peek8(uint32_t addr) const;
    uint16_t peek16(uint32_t addr) const;
    uint32_t peek32(uint32_t addr) const;
    uint64_t peek64(uint32_t addr) const;

    void poke8(uint32_t addr, uint8_t v);
    void poke16(uint32_t addr, uint16_t v);
    void poke32(uint32_t addr, uint32_t v);
    void poke64(uint32_t addr, uint64_t v);

    /** Bulk initialization helper (synthetic inputs, tables). */
    void pokeBytes(uint32_t addr, const uint8_t *data, uint32_t len);
    void peekBytes(uint32_t addr, uint8_t *out, uint32_t len) const;

    uint32_t dataBase() const { return _dataBase; }
    uint32_t dataBrk() const { return _dataBrk; }

    // -----------------------------------------------------------------
    // Code layout and control flow
    // -----------------------------------------------------------------

    /**
     * Enter the named routine: emits a JSR and moves the PC cursor to the
     * routine's region base (identical PCs on every invocation).
     */
    void callRoutine(const std::string &name,
                     uint32_t span = kDefaultRoutineSpan);

    /** Emit RET and restore the caller's PC cursor. */
    void returnFromRoutine();

    /** Mark the top of a loop body; returns the PC to branch back to. */
    uint32_t loopHead() const { return _pc; }

    /**
     * Close one loop iteration with a conditional backward branch reading
     * @p condReg. If @p again, the branch is taken and the PC cursor
     * returns to @p head so the next iteration re-emits the same PCs.
     */
    void loopBack(uint32_t head, isa::RegRef condReg, bool again);

    /** Current PC cursor (for tests). */
    uint32_t pc() const { return _pc; }

    // -----------------------------------------------------------------
    // Logical register allocation (compiler-style round robin)
    // -----------------------------------------------------------------

    isa::RegRef allocInt();
    isa::RegRef allocFp();
    isa::RegRef allocMmx();
    isa::RegRef allocMom();

    // -----------------------------------------------------------------
    // Raw emission
    // -----------------------------------------------------------------

    /**
     * Append an instruction with opcode @p op at the current PC and
     * advance the cursor. Returns a reference for operand fill-in that
     * stays valid until the next emit.
     */
    isa::TraceInst &emit(isa::Op op);

    size_t instCount() const { return _program.size(); }

    /** Hand the finished trace over (builder must not be reused). */
    Program take();

    /** Bytes of code span allocated so far (static footprint). */
    uint32_t codeFootprint() const { return _codeBrk - _codeBase; }

  private:
    struct Frame
    {
        uint32_t resumePc;
        uint32_t regionBase;
        uint32_t regionLimit;
    };

    uint32_t advancePc();

    Program _program;
    std::vector<uint8_t> _data;
    uint32_t _base;
    uint32_t _codeBase;
    uint32_t _codeBrk;
    uint32_t _dataBase;
    uint32_t _dataBrk;
    uint32_t _dataLimit;

    uint32_t _pc;
    uint32_t _regionBase;
    uint32_t _regionLimit;
    std::vector<Frame> _callStack;
    std::unordered_map<std::string, std::pair<uint32_t, uint32_t>> _regions;

    int _nextInt = 0;
    int _nextFp = 0;
    int _nextMmx = 0;
    int _nextMom = 0;
};

} // namespace momsim::trace

#endif // MOMSIM_TRACE_BUILDER_HH
