/**
 * @file
 * Functional semantics of packed 64-bit µ-SIMD values.
 *
 * Both emulation libraries (MMX and MOM) share these element-wise
 * operations: an MMX instruction applies one of them to a single 64-bit
 * register, a MOM stream instruction maps the same operation over up to 16
 * such registers. Layout conventions:
 *
 *   OB: eight unsigned bytes,  lane i at bits [8i+7  .. 8i]
 *   QH: four signed halfwords, lane i at bits [16i+15 .. 16i]
 *   DW: two 32-bit lanes
 *
 * All functions are pure; the emitters call them to compute the value side
 * of each trace record, and the test suite cross-checks them against
 * scalar reference loops.
 */

#ifndef MOMSIM_TRACE_PACKED_HH
#define MOMSIM_TRACE_PACKED_HH

#include <cstdint>

#include "common/fixed.hh"

namespace momsim::trace
{

// ---------------------------------------------------------------------
// Lane access
// ---------------------------------------------------------------------

inline uint8_t
laneB(uint64_t v, int i)
{
    return static_cast<uint8_t>(v >> (8 * i));
}

inline int16_t
laneW(uint64_t v, int i)
{
    return static_cast<int16_t>(v >> (16 * i));
}

inline uint16_t
laneUW(uint64_t v, int i)
{
    return static_cast<uint16_t>(v >> (16 * i));
}

inline int32_t
laneD(uint64_t v, int i)
{
    return static_cast<int32_t>(v >> (32 * i));
}

inline uint64_t
setLaneB(uint64_t v, int i, uint8_t x)
{
    int sh = 8 * i;
    return (v & ~(0xFFull << sh)) | (static_cast<uint64_t>(x) << sh);
}

inline uint64_t
setLaneW(uint64_t v, int i, uint16_t x)
{
    int sh = 16 * i;
    return (v & ~(0xFFFFull << sh)) | (static_cast<uint64_t>(x) << sh);
}

inline uint64_t
setLaneD(uint64_t v, int i, uint32_t x)
{
    int sh = 32 * i;
    return (v & ~(0xFFFFFFFFull << sh)) | (static_cast<uint64_t>(x) << sh);
}

/** Build a packed value from four halfwords (lane 0 first). */
inline uint64_t
packW(int16_t w0, int16_t w1, int16_t w2, int16_t w3)
{
    uint64_t v = 0;
    v = setLaneW(v, 0, static_cast<uint16_t>(w0));
    v = setLaneW(v, 1, static_cast<uint16_t>(w1));
    v = setLaneW(v, 2, static_cast<uint16_t>(w2));
    v = setLaneW(v, 3, static_cast<uint16_t>(w3));
    return v;
}

/** Broadcast one halfword into all four lanes. */
inline uint64_t
splatW(int16_t w)
{
    return packW(w, w, w, w);
}

/** Broadcast one byte into all eight lanes. */
inline uint64_t
splatB(uint8_t b)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v = setLaneB(v, i, b);
    return v;
}

// ---------------------------------------------------------------------
// Byte-lane (OB) operations
// ---------------------------------------------------------------------

template <typename Fn>
inline uint64_t
mapB(uint64_t a, uint64_t b, Fn fn)
{
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i)
        r = setLaneB(r, i, fn(laneB(a, i), laneB(b, i)));
    return r;
}

template <typename Fn>
inline uint64_t
mapW(uint64_t a, uint64_t b, Fn fn)
{
    uint64_t r = 0;
    for (int i = 0; i < 4; ++i) {
        r = setLaneW(r, i, static_cast<uint16_t>(
            fn(laneW(a, i), laneW(b, i))));
    }
    return r;
}

inline uint64_t
paddb(uint64_t a, uint64_t b)
{
    return mapB(a, b, [](uint8_t x, uint8_t y) {
        return static_cast<uint8_t>(x + y); });
}

inline uint64_t
paddusb(uint64_t a, uint64_t b)
{
    return mapB(a, b, [](uint8_t x, uint8_t y) {
        return satU8(static_cast<int32_t>(x) + y); });
}

inline uint64_t
psubb(uint64_t a, uint64_t b)
{
    return mapB(a, b, [](uint8_t x, uint8_t y) {
        return static_cast<uint8_t>(x - y); });
}

inline uint64_t
psubusb(uint64_t a, uint64_t b)
{
    return mapB(a, b, [](uint8_t x, uint8_t y) {
        return satU8(static_cast<int32_t>(x) - y); });
}

inline uint64_t
pavgb(uint64_t a, uint64_t b)
{
    return mapB(a, b, [](uint8_t x, uint8_t y) {
        return static_cast<uint8_t>((x + y + 1) >> 1); });
}

inline uint64_t
pmaxub(uint64_t a, uint64_t b)
{
    return mapB(a, b, [](uint8_t x, uint8_t y) {
        return x > y ? x : y; });
}

inline uint64_t
pminub(uint64_t a, uint64_t b)
{
    return mapB(a, b, [](uint8_t x, uint8_t y) {
        return x < y ? x : y; });
}

inline uint64_t
pcmpeqb(uint64_t a, uint64_t b)
{
    return mapB(a, b, [](uint8_t x, uint8_t y) {
        return static_cast<uint8_t>(x == y ? 0xFF : 0); });
}

inline uint64_t
pcmpgtb(uint64_t a, uint64_t b)
{
    return mapB(a, b, [](uint8_t x, uint8_t y) {
        return static_cast<uint8_t>(
            static_cast<int8_t>(x) > static_cast<int8_t>(y) ? 0xFF : 0); });
}

/** |a-b| per byte (MOM MABSD.OB). */
inline uint64_t
pabsdb(uint64_t a, uint64_t b)
{
    return mapB(a, b, [](uint8_t x, uint8_t y) {
        return static_cast<uint8_t>(x > y ? x - y : y - x); });
}

/** Sum of absolute byte differences, result in lane 0 (PSADBW). */
inline uint64_t
psadbw(uint64_t a, uint64_t b)
{
    uint32_t sum = 0;
    for (int i = 0; i < 8; ++i) {
        int d = static_cast<int>(laneB(a, i)) - laneB(b, i);
        sum += static_cast<uint32_t>(d < 0 ? -d : d);
    }
    return sum;
}

// ---------------------------------------------------------------------
// Halfword-lane (QH) operations
// ---------------------------------------------------------------------

inline uint64_t
paddw(uint64_t a, uint64_t b)
{
    return mapW(a, b, [](int16_t x, int16_t y) {
        return static_cast<int16_t>(x + y); });
}

inline uint64_t
paddsw(uint64_t a, uint64_t b)
{
    return mapW(a, b, [](int16_t x, int16_t y) { return satAdd16(x, y); });
}

inline uint64_t
psubw(uint64_t a, uint64_t b)
{
    return mapW(a, b, [](int16_t x, int16_t y) {
        return static_cast<int16_t>(x - y); });
}

inline uint64_t
psubsw(uint64_t a, uint64_t b)
{
    return mapW(a, b, [](int16_t x, int16_t y) { return satSub16(x, y); });
}

inline uint64_t
pmullw(uint64_t a, uint64_t b)
{
    return mapW(a, b, [](int16_t x, int16_t y) {
        return static_cast<int16_t>((static_cast<int32_t>(x) * y) & 0xFFFF);
    });
}

inline uint64_t
pmulhw(uint64_t a, uint64_t b)
{
    return mapW(a, b, [](int16_t x, int16_t y) {
        return static_cast<int16_t>((static_cast<int32_t>(x) * y) >> 16);
    });
}

/** Q15 multiply with rounding per lane (MOM MMULR.QH / MSCALEVS.QH). */
inline uint64_t
pmulrw(uint64_t a, uint64_t b)
{
    return mapW(a, b, [](int16_t x, int16_t y) { return gsmMultR(x, y); });
}

inline uint64_t
pmaxsw(uint64_t a, uint64_t b)
{
    return mapW(a, b, [](int16_t x, int16_t y) { return x > y ? x : y; });
}

inline uint64_t
pminsw(uint64_t a, uint64_t b)
{
    return mapW(a, b, [](int16_t x, int16_t y) { return x < y ? x : y; });
}

inline uint64_t
pavgw(uint64_t a, uint64_t b)
{
    return mapW(a, b, [](int16_t x, int16_t y) {
        return static_cast<int16_t>(
            (static_cast<int32_t>(static_cast<uint16_t>(x)) +
             static_cast<uint16_t>(y) + 1) >> 1); });
}

inline uint64_t
pcmpeqw(uint64_t a, uint64_t b)
{
    return mapW(a, b, [](int16_t x, int16_t y) {
        return static_cast<int16_t>(x == y ? -1 : 0); });
}

inline uint64_t
pcmpgtw(uint64_t a, uint64_t b)
{
    return mapW(a, b, [](int16_t x, int16_t y) {
        return static_cast<int16_t>(x > y ? -1 : 0); });
}

/** Multiply-add pairs of halfwords into two 32-bit lanes (PMADDWD). */
inline uint64_t
pmaddwd(uint64_t a, uint64_t b)
{
    int32_t lo = static_cast<int32_t>(laneW(a, 0)) * laneW(b, 0) +
                 static_cast<int32_t>(laneW(a, 1)) * laneW(b, 1);
    int32_t hi = static_cast<int32_t>(laneW(a, 2)) * laneW(b, 2) +
                 static_cast<int32_t>(laneW(a, 3)) * laneW(b, 3);
    uint64_t r = 0;
    r = setLaneD(r, 0, static_cast<uint32_t>(lo));
    r = setLaneD(r, 1, static_cast<uint32_t>(hi));
    return r;
}

inline uint64_t
psllw(uint64_t a, int n)
{
    uint64_t r = 0;
    for (int i = 0; i < 4; ++i) {
        r = setLaneW(r, i, static_cast<uint16_t>(
            n >= 16 ? 0 : (laneUW(a, i) << n)));
    }
    return r;
}

inline uint64_t
psrlw(uint64_t a, int n)
{
    uint64_t r = 0;
    for (int i = 0; i < 4; ++i) {
        r = setLaneW(r, i, static_cast<uint16_t>(
            n >= 16 ? 0 : (laneUW(a, i) >> n)));
    }
    return r;
}

inline uint64_t
psraw(uint64_t a, int n)
{
    uint64_t r = 0;
    int sh = n > 15 ? 15 : n;
    for (int i = 0; i < 4; ++i) {
        r = setLaneW(r, i,
                     static_cast<uint16_t>(laneW(a, i) >> sh));
    }
    return r;
}

/** Arithmetic shift right with rounding per lane (MOM MSRAR.QH). */
inline uint64_t
psrarw(uint64_t a, int n)
{
    if (n <= 0)
        return a;
    uint64_t r = 0;
    for (int i = 0; i < 4; ++i) {
        int32_t x = laneW(a, i);
        r = setLaneW(r, i, static_cast<uint16_t>(
            static_cast<int16_t>((x + (1 << (n - 1))) >> n)));
    }
    return r;
}

/** Per-lane absolute value with saturation (MOM MABS.QH). */
inline uint64_t
pabsw(uint64_t a)
{
    uint64_t r = 0;
    for (int i = 0; i < 4; ++i)
        r = setLaneW(r, i, static_cast<uint16_t>(satAbs16(laneW(a, i))));
    return r;
}

/** Adjacent-pair add of halfwords -> two 32-bit lanes (MPAIRADD.QH). */
inline uint64_t
ppairaddw(uint64_t a)
{
    uint64_t r = 0;
    r = setLaneD(r, 0, static_cast<uint32_t>(
        static_cast<int32_t>(laneW(a, 0)) + laneW(a, 1)));
    r = setLaneD(r, 1, static_cast<uint32_t>(
        static_cast<int32_t>(laneW(a, 2)) + laneW(a, 3)));
    return r;
}

// ---------------------------------------------------------------------
// Logical / pack / unpack / shuffle
// ---------------------------------------------------------------------

inline uint64_t pand(uint64_t a, uint64_t b) { return a & b; }
inline uint64_t pandn(uint64_t a, uint64_t b) { return ~a & b; }
inline uint64_t por(uint64_t a, uint64_t b) { return a | b; }
inline uint64_t pxor(uint64_t a, uint64_t b) { return a ^ b; }

/** Three-source bitwise select: mask ? a : b (MOM MBITSEL). */
inline uint64_t
pbitsel(uint64_t mask, uint64_t a, uint64_t b)
{
    return (mask & a) | (~mask & b);
}

/** Pack 8 halfwords (a then b) into 8 unsigned-saturated bytes. */
inline uint64_t
packuswb(uint64_t a, uint64_t b)
{
    uint64_t r = 0;
    for (int i = 0; i < 4; ++i) {
        r = setLaneB(r, i, satU8(laneW(a, i)));
        r = setLaneB(r, i + 4, satU8(laneW(b, i)));
    }
    return r;
}

/** Pack 8 halfwords into 8 signed-saturated bytes. */
inline uint64_t
packsswb(uint64_t a, uint64_t b)
{
    uint64_t r = 0;
    for (int i = 0; i < 4; ++i) {
        r = setLaneB(r, i, static_cast<uint8_t>(satS8(laneW(a, i))));
        r = setLaneB(r, i + 4, static_cast<uint8_t>(satS8(laneW(b, i))));
    }
    return r;
}

/** Pack 4 dwords (a then b) into 4 signed-saturated halfwords. */
inline uint64_t
packssdw(uint64_t a, uint64_t b)
{
    uint64_t r = 0;
    r = setLaneW(r, 0, static_cast<uint16_t>(satS16(laneD(a, 0))));
    r = setLaneW(r, 1, static_cast<uint16_t>(satS16(laneD(a, 1))));
    r = setLaneW(r, 2, static_cast<uint16_t>(satS16(laneD(b, 0))));
    r = setLaneW(r, 3, static_cast<uint16_t>(satS16(laneD(b, 1))));
    return r;
}

/** Interleave low bytes of a and b: b0 a0 b1 a1 ... (PUNPCKLBW). */
inline uint64_t
punpcklbw(uint64_t a, uint64_t b)
{
    uint64_t r = 0;
    for (int i = 0; i < 4; ++i) {
        r = setLaneB(r, 2 * i, laneB(a, i));
        r = setLaneB(r, 2 * i + 1, laneB(b, i));
    }
    return r;
}

inline uint64_t
punpckhbw(uint64_t a, uint64_t b)
{
    uint64_t r = 0;
    for (int i = 0; i < 4; ++i) {
        r = setLaneB(r, 2 * i, laneB(a, i + 4));
        r = setLaneB(r, 2 * i + 1, laneB(b, i + 4));
    }
    return r;
}

inline uint64_t
punpcklwd(uint64_t a, uint64_t b)
{
    uint64_t r = 0;
    r = setLaneW(r, 0, laneUW(a, 0));
    r = setLaneW(r, 1, laneUW(b, 0));
    r = setLaneW(r, 2, laneUW(a, 1));
    r = setLaneW(r, 3, laneUW(b, 1));
    return r;
}

inline uint64_t
punpckhwd(uint64_t a, uint64_t b)
{
    uint64_t r = 0;
    r = setLaneW(r, 0, laneUW(a, 2));
    r = setLaneW(r, 1, laneUW(b, 2));
    r = setLaneW(r, 2, laneUW(a, 3));
    r = setLaneW(r, 3, laneUW(b, 3));
    return r;
}

/** PSHUFW: select halfword lanes of a by 2-bit fields of imm. */
inline uint64_t
pshufw(uint64_t a, int imm)
{
    uint64_t r = 0;
    for (int i = 0; i < 4; ++i)
        r = setLaneW(r, i, laneUW(a, (imm >> (2 * i)) & 3));
    return r;
}

/** Swap the two 32-bit halves (MOM MSWAPHL). */
inline uint64_t
pswaphl(uint64_t a)
{
    return (a >> 32) | (a << 32);
}

// ---------------------------------------------------------------------
// Widening loads / narrowing stores (MOM MLDUB2QH / MSTQH2UB helpers)
// ---------------------------------------------------------------------

/** Zero-extend 4 packed bytes (low half of a) into 4 halfwords. */
inline uint64_t
widenUB2QH(uint32_t fourBytes)
{
    uint64_t r = 0;
    for (int i = 0; i < 4; ++i) {
        r = setLaneW(r, i, static_cast<uint16_t>(
            (fourBytes >> (8 * i)) & 0xFF));
    }
    return r;
}

/** Saturate 4 halfwords to unsigned bytes, return packed 32 bits. */
inline uint32_t
narrowQH2UB(uint64_t a)
{
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i)
        r |= static_cast<uint32_t>(satU8(laneW(a, i))) << (8 * i);
    return r;
}

// ---------------------------------------------------------------------
// Horizontal reductions (the paper's MMX extras)
// ---------------------------------------------------------------------

/** Sum of the eight unsigned bytes (PHSUMBW). */
inline uint32_t
phsumbw(uint64_t a)
{
    uint32_t sum = 0;
    for (int i = 0; i < 8; ++i)
        sum += laneB(a, i);
    return sum;
}

/** Sum of the four signed halfwords (PHSUMWD). */
inline int32_t
phsumwd(uint64_t a)
{
    int32_t sum = 0;
    for (int i = 0; i < 4; ++i)
        sum += laneW(a, i);
    return sum;
}

/** Sum of the two signed 32-bit lanes. */
inline int64_t
phsumd(uint64_t a)
{
    return static_cast<int64_t>(laneD(a, 0)) + laneD(a, 1);
}

/** Horizontal max/min of signed halfwords. */
inline int16_t
phmaxw(uint64_t a)
{
    int16_t m = laneW(a, 0);
    for (int i = 1; i < 4; ++i)
        m = std::max(m, laneW(a, i));
    return m;
}

inline int16_t
phminw(uint64_t a)
{
    int16_t m = laneW(a, 0);
    for (int i = 1; i < 4; ++i)
        m = std::min(m, laneW(a, i));
    return m;
}

} // namespace momsim::trace

#endif // MOMSIM_TRACE_PACKED_HH
