#include "trace/program.hh"

#include "trace/inst_arena.hh"

namespace momsim::trace
{

MixSummary
Program::computeMix() const
{
    MixSummary m;
    for (const auto &inst : insts()) {
        uint32_t eq = inst.eqInsts();
        m.records += 1;
        m.eqInsts += eq;
        m.memAccesses += inst.memAccesses();
        switch (isa::mixGroup(inst.opClass())) {
          case isa::MixGroup::Int:
            m.intOps += eq;
            break;
          case isa::MixGroup::Fp:
            m.fpOps += eq;
            break;
          case isa::MixGroup::SimdArith:
            m.simdOps += eq;
            break;
          case isa::MixGroup::Mem:
            m.memOps += eq;
            break;
        }
        if (inst.isCondBranch()) {
            m.branches += 1;
            if (inst.taken())
                m.takenBranches += 1;
        }
    }
    return m;
}

void
Program::seal(InstArena &arena)
{
    if (_sealed)
        return;
    mix();      // warm the memoized mix while the data is hot
    _span = arena.append(_insts.data(), _insts.size());
    _spanSize = _insts.size();
    _sealed = true;
    // Release the build storage; the arena block is the trace now.
    std::vector<isa::TraceInst>().swap(_insts);
}

Program
Program::rebased(uint32_t delta, const std::string &newName) const
{
    Program p(newName, _simd);
    InstView src = insts();
    p._insts.assign(src.begin(), src.end());
    for (auto &inst : p._insts) {
        inst.pc += delta;
        if (inst.isMemory() || inst.isControl())
            inst.addr += delta;
    }
    p.mix();    // warm the memoized mix before the copy is shared
    return p;
}

} // namespace momsim::trace
