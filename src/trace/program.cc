#include "trace/program.hh"

namespace momsim::trace
{

MixSummary
Program::computeMix() const
{
    MixSummary m;
    for (const auto &inst : _insts) {
        uint32_t eq = inst.eqInsts();
        m.records += 1;
        m.eqInsts += eq;
        m.memAccesses += inst.memAccesses();
        switch (isa::mixGroup(inst.opClass())) {
          case isa::MixGroup::Int:
            m.intOps += eq;
            break;
          case isa::MixGroup::Fp:
            m.fpOps += eq;
            break;
          case isa::MixGroup::SimdArith:
            m.simdOps += eq;
            break;
          case isa::MixGroup::Mem:
            m.memOps += eq;
            break;
        }
        if (inst.isCondBranch()) {
            m.branches += 1;
            if (inst.taken())
                m.takenBranches += 1;
        }
    }
    return m;
}

Program
Program::rebased(uint32_t delta, const std::string &newName) const
{
    Program p(newName, _simd);
    p._insts = _insts;
    for (auto &inst : p._insts) {
        inst.pc += delta;
        if (inst.isMemory() || inst.isControl())
            inst.addr += delta;
    }
    p.mix();    // warm the memoized mix before the copy is shared
    return p;
}

} // namespace momsim::trace
