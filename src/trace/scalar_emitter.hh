/**
 * @file
 * ScalarEmitter: the Alpha-flavoured scalar half of the emulation library.
 *
 * Each method computes a real value *and* records the corresponding
 * dynamic instruction(s), so a codec written against this API is both a
 * working implementation and a trace generator. Value handles (IVal/FVal)
 * carry the logical register that produced them, giving the simulated
 * pipeline true dataflow.
 */

#ifndef MOMSIM_TRACE_SCALAR_EMITTER_HH
#define MOMSIM_TRACE_SCALAR_EMITTER_HH

#include <cstdint>

#include "trace/builder.hh"

namespace momsim::trace
{

/** A 32-bit integer value living in a logical integer register. */
struct IVal
{
    int32_t v = 0;
    isa::RegRef reg = isa::kNoReg;

    uint32_t u() const { return static_cast<uint32_t>(v); }
};

/** A float value living in a logical FP register. */
struct FVal
{
    float v = 0.0f;
    isa::RegRef reg = isa::kNoReg;
};

class ScalarEmitter
{
  public:
    explicit ScalarEmitter(TraceBuilder &tb) : _tb(tb) {}

    TraceBuilder &builder() { return _tb; }

    // ------------- constants and moves -------------
    IVal imm(int32_t v);                       ///< LDA
    IVal copy(IVal a);                         ///< OR a, zero

    // ------------- integer arithmetic -------------
    IVal add(IVal a, IVal b);
    IVal addi(IVal a, int32_t k);
    IVal sub(IVal a, IVal b);
    IVal subi(IVal a, int32_t k);
    IVal mul(IVal a, IVal b);
    IVal muli(IVal a, int32_t k);
    IVal div(IVal a, IVal b);                  ///< unpipelined IntDiv
    IVal and_(IVal a, IVal b);
    IVal andi(IVal a, int32_t k);
    IVal or_(IVal a, IVal b);
    IVal ori(IVal a, int32_t k);
    IVal xor_(IVal a, IVal b);
    IVal xori(IVal a, int32_t k);
    IVal slli(IVal a, int k);
    IVal srli(IVal a, int k);
    IVal srai(IVal a, int k);
    IVal sextb(IVal a);
    IVal sextw(IVal a);

    // ------------- comparisons and selects -------------
    IVal cmpeq(IVal a, IVal b);                ///< 1 if equal else 0
    IVal cmpeqi(IVal a, int32_t k);
    IVal cmplt(IVal a, IVal b);                ///< signed <
    IVal cmplti(IVal a, int32_t k);
    IVal cmple(IVal a, IVal b);
    IVal cmpult(IVal a, IVal b);               ///< unsigned <
    IVal cmovne(IVal cond, IVal ifTrue, IVal ifFalse);

    // ------------- memory -------------
    IVal loadU8(IVal base, int32_t disp = 0);
    IVal loadS16(IVal base, int32_t disp = 0); ///< LDWU + SEXTW (2 insts)
    IVal loadU16(IVal base, int32_t disp = 0);
    IVal loadI32(IVal base, int32_t disp = 0);
    void storeU8(IVal base, int32_t disp, IVal val);
    void storeI16(IVal base, int32_t disp, IVal val);
    void storeI32(IVal base, int32_t disp, IVal val);

    // ------------- floating point -------------
    FVal fconst(float v);                      ///< load from constant pool
    FVal loadF(IVal base, int32_t disp = 0);
    void storeF(IVal base, int32_t disp, FVal val);
    FVal fadd(FVal a, FVal b);
    FVal fsub(FVal a, FVal b);
    FVal fmul(FVal a, FVal b);
    FVal fdiv(FVal a, FVal b);
    FVal fsqrt(FVal a);
    FVal fabs_(FVal a);
    FVal fneg(FVal a);
    FVal cvtIF(IVal a);
    IVal cvtFI(FVal a);                        ///< truncate toward zero
    IVal fcmplt(FVal a, FVal b);               ///< 1 if a<b (FCMP)

    // ------------- control flow -------------
    /**
     * A data-dependent conditional branch whose real outcome was @p taken.
     * The host `if` has already decided the path; this records the branch
     * the compiled code would execute.
     */
    void condBr(IVal cond, bool taken);

    /** Routine call/return (delegates to the builder's code layout). */
    void call(const std::string &name, uint32_t span = kDefaultRoutineSpan);
    void ret();

    /** Loop support; see TraceBuilder. */
    uint32_t loopHead() const { return _tb.loopHead(); }
    void loopBack(uint32_t head, IVal cond, bool again);

    void nop();

  private:
    IVal binop(isa::Op op, IVal a, IVal b, int32_t result);
    IVal immop(isa::Op op, IVal a, int32_t result);
    FVal fbinop(isa::Op op, FVal a, FVal b, float result);
    IVal loadInt(isa::Op op, IVal base, int32_t disp, int32_t value,
                 uint8_t size);
    void storeInt(isa::Op op, IVal base, int32_t disp, IVal val,
                  uint8_t size);

    TraceBuilder &_tb;
    IVal _constPool;            ///< lazy base pointer for FP constants
    bool _constPoolInit = false;
};

} // namespace momsim::trace

#endif // MOMSIM_TRACE_SCALAR_EMITTER_HH
