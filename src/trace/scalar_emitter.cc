#include "trace/scalar_emitter.hh"

#include <cmath>
#include <cstring>

namespace momsim::trace
{

using isa::Op;
using isa::TraceInst;

namespace
{

// C++17 stand-in for std::bit_cast (C++20).
uint32_t
floatBits(float v)
{
    uint32_t out;
    std::memcpy(&out, &v, sizeof(out));
    return out;
}

float
bitsToFloat(uint32_t bits)
{
    float out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

} // namespace

IVal
ScalarEmitter::imm(int32_t v)
{
    TraceInst &inst = _tb.emit(Op::LDA);
    inst.dst = _tb.allocInt();
    return { v, inst.dst };
}

IVal
ScalarEmitter::copy(IVal a)
{
    return immop(Op::OR, a, a.v);
}

IVal
ScalarEmitter::binop(Op op, IVal a, IVal b, int32_t result)
{
    TraceInst &inst = _tb.emit(op);
    inst.dst = _tb.allocInt();
    inst.src0 = a.reg;
    inst.src1 = b.reg;
    return { result, inst.dst };
}

IVal
ScalarEmitter::immop(Op op, IVal a, int32_t result)
{
    TraceInst &inst = _tb.emit(op);
    inst.dst = _tb.allocInt();
    inst.src0 = a.reg;
    return { result, inst.dst };
}

IVal ScalarEmitter::add(IVal a, IVal b) { return binop(Op::ADDL, a, b, a.v + b.v); }
IVal ScalarEmitter::addi(IVal a, int32_t k) { return immop(Op::ADDL, a, a.v + k); }
IVal ScalarEmitter::sub(IVal a, IVal b) { return binop(Op::SUBL, a, b, a.v - b.v); }
IVal ScalarEmitter::subi(IVal a, int32_t k) { return immop(Op::SUBL, a, a.v - k); }
IVal ScalarEmitter::mul(IVal a, IVal b) { return binop(Op::MULL, a, b, a.v * b.v); }
IVal ScalarEmitter::muli(IVal a, int32_t k) { return immop(Op::MULL, a, a.v * k); }

IVal
ScalarEmitter::div(IVal a, IVal b)
{
    MOMSIM_ASSERT(b.v != 0, "emitted division by zero");
    return binop(Op::DIVL, a, b, a.v / b.v);
}

IVal ScalarEmitter::and_(IVal a, IVal b) { return binop(Op::AND, a, b, a.v & b.v); }
IVal ScalarEmitter::andi(IVal a, int32_t k) { return immop(Op::AND, a, a.v & k); }
IVal ScalarEmitter::or_(IVal a, IVal b) { return binop(Op::OR, a, b, a.v | b.v); }
IVal ScalarEmitter::ori(IVal a, int32_t k) { return immop(Op::OR, a, a.v | k); }
IVal ScalarEmitter::xor_(IVal a, IVal b) { return binop(Op::XOR, a, b, a.v ^ b.v); }
IVal ScalarEmitter::xori(IVal a, int32_t k) { return immop(Op::XOR, a, a.v ^ k); }

IVal
ScalarEmitter::slli(IVal a, int k)
{
    return immop(Op::SLL, a, static_cast<int32_t>(a.u() << (k & 31)));
}

IVal
ScalarEmitter::srli(IVal a, int k)
{
    return immop(Op::SRL, a, static_cast<int32_t>(a.u() >> (k & 31)));
}

IVal
ScalarEmitter::srai(IVal a, int k)
{
    return immop(Op::SRA, a, a.v >> (k & 31));
}

IVal
ScalarEmitter::sextb(IVal a)
{
    return immop(Op::SEXTB, a, static_cast<int8_t>(a.v & 0xFF));
}

IVal
ScalarEmitter::sextw(IVal a)
{
    return immop(Op::SEXTW, a, static_cast<int16_t>(a.v & 0xFFFF));
}

IVal ScalarEmitter::cmpeq(IVal a, IVal b) { return binop(Op::CMPEQ, a, b, a.v == b.v); }
IVal ScalarEmitter::cmpeqi(IVal a, int32_t k) { return immop(Op::CMPEQ, a, a.v == k); }
IVal ScalarEmitter::cmplt(IVal a, IVal b) { return binop(Op::CMPLT, a, b, a.v < b.v); }
IVal ScalarEmitter::cmplti(IVal a, int32_t k) { return immop(Op::CMPLT, a, a.v < k); }
IVal ScalarEmitter::cmple(IVal a, IVal b) { return binop(Op::CMPLE, a, b, a.v <= b.v); }
IVal ScalarEmitter::cmpult(IVal a, IVal b) { return binop(Op::CMPULT, a, b, a.u() < b.u()); }

IVal
ScalarEmitter::cmovne(IVal cond, IVal ifTrue, IVal ifFalse)
{
    TraceInst &inst = _tb.emit(Op::CMOVNE);
    inst.dst = _tb.allocInt();
    inst.src0 = cond.reg;
    inst.src1 = ifTrue.reg;
    inst.src2 = ifFalse.reg;
    return { cond.v != 0 ? ifTrue.v : ifFalse.v, inst.dst };
}

IVal
ScalarEmitter::loadInt(Op op, IVal base, int32_t disp, int32_t value,
                       uint8_t size)
{
    TraceInst &inst = _tb.emit(op);
    inst.dst = _tb.allocInt();
    inst.src0 = base.reg;
    inst.addr = base.u() + static_cast<uint32_t>(disp);
    inst.accessSize = size;
    return { value, inst.dst };
}

void
ScalarEmitter::storeInt(Op op, IVal base, int32_t disp, IVal val,
                        uint8_t size)
{
    TraceInst &inst = _tb.emit(op);
    inst.src0 = val.reg;
    inst.src1 = base.reg;
    inst.addr = base.u() + static_cast<uint32_t>(disp);
    inst.accessSize = size;
}

IVal
ScalarEmitter::loadU8(IVal base, int32_t disp)
{
    uint32_t addr = base.u() + static_cast<uint32_t>(disp);
    return loadInt(Op::LDBU, base, disp, _tb.peek8(addr), 1);
}

IVal
ScalarEmitter::loadU16(IVal base, int32_t disp)
{
    uint32_t addr = base.u() + static_cast<uint32_t>(disp);
    return loadInt(Op::LDWU, base, disp, _tb.peek16(addr), 2);
}

IVal
ScalarEmitter::loadS16(IVal base, int32_t disp)
{
    IVal raw = loadU16(base, disp);
    return sextw(raw);
}

IVal
ScalarEmitter::loadI32(IVal base, int32_t disp)
{
    uint32_t addr = base.u() + static_cast<uint32_t>(disp);
    return loadInt(Op::LDL, base, disp,
                   static_cast<int32_t>(_tb.peek32(addr)), 4);
}

void
ScalarEmitter::storeU8(IVal base, int32_t disp, IVal val)
{
    storeInt(Op::STB, base, disp, val, 1);
    _tb.poke8(base.u() + static_cast<uint32_t>(disp),
              static_cast<uint8_t>(val.v));
}

void
ScalarEmitter::storeI16(IVal base, int32_t disp, IVal val)
{
    storeInt(Op::STW, base, disp, val, 2);
    _tb.poke16(base.u() + static_cast<uint32_t>(disp),
               static_cast<uint16_t>(val.v));
}

void
ScalarEmitter::storeI32(IVal base, int32_t disp, IVal val)
{
    storeInt(Op::STL, base, disp, val, 4);
    _tb.poke32(base.u() + static_cast<uint32_t>(disp),
               static_cast<uint32_t>(val.v));
}

FVal
ScalarEmitter::fconst(float v)
{
    if (!_constPoolInit) {
        uint32_t pool = _tb.alloc(4096, 64);
        _constPool = imm(static_cast<int32_t>(pool));
        _constPoolInit = true;
    }
    // Each constant occupies a fresh pool slot; real compilers dedupe,
    // but the trace cost (one FLDS) is identical.
    static_assert(sizeof(float) == 4);
    uint32_t slot = _tb.alloc(4, 4);
    _tb.poke32(slot, floatBits(v));
    TraceInst &inst = _tb.emit(Op::FLDS);
    inst.dst = _tb.allocFp();
    inst.src0 = _constPool.reg;
    inst.addr = slot;
    inst.accessSize = 4;
    return { v, inst.dst };
}

FVal
ScalarEmitter::loadF(IVal base, int32_t disp)
{
    uint32_t addr = base.u() + static_cast<uint32_t>(disp);
    TraceInst &inst = _tb.emit(Op::FLDS);
    inst.dst = _tb.allocFp();
    inst.src0 = base.reg;
    inst.addr = addr;
    inst.accessSize = 4;
    return { bitsToFloat(_tb.peek32(addr)), inst.dst };
}

void
ScalarEmitter::storeF(IVal base, int32_t disp, FVal val)
{
    uint32_t addr = base.u() + static_cast<uint32_t>(disp);
    TraceInst &inst = _tb.emit(Op::FSTS);
    inst.src0 = val.reg;
    inst.src1 = base.reg;
    inst.addr = addr;
    inst.accessSize = 4;
    _tb.poke32(addr, floatBits(val.v));
}

FVal
ScalarEmitter::fbinop(Op op, FVal a, FVal b, float result)
{
    TraceInst &inst = _tb.emit(op);
    inst.dst = _tb.allocFp();
    inst.src0 = a.reg;
    inst.src1 = b.reg;
    return { result, inst.dst };
}

FVal ScalarEmitter::fadd(FVal a, FVal b) { return fbinop(Op::FADD, a, b, a.v + b.v); }
FVal ScalarEmitter::fsub(FVal a, FVal b) { return fbinop(Op::FSUB, a, b, a.v - b.v); }
FVal ScalarEmitter::fmul(FVal a, FVal b) { return fbinop(Op::FMUL, a, b, a.v * b.v); }
FVal ScalarEmitter::fdiv(FVal a, FVal b) { return fbinop(Op::FDIV, a, b, a.v / b.v); }

FVal
ScalarEmitter::fsqrt(FVal a)
{
    TraceInst &inst = _tb.emit(Op::FSQRT);
    inst.dst = _tb.allocFp();
    inst.src0 = a.reg;
    return { std::sqrt(a.v), inst.dst };
}

FVal
ScalarEmitter::fabs_(FVal a)
{
    TraceInst &inst = _tb.emit(Op::FABS);
    inst.dst = _tb.allocFp();
    inst.src0 = a.reg;
    return { std::fabs(a.v), inst.dst };
}

FVal
ScalarEmitter::fneg(FVal a)
{
    TraceInst &inst = _tb.emit(Op::FNEG);
    inst.dst = _tb.allocFp();
    inst.src0 = a.reg;
    return { -a.v, inst.dst };
}

FVal
ScalarEmitter::cvtIF(IVal a)
{
    TraceInst &inst = _tb.emit(Op::FCVTIF);
    inst.dst = _tb.allocFp();
    inst.src0 = a.reg;
    return { static_cast<float>(a.v), inst.dst };
}

IVal
ScalarEmitter::cvtFI(FVal a)
{
    TraceInst &inst = _tb.emit(Op::FCVTFI);
    inst.dst = _tb.allocInt();
    inst.src0 = a.reg;
    return { static_cast<int32_t>(a.v), inst.dst };
}

IVal
ScalarEmitter::fcmplt(FVal a, FVal b)
{
    TraceInst &inst = _tb.emit(Op::FCMP);
    inst.dst = _tb.allocInt();
    inst.src0 = a.reg;
    inst.src1 = b.reg;
    return { a.v < b.v ? 1 : 0, inst.dst };
}

void
ScalarEmitter::condBr(IVal cond, bool taken)
{
    TraceInst &inst = _tb.emit(Op::BNE);
    inst.src0 = cond.reg;
    inst.flags |= isa::kFlagCond;
    if (taken)
        inst.flags |= isa::kFlagTaken;
    // Forward target a few instructions ahead; the exact distance only
    // matters for BTB indexing, which is modelled as precise.
    inst.addr = _tb.pc() + 16;
}

void
ScalarEmitter::call(const std::string &name, uint32_t span)
{
    _tb.callRoutine(name, span);
}

void
ScalarEmitter::ret()
{
    _tb.returnFromRoutine();
}

void
ScalarEmitter::loopBack(uint32_t head, IVal cond, bool again)
{
    _tb.loopBack(head, cond.reg, again);
}

void
ScalarEmitter::nop()
{
    _tb.emit(Op::NOP);
}

} // namespace momsim::trace
