/**
 * @file
 * MomEmitter: the streaming-vector µ-SIMD half of the emulation library.
 *
 * A MOM stream value (SVal) is a vector of up to 16 MMX-like 64-bit
 * registers. One emitted stream instruction covers the whole vector: the
 * pipeline later expands it element-by-element across the media FU's two
 * vector lanes, and the statistics layer weighs it by its stream length.
 *
 * Stream instructions implicitly read the stream-length (SL) register,
 * which is architecturally an integer register (renamed through the
 * integer pool) — setLen() writes it and subsequent stream ops carry the
 * dependence.
 *
 * The two 192-bit packed accumulators perform reductions across a whole
 * stream in one instruction (MDMX heritage); lanes are modelled with
 * 64-bit headroom which strictly contains the architected 48-bit lanes.
 */

#ifndef MOMSIM_TRACE_MOM_EMITTER_HH
#define MOMSIM_TRACE_MOM_EMITTER_HH

#include <array>
#include <cstdint>

#include "trace/builder.hh"
#include "trace/mmx_emitter.hh"
#include "trace/scalar_emitter.hh"

namespace momsim::trace
{

/** Maximum stream length (16 MMX-like registers per stream register). */
constexpr int kMaxStreamLen = 16;

/** A stream value: up to 16 packed 64-bit elements in a MOM register. */
struct SVal
{
    std::array<uint64_t, kMaxStreamLen> e{};
    int len = 0;
    isa::RegRef reg = isa::kNoReg;
};

class MomEmitter
{
  public:
    explicit MomEmitter(TraceBuilder &tb) : _tb(tb) {}

    /** Write the stream-length register (1..16). */
    void setLen(IVal n);

    int curLen() const { return _len; }

    // ------------- stream memory -------------
    /** Strided load of len 64-bit elements (MLDQ / MLDQS). */
    SVal loadQ(IVal base, int32_t disp, int32_t strideBytes);
    /** Strided load of len*4 bytes widened to halfwords (MLDUB2QH[S]). */
    SVal loadUB2QH(IVal base, int32_t disp, int32_t strideBytes);
    /** Load one qword and broadcast it to the whole stream (MLDBC). */
    SVal loadBC(IVal base, int32_t disp);
    /** Strided store of len 64-bit elements (MSTQ / MSTQS). */
    void storeQ(IVal base, int32_t disp, int32_t strideBytes, SVal v);
    /** Non-temporal variant (MSTQNT). */
    void storeNTQ(IVal base, int32_t disp, int32_t strideBytes, SVal v);
    /** Saturating narrowing store: halfwords -> bytes (MSTQH2UB[S]). */
    void storeQH2UB(IVal base, int32_t disp, int32_t strideBytes, SVal v);

    // ------------- stream ALU (element-wise, both streams) -------------
    SVal addQH(SVal a, SVal b);
    SVal addsQH(SVal a, SVal b);
    SVal subQH(SVal a, SVal b);
    SVal subsQH(SVal a, SVal b);
    SVal minQH(SVal a, SVal b);
    SVal maxQH(SVal a, SVal b);
    SVal avgQH(SVal a, SVal b);
    SVal absQH(SVal a);
    SVal addusOB(SVal a, SVal b);
    SVal subusOB(SVal a, SVal b);
    SVal avgOB(SVal a, SVal b);
    SVal absdOB(SVal a, SVal b);
    SVal mullQH(SVal a, SVal b);
    SVal mulhQH(SVal a, SVal b);
    SVal mulrQH(SVal a, SVal b);                ///< Q15 round multiply
    SVal maddQH(SVal a, SVal b);                ///< pmaddwd per element
    SVal andS(SVal a, SVal b);
    SVal orS(SVal a, SVal b);
    SVal xorS(SVal a, SVal b);
    SVal bitsel(SVal mask, SVal a, SVal b);     ///< MBITSEL
    SVal cmpgtQH(SVal a, SVal b);
    SVal sllQH(SVal a, int n);
    SVal sraQH(SVal a, int n);
    SVal srarQH(SVal a, int n);                 ///< shift right w/ rounding
    SVal packusWB(SVal a, SVal b);
    SVal unpcklBW(SVal a, SVal b);
    SVal unpckhBW(SVal a, SVal b);
    SVal pairAddQH(SVal a);

    // ------------- vector-scalar (broadcast element) forms -------------
    SVal addVSQH(SVal a, MVal s);
    SVal subVSQH(SVal a, MVal s);
    SVal mullVSQH(SVal a, MVal s);
    SVal mulhVSQH(SVal a, MVal s);
    SVal scaleVSQH(SVal a, MVal s);             ///< Q15 round-mult by scalar
    SVal maxVSQH(SVal a, MVal s);
    SVal minVSQH(SVal a, MVal s);

    // ------------- packed accumulators -------------
    void clrAcc(int acc);
    void accMacQH(int acc, SVal a, SVal b);     ///< acc.lane += sum_e a*b
    void accMacVSQH(int acc, SVal a, MVal s);
    void accSadOB(int acc, SVal a, SVal b);     ///< acc.lane0 += SAD
    void accAddQH(int acc, SVal a);
    void accSqrQH(int acc, SVal a);
    void accMaxQH(int acc, SVal a);

    /** Read accumulator lanes as saturated halfwords, >> rshift. */
    MVal raccSQH(int acc, int rshift);
    /** Read accumulator lanes 0/1 as two 32-bit lanes. */
    MVal raccDW(int acc);
    /** Read lane0 of the accumulator into an integer register (2 ops). */
    IVal raccToInt(int acc);

    // ------------- misc -------------
    /**
     * Emit a generic element-wise binary stream op. The returned SVal's
     * element values are copies of @p a; the caller is responsible for
     * overwriting them with the op's true semantics (used by kernel
     * backends for ops outside the emitter's named set).
     */
    SVal rawBinop(isa::Op op, SVal a, SVal b);

    /** Zero a stream register (MZERO). */
    SVal zero();
    /** Extract element @p idx into an MMX register (MEXTR). */
    MVal extract(SVal a, int idx);
    /** Insert an MMX value as element @p idx (MINSR). */
    SVal insert(SVal a, int idx, MVal m);

  private:
    struct AccState
    {
        std::array<int64_t, 8> lane{};
    };

    SVal newStream(int len);
    SVal binop(isa::Op op, SVal a, SVal b, uint64_t (*fn)(uint64_t, uint64_t));
    SVal unop(isa::Op op, SVal a, uint64_t (*fn)(uint64_t));
    SVal vsop(isa::Op op, SVal a, MVal s, uint64_t (*fn)(uint64_t, uint64_t));
    isa::TraceInst &emitStream(isa::Op op, int len);

    TraceBuilder &_tb;
    int _len = 0;
    isa::RegRef _slSrc = isa::kNoReg;   ///< register that last wrote SL
    AccState _accs[2];
};

} // namespace momsim::trace

#endif // MOMSIM_TRACE_MOM_EMITTER_HH
