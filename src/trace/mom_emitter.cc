#include "trace/mom_emitter.hh"

#include "trace/packed.hh"

namespace momsim::trace
{

using isa::Op;
using isa::TraceInst;

void
MomEmitter::setLen(IVal n)
{
    MOMSIM_ASSERT(n.v >= 1 && n.v <= kMaxStreamLen,
                  "stream length must be 1..16");
    TraceInst &inst = _tb.emit(Op::MSETLEN);
    inst.dst = isa::slReg();
    inst.src0 = n.reg;
    _len = n.v;
    _slSrc = isa::slReg();
}

SVal
MomEmitter::newStream(int len)
{
    SVal s;
    s.len = len;
    s.reg = _tb.allocMom();
    return s;
}

TraceInst &
MomEmitter::emitStream(Op op, int len)
{
    MOMSIM_ASSERT(len >= 1 && len <= kMaxStreamLen,
                  "stream op outside configured length");
    TraceInst &inst = _tb.emit(op);
    inst.streamLen = static_cast<uint8_t>(len);
    return inst;
}

SVal
MomEmitter::loadQ(IVal base, int32_t disp, int32_t strideBytes)
{
    MOMSIM_ASSERT(_len > 0, "stream length not set");
    uint32_t addr = base.u() + static_cast<uint32_t>(disp);
    TraceInst &inst = emitStream(strideBytes == 8 ? Op::MLDQ : Op::MLDQS,
                                 _len);
    SVal s = newStream(_len);
    inst.dst = s.reg;
    inst.src0 = base.reg;
    inst.src2 = _slSrc;
    inst.addr = addr;
    inst.stride = static_cast<int16_t>(strideBytes);
    inst.accessSize = 8;
    for (int i = 0; i < _len; ++i)
        s.e[i] = _tb.peek64(addr + static_cast<uint32_t>(strideBytes) * i);
    return s;
}

SVal
MomEmitter::loadUB2QH(IVal base, int32_t disp, int32_t strideBytes)
{
    MOMSIM_ASSERT(_len > 0, "stream length not set");
    uint32_t addr = base.u() + static_cast<uint32_t>(disp);
    TraceInst &inst = emitStream(
        strideBytes == 4 ? Op::MLDUB2QH : Op::MLDUB2QHS, _len);
    SVal s = newStream(_len);
    inst.dst = s.reg;
    inst.src0 = base.reg;
    inst.src2 = _slSrc;
    inst.addr = addr;
    inst.stride = static_cast<int16_t>(strideBytes);
    inst.accessSize = 4;
    for (int i = 0; i < _len; ++i) {
        uint32_t four = _tb.peek32(addr + static_cast<uint32_t>(strideBytes) * i);
        s.e[i] = widenUB2QH(four);
    }
    return s;
}

SVal
MomEmitter::loadBC(IVal base, int32_t disp)
{
    MOMSIM_ASSERT(_len > 0, "stream length not set");
    uint32_t addr = base.u() + static_cast<uint32_t>(disp);
    TraceInst &inst = emitStream(Op::MLDBC, 1);
    SVal s = newStream(_len);
    inst.dst = s.reg;
    inst.src0 = base.reg;
    inst.addr = addr;
    inst.accessSize = 8;
    uint64_t v = _tb.peek64(addr);
    for (int i = 0; i < _len; ++i)
        s.e[i] = v;
    return s;
}

void
MomEmitter::storeQ(IVal base, int32_t disp, int32_t strideBytes, SVal v)
{
    uint32_t addr = base.u() + static_cast<uint32_t>(disp);
    TraceInst &inst = emitStream(strideBytes == 8 ? Op::MSTQ : Op::MSTQS,
                                 v.len);
    inst.src0 = v.reg;
    inst.src1 = base.reg;
    inst.src2 = _slSrc;
    inst.addr = addr;
    inst.stride = static_cast<int16_t>(strideBytes);
    inst.accessSize = 8;
    for (int i = 0; i < v.len; ++i)
        _tb.poke64(addr + static_cast<uint32_t>(strideBytes) * i, v.e[i]);
}

void
MomEmitter::storeNTQ(IVal base, int32_t disp, int32_t strideBytes, SVal v)
{
    uint32_t addr = base.u() + static_cast<uint32_t>(disp);
    TraceInst &inst = emitStream(Op::MSTQNT, v.len);
    inst.src0 = v.reg;
    inst.src1 = base.reg;
    inst.src2 = _slSrc;
    inst.addr = addr;
    inst.stride = static_cast<int16_t>(strideBytes);
    inst.accessSize = 8;
    for (int i = 0; i < v.len; ++i)
        _tb.poke64(addr + static_cast<uint32_t>(strideBytes) * i, v.e[i]);
}

void
MomEmitter::storeQH2UB(IVal base, int32_t disp, int32_t strideBytes, SVal v)
{
    uint32_t addr = base.u() + static_cast<uint32_t>(disp);
    TraceInst &inst = emitStream(
        strideBytes == 4 ? Op::MSTQH2UB : Op::MSTQH2UBS, v.len);
    inst.src0 = v.reg;
    inst.src1 = base.reg;
    inst.src2 = _slSrc;
    inst.addr = addr;
    inst.stride = static_cast<int16_t>(strideBytes);
    inst.accessSize = 4;
    for (int i = 0; i < v.len; ++i) {
        _tb.poke32(addr + static_cast<uint32_t>(strideBytes) * i,
                   narrowQH2UB(v.e[i]));
    }
}

SVal
MomEmitter::binop(Op op, SVal a, SVal b, uint64_t (*fn)(uint64_t, uint64_t))
{
    MOMSIM_ASSERT(a.len == b.len, "stream length mismatch");
    TraceInst &inst = emitStream(op, a.len);
    SVal r = newStream(a.len);
    inst.dst = r.reg;
    inst.src0 = a.reg;
    inst.src1 = b.reg;
    inst.src2 = _slSrc;
    for (int i = 0; i < a.len; ++i)
        r.e[i] = fn(a.e[i], b.e[i]);
    return r;
}

SVal
MomEmitter::unop(Op op, SVal a, uint64_t (*fn)(uint64_t))
{
    TraceInst &inst = emitStream(op, a.len);
    SVal r = newStream(a.len);
    inst.dst = r.reg;
    inst.src0 = a.reg;
    inst.src2 = _slSrc;
    for (int i = 0; i < a.len; ++i)
        r.e[i] = fn(a.e[i]);
    return r;
}

SVal
MomEmitter::vsop(Op op, SVal a, MVal s, uint64_t (*fn)(uint64_t, uint64_t))
{
    TraceInst &inst = emitStream(op, a.len);
    SVal r = newStream(a.len);
    inst.dst = r.reg;
    inst.src0 = a.reg;
    inst.src1 = s.reg;
    inst.src2 = _slSrc;
    for (int i = 0; i < a.len; ++i)
        r.e[i] = fn(a.e[i], s.v);
    return r;
}

SVal MomEmitter::addQH(SVal a, SVal b) { return binop(Op::MADD_QH, a, b, paddw); }
SVal MomEmitter::addsQH(SVal a, SVal b) { return binop(Op::MADDS_QH, a, b, paddsw); }
SVal MomEmitter::subQH(SVal a, SVal b) { return binop(Op::MSUB_QH, a, b, psubw); }
SVal MomEmitter::subsQH(SVal a, SVal b) { return binop(Op::MSUBS_QH, a, b, psubsw); }
SVal MomEmitter::minQH(SVal a, SVal b) { return binop(Op::MMIN_QH, a, b, pminsw); }
SVal MomEmitter::maxQH(SVal a, SVal b) { return binop(Op::MMAX_QH, a, b, pmaxsw); }
SVal MomEmitter::avgQH(SVal a, SVal b) { return binop(Op::MAVG_QH, a, b, pavgw); }
SVal MomEmitter::absQH(SVal a) { return unop(Op::MABS_QH, a, pabsw); }
SVal MomEmitter::addusOB(SVal a, SVal b) { return binop(Op::MADDUS_OB, a, b, paddusb); }
SVal MomEmitter::subusOB(SVal a, SVal b) { return binop(Op::MSUBUS_OB, a, b, psubusb); }
SVal MomEmitter::avgOB(SVal a, SVal b) { return binop(Op::MAVG_OB, a, b, pavgb); }
SVal MomEmitter::absdOB(SVal a, SVal b) { return binop(Op::MABSD_OB, a, b, pabsdb); }
SVal MomEmitter::mullQH(SVal a, SVal b) { return binop(Op::MMULL_QH, a, b, pmullw); }
SVal MomEmitter::mulhQH(SVal a, SVal b) { return binop(Op::MMULH_QH, a, b, pmulhw); }
SVal MomEmitter::mulrQH(SVal a, SVal b) { return binop(Op::MMULR_QH, a, b, pmulrw); }
SVal MomEmitter::maddQH(SVal a, SVal b) { return binop(Op::MMADD_QH, a, b, pmaddwd); }
SVal MomEmitter::andS(SVal a, SVal b) { return binop(Op::MAND, a, b, pand); }
SVal MomEmitter::orS(SVal a, SVal b) { return binop(Op::MOR, a, b, por); }
SVal MomEmitter::xorS(SVal a, SVal b) { return binop(Op::MXOR, a, b, pxor); }
SVal MomEmitter::cmpgtQH(SVal a, SVal b) { return binop(Op::MCMPGT_QH, a, b, pcmpgtw); }
SVal MomEmitter::packusWB(SVal a, SVal b) { return binop(Op::MPACKUS_WB, a, b, packuswb); }
SVal MomEmitter::unpcklBW(SVal a, SVal b) { return binop(Op::MUNPCKL_BW, a, b, punpcklbw); }
SVal MomEmitter::unpckhBW(SVal a, SVal b) { return binop(Op::MUNPCKH_BW, a, b, punpckhbw); }
SVal MomEmitter::pairAddQH(SVal a) { return unop(Op::MPAIRADD_QH, a, ppairaddw); }

SVal
MomEmitter::bitsel(SVal mask, SVal a, SVal b)
{
    MOMSIM_ASSERT(mask.len == a.len && a.len == b.len,
                  "stream length mismatch");
    TraceInst &inst = emitStream(Op::MBITSEL, a.len);
    SVal r = newStream(a.len);
    inst.dst = r.reg;
    inst.src0 = mask.reg;
    inst.src1 = a.reg;
    inst.src2 = b.reg;
    for (int i = 0; i < a.len; ++i)
        r.e[i] = pbitsel(mask.e[i], a.e[i], b.e[i]);
    return r;
}

namespace
{

// Shift helpers bound to fixed counts via thread-local capture-free
// shims. thread_local matters: workloads build concurrently (distinct
// specs synthesize outside the WorkloadRepo lock, and the service
// plans requests in parallel), and the count is only live across the
// unop() call that consumes it on the emitting thread.
thread_local int g_shiftCount = 0;
uint64_t shiftSll(uint64_t a) { return psllw(a, g_shiftCount); }
uint64_t shiftSra(uint64_t a) { return psraw(a, g_shiftCount); }
uint64_t shiftSrar(uint64_t a) { return psrarw(a, g_shiftCount); }

} // namespace

SVal
MomEmitter::sllQH(SVal a, int n)
{
    g_shiftCount = n;
    return unop(Op::MSLL_QH, a, shiftSll);
}

SVal
MomEmitter::sraQH(SVal a, int n)
{
    g_shiftCount = n;
    return unop(Op::MSRA_QH, a, shiftSra);
}

SVal
MomEmitter::srarQH(SVal a, int n)
{
    g_shiftCount = n;
    return unop(Op::MSRAR_QH, a, shiftSrar);
}

SVal MomEmitter::addVSQH(SVal a, MVal s) { return vsop(Op::MADDVS_QH, a, s, paddw); }
SVal MomEmitter::subVSQH(SVal a, MVal s) { return vsop(Op::MSUBVS_QH, a, s, psubw); }
SVal MomEmitter::mullVSQH(SVal a, MVal s) { return vsop(Op::MMULLVS_QH, a, s, pmullw); }
SVal MomEmitter::mulhVSQH(SVal a, MVal s) { return vsop(Op::MMULHVS_QH, a, s, pmulhw); }
SVal MomEmitter::scaleVSQH(SVal a, MVal s) { return vsop(Op::MSCALEVS_QH, a, s, pmulrw); }
SVal MomEmitter::maxVSQH(SVal a, MVal s) { return vsop(Op::MMAXVS_QH, a, s, pmaxsw); }
SVal MomEmitter::minVSQH(SVal a, MVal s) { return vsop(Op::MMINVS_QH, a, s, pminsw); }

void
MomEmitter::clrAcc(int acc)
{
    TraceInst &inst = _tb.emit(Op::CLRACC);
    inst.dst = isa::accReg(acc);
    _accs[acc].lane.fill(0);
}

void
MomEmitter::accMacQH(int acc, SVal a, SVal b)
{
    MOMSIM_ASSERT(a.len == b.len, "stream length mismatch");
    TraceInst &inst = emitStream(Op::ACCMAC_QH, a.len);
    inst.dst = isa::accReg(acc);
    inst.src0 = a.reg;
    inst.src1 = b.reg;
    inst.src2 = isa::accReg(acc);
    for (int i = 0; i < a.len; ++i) {
        for (int l = 0; l < 4; ++l) {
            _accs[acc].lane[l] += static_cast<int64_t>(laneW(a.e[i], l)) *
                                  laneW(b.e[i], l);
        }
    }
}

void
MomEmitter::accMacVSQH(int acc, SVal a, MVal s)
{
    TraceInst &inst = emitStream(Op::ACCMACVS_QH, a.len);
    inst.dst = isa::accReg(acc);
    inst.src0 = a.reg;
    inst.src1 = s.reg;
    inst.src2 = isa::accReg(acc);
    for (int i = 0; i < a.len; ++i) {
        for (int l = 0; l < 4; ++l) {
            _accs[acc].lane[l] += static_cast<int64_t>(laneW(a.e[i], l)) *
                                  laneW(s.v, l);
        }
    }
}

void
MomEmitter::accSadOB(int acc, SVal a, SVal b)
{
    MOMSIM_ASSERT(a.len == b.len, "stream length mismatch");
    TraceInst &inst = emitStream(Op::ACCSAD_OB, a.len);
    inst.dst = isa::accReg(acc);
    inst.src0 = a.reg;
    inst.src1 = b.reg;
    inst.src2 = isa::accReg(acc);
    for (int i = 0; i < a.len; ++i)
        _accs[acc].lane[0] += static_cast<int64_t>(psadbw(a.e[i], b.e[i]));
}

void
MomEmitter::accAddQH(int acc, SVal a)
{
    TraceInst &inst = emitStream(Op::ACCADD_QH, a.len);
    inst.dst = isa::accReg(acc);
    inst.src0 = a.reg;
    inst.src2 = isa::accReg(acc);
    for (int i = 0; i < a.len; ++i) {
        for (int l = 0; l < 4; ++l)
            _accs[acc].lane[l] += laneW(a.e[i], l);
    }
}

void
MomEmitter::accSqrQH(int acc, SVal a)
{
    TraceInst &inst = emitStream(Op::ACCSQR_QH, a.len);
    inst.dst = isa::accReg(acc);
    inst.src0 = a.reg;
    inst.src2 = isa::accReg(acc);
    for (int i = 0; i < a.len; ++i) {
        for (int l = 0; l < 4; ++l) {
            _accs[acc].lane[l] += static_cast<int64_t>(laneW(a.e[i], l)) *
                                  laneW(a.e[i], l);
        }
    }
}

void
MomEmitter::accMaxQH(int acc, SVal a)
{
    TraceInst &inst = emitStream(Op::ACCMAX_QH, a.len);
    inst.dst = isa::accReg(acc);
    inst.src0 = a.reg;
    inst.src2 = isa::accReg(acc);
    for (int i = 0; i < a.len; ++i) {
        for (int l = 0; l < 4; ++l) {
            int64_t v = laneW(a.e[i], l);
            if (v > _accs[acc].lane[l])
                _accs[acc].lane[l] = v;
        }
    }
}

MVal
MomEmitter::raccSQH(int acc, int rshift)
{
    TraceInst &inst = _tb.emit(Op::RACCS_QH);
    inst.dst = _tb.allocMmx();
    inst.src0 = isa::accReg(acc);
    uint64_t r = 0;
    for (int l = 0; l < 4; ++l) {
        int64_t v = _accs[acc].lane[l] >> rshift;
        int32_t clamped = static_cast<int32_t>(
            std::min<int64_t>(INT32_MAX, std::max<int64_t>(INT32_MIN, v)));
        r = setLaneW(r, l, static_cast<uint16_t>(satS16(clamped)));
    }
    return { r, inst.dst };
}

MVal
MomEmitter::raccDW(int acc)
{
    TraceInst &inst = _tb.emit(Op::RACC_DW);
    inst.dst = _tb.allocMmx();
    inst.src0 = isa::accReg(acc);
    uint64_t r = 0;
    r = setLaneD(r, 0, static_cast<uint32_t>(_accs[acc].lane[0]));
    r = setLaneD(r, 1, static_cast<uint32_t>(_accs[acc].lane[1]));
    return { r, inst.dst };
}

IVal
MomEmitter::raccToInt(int acc)
{
    MVal dw = raccDW(acc);
    TraceInst &mov = _tb.emit(Op::MOVDFM);
    mov.dst = _tb.allocInt();
    mov.src0 = dw.reg;
    return { static_cast<int32_t>(dw.v & 0xFFFFFFFFull), mov.dst };
}

SVal
MomEmitter::rawBinop(Op op, SVal a, SVal b)
{
    MOMSIM_ASSERT(a.len == b.len, "stream length mismatch");
    TraceInst &inst = emitStream(op, a.len);
    SVal r = newStream(a.len);
    inst.dst = r.reg;
    inst.src0 = a.reg;
    inst.src1 = b.reg;
    inst.src2 = _slSrc;
    r.e = a.e;
    return r;
}

SVal
MomEmitter::zero()
{
    MOMSIM_ASSERT(_len > 0, "stream length not set");
    TraceInst &inst = emitStream(Op::MZERO, _len);
    SVal s = newStream(_len);
    inst.dst = s.reg;
    return s;
}

MVal
MomEmitter::extract(SVal a, int idx)
{
    TraceInst &inst = _tb.emit(Op::MEXTR);
    inst.dst = _tb.allocMmx();
    inst.src0 = a.reg;
    return { a.e[idx], inst.dst };
}

SVal
MomEmitter::insert(SVal a, int idx, MVal m)
{
    TraceInst &inst = _tb.emit(Op::MINSR);
    SVal r = a;
    r.reg = _tb.allocMom();
    inst.dst = r.reg;
    inst.src0 = a.reg;
    inst.src1 = m.reg;
    r.e[idx] = m.v;
    return r;
}

} // namespace momsim::trace
