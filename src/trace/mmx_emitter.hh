/**
 * @file
 * MmxEmitter: the conventional packed-µ-SIMD half of the emulation library.
 *
 * Models the paper's "approximation of SSE integer opcodes with 67
 * instructions and 32 logical registers", including the added horizontal
 * reductions and the three-source multiply-add. Every method computes the
 * packed result (via trace/packed.hh) and records the instruction.
 */

#ifndef MOMSIM_TRACE_MMX_EMITTER_HH
#define MOMSIM_TRACE_MMX_EMITTER_HH

#include <cstdint>

#include "trace/builder.hh"
#include "trace/scalar_emitter.hh"

namespace momsim::trace
{

/** A packed 64-bit value living in a logical MMX register. */
struct MVal
{
    uint64_t v = 0;
    isa::RegRef reg = isa::kNoReg;
};

class MmxEmitter
{
  public:
    explicit MmxEmitter(TraceBuilder &tb) : _tb(tb) {}

    // ------------- memory -------------
    MVal loadQ(IVal base, int32_t disp = 0);
    void storeQ(IVal base, int32_t disp, MVal val);
    void storeNTQ(IVal base, int32_t disp, MVal val);

    // ------------- moves / splats -------------
    MVal zero();                                ///< PXOR idiom
    MVal movdtm(IVal a);                        ///< int -> mmx low 32
    IVal movdfm(MVal a);                        ///< mmx low 32 -> int
    MVal splatW(IVal a);                        ///< MOVDTM + PSHUFW (2 ops)
    IVal extractW(MVal a, int lane);            ///< PEXTRW (sign-extended)

    // ------------- byte-lane arithmetic -------------
    MVal paddusb(MVal a, MVal b);
    MVal psubusb(MVal a, MVal b);
    MVal pavgb(MVal a, MVal b);
    MVal pmaxub(MVal a, MVal b);
    MVal pminub(MVal a, MVal b);
    MVal psadbw(MVal a, MVal b);
    MVal pcmpeqb(MVal a, MVal b);
    MVal pcmpgtb(MVal a, MVal b);

    // ------------- halfword-lane arithmetic -------------
    MVal paddw(MVal a, MVal b);
    MVal paddsw(MVal a, MVal b);
    MVal psubw(MVal a, MVal b);
    MVal psubsw(MVal a, MVal b);
    MVal pmullw(MVal a, MVal b);
    MVal pmulhw(MVal a, MVal b);
    MVal pmaddwd(MVal a, MVal b);
    MVal pmadd3wd(MVal a, MVal b, MVal c);      ///< c + a*b pairs (extra op)
    MVal pmaxsw(MVal a, MVal b);
    MVal pminsw(MVal a, MVal b);
    MVal pavgw(MVal a, MVal b);
    MVal pcmpeqw(MVal a, MVal b);
    MVal pcmpgtw(MVal a, MVal b);
    MVal paddd(MVal a, MVal b);

    // ------------- logical -------------
    MVal pand(MVal a, MVal b);
    MVal pandn(MVal a, MVal b);
    MVal por(MVal a, MVal b);
    MVal pxor(MVal a, MVal b);

    // ------------- shifts (immediate count) -------------
    MVal psllw(MVal a, int n);
    MVal psrlw(MVal a, int n);
    MVal psraw(MVal a, int n);
    MVal psllq(MVal a, int n);
    MVal psrlq(MVal a, int n);
    MVal psrad(MVal a, int n);

    // ------------- pack / unpack / shuffle -------------
    MVal packuswb(MVal a, MVal b);
    MVal packsswb(MVal a, MVal b);
    MVal packssdw(MVal a, MVal b);
    MVal punpcklbw(MVal a, MVal b);
    MVal punpckhbw(MVal a, MVal b);
    MVal punpcklwd(MVal a, MVal b);
    MVal punpckhwd(MVal a, MVal b);
    MVal punpckldq(MVal a, MVal b);
    MVal punpckhdq(MVal a, MVal b);
    MVal pshufw(MVal a, int imm);

    // ------------- horizontal reductions (paper extras) -------------
    IVal phsumbw(MVal a);                       ///< PHSUMBW + MOVDFM
    IVal phsumwd(MVal a);                       ///< PHSUMWD + MOVDFM
    IVal phmaxw(MVal a);
    IVal phminw(MVal a);

  private:
    MVal unop(isa::Op op, MVal a, uint64_t result);
    MVal binop(isa::Op op, MVal a, MVal b, uint64_t result);
    IVal reduceToInt(isa::Op op, MVal a, int32_t result);

    TraceBuilder &_tb;
};

} // namespace momsim::trace

#endif // MOMSIM_TRACE_MMX_EMITTER_HH
