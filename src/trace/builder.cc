#include "trace/builder.hh"

#include "isa/regs.hh"

namespace momsim::trace
{

namespace
{

/// Code segment size reserved per program instance.
constexpr uint32_t kCodeSegmentSize = 1u << 20;

/// Integer registers available to the allocator: 0..27 (28 and 29 are
/// reserved as emitter scratch, 30 is the stream-length register, 31 is
/// the hardwired zero).
constexpr int kAllocatableInt = 28;
constexpr int kAllocatableFp = 31;
constexpr int kAllocatableMmx = 32;
constexpr int kAllocatableMom = 16;

} // namespace

TraceBuilder::TraceBuilder(std::string name, isa::SimdIsa simd,
                           uint32_t base, uint32_t dataCapacity)
    : _program(std::move(name), simd),
      _data(dataCapacity, 0),
      _base(base),
      _codeBase(base),
      _codeBrk(base + kDefaultRoutineSpan),   // region for "main"
      _dataBase(base + kCodeSegmentSize),
      _dataBrk(base + kCodeSegmentSize),
      _dataLimit(base + kCodeSegmentSize + dataCapacity),
      _pc(base),
      _regionBase(base),
      _regionLimit(base + kDefaultRoutineSpan)
{
}

uint32_t
TraceBuilder::alloc(uint32_t bytes, uint32_t align)
{
    MOMSIM_ASSERT(align != 0 && (align & (align - 1)) == 0,
                  "alignment must be a power of two");
    uint32_t addr = (_dataBrk + align - 1) & ~(align - 1);
    MOMSIM_ASSERT(addr + bytes <= _dataLimit,
                  "simulated data memory exhausted");
    _dataBrk = addr + bytes;
    return addr;
}

uint8_t
TraceBuilder::peek8(uint32_t addr) const
{
    MOMSIM_ASSERT(addr >= _dataBase && addr < _dataLimit,
                  "peek outside simulated memory");
    return _data[addr - _dataBase];
}

uint16_t
TraceBuilder::peek16(uint32_t addr) const
{
    return static_cast<uint16_t>(peek8(addr) |
                                 (static_cast<uint16_t>(peek8(addr + 1)) << 8));
}

uint32_t
TraceBuilder::peek32(uint32_t addr) const
{
    return static_cast<uint32_t>(peek16(addr)) |
           (static_cast<uint32_t>(peek16(addr + 2)) << 16);
}

uint64_t
TraceBuilder::peek64(uint32_t addr) const
{
    return static_cast<uint64_t>(peek32(addr)) |
           (static_cast<uint64_t>(peek32(addr + 4)) << 32);
}

void
TraceBuilder::poke8(uint32_t addr, uint8_t v)
{
    MOMSIM_ASSERT(addr >= _dataBase && addr < _dataLimit,
                  "poke outside simulated memory");
    _data[addr - _dataBase] = v;
}

void
TraceBuilder::poke16(uint32_t addr, uint16_t v)
{
    poke8(addr, static_cast<uint8_t>(v));
    poke8(addr + 1, static_cast<uint8_t>(v >> 8));
}

void
TraceBuilder::poke32(uint32_t addr, uint32_t v)
{
    poke16(addr, static_cast<uint16_t>(v));
    poke16(addr + 2, static_cast<uint16_t>(v >> 16));
}

void
TraceBuilder::poke64(uint32_t addr, uint64_t v)
{
    poke32(addr, static_cast<uint32_t>(v));
    poke32(addr + 4, static_cast<uint32_t>(v >> 32));
}

void
TraceBuilder::pokeBytes(uint32_t addr, const uint8_t *data, uint32_t len)
{
    for (uint32_t i = 0; i < len; ++i)
        poke8(addr + i, data[i]);
}

void
TraceBuilder::peekBytes(uint32_t addr, uint8_t *out, uint32_t len) const
{
    for (uint32_t i = 0; i < len; ++i)
        out[i] = peek8(addr + i);
}

void
TraceBuilder::callRoutine(const std::string &name, uint32_t span)
{
    auto it = _regions.find(name);
    if (it == _regions.end()) {
        MOMSIM_ASSERT(_codeBrk + span <= _codeBase + kCodeSegmentSize,
                      "code segment exhausted");
        it = _regions.emplace(name,
                              std::make_pair(_codeBrk, _codeBrk + span)).first;
        _codeBrk += span;
    }

    // The call itself.
    isa::TraceInst &jsr = emit(isa::Op::JSR);
    jsr.addr = it->second.first;
    jsr.flags |= isa::kFlagTaken;

    _callStack.push_back({ _pc, _regionBase, _regionLimit });
    _regionBase = it->second.first;
    _regionLimit = it->second.second;
    _pc = _regionBase;
}

void
TraceBuilder::returnFromRoutine()
{
    MOMSIM_ASSERT(!_callStack.empty(), "return without call");
    Frame frame = _callStack.back();
    _callStack.pop_back();

    isa::TraceInst &ret = emit(isa::Op::RET);
    ret.addr = frame.resumePc;
    ret.flags |= isa::kFlagTaken;

    _pc = frame.resumePc;
    _regionBase = frame.regionBase;
    _regionLimit = frame.regionLimit;
}

void
TraceBuilder::loopBack(uint32_t head, isa::RegRef condReg, bool again)
{
    isa::TraceInst &br = emit(isa::Op::BNE);
    br.addr = head;
    br.src0 = condReg;
    br.flags |= isa::kFlagCond;
    if (again) {
        br.flags |= isa::kFlagTaken;
        _pc = head;
    }
}

isa::RegRef
TraceBuilder::allocInt()
{
    int idx = _nextInt;
    _nextInt = (_nextInt + 1) % kAllocatableInt;
    return isa::intReg(idx);
}

isa::RegRef
TraceBuilder::allocFp()
{
    int idx = _nextFp;
    _nextFp = (_nextFp + 1) % kAllocatableFp;
    return isa::fpReg(idx);
}

isa::RegRef
TraceBuilder::allocMmx()
{
    int idx = _nextMmx;
    _nextMmx = (_nextMmx + 1) % kAllocatableMmx;
    return isa::mmxReg(idx);
}

isa::RegRef
TraceBuilder::allocMom()
{
    int idx = _nextMom;
    _nextMom = (_nextMom + 1) % kAllocatableMom;
    return isa::momReg(idx);
}

uint32_t
TraceBuilder::advancePc()
{
    uint32_t pc = _pc;
    _pc += 4;
    // Wrap inside the routine's region rather than spill into a
    // neighbouring routine; long straight-line bodies alias onto
    // themselves, which is the milder distortion.
    if (_pc >= _regionLimit)
        _pc = _regionBase;
    return pc;
}

isa::TraceInst &
TraceBuilder::emit(isa::Op op)
{
    isa::TraceInst inst;
    inst.op = static_cast<uint16_t>(op);
    inst.pc = advancePc();
    _program.append(inst);
    return _program.insts().back();
}

Program
TraceBuilder::take()
{
    MOMSIM_ASSERT(_callStack.empty(),
                  "program finished inside an open routine");
    // Warm the memoized mix so a finished program can be shared across
    // threads without its first mix() call racing.
    _program.mix();
    return std::move(_program);
}

} // namespace momsim::trace
