/**
 * @file
 * A Program is the dynamic instruction stream of one benchmark instance,
 * produced by the emulation libraries and consumed by the SMT core.
 *
 * A Program has two storage modes. While being built it owns a growable
 * vector; once finished it can be seal()ed into an InstArena, which
 * copies the records into the arena's contiguous block and drops the
 * vector — every consumer reads through the InstView returned by
 * insts(), which works identically in both modes.
 */

#ifndef MOMSIM_TRACE_PROGRAM_HH
#define MOMSIM_TRACE_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "isa/simd_isa.hh"
#include "isa/trace_inst.hh"

namespace momsim::trace
{

class InstArena;

/** Table-3-style instruction accounting for one program. */
struct MixSummary
{
    uint64_t records = 0;       ///< TraceInst records (MOM stream op = 1)
    uint64_t eqInsts = 0;       ///< equivalent instructions (stream op = L)
    uint64_t intOps = 0;        ///< eq-weighted integer arithmetic+control
    uint64_t fpOps = 0;
    uint64_t simdOps = 0;       ///< eq-weighted SIMD arithmetic
    uint64_t memOps = 0;        ///< eq-weighted memory operations
    uint64_t memAccesses = 0;   ///< individual cache accesses
    uint64_t branches = 0;      ///< conditional branches
    uint64_t takenBranches = 0;

    double intPct() const { return frac(intOps); }
    double fpPct() const { return frac(fpOps); }
    double simdPct() const { return frac(simdOps); }
    double memPct() const { return frac(memOps); }

  private:
    double
    frac(uint64_t n) const
    {
        return eqInsts ? static_cast<double>(n) / eqInsts : 0.0;
    }
};

/**
 * Read-only span over a program's trace records. Mirrors the subset of
 * the std::vector interface the consumers use (indexing, iteration,
 * back), so sealed and in-build programs read the same way.
 */
class InstView
{
  public:
    InstView() = default;
    InstView(const isa::TraceInst *data, size_t size)
        : _data(data), _size(size)
    {}

    const isa::TraceInst *begin() const { return _data; }
    const isa::TraceInst *end() const { return _data + _size; }
    const isa::TraceInst *data() const { return _data; }
    const isa::TraceInst &operator[](size_t i) const { return _data[i]; }
    const isa::TraceInst &back() const { return _data[_size - 1]; }
    size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

  private:
    const isa::TraceInst *_data = nullptr;
    size_t _size = 0;
};

/** A finished benchmark trace plus its identity and layout. */
class Program
{
  public:
    Program() = default;
    Program(std::string name, isa::SimdIsa simd)
        : _name(std::move(name)), _simd(simd)
    {}

    const std::string &name() const { return _name; }
    isa::SimdIsa simdIsa() const { return _simd; }

    InstView
    insts() const
    {
        return _sealed ? InstView(_span, _spanSize)
                       : InstView(_insts.data(), _insts.size());
    }

    /** Mutable access to the in-build trace; illegal once sealed. */
    std::vector<isa::TraceInst> &
    insts()
    {
        if (_sealed)
            panic("mutating a sealed Program");
        _mixValid = false;      // caller may mutate the trace
        return _insts;
    }

    size_t size() const { return _sealed ? _spanSize : _insts.size(); }
    bool empty() const { return size() == 0; }
    bool sealed() const { return _sealed; }

    void
    append(const isa::TraceInst &inst)
    {
        if (_sealed)
            panic("appending to a sealed Program");
        _mixValid = false;
        _insts.push_back(inst);
    }

    /**
     * Move the trace into @p arena's contiguous block and drop the
     * build vector. Identity, layout and the memoized mix are
     * unchanged (the mix is warmed first so sealed programs shared
     * read-only across pool workers never compute it concurrently).
     * Idempotent per program; the arena must have capacity reserved.
     */
    void seal(InstArena &arena);

    /**
     * The Table-3 accounting over the whole trace. Memoized: the
     * simulation driver reads eqInsts per run (partial-credit EIPC), so
     * recomputing the O(trace) walk each time would dominate short
     * runs. The cache is warmed by TraceBuilder::take()/rebased() and
     * by seal(), so programs shared read-only across pool workers never
     * write it concurrently; warm (call once) before sharing any
     * Program built another way.
     */
    const MixSummary &
    mix() const
    {
        if (!_mixValid) {
            _mix = computeMix();
            _mixValid = true;
        }
        return _mix;
    }

    /**
     * A copy with every code and data address shifted by @p delta.
     * Used to give the second instance of a benchmark (the paper runs
     * MPEG-2 decode twice) its own address space. The copy is always
     * in build storage (unsealed), whatever the source mode.
     */
    Program rebased(uint32_t delta, const std::string &newName) const;

  private:
    MixSummary computeMix() const;

    std::string _name;
    isa::SimdIsa _simd = isa::SimdIsa::Mmx;
    std::vector<isa::TraceInst> _insts;     ///< build storage (unsealed)
    const isa::TraceInst *_span = nullptr;  ///< arena storage (sealed)
    size_t _spanSize = 0;
    bool _sealed = false;
    mutable MixSummary _mix;
    mutable bool _mixValid = false;
};

} // namespace momsim::trace

#endif // MOMSIM_TRACE_PROGRAM_HH
