/**
 * @file
 * A Program is the dynamic instruction stream of one benchmark instance,
 * produced by the emulation libraries and consumed by the SMT core.
 */

#ifndef MOMSIM_TRACE_PROGRAM_HH
#define MOMSIM_TRACE_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/simd_isa.hh"
#include "isa/trace_inst.hh"

namespace momsim::trace
{

/** Table-3-style instruction accounting for one program. */
struct MixSummary
{
    uint64_t records = 0;       ///< TraceInst records (MOM stream op = 1)
    uint64_t eqInsts = 0;       ///< equivalent instructions (stream op = L)
    uint64_t intOps = 0;        ///< eq-weighted integer arithmetic+control
    uint64_t fpOps = 0;
    uint64_t simdOps = 0;       ///< eq-weighted SIMD arithmetic
    uint64_t memOps = 0;        ///< eq-weighted memory operations
    uint64_t memAccesses = 0;   ///< individual cache accesses
    uint64_t branches = 0;      ///< conditional branches
    uint64_t takenBranches = 0;

    double intPct() const { return frac(intOps); }
    double fpPct() const { return frac(fpOps); }
    double simdPct() const { return frac(simdOps); }
    double memPct() const { return frac(memOps); }

  private:
    double
    frac(uint64_t n) const
    {
        return eqInsts ? static_cast<double>(n) / eqInsts : 0.0;
    }
};

/** A finished benchmark trace plus its identity and layout. */
class Program
{
  public:
    Program() = default;
    Program(std::string name, isa::SimdIsa simd)
        : _name(std::move(name)), _simd(simd)
    {}

    const std::string &name() const { return _name; }
    isa::SimdIsa simdIsa() const { return _simd; }

    const std::vector<isa::TraceInst> &insts() const { return _insts; }

    std::vector<isa::TraceInst> &
    insts()
    {
        _mixValid = false;      // caller may mutate the trace
        return _insts;
    }

    size_t size() const { return _insts.size(); }
    bool empty() const { return _insts.empty(); }

    void
    append(const isa::TraceInst &inst)
    {
        _mixValid = false;
        _insts.push_back(inst);
    }

    /**
     * The Table-3 accounting over the whole trace. Memoized: the
     * simulation driver reads eqInsts per run (partial-credit EIPC), so
     * recomputing the O(trace) walk each time would dominate short
     * runs. The cache is warmed by TraceBuilder::take()/rebased(), so
     * programs shared read-only across pool workers never write it
     * concurrently; warm (call once) before sharing any Program built
     * another way.
     */
    const MixSummary &
    mix() const
    {
        if (!_mixValid) {
            _mix = computeMix();
            _mixValid = true;
        }
        return _mix;
    }

    /**
     * A copy with every code and data address shifted by @p delta.
     * Used to give the second instance of a benchmark (the paper runs
     * MPEG-2 decode twice) its own address space.
     */
    Program rebased(uint32_t delta, const std::string &newName) const;

  private:
    MixSummary computeMix() const;

    std::string _name;
    isa::SimdIsa _simd = isa::SimdIsa::Mmx;
    std::vector<isa::TraceInst> _insts;
    mutable MixSummary _mix;
    mutable bool _mixValid = false;
};

} // namespace momsim::trace

#endif // MOMSIM_TRACE_PROGRAM_HH
