#include "trace/mmx_emitter.hh"

#include "trace/packed.hh"

namespace momsim::trace
{

using isa::Op;
using isa::TraceInst;

MVal
MmxEmitter::loadQ(IVal base, int32_t disp)
{
    uint32_t addr = base.u() + static_cast<uint32_t>(disp);
    TraceInst &inst = _tb.emit(Op::MOVQLD);
    inst.dst = _tb.allocMmx();
    inst.src0 = base.reg;
    inst.addr = addr;
    inst.accessSize = 8;
    return { _tb.peek64(addr), inst.dst };
}

void
MmxEmitter::storeQ(IVal base, int32_t disp, MVal val)
{
    uint32_t addr = base.u() + static_cast<uint32_t>(disp);
    TraceInst &inst = _tb.emit(Op::MOVQST);
    inst.src0 = val.reg;
    inst.src1 = base.reg;
    inst.addr = addr;
    inst.accessSize = 8;
    _tb.poke64(addr, val.v);
}

void
MmxEmitter::storeNTQ(IVal base, int32_t disp, MVal val)
{
    uint32_t addr = base.u() + static_cast<uint32_t>(disp);
    TraceInst &inst = _tb.emit(Op::MOVNTQ);
    inst.src0 = val.reg;
    inst.src1 = base.reg;
    inst.addr = addr;
    inst.accessSize = 8;
    _tb.poke64(addr, val.v);
}

MVal
MmxEmitter::zero()
{
    // PXOR reg,reg — dependence-breaking idiom, so no sources recorded.
    TraceInst &inst = _tb.emit(Op::PXOR);
    inst.dst = _tb.allocMmx();
    return { 0, inst.dst };
}

MVal
MmxEmitter::movdtm(IVal a)
{
    TraceInst &inst = _tb.emit(Op::MOVDTM);
    inst.dst = _tb.allocMmx();
    inst.src0 = a.reg;
    return { static_cast<uint32_t>(a.v), inst.dst };
}

IVal
MmxEmitter::movdfm(MVal a)
{
    TraceInst &inst = _tb.emit(Op::MOVDFM);
    inst.dst = _tb.allocInt();
    inst.src0 = a.reg;
    return { static_cast<int32_t>(a.v & 0xFFFFFFFFull), inst.dst };
}

MVal
MmxEmitter::splatW(IVal a)
{
    MVal low = movdtm(a);
    uint64_t r = trace::splatW(static_cast<int16_t>(a.v & 0xFFFF));
    TraceInst &inst = _tb.emit(Op::PSHUFW);
    inst.dst = _tb.allocMmx();
    inst.src0 = low.reg;
    return { r, inst.dst };
}

IVal
MmxEmitter::extractW(MVal a, int lane)
{
    TraceInst &inst = _tb.emit(Op::PEXTRW);
    inst.dst = _tb.allocInt();
    inst.src0 = a.reg;
    return { laneW(a.v, lane & 3), inst.dst };
}

MVal
MmxEmitter::unop(Op op, MVal a, uint64_t result)
{
    TraceInst &inst = _tb.emit(op);
    inst.dst = _tb.allocMmx();
    inst.src0 = a.reg;
    return { result, inst.dst };
}

MVal
MmxEmitter::binop(Op op, MVal a, MVal b, uint64_t result)
{
    TraceInst &inst = _tb.emit(op);
    inst.dst = _tb.allocMmx();
    inst.src0 = a.reg;
    inst.src1 = b.reg;
    return { result, inst.dst };
}

IVal
MmxEmitter::reduceToInt(Op op, MVal a, int32_t result)
{
    TraceInst &red = _tb.emit(op);
    red.dst = _tb.allocMmx();
    red.src0 = a.reg;
    TraceInst &mov = _tb.emit(Op::MOVDFM);
    mov.dst = _tb.allocInt();
    mov.src0 = red.dst;
    return { result, mov.dst };
}

MVal MmxEmitter::paddusb(MVal a, MVal b) { return binop(Op::PADDUSB, a, b, trace::paddusb(a.v, b.v)); }
MVal MmxEmitter::psubusb(MVal a, MVal b) { return binop(Op::PSUBUSB, a, b, trace::psubusb(a.v, b.v)); }
MVal MmxEmitter::pavgb(MVal a, MVal b) { return binop(Op::PAVGB, a, b, trace::pavgb(a.v, b.v)); }
MVal MmxEmitter::pmaxub(MVal a, MVal b) { return binop(Op::PMAXUB, a, b, trace::pmaxub(a.v, b.v)); }
MVal MmxEmitter::pminub(MVal a, MVal b) { return binop(Op::PMINUB, a, b, trace::pminub(a.v, b.v)); }
MVal MmxEmitter::psadbw(MVal a, MVal b) { return binop(Op::PSADBW, a, b, trace::psadbw(a.v, b.v)); }
MVal MmxEmitter::pcmpeqb(MVal a, MVal b) { return binop(Op::PCMPEQB, a, b, trace::pcmpeqb(a.v, b.v)); }
MVal MmxEmitter::pcmpgtb(MVal a, MVal b) { return binop(Op::PCMPGTB, a, b, trace::pcmpgtb(a.v, b.v)); }

MVal MmxEmitter::paddw(MVal a, MVal b) { return binop(Op::PADDW, a, b, trace::paddw(a.v, b.v)); }
MVal MmxEmitter::paddsw(MVal a, MVal b) { return binop(Op::PADDSW, a, b, trace::paddsw(a.v, b.v)); }
MVal MmxEmitter::psubw(MVal a, MVal b) { return binop(Op::PSUBW, a, b, trace::psubw(a.v, b.v)); }
MVal MmxEmitter::psubsw(MVal a, MVal b) { return binop(Op::PSUBSW, a, b, trace::psubsw(a.v, b.v)); }
MVal MmxEmitter::pmullw(MVal a, MVal b) { return binop(Op::PMULLW, a, b, trace::pmullw(a.v, b.v)); }
MVal MmxEmitter::pmulhw(MVal a, MVal b) { return binop(Op::PMULHW, a, b, trace::pmulhw(a.v, b.v)); }
MVal MmxEmitter::pmaddwd(MVal a, MVal b) { return binop(Op::PMADDWD, a, b, trace::pmaddwd(a.v, b.v)); }
MVal MmxEmitter::pmaxsw(MVal a, MVal b) { return binop(Op::PMAXSW, a, b, trace::pmaxsw(a.v, b.v)); }
MVal MmxEmitter::pminsw(MVal a, MVal b) { return binop(Op::PMINSW, a, b, trace::pminsw(a.v, b.v)); }
MVal MmxEmitter::pavgw(MVal a, MVal b) { return binop(Op::PAVGW, a, b, trace::pavgw(a.v, b.v)); }
MVal MmxEmitter::pcmpeqw(MVal a, MVal b) { return binop(Op::PCMPEQW, a, b, trace::pcmpeqw(a.v, b.v)); }
MVal MmxEmitter::pcmpgtw(MVal a, MVal b) { return binop(Op::PCMPGTW, a, b, trace::pcmpgtw(a.v, b.v)); }

MVal
MmxEmitter::paddd(MVal a, MVal b)
{
    uint64_t r = 0;
    r = setLaneD(r, 0, static_cast<uint32_t>(laneD(a.v, 0) + laneD(b.v, 0)));
    r = setLaneD(r, 1, static_cast<uint32_t>(laneD(a.v, 1) + laneD(b.v, 1)));
    return binop(Op::PADDD, a, b, r);
}

MVal
MmxEmitter::pmadd3wd(MVal a, MVal b, MVal c)
{
    uint64_t prod = trace::pmaddwd(a.v, b.v);
    uint64_t r = 0;
    r = setLaneD(r, 0, static_cast<uint32_t>(laneD(prod, 0) + laneD(c.v, 0)));
    r = setLaneD(r, 1, static_cast<uint32_t>(laneD(prod, 1) + laneD(c.v, 1)));
    TraceInst &inst = _tb.emit(Op::PMADD3WD);
    inst.dst = _tb.allocMmx();
    inst.src0 = a.reg;
    inst.src1 = b.reg;
    inst.src2 = c.reg;
    return { r, inst.dst };
}

MVal MmxEmitter::pand(MVal a, MVal b) { return binop(Op::PAND, a, b, trace::pand(a.v, b.v)); }
MVal MmxEmitter::pandn(MVal a, MVal b) { return binop(Op::PANDN, a, b, trace::pandn(a.v, b.v)); }
MVal MmxEmitter::por(MVal a, MVal b) { return binop(Op::POR, a, b, trace::por(a.v, b.v)); }
MVal MmxEmitter::pxor(MVal a, MVal b) { return binop(Op::PXOR, a, b, trace::pxor(a.v, b.v)); }

MVal MmxEmitter::psllw(MVal a, int n) { return unop(Op::PSLLW, a, trace::psllw(a.v, n)); }
MVal MmxEmitter::psrlw(MVal a, int n) { return unop(Op::PSRLW, a, trace::psrlw(a.v, n)); }
MVal MmxEmitter::psraw(MVal a, int n) { return unop(Op::PSRAW, a, trace::psraw(a.v, n)); }
MVal MmxEmitter::psllq(MVal a, int n) { return unop(Op::PSLLQ, a, n >= 64 ? 0 : a.v << n); }
MVal MmxEmitter::psrlq(MVal a, int n) { return unop(Op::PSRLQ, a, n >= 64 ? 0 : a.v >> n); }

MVal
MmxEmitter::psrad(MVal a, int n)
{
    uint64_t r = 0;
    int sh = n > 31 ? 31 : n;
    r = setLaneD(r, 0, static_cast<uint32_t>(laneD(a.v, 0) >> sh));
    r = setLaneD(r, 1, static_cast<uint32_t>(laneD(a.v, 1) >> sh));
    return unop(Op::PSRAD, a, r);
}

MVal MmxEmitter::packuswb(MVal a, MVal b) { return binop(Op::PACKUSWB, a, b, trace::packuswb(a.v, b.v)); }
MVal MmxEmitter::packsswb(MVal a, MVal b) { return binop(Op::PACKSSWB, a, b, trace::packsswb(a.v, b.v)); }
MVal MmxEmitter::packssdw(MVal a, MVal b) { return binop(Op::PACKSSDW, a, b, trace::packssdw(a.v, b.v)); }
MVal MmxEmitter::punpcklbw(MVal a, MVal b) { return binop(Op::PUNPCKLBW, a, b, trace::punpcklbw(a.v, b.v)); }
MVal MmxEmitter::punpckhbw(MVal a, MVal b) { return binop(Op::PUNPCKHBW, a, b, trace::punpckhbw(a.v, b.v)); }
MVal MmxEmitter::punpcklwd(MVal a, MVal b) { return binop(Op::PUNPCKLWD, a, b, trace::punpcklwd(a.v, b.v)); }
MVal MmxEmitter::punpckhwd(MVal a, MVal b) { return binop(Op::PUNPCKHWD, a, b, trace::punpckhwd(a.v, b.v)); }

MVal
MmxEmitter::punpckldq(MVal a, MVal b)
{
    uint64_t r = (a.v & 0xFFFFFFFFull) | (b.v << 32);
    return binop(Op::PUNPCKLDQ, a, b, r);
}

MVal
MmxEmitter::punpckhdq(MVal a, MVal b)
{
    uint64_t r = (a.v >> 32) | (b.v & 0xFFFFFFFF00000000ull);
    return binop(Op::PUNPCKHDQ, a, b, r);
}

MVal
MmxEmitter::pshufw(MVal a, int imm)
{
    return unop(Op::PSHUFW, a, trace::pshufw(a.v, imm));
}

IVal MmxEmitter::phsumbw(MVal a) { return reduceToInt(Op::PHSUMBW, a, static_cast<int32_t>(trace::phsumbw(a.v))); }
IVal MmxEmitter::phsumwd(MVal a) { return reduceToInt(Op::PHSUMWD, a, trace::phsumwd(a.v)); }
IVal MmxEmitter::phmaxw(MVal a) { return reduceToInt(Op::PHMAXW, a, trace::phmaxw(a.v)); }
IVal MmxEmitter::phminw(MVal a) { return reduceToInt(Op::PHMINW, a, trace::phminw(a.v)); }

} // namespace momsim::trace
