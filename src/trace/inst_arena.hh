/**
 * @file
 * A bump arena for sealed trace storage.
 *
 * Workload builds produce one Program per benchmark instance, each with
 * its own heap-grown instruction vector scattered across the allocator.
 * Sealing the finished programs into an InstArena packs every trace of a
 * workload into one contiguous block, so a simulation walking several
 * programs round-robin streams through a single dense region instead of
 * pointer-chasing per-program allocations.
 *
 * The arena is reserve-then-append: capacity is fixed up front (the
 * owner counts its records first) and never reallocates afterwards,
 * because sealed Programs hold raw spans into the block.
 */

#ifndef MOMSIM_TRACE_INST_ARENA_HH
#define MOMSIM_TRACE_INST_ARENA_HH

#include <cstring>
#include <memory>

#include "common/logging.hh"
#include "isa/trace_inst.hh"

namespace momsim::trace
{

class InstArena
{
  public:
    /**
     * Size the block for @p records instructions. Only legal while the
     * arena is unused — growing would move spans already handed out.
     */
    void
    reserve(size_t records)
    {
        if (_used != 0)
            panic("InstArena::reserve after spans were handed out");
        _store = std::make_unique<isa::TraceInst[]>(records);
        _capacity = records;
        _used = 0;
    }

    /** Copy @p n records in; returns the stable span start. */
    const isa::TraceInst *
    append(const isa::TraceInst *src, size_t n)
    {
        if (_used + n > _capacity)
            panic("InstArena capacity exceeded; reserve() the full count");
        isa::TraceInst *dst = _store.get() + _used;
        if (n != 0)
            std::memcpy(dst, src, n * sizeof(isa::TraceInst));
        _used += n;
        return dst;
    }

    size_t size() const { return _used; }
    size_t capacity() const { return _capacity; }
    const isa::TraceInst *data() const { return _store.get(); }

  private:
    std::unique_ptr<isa::TraceInst[]> _store;
    size_t _capacity = 0;
    size_t _used = 0;
};

} // namespace momsim::trace

#endif // MOMSIM_TRACE_INST_ARENA_HH
