/**
 * @file
 * Listener — the accept side of `momsim serve`: owns the listening
 * sockets (TCP loopback-by-default and/or unix-domain) plus a self-
 * pipe, and multiplexes them with poll() so a signal handler can wake
 * the accept loop instantly for graceful drain.
 *
 * Pure transport: no simulator or service knowledge. The serve loop
 * composes it with Connection (per-client thread) and SimService.
 */

#ifndef MOMSIM_SVC_LISTENER_HH
#define MOMSIM_SVC_LISTENER_HH

#include <string>
#include <vector>

#include "common/net.hh"

namespace momsim::svc
{

class Listener
{
  public:
    struct Options
    {
        /** TCP port to listen on; -1 = no TCP, 0 = ephemeral. */
        int tcpPort = -1;
        /** TCP bind address. Loopback by default: exposing a
         *  simulation farm beyond the host is an explicit choice. */
        std::string host = "127.0.0.1";
        /** Unix-domain socket path; empty = no unix listener. */
        std::string unixPath;
    };

    Listener() = default;
    ~Listener() { close(); }

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /** Bind + listen on every configured address. False (with
     *  @p error) if options name no address or any bind fails. */
    bool open(const Options &opts, std::string &error);

    /**
     * Block until a client connects or wake() / a shutdown signal
     * fires. Returns the connected fd (caller owns it), or -1 when
     * the loop should stop accepting.
     */
    int acceptClient();

    /** Make a pending or future acceptClient() return -1. */
    void wake();

    /** Write end of the self-pipe, for installShutdownSignals(). */
    int wakeWriteFd() const { return _wakeWrite.get(); }

    /** The TCP port actually bound (after port 0), or -1. */
    int boundPort() const;

    /** Human/machine-readable bound addresses: "tcp:HOST:PORT",
     *  "unix:PATH" — the lines `--ready-file` publishes. */
    std::vector<std::string> boundAddresses() const;

    /** Close the listening sockets and unlink the unix path. Accepted
     *  connections are unaffected. Idempotent. */
    void close();

  private:
    net::FdGuard _tcp;
    net::FdGuard _unix;
    net::FdGuard _wakeRead;
    net::FdGuard _wakeWrite;
    std::string _host;
    std::string _unixPath;
};

} // namespace momsim::svc

#endif // MOMSIM_SVC_LISTENER_HH
