/**
 * @file
 * ResponseSequencer — the in-order request/response state machine
 * shared by the two transports (`momsim batch` over stdin/stdout and
 * `momsim serve` over sockets), extracted from the PR 5 batch loop so
 * the transports cannot fork its semantics.
 *
 * One sequencer instance drives one input stream: the transport's
 * reader thread push()es raw request lines; N submitter threads parse
 * and execute them through the configured submit hook (SimService in
 * production); one emitter thread hands finished responses to the
 * emit hook strictly in input order, no matter how the submitters
 * interleave. The pending queue is bounded (maxPending): in blocking
 * mode (batch — stdin has natural backpressure) a full queue blocks
 * push(); in shedding mode (serve — a stalled socket must not stall
 * the daemon) a full queue answers the request immediately with a
 * structured kOverloaded error in its sequence slot, without
 * executing it.
 *
 * Delivery failure (emit returning false: the client closed the pipe
 * or socket) flips the sequencer into drain mode — queued and future
 * lines are discarded *without being simulated*, since their output
 * can no longer be delivered, and the transport observes writeFailed()
 * to stop reading.
 *
 * Error responses echo the request's id even when the line does not
 * parse (salvageTopLevelId), so a client can always correlate a
 * failure with the request that caused it.
 */

#ifndef MOMSIM_SVC_SEQUENCER_HH
#define MOMSIM_SVC_SEQUENCER_HH

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "svc/sim_request.hh"
#include "svc/sim_response.hh"

namespace momsim::svc
{

class ResponseSequencer
{
  public:
    struct Config
    {
        /** Executes one parsed request (SimService::submit in
         *  production; injectable for tests). Must be callable from
         *  several submitter threads at once. */
        std::function<SimResponse(const SimRequest &)> submit;

        /** Delivers one serialized response line (no newline). Called
         *  only from the emitter thread, strictly in input order.
         *  Returning false marks delivery as dead. */
        std::function<bool(const std::string &jsonLine)> emit;

        /**
         * Optional transport-level interceptor for lines that are not
         * plain SimRequests (the fabric protocol's "kind"-tagged
         * messages). Called from a submitter thread before SimRequest
         * parsing; returning true claims the line and @p finalLine is
         * emitted in the request's sequence slot. Lines passed to
         * @p chunk along the way stream back in the same slot *before*
         * the final line — and stream live (as they are produced) once
         * the slot is the oldest in flight, which is how a fabric
         * shard_run's rows reach the coordinator per-completion while
         * per-request ordering stays intact for everyone else.
         */
        std::function<bool(const std::string &line,
                           const std::function<void(std::string)> &chunk,
                           std::string &finalLine)> rawSubmit;

        int parallel = 2;       ///< submitter threads (clamped 1..16)
        size_t maxPending = 0;  ///< input backlog bound; 0 => auto
        bool shedOnFull = false; ///< true: kOverloaded instead of block
        bool withTiming = true; ///< serialize wall-clock fields
        std::string clientTag;  ///< default client id for responses
    };

    /** Starts the submitter and emitter threads immediately. */
    explicit ResponseSequencer(Config cfg);

    /** Implies finish() if the transport has not called it. */
    ~ResponseSequencer();

    ResponseSequencer(const ResponseSequencer &) = delete;
    ResponseSequencer &operator=(const ResponseSequencer &) = delete;

    /**
     * Feed one raw input line (without its newline). Blank lines are
     * skipped — convenient for hand-written request files and
     * harmless on the wire. Blocking mode may wait for queue space;
     * shedding mode never blocks.
     */
    void push(std::string line);

    /**
     * Input is exhausted (EOF / connection closed for reading): wait
     * for every accepted request to be answered and emitted, then
     * join all worker threads. Idempotent.
     */
    void finish();

    /** Delivery died (emit returned false); reader should stop. */
    bool writeFailed() const
    {
        return _writeFailed.load(std::memory_order_acquire);
    }

    size_t accepted() const;    ///< lines accepted (incl. shed slots)
    size_t emitted() const;     ///< responses actually delivered
    size_t shedCount() const;   ///< kOverloaded responses issued

  private:
    struct Item
    {
        size_t seq;
        std::string line;
    };

    void submitLoop();
    void emitLoop();

    Config _cfg;    ///< set in the ctor, immutable afterwards

    mutable momsim::Mutex _mutex;
    momsim::CondVar _workCv;    ///< submitters wait for input
    momsim::CondVar _emitCv;    ///< emitter waits for responses
    momsim::CondVar _spaceCv;   ///< push() waits for queue space
    std::deque<Item> _pending GUARDED_BY(_mutex);
    /** seq -> response JSON. */
    std::map<size_t, std::string> _ready GUARDED_BY(_mutex);
    /** seq -> streamed chunk lines, emitted before that slot's final
     *  response (rawSubmit enqueues chunks strictly before _ready). */
    std::map<size_t, std::deque<std::string>> _chunks GUARDED_BY(_mutex);
    bool _inputDone GUARDED_BY(_mutex) = false;
    size_t _accepted GUARDED_BY(_mutex) = 0;
    size_t _emittedCount GUARDED_BY(_mutex) = 0;
    size_t _shed GUARDED_BY(_mutex) = 0;
    std::atomic<bool> _writeFailed{ false };

    std::vector<std::thread> _submitters;
    std::thread _emitter;
    bool _finished GUARDED_BY(_mutex) = false;
};

} // namespace momsim::svc

#endif // MOMSIM_SVC_SEQUENCER_HH
