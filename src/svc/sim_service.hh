/**
 * @file
 * SimService — the embeddable, library-first execution engine behind
 * the momsim CLI's `batch` mode and any in-process client.
 *
 * One SimService owns the process-wide simulation resources exactly
 * once — the point-level PointScheduler (worker pool + singleflight
 * dedup + in-memory LRU row cache), one WorkloadRepo per scale
 * (paper / tiny) and, per request, the ResultStore a request's
 * cacheDir names — and executes SimRequests submitted from any number
 * of client threads. submit() is thread-safe and never calls exit():
 * every outcome, including the bad-workload and bad-shard cases the
 * old bench binaries died on, comes back as a structured SimResponse.
 *
 * Determinism contract: a SimRequest's response rows depend only on
 * the request (and its cache contents), never on submission
 * concurrency — N client threads submitting concurrently produce
 * byte-identical responses (modulo the explicitly-timed fields) to a
 * serial replay. Requests no longer serialize on a run lock: every
 * request decomposes into content-addressed sweep points feeding the
 * shared scheduler, which interleaves *all* active requests fairly
 * (no head-of-line blocking behind a big sweep), joins duplicate
 * points in flight instead of re-simulating them, and replays
 * recently-computed rows from memory. Rows are deterministic per
 * point, so none of that is observable in response bytes — only in
 * the counters() gauges.
 *
 * Response accounting keeps its planning-time meaning: cachedPoints /
 * simulatedPoints describe *disk-store* state when the request was
 * planned, so identical request streams produce identical responses
 * no matter what the scheduler coalesced at run time.
 */

#ifndef MOMSIM_SVC_SIM_SERVICE_HH
#define MOMSIM_SVC_SIM_SERVICE_HH

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hh"
#include "driver/experiment.hh"
#include "driver/point_scheduler.hh"
#include "driver/result_store.hh"
#include "svc/sim_request.hh"
#include "svc/sim_response.hh"
#include "workloads/workload_repo.hh"

namespace momsim::svc
{

struct SimServiceConfig
{
    int jobs = 0;               ///< scheduler workers; 0 => all hardware
    /** In-memory LRU row-cache capacity, in rows (0 disables): warm
     *  points replay from memory without touching the disk store. */
    size_t memCacheRows = 4096;
};

class SimService
{
  public:
    explicit SimService(SimServiceConfig cfg = {});

    SimService(const SimService &) = delete;
    SimService &operator=(const SimService &) = delete;

    /**
     * Execute @p req and return its response. Thread-safe; concurrent
     * callers' sweep points interleave on the shared scheduler. Never
     * exits, never throws for request-shaped problems (only for
     * simulator bugs, which panic as they always have).
     */
    SimResponse submit(const SimRequest &req);

    /** Per-row callback of submitFiltered: the planned point (with
     *  its cache key) and its row, cached replays first (in sweep
     *  order), then fresh rows as they complete. Serialized. */
    using RowFn = std::function<void(const driver::PlannedPoint &,
                                     const driver::ResultRow &)>;

    /**
     * Execute only the sweep points of @p req whose canonical ids are
     * in @p pointIds — the fabric worker's entry point: a coordinator
     * plans the full sweep itself and deals each worker a subset by
     * id. The request must be unsharded (shard 1/1; the filter *is*
     * the shard), and every id must name a point of the expanded
     * sweep. @p onRow fires per completed point (cache hits replay
     * immediately); the response carries the same rows plus the
     * full-sweep totalPoints, like a sharded submit would.
     */
    SimResponse submitFiltered(const SimRequest &req,
                               const std::vector<std::string> &pointIds,
                               const RowFn &onRow);

    /** Requests currently inside submit()/submitFiltered(). The serve
     *  ping reports this. */
    int inFlight() const
    {
        return _active.load(std::memory_order_relaxed);
    }

    /** The scheduler's gauge set (points simulated / dedup-joined /
     *  memory-cache hits / disk-cache hits, ...) — the serve ping and
     *  `momsim batch --stats` report these. */
    driver::PointScheduler::Counters counters() const
    {
        return _sched.counters();
    }

    /**
     * Open (or create) @p dir as the service-lifetime result store.
     * Requests that name no cacheDir of their own — and requests
     * naming this same dir — then share one warm store: rows cached
     * by any earlier request (or a previous process) replay instead
     * of re-simulating, the amortization a long-lived daemon exists
     * for. Requests naming a *different* cacheDir still get their own
     * per-request store, as before. Thread-safe; false + @p error if
     * the directory cannot be opened.
     */
    bool openCache(const std::string &dir, std::string &error);

    /** The directory openCache() bound, or "" when none. */
    std::string cacheDir() const;

    /** The repo serving requests at @p quick scale. */
    workloads::WorkloadRepo &repo(bool quick)
    {
        return quick ? _tinyRepo : _paperRepo;
    }

  private:
    /** Build the grid a request describes, or a structured error. */
    bool resolveGrid(const SimRequest &req, driver::SweepGrid &grid,
                     std::string &benchName, SimResponse &error) const;

    /** Shared core of submit/submitFiltered. @p pointIds null means
     *  unfiltered. */
    SimResponse execute(const SimRequest &req,
                        const std::vector<std::string> *pointIds,
                        const RowFn &onRow);

    driver::PointScheduler _sched;
    std::atomic<int> _active{ 0 };
    workloads::WorkloadRepo _paperRepo;
    workloads::WorkloadRepo _tinyRepo;

    // The service-lifetime store (openCache). _cacheMutex guards the
    // *binding* — which store/dir the service hands out; a request's
    // shared_ptr copy keeps its store alive across a rebind, and the
    // store itself is internally thread-safe for concurrent requests.
    mutable momsim::Mutex _cacheMutex;
    std::shared_ptr<driver::ResultStore> _sharedStore
        GUARDED_BY(_cacheMutex);
    std::string _sharedDir GUARDED_BY(_cacheMutex);
};

} // namespace momsim::svc

#endif // MOMSIM_SVC_SIM_SERVICE_HH
