#include "svc/sim_response.hh"

#include "common/logging.hh"
#include "driver/result_store.hh"
#include "svc/json.hh"

namespace momsim::svc
{

std::string
SimResponse::toJson(bool withTiming) const
{
    std::string out = "{";
    out += strfmt("\"schemaVersion\":%d,", kSimResponseSchemaVersion);
    out += "\"id\":" + jsonQuote(id) + ",";
    if (!client.empty())
        out += "\"client\":" + jsonQuote(client) + ",";
    out += strfmt("\"ok\":%s,", ok ? "true" : "false");
    if (!ok) {
        out += "\"error\":{\"code\":" + jsonQuote(errorCode) +
               ",\"message\":" + jsonQuote(errorMessage) + "}";
        return out + "}";
    }
    out += "\"bench\":" + jsonQuote(bench) + ",";
    out += strfmt("\"plan\":{\"total\":%zu,\"cached\":%zu,"
                  "\"simulated\":%zu},",
                  totalPoints, cachedPoints, simulatedPoints);
    // momlint: allow(float-format) wire-format timing field: %.3f is the
    // protocol's pinned shape and the value is zeroed when timing is off
    out += strfmt("\"wallMs\":%.3f,", withTiming ? wallMs : 0.0);
    out += "\"rows\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
        if (i)
            out += ',';
        if (withTiming) {
            out += driver::serializeResultRow(rows[i]);
        } else {
            // The row schema keeps its shape (parsers stay happy); only
            // the nondeterministic self-measurement is zeroed.
            driver::ResultRow r = rows[i];
            r.run.simKcps = 0.0;
            r.run.wallMs = 0.0;
            out += driver::serializeResultRow(r);
        }
    }
    return out + "]}";
}

SimResponse
SimResponse::failure(const std::string &id, const std::string &code,
                     const std::string &message)
{
    SimResponse resp;
    resp.id = id;
    resp.ok = false;
    resp.errorCode = code;
    resp.errorMessage = message;
    return resp;
}

} // namespace momsim::svc
