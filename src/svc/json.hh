/**
 * @file
 * Minimal recursive JSON reader for the service API boundary.
 *
 * The result store's flat JSON-lines parser (result_store.cc) cannot
 * represent the nested arrays a SimRequest carries, so the service
 * layer gets a real (if small) document model: objects, arrays,
 * strings, numbers, booleans and null, with strict errors (position-
 * annotated), duplicate-key rejection and no trailing garbage. Numbers
 * keep their raw token so 64-bit integers (seeds, cycle caps) never
 * round-trip through a double.
 *
 * This is a reader, not a writer: serialization stays hand-rolled at
 * each call site (as the result store does) so field order is explicit
 * and deterministic.
 */

#ifndef MOMSIM_SVC_JSON_HH
#define MOMSIM_SVC_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace momsim::svc
{

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;       ///< valid when kind == Bool
    std::string text;           ///< string value, or the raw number token
    std::vector<JsonValue> items;                       ///< Array
    std::vector<std::pair<std::string, JsonValue>> fields;  ///< Object

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object field lookup; nullptr when absent (or not an object). */
    const JsonValue *field(const std::string &name) const;

    /** Number conversions; false on non-numbers or range/format. */
    bool toU64(uint64_t &out) const;
    bool toInt(int &out) const;
    bool toDouble(double &out) const;
};

/**
 * Parse @p text as one JSON document. On failure returns false and
 * puts a one-line, position-annotated description in @p error.
 * Trailing non-whitespace after the document is an error.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

/** Escape for a JSON string literal (same dialect as the sink's). */
std::string jsonQuote(const std::string &s);

} // namespace momsim::svc

#endif // MOMSIM_SVC_JSON_HH
