#include "svc/connection.hh"

#include <sys/socket.h>

#include "svc/sequencer.hh"
#include "svc/sim_service.hh"

namespace momsim::svc
{

Connection::Connection(int fd, SimService &service, Options opts,
                       std::string clientTag)
    : _fd(fd), _service(service), _opts(opts),
      _clientTag(std::move(clientTag))
{}

Connection::~Connection()
{
    join();
}

void
Connection::start()
{
    _thread = std::thread([this] { run(); });
}

void
Connection::shutdownRead()
{
    if (_fd.valid())
        ::shutdown(_fd.get(), SHUT_RD);
}

void
Connection::join()
{
    if (_thread.joinable())
        _thread.join();
}

void
Connection::run()
{
    const int fd = _fd.get();

    ResponseSequencer::Config cfg;
    cfg.submit = [this](const SimRequest &req) {
        return _service.submit(req);
    };
    cfg.emit = [fd](const std::string &line) {
        // One response per write call keeps lines intact on the wire;
        // a failed write (client gone) flips the sequencer to drain.
        std::string out = line + "\n";
        return net::writeAll(fd, out.data(), out.size());
    };
    cfg.rawSubmit = _opts.rawSubmit;
    cfg.parallel = _opts.parallel;
    cfg.maxPending = _opts.maxPending;
    cfg.shedOnFull = true;      // a full queue sheds, never stalls
    cfg.withTiming = _opts.withTiming;
    cfg.clientTag = _clientTag;
    ResponseSequencer seq(cfg);

    char buf[4096];
    std::string line;
    for (;;) {
        long got = net::readSome(fd, buf, sizeof(buf));
        if (got <= 0)
            break;      // EOF, half-close, reset or forced drain
        for (long i = 0; i < got; ++i) {
            if (buf[i] == '\n') {
                seq.push(std::move(line));
                line.clear();
            } else {
                line += buf[i];
            }
        }
        if (seq.writeFailed())
            break;      // client stopped reading; its input is moot
    }
    seq.push(std::move(line));  // final request without trailing newline
    seq.finish();
    // Half-close so the client sees EOF right after the last response
    // instead of waiting for this object to be reaped. The fd itself
    // stays owned until destruction (shutdownRead() may still race).
    ::shutdown(fd, SHUT_WR);
    _done.store(true, std::memory_order_release);
}

} // namespace momsim::svc
