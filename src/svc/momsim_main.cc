/**
 * @file
 * `momsim` — the single multi-tool CLI in front of the simulation
 * engine, replacing the per-figure bench binaries:
 *
 *   momsim <bench> [flags]   run a registered figure/table (byte-
 *                            identical stdout to the removed binary)
 *   momsim list              print the bench registry (old binary ->
 *                            subcommand migration table)
 *   momsim help [bench]      generated usage + flag table
 *   momsim batch [...]       read JSONL SimRequests on stdin, execute
 *                            them through one shared SimService with
 *                            concurrent client threads, stream JSONL
 *                            SimResponses to stdout in input order
 *   momsim serve [...]       the same service as a long-lived daemon:
 *                            JSONL per connection over TCP and/or a
 *                            unix socket, warm across requests
 *   momsim client [...]      loopback client for serve (stdin -> wire
 *                            -> stdout); also the test harness's tool
 *   momsim coord [...]       distributed-sweep coordinator: deal any
 *                            bench sweep across a fleet of serve
 *                            workers, byte-identical to a local run
 *
 * batch flags:
 *   --jobs N      simulation pool workers (default: all hardware)
 *   --parallel M  concurrent client submitters (default 2; capped 16)
 *   --client C    client tag echoed in every response (default none)
 *   --no-timing   zero wallMs/sim_kcps in responses so identical
 *                 request streams produce byte-identical output (the
 *                 batch determinism gate runs this)
 *
 * batch and serve are two transports over one state machine
 * (svc/sequencer.hh): responses are emitted strictly in request
 * order, tagged with each request's echoed id (salvaged from the
 * line even when it does not parse), so output is deterministic no
 * matter how the submitters interleave; a malformed line produces an
 * error response in its slot rather than aborting the stream; SIGPIPE
 * is ignored and a dead output pipe drains the remaining input
 * without simulating it.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/net.hh"
#include "fabric/coord_main.hh"
#include "fabric/handler.hh"
#include "fabric/protocol.hh"
#include "svc/bench_registry.hh"
#include "svc/sequencer.hh"
#include "svc/serve_main.hh"
#include "svc/sim_service.hh"

namespace momsim::svc
{

namespace
{

int
usage(std::FILE *to, int rc)
{
    std::fprintf(to,
                 "usage: momsim <command> [flags]\n"
                 "\n"
                 "commands:\n"
                 "  <bench>       one of the registered figures/tables "
                 "(momsim list)\n"
                 "  list          print the bench registry\n"
                 "  help [bench]  flag table and per-bench usage\n"
                 "  batch         serve JSONL SimRequests from stdin\n"
                 "  serve         long-lived JSONL daemon (TCP/unix "
                 "socket)\n"
                 "  client        stream stdin to a momsim serve "
                 "daemon\n"
                 "  coord         run a sweep across a fleet of serve "
                 "workers\n"
                 "  loadgen       drive a serve daemon with concurrent "
                 "clients\n"
                 "\n"
                 "run `momsim help` for the shared bench flags.\n");
    return rc;
}

int
runList()
{
    std::printf("registered benches (momsim <name> [flags]):\n");
    std::printf("  %-15s %-34s %s\n", "name", "replaces", "summary");
    for (const BenchDef &def : benchRegistry()) {
        std::printf("  %-15s %-34s %s\n", def.name.c_str(),
                    def.oldBinary.c_str(), def.summary.c_str());
    }
    std::printf("\nplus: batch (JSONL request server), serve (socket "
                "daemon), client, help, list\n");
    return 0;
}

int
runHelp(int argc, char **argv)
{
    if (argc >= 1) {
        if (std::strcmp(argv[0], "batch") == 0) {
            std::printf(
                "momsim batch — serve JSONL SimRequests from stdin\n"
                "\n"
                "usage: momsim batch [--jobs N] [--parallel M] "
                "[--client C] [--no-timing]\n"
                "                    [--mem-cache-rows N] [--stats]\n"
                "\n"
                "flags:\n"
                "  --jobs, -j N     scheduler workers (default: "
                "all hardware)\n"
                "  --parallel M     concurrent client submitters "
                "(default 2, max 16)\n"
                "  --client C       client tag echoed in every "
                "response (default none)\n"
                "  --no-timing      zero wallMs/sim_kcps in responses "
                "so identical\n"
                "                   request streams emit byte-identical "
                "output\n"
                "  --mem-cache-rows N  in-memory result-row LRU "
                "capacity (default 4096,\n"
                "                   0 disables)\n"
                "  --stats          print scheduler counters (points "
                "simulated /\n"
                "                   dedup-joined / memory- and "
                "disk-cache hits) to\n"
                "                   stderr after the stream drains\n"
                "\n"
                "One SimRequest JSON object per input line "
                "(schemaVersion %d); one\nSimResponse per output line, "
                "in input order, tagged with the request's\nid. "
                "Malformed lines produce ok:false responses in their "
                "slot.\n",
                kSimRequestSchemaVersion);
            return 0;
        }
        if (std::strcmp(argv[0], "serve") == 0) {
            std::printf(
                "momsim serve — long-lived SimRequest daemon over TCP "
                "and/or a unix socket\n"
                "\n"
                "usage: momsim serve (--port N [--host H] | --unix "
                "PATH) [flags]\n"
                "\n"
                "flags:\n"
                "  --port N         listen on TCP HOST:N (0 = pick an "
                "ephemeral port)\n"
                "  --host H         TCP bind address (default "
                "127.0.0.1)\n"
                "  --unix PATH      listen on a unix-domain socket\n"
                "  --jobs, -j N     scheduler workers (default: "
                "all hardware)\n"
                "  --parallel M     submitter threads per connection "
                "(default 2, max 16)\n"
                "  --mem-cache-rows N  in-memory result-row LRU "
                "capacity (default 4096,\n"
                "                   0 disables)\n"
                "  --max-clients N  concurrent connections before "
                "shedding (default 32)\n"
                "  --max-pending N  per-connection admission queue "
                "bound (default 2*M+8)\n"
                "  --cache-dir DIR  persistent result store shared "
                "across all requests\n"
                "  --ready-file P   write the bound addresses to P "
                "once listening\n"
                "  --no-timing      zero wall-clock fields (byte-"
                "stable responses)\n"
                "\n"
                "Wire format: one SimRequest JSON object per line in, "
                "one SimResponse\nper line out, in request order per "
                "connection. Responses carry a\n\"client\" tag (the "
                "request's own, or the connection's id). Over quota\n"
                "the server answers ok:false code:overloaded instead "
                "of stalling.\nSIGINT/SIGTERM drains gracefully: stop "
                "accepting, finish in-flight\nrequests, flush, exit 0 "
                "(second signal: stop reading new requests).\n"
                "\n"
                "Fabric: lines whose JSON carries a top-level \"kind\" "
                "speak the\ndistributed-sweep protocol instead. "
                "{\"kind\":\"ping\"} answers with a pong\ncarrying the "
                "worker's version fingerprint (%s),\nuptimeMs, inFlight "
                "(requests executing), pendingPoints (dealt sweep\n"
                "points not yet streamed back) and the scheduler's "
                "lifetime gauges:\npointsSimulated, pointsDeduped "
                "(in-flight joins), memCacheHits and\ndiskCacheHits; "
                "\"shard_run\" executes a coordinator's deal — see\n"
                "`momsim help coord`.\n",
                momsim::fabric::fabricVersionString().c_str());
            return 0;
        }
        if (std::strcmp(argv[0], "client") == 0) {
            std::printf(
                "momsim client — stream JSONL requests to a momsim "
                "serve daemon\n"
                "\n"
                "usage: momsim client (--connect HOST:PORT | --unix "
                "PATH)\n"
                "                     [--connect-retries N] "
                "[--retry-backoff-ms MS] [--abort]\n"
                "\n"
                "Sends stdin to the server (half-closing at EOF) and "
                "prints response\nlines to stdout until the server "
                "finishes. --abort resets the\nconnection after "
                "sending without reading responses (fault-injection\n"
                "for the disconnect-hardening tests).\n"
                "\n"
                "--connect-retries N (default 0) re-dials a refused "
                "connection up to N\nextra times with jittered "
                "exponential backoff starting at\n--retry-backoff-ms "
                "MS (default 200, doubled per attempt, capped 10 s) —\n"
                "for clients racing a daemon's startup. Exhaustion "
                "prints one\nstructured {\"error\":{\"code\":"
                "\"connect_failed\",...}} line and exits 1.\n");
            return 0;
        }
        if (std::strcmp(argv[0], "loadgen") == 0) {
            std::printf(
                "momsim loadgen — drive a serve daemon with concurrent "
                "clients\n"
                "\n"
                "usage: momsim loadgen (--connect HOST:PORT | --unix "
                "PATH) [flags]\n"
                "\n"
                "flags:\n"
                "  --clients K             concurrent client "
                "connections (default 4)\n"
                "  --requests N            requests per client "
                "(default 8)\n"
                "  --overlap PCT           %% of requests drawn from a "
                "shared sweep all\n"
                "                          clients repeat (exercises "
                "dedup + row cache);\n"
                "                          the rest are per-client "
                "unique (default 50)\n"
                "  --max-cycles N          sweep depth per request "
                "(default 20000)\n"
                "  --threads LIST          thread counts swept per "
                "request (default 1,2,4)\n"
                "  --isas LIST             ISAs swept per request "
                "(default mmx)\n"
                "  --json FILE             write the report as JSON "
                "(for CI artifacts)\n"
                "  --connect-retries N     extra dial attempts "
                "(default 5)\n"
                "  --retry-backoff-ms MS   first retry backoff, "
                "doubled + jittered\n"
                "                          (default 200)\n"
                "\n"
                "Each client sends its requests back-to-back over one "
                "connection and\nmeasures per-request latency. The "
                "report aggregates answered points\nper second and p50/"
                "p95 request latency across all clients — the\n"
                "serving-throughput benchmark for the point-level "
                "scheduler.\n");
            return 0;
        }
        if (std::strcmp(argv[0], "coord") == 0) {
            std::printf(
                "momsim coord — run a sweep across a fleet of momsim "
                "serve workers\n"
                "\n"
                "usage: momsim coord --workers LIST <bench> [bench "
                "flags]\n"
                "\n"
                "flags:\n"
                "  --workers LIST          comma-separated worker "
                "addresses\n"
                "                          (HOST:PORT or unix:PATH); "
                "repeatable\n"
                "  --connect-retries N     extra dial attempts per "
                "worker (default 5)\n"
                "  --retry-backoff-ms MS   first retry backoff; "
                "doubled + jittered\n"
                "                          per attempt (default 200)\n"
                "  --worker-timeout-ms MS  silence window before a "
                "worker is presumed\n"
                "                          dead and its points re-dealt "
                "(default 120000)\n"
                "  --worker-cache-dir DIR  cacheDir workers use for "
                "their own stores\n"
                "\n"
                "The coordinator plans the sweep locally (skipping "
                "points already in\n--cache-dir), deals the rest to the "
                "workers cost-balanced, streams\ncompleted rows into "
                "the store as they arrive, re-deals a dead or\nsilent "
                "worker's unfinished points to idle workers, and prints "
                "the\ncanonical output — byte-identical to the "
                "single-process run.\nBench flags (--quick, --workload, "
                "--cache-dir, --csv, ...) pass\nthrough; --shard and "
                "--merge reject (they are the coordinator's job).\n");
            return 0;
        }
        const BenchDef *def = findBench(argv[0]);
        if (!def) {
            std::fprintf(stderr, "momsim help: unknown bench '%s'\n",
                         argv[0]);
            return 2;
        }
        std::string name = "momsim " + def->name;
        std::printf("%s — %s\n\n%s\n\nflags:\n%s",
                    name.c_str(), def->summary.c_str(),
                    driver::BenchOptions::usageText(name.c_str()).c_str(),
                    driver::BenchOptions::helpText().c_str());
        return 0;
    }
    std::printf("momsim — DLP+TLP media-workload simulator "
                "multi-tool\n\n");
    usage(stdout, 0);
    std::printf("\nshared bench flags:\n%s",
                driver::BenchOptions::helpText().c_str());
    std::printf(
        "\nstatic analysis: byte-determinism and lock discipline are\n"
        "also checked at compile/lint time (clang -Wthread-safety,\n"
        "clang-tidy, tools/momlint.py) — see README \"Static "
        "analysis\".\n");
    return 0;
}

/**
 * The JSONL request loop: stdin/stdout as a transport over the shared
 * ResponseSequencer. The main thread reads stdin and push()es lines;
 * the sequencer's M submitters call SimService::submit (the service
 * serializes actual pool use — M buys request pipelining and
 * exercises the concurrent-submit contract, not extra simulation
 * parallelism) and its emitter writes responses in sequence order.
 */
int
runBatch(int argc, char **argv)
{
    int jobs = 0;
    int parallel = 2;
    int memCacheRows = -1;
    bool withTiming = true;
    bool stats = false;
    std::string clientTag;
    for (int i = 0; i < argc; ++i) {
        const char *arg = argv[i];
        // Strict like the bench flags: the whole token must be an
        // integer ("4x" or "2/3" reject, they don't truncate).
        auto intValueMin = [&](int minValue, int &out) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "momsim batch: %s expects a value\n",
                             arg);
                return false;
            }
            const char *v = argv[++i];
            char *end = nullptr;
            long parsed = std::strtol(v, &end, 10);
            if (*v == '\0' || !end || *end != '\0' ||
                parsed < minValue || parsed > 1 << 20) {
                std::fprintf(stderr,
                             "momsim batch: bad %s '%s' (want an "
                             "integer >= %d)\n", arg, v, minValue);
                return false;
            }
            out = static_cast<int>(parsed);
            return true;
        };
        auto intValue = [&](int &out) { return intValueMin(1, out); };
        if (std::strcmp(arg, "--jobs") == 0 ||
            std::strcmp(arg, "-j") == 0) {
            if (!intValue(jobs))
                return 2;
        } else if (std::strcmp(arg, "--parallel") == 0) {
            if (!intValue(parallel))
                return 2;
            if (parallel > 16)
                parallel = 16;
        } else if (std::strcmp(arg, "--mem-cache-rows") == 0) {
            if (!intValueMin(0, memCacheRows))
                return 2;
        } else if (std::strcmp(arg, "--stats") == 0) {
            stats = true;
        } else if (std::strcmp(arg, "--client") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "momsim batch: --client expects a value\n");
                return 2;
            }
            clientTag = argv[++i];
        } else if (std::strcmp(arg, "--no-timing") == 0) {
            withTiming = false;
        } else {
            std::fprintf(stderr, "momsim batch: unknown argument %s\n",
                         arg);
            return 2;
        }
    }

    // A downstream consumer closing the pipe must surface as a write
    // error the emitter handles, not a SIGPIPE kill mid-stream.
    net::ignoreSigpipe();

    SimServiceConfig cfg;
    cfg.jobs = jobs;
    if (memCacheRows >= 0)
        cfg.memCacheRows = static_cast<size_t>(memCacheRows);
    SimService service(cfg);

    // batch speaks the fabric too (ping/shard_run over stdin/stdout) —
    // the same handler serve wires in, which keeps the protocol
    // testable without sockets.
    momsim::fabric::WorkerHandler fabricHandler(service);

    ResponseSequencer::Config scfg;
    scfg.submit = [&service](const SimRequest &req) {
        return service.submit(req);
    };
    scfg.rawSubmit = [&fabricHandler](
                         const std::string &reqLine,
                         const std::function<void(std::string)> &chunk,
                         std::string &finalLine) {
        return fabricHandler.handle(reqLine, chunk, finalLine);
    };
    scfg.emit = [](const std::string &line) {
        // In-order, line-buffered: each response is one line, flushed,
        // so a streaming client sees it as soon as its turn comes.
        if (std::fwrite(line.data(), 1, line.size(), stdout) !=
            line.size())
            return false;
        if (std::fputc('\n', stdout) == EOF)
            return false;
        return std::fflush(stdout) == 0;
    };
    scfg.parallel = parallel;
    scfg.shedOnFull = false;    // stdin backpressure, never shed
    scfg.withTiming = withTiming;
    scfg.clientTag = clientTag;
    ResponseSequencer seq(scfg);

    // The main thread is the reader: one request per input line; blank
    // lines are skipped (convenient for hand-written request files).
    std::string line;
    int c;
    while ((c = std::fgetc(stdin)) != EOF) {
        if (c == '\n') {
            seq.push(std::move(line));
            line.clear();
            if (seq.writeFailed())
                break;  // undeliverable: drain, don't simulate
        } else {
            line += static_cast<char>(c);
        }
    }
    seq.push(std::move(line));  // a final line without trailing newline
    seq.finish();

    if (stats) {
        // The same gauge set the serve ping reports, for the one-shot
        // transport: where every answered point actually came from.
        const driver::PointScheduler::Counters gauges =
            service.counters();
        std::fprintf(stderr,
                     "momsim batch: scheduler stats: %llu request(s), "
                     "%llu point(s) simulated, %llu dedup-joined, "
                     "%llu memory-cache hit(s), %llu disk-cache "
                     "hit(s)\n",
                     (unsigned long long)gauges.requestsStarted,
                     (unsigned long long)gauges.pointsSimulated,
                     (unsigned long long)gauges.pointsDeduped,
                     (unsigned long long)gauges.memCacheHits,
                     (unsigned long long)gauges.diskCacheHits);
    }

    if (seq.writeFailed()) {
        std::fprintf(stderr,
                     "momsim batch: stdout write failed (consumer "
                     "closed the pipe?); emitted %zu of %zu accepted "
                     "response(s), remaining input dropped without "
                     "simulating\n",
                     seq.emitted(), seq.accepted());
        return 1;
    }
    return 0;
}

int
runRegistered(const BenchDef &def, int argc, char **argv)
{
    // Synthesize argv[0] = "momsim <bench>" so usage/error text names
    // the subcommand; the remaining tokens pass through unchanged.
    std::string argv0 = "momsim " + def.name;
    std::vector<char *> args;
    args.push_back(argv0.data());
    for (int i = 0; i < argc; ++i)
        args.push_back(argv[i]);
    return runBench(def, static_cast<int>(args.size()), args.data());
}

} // namespace

} // namespace momsim::svc

int
main(int argc, char **argv)
{
    using namespace momsim::svc;

    if (argc < 2)
        return usage(stderr, 2);
    const char *cmd = argv[1];
    if (std::strcmp(cmd, "list") == 0)
        return runList();
    if (std::strcmp(cmd, "help") == 0 || std::strcmp(cmd, "--help") == 0 ||
        std::strcmp(cmd, "-h") == 0)
        return runHelp(argc - 2, argv + 2);
    if (std::strcmp(cmd, "batch") == 0)
        return runBatch(argc - 2, argv + 2);
    if (std::strcmp(cmd, "serve") == 0)
        return runServe(argc - 2, argv + 2);
    if (std::strcmp(cmd, "client") == 0)
        return runClient(argc - 2, argv + 2);
    if (std::strcmp(cmd, "coord") == 0)
        return momsim::fabric::runCoord(argc - 2, argv + 2);
    if (std::strcmp(cmd, "loadgen") == 0)
        return runLoadgen(argc - 2, argv + 2);
    if (const BenchDef *def = findBench(cmd))
        return runRegistered(*def, argc - 2, argv + 2);
    std::fprintf(stderr, "momsim: unknown command '%s'\n\n", cmd);
    return usage(stderr, 2);
}
