/**
 * @file
 * `momsim` — the single multi-tool CLI in front of the simulation
 * engine, replacing the per-figure bench binaries:
 *
 *   momsim <bench> [flags]   run a registered figure/table (byte-
 *                            identical stdout to the removed binary)
 *   momsim list              print the bench registry (old binary ->
 *                            subcommand migration table)
 *   momsim help [bench]      generated usage + flag table
 *   momsim batch [...]       read JSONL SimRequests on stdin, execute
 *                            them through one shared SimService with
 *                            concurrent client threads, stream JSONL
 *                            SimResponses to stdout in input order —
 *                            the first traffic-serving entry point
 *
 * batch flags:
 *   --jobs N      simulation pool workers (default: all hardware)
 *   --parallel M  concurrent client submitters (default 2; capped 16)
 *   --no-timing   zero wallMs/sim_kcps in responses so identical
 *                 request streams produce byte-identical output (the
 *                 batch determinism gate runs this)
 *
 * Responses are emitted strictly in request order, tagged with each
 * request's echoed id, so output is deterministic no matter how the
 * submitters interleave; a malformed line produces an error response
 * in its slot rather than aborting the stream.
 */

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "svc/bench_registry.hh"
#include "svc/sim_service.hh"

namespace momsim::svc
{

namespace
{

int
usage(std::FILE *to, int rc)
{
    std::fprintf(to,
                 "usage: momsim <command> [flags]\n"
                 "\n"
                 "commands:\n"
                 "  <bench>       one of the registered figures/tables "
                 "(momsim list)\n"
                 "  list          print the bench registry\n"
                 "  help [bench]  flag table and per-bench usage\n"
                 "  batch         serve JSONL SimRequests from stdin\n"
                 "\n"
                 "run `momsim help` for the shared bench flags.\n");
    return rc;
}

int
runList()
{
    std::printf("registered benches (momsim <name> [flags]):\n");
    std::printf("  %-15s %-34s %s\n", "name", "replaces", "summary");
    for (const BenchDef &def : benchRegistry()) {
        std::printf("  %-15s %-34s %s\n", def.name.c_str(),
                    def.oldBinary.c_str(), def.summary.c_str());
    }
    std::printf("\nplus: batch (JSONL request server), help, list\n");
    return 0;
}

int
runHelp(int argc, char **argv)
{
    if (argc >= 1) {
        if (std::strcmp(argv[0], "batch") == 0) {
            std::printf(
                "momsim batch — serve JSONL SimRequests from stdin\n"
                "\n"
                "usage: momsim batch [--jobs N] [--parallel M] "
                "[--no-timing]\n"
                "\n"
                "flags:\n"
                "  --jobs, -j N     simulation pool workers (default: "
                "all hardware)\n"
                "  --parallel M     concurrent client submitters "
                "(default 2, max 16)\n"
                "  --no-timing      zero wallMs/sim_kcps in responses "
                "so identical\n"
                "                   request streams emit byte-identical "
                "output\n"
                "\n"
                "One SimRequest JSON object per input line "
                "(schemaVersion %d); one\nSimResponse per output line, "
                "in input order, tagged with the request's\nid. "
                "Malformed lines produce ok:false responses in their "
                "slot.\n",
                kSimRequestSchemaVersion);
            return 0;
        }
        const BenchDef *def = findBench(argv[0]);
        if (!def) {
            std::fprintf(stderr, "momsim help: unknown bench '%s'\n",
                         argv[0]);
            return 2;
        }
        std::string name = "momsim " + def->name;
        std::printf("%s — %s\n\n%s\n\nflags:\n%s",
                    name.c_str(), def->summary.c_str(),
                    driver::BenchOptions::usageText(name.c_str()).c_str(),
                    driver::BenchOptions::helpText().c_str());
        return 0;
    }
    std::printf("momsim — DLP+TLP media-workload simulator "
                "multi-tool\n\n");
    usage(stdout, 0);
    std::printf("\nshared bench flags:\n%s",
                driver::BenchOptions::helpText().c_str());
    return 0;
}

/**
 * The JSONL request loop. The main thread reads stdin and feeds a
 * bounded queue; M submitter threads call SimService::submit (the
 * service serializes actual pool use — M buys request pipelining and
 * exercises the concurrent-submit contract, not extra simulation
 * parallelism); one emitter thread writes responses in sequence order.
 */
int
runBatch(int argc, char **argv)
{
    int jobs = 0;
    int parallel = 2;
    bool withTiming = true;
    for (int i = 0; i < argc; ++i) {
        const char *arg = argv[i];
        // Strict like the bench flags: the whole token must be a
        // positive integer ("4x" or "2/3" reject, they don't truncate).
        auto intValue = [&](int &out) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "momsim batch: %s expects a value\n",
                             arg);
                return false;
            }
            const char *v = argv[++i];
            char *end = nullptr;
            long parsed = std::strtol(v, &end, 10);
            if (*v == '\0' || !end || *end != '\0' || parsed < 1 ||
                parsed > 1 << 20) {
                std::fprintf(stderr,
                             "momsim batch: bad %s '%s' (want an "
                             "integer >= 1)\n", arg, v);
                return false;
            }
            out = static_cast<int>(parsed);
            return true;
        };
        if (std::strcmp(arg, "--jobs") == 0 ||
            std::strcmp(arg, "-j") == 0) {
            if (!intValue(jobs))
                return 2;
        } else if (std::strcmp(arg, "--parallel") == 0) {
            if (!intValue(parallel))
                return 2;
            if (parallel > 16)
                parallel = 16;
        } else if (std::strcmp(arg, "--no-timing") == 0) {
            withTiming = false;
        } else {
            std::fprintf(stderr, "momsim batch: unknown argument %s\n",
                         arg);
            return 2;
        }
    }

    SimServiceConfig cfg;
    cfg.jobs = jobs;
    SimService service(cfg);

    struct Item
    {
        size_t seq;
        std::string line;
    };

    std::mutex mutex;
    std::condition_variable workCv;   // submitters wait for input
    std::condition_variable emitCv;   // emitter waits for responses
    std::condition_variable spaceCv;  // reader waits for queue space
    std::deque<Item> pending;
    std::map<size_t, std::string> ready;    // seq -> response JSON
    bool inputDone = false;
    size_t accepted = 0;
    // Bound the input backlog so a huge request stream against a slow
    // sweep cannot grow memory with the whole unread file; the reader
    // blocks once the submitters fall this far behind.
    const size_t maxPending = static_cast<size_t>(2 * parallel) + 8;

    auto submitLoop = [&]() {
        for (;;) {
            Item item;
            {
                std::unique_lock<std::mutex> lock(mutex);
                workCv.wait(lock, [&] {
                    return !pending.empty() || inputDone;
                });
                if (pending.empty())
                    return;
                item = std::move(pending.front());
                pending.pop_front();
            }
            spaceCv.notify_one();
            SimRequest req;
            std::string error;
            std::string json;
            if (SimRequest::fromJson(item.line, req, error)) {
                json = service.submit(req).toJson(withTiming);
            } else {
                json = SimResponse::failure("", errc::kBadRequest, error)
                           .toJson(withTiming);
            }
            {
                std::lock_guard<std::mutex> lock(mutex);
                ready.emplace(item.seq, std::move(json));
            }
            emitCv.notify_one();
        }
    };

    auto emitLoop = [&]() {
        size_t next = 0;
        for (;;) {
            std::string json;
            {
                std::unique_lock<std::mutex> lock(mutex);
                emitCv.wait(lock, [&] {
                    return ready.count(next) != 0 ||
                           (inputDone && pending.empty() &&
                            next >= accepted);
                });
                auto it = ready.find(next);
                if (it == ready.end())
                    return;     // all input drained and emitted
                json = std::move(it->second);
                ready.erase(it);
            }
            // In-order, line-buffered: each response is one line,
            // flushed, so a streaming client sees it as soon as its
            // turn comes.
            std::fwrite(json.data(), 1, json.size(), stdout);
            std::fputc('\n', stdout);
            std::fflush(stdout);
            ++next;
        }
    };

    std::vector<std::thread> submitters;
    for (int i = 0; i < parallel; ++i)
        submitters.emplace_back(submitLoop);
    std::thread emitter(emitLoop);

    // The main thread is the reader: one request per input line; blank
    // lines are skipped (convenient for hand-written request files).
    std::string line;
    int c;
    auto dispatch = [&]() {
        if (line.empty())
            return;
        {
            std::unique_lock<std::mutex> lock(mutex);
            spaceCv.wait(lock,
                         [&] { return pending.size() < maxPending; });
            pending.push_back({ accepted++, std::move(line) });
        }
        workCv.notify_one();
        line.clear();
    };
    while ((c = std::fgetc(stdin)) != EOF) {
        if (c == '\n')
            dispatch();
        else
            line += static_cast<char>(c);
    }
    dispatch();     // a final line without trailing newline
    {
        std::lock_guard<std::mutex> lock(mutex);
        inputDone = true;
    }
    workCv.notify_all();
    for (std::thread &t : submitters)
        t.join();
    emitCv.notify_all();
    emitter.join();
    return 0;
}

int
runRegistered(const BenchDef &def, int argc, char **argv)
{
    // Synthesize argv[0] = "momsim <bench>" so usage/error text names
    // the subcommand; the remaining tokens pass through unchanged.
    std::string argv0 = "momsim " + def.name;
    std::vector<char *> args;
    args.push_back(argv0.data());
    for (int i = 0; i < argc; ++i)
        args.push_back(argv[i]);
    return runBench(def, static_cast<int>(args.size()), args.data());
}

} // namespace

} // namespace momsim::svc

int
main(int argc, char **argv)
{
    using namespace momsim::svc;

    if (argc < 2)
        return usage(stderr, 2);
    const char *cmd = argv[1];
    if (std::strcmp(cmd, "list") == 0)
        return runList();
    if (std::strcmp(cmd, "help") == 0 || std::strcmp(cmd, "--help") == 0 ||
        std::strcmp(cmd, "-h") == 0)
        return runHelp(argc - 2, argv + 2);
    if (std::strcmp(cmd, "batch") == 0)
        return runBatch(argc - 2, argv + 2);
    if (const BenchDef *def = findBench(cmd))
        return runRegistered(*def, argc - 2, argv + 2);
    std::fprintf(stderr, "momsim: unknown command '%s'\n\n", cmd);
    return usage(stderr, 2);
}
