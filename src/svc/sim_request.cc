#include "svc/sim_request.hh"

#include "common/logging.hh"
#include "svc/json.hh"

namespace momsim::svc
{

namespace
{

std::string
stringArray(const std::vector<std::string> &v)
{
    std::string out = "[";
    for (size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        out += jsonQuote(v[i]);
    }
    return out + "]";
}

std::string
intArray(const std::vector<int> &v)
{
    std::string out = "[";
    for (size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        out += strfmt("%d", v[i]);
    }
    return out + "]";
}

bool
readStringArray(const JsonValue &v, const char *name,
                std::vector<std::string> &out, std::string &error)
{
    if (!v.isArray()) {
        error = strfmt("field \"%s\" must be an array of strings", name);
        return false;
    }
    out.clear();
    for (const JsonValue &item : v.items) {
        if (!item.isString()) {
            error = strfmt("field \"%s\" must be an array of strings",
                           name);
            return false;
        }
        out.push_back(item.text);
    }
    return true;
}

bool
readIntArray(const JsonValue &v, const char *name, std::vector<int> &out,
             std::string &error)
{
    if (!v.isArray()) {
        error = strfmt("field \"%s\" must be an array of integers", name);
        return false;
    }
    out.clear();
    for (const JsonValue &item : v.items) {
        int n = 0;
        if (!item.toInt(n)) {
            error = strfmt("field \"%s\" must be an array of integers",
                           name);
            return false;
        }
        out.push_back(n);
    }
    return true;
}

} // namespace

std::string
SimRequest::toJson() const
{
    std::string out = "{";
    out += strfmt("\"schemaVersion\":%d,", kSimRequestSchemaVersion);
    out += "\"id\":" + jsonQuote(id) + ",";
    if (!client.empty())
        out += "\"client\":" + jsonQuote(client) + ",";
    out += "\"bench\":" + jsonQuote(bench) + ",";
    out += "\"workloads\":" + stringArray(workloads) + ",";
    out += "\"isas\":" + stringArray(isas) + ",";
    out += "\"threads\":" + intArray(threads) + ",";
    out += "\"memModels\":" + stringArray(memModels) + ",";
    out += "\"policies\":" + stringArray(policies) + ",";
    out += strfmt("\"quick\":%s,", quick ? "true" : "false");
    out += strfmt("\"maxCycles\":%llu,",
                  static_cast<unsigned long long>(maxCycles));
    out += strfmt("\"seed\":%llu,",
                  static_cast<unsigned long long>(seed));
    out += strfmt("\"shardIndex\":%d,\"shardCount\":%d,", shardIndex,
                  shardCount);
    if (batch != 1)
        out += strfmt("\"batch\":%d,", batch);
    out += "\"cacheDir\":" + jsonQuote(cacheDir);
    return out + "}";
}

bool
SimRequest::fromJson(const std::string &json, SimRequest &out,
                     std::string &error)
{
    JsonValue doc;
    if (!parseJson(json, doc, error))
        return false;
    if (!doc.isObject()) {
        error = "request must be a JSON object";
        return false;
    }

    // schemaVersion is checked before anything else so a client on a
    // future format gets the version message, not a field complaint.
    const JsonValue *ver = doc.field("schemaVersion");
    if (!ver) {
        error = "missing required field \"schemaVersion\"";
        return false;
    }
    int version = 0;
    if (!ver->toInt(version)) {
        error = "field \"schemaVersion\" must be an integer";
        return false;
    }
    if (version != kSimRequestSchemaVersion) {
        error = strfmt("unsupported schemaVersion %d (this build speaks "
                       "%d)", version, kSimRequestSchemaVersion);
        return false;
    }

    SimRequest req;
    for (const auto &f : doc.fields) {
        const std::string &name = f.first;
        const JsonValue &v = f.second;
        if (name == "schemaVersion") {
            continue;   // validated above
        } else if (name == "id" || name == "client" ||
                   name == "bench" || name == "cacheDir") {
            if (!v.isString()) {
                error = strfmt("field \"%s\" must be a string",
                               name.c_str());
                return false;
            }
            (name == "id"       ? req.id
             : name == "client" ? req.client
             : name == "bench"  ? req.bench
                                : req.cacheDir) = v.text;
        } else if (name == "workloads") {
            if (!readStringArray(v, "workloads", req.workloads, error))
                return false;
        } else if (name == "isas") {
            if (!readStringArray(v, "isas", req.isas, error))
                return false;
        } else if (name == "threads") {
            if (!readIntArray(v, "threads", req.threads, error))
                return false;
        } else if (name == "memModels") {
            if (!readStringArray(v, "memModels", req.memModels, error))
                return false;
        } else if (name == "policies") {
            if (!readStringArray(v, "policies", req.policies, error))
                return false;
        } else if (name == "quick") {
            if (!v.isBool()) {
                error = "field \"quick\" must be a boolean";
                return false;
            }
            req.quick = v.boolean;
        } else if (name == "maxCycles") {
            if (!v.toU64(req.maxCycles)) {
                error = "field \"maxCycles\" must be a non-negative "
                        "integer";
                return false;
            }
        } else if (name == "seed") {
            if (!v.toU64(req.seed)) {
                error = "field \"seed\" must be a non-negative integer";
                return false;
            }
        } else if (name == "shardIndex") {
            if (!v.toInt(req.shardIndex)) {
                error = "field \"shardIndex\" must be an integer";
                return false;
            }
        } else if (name == "shardCount") {
            if (!v.toInt(req.shardCount)) {
                error = "field \"shardCount\" must be an integer";
                return false;
            }
        } else if (name == "batch") {
            if (!v.toInt(req.batch)) {
                error = "field \"batch\" must be an integer";
                return false;
            }
        } else {
            // Strict by design: a misspelled field silently ignored
            // would run the wrong sweep and cache it under the wrong
            // key. Clients on newer formats bump schemaVersion instead.
            error = strfmt("unknown field \"%s\"", name.c_str());
            return false;
        }
    }
    out = std::move(req);
    return true;
}

namespace
{

/**
 * Read one JSON string literal starting at the opening quote
 * (line[pos] == '"'). On success leaves @p pos one past the closing
 * quote and fills @p out with the unescaped value. Conservative: an
 * unterminated string or an escape it does not understand fails, and
 * the caller salvages nothing rather than something wrong.
 */
bool
scanString(const std::string &line, size_t &pos, std::string &out)
{
    out.clear();
    for (++pos; pos < line.size(); ++pos) {
        char c = line[pos];
        if (c == '"') {
            ++pos;
            return true;
        }
        if (c != '\\') {
            out += c;
            continue;
        }
        if (++pos >= line.size())
            return false;
        switch (line[pos]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default: return false;    // \uXXXX etc.: too clever to salvage
        }
    }
    return false;
}

} // namespace

std::string
salvageTopLevelId(const std::string &line)
{
    // Walk the line tracking brace/bracket depth and string literals;
    // at depth 1, a string immediately followed by ':' is a key. The
    // input is known-malformed somewhere, so the walk never trusts it:
    // any string that fails to scan ends the salvage.
    int depth = 0;
    size_t pos = 0;
    bool atKey = false;     // last token was a depth-1 key named "id"
    while (pos < line.size()) {
        char c = line[pos];
        if (c == '"') {
            std::string text;
            if (!scanString(line, pos, text))
                return "";
            if (atKey)
                return text;    // the value of a top-level "id" key
            size_t look = pos;
            while (look < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[look])))
                ++look;
            if (look < line.size() && line[look] == ':' && depth == 1 &&
                text == "id") {
                atKey = true;
                pos = look + 1;
                while (pos < line.size() &&
                       std::isspace(
                           static_cast<unsigned char>(line[pos])))
                    ++pos;
                // A non-string id ("id":3) is not salvageable as a tag.
                if (pos >= line.size() || line[pos] != '"')
                    return "";
            }
            continue;
        }
        if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        ++pos;
    }
    return "";
}

} // namespace momsim::svc
