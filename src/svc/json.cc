#include "svc/json.hh"

#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"
#include "driver/result_sink.hh"

namespace momsim::svc
{

namespace
{

struct Parser
{
    const std::string &text;
    size_t i = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &why)
    {
        if (error.empty())
            error = strfmt("json: %s at offset %zu", why.c_str(), i);
        return false;
    }

    void
    skipWs()
    {
        while (i < text.size() &&
               (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
                text[i] == '\r'))
            ++i;
    }

    bool
    literal(const char *word, size_t len)
    {
        if (text.compare(i, len, word) != 0)
            return fail(strfmt("expected '%s'", word));
        i += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (i >= text.size() || text[i] != '"')
            return fail("expected '\"'");
        ++i;
        out.clear();
        while (i < text.size() && text[i] != '"') {
            char c = text[i++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (i >= text.size())
                return fail("unterminated escape");
            char e = text[i++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'u': {
                if (i + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned v = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = text[i++];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                if (v > 0xff)   // the API never carries beyond Latin-1
                    return fail("\\u escape beyond Latin-1");
                out += static_cast<char>(v);
                break;
              }
              default:
                return fail(strfmt("bad escape '\\%c'", e));
            }
        }
        if (i >= text.size())
            return fail("unterminated string");
        ++i;    // closing quote
        return true;
    }

    /** The JSON number grammar, exactly:
     *  -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)? */
    static bool
    validNumberToken(const std::string &t)
    {
        size_t k = 0;
        auto digit = [&t](size_t p) {
            return p < t.size() && t[p] >= '0' && t[p] <= '9';
        };
        if (k < t.size() && t[k] == '-')
            ++k;
        if (!digit(k))
            return false;
        if (t[k] == '0') {
            ++k;
        } else {
            while (digit(k))
                ++k;
        }
        if (k < t.size() && t[k] == '.') {
            ++k;
            if (!digit(k))
                return false;
            while (digit(k))
                ++k;
        }
        if (k < t.size() && (t[k] == 'e' || t[k] == 'E')) {
            ++k;
            if (k < t.size() && (t[k] == '+' || t[k] == '-'))
                ++k;
            if (!digit(k))
                return false;
            while (digit(k))
                ++k;
        }
        return k == t.size();
    }

    bool
    parseNumber(JsonValue &out)
    {
        size_t start = i;
        if (i < text.size() && text[i] == '-')
            ++i;
        while (i < text.size() &&
               ((text[i] >= '0' && text[i] <= '9') || text[i] == '.' ||
                text[i] == 'e' || text[i] == 'E' || text[i] == '+' ||
                text[i] == '-'))
            ++i;
        if (i == start)
            return fail("expected a number");
        out.kind = JsonValue::Kind::Number;
        out.text = text.substr(start, i - start);
        // Strict: exactly the JSON grammar, not whatever strtod takes
        // ("+5", "5.", ".5" and "1e" all reject).
        if (!validNumberToken(out.text))
            return fail(strfmt("bad number '%s'", out.text.c_str()));
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > 32)
            return fail("nesting too deep");
        skipWs();
        if (i >= text.size())
            return fail("unexpected end of input");
        char c = text[i];
        if (c == '{') {
            ++i;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (i < text.size() && text[i] == '}') {
                ++i;
                return true;
            }
            for (;;) {
                skipWs();
                std::string name;
                if (!parseString(name))
                    return false;
                for (const auto &f : out.fields) {
                    if (f.first == name)
                        return fail(strfmt("duplicate key \"%s\"",
                                           name.c_str()));
                }
                skipWs();
                if (i >= text.size() || text[i] != ':')
                    return fail("expected ':'");
                ++i;
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.fields.emplace_back(std::move(name), std::move(v));
                skipWs();
                if (i < text.size() && text[i] == ',') {
                    ++i;
                    continue;
                }
                if (i < text.size() && text[i] == '}') {
                    ++i;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++i;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (i < text.size() && text[i] == ']') {
                ++i;
                return true;
            }
            for (;;) {
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.items.push_back(std::move(v));
                skipWs();
                if (i < text.size() && text[i] == ',') {
                    ++i;
                    continue;
                }
                if (i < text.size() && text[i] == ']') {
                    ++i;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
        }
        return parseNumber(out);
    }
};

} // namespace

const JsonValue *
JsonValue::field(const std::string &name) const
{
    for (const auto &f : fields) {
        if (f.first == name)
            return &f.second;
    }
    return nullptr;
}

bool
JsonValue::toU64(uint64_t &out) const
{
    if (kind != Kind::Number || text.empty() || text[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    // Out-of-range values reject instead of clamping to 2^64-1 — a
    // silently clamped cycle cap would key cached rows under a limit
    // the client never asked for.
    return end && *end == '\0' && errno != ERANGE;
}

bool
JsonValue::toInt(int &out) const
{
    if (kind != Kind::Number || text.empty())
        return false;
    char *end = nullptr;
    long v = std::strtol(text.c_str(), &end, 10);
    if (!end || *end != '\0' || v < INT32_MIN || v > INT32_MAX)
        return false;
    out = static_cast<int>(v);
    return true;
}

bool
JsonValue::toDouble(double &out) const
{
    if (kind != Kind::Number || text.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end && *end == '\0';
}

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    Parser p(text);
    JsonValue v;
    if (!p.parseValue(v, 0)) {
        error = p.error;
        return false;
    }
    p.skipWs();
    if (p.i != text.size()) {
        error = strfmt("json: trailing garbage at offset %zu", p.i);
        return false;
    }
    out = std::move(v);
    return true;
}

std::string
jsonQuote(const std::string &s)
{
    return "\"" + driver::jsonEscape(s) + "\"";
}

} // namespace momsim::svc
