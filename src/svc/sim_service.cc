#include "svc/sim_service.hh"

#include <chrono>
#include <unordered_set>

#include "common/logging.hh"
#include "driver/result_store.hh"
#include "svc/axis_parse.hh"
#include "svc/bench_registry.hh"
#include "workloads/workload_spec.hh"

namespace momsim::svc
{

namespace
{

double
nowMs()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace

SimService::SimService(SimServiceConfig cfg)
    : _sched(driver::PointScheduler::Config { cfg.jobs,
                                              cfg.memCacheRows }),
      _paperRepo(workloads::WorkloadScale::Paper),
      _tinyRepo(workloads::WorkloadScale::Tiny)
{}

bool
SimService::resolveGrid(const SimRequest &req, driver::SweepGrid &grid,
                        std::string &benchName,
                        SimResponse &error) const
{
    const bool hasAxes = !req.isas.empty() || !req.threads.empty() ||
                         !req.memModels.empty() || !req.policies.empty();

    if (!req.bench.empty()) {
        if (hasAxes) {
            error = SimResponse::failure(
                req.id, errc::kBadRequest,
                "\"bench\" and explicit axes are mutually exclusive");
            return false;
        }
        const BenchDef *def = findBench(req.bench);
        if (!def) {
            error = SimResponse::failure(
                req.id, errc::kUnknownBench,
                strfmt("unknown bench \"%s\" (see `momsim list`)",
                       req.bench.c_str()));
            return false;
        }
        if (!def->hasSweep()) {
            error = SimResponse::failure(
                req.id, errc::kNoSweep,
                strfmt("bench \"%s\" has no sweep stage; use the "
                       "`momsim %s` CLI for its analysis tables",
                       req.bench.c_str(), req.bench.c_str()));
            return false;
        }
        // The grid factory sees the request's workload selection the
        // same way it sees a CLI --workload (the mix-sensitivity bench
        // pins its own axis only when the selection is empty).
        driver::BenchOptions opts;
        opts.quick = req.quick;
        opts.workloads = req.workloads;
        grid = def->grid(opts);
        benchName = def->name;
        return true;
    }

    // Explicit axes: unset ones default to a single element, exactly
    // like SweepGrid's own defaults. Duplicate values (checked on the
    // *parsed* value, so "mmx" and "MMX" collide) reject — they would
    // expand duplicate sweep points with identical ids, seeds and
    // cache keys, the same bug class the workload axis rejects above.
    auto duplicateIn = [&](const auto &values, const std::string &name,
                           const char *axis) {
        for (size_t i = 0; i + 1 < values.size(); ++i) {
            if (values[i] == values.back()) {
                error = SimResponse::failure(
                    req.id, errc::kBadAxis,
                    strfmt("duplicate %s \"%s\"", axis, name.c_str()));
                return true;
            }
        }
        return false;
    };

    std::vector<isa::SimdIsa> isas;
    for (const std::string &s : req.isas) {
        isa::SimdIsa v;
        if (!parseIsaToken(s, v)) {
            error = SimResponse::failure(
                req.id, errc::kBadAxis,
                strfmt("unknown isa \"%s\"", s.c_str()));
            return false;
        }
        isas.push_back(v);
        if (duplicateIn(isas, s, "isa"))
            return false;
    }
    std::vector<mem::MemModel> mems;
    for (const std::string &s : req.memModels) {
        mem::MemModel v;
        if (!parseMemModelToken(s, v)) {
            error = SimResponse::failure(
                req.id, errc::kBadAxis,
                strfmt("unknown memModel \"%s\"", s.c_str()));
            return false;
        }
        mems.push_back(v);
        if (duplicateIn(mems, s, "memModel"))
            return false;
    }
    std::vector<cpu::FetchPolicy> policies;
    for (const std::string &s : req.policies) {
        cpu::FetchPolicy v;
        if (!parsePolicyToken(s, v)) {
            error = SimResponse::failure(
                req.id, errc::kBadAxis,
                strfmt("unknown policy \"%s\"", s.c_str()));
            return false;
        }
        policies.push_back(v);
        if (duplicateIn(policies, s, "policy"))
            return false;
    }
    for (size_t i = 0; i < req.threads.size(); ++i) {
        int t = req.threads[i];
        if (t < 1 || t > 8) {
            error = SimResponse::failure(
                req.id, errc::kBadAxis,
                strfmt("thread count %d out of range 1..8", t));
            return false;
        }
        for (size_t j = 0; j < i; ++j) {
            if (req.threads[j] == t) {
                error = SimResponse::failure(
                    req.id, errc::kBadAxis,
                    strfmt("duplicate thread count %d", t));
                return false;
            }
        }
    }

    if (!isas.empty())
        grid.isas(std::move(isas));
    if (!req.threads.empty())
        grid.threadCounts(req.threads);
    if (!mems.empty())
        grid.memModels(std::move(mems));
    if (!policies.empty())
        grid.policies(std::move(policies));
    benchName.clear();
    return true;
}

SimResponse
SimService::submit(const SimRequest &req)
{
    return execute(req, nullptr, nullptr);
}

SimResponse
SimService::submitFiltered(const SimRequest &req,
                           const std::vector<std::string> &pointIds,
                           const RowFn &onRow)
{
    return execute(req, &pointIds, onRow);
}

SimResponse
SimService::execute(const SimRequest &req,
                    const std::vector<std::string> *pointIds,
                    const RowFn &onRow)
{
    struct ActiveGuard
    {
        std::atomic<int> &counter;
        explicit ActiveGuard(std::atomic<int> &c) : counter(c)
        {
            counter.fetch_add(1, std::memory_order_relaxed);
        }
        ~ActiveGuard()
        {
            counter.fetch_sub(1, std::memory_order_relaxed);
        }
    } guard(_active);

    const double t0 = nowMs();

    // ---- request validation, all via structured errors ----
    if (req.shardCount < 1 || req.shardIndex < 1 ||
        req.shardIndex > req.shardCount) {
        return SimResponse::failure(
            req.id, errc::kBadShard,
            strfmt("bad shard %d/%d (want 1 <= I <= N)", req.shardIndex,
                   req.shardCount));
    }
    if (pointIds && req.shardCount != 1) {
        return SimResponse::failure(
            req.id, errc::kBadShard,
            "a filtered (shard_run) request must be unsharded — the "
            "point filter is the shard");
    }
    if (req.batch < 1) {
        return SimResponse::failure(
            req.id, errc::kBadRequest,
            strfmt("bad batch %d (want an integer >= 1)", req.batch));
    }
    for (const std::string &name : req.workloads) {
        if (!workloads::WorkloadSpec::isKnown(name)) {
            return SimResponse::failure(
                req.id, errc::kUnknownWorkload,
                strfmt("unknown workload \"%s\" (see "
                       "--list-workloads)", name.c_str()));
        }
    }
    for (size_t i = 0; i < req.workloads.size(); ++i) {
        for (size_t j = i + 1; j < req.workloads.size(); ++j) {
            if (req.workloads[i] == req.workloads[j]) {
                return SimResponse::failure(
                    req.id, errc::kBadRequest,
                    strfmt("duplicate workload \"%s\"",
                           req.workloads[i].c_str()));
            }
        }
    }

    driver::SweepGrid grid;
    std::string benchName;
    SimResponse error;
    if (!resolveGrid(req, grid, benchName, error))
        return error;

    // The same fold the CLI harness applies — shared so the two entry
    // points cannot drift on key-affecting semantics.
    driver::applyRunSelection(grid, req.workloads, req.maxCycles);

    // ---- execution: no run lock — requests interleave point-by-point
    // on the shared scheduler ----

    // Store selection: a request naming its own cacheDir gets that
    // store (the service-lifetime one if the dirs coincide); a request
    // naming none inherits the service's shared store when openCache()
    // bound one, which is how a warm daemon turns repeat traffic into
    // cache replays instead of simulations. Stores are internally
    // thread-safe, and even two request-private stores on one dir
    // serialize their file appends on a per-path lock.
    std::shared_ptr<driver::ResultStore> shared;
    {
        MutexLock lock(_cacheMutex);
        if (req.cacheDir.empty() || req.cacheDir == _sharedDir)
            shared = _sharedStore;
    }
    driver::ResultStore localStore;
    driver::ResultStore *store = shared.get();
    if (!store && !req.cacheDir.empty()) {
        if (localStore.openDir(req.cacheDir)) {
            store = &localStore;
        } else {
            return SimResponse::failure(
                req.id, errc::kCacheDir,
                strfmt("cannot open cacheDir \"%s\"",
                       req.cacheDir.c_str()));
        }
    }

    // Workloads build on the submitting thread during planning (the
    // repo's get() is thread-safe and builds each name exactly once
    // process-wide, so concurrent requests needing distinct mixes
    // still synthesize them concurrently).
    workloads::WorkloadRepo &repo = this->repo(req.quick);

    driver::RunPlan plan =
        planSweep(grid.expand(req.seed), repo, store,
                  req.shardIndex - 1, req.shardCount);

    if (pointIds) {
        // Keep only the dealt points: everything else becomes foreign
        // (shard -1, which is never plan.shardIndex), so the runner
        // simulates — and the counts describe — exactly the filter.
        std::unordered_set<std::string> want(pointIds->begin(),
                                             pointIds->end());
        for (driver::PlannedPoint &p : plan.points) {
            auto it = want.find(p.spec.canonicalId());
            if (it == want.end())
                p.shard = -1;
            else
                want.erase(it);
        }
        if (!want.empty()) {
            // Report the first unknown id in the *request's* order:
            // want is an unordered_set, and its begin() under multiple
            // unknowns would pick a hash-order-dependent one — a
            // nondeterministic response byte.
            const std::string *unknown = nullptr;
            for (const std::string &id : *pointIds) {
                if (want.count(id) != 0) {
                    unknown = &id;
                    break;
                }
            }
            return SimResponse::failure(
                req.id, errc::kBadRequest,
                strfmt("unknown point \"%s\" (not in this sweep)",
                       unknown->c_str()));
        }
        // Cache hits among the dealt points replay right away, in
        // sweep order, before any simulation starts.
        if (onRow) {
            for (const driver::PlannedPoint &p : plan.points) {
                if (p.shard == plan.shardIndex && p.cached)
                    onRow(p, p.row);
            }
        }
    }

    _sched.noteDiskCacheHits(plan.cachedMineCount());
    driver::ResultSink sink = driver::runPlanOnScheduler(
        _sched, repo, plan, req.batch, store, onRow);

    SimResponse resp;
    resp.id = req.id;
    resp.ok = true;
    resp.bench = benchName;
    resp.totalPoints = plan.points.size();
    resp.cachedPoints = plan.cachedMineCount();
    resp.simulatedPoints = plan.simulateCount();
    resp.rows = sink.rows();
    resp.wallMs = nowMs() - t0;
    return resp;
}

bool
SimService::openCache(const std::string &dir, std::string &error)
{
    auto store = std::make_shared<driver::ResultStore>();
    if (!store->openDir(dir)) {
        error = strfmt("cannot open cache dir \"%s\"", dir.c_str());
        return false;
    }
    MutexLock lock(_cacheMutex);
    _sharedStore = std::move(store);
    _sharedDir = dir;
    return true;
}

std::string
SimService::cacheDir() const
{
    MutexLock lock(_cacheMutex);
    return _sharedDir;
}

} // namespace momsim::svc
