#include "svc/axis_parse.hh"

#include <cctype>

namespace momsim::svc
{

namespace
{

std::string
lowered(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace

bool
parseIsaToken(const std::string &s, isa::SimdIsa &out)
{
    const std::string t = lowered(s);
    if (t == "mmx") {
        out = isa::SimdIsa::Mmx;
        return true;
    }
    if (t == "mom") {
        out = isa::SimdIsa::Mom;
        return true;
    }
    return false;
}

bool
parseMemModelToken(const std::string &s, mem::MemModel &out)
{
    // The store tokens are already lowercase, so folding the input is
    // all the case-insensitivity this axis needs.
    return mem::fromString(lowered(s).c_str(), out);
}

bool
parsePolicyToken(const std::string &s, cpu::FetchPolicy &out)
{
    const std::string t = lowered(s);
    if (t == "rr" || t == "round-robin") {
        out = cpu::FetchPolicy::RoundRobin;
        return true;
    }
    if (t == "ic" || t == "icount") {
        out = cpu::FetchPolicy::ICount;
        return true;
    }
    if (t == "oc" || t == "ocount") {
        out = cpu::FetchPolicy::OCount;
        return true;
    }
    if (t == "bl" || t == "balance") {
        out = cpu::FetchPolicy::Balance;
        return true;
    }
    return false;
}

} // namespace momsim::svc
