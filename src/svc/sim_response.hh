/**
 * @file
 * The response half of the momsim service API.
 *
 * A SimResponse is what SimService::submit returns for every request —
 * success or failure, always a value, never an exit(): the rows of the
 * executed sweep (in sweep order, the same rows the CSV/JSON sinks
 * render), a plan summary (total/cached/simulated points), the
 * request's wall time, and on failure a structured (code, message)
 * error where the old bench binaries called fatal() or usage().
 *
 * Serialization is one JSON line (JSONL-ready for `momsim batch`).
 * The two self-measurement fields of every row (sim_kcps, wall_ms) and
 * the response's own wallMs are wall-clock facts that vary run to run;
 * toJson(withTiming=false) zeroes them so two executions of the same
 * request compare byte-identically — the contract the batch
 * determinism gate checks.
 */

#ifndef MOMSIM_SVC_SIM_RESPONSE_HH
#define MOMSIM_SVC_SIM_RESPONSE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "driver/result_sink.hh"

namespace momsim::svc
{

/** Version of the SimResponse wire format. Bump on any field change. */
constexpr int kSimResponseSchemaVersion = 1;

/** Machine-readable failure categories of SimService::submit. */
namespace errc
{
/** Request is structurally or semantically malformed. */
constexpr const char *kBadRequest = "bad_request";
/** Named bench is not in the registry. */
constexpr const char *kUnknownBench = "unknown_bench";
/** Named bench has no sweep stage (table2/table3): CLI-only. */
constexpr const char *kNoSweep = "no_sweep";
/** A workload name is not in the registry. */
constexpr const char *kUnknownWorkload = "unknown_workload";
/** An isa/memModel/policy/threads axis value does not parse. */
constexpr const char *kBadAxis = "bad_axis";
/** shardIndex/shardCount out of range. */
constexpr const char *kBadShard = "bad_shard";
/** cacheDir could not be opened or its store not read. */
constexpr const char *kCacheDir = "cache_dir";
/** Load shed: admission queue full or --max-clients reached. The
 *  request was NOT executed; retry against a less-loaded server. */
constexpr const char *kOverloaded = "overloaded";
} // namespace errc

struct SimResponse
{
    std::string id;             ///< echo of SimRequest.id
    /**
     * The client this response answers: the request's own client tag,
     * or the transport's default (connection id under `momsim serve`,
     * `--client` under `momsim batch`). Serialized only when non-empty
     * so untagged single-client streams keep the original wire shape.
     */
    std::string client;
    bool ok = false;

    // ---- failure (valid when !ok) ----
    std::string errorCode;      ///< one of errc::*
    std::string errorMessage;   ///< human-readable one-liner

    // ---- success (valid when ok) ----
    std::string bench;          ///< resolved bench name; "" for axes
    size_t totalPoints = 0;     ///< full plan size (all shards)
    size_t cachedPoints = 0;    ///< this shard's store hits
    size_t simulatedPoints = 0; ///< this shard's fresh simulations
    double wallMs = 0.0;        ///< submit() wall time
    /** This shard's rows, in sweep order. */
    std::vector<driver::ResultRow> rows;

    /**
     * One JSON line. @p withTiming=false zeroes wallMs and each row's
     * sim_kcps/wall_ms so deterministic requests serialize
     * deterministically.
     */
    std::string toJson(bool withTiming = true) const;

    /** Shorthand for a failure response. */
    static SimResponse failure(const std::string &id,
                               const std::string &code,
                               const std::string &message);
};

} // namespace momsim::svc

#endif // MOMSIM_SVC_SIM_RESPONSE_HH
