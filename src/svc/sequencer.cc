#include "svc/sequencer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace momsim::svc
{

ResponseSequencer::ResponseSequencer(Config cfg) : _cfg(std::move(cfg))
{
    _cfg.parallel = std::max(1, std::min(16, _cfg.parallel));
    if (_cfg.maxPending == 0) {
        // The PR 5 batch bound: enough backlog to keep the submitters
        // busy, small enough that a huge stream against a slow sweep
        // cannot pull the whole unread input into memory.
        _cfg.maxPending = static_cast<size_t>(2 * _cfg.parallel) + 8;
    }
    for (int i = 0; i < _cfg.parallel; ++i)
        _submitters.emplace_back([this] { submitLoop(); });
    _emitter = std::thread([this] { emitLoop(); });
}

ResponseSequencer::~ResponseSequencer()
{
    finish();
}

void
ResponseSequencer::push(std::string line)
{
    if (line.empty())
        return;
    bool shed = false;
    size_t shedSeq = 0;
    {
        MutexLock lock(_mutex);
        if (_writeFailed.load(std::memory_order_relaxed))
            return;     // nothing pushed now can ever be delivered
        if (_cfg.shedOnFull) {
            shed = _pending.size() >= _cfg.maxPending;
        } else {
            while (_pending.size() >= _cfg.maxPending &&
                   !_writeFailed.load(std::memory_order_relaxed))
                _spaceCv.wait(_mutex);
            if (_writeFailed.load(std::memory_order_relaxed))
                return;
        }
        if (shed) {
            // Claim the sequence slot now — ordering is fixed by
            // arrival — but build the response outside the lock; the
            // emitter simply cannot pass this slot until the JSON
            // lands in _ready below.
            shedSeq = _accepted++;
            ++_shed;
        } else {
            _pending.push_back({ _accepted++, std::move(line) });
        }
    }
    if (!shed) {
        _workCv.notify_one();
        return;
    }
    // Answer in-slot without executing: the structured kOverloaded
    // error keeps the response stream in input order and tells the
    // client the request was never run. Serializing it here, not under
    // _mutex, keeps the shed path from stalling submitters mid-burst —
    // exactly when shedding happens.
    SimResponse resp = SimResponse::failure(
        salvageTopLevelId(line), errc::kOverloaded,
        strfmt("request queue full (max %zu pending); request "
               "not executed", _cfg.maxPending));
    resp.client = _cfg.clientTag;
    std::string json = resp.toJson(_cfg.withTiming);
    {
        MutexLock lock(_mutex);
        _ready.emplace(shedSeq, std::move(json));
    }
    _emitCv.notify_one();
}

void
ResponseSequencer::submitLoop()
{
    for (;;) {
        Item item;
        {
            MutexLock lock(_mutex);
            while (_pending.empty() && !_inputDone)
                _workCv.wait(_mutex);
            if (_pending.empty())
                return;
            item = std::move(_pending.front());
            _pending.pop_front();
        }
        _spaceCv.notify_one();
        // Once delivery is dead there is no point simulating: drain
        // the queue so finish() completes, but skip the work.
        std::string json;
        bool produced = false;
        bool handled = false;
        if (!_writeFailed.load(std::memory_order_acquire) &&
            _cfg.rawSubmit) {
            // Chunks enqueue under the slot's seq; the emitter streams
            // them ahead of the final line. rawSubmit returns before
            // the final is readied, so within one slot every chunk
            // precedes the final by construction.
            auto chunkFn = [this, seq = item.seq](std::string chunkLine) {
                {
                    MutexLock lock(_mutex);
                    if (_writeFailed.load(std::memory_order_relaxed))
                        return;     // undeliverable; drop quietly
                    _chunks[seq].push_back(std::move(chunkLine));
                }
                _emitCv.notify_one();
            };
            std::string finalLine;
            if (_cfg.rawSubmit(item.line, chunkFn, finalLine)) {
                json = std::move(finalLine);
                produced = true;
                handled = true;
            }
        }
        if (!handled &&
            !_writeFailed.load(std::memory_order_acquire)) {
            SimRequest req;
            std::string error;
            SimResponse resp;
            if (SimRequest::fromJson(item.line, req, error)) {
                resp = _cfg.submit(req);
                resp.client =
                    req.client.empty() ? _cfg.clientTag : req.client;
            } else {
                resp = SimResponse::failure(salvageTopLevelId(item.line),
                                            errc::kBadRequest, error);
                resp.client = _cfg.clientTag;
            }
            json = resp.toJson(_cfg.withTiming);
            produced = true;
        }
        {
            MutexLock lock(_mutex);
            // Even a dropped item claims its slot (empty marker) so
            // the emitter's in-order cursor can pass it.
            _ready.emplace(item.seq,
                           produced ? std::move(json) : std::string());
        }
        _emitCv.notify_one();
    }
}

void
ResponseSequencer::emitLoop()
{
    size_t next = 0;
    for (;;) {
        std::string json;
        bool isChunk = false;
        {
            MutexLock lock(_mutex);
            for (;;) {
                if (_ready.count(next) != 0)
                    break;
                auto pending = _chunks.find(next);
                if (pending != _chunks.end() && !pending->second.empty())
                    break;
                if (_inputDone && _pending.empty() && next >= _accepted)
                    break;
                _emitCv.wait(_mutex);
            }
            // The head slot's streamed chunks go out as they arrive,
            // strictly before the slot's final response; the cursor
            // only advances on the final, so chunk/final interleaving
            // never reorders across requests.
            auto c = _chunks.find(next);
            if (c != _chunks.end() && !c->second.empty()) {
                json = std::move(c->second.front());
                c->second.pop_front();
                isChunk = true;
            } else {
                auto it = _ready.find(next);
                if (it == _ready.end())
                    return;     // all input drained and emitted
                json = std::move(it->second);
                _ready.erase(it);
                _chunks.erase(next);    // stragglers of a dropped slot
            }
        }
        if (!isChunk)
            ++next;
        if (json.empty())
            continue;   // slot dropped after delivery died
        if (_cfg.emit(json)) {
            if (!isChunk) {
                MutexLock lock(_mutex);
                ++_emittedCount;
            }
            continue;
        }
        // Delivery is dead: flip to drain mode and wake everyone —
        // a blocked push() must stop waiting for space and the
        // submitters must stop simulating. The emitter keeps running
        // only to retire remaining slots so finish() terminates.
        _writeFailed.store(true, std::memory_order_release);
        _spaceCv.notify_all();
        _workCv.notify_all();
    }
}

void
ResponseSequencer::finish()
{
    {
        MutexLock lock(_mutex);
        if (_finished)
            return;
        _finished = true;
        _inputDone = true;
    }
    _workCv.notify_all();
    for (std::thread &t : _submitters)
        t.join();
    _emitCv.notify_all();
    _emitter.join();
}

size_t
ResponseSequencer::accepted() const
{
    MutexLock lock(_mutex);
    return _accepted;
}

size_t
ResponseSequencer::emitted() const
{
    MutexLock lock(_mutex);
    return _emittedCount;
}

size_t
ResponseSequencer::shedCount() const
{
    MutexLock lock(_mutex);
    return _shed;
}

} // namespace momsim::svc
