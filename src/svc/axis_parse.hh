/**
 * @file
 * Request-boundary parsing of sweep-axis tokens.
 *
 * The result store's fromString parsers accept exactly the
 * serialization tokens ("MMX", "RR", "perfect", ...) — that strictness
 * protects on-disk round-trips and must not loosen. The API boundary
 * is the opposite contract: clients write "mom", "Mmx", "Round-Robin"
 * or "ICOUNT" and mean the same axis value, so all three enum axes
 * parse case-insensitively here, with the long and short policy
 * spellings both accepted. One unit so `momsim batch`, `momsim serve`
 * and embedders cannot drift on which spellings a request may use.
 */

#ifndef MOMSIM_SVC_AXIS_PARSE_HH
#define MOMSIM_SVC_AXIS_PARSE_HH

#include <string>

#include "cpu/fetch_policy.hh"
#include "isa/simd_isa.hh"
#include "mem/hierarchy.hh"

namespace momsim::svc
{

/** "mmx" / "mom", any case. */
bool parseIsaToken(const std::string &s, isa::SimdIsa &out);

/** "perfect" / "conventional" / "decoupled", any case. */
bool parseMemModelToken(const std::string &s, mem::MemModel &out);

/** "rr"/"round-robin", "ic"/"icount", "oc"/"ocount", "bl"/"balance",
 *  any case. */
bool parsePolicyToken(const std::string &s, cpu::FetchPolicy &out);

} // namespace momsim::svc

#endif // MOMSIM_SVC_AXIS_PARSE_HH
