/**
 * @file
 * The registry that turned 12 bench binaries and an example into one
 * `momsim` multi-tool: every paper figure/table (and the explorer) is
 * a named BenchDef — a grid factory plus a stdout printer — instead of
 * a main(). The CLI dispatches `momsim <name> [flags]` through
 * runBench(), whose output is byte-identical to the removed per-bench
 * binaries (gated by the cli_equivalence CTest against goldens
 * captured from them), and SimService resolves request bench names
 * through the same grid factories, so the CLI tables and the service
 * rows can never disagree about what a figure sweeps.
 */

#ifndef MOMSIM_SVC_BENCH_REGISTRY_HH
#define MOMSIM_SVC_BENCH_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "driver/bench_harness.hh"

namespace momsim::svc
{

/**
 * One registered bench. Exactly one of the three run shapes is set:
 *  - grid + print: the normal sweeping figure/table — runBench()
 *    executes the grid through BenchHarness::run and hands the sink to
 *    print for the stdout tables;
 *  - runNoSweep: trace-analysis benches with no sweep stage (table2,
 *    table3) — runBench() calls declareNoSweep() first, exactly as the
 *    old mains did;
 *  - runCustom: benches with their own argv contract (the explorer's
 *    positional point spec) — wantsPositionals routes non-flag tokens
 *    to it instead of rejecting them.
 */
struct BenchDef
{
    std::string name;           ///< subcommand: "fig6", "table2", ...
    std::string oldBinary;      ///< the binary this entry replaced
    std::string summary;        ///< one-liner for `momsim list`

    std::function<driver::SweepGrid(const driver::BenchOptions &)> grid;
    std::function<void(driver::BenchHarness &,
                       const driver::ResultSink &)> print;
    std::function<void(driver::BenchHarness &)> runNoSweep;
    std::function<int(driver::BenchHarness &,
                      const std::vector<std::string> &)> runCustom;
    bool wantsPositionals = false;

    bool hasSweep() const { return static_cast<bool>(grid); }
};

/** All registered benches, in `momsim list` order. */
const std::vector<BenchDef> &benchRegistry();

/** Lookup by subcommand name; nullptr when absent. */
const BenchDef *findBench(const std::string &name);

/**
 * Run @p def exactly as its old standalone main() did: parse argv
 * (argv[0] is the display name for usage, e.g. "momsim fig6"),
 * construct a BenchHarness, execute, print. Exits on CLI errors and
 * --dry-run/--list-workloads, like the harness always has — the
 * no-exit() path into the same grids is SimService.
 */
int runBench(const BenchDef &def, int argc, char **argv);

// ---- per-bench factories (one per converted bench/*.cc) ----
BenchDef makeFig4Def();
BenchDef makeFig5Def();
BenchDef makeFig6Def();
BenchDef makeFig8Def();
BenchDef makeFig9Def();
BenchDef makeTable1Def();
BenchDef makeTable2Def();
BenchDef makeTable3Def();
BenchDef makeTable4Def();
BenchDef makeAblationDef();
BenchDef makeSimThroughputDef();
BenchDef makeWorkloadMixDef();
BenchDef makeExplorerDef();

} // namespace momsim::svc

#endif // MOMSIM_SVC_BENCH_REGISTRY_HH
