#include "svc/listener.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace momsim::svc
{

bool
Listener::open(const Options &opts, std::string &error)
{
    if (opts.tcpPort < 0 && opts.unixPath.empty()) {
        error = "no listen address (need a TCP port and/or a unix "
                "socket path)";
        return false;
    }
    if (opts.tcpPort >= 0) {
        int fd = net::listenTcp(opts.host, opts.tcpPort, error);
        if (fd < 0)
            return false;
        _tcp.reset(fd);
        _host = opts.host;
    }
    if (!opts.unixPath.empty()) {
        int fd = net::listenUnix(opts.unixPath, error);
        if (fd < 0) {
            _tcp.reset();
            return false;
        }
        _unix.reset(fd);
        _unixPath = opts.unixPath;
    }
    int pipeFds[2];
    if (::pipe(pipeFds) != 0) {
        error = strfmt("pipe: %s", std::strerror(errno));
        close();
        return false;
    }
    _wakeRead.reset(pipeFds[0]);
    _wakeWrite.reset(pipeFds[1]);
    return true;
}

int
Listener::acceptClient()
{
    for (;;) {
        struct pollfd fds[3];
        int n = 0;
        int tcpSlot = -1, unixSlot = -1;
        if (_wakeRead.valid()) {
            fds[n] = { _wakeRead.get(), POLLIN, 0 };
            ++n;
        }
        if (_tcp.valid()) {
            tcpSlot = n;
            fds[n] = { _tcp.get(), POLLIN, 0 };
            ++n;
        }
        if (_unix.valid()) {
            unixSlot = n;
            fds[n] = { _unix.get(), POLLIN, 0 };
            ++n;
        }
        if (n == 0 || !_wakeRead.valid())
            return -1;      // closed; nothing left to accept on

        int rc = ::poll(fds, static_cast<nfds_t>(n), -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;   // signal: loop re-checks via the self-pipe
            return -1;
        }
        // Wake byte (signal handler or wake()): stop accepting. Check
        // first so a drain request wins over a racing connection.
        if (fds[0].revents & POLLIN)
            return -1;
        for (int slot : { tcpSlot, unixSlot }) {
            if (slot < 0 || !(fds[slot].revents & POLLIN))
                continue;
            int client = ::accept(fds[slot].fd, nullptr, nullptr);
            if (client >= 0)
                return client;
            // A client that vanished between poll and accept is not
            // a listener failure; try again.
        }
    }
}

void
Listener::wake()
{
    if (_wakeWrite.valid()) {
        char byte = 'w';
        [[maybe_unused]] ssize_t n = ::write(_wakeWrite.get(), &byte, 1);
    }
}

int
Listener::boundPort() const
{
    return _tcp.valid() ? net::boundTcpPort(_tcp.get()) : -1;
}

std::vector<std::string>
Listener::boundAddresses() const
{
    std::vector<std::string> out;
    if (_tcp.valid())
        out.push_back(strfmt("tcp:%s:%d", _host.c_str(), boundPort()));
    if (_unix.valid())
        out.push_back("unix:" + _unixPath);
    return out;
}

void
Listener::close()
{
    _tcp.reset();
    if (_unix.valid()) {
        _unix.reset();
        ::unlink(_unixPath.c_str());
    }
    // The self-pipe stays open until destruction: a signal arriving
    // after close() must still find a valid fd to write to.
}

} // namespace momsim::svc
