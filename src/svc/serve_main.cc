#include "svc/serve_main.hh"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/net.hh"
#include "fabric/handler.hh"
#include "fabric/protocol.hh"
#include "svc/connection.hh"
#include "svc/json.hh"
#include "svc/listener.hh"
#include "svc/sim_service.hh"

namespace momsim::svc
{

namespace
{

/**
 * Strict integer flag value, batch-style: the whole token must be an
 * integer in [minValue, 1<<20] ("4x" and "2/3" reject, never
 * truncate). Advances @p i past the consumed value.
 */
bool
intFlag(const char *cmd, int argc, char **argv, int &i, int minValue,
        int &out)
{
    const char *arg = argv[i];
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s expects a value\n", cmd, arg);
        return false;
    }
    const char *v = argv[++i];
    char *end = nullptr;
    long parsed = std::strtol(v, &end, 10);
    if (*v == '\0' || !end || *end != '\0' || parsed < minValue ||
        parsed > 1 << 20) {
        std::fprintf(stderr, "%s: bad %s '%s' (want an integer >= %d)\n",
                     cmd, arg, v, minValue);
        return false;
    }
    out = static_cast<int>(parsed);
    return true;
}

bool
stringFlag(const char *cmd, int argc, char **argv, int &i,
           std::string &out)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s expects a value\n", cmd, argv[i]);
        return false;
    }
    out = argv[++i];
    return true;
}

/** Reap finished connections (join + drop); returns the live count. */
size_t
reapConnections(std::vector<std::unique_ptr<Connection>> &conns)
{
    for (size_t i = 0; i < conns.size();) {
        if (conns[i]->done()) {
            conns[i]->join();
            conns.erase(conns.begin() + static_cast<long>(i));
        } else {
            ++i;
        }
    }
    return conns.size();
}

} // namespace

int
runServe(int argc, char **argv)
{
    const char *cmd = "momsim serve";
    int port = -1;
    std::string host = "127.0.0.1";
    std::string unixPath;
    int jobs = 0;
    int parallel = 2;
    int memCacheRows = -1;
    int maxClients = 32;
    int maxPending = 0;
    std::string cacheDir;
    std::string readyFile;
    bool withTiming = true;

    for (int i = 0; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--port") == 0) {
            if (!intFlag(cmd, argc, argv, i, 0, port) || port > 65535) {
                if (port > 65535)
                    std::fprintf(stderr, "%s: bad --port %d (max 65535)\n",
                                 cmd, port);
                return 2;
            }
        } else if (std::strcmp(arg, "--host") == 0) {
            if (!stringFlag(cmd, argc, argv, i, host))
                return 2;
        } else if (std::strcmp(arg, "--unix") == 0) {
            if (!stringFlag(cmd, argc, argv, i, unixPath))
                return 2;
        } else if (std::strcmp(arg, "--jobs") == 0 ||
                   std::strcmp(arg, "-j") == 0) {
            if (!intFlag(cmd, argc, argv, i, 1, jobs))
                return 2;
        } else if (std::strcmp(arg, "--parallel") == 0) {
            if (!intFlag(cmd, argc, argv, i, 1, parallel))
                return 2;
            if (parallel > 16)
                parallel = 16;
        } else if (std::strcmp(arg, "--mem-cache-rows") == 0) {
            if (!intFlag(cmd, argc, argv, i, 0, memCacheRows))
                return 2;
        } else if (std::strcmp(arg, "--max-clients") == 0) {
            if (!intFlag(cmd, argc, argv, i, 1, maxClients))
                return 2;
        } else if (std::strcmp(arg, "--max-pending") == 0) {
            if (!intFlag(cmd, argc, argv, i, 1, maxPending))
                return 2;
        } else if (std::strcmp(arg, "--cache-dir") == 0) {
            if (!stringFlag(cmd, argc, argv, i, cacheDir))
                return 2;
        } else if (std::strcmp(arg, "--ready-file") == 0) {
            if (!stringFlag(cmd, argc, argv, i, readyFile))
                return 2;
        } else if (std::strcmp(arg, "--no-timing") == 0) {
            withTiming = false;
        } else {
            std::fprintf(stderr, "%s: unknown argument %s\n", cmd, arg);
            return 2;
        }
    }
    if (port < 0 && unixPath.empty()) {
        std::fprintf(stderr,
                     "%s: need a listen address: --port N (0 = "
                     "ephemeral) and/or --unix PATH\n", cmd);
        return 2;
    }

    net::ignoreSigpipe();

    // One warm SimService for the daemon's lifetime: the thread pool,
    // both workload repos and (with --cache-dir) the persistent result
    // store are built once and amortized across every connection.
    SimServiceConfig cfg;
    cfg.jobs = jobs;
    if (memCacheRows >= 0)
        cfg.memCacheRows = static_cast<size_t>(memCacheRows);
    SimService service(cfg);
    if (!cacheDir.empty()) {
        std::string error;
        if (!service.openCache(cacheDir, error)) {
            std::fprintf(stderr, "%s: %s\n", cmd, error.c_str());
            return 2;
        }
    }

    Listener listener;
    {
        Listener::Options lopts;
        lopts.tcpPort = port;
        lopts.host = host;
        lopts.unixPath = unixPath;
        std::string error;
        if (!listener.open(lopts, error)) {
            std::fprintf(stderr, "%s: %s\n", cmd, error.c_str());
            return 2;
        }
    }
    net::installShutdownSignals(listener.wakeWriteFd());

    const std::vector<std::string> addrs = listener.boundAddresses();
    for (const std::string &a : addrs)
        std::fprintf(stderr, "%s: listening on %s\n", cmd, a.c_str());
    if (!readyFile.empty()) {
        // Written tmp-then-rename so a poller never reads half a file.
        const std::string tmp = readyFile + ".tmp";
        std::FILE *f = std::fopen(tmp.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "%s: cannot write --ready-file %s\n",
                         cmd, readyFile.c_str());
            return 2;
        }
        for (const std::string &a : addrs)
            std::fprintf(f, "%s\n", a.c_str());
        std::fclose(f);
        std::rename(tmp.c_str(), readyFile.c_str());
    }

    // Every connection shares one fabric handler: a coordinator's
    // ping/shard_run lines are intercepted ahead of SimRequest parsing,
    // plain clients never notice it exists.
    fabric::WorkerHandler fabricHandler(service);

    Connection::Options copts;
    copts.parallel = parallel;
    copts.maxPending = static_cast<size_t>(maxPending);
    copts.withTiming = withTiming;
    copts.rawSubmit = [&fabricHandler](
                          const std::string &line,
                          const std::function<void(std::string)> &chunk,
                          std::string &finalLine) {
        return fabricHandler.handle(line, chunk, finalLine);
    };

    std::vector<std::unique_ptr<Connection>> conns;
    uint64_t serial = 0;

    // ---- accept loop: runs until the first SIGINT/SIGTERM ----
    for (;;) {
        int fd = listener.acceptClient();
        if (fd < 0)
            break;      // drain requested
        size_t active = reapConnections(conns);
        if (active >= static_cast<size_t>(maxClients)) {
            // Shed the whole connection with one structured error
            // line: better a fast, explicit "overloaded" than a
            // connection that sits unserved in a hidden backlog.
            std::string line =
                SimResponse::failure(
                    "", errc::kOverloaded,
                    strfmt("server at --max-clients %d; retry later",
                           maxClients))
                    .toJson(withTiming) +
                "\n";
            net::writeAll(fd, line.data(), line.size());
            ::close(fd);
            continue;
        }
        auto conn = std::make_unique<Connection>(
            fd, service, copts, strfmt("c%llu",
                                       (unsigned long long)++serial));
        conn->start();
        conns.push_back(std::move(conn));
    }

    // ---- graceful drain: stop accepting, finish in-flight work ----
    listener.close();
    std::fprintf(stderr,
                 "%s: drain requested; %zu connection(s) in flight\n",
                 cmd, reapConnections(conns));
    bool forced = false;
    while (reapConnections(conns) > 0) {
        if (!forced && net::shutdownRequestCount() >= 2) {
            // Second signal: half-close every connection's read side
            // so each answers what it already received and exits,
            // instead of waiting for its client's EOF.
            std::fprintf(stderr,
                         "%s: second signal; forcing connections to "
                         "drain\n", cmd);
            for (auto &c : conns)
                c->shutdownRead();
            forced = true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    std::fprintf(stderr, "%s: drained, exiting\n", cmd);
    return 0;
}

int
runClient(int argc, char **argv)
{
    const char *cmd = "momsim client";
    std::string connectAddr;
    std::string unixPath;
    bool abortive = false;
    int connectRetries = 0;
    int retryBackoffMs = 200;

    for (int i = 0; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--connect") == 0) {
            if (!stringFlag(cmd, argc, argv, i, connectAddr))
                return 2;
        } else if (std::strcmp(arg, "--unix") == 0) {
            if (!stringFlag(cmd, argc, argv, i, unixPath))
                return 2;
        } else if (std::strcmp(arg, "--connect-retries") == 0) {
            if (!intFlag(cmd, argc, argv, i, 0, connectRetries))
                return 2;
        } else if (std::strcmp(arg, "--retry-backoff-ms") == 0) {
            if (!intFlag(cmd, argc, argv, i, 1, retryBackoffMs))
                return 2;
        } else if (std::strcmp(arg, "--abort") == 0) {
            abortive = true;
        } else {
            std::fprintf(stderr, "%s: unknown argument %s\n", cmd, arg);
            return 2;
        }
    }
    if (connectAddr.empty() == unixPath.empty()) {
        std::fprintf(stderr,
                     "%s: need exactly one of --connect HOST:PORT or "
                     "--unix PATH\n", cmd);
        return 2;
    }

    net::ignoreSigpipe();

    std::string host;
    int port = -1;
    if (unixPath.empty()) {
        size_t colon = connectAddr.rfind(':');
        if (colon != std::string::npos) {
            char *end = nullptr;
            long parsed =
                std::strtol(connectAddr.c_str() + colon + 1, &end, 10);
            if (end && *end == '\0' && parsed >= 0 && parsed <= 65535)
                port = static_cast<int>(parsed);
        }
        if (port < 0) {
            std::fprintf(stderr, "%s: bad --connect '%s' (want "
                         "HOST:PORT)\n", cmd, connectAddr.c_str());
            return 2;
        }
        host = connectAddr.substr(0, colon);
    }

    // The dial, with --connect-retries worth of jittered exponential
    // backoff — a client racing its server's startup waits politely
    // instead of failing instantly or hammering in lockstep.
    auto dialOnce = [&](std::string &err) {
        return unixPath.empty() ? net::connectTcp(host, port, err)
                                : net::connectUnix(unixPath, err);
    };
    std::string error;
    int attempts = 0;
    const int rawFd = net::connectRetry(dialOnce, connectRetries,
                                        retryBackoffMs, error, &attempts);
    if (rawFd < 0) {
        // One structured line so retry-exhaustion is machine-readable
        // in fleet logs, not just a prose message.
        std::fprintf(stderr,
                     "{\"error\":{\"code\":\"connect_failed\","
                     "\"message\":%s,\"attempts\":%d}}\n",
                     jsonQuote(strfmt("%s: %s", cmd, error.c_str()))
                         .c_str(),
                     attempts);
        return 1;
    }
    net::FdGuard fd(rawFd);

    if (abortive) {
        // Deliberately rude: send everything, then reset the
        // connection without reading a single response — the abrupt
        // mid-response disconnect a robust server must shrug off.
        char buf[4096];
        size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), stdin)) > 0) {
            if (!net::writeAll(fd.get(), buf, got))
                break;
        }
        net::setAbortiveClose(fd.get());
        return 0;       // FdGuard closes => RST with data in flight
    }

    // Full-duplex streaming: a writer thread pumps stdin to the
    // server (half-closing when stdin ends), while this thread pumps
    // responses to stdout — so a large stream can't deadlock on a
    // full socket buffer in either direction.
    std::thread writer([&fd, cmd] {
        char buf[4096];
        size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), stdin)) > 0) {
            if (!net::writeAll(fd.get(), buf, got)) {
                std::fprintf(stderr, "%s: server closed the "
                             "connection\n", cmd);
                break;
            }
        }
        ::shutdown(fd.get(), SHUT_WR);
    });

    char buf[4096];
    for (;;) {
        long got = net::readSome(fd.get(), buf, sizeof(buf));
        if (got <= 0)
            break;
        std::fwrite(buf, 1, static_cast<size_t>(got), stdout);
        std::fflush(stdout);
    }
    writer.join();
    return 0;
}

} // namespace momsim::svc
