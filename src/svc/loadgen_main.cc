/**
 * @file
 * `momsim loadgen` — a closed-loop load generator for the serve
 * daemon, and the serving-throughput benchmark for the point-level
 * scheduler.
 *
 * K client threads each open one connection and issue N sweep
 * requests back-to-back, measuring per-request latency. A
 * configurable fraction of every client's requests comes from a
 * *shared* script all clients repeat (same axes, same seed — so the
 * requests coalesce in the scheduler: first arrival simulates, the
 * rest join in flight or replay from the memory row cache); the rest
 * carry per-client seeds, so they are genuinely distinct work. The
 * report aggregates answered points per second across all clients
 * plus p50/p95 request latency, and can be written as JSON for CI
 * artifact upload (BENCH_serve_throughput.json).
 *
 * Closed-loop on purpose: each client waits for a response before
 * sending the next request, so concurrency is exactly --clients and
 * the latency numbers are not queueing artifacts of an open-loop
 * arrival process.
 */

#include "svc/serve_main.hh"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "common/logging.hh"
#include "common/net.hh"
#include "svc/json.hh"
#include "svc/sim_request.hh"

namespace momsim::svc
{

namespace
{

/** Strict integer flag value (whole token, [minValue, 1<<20]). */
bool
intFlag(const char *cmd, int argc, char **argv, int &i, int minValue,
        int &out)
{
    const char *arg = argv[i];
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s expects a value\n", cmd, arg);
        return false;
    }
    const char *v = argv[++i];
    char *end = nullptr;
    long parsed = std::strtol(v, &end, 10);
    if (*v == '\0' || !end || *end != '\0' || parsed < minValue ||
        parsed > 1 << 20) {
        std::fprintf(stderr, "%s: bad %s '%s' (want an integer >= %d)\n",
                     cmd, arg, v, minValue);
        return false;
    }
    out = static_cast<int>(parsed);
    return true;
}

bool
stringFlag(const char *cmd, int argc, char **argv, int &i,
           std::string &out)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s expects a value\n", cmd, argv[i]);
        return false;
    }
    out = argv[++i];
    return true;
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > start)
            out.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/** What one client thread did, merged after the join. */
struct ClientStats
{
    std::vector<double> latenciesMs;
    uint64_t points = 0;        ///< answered points (cached+simulated)
    uint64_t okRequests = 0;
    uint64_t badRequests = 0;   ///< ok:false responses
    std::string error;          ///< transport failure ("" = clean)
};

/** One response line's worth of accounting, via the strict parser. */
bool
tallyResponse(const std::string &line, ClientStats &stats)
{
    JsonValue doc;
    std::string error;
    if (!parseJson(line, doc, error) || !doc.isObject())
        return false;
    const JsonValue *ok = doc.field("ok");
    if (!ok || !ok->isBool())
        return false;
    if (!ok->boolean) {
        ++stats.badRequests;
        return true;
    }
    ++stats.okRequests;
    const JsonValue *plan = doc.field("plan");
    if (plan && plan->isObject()) {
        uint64_t cached = 0, simulated = 0;
        const JsonValue *c = plan->field("cached");
        const JsonValue *s = plan->field("simulated");
        if (c)
            c->toU64(cached);
        if (s)
            s->toU64(simulated);
        stats.points += cached + simulated;
    }
    return true;
}

/** Blocking read of exactly one newline-terminated response. */
bool
readLine(int fd, std::string &carry, std::string &line)
{
    for (;;) {
        size_t nl = carry.find('\n');
        if (nl != std::string::npos) {
            line = carry.substr(0, nl);
            carry.erase(0, nl + 1);
            return true;
        }
        char buf[4096];
        long got = net::readSome(fd, buf, sizeof(buf));
        if (got <= 0)
            return false;
        carry.append(buf, static_cast<size_t>(got));
    }
}

double
percentileMs(std::vector<double> sorted, double pct)
{
    if (sorted.empty())
        return 0.0;
    size_t idx = static_cast<size_t>(
        pct / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

} // namespace

int
runLoadgen(int argc, char **argv)
{
    const char *cmd = "momsim loadgen";
    std::string connectAddr;
    std::string unixPath;
    std::string jsonPath;
    std::string threadsList = "1,2,4";
    std::string isasList = "mmx";
    int clients = 4;
    int requests = 8;
    int overlapPct = 50;
    int maxCycles = 20000;
    int connectRetries = 5;
    int retryBackoffMs = 200;

    for (int i = 0; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--connect") == 0) {
            if (!stringFlag(cmd, argc, argv, i, connectAddr))
                return 2;
        } else if (std::strcmp(arg, "--unix") == 0) {
            if (!stringFlag(cmd, argc, argv, i, unixPath))
                return 2;
        } else if (std::strcmp(arg, "--clients") == 0) {
            if (!intFlag(cmd, argc, argv, i, 1, clients))
                return 2;
        } else if (std::strcmp(arg, "--requests") == 0) {
            if (!intFlag(cmd, argc, argv, i, 1, requests))
                return 2;
        } else if (std::strcmp(arg, "--overlap") == 0) {
            if (!intFlag(cmd, argc, argv, i, 0, overlapPct) ||
                overlapPct > 100) {
                if (overlapPct > 100)
                    std::fprintf(stderr, "%s: bad --overlap %d (want "
                                 "0..100)\n", cmd, overlapPct);
                return 2;
            }
        } else if (std::strcmp(arg, "--max-cycles") == 0) {
            if (!intFlag(cmd, argc, argv, i, 1, maxCycles))
                return 2;
        } else if (std::strcmp(arg, "--threads") == 0) {
            if (!stringFlag(cmd, argc, argv, i, threadsList))
                return 2;
        } else if (std::strcmp(arg, "--isas") == 0) {
            if (!stringFlag(cmd, argc, argv, i, isasList))
                return 2;
        } else if (std::strcmp(arg, "--json") == 0) {
            if (!stringFlag(cmd, argc, argv, i, jsonPath))
                return 2;
        } else if (std::strcmp(arg, "--connect-retries") == 0) {
            if (!intFlag(cmd, argc, argv, i, 0, connectRetries))
                return 2;
        } else if (std::strcmp(arg, "--retry-backoff-ms") == 0) {
            if (!intFlag(cmd, argc, argv, i, 1, retryBackoffMs))
                return 2;
        } else {
            std::fprintf(stderr, "%s: unknown argument %s\n", cmd, arg);
            return 2;
        }
    }
    if (connectAddr.empty() == unixPath.empty()) {
        std::fprintf(stderr,
                     "%s: need exactly one of --connect HOST:PORT or "
                     "--unix PATH\n", cmd);
        return 2;
    }

    std::string host;
    int port = -1;
    if (unixPath.empty()) {
        size_t colon = connectAddr.rfind(':');
        if (colon != std::string::npos) {
            char *end = nullptr;
            long parsed =
                std::strtol(connectAddr.c_str() + colon + 1, &end, 10);
            if (end && *end == '\0' && parsed >= 0 && parsed <= 65535)
                port = static_cast<int>(parsed);
        }
        if (port < 0) {
            std::fprintf(stderr, "%s: bad --connect '%s' (want "
                         "HOST:PORT)\n", cmd, connectAddr.c_str());
            return 2;
        }
        host = connectAddr.substr(0, colon);
    }

    std::vector<std::string> isas = splitCommas(isasList);
    std::vector<int> threads;
    for (const std::string &tok : splitCommas(threadsList)) {
        char *end = nullptr;
        long parsed = std::strtol(tok.c_str(), &end, 10);
        if (tok.empty() || !end || *end != '\0' || parsed < 1 ||
            parsed > 8) {
            std::fprintf(stderr, "%s: bad --threads entry '%s' (want "
                         "1..8)\n", cmd, tok.c_str());
            return 2;
        }
        threads.push_back(static_cast<int>(parsed));
    }
    if (isas.empty() || threads.empty()) {
        std::fprintf(stderr, "%s: --isas and --threads must not be "
                     "empty\n", cmd);
        return 2;
    }

    net::ignoreSigpipe();

    // Pre-script every client's requests so the measured loop does no
    // string assembly. Request r is "shared" (identical across all
    // clients, including the seed — the coalescing workload) when its
    // index falls inside the overlap fraction, per-client-unique
    // otherwise.
    const int shared = (requests * overlapPct + 99) / 100;
    auto scriptFor = [&](int client) {
        std::vector<std::string> lines;
        for (int r = 0; r < requests; ++r) {
            SimRequest req;
            req.isas = isas;
            req.threads = threads;
            req.memModels = { "perfect" };
            req.quick = true;
            req.maxCycles = static_cast<uint64_t>(maxCycles);
            if (r < shared) {
                req.id = strfmt("shared-%d", r);
                req.seed = 7;
            } else {
                req.id = strfmt("c%d-r%d", client, r);
                req.seed = 0x10000u +
                           static_cast<uint64_t>(client) * 4096u +
                           static_cast<uint64_t>(r);
            }
            lines.push_back(req.toJson() + "\n");
        }
        return lines;
    };

    std::vector<ClientStats> stats(static_cast<size_t>(clients));
    std::vector<std::thread> workers;
    const auto runStart = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
            ClientStats &mine = stats[static_cast<size_t>(c)];
            auto dialOnce = [&](std::string &err) {
                return unixPath.empty()
                           ? net::connectTcp(host, port, err)
                           : net::connectUnix(unixPath, err);
            };
            std::string error;
            const int rawFd = net::connectRetry(dialOnce, connectRetries,
                                                retryBackoffMs, error,
                                                nullptr);
            if (rawFd < 0) {
                mine.error = error;
                return;
            }
            net::FdGuard fd(rawFd);
            std::string carry, line;
            for (const std::string &request : scriptFor(c)) {
                const auto t0 = std::chrono::steady_clock::now();
                if (!net::writeAll(fd.get(), request.data(),
                                   request.size())) {
                    mine.error = "server closed the connection";
                    return;
                }
                if (!readLine(fd.get(), carry, line)) {
                    mine.error = "connection dropped mid-response";
                    return;
                }
                const auto t1 = std::chrono::steady_clock::now();
                mine.latenciesMs.push_back(
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count());
                if (!tallyResponse(line, mine)) {
                    mine.error = "unparseable response line";
                    return;
                }
            }
        });
    }
    for (std::thread &t : workers)
        t.join();
    const double elapsedMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - runStart)
            .count();

    std::vector<double> latencies;
    uint64_t points = 0, okRequests = 0, badRequests = 0;
    int failedClients = 0;
    for (const ClientStats &s : stats) {
        latencies.insert(latencies.end(), s.latenciesMs.begin(),
                         s.latenciesMs.end());
        points += s.points;
        okRequests += s.okRequests;
        badRequests += s.badRequests;
        if (!s.error.empty()) {
            ++failedClients;
            std::fprintf(stderr, "%s: client failed: %s\n", cmd,
                         s.error.c_str());
        }
    }
    std::sort(latencies.begin(), latencies.end());
    const double p50 = percentileMs(latencies, 50.0);
    const double p95 = percentileMs(latencies, 95.0);
    const double pointsPerSec =
        elapsedMs > 0.0 ? static_cast<double>(points) * 1000.0 / elapsedMs
                        : 0.0;

    std::printf("momsim loadgen: %d client(s) x %d request(s), overlap "
                "%d%%\n", clients, requests, overlapPct);
    std::printf("  requests     ok %llu / bad %llu / lost %llu\n",
                (unsigned long long)okRequests,
                (unsigned long long)badRequests,
                (unsigned long long)(
                    static_cast<uint64_t>(clients) *
                        static_cast<uint64_t>(requests) -
                    okRequests - badRequests));
    std::printf("  points       %llu answered in %.1f ms  (%.1f "
                "points/s)\n", (unsigned long long)points, elapsedMs,
                pointsPerSec);
    std::printf("  latency/req  p50 %.2f ms   p95 %.2f ms\n", p50, p95);

    if (!jsonPath.empty()) {
        std::FILE *out = std::fopen(jsonPath.c_str(), "w");
        if (!out) {
            std::fprintf(stderr, "%s: cannot write %s\n", cmd,
                         jsonPath.c_str());
            return 1;
        }
        std::fprintf(out,
                     "{\"benchmark\":\"serve_throughput\","
                     "\"clients\":%d,\"requestsPerClient\":%d,"
                     "\"overlapPct\":%d,\"okRequests\":%llu,"
                     "\"badRequests\":%llu,\"failedClients\":%d,"
                     "\"points\":%llu,\"elapsedMs\":%.3f,"
                     "\"pointsPerSec\":%.3f,\"latencyMsP50\":%.3f,"
                     "\"latencyMsP95\":%.3f}\n",
                     clients, requests, overlapPct,
                     (unsigned long long)okRequests,
                     (unsigned long long)badRequests, failedClients,
                     (unsigned long long)points, elapsedMs, pointsPerSec,
                     p50, p95);
        std::fclose(out);
    }

    return failedClients == 0 && badRequests == 0 ? 0 : 1;
}

} // namespace momsim::svc
