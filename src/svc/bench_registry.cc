#include "svc/bench_registry.hh"

namespace momsim::svc
{

const std::vector<BenchDef> &
benchRegistry()
{
    // Listed in the figure/table order of the paper, the order
    // `momsim list` prints. Construction is thread-safe (magic
    // statics) because SimService::submit resolves names concurrently.
    static const std::vector<BenchDef> registry = {
        makeTable1Def(),  makeTable2Def(),   makeTable3Def(),
        makeFig4Def(),    makeFig5Def(),     makeFig6Def(),
        makeFig8Def(),    makeFig9Def(),     makeTable4Def(),
        makeAblationDef(), makeWorkloadMixDef(), makeSimThroughputDef(),
        makeExplorerDef(),
    };
    return registry;
}

const BenchDef *
findBench(const std::string &name)
{
    for (const BenchDef &def : benchRegistry()) {
        if (def.name == name)
            return &def;
    }
    return nullptr;
}

int
runBench(const BenchDef &def, int argc, char **argv)
{
    std::vector<std::string> positionals;
    driver::BenchOptions opts = driver::BenchOptions::parse(
        argc, argv, def.wantsPositionals ? &positionals : nullptr);
    driver::BenchHarness bench(opts, def.name);
    if (def.runCustom)
        return def.runCustom(bench, positionals);
    if (def.runNoSweep) {
        bench.declareNoSweep();
        def.runNoSweep(bench);
        return 0;
    }
    driver::ResultSink all = bench.run(def.grid(opts));
    def.print(bench, all);
    return 0;
}

} // namespace momsim::svc
