/**
 * @file
 * The request half of the momsim service API.
 *
 * A SimRequest names a sweep either by registered bench ("fig6",
 * "table4", ... — the grids behind the paper's figures) or by explicit
 * axes (isas x threads x memModels x policies), crossed with registry
 * workloads, plus run limits and shard/cache options. It is the JSON
 * boundary the `momsim batch` traffic endpoint and embedding clients
 * speak; the wire format is versioned (schemaVersion) and parsing is
 * strict — unknown fields, wrong types and foreign versions reject
 * with a one-line error instead of guessing.
 *
 * Variants (ad-hoc parameter tweak closures) are deliberately not
 * expressible as explicit axes — closures do not serialize. Benches
 * that need them (table1, ablation) are reachable by name, where the
 * registered grid factory supplies the closures.
 */

#ifndef MOMSIM_SVC_SIM_REQUEST_HH
#define MOMSIM_SVC_SIM_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace momsim::svc
{

/** Version of the SimRequest wire format. Bump on any field change. */
constexpr int kSimRequestSchemaVersion = 1;

struct SimRequest
{
    /** Client-chosen tag echoed verbatim in the SimResponse. */
    std::string id;

    /**
     * Client identity echoed in the response's "client" field. A
     * request that leaves it empty gets the transport's default tag
     * (the connection's id under `momsim serve`, `--client` under
     * `momsim batch`), so every response names which client's request
     * produced it even when requests from many connections interleave
     * in one server log.
     */
    std::string client;

    /**
     * Registered bench name ("fig6", ...). Empty means the request
     * carries explicit axes instead; the two are mutually exclusive.
     */
    std::string bench;

    /** Registry workload names; empty means the default ("paper"). */
    std::vector<std::string> workloads;

    // ---- explicit axes (only valid when bench is empty) ----
    std::vector<std::string> isas;      ///< "mmx" / "mom"
    std::vector<int> threads;           ///< 1..8
    std::vector<std::string> memModels; ///< "perfect"/"conventional"/...
    std::vector<std::string> policies;  ///< "rr"/"icount"/"ocount"/...

    bool quick = false;         ///< tiny workload scale
    uint64_t maxCycles = 0;     ///< 0 => the grid's own limit
    uint64_t seed = 0;          ///< base of the per-task seeds
    int shardIndex = 1;         ///< 1-based, <= shardCount
    int shardCount = 1;
    /**
     * Sweep points interleaved per worker task (ExperimentRunner
     * batching). Purely an execution knob: rows are byte-identical for
     * any value, so it participates in neither point ids nor cache
     * keys. Optional on the wire (toJson omits the default 1, older
     * clients never send it), hence no schemaVersion bump.
     */
    int batch = 1;
    std::string cacheDir;       ///< "" => no persistence

    /** One-line JSON, fixed field order (JSONL-ready). */
    std::string toJson() const;

    /**
     * Strict parse of one JSON document. Requires schemaVersion ==
     * kSimRequestSchemaVersion; rejects unknown fields, wrong types
     * and malformed JSON with a one-line description in @p error.
     * Structural validity only — semantic checks (known bench, known
     * workloads, shard bounds) happen in SimService::submit so they
     * come back as structured SimResponse errors.
     */
    static bool fromJson(const std::string &json, SimRequest &out,
                         std::string &error);
};

/**
 * Best-effort recovery of the top-level "id" string from a line that
 * failed fromJson, so even the bad_request response for an unparseable
 * request can echo the tag the client sent and be correlated. Lenient
 * by design: scans for a top-level `"id": "<string>"` pair without
 * requiring the rest of the line to be JSON at all; returns "" when no
 * such pair can be salvaged. Never used on the success path — real
 * parsing stays strict.
 */
std::string salvageTopLevelId(const std::string &line);

} // namespace momsim::svc

#endif // MOMSIM_SVC_SIM_REQUEST_HH
