/**
 * @file
 * The socket transport front ends of the momsim CLI:
 *
 *   momsim serve   — long-lived daemon: SimRequest JSONL per
 *                    connection in, SimResponse JSONL out, over TCP
 *                    (loopback by default) and/or a unix-domain
 *                    socket, with one warm SimService (thread pool,
 *                    workload repos, optional persistent result
 *                    store) shared across all connections.
 *   momsim client  — line-streaming loopback client: stdin to the
 *                    server, responses to stdout. The test harness's
 *                    counterpart to serve, and a worked example of
 *                    the wire protocol.
 *   momsim loadgen — closed-loop load generator: K concurrent client
 *                    connections issuing sweep requests (with a
 *                    configurable cross-client overlap fraction) and
 *                    reporting points/s plus p50/p95 request latency.
 *
 * All take (argc, argv) past their subcommand token, batch-style.
 */

#ifndef MOMSIM_SVC_SERVE_MAIN_HH
#define MOMSIM_SVC_SERVE_MAIN_HH

namespace momsim::svc
{

int runServe(int argc, char **argv);
int runClient(int argc, char **argv);
int runLoadgen(int argc, char **argv);

} // namespace momsim::svc

#endif // MOMSIM_SVC_SERVE_MAIN_HH
