/**
 * @file
 * Connection — one accepted `momsim serve` client: a thread that
 * reads newline-delimited SimRequest JSON from the socket, drives the
 * shared ResponseSequencer (the same state machine `momsim batch`
 * runs over stdin/stdout), and streams SimResponse JSONL back, in
 * request order, tagged with this connection's client id.
 *
 * Lifecycle: start() spawns the thread; the connection runs until the
 * client stops sending (EOF / half-close), the client stops *reading*
 * (a write error flips the sequencer into drain mode and queued work
 * is discarded unsimulated), or the server forces drain via
 * shutdownRead(). In every case in-flight responses are flushed
 * before the socket closes — an abrupt client disconnect never takes
 * down the daemon, only its own connection.
 */

#ifndef MOMSIM_SVC_CONNECTION_HH
#define MOMSIM_SVC_CONNECTION_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>

#include "common/net.hh"

namespace momsim::svc
{

class SimService;

class Connection
{
  public:
    struct Options
    {
        int parallel = 2;       ///< submitter threads per connection
        size_t maxPending = 0;  ///< admission queue bound; 0 => auto
        bool withTiming = true;
        /** Pre-parse interceptor for fabric messages (see
         *  ResponseSequencer::Config::rawSubmit). Shared by every
         *  connection of a server; null disables the fabric. */
        std::function<bool(const std::string &line,
                           const std::function<void(std::string)> &chunk,
                           std::string &finalLine)> rawSubmit;
    };

    /** Takes ownership of @p fd. @p clientTag is this connection's
     *  default client id ("c1", "c2", ...), echoed in every response
     *  whose request does not carry its own. */
    Connection(int fd, SimService &service, Options opts,
               std::string clientTag);

    /** join() must have completed (or start() never called). */
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    void start();

    /** The handler finished; join() will not block. */
    bool done() const { return _done.load(std::memory_order_acquire); }

    /**
     * Force drain: half-close the read side so the handler sees EOF
     * after the requests already received, answers them, flushes and
     * exits. Used on the second shutdown signal.
     */
    void shutdownRead();

    void join();

    const std::string &clientTag() const { return _clientTag; }

  private:
    void run();

    net::FdGuard _fd;
    SimService &_service;
    Options _opts;
    std::string _clientTag;
    std::thread _thread;
    std::atomic<bool> _done{ false };
};

} // namespace momsim::svc

#endif // MOMSIM_SVC_CONNECTION_HH
