/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant of the simulator was violated (a bug in
 *            momsim itself); aborts so a debugger/core dump is useful.
 * fatal()  — the simulation cannot continue because of a user error (bad
 *            configuration, impossible parameter combination); exits cleanly.
 * warn()   — something is approximated or suspicious but survivable.
 * inform() — plain status output.
 */

#ifndef MOMSIM_COMMON_LOGGING_HH
#define MOMSIM_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <string>

namespace momsim
{

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and abort. */
[[noreturn]] void panic(const std::string &msg);

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Report a survivable problem on stderr. */
void warn(const std::string &msg);

/** Report status on stdout. */
void inform(const std::string &msg);

/**
 * Write a preformatted (possibly multi-line) block to stderr in one
 * atomic operation. Debug dumps from pool workers go through this so
 * concurrent dumps cannot interleave mid-line.
 */
void dumpRaw(const std::string &text);

/**
 * Check a simulator invariant; on failure, panic with location info.
 *
 * Debug builds check and report. Release (NDEBUG) builds generate no
 * code: the simulation kernel evaluates these on its hottest lines, so
 * they must cost nothing when the build is for throughput. The operands
 * stay compiled (and ODR-used, so disabling the check cannot introduce
 * -Wunused breakage) behind an always-false branch the optimizer
 * deletes. Keep conditions side-effect free.
 */
#ifdef NDEBUG
#define MOMSIM_ASSERT(cond, msg)                                              \
    do {                                                                      \
        if (false) {                                                          \
            (void)(cond);                                                     \
            (void)(msg);                                                      \
        }                                                                     \
    } while (0)
#else
#define MOMSIM_ASSERT(cond, msg)                                              \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::momsim::panic(::momsim::strfmt(                                 \
                "%s:%d: assertion '%s' failed: %s",                           \
                __FILE__, __LINE__, #cond, (msg)));                           \
        }                                                                     \
    } while (0)
#endif

} // namespace momsim

#endif // MOMSIM_COMMON_LOGGING_HH
