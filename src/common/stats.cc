#include "common/stats.hh"

#include "common/logging.hh"

namespace momsim
{

uint64_t &
StatGroup::counter(const std::string &key)
{
    for (auto &entry : _entries) {
        if (entry.first == key)
            return entry.second;
    }
    _entries.emplace_back(key, 0);
    return _entries.back().second;
}

uint64_t
StatGroup::get(const std::string &key) const
{
    for (const auto &entry : _entries) {
        if (entry.first == key)
            return entry.second;
    }
    return 0;
}

double
StatGroup::ratio(const std::string &num, const std::string &den) const
{
    uint64_t d = get(den);
    if (d == 0)
        return 0.0;
    return static_cast<double>(get(num)) / static_cast<double>(d);
}

std::string
StatGroup::dump() const
{
    std::string out;
    for (const auto &entry : _entries) {
        out += strfmt("%s.%s = %llu\n", _name.c_str(), entry.first.c_str(),
                      static_cast<unsigned long long>(entry.second));
    }
    return out;
}

void
StatGroup::clear()
{
    for (auto &entry : _entries)
        entry.second = 0;
}

std::string
pct(double fraction, int decimals)
{
    return strfmt("%.*f%%", decimals, fraction * 100.0);
}

} // namespace momsim
