#include "common/stats.hh"

#include "common/logging.hh"

namespace momsim
{

StatId
StatGroup::id(const std::string &key)
{
    for (size_t i = 0; i < _keys.size(); ++i) {
        if (_keys[i] == key)
            return static_cast<StatId>(i);
    }
    _keys.push_back(key);
    _values.push_back(0);
    return static_cast<StatId>(_values.size() - 1);
}

uint64_t
StatGroup::get(const std::string &key) const
{
    for (size_t i = 0; i < _keys.size(); ++i) {
        if (_keys[i] == key)
            return _values[i];
    }
    return 0;
}

double
StatGroup::ratio(const std::string &num, const std::string &den) const
{
    uint64_t d = get(den);
    if (d == 0)
        return 0.0;
    return static_cast<double>(get(num)) / static_cast<double>(d);
}

std::string
StatGroup::dump() const
{
    std::string out;
    for (size_t i = 0; i < _keys.size(); ++i) {
        out += strfmt("%s.%s = %llu\n", _name.c_str(), _keys[i].c_str(),
                      static_cast<unsigned long long>(_values[i]));
    }
    return out;
}

void
StatGroup::clear()
{
    for (auto &value : _values)
        value = 0;
}

std::string
pct(double fraction, int decimals)
{
    return strfmt("%.*f%%", decimals, fraction * 100.0);
}

} // namespace momsim
