/**
 * @file
 * Small POSIX plumbing for the socket transports: RAII file
 * descriptors, full-write loops, loopback/unix socket setup and the
 * process-wide graceful-shutdown signal latch.
 *
 * Everything here is transport mechanics with no simulator knowledge —
 * the service layer (src/svc/) composes these into listeners and
 * connections. All functions report failures as return values plus an
 * error string; nothing exits.
 */

#ifndef MOMSIM_COMMON_NET_HH
#define MOMSIM_COMMON_NET_HH

#include <cstddef>
#include <string>
#include <utility>

namespace momsim::net
{

/** Movable owner of one POSIX fd; closes on destruction. */
class FdGuard
{
  public:
    FdGuard() = default;
    explicit FdGuard(int fd) : _fd(fd) {}
    ~FdGuard() { reset(); }

    FdGuard(const FdGuard &) = delete;
    FdGuard &operator=(const FdGuard &) = delete;

    FdGuard(FdGuard &&other) noexcept : _fd(other.release()) {}
    FdGuard &
    operator=(FdGuard &&other) noexcept
    {
        if (this != &other) {
            reset();
            _fd = other.release();
        }
        return *this;
    }

    int get() const { return _fd; }
    bool valid() const { return _fd >= 0; }

    /** Give up ownership without closing. */
    int
    release()
    {
        int fd = _fd;
        _fd = -1;
        return fd;
    }

    /** Close the held fd (if any) and adopt @p fd. */
    void reset(int fd = -1);

  private:
    int _fd = -1;
};

/**
 * Ignore SIGPIPE process-wide. Every transport entry point calls this
 * first: a client closing its pipe or socket mid-stream must surface
 * as a write error the emitter can handle, not a process kill.
 */
void ignoreSigpipe();

/**
 * Install SIGINT/SIGTERM handlers that count deliveries and write one
 * byte to @p wakeFd (a pipe write end) so a poll()-based accept loop
 * wakes promptly. Async-signal-safe. Call once per process.
 */
void installShutdownSignals(int wakeFd);

/** Deliveries so far: 0 = run, 1 = graceful drain, >= 2 = hurry up. */
int shutdownRequestCount();

/** Write all @p n bytes of @p data to @p fd, retrying short writes
 *  and EINTR. False on any unrecoverable write error. */
bool writeAll(int fd, const void *data, size_t n);

/** Read up to @p n bytes; retries EINTR. Returns bytes read, 0 on
 *  EOF, -1 on error. */
long readSome(int fd, void *buf, size_t n);

// ---- socket setup: each returns an fd >= 0, or -1 with *error* ----

/** Listening TCP socket bound to host:port (port 0 = ephemeral). */
int listenTcp(const std::string &host, int port, std::string &error);

/** Listening unix-domain socket at @p path (unlinks a stale one). */
int listenUnix(const std::string &path, std::string &error);

/** Blocking TCP connect to host:port. */
int connectTcp(const std::string &host, int port, std::string &error);

/** Blocking unix-domain connect to @p path. */
int connectUnix(const std::string &path, std::string &error);

/** The local port a bound TCP fd actually got (after port 0). */
int boundTcpPort(int fd);

/**
 * Arrange for close(fd) to reset the connection immediately
 * (SO_LINGER 0) — the "abrupt client disconnect" a robust server must
 * survive; used by `momsim client --abort` and the tests.
 */
void setAbortiveClose(int fd);

} // namespace momsim::net

#endif // MOMSIM_COMMON_NET_HH
