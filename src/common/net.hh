/**
 * @file
 * Small POSIX plumbing for the socket transports: RAII file
 * descriptors, full-write loops, loopback/unix socket setup and the
 * process-wide graceful-shutdown signal latch.
 *
 * Everything here is transport mechanics with no simulator knowledge —
 * the service layer (src/svc/) composes these into listeners and
 * connections. All functions report failures as return values plus an
 * error string; nothing exits.
 */

#ifndef MOMSIM_COMMON_NET_HH
#define MOMSIM_COMMON_NET_HH

#include <cstddef>
#include <functional>
#include <string>
#include <utility>

namespace momsim::net
{

/** Movable owner of one POSIX fd; closes on destruction. */
class FdGuard
{
  public:
    FdGuard() = default;
    explicit FdGuard(int fd) : _fd(fd) {}
    ~FdGuard() { reset(); }

    FdGuard(const FdGuard &) = delete;
    FdGuard &operator=(const FdGuard &) = delete;

    FdGuard(FdGuard &&other) noexcept : _fd(other.release()) {}
    FdGuard &
    operator=(FdGuard &&other) noexcept
    {
        if (this != &other) {
            reset();
            _fd = other.release();
        }
        return *this;
    }

    int get() const { return _fd; }
    bool valid() const { return _fd >= 0; }

    /** Give up ownership without closing. */
    int
    release()
    {
        int fd = _fd;
        _fd = -1;
        return fd;
    }

    /** Close the held fd (if any) and adopt @p fd. */
    void reset(int fd = -1);

  private:
    int _fd = -1;
};

/**
 * Ignore SIGPIPE process-wide. Every transport entry point calls this
 * first: a client closing its pipe or socket mid-stream must surface
 * as a write error the emitter can handle, not a process kill.
 */
void ignoreSigpipe();

/**
 * Install SIGINT/SIGTERM handlers that count deliveries and write one
 * byte to @p wakeFd (a pipe write end) so a poll()-based accept loop
 * wakes promptly. Async-signal-safe. Call once per process.
 */
void installShutdownSignals(int wakeFd);

/** Deliveries so far: 0 = run, 1 = graceful drain, >= 2 = hurry up. */
int shutdownRequestCount();

/** Write all @p n bytes of @p data to @p fd, retrying short writes
 *  and EINTR. False on any unrecoverable write error. */
bool writeAll(int fd, const void *data, size_t n);

/** Read up to @p n bytes; retries EINTR. Returns bytes read, 0 on
 *  EOF, -1 on error. */
long readSome(int fd, void *buf, size_t n);

/**
 * Wait up to @p timeoutMs for @p fd to become readable (or reach
 * EOF/error, which also reads as readable). Returns 1 when readable,
 * 0 on timeout, -1 on poll error. EINTR re-arms with the remaining
 * time; @p timeoutMs < 0 waits forever. The deadline primitive behind
 * the fabric coordinator's straggler detection.
 */
int waitReadable(int fd, int timeoutMs);

/**
 * Dial through @p dial (any of the connect* functions below, curried;
 * returns an fd >= 0, or -1 with an error string), retrying up to
 * @p retries additional attempts after the first one fails. Attempts
 * are separated by a jittered exponential backoff starting at
 * @p backoffMs (doubling per attempt, +/-50% jitter, capped at 10 s)
 * so a fleet of clients racing a worker's startup neither gives up
 * instantly nor stampedes in lockstep. On exhaustion returns -1 with
 * the last error; @p attempts (when given) reports how many dials
 * were made either way.
 */
int connectRetry(const std::function<int(std::string &)> &dial,
                 int retries, int backoffMs, std::string &error,
                 int *attempts = nullptr);

// ---- socket setup: each returns an fd >= 0, or -1 with *error* ----

/** Listening TCP socket bound to host:port (port 0 = ephemeral). */
int listenTcp(const std::string &host, int port, std::string &error);

/** Listening unix-domain socket at @p path (unlinks a stale one). */
int listenUnix(const std::string &path, std::string &error);

/** Blocking TCP connect to host:port. */
int connectTcp(const std::string &host, int port, std::string &error);

/** Blocking unix-domain connect to @p path. */
int connectUnix(const std::string &path, std::string &error);

/** The local port a bound TCP fd actually got (after port 0). */
int boundTcpPort(int fd);

/**
 * Arrange for close(fd) to reset the connection immediately
 * (SO_LINGER 0) — the "abrupt client disconnect" a robust server must
 * survive; used by `momsim client --abort` and the tests.
 */
void setAbortiveClose(int fd);

} // namespace momsim::net

#endif // MOMSIM_COMMON_NET_HH
