/**
 * @file
 * Small bit-twiddling helpers shared by the structures that size their
 * storage to powers of two for mask indexing.
 */

#ifndef MOMSIM_COMMON_BITS_HH
#define MOMSIM_COMMON_BITS_HH

#include <cstdint>

namespace momsim
{

/** True when @p v is a power of two (v > 0). */
inline bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Smallest power of two >= @p v (v >= 1). */
inline uint64_t
pow2Ceil(uint64_t v)
{
    uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace momsim

#endif // MOMSIM_COMMON_BITS_HH
