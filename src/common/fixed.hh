/**
 * @file
 * Saturating fixed-point arithmetic helpers.
 *
 * These are the scalar semantics shared by (a) the functional side of the
 * media codecs (GSM 06.10 is specified in saturating 16-bit arithmetic,
 * video pixel math clamps to [0,255]) and (b) the packed-element semantics
 * of the MMX/MOM emulation libraries.
 */

#ifndef MOMSIM_COMMON_FIXED_HH
#define MOMSIM_COMMON_FIXED_HH

#include <algorithm>
#include <cstdint>

namespace momsim
{

/** Clamp a wide value into the signed 16-bit range. */
inline int16_t
satS16(int32_t v)
{
    return static_cast<int16_t>(std::min(32767, std::max(-32768, v)));
}

/** Clamp a wide value into the signed 8-bit range. */
inline int8_t
satS8(int32_t v)
{
    return static_cast<int8_t>(std::min(127, std::max(-128, v)));
}

/** Clamp a wide value into the unsigned 8-bit range (pixel clamp). */
inline uint8_t
satU8(int32_t v)
{
    return static_cast<uint8_t>(std::min(255, std::max(0, v)));
}

/** Clamp a wide value into the unsigned 16-bit range. */
inline uint16_t
satU16(int32_t v)
{
    return static_cast<uint16_t>(std::min(65535, std::max(0, v)));
}

/** Saturating 16-bit addition (GSM "add"). */
inline int16_t
satAdd16(int16_t a, int16_t b)
{
    return satS16(static_cast<int32_t>(a) + b);
}

/** Saturating 16-bit subtraction (GSM "sub"). */
inline int16_t
satSub16(int16_t a, int16_t b)
{
    return satS16(static_cast<int32_t>(a) - b);
}

/**
 * GSM 06.10 MULT_R: Q15 multiply with rounding and saturation.
 * (a*b + 16384) >> 15, with the -32768*-32768 corner saturated.
 */
inline int16_t
gsmMultR(int16_t a, int16_t b)
{
    if (a == -32768 && b == -32768)
        return 32767;
    int32_t prod = static_cast<int32_t>(a) * b;
    return satS16((prod + 16384) >> 15);
}

/** GSM 06.10 MULT: Q15 multiply, truncating, saturated corner. */
inline int16_t
gsmMult(int16_t a, int16_t b)
{
    if (a == -32768 && b == -32768)
        return 32767;
    return static_cast<int16_t>((static_cast<int32_t>(a) * b) >> 15);
}

/** Saturating absolute value (|INT16_MIN| saturates to INT16_MAX). */
inline int16_t
satAbs16(int16_t a)
{
    if (a == -32768)
        return 32767;
    return static_cast<int16_t>(a < 0 ? -a : a);
}

/** Arithmetic shift helpers with negative-count symmetry (GSM style). */
inline int16_t
shl16(int16_t a, int n)
{
    if (n < 0)
        return static_cast<int16_t>(a >> std::min(15, -n));
    if (n >= 15)
        return static_cast<int16_t>(a == 0 ? 0 : (a > 0 ? 32767 : -32768));
    return satS16(static_cast<int32_t>(a) << n);
}

inline int16_t
shr16(int16_t a, int n)
{
    return shl16(a, -n);
}

/** Count of leading sign-redundant bits, used by GSM normalization. */
inline int
norm32(int32_t v)
{
    if (v == 0)
        return 0;
    if (v < 0)
        v = ~v;
    int n = 0;
    while ((v & 0x40000000) == 0 && n < 31) {
        v <<= 1;
        ++n;
    }
    return n;
}

} // namespace momsim

#endif // MOMSIM_COMMON_FIXED_HH
