/**
 * @file
 * The repo's one content-hashing primitive: FNV-1a folding with a
 * SplitMix64 finalizer per word. Used by the workload fingerprint
 * (src/workloads/media_workload.cc) and the experiment config
 * fingerprint (src/driver/result_store.cc) — one definition, so the
 * two fingerprint sites can never drift apart.
 */

#ifndef MOMSIM_COMMON_HASH_HH
#define MOMSIM_COMMON_HASH_HH

#include <cstdint>
#include <string>

namespace momsim
{

/** FNV-1a 64-bit offset basis — the canonical starting value. */
constexpr uint64_t kHashSeed = 0xcbf29ce484222325ull;

/** Fold one 64-bit word into @p h (SplitMix64 finalizer + FNV step). */
inline uint64_t
hashMix64(uint64_t h, uint64_t v)
{
    v += 0x9e3779b97f4a7c15ull;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    v ^= v >> 31;
    h ^= v;
    h *= 0x100000001b3ull;
    return h;
}

/** Fold a string byte-wise (FNV-1a), then its length. */
inline uint64_t
hashMixString(uint64_t h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return hashMix64(h, s.size());
}

} // namespace momsim

#endif // MOMSIM_COMMON_HASH_HH
