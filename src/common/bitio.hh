/**
 * @file
 * Bit-granular stream writer/reader.
 *
 * The MPEG-2 and JPEG coders emit and parse variable-length codes through
 * these classes. They are purely functional (host-side) containers; the
 * *simulated* cost of bitstream work is recorded separately by the codecs
 * through the scalar emitter.
 */

#ifndef MOMSIM_COMMON_BITIO_HH
#define MOMSIM_COMMON_BITIO_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace momsim
{

/** Append-only MSB-first bit writer. */
class BitWriter
{
  public:
    /** Append the low @p bits bits of @p value, MSB first. 0<=bits<=32. */
    void put(uint32_t value, int bits);

    /** Pad with zero bits to the next byte boundary. */
    void alignByte();

    /** Number of bits written so far. */
    size_t bitCount() const { return _bits; }

    /** Finished bytes (call alignByte() first for a whole-byte view). */
    const std::vector<uint8_t> &bytes() const { return _data; }

  private:
    std::vector<uint8_t> _data;
    size_t _bits = 0;
    uint8_t _cur = 0;
    int _curBits = 0;
};

/** MSB-first bit reader over a byte buffer. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<uint8_t> &data) : _data(data) {}

    /** Read @p bits bits (0<=bits<=32) MSB first; returns them LSB-aligned. */
    uint32_t get(int bits);

    /** Peek without consuming. */
    uint32_t peek(int bits) const;

    /** Skip forward. */
    void skip(int bits);

    /** True once every whole bit has been consumed. */
    bool exhausted() const { return _pos >= _data.size() * 8; }

    size_t bitPos() const { return _pos; }

  private:
    const std::vector<uint8_t> &_data;
    size_t _pos = 0;
};

} // namespace momsim

#endif // MOMSIM_COMMON_BITIO_HH
