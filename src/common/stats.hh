/**
 * @file
 * Minimal named-statistics registry.
 *
 * Simulator components register scalar counters and derived ratios in a
 * StatGroup; benches and examples dump groups as aligned tables. This is a
 * deliberately small stand-in for a full stats package: every statistic the
 * paper reports (IPC, EIPC, hit rates, average latencies, instruction-mix
 * percentages) is representable as a counter or a ratio of counters.
 */

#ifndef MOMSIM_COMMON_STATS_HH
#define MOMSIM_COMMON_STATS_HH

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

namespace momsim
{

/** A named collection of uint64 counters with formatted dumping. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : _name(std::move(name)) {}

    /**
     * Add (or fetch) a counter; returns a stable reference. Stability
     * is load-bearing: the simulation kernel caches these references so
     * per-event accounting is an increment rather than a string lookup
     * (entries live in a deque, so later registrations never move
     * earlier counters).
     */
    uint64_t &counter(const std::string &key);

    /** Read a counter (0 if absent). */
    uint64_t get(const std::string &key) const;

    /** Ratio of two counters; returns 0 when the denominator is zero. */
    double ratio(const std::string &num, const std::string &den) const;

    /** Render "name.key = value" lines. */
    std::string dump() const;

    /** Reset every counter to zero. */
    void clear();

    const std::string &name() const { return _name; }

    const std::deque<std::pair<std::string, uint64_t>> &
    entries() const
    {
        return _entries;
    }

  private:
    std::string _name;
    std::deque<std::pair<std::string, uint64_t>> _entries;
};

/** Fixed-width percentage formatting helper shared by the benches. */
std::string pct(double fraction, int decimals = 1);

} // namespace momsim

#endif // MOMSIM_COMMON_STATS_HH
