/**
 * @file
 * Minimal named-statistics registry.
 *
 * Simulator components register scalar counters and derived ratios in a
 * StatGroup; benches and examples dump groups as aligned tables. This is a
 * deliberately small stand-in for a full stats package: every statistic the
 * paper reports (IPC, EIPC, hit rates, average latencies, instruction-mix
 * percentages) is representable as a counter or a ratio of counters.
 *
 * Counters are stored structure-of-arrays (a name column and a value
 * column) and hot-path users hold StatId indices into the value column.
 * Indices stay valid across later registrations, so components resolve
 * their ids once at construction and per-event accounting is a single
 * indexed increment.
 *
 * Threading: a StatGroup is deliberately unsynchronized — it has no
 * mutex and carries no thread-safety annotations (see
 * common/thread_annotations.hh for the annotated primitives the
 * concurrent layers use). Each simulation owns its groups exclusively;
 * the scheduler's one-worker-per-simulation dispatch is the external
 * synchronization. Hot-path increments must stay a single unlocked
 * indexed add — putting a capability here would tax the kernel's
 * tightest loop for a sharing pattern that never happens.
 */

#ifndef MOMSIM_COMMON_STATS_HH
#define MOMSIM_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace momsim
{

/**
 * Stable index of one counter inside its StatGroup. Unlike a cached
 * `uint64_t*` (which a vector reallocation would invalidate), an id
 * survives any number of later registrations.
 */
using StatId = uint32_t;

/** A named collection of uint64 counters with formatted dumping. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : _name(std::move(name)) {}

    /**
     * Register (or find) a counter and return its stable id. Hot-path
     * components call this once at construction and use at() per event.
     */
    StatId id(const std::string &key);

    /** Access a counter by id. O(1), never invalidated. */
    uint64_t &at(StatId id) { return _values[id]; }
    uint64_t at(StatId id) const { return _values[id]; }

    /**
     * Add (or fetch) a counter; returns a reference for immediate use.
     * The reference is only guaranteed valid until the next
     * registration — cache an id() instead of the reference.
     */
    uint64_t &counter(const std::string &key) { return _values[id(key)]; }

    /** Read a counter (0 if absent). */
    uint64_t get(const std::string &key) const;

    /** Ratio of two counters; returns 0 when the denominator is zero. */
    double ratio(const std::string &num, const std::string &den) const;

    /** Render "name.key = value" lines. */
    std::string dump() const;

    /** Reset every counter to zero. */
    void clear();

    const std::string &name() const { return _name; }

    size_t size() const { return _values.size(); }
    const std::string &keyAt(StatId id) const { return _keys[id]; }

  private:
    std::string _name;
    std::vector<std::string> _keys;
    std::vector<uint64_t> _values;
};

/** Fixed-width percentage formatting helper shared by the benches. */
std::string pct(double fraction, int decimals = 1);

} // namespace momsim

#endif // MOMSIM_COMMON_STATS_HH
