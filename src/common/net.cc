#include "common/net.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <random>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"

namespace momsim::net
{

void
FdGuard::reset(int fd)
{
    if (_fd >= 0)
        ::close(_fd);
    _fd = fd;
}

void
ignoreSigpipe()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
}

namespace
{

std::atomic<int> gShutdownCount{ 0 };
std::atomic<int> gShutdownWakeFd{ -1 };

extern "C" void
shutdownHandler(int)
{
    gShutdownCount.fetch_add(1, std::memory_order_relaxed);
    int fd = gShutdownWakeFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        char byte = 's';
        // Best effort: a full pipe already guarantees a pending wake.
        [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
    }
}

} // namespace

void
installShutdownSignals(int wakeFd)
{
    gShutdownWakeFd.store(wakeFd, std::memory_order_relaxed);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = shutdownHandler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: blocking accept/poll must return EINTR so the
    // acceptor notices the drain request even if the pipe write raced.
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

int
shutdownRequestCount()
{
    return gShutdownCount.load(std::memory_order_relaxed);
}

bool
writeAll(int fd, const void *data, size_t n)
{
    const char *p = static_cast<const char *>(data);
    bool socketFd = true;
    while (n > 0) {
        // MSG_NOSIGNAL so a peer-reset socket fails with EPIPE instead
        // of raising SIGPIPE — the library must be safe even in hosts
        // that never called ignoreSigpipe(). Plain write() for pipes.
        ssize_t wrote =
            socketFd ? ::send(fd, p, n, MSG_NOSIGNAL) : ::write(fd, p, n);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            if (socketFd && errno == ENOTSOCK) {
                socketFd = false;
                continue;
            }
            return false;
        }
        p += wrote;
        n -= static_cast<size_t>(wrote);
    }
    return true;
}

long
readSome(int fd, void *buf, size_t n)
{
    for (;;) {
        ssize_t got = ::read(fd, buf, n);
        if (got < 0 && errno == EINTR)
            continue;
        return static_cast<long>(got);
    }
}

int
waitReadable(int fd, int timeoutMs)
{
    using clock = std::chrono::steady_clock;
    const bool forever = timeoutMs < 0;
    clock::time_point deadline =
        clock::now() + std::chrono::milliseconds(forever ? 0 : timeoutMs);
    for (;;) {
        int wait = -1;
        if (!forever) {
            auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - clock::now())
                            .count();
            wait = left > 0 ? static_cast<int>(left) : 0;
        }
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        int rc = ::poll(&pfd, 1, wait);
        if (rc > 0)
            return 1;   // readable, EOF or error — read() will tell
        if (rc == 0)
            return 0;
        if (errno != EINTR)
            return -1;
    }
}

int
connectRetry(const std::function<int(std::string &)> &dial, int retries,
             int backoffMs, std::string &error, int *attempts)
{
    // Per-thread PRNG so concurrent dialers (the coordinator runs one
    // per worker) never share — or synchronize on — generator state.
    thread_local std::minstd_rand rng(
        static_cast<unsigned>(::getpid()) * 2654435761u ^
        static_cast<unsigned>(
            std::chrono::steady_clock::now().time_since_epoch().count()));

    int made = 0;
    for (int attempt = 0;; ++attempt) {
        ++made;
        int fd = dial(error);
        if (fd >= 0 || attempt >= retries) {
            if (attempts)
                *attempts = made;
            return fd;
        }
        double base = static_cast<double>(backoffMs < 1 ? 1 : backoffMs);
        for (int i = 0; i < attempt; ++i)
            base *= 2.0;
        if (base > 10000.0)
            base = 10000.0;
        std::uniform_real_distribution<double> jitter(0.5, 1.5);
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            base * jitter(rng)));
    }
}

namespace
{

int
failWith(std::string &error, const char *what)
{
    error = strfmt("%s: %s", what, std::strerror(errno));
    return -1;
}

bool
fillTcpAddr(const std::string &host, int port, sockaddr_in &addr,
            std::string &error)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        error = strfmt("bad IPv4 address \"%s\"", host.c_str());
        return false;
    }
    return true;
}

bool
fillUnixAddr(const std::string &path, sockaddr_un &addr,
             std::string &error)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        error = strfmt("unix socket path \"%s\" empty or longer than "
                       "%zu bytes", path.c_str(),
                       sizeof(addr.sun_path) - 1);
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

int
listenTcp(const std::string &host, int port, std::string &error)
{
    sockaddr_in addr;
    if (!fillTcpAddr(host, port, addr, error))
        return -1;
    FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return failWith(error, "socket");
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return failWith(error, "bind");
    if (::listen(fd.get(), 64) != 0)
        return failWith(error, "listen");
    return fd.release();
}

int
listenUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr;
    if (!fillUnixAddr(path, addr, error))
        return -1;
    // A stale socket file from a dead server would make bind fail with
    // EADDRINUSE even though nobody is listening; remove it first.
    ::unlink(path.c_str());
    FdGuard fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        return failWith(error, "socket");
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return failWith(error, "bind");
    if (::listen(fd.get(), 64) != 0)
        return failWith(error, "listen");
    return fd.release();
}

int
connectTcp(const std::string &host, int port, std::string &error)
{
    sockaddr_in addr;
    if (!fillTcpAddr(host, port, addr, error))
        return -1;
    FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return failWith(error, "socket");
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return failWith(error, "connect");
    return fd.release();
}

int
connectUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr;
    if (!fillUnixAddr(path, addr, error))
        return -1;
    FdGuard fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        return failWith(error, "socket");
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return failWith(error, "connect");
    return fd.release();
}

int
boundTcpPort(int fd)
{
    sockaddr_in addr;
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) != 0)
        return -1;
    return static_cast<int>(ntohs(addr.sin_port));
}

void
setAbortiveClose(int fd)
{
    struct linger lg;
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

} // namespace momsim::net
