#include "common/logging.hh"

#include <cstdlib>
#include <vector>

#include "common/thread_annotations.hh"

namespace momsim
{

namespace
{

/** Serializes multi-line stderr dumps from concurrent pool workers. */
Mutex &
dumpMutex()
{
    static Mutex m;
    return m;
}

} // namespace

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(len));
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
dumpRaw(const std::string &text)
{
    MutexLock lock(dumpMutex());
    std::fwrite(text.data(), 1, text.size(), stderr);
    std::fflush(stderr);
}

} // namespace momsim
