/**
 * @file
 * Clang Thread Safety Analysis annotations plus the annotated locking
 * primitives the concurrent core builds on.
 *
 * Under clang the macros expand to the `capability`-family attributes,
 * so `-Wthread-safety -Werror` turns lock discipline into a compile
 * error: a member declared GUARDED_BY(_mutex) cannot be touched without
 * holding `_mutex`, a function declared REQUIRES(_mutex) cannot be
 * called without it, and a MutexLock that escapes a scope still locked
 * is flagged. Under every other compiler (gcc builds this repo daily)
 * the macros expand to nothing and `Mutex`/`MutexLock`/`CondVar` are
 * zero-cost wrappers over their std counterparts.
 *
 * The CI `lint` job builds the tree with clang and gates on these
 * warnings; see README "Static analysis".
 */

#ifndef MOMSIM_COMMON_THREAD_ANNOTATIONS_HH
#define MOMSIM_COMMON_THREAD_ANNOTATIONS_HH

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define MOMSIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MOMSIM_THREAD_ANNOTATION(x)
#endif

/** Marks a class as a lockable capability (mutexes). */
#define CAPABILITY(x) MOMSIM_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class whose lifetime acquires/releases a capability. */
#define SCOPED_CAPABILITY MOMSIM_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding the named mutex. */
#define GUARDED_BY(x) MOMSIM_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is guarded by the named mutex. */
#define PT_GUARDED_BY(x) MOMSIM_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function callable only while already holding the listed mutexes. */
#define REQUIRES(...) \
    MOMSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that acquires the listed mutexes and returns holding them. */
#define ACQUIRE(...) \
    MOMSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the listed mutexes. */
#define RELEASE(...) \
    MOMSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires the mutex only when returning the given value. */
#define TRY_ACQUIRE(...) \
    MOMSIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function that must NOT be called while holding the listed mutexes. */
#define EXCLUDES(...) MOMSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the calling thread holds the capability. */
#define ASSERT_CAPABILITY(x) MOMSIM_THREAD_ANNOTATION(assert_capability(x))

/** Function returning a reference to the named capability. */
#define RETURN_CAPABILITY(x) MOMSIM_THREAD_ANNOTATION(lock_returned(x))

/** Documented lock-order edge: this mutex locks before the listed ones. */
#define ACQUIRED_BEFORE(...) \
    MOMSIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** Documented lock-order edge: this mutex locks after the listed ones. */
#define ACQUIRED_AFTER(...) \
    MOMSIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Escape hatch for code the analysis cannot model; justify at the site. */
#define NO_THREAD_SAFETY_ANALYSIS \
    MOMSIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace momsim
{

/**
 * std::mutex as an annotated capability. BasicLockable, so it works
 * directly with std::lock_guard, std::unique_lock and
 * std::condition_variable_any — but prefer MutexLock/CondVar below,
 * which keep the analysis engaged (the std wrappers are opaque to it).
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { _m.lock(); }
    void unlock() RELEASE() { _m.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return _m.try_lock(); }

  private:
    std::mutex _m;
};

/**
 * Scoped lock over Mutex, in the shape thread-safety analysis
 * understands: construction acquires, destruction releases, and the
 * manual lock()/unlock() members let a critical section be dropped
 * around blocking work (the worker-loop "unlock, simulate, relock"
 * pattern) without losing the analysis — clang tracks `_locked`
 * through the SCOPED_CAPABILITY attribute set.
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ACQUIRE(mu) : _mu(mu), _locked(true)
    {
        _mu.lock();
    }

    ~MutexLock() RELEASE()
    {
        if (_locked)
            _mu.unlock();
    }

    /** Re-acquire after a manual unlock(). */
    void lock() ACQUIRE()
    {
        _mu.lock();
        _locked = true;
    }

    /** Drop the lock mid-scope (e.g. around a blocking call). */
    void unlock() RELEASE()
    {
        _mu.unlock();
        _locked = false;
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &_mu;
    bool _locked;
};

/**
 * Condition variable paired with Mutex. wait() declares REQUIRES(mu),
 * so a caller provably holds the mutex at the wait site; the internal
 * unlock/relock happens inside the libstdc++ header, where analysis
 * warnings are suppressed. Use an explicit `while (!cond) cv.wait(mu);`
 * loop rather than the predicate overloads: clang analyzes lambda
 * bodies as separate functions, so a predicate lambda reading guarded
 * state would (falsely) warn.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void wait(Mutex &mu) REQUIRES(mu) { _cv.wait(mu); }

    template <class Rep, class Period>
    std::cv_status
    wait_for(Mutex &mu,
             const std::chrono::duration<Rep, Period> &dur) REQUIRES(mu)
    {
        return _cv.wait_for(mu, dur);
    }

    void notify_one() { _cv.notify_one(); }
    void notify_all() { _cv.notify_all(); }

  private:
    std::condition_variable_any _cv;
};

} // namespace momsim

#endif // MOMSIM_COMMON_THREAD_ANNOTATIONS_HH
