/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every stochastic element of the simulator (synthetic images, audio,
 * scene geometry) draws from an explicitly-seeded Xoshiro256** stream so
 * that simulations are bit-reproducible across runs and platforms.
 */

#ifndef MOMSIM_COMMON_RNG_HH
#define MOMSIM_COMMON_RNG_HH

#include <cstdint>

namespace momsim
{

/** Xoshiro256** generator (Blackman & Vigna), seeded via SplitMix64. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the full state from a single 64-bit seed. */
    void
    reseed(uint64_t seed)
    {
        uint64_t x = seed;
        for (auto &word : state) {
            // SplitMix64 step: guarantees non-zero, well-mixed state.
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state[1] * 5, 7) * 9;
        const uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // Multiply-shift reduction; bias is negligible for bound << 2^64.
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Approximately-Gaussian sample (sum of uniforms), mean 0, sigma 1. */
    double
    gauss()
    {
        double acc = 0.0;
        for (int i = 0; i < 12; ++i)
            acc += real();
        return acc - 6.0;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state[4];
};

} // namespace momsim

#endif // MOMSIM_COMMON_RNG_HH
