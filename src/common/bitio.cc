#include "common/bitio.hh"

#include "common/logging.hh"

namespace momsim
{

void
BitWriter::put(uint32_t value, int bits)
{
    MOMSIM_ASSERT(bits >= 0 && bits <= 32, "bit count out of range");
    for (int i = bits - 1; i >= 0; --i) {
        _cur = static_cast<uint8_t>((_cur << 1) | ((value >> i) & 1u));
        if (++_curBits == 8) {
            _data.push_back(_cur);
            _cur = 0;
            _curBits = 0;
        }
        ++_bits;
    }
}

void
BitWriter::alignByte()
{
    while (_curBits != 0)
        put(0, 1);
}

uint32_t
BitReader::get(int bits)
{
    uint32_t v = peek(bits);
    skip(bits);
    return v;
}

uint32_t
BitReader::peek(int bits) const
{
    MOMSIM_ASSERT(bits >= 0 && bits <= 32, "bit count out of range");
    uint32_t v = 0;
    size_t p = _pos;
    for (int i = 0; i < bits; ++i, ++p) {
        uint32_t bit = 0;
        if (p < _data.size() * 8)
            bit = (_data[p / 8] >> (7 - (p % 8))) & 1u;
        v = (v << 1) | bit;
    }
    return v;
}

void
BitReader::skip(int bits)
{
    _pos += static_cast<size_t>(bits);
}

} // namespace momsim
