/**
 * @file
 * Direct Rambus DRAM channel model.
 *
 * The paper's main memory: "a 128MB Direct Rambus main memory system which
 * contains a DRDRAM controller driving 8 Rambus chips and leveraging up to
 * 3.2 GB/s with a 128-bit wide, bi-directional 200Mhz main bus (feeding a
 * 800MHz processor)". At 800 MHz that is 4 bytes of channel bandwidth per
 * CPU cycle. We model: a fixed device access latency, per-device busy
 * windows (8 devices interleaved by 4 KB regions) and channel occupancy
 * proportional to the transfer size.
 */

#ifndef MOMSIM_MEM_DRAM_HH
#define MOMSIM_MEM_DRAM_HH

#include <algorithm>
#include <array>
#include <cstdint>

#include "common/stats.hh"

namespace momsim::mem
{

struct DramConfig
{
    uint32_t accessLatency = 56;    ///< CPU cycles from request to first data
    uint32_t bytesPerCycle = 4;     ///< 3.2 GB/s at 800 MHz
    uint32_t numDevices = 8;
    uint32_t deviceShift = 12;      ///< 4 KB device interleave
    uint32_t deviceBusy = 16;       ///< device recovery per access
};

/** Timestamp-resource model of the Rambus channel. */
class RambusChannel
{
  public:
    explicit RambusChannel(const DramConfig &cfg = {})
        : _cfg(cfg),
          _devMask((cfg.numDevices & (cfg.numDevices - 1)) == 0
                       ? cfg.numDevices - 1
                       : 0),
          _stats("dram")
    {
        _deviceFree.fill(0);
        // Cached so per-access accounting never does a string lookup
        // (StatGroup references are stable).
        _ctrReads = _stats.id("reads");
        _ctrWrites = _stats.id("writes");
        _ctrBytes = _stats.id("bytes");
        _ctrQueueCycles = _stats.id("queueCycles");
    }

    /**
     * Request @p bytes at @p addr starting no earlier than @p cycle.
     * @return the cycle at which the full transfer completes.
     */
    uint64_t
    access(uint64_t cycle, uint64_t addr, uint32_t bytes, bool isWrite)
    {
        uint64_t sliced = addr >> _cfg.deviceShift;
        uint32_t dev = static_cast<uint32_t>(
            _devMask ? (sliced & _devMask) : (sliced % _cfg.numDevices));
        uint64_t start = std::max({ cycle, _channelFree, _deviceFree[dev] });
        uint64_t occupancy =
            (bytes + _cfg.bytesPerCycle - 1) / _cfg.bytesPerCycle;
        uint64_t done = start + _cfg.accessLatency + occupancy;
        _channelFree = start + occupancy;
        _deviceFree[dev] = start + _cfg.deviceBusy;

        _stats.at(isWrite ? _ctrWrites : _ctrReads) += 1;
        _stats.at(_ctrBytes) += bytes;
        _stats.at(_ctrQueueCycles) += start - cycle;
        return done;
    }

    /**
     * Earliest cycle > @p cycle at which channel or device occupancy
     * clears; ~0ull when the channel is idle. Lets the core's idle
     * fast-forward stop at DRAM state changes.
     */
    uint64_t
    nextEventCycle(uint64_t cycle) const
    {
        uint64_t next = ~0ull;
        if (_channelFree > cycle)
            next = _channelFree;
        for (uint32_t d = 0; d < _cfg.numDevices && d < _deviceFree.size();
             ++d) {
            if (_deviceFree[d] > cycle)
                next = std::min(next, _deviceFree[d]);
        }
        return next;
    }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    void
    reset()
    {
        _channelFree = 0;
        _deviceFree.fill(0);
        _stats.clear();
    }

  private:
    DramConfig _cfg;
    uint64_t _devMask;          ///< numDevices-1 if pow2, else 0
    uint64_t _channelFree = 0;
    std::array<uint64_t, 16> _deviceFree{};
    StatGroup _stats;
    StatId _ctrReads = 0;
    StatId _ctrWrites = 0;
    StatId _ctrBytes = 0;
    StatId _ctrQueueCycles = 0;
};

} // namespace momsim::mem

#endif // MOMSIM_MEM_DRAM_HH
