/**
 * @file
 * The three memory hierarchies the paper evaluates.
 *
 *  - PerfectMemory: every access hits in one cycle (Figure 4's "ideal
 *    memory system — neither cache misses nor bank conflicts").
 *  - ConventionalHierarchy (Figure 7a): 4 general-purpose memory ports
 *    into a banked write-through L1; vector (SIMD) element accesses share
 *    the same ports as scalar accesses.
 *  - DecoupledHierarchy (Figure 7b, from the authors' ICS'99 proposal):
 *    2 scalar ports into a single-banked double-pumped L1 (21264-style)
 *    plus 2 vector ports connected straight to a 2-banked L2 through a
 *    crossbar; an exclusive-bit policy keeps the two access classes
 *    coherent (a vector touch of an L1-resident line invalidates it).
 *
 * All hierarchies share the same I-cache, L2 and Rambus channel models.
 */

#ifndef MOMSIM_MEM_HIERARCHY_HH
#define MOMSIM_MEM_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "mem/cache.hh"
#include "mem/dram.hh"

namespace momsim::mem
{

/** Which hierarchy to instantiate. */
enum class MemModel
{
    Perfect,
    Conventional,
    Decoupled,
};

const char *toString(MemModel m);

/** Inverse of toString(); false when @p s names no hierarchy. */
bool fromString(const char *s, MemModel &out);

/** One data-side access request from the core. */
struct MemAccess
{
    uint64_t addr = 0;
    uint8_t size = 4;
    bool isWrite = false;
    bool isVector = false;      ///< issued by a SIMD (MMX/MOM) memory op
    bool nonTemporal = false;
    int threadId = 0;
};

/** Reply to a data-side access attempt. */
struct MemReply
{
    bool accepted = false;      ///< false => structural hazard, retry
    bool l1Hit = false;
    uint64_t readyCycle = 0;
};

/** Reply to an instruction-fetch attempt. */
struct FetchReply
{
    bool accepted = false;
    bool hit = false;
    uint64_t readyCycle = 0;
};

/** Paper §3 "Architectural Parameters" defaults. */
struct MemConfig
{
    CacheConfig l1;
    CacheConfig icache;
    CacheConfig l2;
    DramConfig dram;
    uint32_t vectorPorts = 2;       ///< decoupled hierarchy only
    uint32_t invalidatePenalty = 2; ///< exclusive-bit coherence action

    MemConfig();

    /** Adjust L1/port shape for the decoupled organization. */
    void applyDecoupledShape();
};

/** Interface the SMT core drives. */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /** Try one data access; if !accepted the core retries later. */
    virtual MemReply access(uint64_t cycle, const MemAccess &req) = 0;

    /** Try one instruction-group fetch at @p pc. */
    virtual FetchReply ifetch(uint64_t cycle, uint64_t pc) = 0;

    /**
     * Earliest cycle > @p cycle at which the hierarchy's structural
     * state changes on its own (a bank frees, a miss completes, a write
     * buffer drains, DRAM occupancy clears); ~0ull when quiescent. The
     * core's idle fast-forward never jumps past this, so a skipped
     * stretch cannot straddle a memory event.
     */
    virtual uint64_t
    nextEventCycle(uint64_t cycle) const
    {
        (void)cycle;
        return ~0ull;       // stateless hierarchies never wake the core
    }

    // ---- Table 4 metrics ----
    virtual double l1HitRate() const = 0;
    virtual double icacheHitRate() const = 0;
    virtual double l1AvgLatency() const = 0;

    virtual StatGroup *statsOf(const char *which) = 0;
};

std::unique_ptr<MemorySystem> makeMemorySystem(MemModel model,
                                               const MemConfig &cfg = {});

/** Everything hits: the paper's idealistic memory system. */
class PerfectMemory : public MemorySystem
{
  public:
    PerfectMemory() : _stats("perfect")
    {
        _ctrAccesses = _stats.id("accesses");
    }

    MemReply
    access(uint64_t cycle, const MemAccess &req) override
    {
        (void)req;
        _stats.at(_ctrAccesses) += 1;
        return { true, true, cycle + 1 };
    }

    FetchReply
    ifetch(uint64_t cycle, uint64_t pc) override
    {
        (void)pc;
        return { true, true, cycle };
    }

    double l1HitRate() const override { return 1.0; }
    double icacheHitRate() const override { return 1.0; }
    double l1AvgLatency() const override { return 1.0; }
    StatGroup *statsOf(const char *) override { return &_stats; }

  private:
    StatGroup _stats;
    StatId _ctrAccesses = 0;
};

/** Shared plumbing for the two realistic hierarchies. */
class BaseHierarchy : public MemorySystem
{
  public:
    explicit BaseHierarchy(const MemConfig &cfg);

    FetchReply ifetch(uint64_t cycle, uint64_t pc) override;

    uint64_t nextEventCycle(uint64_t cycle) const override;

    double l1HitRate() const override { return _l1.hitRate(); }
    double icacheHitRate() const override { return _ic.hitRate(); }
    double l1AvgLatency() const override { return _l1.avgLatency(); }

    StatGroup *statsOf(const char *which) override;

  protected:
    /** Read a line through the L2 (fills from DRAM on miss). */
    uint64_t l2Read(uint64_t cycle, uint64_t addr, uint32_t bytes);
    /** Write into the L2 (write-allocate; dirty evictions to DRAM). */
    uint64_t l2Write(uint64_t cycle, uint64_t addr, uint32_t bytes);

    /** Store path through the L1 write buffer; false => stall. */
    bool storeThroughWb(uint64_t cycle, uint64_t addr, MemReply &rep);

    MemConfig _cfg;
    Cache _l1;
    Cache _ic;
    Cache _l2;
    RambusChannel _dram;
    // Hierarchy-level counters on the member caches' stat groups,
    // resolved to stable StatIds once at construction: these fire per
    // store, per forwarded load and per fill on the data path.
    StatId _ctrL1WbFull = 0;
    StatId _ctrL1WbForwards = 0;
    StatId _ctrL1LatencySum = 0;
    StatId _ctrL2LatencySum = 0;
    StatId _ctrIcLatencySum = 0;
    StatId _ctrL2VecPortConflicts = 0;
    StatId _ctrL2VecInvalidations = 0;
};

/** Figure 7(a): four general-purpose ports into the banked L1. */
class ConventionalHierarchy : public BaseHierarchy
{
  public:
    explicit ConventionalHierarchy(const MemConfig &cfg)
        : BaseHierarchy(cfg)
    {}

    MemReply access(uint64_t cycle, const MemAccess &req) override;
};

/** Figure 7(b): scalar ports to L1, vector ports straight to L2. */
class DecoupledHierarchy : public BaseHierarchy
{
  public:
    explicit DecoupledHierarchy(const MemConfig &cfg);

    MemReply access(uint64_t cycle, const MemAccess &req) override;

  private:
    MemReply scalarAccess(uint64_t cycle, const MemAccess &req);
    MemReply vectorAccess(uint64_t cycle, const MemAccess &req);
    bool takeVectorPort(uint64_t cycle);

    uint64_t _vpCycle = ~0ull;
    uint32_t _vpUsed = 0;
    /** L2 lines currently owned by the vector side (exclusive bit). */
    std::unordered_set<uint64_t> _vecOwned;
};

} // namespace momsim::mem

#endif // MOMSIM_MEM_HIERARCHY_HH
