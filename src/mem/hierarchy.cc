#include "mem/hierarchy.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace momsim::mem
{

const char *
toString(MemModel m)
{
    switch (m) {
      case MemModel::Perfect:      return "perfect";
      case MemModel::Conventional: return "conventional";
      case MemModel::Decoupled:    return "decoupled";
    }
    return "?";
}

bool
fromString(const char *s, MemModel &out)
{
    if (std::strcmp(s, "perfect") == 0) {
        out = MemModel::Perfect;
        return true;
    }
    if (std::strcmp(s, "conventional") == 0) {
        out = MemModel::Conventional;
        return true;
    }
    if (std::strcmp(s, "decoupled") == 0) {
        out = MemModel::Decoupled;
        return true;
    }
    return false;
}

MemConfig::MemConfig()
{
    // L1: 32 KB, direct mapped, write-through, 32-byte lines, 8 banks,
    // 8 MSHRs, 8-deep coalescing write buffer, 1-cycle latency.
    l1.name = "l1";
    l1.sizeBytes = 32 * 1024;
    l1.lineBytes = 32;
    l1.ways = 1;
    l1.banks = 8;
    l1.bankShift = 3;
    l1.hitLatency = 1;
    l1.numMshrs = 8;
    l1.writeBufferEntries = 8;
    l1.writeBack = false;
    l1.portsPerCycle = 4;

    // I-cache: 64 KB, 2-way, 32-byte lines, 4 banks, 1-cycle latency.
    icache.name = "icache";
    icache.sizeBytes = 64 * 1024;
    icache.lineBytes = 32;
    icache.ways = 2;
    icache.banks = 4;
    icache.bankShift = 5;
    icache.hitLatency = 1;
    icache.numMshrs = 4;
    icache.writeBufferEntries = 1;
    icache.writeBack = false;
    icache.portsPerCycle = 2;       // two fetch groups per cycle

    // L2: 1 MB, 2-way, write-back, 128-byte lines, 12-cycle latency,
    // 8 MSHRs, two banks reachable through a crossbar.
    l2.name = "l2";
    l2.sizeBytes = 1024 * 1024;
    l2.lineBytes = 128;
    l2.ways = 2;
    l2.banks = 2;
    l2.bankShift = 7;
    l2.hitLatency = 12;
    l2.numMshrs = 8;
    l2.writeBufferEntries = 8;
    l2.writeBack = true;
    l2.portsPerCycle = 2;
    l2.fillBytesPerCycle = 16;
}

void
MemConfig::applyDecoupledShape()
{
    // 21264-style: single-banked, double-pumped, two scalar ports.
    l1.banks = 1;
    l1.bankPumps = 2;
    l1.portsPerCycle = 2;
}

// ---------------------------------------------------------------------
// BaseHierarchy
// ---------------------------------------------------------------------

BaseHierarchy::BaseHierarchy(const MemConfig &cfg)
    : _cfg(cfg), _l1(cfg.l1), _ic(cfg.icache), _l2(cfg.l2), _dram(cfg.dram)
{
    _ctrL1WbFull = _l1.stats().id("wbFull");
    _ctrL1WbForwards = _l1.stats().id("wbForwards");
    _ctrL1LatencySum = _l1.stats().id("latencySum");
    _ctrL2LatencySum = _l2.stats().id("latencySum");
    _ctrIcLatencySum = _ic.stats().id("latencySum");
    _ctrL2VecPortConflicts = _l2.stats().id("vectorPortConflicts");
    _ctrL2VecInvalidations = _l2.stats().id("vecInvalidations");
}

uint64_t
BaseHierarchy::nextEventCycle(uint64_t cycle) const
{
    uint64_t next = _l1.nextEventCycle(cycle);
    next = std::min(next, _ic.nextEventCycle(cycle));
    next = std::min(next, _l2.nextEventCycle(cycle));
    next = std::min(next, _dram.nextEventCycle(cycle));
    return next;
}

StatGroup *
BaseHierarchy::statsOf(const char *which)
{
    if (std::strcmp(which, "l1") == 0)
        return &_l1.stats();
    if (std::strcmp(which, "icache") == 0)
        return &_ic.stats();
    if (std::strcmp(which, "l2") == 0)
        return &_l2.stats();
    if (std::strcmp(which, "dram") == 0)
        return &_dram.stats();
    return nullptr;
}

uint64_t
BaseHierarchy::l2Read(uint64_t cycle, uint64_t addr, uint32_t bytes)
{
    CacheResult r = _l2.accessBlocking(cycle, addr, false, bytes);
    if (r.dirtyEviction) {
        _dram.access(cycle + _cfg.l2.hitLatency, r.victimAddr,
                     _cfg.l2.lineBytes, true);
    }
    if (r.needsFill) {
        uint64_t done = _dram.access(cycle + _cfg.l2.hitLatency, r.missAddr,
                                     _cfg.l2.lineBytes, false);
        _l2.fillDone(r.missAddr, done);
        _l2.stats().at(_ctrL2LatencySum) += done - cycle;
        return done;
    }
    return r.readyCycle;
}

uint64_t
BaseHierarchy::l2Write(uint64_t cycle, uint64_t addr, uint32_t bytes)
{
    CacheResult r = _l2.accessBlocking(cycle, addr, true, bytes);
    if (r.dirtyEviction) {
        _dram.access(cycle + _cfg.l2.hitLatency, r.victimAddr,
                     _cfg.l2.lineBytes, true);
    }
    if (r.needsFill) {
        // Write-allocate: fetch the line, then the write completes.
        uint64_t done = _dram.access(cycle + _cfg.l2.hitLatency, r.missAddr,
                                     _cfg.l2.lineBytes, false);
        _l2.fillDone(r.missAddr, done);
        _l2.stats().at(_ctrL2LatencySum) += done - cycle;
        return done;
    }
    return r.readyCycle;
}

bool
BaseHierarchy::storeThroughWb(uint64_t cycle, uint64_t addr, MemReply &rep)
{
    if (!_l1.wbProbe(cycle, addr)) {
        _l1.stats().at(_ctrL1WbFull) += 1;
        return false;
    }
    CacheResult r = _l1.access(cycle, addr, true);
    if (!r.accepted)
        return false;
    // Drain the (coalesced) line to L2 in the background.
    uint64_t drainDone = l2Write(r.readyCycle, addr, _cfg.l1.lineBytes);
    _l1.wbInsert(cycle, addr, drainDone);
    rep.accepted = true;
    rep.l1Hit = r.hit;
    rep.readyCycle = r.readyCycle;  // stores complete into the buffer
    return true;
}

FetchReply
BaseHierarchy::ifetch(uint64_t cycle, uint64_t pc)
{
    CacheResult r = _ic.access(cycle, pc, false);
    if (!r.accepted)
        return {};
    FetchReply rep;
    rep.accepted = true;
    rep.hit = r.hit;
    if (r.needsFill) {
        uint64_t done = l2Read(cycle + _cfg.icache.hitLatency, r.missAddr,
                               _cfg.icache.lineBytes);
        _ic.fillDone(r.missAddr, done);
        _ic.stats().at(_ctrIcLatencySum) += done - cycle;
        rep.readyCycle = done;
    } else {
        rep.readyCycle = r.readyCycle;
    }
    return rep;
}

// ---------------------------------------------------------------------
// ConventionalHierarchy
// ---------------------------------------------------------------------

MemReply
ConventionalHierarchy::access(uint64_t cycle, const MemAccess &req)
{
    MemReply rep;
    if (req.isWrite) {
        storeThroughWb(cycle, req.addr, rep);
        return rep;
    }

    // Load forwarding from a resident write-buffer entry ("selective
    // flush": the matching entry services the load directly).
    if (_l1.wbHit(cycle, req.addr)) {
        _l1.stats().at(_ctrL1WbForwards) += 1;
        rep.accepted = true;
        rep.l1Hit = true;
        rep.readyCycle = cycle + 1;
        return rep;
    }

    CacheResult r = _l1.access(cycle, req.addr, false);
    if (!r.accepted)
        return rep;
    rep.accepted = true;
    rep.l1Hit = r.hit;
    if (r.needsFill) {
        uint64_t done = l2Read(cycle + _cfg.l1.hitLatency, r.missAddr,
                               _cfg.l1.lineBytes);
        _l1.fillDone(r.missAddr, done);
        _l1.stats().at(_ctrL1LatencySum) += done - cycle;
        rep.readyCycle = done;
    } else {
        rep.readyCycle = r.readyCycle;
    }
    return rep;
}

// ---------------------------------------------------------------------
// DecoupledHierarchy
// ---------------------------------------------------------------------

DecoupledHierarchy::DecoupledHierarchy(const MemConfig &cfg)
    : BaseHierarchy([cfg]() {
          MemConfig shaped = cfg;
          shaped.applyDecoupledShape();
          return shaped;
      }())
{
}

bool
DecoupledHierarchy::takeVectorPort(uint64_t cycle)
{
    if (_vpCycle != cycle) {
        _vpCycle = cycle;
        _vpUsed = 0;
    }
    if (_vpUsed >= _cfg.vectorPorts)
        return false;
    ++_vpUsed;
    return true;
}

MemReply
DecoupledHierarchy::scalarAccess(uint64_t cycle, const MemAccess &req)
{
    MemReply rep;
    if (req.isWrite) {
        if (storeThroughWb(cycle, req.addr, rep)) {
            // Scalar write: the line is no longer vector-exclusive.
            _vecOwned.erase(req.addr & ~static_cast<uint64_t>(
                _cfg.l2.lineBytes - 1));
        }
        return rep;
    }
    if (_l1.wbHit(cycle, req.addr)) {
        _l1.stats().at(_ctrL1WbForwards) += 1;
        rep.accepted = true;
        rep.l1Hit = true;
        rep.readyCycle = cycle + 1;
        return rep;
    }
    CacheResult r = _l1.access(cycle, req.addr, false);
    if (!r.accepted)
        return rep;
    rep.accepted = true;
    rep.l1Hit = r.hit;
    if (r.needsFill) {
        uint64_t done = l2Read(cycle + _cfg.l1.hitLatency, r.missAddr,
                               _cfg.l1.lineBytes);
        _l1.fillDone(r.missAddr, done);
        _l1.stats().at(_ctrL1LatencySum) += done - cycle;
        rep.readyCycle = done;
        _vecOwned.erase(req.addr & ~static_cast<uint64_t>(
            _cfg.l2.lineBytes - 1));
    } else {
        rep.readyCycle = r.readyCycle;
    }
    return rep;
}

MemReply
DecoupledHierarchy::vectorAccess(uint64_t cycle, const MemAccess &req)
{
    MemReply rep;
    if (!takeVectorPort(cycle)) {
        _l2.stats().at(_ctrL2VecPortConflicts) += 1;
        return rep;
    }

    uint64_t penalty = 0;
    uint64_t l2line = req.addr & ~static_cast<uint64_t>(
        _cfg.l2.lineBytes - 1);

    // Exclusive-bit coherence: a vector touch of an L1-resident line
    // pulls it out of the L1 before proceeding.
    if (_l1.probe(req.addr)) {
        _l1.invalidate(req.addr);
        _l2.stats().at(_ctrL2VecInvalidations) += 1;
        penalty = _cfg.invalidatePenalty;
        if (req.isWrite)
            _vecOwned.insert(l2line);
    }
    if (!req.isWrite || penalty == 0)
        _vecOwned.insert(l2line);

    uint64_t done = req.isWrite
        ? l2Write(cycle + penalty, req.addr, req.size)
        : l2Read(cycle + penalty, req.addr, req.size);

    rep.accepted = true;
    rep.l1Hit = false;          // never touches the L1
    rep.readyCycle = done;
    return rep;
}

MemReply
DecoupledHierarchy::access(uint64_t cycle, const MemAccess &req)
{
    return req.isVector ? vectorAccess(cycle, req)
                        : scalarAccess(cycle, req);
}

// ---------------------------------------------------------------------

std::unique_ptr<MemorySystem>
makeMemorySystem(MemModel model, const MemConfig &cfg)
{
    switch (model) {
      case MemModel::Perfect:
        return std::make_unique<PerfectMemory>();
      case MemModel::Conventional:
        return std::make_unique<ConventionalHierarchy>(cfg);
      case MemModel::Decoupled:
        return std::make_unique<DecoupledHierarchy>(cfg);
    }
    panic("unknown memory model");
}

} // namespace momsim::mem
