#include "mem/cache.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace momsim::mem
{

namespace
{

uint32_t
log2u(uint32_t v)
{
    uint32_t n = 0;
    while ((1u << n) < v)
        ++n;
    return n;
}

} // namespace

Cache::Cache(const CacheConfig &cfg)
    : _cfg(cfg),
      _lineMask(cfg.lineBytes - 1),
      _lineShift(log2u(cfg.lineBytes)),
      _numSets(cfg.sizeBytes / (cfg.lineBytes * cfg.ways)),
      _bankMask(isPow2(cfg.banks) ? cfg.banks - 1 : 0),
      _lines(static_cast<size_t>(_numSets) * cfg.ways),
      _mshrs(cfg.numMshrs),
      _wb(cfg.writeBufferEntries),
      _banks(cfg.banks),
      _stats(cfg.name)
{
    // Construction-time configuration validation is unconditional
    // (MOMSIM_ASSERT compiles away in Release, and a bad geometry here
    // would silently mis-index sets or alias freelist slots forever).
    if (!isPow2(cfg.lineBytes))
        panic("cache '" + cfg.name + "': line size must be a power of two");
    if (!isPow2(_numSets))
        panic("cache '" + cfg.name + "': set count must be a power of two");
    if (cfg.banks < 1)
        panic("cache '" + cfg.name + "': needs at least one bank");
    if (cfg.writeBufferEntries > 0xffff)
        panic("cache '" + cfg.name + "': freelist indices are 16-bit");

    _wbLive.reserve(cfg.writeBufferEntries);
    _wbFree.reserve(cfg.writeBufferEntries);
    for (uint32_t i = cfg.writeBufferEntries; i > 0; --i)
        _wbFree.push_back(static_cast<uint16_t>(i - 1));

    _ctrAccesses = _stats.id("accesses");
    _ctrHits = _stats.id("hits");
    _ctrMisses = _stats.id("misses");
    _ctrLatencySum = _stats.id("latencySum");
    _ctrStoreAccesses = _stats.id("storeAccesses");
    _ctrPortConflicts = _stats.id("portConflicts");
    _ctrBankConflicts = _stats.id("bankConflicts");
    _ctrQueueCycles = _stats.id("queueCycles");
    _ctrDelayedHits = _stats.id("delayedHits");
    _ctrMshrCoalesced = _stats.id("mshrCoalesced");
    _ctrWbCoalesced = _stats.id("wbCoalesced");
    _ctrWbInserts = _stats.id("wbInserts");
    _ctrMshrFull = _stats.id("mshrFull");
    _ctrMshrWait = _stats.id("mshrWait");
}

Cache::Line *
Cache::findLine(uint64_t addr)
{
    uint64_t tag = lineAddr(addr);
    Line *set = &_lines[static_cast<size_t>(setIndex(addr)) * _cfg.ways];
    for (uint32_t w = 0; w < _cfg.ways; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(uint64_t addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

Cache::Line &
Cache::victimLine(uint64_t addr)
{
    Line *set = &_lines[static_cast<size_t>(setIndex(addr)) * _cfg.ways];
    Line *victim = &set[0];
    for (uint32_t w = 0; w < _cfg.ways; ++w) {
        if (!set[w].valid)
            return set[w];
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    return *victim;
}

Cache::Mshr *
Cache::findMshr(uint64_t line)
{
    // The common case on the hit path: nothing outstanding, no scan.
    if (_mshrValidCount == 0)
        return nullptr;
    for (auto &m : _mshrs) {
        if (m.valid && m.lineAddr == line)
            return &m;
    }
    return nullptr;
}

const Cache::Mshr *
Cache::findMshr(uint64_t line) const
{
    return const_cast<Cache *>(this)->findMshr(line);
}

Cache::Mshr *
Cache::freeMshr(uint64_t cycle)
{
    for (auto &m : _mshrs) {
        // Lazily retire completed misses (at most one: the walk stops
        // at the first usable slot — see the header note on why the
        // one-at-a-time pattern is observable and must be preserved).
        if (m.valid && m.filled && m.readyCycle <= cycle) {
            m.valid = false;
            --_mshrValidCount;
        }
        if (!m.valid)
            return &m;
    }
    return nullptr;
}

void
Cache::wbPrune(uint64_t cycle) const
{
    // Nothing can have drained yet: the walk would keep every entry in
    // place, so skipping it entirely is behavior-identical.
    if (cycle < _wbNextFree)
        return;
    // Liveness is membership in _wbLive; the entry's valid flag is left
    // alone so this lazy recycling can run from const probes.
    size_t keep = 0;
    uint64_t nextFree = ~0ull;
    for (uint16_t idx : _wbLive) {
        if (_wb[idx].freeCycle <= cycle) {
            _wbFree.push_back(idx);
        } else {
            nextFree = std::min(nextFree, _wb[idx].freeCycle);
            _wbLive[keep++] = idx;
        }
    }
    _wbLive.resize(keep);
    _wbNextFree = nextFree;
}

bool
Cache::takePort(uint64_t cycle)
{
    if (_portCycle != cycle) {
        _portCycle = cycle;
        _portsUsed = 0;
    }
    if (_portsUsed >= _cfg.portsPerCycle)
        return false;
    ++_portsUsed;
    return true;
}

bool
Cache::bankAvailable(uint32_t bank, uint64_t cycle) const
{
    const Bank &b = _banks[bank];
    if (b.busyUntil > cycle)
        return false;
    if (b.curCycle == cycle && b.used >= _cfg.bankPumps)
        return false;
    return true;
}

void
Cache::useBank(uint32_t bank, uint64_t cycle, uint32_t occupancy)
{
    Bank &b = _banks[bank];
    if (b.curCycle != cycle) {
        b.curCycle = cycle;
        b.used = 0;
    }
    ++b.used;
    if (occupancy > 1)
        b.busyUntil = cycle + occupancy;
}

CacheResult
Cache::lookup(uint64_t cycle, uint64_t addr, bool isWrite)
{
    CacheResult res;
    uint64_t line = lineAddr(addr);
    Line *hit = findLine(addr);

    // Write-through stores complete into the write buffer whether the
    // line is present or not; they are not architectural misses and are
    // kept out of the (load) hit-rate statistics, as the paper's L1
    // numbers are.
    bool wtStore = isWrite && !_cfg.writeBack;

    if (hit) {
        hit->lastUse = ++_useTick;
        if (isWrite && _cfg.writeBack)
            hit->dirty = true;
        res.accepted = true;
        res.hit = true;
        res.readyCycle = cycle + _cfg.hitLatency;
        // The line may have been installed eagerly by an in-flight miss;
        // a "delayed hit" must wait for that fill to land.
        if (Mshr *pending = findMshr(line)) {
            if (pending->readyCycle > res.readyCycle) {
                res.readyCycle = pending->readyCycle;
                _stats.at(_ctrDelayedHits) += 1;
            }
        }
        if (wtStore) {
            _stats.at(_ctrStoreAccesses) += 1;
        } else {
            _stats.at(_ctrAccesses) += 1;
            _stats.at(_ctrHits) += 1;
            _stats.at(_ctrLatencySum) += res.readyCycle - cycle;
        }
        return res;
    }

    // Write-through caches do not allocate on store misses; the store
    // proceeds to the write buffer (handled by the hierarchy glue).
    if (wtStore) {
        res.accepted = true;
        res.hit = false;
        res.readyCycle = cycle + _cfg.hitLatency;
        _stats.at(_ctrStoreAccesses) += 1;
        return res;
    }

    // Coalesce with an outstanding miss to the same line. A completed
    // MSHR whose line has since been evicted must NOT satisfy new
    // accesses (it carries no data any more): retire it and fall
    // through to a fresh allocation.
    if (Mshr *m = findMshr(line)) {
        if (!m->filled || m->readyCycle > cycle) {
            res.accepted = true;
            res.hit = false;
            res.readyCycle = std::max(m->readyCycle,
                                      cycle + _cfg.hitLatency);
            _stats.at(_ctrAccesses) += 1;
            _stats.at(_ctrMisses) += 1;
            _stats.at(_ctrMshrCoalesced) += 1;
            _stats.at(_ctrLatencySum) += res.readyCycle - cycle;
            return res;
        }
        m->valid = false;
        --_mshrValidCount;
    }

    Mshr *m = freeMshr(cycle);
    if (!m) {
        _stats.at(_ctrMshrFull) += 1;
        return res;     // structural stall; retry
    }

    // Allocate eagerly; readyCycle carries the latency.
    Line &victim = victimLine(addr);
    if (victim.valid && victim.dirty) {
        res.dirtyEviction = true;
        res.victimAddr = victim.tag;
    }
    victim.valid = true;
    victim.dirty = isWrite && _cfg.writeBack;
    victim.tag = line;
    victim.lastUse = ++_useTick;

    m->valid = true;
    ++_mshrValidCount;
    m->filled = false;
    m->lineAddr = line;
    m->readyCycle = 0;

    res.accepted = true;
    res.hit = false;
    res.needsFill = true;
    res.missAddr = line;
    res.readyCycle = 0;         // caller sets it after scheduling the fill
    _stats.at(_ctrAccesses) += 1;
    _stats.at(_ctrMisses) += 1;
    return res;
}

CacheResult
Cache::access(uint64_t cycle, uint64_t addr, bool isWrite)
{
    if (!takePort(cycle)) {
        _stats.at(_ctrPortConflicts) += 1;
        return {};
    }

    uint32_t bank = bankIndexOf(addr);
    if (!bankAvailable(bank, cycle)) {
        _stats.at(_ctrBankConflicts) += 1;
        return {};
    }

    CacheResult res = lookup(cycle, addr, isWrite);
    if (res.accepted)
        useBank(bank, cycle, 1);
    return res;
}

CacheResult
Cache::accessBlocking(uint64_t cycle, uint64_t addr, bool isWrite,
                      uint32_t bytes)
{
    uint32_t bank = bankIndexOf(addr);

    uint64_t start = cycle;
    const Bank &b = _banks[bank];
    start = std::max(start, b.busyUntil);
    if (b.curCycle == start && b.used >= _cfg.bankPumps)
        ++start;

    // If every MSHR is pending, wait for the earliest one to retire.
    if (!findLine(addr) && !(isWrite && !_cfg.writeBack) &&
        !findMshr(lineAddr(addr))) {
        if (!freeMshr(start)) {
            uint64_t earliest = ~0ull;
            for (const auto &m : _mshrs) {
                if (m.valid && m.filled)
                    earliest = std::min(earliest, m.readyCycle);
            }
            if (earliest != ~0ull)
                start = std::max(start, earliest);
            _stats.at(_ctrMshrWait) += 1;
        }
    }

    CacheResult res = lookup(start, addr, isWrite);
    MOMSIM_ASSERT(res.accepted, "blocking access could not be admitted");
    uint32_t occ = std::max(1u, bytes / _cfg.fillBytesPerCycle);
    useBank(bank, start, occ);
    // Express the queueing delay in the result.
    if (res.readyCycle != 0 && start > cycle)
        _stats.at(_ctrQueueCycles) += start - cycle;
    return res;
}

void
Cache::fillDone(uint64_t line, uint64_t readyCycle)
{
    Mshr *m = findMshr(line);
    MOMSIM_ASSERT(m != nullptr, "fill for unknown miss");
    m->readyCycle = readyCycle;
    m->filled = true;
}

bool
Cache::probe(uint64_t addr) const
{
    return findLine(addr) != nullptr;
}

bool
Cache::invalidate(uint64_t addr)
{
    if (Line *l = findLine(addr)) {
        l->valid = false;
        l->dirty = false;
        return true;
    }
    return false;
}

bool
Cache::wbProbe(uint64_t cycle, uint64_t addr) const
{
    wbPrune(cycle);
    if (!_wbFree.empty())
        return true;    // a slot is available
    uint64_t line = lineAddr(addr);
    for (uint16_t idx : _wbLive) {
        if (_wb[idx].lineAddr == line)
            return true;    // coalesces
    }
    return false;
}

void
Cache::wbInsert(uint64_t cycle, uint64_t addr, uint64_t drainDone,
                bool *coalesced)
{
    wbPrune(cycle);
    uint64_t line = lineAddr(addr);
    for (uint16_t idx : _wbLive) {
        WbEntry &e = _wb[idx];
        if (e.lineAddr == line) {
            // Coalesced into a resident entry: no new drain traffic.
            if (coalesced)
                *coalesced = true;
            _stats.at(_ctrWbCoalesced) += 1;
            return;
        }
    }
    if (_wbFree.empty())
        panic("wbInsert without prior wbProbe success");
    uint16_t idx = _wbFree.back();
    _wbFree.pop_back();
    _wbLive.push_back(idx);
    WbEntry &e = _wb[idx];
    e.valid = true;
    e.lineAddr = line;
    e.freeCycle = drainDone;
    _wbNextFree = std::min(_wbNextFree, drainDone);
    if (coalesced)
        *coalesced = false;
    _stats.at(_ctrWbInserts) += 1;
}

bool
Cache::wbHit(uint64_t cycle, uint64_t addr) const
{
    uint64_t line = lineAddr(addr);
    for (uint16_t idx : _wbLive) {
        const WbEntry &e = _wb[idx];
        if (e.freeCycle > cycle && e.lineAddr == line)
            return true;
    }
    return false;
}

uint64_t
Cache::nextEventCycle(uint64_t cycle) const
{
    uint64_t next = ~0ull;
    for (const Bank &b : _banks) {
        if (b.busyUntil > cycle)
            next = std::min(next, b.busyUntil);
    }
    if (_mshrValidCount > 0) {
        for (const auto &m : _mshrs) {
            if (m.valid && m.filled && m.readyCycle > cycle)
                next = std::min(next, m.readyCycle);
        }
    }
    for (uint16_t idx : _wbLive) {
        if (_wb[idx].freeCycle > cycle)
            next = std::min(next, _wb[idx].freeCycle);
    }
    return next;
}

void
Cache::reset()
{
    for (auto &l : _lines)
        l = Line{};
    for (auto &m : _mshrs)
        m = Mshr{};
    for (auto &e : _wb)
        e = WbEntry{};
    for (auto &b : _banks)
        b = Bank{};
    _mshrValidCount = 0;
    _wbLive.clear();
    _wbFree.clear();
    for (uint32_t i = _cfg.writeBufferEntries; i > 0; --i)
        _wbFree.push_back(static_cast<uint16_t>(i - 1));
    _wbNextFree = ~0ull;
    _portCycle = ~0ull;
    _portsUsed = 0;
    _useTick = 0;
    _stats.clear();
}

} // namespace momsim::mem
