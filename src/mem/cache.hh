/**
 * @file
 * Generic set-associative cache timing model with banked access, MSHRs
 * and (optionally) a coalescing write buffer — the building block for the
 * paper's L1 data cache, instruction cache and unified L2.
 *
 * This is a timestamp-resource model: structures do not queue requests,
 * they either accept an access (returning its completion cycle) or reject
 * it (structural hazard — bank busy, MSHRs full, write buffer full), in
 * which case the core retries on a later cycle, exactly as a stalled
 * load/store unit would.
 *
 * Hot-path layout: bank/set selection is shift-and-mask (power-of-two
 * bank counts are masked, anything else falls back to modulo); the
 * write-buffer pool is managed through live/free index lists so its
 * scans touch only occupied entries; and the MSHR probe that runs on
 * every lookup short-circuits on a valid-entry count — zero (no miss
 * outstanding) on the overwhelmingly common hit path. The MSHR pool
 * itself keeps the original lazy one-at-a-time retirement walk: which
 * completed MSHRs are still visible at a given call is observable
 * behavior (see freeMshr). nextEventCycle() exposes the earliest cycle
 * any of these structures changes state, so the core's idle
 * fast-forward can skip quiescent stretches without overshooting a
 * memory event.
 */

#ifndef MOMSIM_MEM_CACHE_HH
#define MOMSIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace momsim::mem
{

struct CacheConfig
{
    std::string name = "cache";
    uint32_t sizeBytes = 32 * 1024;
    uint32_t lineBytes = 32;
    uint32_t ways = 1;
    uint32_t banks = 8;
    uint32_t bankShift = 3;         ///< bank = (addr >> shift) % banks
    uint32_t hitLatency = 1;
    uint32_t numMshrs = 8;
    uint32_t writeBufferEntries = 8;
    bool writeBack = false;         ///< false => write-through, no allocate
    uint32_t portsPerCycle = 4;     ///< accesses accepted per cycle
    uint32_t bankPumps = 1;         ///< accesses per bank per cycle
                                    ///  (2 models a double-pumped array)
    uint32_t fillBytesPerCycle = 16; ///< bank occupancy for line transfers
};

/** Outcome of a cache access attempt. */
struct CacheResult
{
    bool accepted = false;      ///< false => structural hazard, retry
    bool hit = false;
    bool dirtyEviction = false; ///< write-back caches only
    uint64_t victimAddr = 0;    ///< line address of the dirty victim
    uint64_t readyCycle = 0;
    uint64_t missAddr = 0;      ///< line address to fetch from next level
    bool needsFill = false;     ///< true => caller must schedule the fill
};

/**
 * Tag array + timing resources. The cache does not itself talk to the
 * next level: on a miss it reports needsFill and the hierarchy glue
 * schedules the lower-level access and calls fillDone() with the
 * completion time. This keeps L1/L2/DRAM composition explicit.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Try to perform an access.
     * @param cycle   current cycle
     * @param addr    byte address
     * @param isWrite store or write-back traffic
     * @return see CacheResult; if needsFill, the caller must complete the
     *         miss with fillDone(missAddr, readyCycle).
     */
    CacheResult access(uint64_t cycle, uint64_t addr, bool isWrite);

    /**
     * Internal-traffic variant (fills and drains from an upper level):
     * never rejects; instead waits for the bank / an MSHR, modelling the
     * queue in front of the array. @p bytes sets the bank occupancy of
     * the transfer.
     */
    CacheResult accessBlocking(uint64_t cycle, uint64_t addr, bool isWrite,
                               uint32_t bytes);

    /** Complete an outstanding miss: install the line, free the MSHR. */
    void fillDone(uint64_t lineAddr, uint64_t readyCycle);

    /** True if the line is present (used by coherence glue). */
    bool probe(uint64_t addr) const;

    /** Invalidate a line if present; returns true if it was. */
    bool invalidate(uint64_t addr);

    /**
     * Write-buffer admission for write-through caches. Coalesces on line
     * address. Returns false when the buffer is full (caller stalls).
     * @param drainDone completion time of the drain to the next level,
     *        supplied by the hierarchy glue via a callback-free contract:
     *        callers first ask wbProbe() and then commit with wbInsert().
     * Cycles must be non-decreasing across calls (drained entries are
     * lazily recycled against the most recent cycle seen).
     */
    bool wbProbe(uint64_t cycle, uint64_t addr) const;
    void wbInsert(uint64_t cycle, uint64_t addr, uint64_t drainDone,
                  bool *coalesced = nullptr);
    /** True if a pending write-buffer entry covers this line. */
    bool wbHit(uint64_t cycle, uint64_t addr) const;

    /**
     * Earliest cycle > @p cycle at which this cache's structural state
     * changes on its own (a bank frees, an outstanding miss completes,
     * a write-buffer entry drains); ~0ull when nothing is pending. Core
     * fast-forward never jumps past this.
     */
    uint64_t nextEventCycle(uint64_t cycle) const;

    StatGroup &stats() { return _stats; }
    const CacheConfig &config() const { return _cfg; }

    double hitRate() const { return _stats.ratio("hits", "accesses"); }

    double
    avgLatency() const
    {
        return _stats.ratio("latencySum", "accesses");
    }

    void reset();

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lastUse = 0;
    };

    struct Mshr
    {
        uint64_t lineAddr = 0;
        uint64_t readyCycle = 0;
        bool valid = false;
        bool filled = false;
    };

    struct WbEntry
    {
        uint64_t lineAddr = 0;
        uint64_t freeCycle = 0;     ///< when the entry drains
        bool valid = false;
    };

    struct Bank
    {
        uint64_t busyUntil = 0;
        uint64_t curCycle = ~0ull;
        uint32_t used = 0;
    };

    uint64_t lineAddr(uint64_t addr) const { return addr & ~_lineMask; }

    uint32_t
    setIndex(uint64_t addr) const
    {
        return static_cast<uint32_t>((addr >> _lineShift) & (_numSets - 1));
    }

    /** Bank selection: mask when the bank count is a power of two. */
    uint32_t
    bankIndexOf(uint64_t addr) const
    {
        uint64_t sliced = addr >> _cfg.bankShift;
        return static_cast<uint32_t>(_bankMask ? (sliced & _bankMask)
                                               : (sliced % _cfg.banks));
    }

    Line *findLine(uint64_t addr);
    const Line *findLine(uint64_t addr) const;
    Line &victimLine(uint64_t addr);

    Mshr *findMshr(uint64_t lineAddr);
    const Mshr *findMshr(uint64_t lineAddr) const;
    /**
     * Lazy index-ordered retire-and-take walk. Deliberately retires AT
     * MOST one completed miss per call (the returned slot): completed
     * MSHRs staying visible to findMshr until a walk reaches them is
     * observable behavior (L2 calls arrive at non-monotonic cycles and
     * may still coalesce with them), so an eager retire-all would
     * change simulation results.
     */
    Mshr *freeMshr(uint64_t cycle);

    /** Recycle write-buffer entries whose drain completed. */
    void wbPrune(uint64_t cycle) const;

    bool takePort(uint64_t cycle);
    bool bankAvailable(uint32_t bank, uint64_t cycle) const;
    void useBank(uint32_t bank, uint64_t cycle, uint32_t occupancy);
    CacheResult lookup(uint64_t cycle, uint64_t addr, bool isWrite);

    CacheConfig _cfg;
    uint64_t _lineMask;
    uint32_t _lineShift;
    uint32_t _numSets;
    uint64_t _bankMask;                 ///< banks-1 if pow2, else 0
    std::vector<Line> _lines;           ///< sets x ways
    std::vector<Mshr> _mshrs;
    std::vector<WbEntry> _wb;
    std::vector<Bank> _banks;
    /**
     * Number of valid MSHRs; the findMshr scan (on every lookup, hits
     * included) short-circuits to "none" when zero — the common case on
     * the hit path.
     */
    uint32_t _mshrValidCount = 0;
    // Write-buffer index freelists: scans touch only occupied entries.
    // Mutable because entries expire by time, so even const probes
    // recycle lazily. Safe (unlike for MSHRs) because every wb call
    // site passes the monotonically advancing core cycle and every
    // predicate rechecks freeCycle explicitly.
    mutable std::vector<uint16_t> _wbLive;
    mutable std::vector<uint16_t> _wbFree;
    /**
     * Exact earliest freeCycle across live write-buffer entries (~0ull
     * when none are draining): wbPrune's walk is skipped outright while
     * the bound is in the future, since a prune that can free nothing
     * is a no-op by construction.
     */
    mutable uint64_t _wbNextFree = ~0ull;
    uint64_t _portCycle = ~0ull;
    uint32_t _portsUsed = 0;
    uint64_t _useTick = 0;
    StatGroup _stats;

    // Hot-path counters, cached once (StatGroup references are stable).
    StatId _ctrAccesses = 0;
    StatId _ctrHits = 0;
    StatId _ctrMisses = 0;
    StatId _ctrLatencySum = 0;
    StatId _ctrStoreAccesses = 0;
    StatId _ctrPortConflicts = 0;
    StatId _ctrBankConflicts = 0;
    StatId _ctrQueueCycles = 0;
    StatId _ctrDelayedHits = 0;
    StatId _ctrMshrCoalesced = 0;
    StatId _ctrWbCoalesced = 0;
    StatId _ctrWbInserts = 0;
    StatId _ctrMshrFull = 0;
    StatId _ctrMshrWait = 0;
};

} // namespace momsim::mem

#endif // MOMSIM_MEM_CACHE_HH
