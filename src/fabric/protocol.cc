#include "fabric/protocol.hh"

#include "common/logging.hh"
#include "driver/result_store.hh"
#include "svc/sim_request.hh"
#include "svc/sim_response.hh"

namespace momsim::fabric
{

namespace
{

/** Strictness shared with SimRequest: an unknown field is a protocol
 *  error, never silently ignored. */
bool
rejectUnknownFields(const svc::JsonValue &doc,
                    std::initializer_list<const char *> allowed,
                    std::string &error)
{
    for (const auto &field : doc.fields) {
        bool known = false;
        for (const char *name : allowed) {
            if (field.first == name) {
                known = true;
                break;
            }
        }
        if (!known) {
            error = strfmt("unknown field \"%s\"", field.first.c_str());
            return false;
        }
    }
    return true;
}

bool
requireVersion(const svc::JsonValue &doc, std::string &error)
{
    const svc::JsonValue *v = doc.field("fabricVersion");
    int version = 0;
    if (!v || !v->toInt(version)) {
        error = "missing or non-integer \"fabricVersion\"";
        return false;
    }
    if (version != kFabricSchemaVersion) {
        error = strfmt("unsupported fabricVersion %d (want %d)", version,
                       kFabricSchemaVersion);
        return false;
    }
    return true;
}

bool
stringField(const svc::JsonValue &doc, const char *name, bool required,
            std::string &out, std::string &error)
{
    const svc::JsonValue *v = doc.field(name);
    if (!v) {
        if (required) {
            error = strfmt("missing \"%s\"", name);
            return false;
        }
        out.clear();
        return true;
    }
    if (!v->isString()) {
        error = strfmt("\"%s\" must be a string", name);
        return false;
    }
    out = v->text;
    return true;
}

} // namespace

std::string
fabricVersionString()
{
    return strfmt("fabric%d/req%d/resp%d/rows%d/sim%d",
                  kFabricSchemaVersion, svc::kSimRequestSchemaVersion,
                  svc::kSimResponseSchemaVersion,
                  driver::kResultSchemaVersion, driver::kSimCodeVersion);
}

std::string
kindOf(const svc::JsonValue &doc)
{
    if (!doc.isObject())
        return "";
    const svc::JsonValue *kind = doc.field("kind");
    if (!kind || !kind->isString())
        return "";
    return kind->text;
}

std::string
pingToJson(const std::string &id)
{
    std::string out = "{\"kind\":\"ping\",\"fabricVersion\":" +
                      std::to_string(kFabricSchemaVersion);
    if (!id.empty())
        out += ",\"id\":" + svc::jsonQuote(id);
    out += "}";
    return out;
}

std::string
pongToJson(const Pong &pong)
{
    std::string out = "{\"kind\":\"pong\",\"fabricVersion\":" +
                      std::to_string(kFabricSchemaVersion);
    if (!pong.id.empty())
        out += ",\"id\":" + svc::jsonQuote(pong.id);
    out += ",\"version\":" + svc::jsonQuote(pong.version);
    out += strfmt(",\"uptimeMs\":%llu,\"inFlight\":%d,"
                  "\"pendingPoints\":%ld",
                  static_cast<unsigned long long>(pong.uptimeMs),
                  pong.inFlight, pong.pendingPoints);
    out += strfmt(",\"pointsSimulated\":%llu,\"pointsDeduped\":%llu,"
                  "\"memCacheHits\":%llu,\"diskCacheHits\":%llu}",
                  static_cast<unsigned long long>(pong.pointsSimulated),
                  static_cast<unsigned long long>(pong.pointsDeduped),
                  static_cast<unsigned long long>(pong.memCacheHits),
                  static_cast<unsigned long long>(pong.diskCacheHits));
    return out;
}

bool
parsePong(const svc::JsonValue &doc, Pong &out, std::string &error)
{
    if (!requireVersion(doc, error))
        return false;
    if (!rejectUnknownFields(doc,
                             { "kind", "fabricVersion", "id", "version",
                               "uptimeMs", "inFlight", "pendingPoints",
                               "pointsSimulated", "pointsDeduped",
                               "memCacheHits", "diskCacheHits" },
                             error))
        return false;
    if (!stringField(doc, "id", false, out.id, error) ||
        !stringField(doc, "version", true, out.version, error))
        return false;
    const svc::JsonValue *v = doc.field("uptimeMs");
    if (!v || !v->toU64(out.uptimeMs)) {
        error = "missing or bad \"uptimeMs\"";
        return false;
    }
    v = doc.field("inFlight");
    if (!v || !v->toInt(out.inFlight)) {
        error = "missing or bad \"inFlight\"";
        return false;
    }
    v = doc.field("pendingPoints");
    uint64_t pending = 0;
    if (!v || !v->toU64(pending)) {
        error = "missing or bad \"pendingPoints\"";
        return false;
    }
    out.pendingPoints = static_cast<long>(pending);
    const struct
    {
        const char *name;
        uint64_t &dst;
    } gauges[] = {
        { "pointsSimulated", out.pointsSimulated },
        { "pointsDeduped", out.pointsDeduped },
        { "memCacheHits", out.memCacheHits },
        { "diskCacheHits", out.diskCacheHits },
    };
    for (const auto &g : gauges) {
        v = doc.field(g.name);
        if (!v || !v->toU64(g.dst)) {
            error = strfmt("missing or bad \"%s\"", g.name);
            return false;
        }
    }
    return true;
}

std::string
shardRunToJson(const ShardRun &run)
{
    std::string out = "{\"kind\":\"shard_run\",\"fabricVersion\":" +
                      std::to_string(kFabricSchemaVersion);
    out += ",\"id\":" + svc::jsonQuote(run.id);
    out += ",\"sweep\":" + svc::jsonQuote(run.sweepJson);
    out += ",\"points\":[";
    for (size_t i = 0; i < run.points.size(); ++i) {
        if (i)
            out += ",";
        out += svc::jsonQuote(run.points[i]);
    }
    out += "]}";
    return out;
}

bool
parseShardRun(const svc::JsonValue &doc, ShardRun &out,
              std::string &error)
{
    if (!requireVersion(doc, error))
        return false;
    if (!rejectUnknownFields(
            doc, { "kind", "fabricVersion", "id", "sweep", "points" },
            error))
        return false;
    if (!stringField(doc, "id", true, out.id, error) ||
        !stringField(doc, "sweep", true, out.sweepJson, error))
        return false;
    const svc::JsonValue *points = doc.field("points");
    if (!points || !points->isArray()) {
        error = "missing or non-array \"points\"";
        return false;
    }
    out.points.clear();
    for (const svc::JsonValue &item : points->items) {
        if (!item.isString() || item.text.empty()) {
            error = "\"points\" entries must be non-empty strings";
            return false;
        }
        out.points.push_back(item.text);
    }
    if (out.points.empty()) {
        error = "\"points\" must name at least one point";
        return false;
    }
    return true;
}

std::string
rowToJson(const RowMsg &msg)
{
    std::string out = "{\"kind\":\"row\",\"fabricVersion\":" +
                      std::to_string(kFabricSchemaVersion);
    out += ",\"id\":" + svc::jsonQuote(msg.id);
    out += ",\"point\":" + svc::jsonQuote(msg.point);
    out += ",\"key\":" + svc::jsonQuote(msg.key);
    out += ",\"row\":" + svc::jsonQuote(msg.rowLine);
    out += "}";
    return out;
}

bool
parseRow(const svc::JsonValue &doc, RowMsg &out, std::string &error)
{
    if (!requireVersion(doc, error))
        return false;
    if (!rejectUnknownFields(
            doc, { "kind", "fabricVersion", "id", "point", "key", "row" },
            error))
        return false;
    return stringField(doc, "id", true, out.id, error) &&
           stringField(doc, "point", true, out.point, error) &&
           stringField(doc, "key", true, out.key, error) &&
           stringField(doc, "row", true, out.rowLine, error);
}

std::string
shardDoneToJson(const ShardDone &done)
{
    std::string out = "{\"kind\":\"shard_done\",\"fabricVersion\":" +
                      std::to_string(kFabricSchemaVersion);
    out += ",\"id\":" + svc::jsonQuote(done.id);
    if (done.ok) {
        out += strfmt(",\"ok\":true,\"points\":%llu,\"cached\":%llu,"
                      "\"simulated\":%llu}",
                      static_cast<unsigned long long>(done.points),
                      static_cast<unsigned long long>(done.cached),
                      static_cast<unsigned long long>(done.simulated));
    } else {
        out += ",\"ok\":false,\"error\":{\"code\":" +
               svc::jsonQuote(done.errorCode) +
               ",\"message\":" + svc::jsonQuote(done.errorMessage) + "}}";
    }
    return out;
}

bool
parseShardDone(const svc::JsonValue &doc, ShardDone &out,
               std::string &error)
{
    if (!requireVersion(doc, error))
        return false;
    if (!rejectUnknownFields(doc,
                             { "kind", "fabricVersion", "id", "ok",
                               "points", "cached", "simulated", "error" },
                             error))
        return false;
    if (!stringField(doc, "id", true, out.id, error))
        return false;
    const svc::JsonValue *ok = doc.field("ok");
    if (!ok || !ok->isBool()) {
        error = "missing or non-boolean \"ok\"";
        return false;
    }
    out.ok = ok->boolean;
    if (out.ok) {
        const svc::JsonValue *v = doc.field("points");
        if (!v || !v->toU64(out.points)) {
            error = "missing or bad \"points\"";
            return false;
        }
        v = doc.field("cached");
        if (!v || !v->toU64(out.cached)) {
            error = "missing or bad \"cached\"";
            return false;
        }
        v = doc.field("simulated");
        if (!v || !v->toU64(out.simulated)) {
            error = "missing or bad \"simulated\"";
            return false;
        }
        return true;
    }
    const svc::JsonValue *err = doc.field("error");
    if (!err || !err->isObject()) {
        error = "failed shard_done must carry an \"error\" object";
        return false;
    }
    return stringField(*err, "code", true, out.errorCode, error) &&
           stringField(*err, "message", true, out.errorMessage, error);
}

std::string
errorToJson(const std::string &id, const std::string &code,
            const std::string &message)
{
    std::string out = "{\"kind\":\"error\",\"fabricVersion\":" +
                      std::to_string(kFabricSchemaVersion);
    if (!id.empty())
        out += ",\"id\":" + svc::jsonQuote(id);
    out += ",\"error\":{\"code\":" + svc::jsonQuote(code) +
           ",\"message\":" + svc::jsonQuote(message) + "}}";
    return out;
}

} // namespace momsim::fabric
