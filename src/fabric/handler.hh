/**
 * @file
 * WorkerHandler — the fabric side of a `momsim serve` / `momsim batch`
 * worker. It plugs into the ResponseSequencer's rawSubmit hook: every
 * input line is offered here first; lines that are not fabric messages
 * (no top-level "kind") fall through to the normal SimRequest path, so
 * one listener serves plain clients and coordinators alike.
 */

#ifndef MOMSIM_FABRIC_HANDLER_HH
#define MOMSIM_FABRIC_HANDLER_HH

#include <atomic>
#include <chrono>
#include <functional>
#include <string>

namespace momsim::svc
{
class SimService;
struct JsonValue;
}

namespace momsim::fabric
{

class WorkerHandler
{
  public:
    explicit WorkerHandler(svc::SimService &service);

    /**
     * Offer @p line to the fabric protocol. Returns false when the
     * line is not a fabric message (caller should treat it as a plain
     * SimRequest). Otherwise handles it: streams any per-row output
     * through @p chunk and readies the terminal reply in @p finalLine.
     * Thread-safe; shard_run execution serializes inside SimService.
     */
    bool handle(const std::string &line,
                const std::function<void(std::string)> &chunk,
                std::string &finalLine);

    /** Dealt sweep points accepted but not yet streamed back. */
    long pendingPoints() const
    {
        return _pendingPoints.load(std::memory_order_relaxed);
    }

  private:
    std::string handlePing(const std::string &id) const;
    std::string handleShardRun(const svc::JsonValue &doc,
                               const std::function<void(std::string)> &chunk);

    svc::SimService &_service;
    std::chrono::steady_clock::time_point _start;
    std::atomic<long> _pendingPoints{ 0 };
};

} // namespace momsim::fabric

#endif // MOMSIM_FABRIC_HANDLER_HH
