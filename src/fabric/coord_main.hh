/**
 * @file
 * `momsim coord` — the distributed-sweep coordinator. See
 * coord_main.cc for the full story; the entry point takes the argv
 * tail after the subcommand name, like runServe/runClient.
 */

#ifndef MOMSIM_FABRIC_COORD_MAIN_HH
#define MOMSIM_FABRIC_COORD_MAIN_HH

namespace momsim::fabric
{

int runCoord(int argc, char **argv);

} // namespace momsim::fabric

#endif // MOMSIM_FABRIC_COORD_MAIN_HH
