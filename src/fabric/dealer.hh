/**
 * @file
 * Dealer — the coordinator's fault-tolerant work ledger.
 *
 * The dealer owns every to-simulate point of a sweep and hands them to
 * worker threads in cost-balanced deals: the initial partition is the
 * same LPT deal (dealByCost) the in-process shard planner uses, so a
 * healthy fleet gets exactly the shards `--shard I/N` would. From
 * there it is a state machine built for failure:
 *
 *   Assigned --claim()--> Claimed --complete()--> Done
 *       ^                    |
 *       +------ fail() ------+   (re-dealt to the next idle claimer)
 *
 * complete() is idempotent — a point re-dealt after a presumed-dead
 * worker's row later arrives anyway just completes once; the duplicate
 * is harmless, mirroring the content-addressed store's last-wins rows.
 * When every worker has failed with work remaining, claim() unblocks
 * everywhere and failed() reports the sweep cannot finish.
 */

#ifndef MOMSIM_FABRIC_DEALER_HH
#define MOMSIM_FABRIC_DEALER_HH

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hh"

namespace momsim::fabric
{

/** One to-simulate sweep point, as the dealer tracks it. */
struct DealPoint
{
    std::string id;     ///< canonical point id (spec.canonicalId())
    std::string key;    ///< result-cache key, for row verification
    double cost = 1.0;  ///< planner cost estimate (specCost)
};

class Dealer
{
  public:
    /** Deal @p points across @p workerCount initial queues by LPT. */
    Dealer(std::vector<DealPoint> points, int workerCount);

    /**
     * Block until work is available for @p worker, then claim it: the
     * worker's remaining initial deal plus anything re-dealt from
     * failed workers. Returns an empty vector when no work will ever
     * come — the sweep is done(), failed(), or this worker was
     * fail()ed by its own link thread.
     */
    std::vector<DealPoint> claim(int worker);

    /** Mark @p id finished. Returns false on a duplicate (already
     *  completed via another worker) — harmless, just ignored. */
    bool complete(const std::string &id);

    /**
     * Mark @p worker dead and re-deal its unfinished points (claimed
     * and still-queued alike) to whoever claims next. Returns how many
     * points went back on the table. Idempotent.
     */
    size_t fail(int worker);

    bool done() const;          ///< every point completed
    bool failed() const;        ///< all workers dead, work remaining
    size_t remaining() const;   ///< points not yet completed
    size_t redealCount() const; ///< points ever re-dealt by fail()
    int liveWorkers() const;

  private:
    enum class State { Assigned, Claimed, Done };

    struct Entry
    {
        DealPoint point;
        State state = State::Assigned;
        int owner = -1;         ///< claiming worker (Claimed only)
    };

    bool terminalLocked(int worker) const REQUIRES(_mutex);

    mutable momsim::Mutex _mutex;
    momsim::CondVar _cv;
    std::vector<Entry> _entries GUARDED_BY(_mutex);
    std::unordered_map<std::string, size_t> _byId GUARDED_BY(_mutex);
    /** Per-worker LPT deal. */
    std::vector<std::deque<size_t>> _initial GUARDED_BY(_mutex);
    /** Re-dealt, unclaimed. */
    std::deque<size_t> _requeued GUARDED_BY(_mutex);
    std::vector<bool> _dead GUARDED_BY(_mutex);
    size_t _remaining GUARDED_BY(_mutex) = 0;
    size_t _redealt GUARDED_BY(_mutex) = 0;
};

} // namespace momsim::fabric

#endif // MOMSIM_FABRIC_DEALER_HH
