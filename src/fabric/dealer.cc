#include "fabric/dealer.hh"

#include "common/logging.hh"
#include "driver/result_store.hh"

namespace momsim::fabric
{

Dealer::Dealer(std::vector<DealPoint> points, int workerCount)
{
    MOMSIM_ASSERT(workerCount >= 1, "dealer needs at least one worker");
    _initial.resize(static_cast<size_t>(workerCount));
    _dead.assign(static_cast<size_t>(workerCount), false);

    std::vector<double> costs;
    costs.reserve(points.size());
    for (const DealPoint &p : points)
        costs.push_back(p.cost);
    const std::vector<int> bins = driver::dealByCost(costs, workerCount);

    _entries.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        const bool inserted = _byId.emplace(points[i].id, i).second;
        MOMSIM_ASSERT(inserted, "duplicate point id dealt");
        (void)inserted;
        _entries.push_back(Entry{ std::move(points[i]),
                                  State::Assigned, -1 });
        _initial[static_cast<size_t>(bins[i])].push_back(i);
    }
    _remaining = _entries.size();
}

bool
Dealer::terminalLocked(int worker) const
{
    if (_remaining == 0)
        return true;
    if (_dead[static_cast<size_t>(worker)])
        return true;
    bool allDead = true;
    for (bool d : _dead)
        allDead = allDead && d;
    return allDead;
}

std::vector<DealPoint>
Dealer::claim(int worker)
{
    MutexLock lock(_mutex);
    MOMSIM_ASSERT(worker >= 0 &&
                      static_cast<size_t>(worker) < _initial.size(),
                  "claim by unknown worker");
    std::deque<size_t> &mine = _initial[static_cast<size_t>(worker)];
    std::vector<DealPoint> out;
    for (;;) {
        while (mine.empty() && _requeued.empty() &&
               !terminalLocked(worker))
            _cv.wait(_mutex);

        if (_dead[static_cast<size_t>(worker)] || _remaining == 0)
            return out;
        // Grab everything on the table for this worker: its own
        // remaining initial deal first (preserves the LPT balance on
        // the healthy path), then any re-dealt strays. Points that
        // completed while queued (a duplicate row beat the re-deal)
        // are skipped.
        for (std::deque<size_t> *queue : { &mine, &_requeued }) {
            while (!queue->empty()) {
                const size_t idx = queue->front();
                queue->pop_front();
                Entry &e = _entries[idx];
                if (e.state == State::Done)
                    continue;
                e.state = State::Claimed;
                e.owner = worker;
                out.push_back(e.point);
            }
        }
        if (!out.empty() || terminalLocked(worker))
            return out;
        // Everything we woke for was already done: loop back to the
        // wait. A loop, not a tail call — under a notify_all() storm
        // with many already-done wakeups the old recursive retry grew
        // the stack unboundedly.
    }
}

bool
Dealer::complete(const std::string &id)
{
    MutexLock lock(_mutex);
    auto it = _byId.find(id);
    MOMSIM_ASSERT(it != _byId.end(), "completion for un-dealt point");
    if (it == _byId.end())
        return false;
    Entry &e = _entries[it->second];
    if (e.state == State::Done)
        return false;
    e.state = State::Done;
    e.owner = -1;
    --_remaining;
    if (_remaining == 0)
        _cv.notify_all();
    return true;
}

size_t
Dealer::fail(int worker)
{
    MutexLock lock(_mutex);
    MOMSIM_ASSERT(worker >= 0 &&
                      static_cast<size_t>(worker) < _initial.size(),
                  "fail of unknown worker");
    if (_dead[static_cast<size_t>(worker)])
        return 0;
    _dead[static_cast<size_t>(worker)] = true;

    size_t requeued = 0;
    // Unclaimed initial deal: straight back on the table.
    std::deque<size_t> &mine = _initial[static_cast<size_t>(worker)];
    while (!mine.empty()) {
        const size_t idx = mine.front();
        mine.pop_front();
        if (_entries[idx].state == State::Assigned) {
            _requeued.push_back(idx);
            ++requeued;
        }
    }
    // Claimed but unfinished: the failure cost, re-dealt.
    for (size_t i = 0; i < _entries.size(); ++i) {
        Entry &e = _entries[i];
        if (e.state == State::Claimed && e.owner == worker) {
            e.state = State::Assigned;
            e.owner = -1;
            _requeued.push_back(i);
            ++requeued;
        }
    }
    _redealt += requeued;
    _cv.notify_all();
    return requeued;
}

bool
Dealer::done() const
{
    MutexLock lock(_mutex);
    return _remaining == 0;
}

bool
Dealer::failed() const
{
    MutexLock lock(_mutex);
    if (_remaining == 0)
        return false;
    for (bool d : _dead)
        if (!d)
            return false;
    return true;
}

size_t
Dealer::remaining() const
{
    MutexLock lock(_mutex);
    return _remaining;
}

size_t
Dealer::redealCount() const
{
    MutexLock lock(_mutex);
    return _redealt;
}

int
Dealer::liveWorkers() const
{
    MutexLock lock(_mutex);
    int live = 0;
    for (bool d : _dead)
        live += d ? 0 : 1;
    return live;
}

} // namespace momsim::fabric
