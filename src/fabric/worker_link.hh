/**
 * @file
 * WorkerLink — the coordinator's connection to one worker: an address
 * parser for the --workers list, a retrying dialer, and line-framed
 * reads with a deadline (the straggler timeout: a worker that streams
 * nothing for the timeout window is presumed dead and its points are
 * re-dealt).
 */

#ifndef MOMSIM_FABRIC_WORKER_LINK_HH
#define MOMSIM_FABRIC_WORKER_LINK_HH

#include <string>

#include "common/net.hh"

namespace momsim::fabric
{

/** A parsed --workers entry: "unix:PATH" or "HOST:PORT". */
struct WorkerAddr
{
    bool isUnix = false;
    std::string path;   ///< unix socket path (isUnix)
    std::string host;   ///< tcp host (!isUnix)
    int port = 0;       ///< tcp port (!isUnix)

    /** The address back in its spelled form, for logs. */
    std::string display() const;
};

/** Parse one --workers entry; false + @p error on a bad spelling. */
bool parseWorkerAddr(const std::string &text, WorkerAddr &out,
                     std::string &error);

class WorkerLink
{
  public:
    explicit WorkerLink(WorkerAddr addr) : _addr(std::move(addr)) {}

    /** Dial with net::connectRetry semantics. False + @p error when
     *  every attempt failed. */
    bool dial(int retries, int backoffMs, std::string &error);

    /** Write one protocol line (newline appended). */
    bool sendLine(const std::string &line);

    enum class ReadResult { Line, Eof, Error, Timeout };

    /**
     * Read the next newline-terminated line into @p line, waiting at
     * most @p timeoutMs (< 0 = forever) across however many socket
     * reads it takes. Eof/Error mean the link is unusable; Timeout
     * means the worker went silent past the deadline.
     */
    ReadResult readLine(std::string &line, int timeoutMs);

    void close() { _fd.reset(); }
    bool connected() const { return _fd.valid(); }
    const WorkerAddr &addr() const { return _addr; }
    std::string display() const { return _addr.display(); }

  private:
    WorkerAddr _addr;
    net::FdGuard _fd;
    std::string _buffer;    ///< bytes read past the last line
};

} // namespace momsim::fabric

#endif // MOMSIM_FABRIC_WORKER_LINK_HH
