#include "fabric/worker_link.hh"

#include <chrono>
#include <cstdlib>

#include "common/logging.hh"

namespace momsim::fabric
{

std::string
WorkerAddr::display() const
{
    if (isUnix)
        return "unix:" + path;
    return strfmt("%s:%d", host.c_str(), port);
}

bool
parseWorkerAddr(const std::string &text, WorkerAddr &out,
                std::string &error)
{
    if (text.rfind("unix:", 0) == 0) {
        out.isUnix = true;
        out.path = text.substr(5);
        if (out.path.empty()) {
            error = "unix worker address needs a path (unix:PATH)";
            return false;
        }
        return true;
    }
    const size_t colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == text.size()) {
        error = strfmt("bad worker address \"%s\" (want HOST:PORT or "
                       "unix:PATH)", text.c_str());
        return false;
    }
    out.isUnix = false;
    out.host = text.substr(0, colon);
    char *end = nullptr;
    const std::string portText = text.substr(colon + 1);
    const long port = std::strtol(portText.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port < 1 || port > 65535) {
        error = strfmt("bad worker port \"%s\" (want 1..65535)",
                       portText.c_str());
        return false;
    }
    out.port = static_cast<int>(port);
    return true;
}

bool
WorkerLink::dial(int retries, int backoffMs, std::string &error)
{
    auto dialOnce = [this](std::string &err) {
        return _addr.isUnix ? net::connectUnix(_addr.path, err)
                            : net::connectTcp(_addr.host, _addr.port, err);
    };
    const int fd = net::connectRetry(dialOnce, retries, backoffMs, error);
    if (fd < 0)
        return false;
    _fd.reset(fd);
    _buffer.clear();
    return true;
}

bool
WorkerLink::sendLine(const std::string &line)
{
    if (!_fd.valid())
        return false;
    std::string framed = line;
    framed += '\n';
    return net::writeAll(_fd.get(), framed.data(), framed.size());
}

WorkerLink::ReadResult
WorkerLink::readLine(std::string &line, int timeoutMs)
{
    using clock = std::chrono::steady_clock;
    const clock::time_point deadline =
        clock::now() + std::chrono::milliseconds(
                           timeoutMs < 0 ? 0 : timeoutMs);
    for (;;) {
        const size_t nl = _buffer.find('\n');
        if (nl != std::string::npos) {
            line.assign(_buffer, 0, nl);
            _buffer.erase(0, nl + 1);
            return ReadResult::Line;
        }
        if (!_fd.valid())
            return ReadResult::Eof;
        int remaining = -1;
        if (timeoutMs >= 0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - clock::now())
                    .count();
            if (left <= 0)
                return ReadResult::Timeout;
            remaining = static_cast<int>(left);
        }
        const int readable = net::waitReadable(_fd.get(), remaining);
        if (readable == 0)
            return ReadResult::Timeout;
        if (readable < 0)
            return ReadResult::Error;
        char buf[4096];
        const long n = net::readSome(_fd.get(), buf, sizeof(buf));
        if (n == 0)
            return ReadResult::Eof;
        if (n < 0)
            return ReadResult::Error;
        _buffer.append(buf, static_cast<size_t>(n));
    }
}

} // namespace momsim::fabric
