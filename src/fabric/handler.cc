#include "fabric/handler.hh"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"
#include "driver/result_store.hh"
#include "fabric/protocol.hh"
#include "svc/json.hh"
#include "svc/sim_service.hh"

namespace momsim::fabric
{

WorkerHandler::WorkerHandler(svc::SimService &service)
    : _service(service), _start(std::chrono::steady_clock::now())
{}

bool
WorkerHandler::handle(const std::string &line,
                      const std::function<void(std::string)> &chunk,
                      std::string &finalLine)
{
    svc::JsonValue doc;
    std::string error;
    if (!svc::parseJson(line, doc, error))
        return false;   // not even JSON; let the strict path report it
    const std::string kind = kindOf(doc);
    if (kind.empty())
        return false;   // a plain SimRequest line

    if (kind == "ping") {
        const svc::JsonValue *id = doc.field("id");
        finalLine =
            handlePing(id && id->isString() ? id->text : std::string());
        return true;
    }
    if (kind == "shard_run") {
        finalLine = handleShardRun(doc, chunk);
        return true;
    }
    const svc::JsonValue *id = doc.field("id");
    finalLine = errorToJson(id && id->isString() ? id->text : "",
                            "unknown_kind",
                            strfmt("unknown fabric message kind \"%s\"",
                                   kind.c_str()));
    return true;
}

std::string
WorkerHandler::handlePing(const std::string &id) const
{
    Pong pong;
    pong.id = id;
    pong.version = fabricVersionString();
    pong.uptimeMs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - _start)
            .count());
    pong.inFlight = _service.inFlight();
    pong.pendingPoints = pendingPoints();
    const driver::PointScheduler::Counters counters =
        _service.counters();
    pong.pointsSimulated = counters.pointsSimulated;
    pong.pointsDeduped = counters.pointsDeduped;
    pong.memCacheHits = counters.memCacheHits;
    pong.diskCacheHits = counters.diskCacheHits;
    return pongToJson(pong);
}

std::string
WorkerHandler::handleShardRun(
    const svc::JsonValue &doc,
    const std::function<void(std::string)> &chunk)
{
    ShardRun run;
    std::string error;
    if (!parseShardRun(doc, run, error)) {
        const svc::JsonValue *id = doc.field("id");
        ShardDone done;
        done.id = id && id->isString() ? id->text : "";
        done.ok = false;
        done.errorCode = "bad_shard_run";
        done.errorMessage = error;
        return shardDoneToJson(done);
    }

    ShardDone done;
    done.id = run.id;

    svc::SimRequest sweep;
    if (!svc::SimRequest::fromJson(run.sweepJson, sweep, error)) {
        done.ok = false;
        done.errorCode = "bad_sweep";
        done.errorMessage = strfmt("embedded sweep: %s", error.c_str());
        return shardDoneToJson(done);
    }

    // The log line lands *before* execution on purpose: the
    // kill-mid-run equivalence gate keys on it to know the worker has
    // accepted the deal and is busy.
    std::fprintf(stderr, "[fabric] shard_run %s: %zu point(s)\n",
                 run.id.c_str(), run.points.size());
    _pendingPoints.fetch_add(static_cast<long>(run.points.size()),
                             std::memory_order_relaxed);

    uint64_t streamed = 0;
    auto onRow = [&](const driver::PlannedPoint &p,
                     const driver::ResultRow &row) {
        RowMsg msg;
        msg.id = run.id;
        msg.point = p.spec.canonicalId();
        msg.key = p.key;
        msg.rowLine = driver::serializeResultRow(row);
        chunk(rowToJson(msg));
        ++streamed;
        _pendingPoints.fetch_sub(1, std::memory_order_relaxed);
    };
    svc::SimResponse resp =
        _service.submitFiltered(sweep, run.points, onRow);
    // Points never streamed (validation failure, partial abort) must
    // not leak into the pending gauge forever.
    _pendingPoints.fetch_sub(
        static_cast<long>(run.points.size()) -
            static_cast<long>(streamed),
        std::memory_order_relaxed);

    if (!resp.ok) {
        done.ok = false;
        done.errorCode = resp.errorCode;
        done.errorMessage = resp.errorMessage;
        return shardDoneToJson(done);
    }
    done.ok = true;
    done.points = streamed;
    done.cached = resp.cachedPoints;
    done.simulated = resp.simulatedPoints;
    return shardDoneToJson(done);
}

} // namespace momsim::fabric
