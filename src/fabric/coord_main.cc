/**
 * @file
 * `momsim coord --workers LIST <bench> [bench flags]` — run any
 * registered sweep across a fleet of `momsim serve` workers and print
 * the canonical output, byte-identical to the single-process run.
 *
 * The shape is deliberate:
 *
 *   1. Plan locally. The coordinator expands the bench's grid exactly
 *      as the CLI would and runs it through the same cost-weighted
 *      planner (planSweep) against the shared --cache-dir store, so
 *      already-cached points never leave the building.
 *   2. Deal remotely. The to-simulate points go to the Dealer, whose
 *      initial partition is the same LPT deal `--shard I/N` uses; each
 *      worker link streams completed rows back (shard_run -> row* ->
 *      shard_done) and every row is put() into the store immediately —
 *      a worker that dies mid-shard loses only its unfinished points,
 *      which re-deal to whoever is idle. Completions are idempotent
 *      (content-addressed keys, last-wins rows), so a presumed-dead
 *      straggler's late rows are harmless duplicates.
 *   3. Render locally. With the store fully warm, the normal bench
 *      path replays it (--cache-dir, or --merge for the coordinator's
 *      temporary store) and simulates nothing — the gated mechanism
 *      that already makes shard-and-merge byte-identical is what makes
 *      the fleet byte-identical.
 */

#include "fabric/coord_main.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <unistd.h>

#include "common/logging.hh"
#include "common/net.hh"
#include "common/thread_annotations.hh"
#include "driver/bench_harness.hh"
#include "driver/result_store.hh"
#include "driver/thread_pool.hh"
#include "fabric/dealer.hh"
#include "fabric/protocol.hh"
#include "fabric/worker_link.hh"
#include "svc/bench_registry.hh"
#include "svc/json.hh"
#include "svc/sim_request.hh"
#include "workloads/workload_repo.hh"

namespace momsim::fabric
{

namespace
{

constexpr const char *kCmd = "momsim coord";

struct CoordOptions
{
    std::vector<WorkerAddr> workers;
    int connectRetries = 5;
    int retryBackoffMs = 200;
    int workerTimeoutMs = 120000;
    std::string workerCacheDir;     ///< cacheDir field of worker requests
};

bool
intValue(int argc, char **argv, int &i, int minValue, int &out)
{
    const char *arg = argv[i];
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s expects a value\n", kCmd, arg);
        return false;
    }
    const char *v = argv[++i];
    char *end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (*v == '\0' || !end || *end != '\0' || parsed < minValue ||
        parsed > 1 << 20) {
        std::fprintf(stderr, "%s: bad %s '%s' (want an integer >= %d)\n",
                     kCmd, arg, v, minValue);
        return false;
    }
    out = static_cast<int>(parsed);
    return true;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: momsim coord --workers LIST <bench> [bench flags]\n"
        "  --workers LIST          comma-separated worker addresses\n"
        "                          (HOST:PORT or unix:PATH); repeatable\n"
        "  --connect-retries N     extra dial attempts per worker (5)\n"
        "  --retry-backoff-ms MS   first retry backoff, doubled and\n"
        "                          jittered per attempt (200)\n"
        "  --worker-timeout-ms MS  silence window after which a worker\n"
        "                          is presumed dead and its points\n"
        "                          re-dealt (120000)\n"
        "  --worker-cache-dir DIR  cacheDir the workers should use for\n"
        "                          their own stores (default: none)\n"
        "Bench flags (--quick, --workload, --cache-dir, --csv, ...) pass\n"
        "through to the sweep; --shard and --merge are the coordinator's\n"
        "job and reject.\n");
}

/** The per-worker link driver: claim, send, stream rows, repeat. */
class WorkerThread
{
  public:
    struct Shared
    {
        Dealer &dealer;
        driver::ResultStore &store;
        momsim::Mutex &storeMutex;
        const std::unordered_map<std::string, std::string> &keyOf;
        const std::string &sweepJson;
        int timeoutMs;
        momsim::Mutex &logMutex;
        std::string &lastError;
    };

    WorkerThread(int index, WorkerLink link, Shared shared)
        : _index(index), _link(std::move(link)), _shared(shared)
    {}

    void
    start()
    {
        _thread = std::thread([this] { run(); });
    }

    void
    join()
    {
        if (_thread.joinable())
            _thread.join();
    }

  private:
    void
    lost(const std::string &why)
    {
        _link.close();
        const size_t redealt = _shared.dealer.fail(_index);
        MutexLock lock(_shared.logMutex);
        _shared.lastError = why;
        std::fprintf(stderr,
                     "[coord] worker %s lost (%s); re-dealing %zu "
                     "point(s)\n", _link.display().c_str(), why.c_str(),
                     redealt);
    }

    void
    run()
    {
        int dealSeq = 0;
        for (;;) {
            const std::vector<DealPoint> batch =
                _shared.dealer.claim(_index);
            if (batch.empty())
                return;     // done, failed, or this link was lost
            ShardRun deal;
            deal.id = strfmt("d%d-%d", _index, dealSeq++);
            deal.sweepJson = _shared.sweepJson;
            for (const DealPoint &p : batch)
                deal.points.push_back(p.id);
            if (!_link.sendLine(shardRunToJson(deal))) {
                lost("send failed");
                return;
            }
            if (!readDeal(deal, batch))
                return;     // lost() already ran
        }
    }

    /** Read rows until this deal's shard_done; false on link loss. */
    bool
    readDeal(const ShardRun &deal, const std::vector<DealPoint> &batch)
    {
        std::unordered_set<std::string> got;
        for (;;) {
            std::string line;
            switch (_link.readLine(line, _shared.timeoutMs)) {
            case WorkerLink::ReadResult::Line:
                break;
            case WorkerLink::ReadResult::Timeout:
                lost(strfmt("no traffic for %d ms", _shared.timeoutMs));
                return false;
            case WorkerLink::ReadResult::Eof:
                lost("connection closed");
                return false;
            case WorkerLink::ReadResult::Error:
                lost("read error");
                return false;
            }
            svc::JsonValue doc;
            std::string error;
            if (!svc::parseJson(line, doc, error)) {
                lost(strfmt("unparseable reply: %s", error.c_str()));
                return false;
            }
            const std::string kind = kindOf(doc);
            if (kind == "row") {
                RowMsg msg;
                if (!parseRow(doc, msg, error)) {
                    lost(strfmt("bad row: %s", error.c_str()));
                    return false;
                }
                auto it = _shared.keyOf.find(msg.point);
                if (it == _shared.keyOf.end() ||
                    it->second != msg.key) {
                    // A key we did not plan means the worker disagrees
                    // about the sweep (version skew the ping check
                    // should have caught) — its rows cannot be trusted.
                    lost(strfmt("row key mismatch for point %s",
                                msg.point.c_str()));
                    return false;
                }
                driver::ResultRow row;
                if (!driver::parseResultRow(msg.rowLine, row)) {
                    lost(strfmt("unparseable row for point %s",
                                msg.point.c_str()));
                    return false;
                }
                {
                    MutexLock lock(_shared.storeMutex);
                    _shared.store.put(msg.key, row);
                }
                _shared.dealer.complete(msg.point);
                got.insert(msg.point);
                continue;
            }
            if (kind == "shard_done") {
                ShardDone done;
                if (!parseShardDone(doc, done, error)) {
                    lost(strfmt("bad shard_done: %s", error.c_str()));
                    return false;
                }
                if (!done.ok) {
                    lost(strfmt("shard failed: %s: %s",
                                done.errorCode.c_str(),
                                done.errorMessage.c_str()));
                    return false;
                }
                if (done.id != deal.id || got.size() != batch.size()) {
                    lost(strfmt("incomplete deal %s: %zu of %zu row(s)",
                                deal.id.c_str(), got.size(),
                                batch.size()));
                    return false;
                }
                return true;
            }
            if (kind == "error") {
                lost(strfmt("worker error: %s", line.c_str()));
                return false;
            }
            // Anything else (a stray pong, a SimResponse) is protocol
            // confusion severe enough to drop the link.
            lost(strfmt("unexpected reply kind \"%s\"", kind.c_str()));
            return false;
        }
    }

    int _index;
    WorkerLink _link;
    Shared _shared;
    std::thread _thread;
};

} // namespace

int
runCoord(int argc, char **argv)
{
    CoordOptions coord;
    std::vector<std::string> benchTokens;   ///< everything non-fabric
    std::string benchName;

    bool valueExpected = false;     // previous bench token takes a value
    for (int i = 0; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--workers") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --workers expects a value\n",
                             kCmd);
                return 2;
            }
            const std::string list = argv[++i];
            size_t start = 0;
            while (start <= list.size()) {
                const size_t comma = list.find(',', start);
                const std::string item =
                    list.substr(start, comma == std::string::npos
                                           ? std::string::npos
                                           : comma - start);
                if (!item.empty()) {
                    WorkerAddr addr;
                    std::string error;
                    if (!parseWorkerAddr(item, addr, error)) {
                        std::fprintf(stderr, "%s: %s\n", kCmd,
                                     error.c_str());
                        return 2;
                    }
                    coord.workers.push_back(std::move(addr));
                }
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        } else if (std::strcmp(arg, "--connect-retries") == 0) {
            if (!intValue(argc, argv, i, 0, coord.connectRetries))
                return 2;
        } else if (std::strcmp(arg, "--retry-backoff-ms") == 0) {
            if (!intValue(argc, argv, i, 1, coord.retryBackoffMs))
                return 2;
        } else if (std::strcmp(arg, "--worker-timeout-ms") == 0) {
            if (!intValue(argc, argv, i, 1, coord.workerTimeoutMs))
                return 2;
        } else if (std::strcmp(arg, "--worker-cache-dir") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: --worker-cache-dir expects a value\n",
                             kCmd);
                return 2;
            }
            coord.workerCacheDir = argv[++i];
        } else {
            if (!valueExpected && arg[0] != '-' && benchName.empty()) {
                benchName = arg;
                continue;       // the bench name is ours, not a flag
            }
            valueExpected = !valueExpected &&
                            driver::BenchOptions::takesValue(arg);
            benchTokens.push_back(arg);
        }
    }

    if (benchName.empty()) {
        std::fprintf(stderr, "%s: no bench named\n", kCmd);
        usage();
        return 2;
    }
    const svc::BenchDef *def = svc::findBench(benchName);
    if (!def) {
        std::fprintf(stderr, "%s: unknown bench \"%s\" (see `momsim "
                     "list`)\n", kCmd, benchName.c_str());
        return 2;
    }
    if (!def->hasSweep()) {
        std::fprintf(stderr,
                     "%s: bench \"%s\" has no sweep stage; run `momsim "
                     "%s` directly\n", kCmd, benchName.c_str(),
                     benchName.c_str());
        return 2;
    }

    // The bench-flag remainder, parsed exactly as the final render will
    // parse it — argv[0] is the display name, as runBench uses it.
    const std::string display = "momsim " + benchName;
    std::vector<char *> benchArgv;
    benchArgv.push_back(const_cast<char *>(display.c_str()));
    for (const std::string &t : benchTokens)
        benchArgv.push_back(const_cast<char *>(t.c_str()));

    driver::BenchOptions opts;
    std::string error;
    if (!driver::BenchOptions::parseInto(
            static_cast<int>(benchArgv.size()), benchArgv.data(), opts,
            error)) {
        std::fprintf(stderr, "%s: %s\n", kCmd, error.c_str());
        return 2;
    }
    if (opts.shardCount != 1 || opts.shardIndex != 1) {
        std::fprintf(stderr, "%s: --shard conflicts with the fleet — "
                     "the coordinator deals the shards\n", kCmd);
        return 2;
    }
    if (!opts.mergePaths.empty()) {
        std::fprintf(stderr, "%s: --merge conflicts with the fleet — "
                     "the coordinator merges worker rows itself\n",
                     kCmd);
        return 2;
    }
    if (opts.dryRun || opts.listWorkloads) {
        // Pure local queries; no fleet involved.
        return svc::runBench(*def, static_cast<int>(benchArgv.size()),
                             benchArgv.data());
    }
    if (coord.workers.empty()) {
        std::fprintf(stderr, "%s: no --workers given\n", kCmd);
        usage();
        return 2;
    }

    // ---- the shared store every worker row lands in ----
    std::string storeDir = opts.cacheDir;
    bool tempStore = false;
    char tempTemplate[] = "/tmp/momsim-coord-XXXXXX";
    if (storeDir.empty()) {
        if (!mkdtemp(tempTemplate)) {
            std::fprintf(stderr, "%s: cannot create a temporary store "
                         "directory\n", kCmd);
            return 1;
        }
        storeDir = tempTemplate;
        tempStore = true;
    }
    driver::ResultStore store;
    if (!store.openDir(storeDir)) {
        std::fprintf(stderr, "%s: cannot open store directory %s\n",
                     kCmd, storeDir.c_str());
        return 1;
    }

    // ---- plan the sweep exactly as the single-process run would ----
    driver::SweepGrid grid = def->grid(opts);
    driver::applyRunSelection(grid, opts.workloads, opts.maxCycles);
    std::vector<driver::ExperimentSpec> specs =
        grid.expand(opts.baseSeed);

    driver::ThreadPool pool(opts.jobs);
    workloads::WorkloadRepo repo(opts.quick
                                     ? workloads::WorkloadScale::Tiny
                                     : workloads::WorkloadScale::Paper);
    std::vector<std::string> toBuild = repo.missing(grid.workloadList());
    pool.parallelFor(toBuild.size(), [&repo, &toBuild](size_t i) {
        repo.get(toBuild[i]);
    });
    driver::RunPlan plan =
        driver::planSweep(std::move(specs), repo, &store, 0, 1);

    std::vector<DealPoint> toSim;
    std::unordered_map<std::string, std::string> keyOf;
    for (const driver::PlannedPoint &p : plan.points) {
        if (p.cached)
            continue;
        DealPoint d;
        d.id = p.spec.canonicalId();
        d.key = p.key;
        d.cost = p.cost;
        keyOf.emplace(d.id, d.key);
        toSim.push_back(std::move(d));
    }
    std::fprintf(stderr,
                 "[coord] plan: total=%zu cached=%zu to-deal=%zu "
                 "workers=%zu\n", plan.points.size(),
                 plan.points.size() - toSim.size(), toSim.size(),
                 coord.workers.size());

    if (!toSim.empty()) {
        // ---- dial and version-check the fleet ----
        net::ignoreSigpipe();
        std::vector<WorkerLink> links;
        const std::string wantVersion = fabricVersionString();
        for (const WorkerAddr &addr : coord.workers) {
            WorkerLink link(addr);
            std::string dialError;
            if (!link.dial(coord.connectRetries, coord.retryBackoffMs,
                           dialError)) {
                std::fprintf(stderr, "%s\n",
                             errorToJson(
                                 "", "connect_failed",
                                 strfmt("worker %s: %s",
                                        link.display().c_str(),
                                        dialError.c_str()))
                                 .c_str());
                continue;
            }
            Pong pong;
            std::string line;
            std::string pongError;
            if (!link.sendLine(pingToJson("hello")) ||
                link.readLine(line, coord.workerTimeoutMs) !=
                    WorkerLink::ReadResult::Line) {
                pongError = "no pong";
            } else {
                svc::JsonValue doc;
                if (!svc::parseJson(line, doc, pongError) ||
                    !parsePong(doc, pong, pongError)) {
                    pongError = "bad pong: " + pongError;
                } else if (pong.version != wantVersion) {
                    // A version-skewed worker would compute different
                    // cache keys — excluding it is correctness, not
                    // just hygiene.
                    pongError =
                        strfmt("version skew: worker %s vs coord %s",
                               pong.version.c_str(),
                               wantVersion.c_str());
                }
            }
            if (!pongError.empty()) {
                std::fprintf(stderr, "[coord] excluding worker %s "
                             "(%s)\n", link.display().c_str(),
                             pongError.c_str());
                continue;
            }
            links.push_back(std::move(link));
        }
        if (links.empty()) {
            std::fprintf(stderr, "%s\n",
                         errorToJson("coord", "no_workers",
                                     strfmt("no usable workers among "
                                            "%zu configured",
                                            coord.workers.size()))
                             .c_str());
            return 1;
        }
        std::fprintf(stderr, "[coord] fleet: %zu of %zu worker(s) "
                     "usable\n", links.size(), coord.workers.size());

        // ---- run the deal ----
        svc::SimRequest sweep;
        sweep.id = "sweep";
        sweep.client = "coord";
        sweep.bench = def->name;
        sweep.workloads = opts.workloads;
        sweep.quick = opts.quick;
        sweep.maxCycles = opts.maxCycles;
        sweep.seed = opts.baseSeed;
        sweep.batch = opts.batch;
        sweep.cacheDir = coord.workerCacheDir;
        const std::string sweepJson = sweep.toJson();

        Dealer dealer(toSim, static_cast<int>(links.size()));
        momsim::Mutex storeMutex;
        momsim::Mutex logMutex;
        std::string lastError;
        std::vector<std::unique_ptr<WorkerThread>> threads;
        for (size_t i = 0; i < links.size(); ++i) {
            WorkerThread::Shared shared{ dealer,  store,
                                         storeMutex, keyOf,
                                         sweepJson, coord.workerTimeoutMs,
                                         logMutex,  lastError };
            threads.push_back(std::make_unique<WorkerThread>(
                static_cast<int>(i), std::move(links[i]), shared));
        }
        for (auto &t : threads)
            t->start();
        for (auto &t : threads)
            t->join();

        if (!dealer.done()) {
            std::fprintf(
                stderr, "%s\n",
                errorToJson(
                    "coord", "fleet_failed",
                    strfmt("every worker failed with %zu point(s) "
                           "unfinished (last error: %s)",
                           dealer.remaining(),
                           lastError.empty() ? "none recorded"
                                             : lastError.c_str()))
                    .c_str());
            return 1;
        }
        if (dealer.redealCount() > 0) {
            std::fprintf(stderr, "[coord] sweep complete after "
                         "re-dealing %zu point(s)\n",
                         dealer.redealCount());
        }
    }

    // ---- render: the store is fully warm, replay it canonically ----
    const std::string storeFile =
        storeDir + "/" + driver::ResultStore::kFileName;
    std::vector<char *> renderArgv = benchArgv;
    std::string mergeFlag = "--merge";
    if (tempStore) {
        renderArgv.push_back(const_cast<char *>(mergeFlag.c_str()));
        renderArgv.push_back(const_cast<char *>(storeFile.c_str()));
    }
    const int code = svc::runBench(
        *def, static_cast<int>(renderArgv.size()), renderArgv.data());

    if (tempStore) {
        ::unlink(storeFile.c_str());
        ::rmdir(storeDir.c_str());
    }
    return code;
}

} // namespace momsim::fabric
