/**
 * @file
 * The fabric wire protocol: the "kind"-tagged JSONL messages the
 * distributed-sweep coordinator (`momsim coord`) and its workers
 * (`momsim serve` / `momsim batch`) exchange on top of the existing
 * SimRequest/SimResponse transport.
 *
 * The transport stays line-oriented JSON; fabric messages are the
 * lines whose top-level object carries a "kind" field (a plain
 * SimRequest can never carry one — its strict parser rejects unknown
 * fields), which is how one socket serves both protocols:
 *
 *   ping       -> pong          worker health/version probe
 *   shard_run  -> row* shard_done
 *                               execute a dealt subset of a sweep and
 *                               stream each completed row back
 *   error                       structured protocol-level failure
 *
 * Nested payloads (the shard_run's embedded SimRequest, the row's
 * serialized ResultRow) travel as *escaped JSON-line strings* — the
 * byte-exact line formats those layers already round-trip (%.17g
 * doubles and all) — so the fabric adds framing, never a second
 * serialization of simulator data.
 *
 * Versioning: every coordinator-facing message carries fabricVersion;
 * the pong's version string additionally folds in the request/
 * response/row-schema/sim-code versions, and a coordinator refuses
 * workers whose string differs from its own — a mixed-version fleet
 * would disagree on cache keys, which must be a startup error, not a
 * silent wrong merge.
 */

#ifndef MOMSIM_FABRIC_PROTOCOL_HH
#define MOMSIM_FABRIC_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "svc/json.hh"

namespace momsim::fabric
{

/** Version of the fabric message set. Bump on any message change.
 *  v2 = v1 + the pong's scheduler gauges (pointsSimulated,
 *  pointsDeduped, memCacheHits, diskCacheHits). */
constexpr int kFabricSchemaVersion = 2;

/**
 * The compatibility fingerprint a worker reports in its pong:
 * "fabric<F>/req<R>/resp<S>/rows<V>/sim<C>". Two processes with equal
 * strings agree on every wire format *and* on result-cache keys.
 */
std::string fabricVersionString();

/** The top-level "kind" of a parsed line; "" when @p doc is not an
 *  object or carries no string "kind" (i.e. not a fabric message). */
std::string kindOf(const svc::JsonValue &doc);

// ---- ping / pong -----------------------------------------------------

/** `{"kind":"ping"}` with an optional correlation id. Deliberately
 *  lenient to parse: a hand-typed health check needs no version. */
std::string pingToJson(const std::string &id);

struct Pong
{
    std::string id;             ///< echo of the ping's id ("" if none)
    std::string version;        ///< fabricVersionString() of the worker
    uint64_t uptimeMs = 0;      ///< since the worker started serving
    int inFlight = 0;           ///< requests executing right now
    long pendingPoints = 0;     ///< dealt sweep points not yet finished
    // Scheduler gauges (lifetime totals of the worker's SimService):
    uint64_t pointsSimulated = 0;   ///< points executed on a worker
    uint64_t pointsDeduped = 0;     ///< points joined in flight
    uint64_t memCacheHits = 0;      ///< memory-row-cache replays
    uint64_t diskCacheHits = 0;     ///< disk-store planning-time hits
};

std::string pongToJson(const Pong &pong);
bool parsePong(const svc::JsonValue &doc, Pong &out, std::string &error);

// ---- shard_run -------------------------------------------------------

/** One deal: run @p points (canonical point ids) of the sweep that
 *  @p sweepJson (a serialized SimRequest line) describes. */
struct ShardRun
{
    std::string id;             ///< deal id, echoed in rows and done
    std::string sweepJson;      ///< SimRequest::toJson() of the sweep
    std::vector<std::string> points;
};

std::string shardRunToJson(const ShardRun &run);
bool parseShardRun(const svc::JsonValue &doc, ShardRun &out,
                   std::string &error);

// ---- row (streamed per completed point) ------------------------------

struct RowMsg
{
    std::string id;             ///< the deal this row answers
    std::string point;          ///< canonical point id
    std::string key;            ///< the point's result-cache key
    std::string rowLine;        ///< serializeResultRow() of the row
};

std::string rowToJson(const RowMsg &msg);
bool parseRow(const svc::JsonValue &doc, RowMsg &out, std::string &error);

// ---- shard_done ------------------------------------------------------

struct ShardDone
{
    std::string id;
    bool ok = false;
    uint64_t points = 0;        ///< rows streamed for this deal
    uint64_t cached = 0;        ///< of which worker-cache replays
    uint64_t simulated = 0;     ///< of which fresh simulations
    std::string errorCode;      ///< valid when !ok
    std::string errorMessage;   ///< valid when !ok
};

std::string shardDoneToJson(const ShardDone &done);
bool parseShardDone(const svc::JsonValue &doc, ShardDone &out,
                    std::string &error);

// ---- error -----------------------------------------------------------

/** A protocol-level failure line (unknown kind, bad version, ...). */
std::string errorToJson(const std::string &id, const std::string &code,
                        const std::string &message);

} // namespace momsim::fabric

#endif // MOMSIM_FABRIC_PROTOCOL_HH
