#include "core/simulation.hh"

#include <chrono>

#include "common/logging.hh"

namespace momsim::core
{

Simulation::Simulation(const cpu::CoreConfig &cfg, mem::MemModel memModel,
                       std::vector<WorkloadProgram> rotation,
                       const mem::MemConfig &memCfg)
    : _cfg(cfg),
      _rotation(std::move(rotation)),
      _mem(mem::makeMemorySystem(memModel, memCfg)),
      _core(std::make_unique<cpu::SmtCore>(cfg, *_mem)),
      _running(static_cast<size_t>(cfg.numThreads), 0)
{
    // Unconditional (not MOMSIM_ASSERT, which Release compiles away):
    // these validate caller-supplied configuration, once per run.
    if (_rotation.empty())
        panic("empty workload rotation");
    for (const auto &wp : _rotation) {
        if (wp.prog == nullptr)
            panic("null program in rotation");
        if (wp.prog->simdIsa() != cfg.simd)
            panic("program ISA does not match core ISA");
    }
    for (int tid = 0; tid < cfg.numThreads; ++tid)
        attachNext(tid);
}

void
Simulation::attachNext(int tid)
{
    size_t idx = _nextProgram % _rotation.size();
    _nextProgram += 1;
    _running[static_cast<size_t>(tid)] = idx;
    _core->attachProgram(tid, _rotation[idx].prog);
}

RunResult
Simulation::run(int targetCompletions, uint64_t maxCycles)
{
    begin(targetCompletions, maxCycles);
    while (!advance(maxCycles)) {
    }
    return finish();
}

void
Simulation::begin(int targetCompletions, uint64_t maxCycles)
{
    if (_phase != Phase::Fresh)
        panic("Simulation::begin on an already-started run");
    if (targetCompletions < 0)
        targetCompletions = static_cast<int>(_rotation.size());
    _target = targetCompletions;
    _maxCycles = maxCycles;
    _cycleStart = _core->now();
    _phase = Phase::Running;
    if (_completions >= _target || _core->now() >= _maxCycles)
        _phase = Phase::Done;
}

bool
Simulation::advance(uint64_t cycleBudget)
{
    if (_phase == Phase::Fresh)
        panic("Simulation::advance before begin");
    if (_phase == Phase::Done)
        return true;

    // momlint: allow(nondet-source) self-measurement: wallMs feeds the
    // reporting-only wall_ms/sim_kcps fields, never simulation state
    auto wallStart = std::chrono::steady_clock::now();
    // The slice's horizon caps the core's idle fast-forward at a
    // nearer cycle, which is byte-identical to an uncapped run: the
    // core simulates exactly the cycles a naive per-cycle walk would.
    uint64_t headroom = _maxCycles - _core->now();
    uint64_t horizon = _core->now() +
                       (cycleBudget < headroom ? cycleBudget : headroom);
    while (_completions < _target && _core->now() < horizon) {
        uint64_t committedBefore = _core->committedRecords();
        _core->step(horizon);
        if (!_idleScanPending &&
            _core->committedRecords() == committedBefore)
            continue;
        _idleScanPending = false;
        for (int tid = 0; tid < _cfg.numThreads; ++tid) {
            if (!_core->threadIdle(tid))
                continue;
            const WorkloadProgram &wp =
                _rotation[_running[static_cast<size_t>(tid)]];
            _completions += 1;
            _mmxWorkDone += wp.mmxEq;
            if (_completions >= _target) {
                // Keep remaining contexts' partial work for EIPC.
                break;
            }
            attachNext(tid);
            _idleScanPending = true;
        }
    }
    _wallMs += std::chrono::duration<double, std::milli>(
                   // momlint: allow(nondet-source) self-measurement, as above
                   std::chrono::steady_clock::now() - wallStart)
                   .count();

    if (_completions >= _target || _core->now() >= _maxCycles)
        _phase = Phase::Done;
    return _phase == Phase::Done;
}

RunResult
Simulation::finish()
{
    if (_phase != Phase::Done)
        panic("Simulation::finish before the run completed");

    // Partial credit for programs still in flight, scaled into
    // MMX-equivalent work by each program's own ratio.
    uint64_t partial = 0;
    for (int tid = 0; tid < _cfg.numThreads; ++tid) {
        if (_core->threadIdle(tid))
            continue;
        const WorkloadProgram &wp =
            _rotation[_running[static_cast<size_t>(tid)]];
        uint64_t progEq = wp.prog->mix().eqInsts;
        if (progEq == 0)
            continue;
        double frac = static_cast<double>(_core->threadCommittedEq(tid)) /
                      static_cast<double>(progEq);
        partial += static_cast<uint64_t>(frac *
                       static_cast<double>(wp.mmxEq));
    }

    RunResult res;
    res.cycles = _core->now();
    res.committedEq = _core->committedEq();
    res.ipc = _core->ipc();
    res.eipc = res.cycles
        ? static_cast<double>(_mmxWorkDone + partial) /
          static_cast<double>(res.cycles)
        : 0.0;
    res.l1HitRate = _mem->l1HitRate();
    res.icacheHitRate = _mem->icacheHitRate();
    res.l1AvgLatency = _mem->l1AvgLatency();
    res.mispredicts = _core->stats().get("mispredicts");
    res.condBranches = _core->stats().get("condBranches");
    res.completions = _completions;
    res.hitCycleLimit = _core->now() >= _maxCycles &&
                        _completions < _target;
    res.wallMs = _wallMs;
    // Simulated kilocycles per wall second == cycles per wall ms.
    uint64_t simmed = _core->now() - _cycleStart;
    res.simKcps = res.wallMs > 0.0
        ? static_cast<double>(simmed) / res.wallMs
        : 0.0;
    return res;
}

} // namespace momsim::core
