/**
 * @file
 * Top-level simulation driver implementing the paper's methodology
 * (Section 5.1): a fixed rotation of benchmark programs is spread over
 * the hardware contexts; whenever a program completes, the next one from
 * the list starts in that context (wrapping around), so the machine never
 * runs below its context count; the run ends when as many program
 * completions as list entries have been observed (8 for the paper's
 * Table-2 mix; workload specs of any rotation size run the same way).
 *
 * Metrics: IPC counts committed equivalent instructions per cycle; EIPC
 * converts MOM work into MMX-equivalent instructions ("the IPC a SMT+MMX
 * processor should reach in order to match the performance of the
 * SMT+MOM processor") so the two ISAs are comparable.
 */

#ifndef MOMSIM_CORE_SIMULATION_HH
#define MOMSIM_CORE_SIMULATION_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/smt_core.hh"
#include "mem/hierarchy.hh"
#include "trace/program.hh"

namespace momsim::core
{

/** One rotation slot: a program plus its MMX-equivalent size. */
struct WorkloadProgram
{
    const trace::Program *prog = nullptr;
    /**
     * Equivalent-instruction count of the MMX build of the same
     * benchmark; used for EIPC. For MMX programs this equals the
     * program's own eq count.
     */
    uint64_t mmxEq = 0;
};

/** Summary of one simulation run (one bench data point). */
struct RunResult
{
    uint64_t cycles = 0;
    uint64_t committedEq = 0;
    double ipc = 0.0;           ///< native equivalent instructions / cycle
    double eipc = 0.0;          ///< MMX-equivalent instructions / cycle
    double l1HitRate = 0.0;
    double icacheHitRate = 0.0;
    double l1AvgLatency = 0.0;
    uint64_t mispredicts = 0;
    uint64_t condBranches = 0;
    int completions = 0;
    /**
     * The run stopped at maxCycles before reaching its completion
     * target. Carried as data (and serialized with every ResultRow)
     * instead of a stderr warn: warns from pool workers interleave
     * nondeterministically and are invisible in CSV/JSON output.
     */
    bool hitCycleLimit = false;
    /**
     * Simulator self-measurement (host wall clock of the run loop and
     * simulated kilocycles per wall second). Nondeterministic by
     * nature; serialized at the tail of every ResultRow (schema v4) so
     * cached sweeps keep a per-point performance trajectory, but never
     * printed by the figure benches, whose stdout stays byte-stable.
     */
    double wallMs = 0.0;
    double simKcps = 0.0;
};

class Simulation
{
  public:
    Simulation(const cpu::CoreConfig &cfg, mem::MemModel memModel,
               std::vector<WorkloadProgram> rotation,
               const mem::MemConfig &memCfg = {});

    /**
     * Run until @p targetCompletions programs finish (default: one pass
     * over the rotation list) or @p maxCycles elapse. Equivalent to
     * begin() + advance() to completion + finish().
     */
    RunResult run(int targetCompletions = -1,
                  uint64_t maxCycles = 400'000'000ull);

    /**
     * Resumable form of run(), for callers interleaving several
     * simulations (batched sweep execution): begin() arms the run,
     * each advance() simulates up to @p cycleBudget further cycles,
     * and finish() produces the RunResult once advance() reported
     * completion. The cycle budget only caps the core's idle
     * fast-forward at a nearer horizon, which is byte-identical to an
     * uncapped run by construction — a chunked run produces exactly
     * the same RunResult as one run() call, whatever the budgets.
     */
    void begin(int targetCompletions = -1,
               uint64_t maxCycles = 400'000'000ull);

    /** Simulate up to @p cycleBudget more cycles; true once done. */
    bool advance(uint64_t cycleBudget);

    /** True once the run hit its completion target or cycle limit. */
    bool done() const { return _phase == Phase::Done; }

    /** Summarize the completed run; legal only once done(). */
    RunResult finish();

    cpu::SmtCore &coreRef() { return *_core; }
    mem::MemorySystem &memRef() { return *_mem; }

  private:
    enum class Phase : uint8_t { Fresh, Running, Done };

    void attachNext(int tid);

    cpu::CoreConfig _cfg;
    std::vector<WorkloadProgram> _rotation;
    std::unique_ptr<mem::MemorySystem> _mem;
    std::unique_ptr<cpu::SmtCore> _core;
    size_t _nextProgram = 0;
    std::vector<size_t> _running;   ///< rotation index per context
    int _completions = 0;
    uint64_t _mmxWorkDone = 0;
    Phase _phase = Phase::Fresh;
    int _target = 0;
    uint64_t _maxCycles = 0;
    uint64_t _cycleStart = 0;
    /**
     * A context can only drain by committing its last instruction, so
     * the per-cycle idle scan is pointless on commit-free cycles —
     * with one exception: a freshly attached zero-instruction program
     * is idle without ever committing, so a scan stays pending as long
     * as the previous scan attached anything (and initially, for the
     * programs attached at construction). Persists across advance()
     * slices so chunked runs scan exactly where run() would.
     */
    bool _idleScanPending = true;
    double _wallMs = 0.0;           ///< accumulated across advance()s
};

} // namespace momsim::core

#endif // MOMSIM_CORE_SIMULATION_HH
