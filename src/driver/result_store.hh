/**
 * @file
 * Persistent, content-addressed storage for completed experiments, and
 * the RunPlan layer that turns a sweep from "execute everything" into
 * "simulate only what is missing, where this process is responsible".
 *
 * Every ResultRow is keyed by (canonical point id + run-length limits,
 * workload content fingerprint, result-schema version), so a cached row
 * is replayed only when the simulated configuration, the synthesized
 * workload and the row format are all exactly the ones that produced
 * it. Rows persist as JSON-lines (`results.jsonl` inside --cache-dir);
 * doubles are written with enough digits that parsing returns the
 * bit-identical value, which is what lets cached rows splice back into
 * a sink with byte-identical CSV/JSON/stdout renderings.
 *
 * The same plan drives scale-out: planSweep() deals the expanded spec
 * list across N shards with a cost model (8-thread and real-memory
 * points are several times more expensive than 1-thread perfect-memory
 * ones), deterministically — every shard process computes the identical
 * assignment from the spec list alone, independent of its local cache
 * state, so per-shard stores can be produced on different machines and
 * merged into the canonical unsharded output.
 */

#ifndef MOMSIM_DRIVER_RESULT_STORE_HH
#define MOMSIM_DRIVER_RESULT_STORE_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hh"
#include "driver/experiment.hh"
#include "driver/result_sink.hh"

namespace momsim::driver
{

/**
 * Version of the ResultRow on-disk format. Bump whenever a serialized
 * field is added, removed or retyped; old stores then miss on every
 * lookup instead of replaying rows that lack the new data.
 * v2 = v1 (PR 1's row) + hit_cycle_limit.
 * v3 = v2 + workload (the registry workload-spec name).
 * v4 = v3 + sim_kcps + wall_ms (the run's self-measured throughput).
 */
constexpr int kResultSchemaVersion = 4;

/**
 * Version of the simulator's *semantics*. Bump whenever a change to
 * the core, memory or metric code alters simulation results without
 * changing any config field or workload trace (those are content-
 * hashed into the key already) — e.g. fixing an issue-queue scan bug.
 * Deliberately a hand-bumped constant rather than a build hash: shard
 * processes on different machines must agree on keys.
 */
constexpr int kSimCodeVersion = 1;

/**
 * Content hash of the configuration the spec actually simulates: the
 * post-tweak CoreConfig and MemConfig, field by field. This is what
 * keys a variant by its *parameters* rather than its label, so editing
 * a tweak closure behind an unchanged label still invalidates cached
 * rows.
 */
uint64_t configFingerprint(const ExperimentSpec &spec);

/**
 * One row as a single JSON line (no trailing newline; ResultRow.wallMs
 * — the experiment wall clock — is not serialized, but the run's own
 * sim_kcps/wall_ms self-measurement is, so cached rows keep their
 * original throughput numbers).
 */
std::string serializeResultRow(const ResultRow &row);

/**
 * Parse a line produced by serializeResultRow (or a store line, whose
 * extra "key" field is ignored). Strict: every row field must be
 * present and well formed, and a "schema" field must match
 * kResultSchemaVersion. Doubles round-trip exactly.
 */
bool parseResultRow(const std::string &line, ResultRow &out);

/** Store-line variant that also surfaces the cache key. */
bool parseStoreLine(const std::string &line, std::string &key,
                    ResultRow &out);

/** The lookup key: canonical id + limits + fingerprint + schema. */
std::string resultCacheKey(const ExperimentSpec &spec,
                           uint64_t workloadFingerprint);

/**
 * Relative simulation cost of one point, used to deal shards and the
 * thread pool's initial batches evenly. Calibrated to the ROADMAP
 * observation that 8-thread configurations cost ~4x the 1-thread
 * ones; real-memory hierarchies add ~50% over the perfect one. A run
 * is one pass over the rotation, so cost scales linearly with the
 * workload's program count (@p workloadPrograms; 8 = the paper mix).
 */
double specCost(const ExperimentSpec &spec, int workloadPrograms = 8);

/**
 * Keyed row storage with optional JSON-lines persistence. openDir()
 * binds the store to `<dir>/results.jsonl` (created on demand): rows
 * already there become lookup hits and every put() appends. loadFile()
 * merges another store's file read-only — the mechanism behind
 * --merge. Later lines win, so appending the same key twice is
 * harmless.
 *
 * Concurrency: put(), find() and size() are thread-safe — concurrent
 * requests sharing one store (the serve daemon's --cache-dir) persist
 * distinct points from different workers by design. File appends
 * additionally serialize on a process-wide per-file lock keyed by the
 * *canonical* path, so two in-process ResultStore instances that a
 * pair of requests opened on the same --cache-dir cannot interleave
 * a line. openDir()/loadFile() and the pointer-returning lookup() are
 * single-threaded-setup APIs: call them before sharing the store.
 */
class ResultStore
{
  public:
    static constexpr const char *kFileName = "results.jsonl";

    /** Create @p dir if needed, load its store file, append to it. */
    bool openDir(const std::string &dir);

    /**
     * Merge @p path's rows into the lookup map without adopting it as
     * the append target. A truncated final line (a crashed writer) is
     * ignored; corruption anywhere else fails the load.
     */
    bool loadFile(const std::string &path);

    /** Not thread-safe against concurrent put() (the map cell the
     *  pointer names may be overwritten): use find() on shared
     *  stores. Setup/test API, hence exempt from lock analysis. */
    const ResultRow *lookup(const std::string &key) const
        NO_THREAD_SAFETY_ANALYSIS;

    /** Thread-safe lookup-by-copy. */
    bool find(const std::string &key, ResultRow &out) const;

    /** Insert (last wins) and, when openDir() succeeded, append.
     *  Thread-safe, including across instances bound to one file. */
    void put(const std::string &key, const ResultRow &row);

    size_t size() const
    {
        momsim::MutexLock lock(_mutex);
        return _rows.size();
    }

    /** Append-file path; empty for an in-memory store. */
    std::string path() const
    {
        momsim::MutexLock lock(_mutex);
        return _path;
    }

  private:
    mutable momsim::Mutex _mutex;
    std::unordered_map<std::string, ResultRow> _rows GUARDED_BY(_mutex);
    std::string _path GUARDED_BY(_mutex);
    /** Per-canonical-file process-wide append lock; which lock this
     *  points at is guarded by _mutex (openDir rebinds it), the lock
     *  itself is a capability in its own right. */
    momsim::Mutex *_appendLock GUARDED_BY(_mutex) = nullptr;
};

/** One point of a planned sweep. */
struct PlannedPoint
{
    ExperimentSpec spec;
    std::string key;            ///< resultCacheKey of the spec
    double cost = 1.0;          ///< specCost of the spec
    int shard = 0;              ///< 0-based owning shard
    bool cached = false;        ///< store hit at planning time
    ResultRow row;              ///< the cached row (valid when cached)
};

/**
 * The full sweep with per-point responsibilities resolved. Points stay
 * in sweep order; the runner simulates exactly the points that are
 * this shard's and missed the cache, and splices cached rows back in
 * place.
 */
struct RunPlan
{
    std::vector<PlannedPoint> points;
    int shardIndex = 0;         ///< 0-based
    int shardCount = 1;

    /** Points assigned to this shard. */
    size_t mineCount() const;
    /** This shard's points satisfied from the store. */
    size_t cachedMineCount() const;
    /** This shard's points that must be simulated. */
    size_t simulateCount() const;
};

/**
 * The cost-weighted deal shared by planSweep and the fabric
 * coordinator: assign each item (by its cost) to one of @p binCount
 * bins, heaviest first onto the least-loaded bin (LPT). Ties break
 * toward input order and the lowest bin, so the assignment is a pure
 * function of the cost list — every process that computes it agrees.
 * Returns the bin index per item, in input order.
 */
std::vector<int> dealByCost(const std::vector<double> &costs,
                            int binCount);

/** Per-spec workload fingerprint source (name -> content hash). */
using WorkloadFingerprintFn = std::function<uint64_t(const std::string &)>;
/** Per-spec cost model override (tests inject constants). */
using SpecCostFn = std::function<double(const ExperimentSpec &)>;

/**
 * Key every spec, look it up in @p store (may be null), and deal the
 * points across @p shardCount shards cost-weighted (longest-processing-
 * time-first onto the least-loaded shard; ties break toward sweep
 * order and the lowest shard, so the assignment is deterministic and
 * identical in every shard process regardless of local cache state).
 * Each spec is keyed with its own workload's fingerprint, so one plan
 * spans several mixes and invalidation stays per-workload.
 */
RunPlan planSweep(std::vector<ExperimentSpec> specs,
                  const WorkloadFingerprintFn &fingerprintOf,
                  const SpecCostFn &costOf,
                  const ResultStore *store = nullptr, int shardIndex = 0,
                  int shardCount = 1);

/**
 * The common case: fingerprints and program counts from @p repo
 * (workloads build on first use — callers wanting concurrency prebuild
 * via WorkloadRepo::missing + the pool first).
 */
RunPlan planSweep(std::vector<ExperimentSpec> specs,
                  workloads::WorkloadRepo &repo,
                  const ResultStore *store = nullptr, int shardIndex = 0,
                  int shardCount = 1);

} // namespace momsim::driver

#endif // MOMSIM_DRIVER_RESULT_STORE_HH
