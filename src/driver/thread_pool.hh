/**
 * @file
 * Work-stealing thread pool for the experiment runner.
 *
 * The pool exposes one primitive, parallelFor(n, body): run body(i) for
 * every index in [0, n) across the workers. Indices are dealt into
 * per-worker deques up front (deterministically); each worker drains
 * its own deque LIFO and, when empty, steals FIFO from a victim so
 * long-running tails are shared. Results must be written to per-index
 * slots by the caller, which makes the outcome independent of the
 * interleaving — the determinism contract the experiment runner builds
 * on.
 *
 * The deal is cost-aware when the caller knows per-index costs (the
 * sweep planner's specCost): indices are assigned longest-processing-
 * time-first onto the least-loaded worker, and each worker starts with
 * its heaviest index, so an expensive tail task is never the last one
 * dealt. Without costs the deal is contiguous blocks. Either way the
 * assignment depends only on (n, costs, pool size) — never on timing.
 *
 * A pool of size 1 never spawns a thread: parallelFor runs inline on
 * the caller, which gives an exact serial reference for `--jobs 1`
 * vs `--jobs N` equivalence checks.
 */

#ifndef MOMSIM_DRIVER_THREAD_POOL_HH
#define MOMSIM_DRIVER_THREAD_POOL_HH

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"

namespace momsim::driver
{

class ThreadPool
{
  public:
    /** @p numWorkers <= 0 selects the hardware concurrency. */
    explicit ThreadPool(int numWorkers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total workers, including the calling thread (>= 1). */
    int size() const { return _size; }

    /**
     * Invoke @p body(i) for every i in [0, n); blocks until all
     * complete. The first exception thrown by any body is rethrown
     * here after the batch drains. Not reentrant.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &body);

    /**
     * As above, but deal indices cost-weighted: @p costs[i] is the
     * relative expense of body(i), and the initial assignment is LPT
     * (heaviest first onto the least-loaded worker). @p costs must be
     * empty (contiguous deal) or hold exactly n entries. The result is
     * identical to the uncosted overload — only the schedule differs.
     */
    void parallelFor(size_t n, const std::vector<double> &costs,
                     const std::function<void(size_t)> &body);

    /** The pool size used when the user does not pass --jobs. */
    static int defaultWorkers();

  private:
    struct Queue
    {
        momsim::Mutex mutex;
        std::deque<size_t> tasks GUARDED_BY(mutex);
    };

    void workerLoop(int self);
    /// Run tasks until every deque is empty. @p body is the batch body
    /// snapshotted under _mutex by the caller, so task execution never
    /// touches _body unlocked.
    void drain(int self, const std::function<void(size_t)> &body);
    bool popOwn(int self, size_t &idx);
    bool steal(int self, size_t &idx);
    void runTask(const std::function<void(size_t)> &body, size_t idx);

    int _size = 1;
    std::vector<std::unique_ptr<Queue>> _queues;
    std::vector<std::thread> _threads;

    momsim::Mutex _mutex;
    momsim::CondVar _wake;              ///< workers wait for a batch
    momsim::CondVar _done;              ///< caller waits for completion
    const std::function<void(size_t)> *_body GUARDED_BY(_mutex) = nullptr;
    size_t _remaining GUARDED_BY(_mutex) = 0;   ///< tasks not yet finished
    uint64_t _batchId GUARDED_BY(_mutex) = 0;   ///< bumped per parallelFor
    bool _stopping GUARDED_BY(_mutex) = false;
    std::exception_ptr _firstError GUARDED_BY(_mutex);
};

} // namespace momsim::driver

#endif // MOMSIM_DRIVER_THREAD_POOL_HH
