#include "driver/experiment.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "core/simulation.hh"
#include "driver/point_scheduler.hh"
#include "driver/result_store.hh"

namespace momsim::driver
{

uint64_t
mixSeed(uint64_t base, const std::string &key)
{
    // FNV-1a over the key, folded into the base via SplitMix64.
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : key) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    uint64_t z = base ^ h;
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

void
applyRunSelection(SweepGrid &grid,
                  const std::vector<std::string> &workloads,
                  uint64_t maxCycles)
{
    if (!grid.hasExplicitWorkloads()) {
        grid.workloadSpecs(workloads.empty()
                               ? std::vector<std::string> { "paper" }
                               : workloads);
    }
    if (maxCycles != 0)
        grid.limits(grid.targetCompletionsValue(), maxCycles);
}

std::string
ExperimentSpec::canonicalId() const
{
    std::string out = strfmt("%s/%s/%dthr/%s/%s", workload.c_str(),
                             isa::toString(simd), threads,
                             mem::toString(memModel),
                             cpu::toString(policy));
    if (!variant.empty())
        out += "/" + variant;
    return out;
}

SweepGrid &
SweepGrid::workloadSpecs(std::vector<std::string> v)
{
    MOMSIM_ASSERT(!v.empty(), "workload axis cannot be empty");
    for (size_t i = 0; i < v.size(); ++i)
        for (size_t j = i + 1; j < v.size(); ++j)
            MOMSIM_ASSERT(v[i] != v[j],
                          "duplicate workload in the axis: repeated "
                          "names expand identical ids and seeds");
    _workloads = std::move(v);
    _explicitWorkloads = true;
    return *this;
}

SweepGrid &
SweepGrid::isas(std::vector<isa::SimdIsa> v)
{
    _isas = std::move(v);
    return *this;
}

SweepGrid &
SweepGrid::threadCounts(std::vector<int> v)
{
    _threads = std::move(v);
    return *this;
}

SweepGrid &
SweepGrid::memModels(std::vector<mem::MemModel> v)
{
    _mems = std::move(v);
    return *this;
}

SweepGrid &
SweepGrid::policies(std::vector<cpu::FetchPolicy> v)
{
    _policies = std::move(v);
    return *this;
}

SweepGrid &
SweepGrid::variants(std::vector<SweepVariant> v)
{
    _variants = std::move(v);
    return *this;
}

SweepGrid &
SweepGrid::skip(std::function<bool(const ExperimentSpec &)> pred)
{
    _skip = std::move(pred);
    return *this;
}

SweepGrid &
SweepGrid::limits(int targetCompletions, uint64_t maxCycles)
{
    _targetCompletions = targetCompletions;
    _maxCycles = maxCycles;
    return *this;
}

size_t
SweepGrid::size() const
{
    size_t variants = _variants.empty() ? 1 : _variants.size();
    return _workloads.size() * _isas.size() * _threads.size() *
           _mems.size() * _policies.size() * variants;
}

std::vector<ExperimentSpec>
SweepGrid::expand(uint64_t baseSeed) const
{
    static const std::vector<SweepVariant> kNoVariant { { "", nullptr } };
    std::vector<ExperimentSpec> out;
    out.reserve(size());
    const std::vector<SweepVariant> &variants =
        _variants.empty() ? kNoVariant : _variants;
    for (const std::string &workload : _workloads) {
    for (isa::SimdIsa simd : _isas) {
        for (int threads : _threads) {
            for (mem::MemModel memModel : _mems) {
                for (cpu::FetchPolicy policy : _policies) {
                    for (const SweepVariant &variant : variants) {
                        ExperimentSpec spec;
                        spec.workload = workload;
                        spec.simd = simd;
                        spec.threads = threads;
                        spec.memModel = memModel;
                        spec.policy = policy;
                        spec.variant = variant.label;
                        spec.targetCompletions = _targetCompletions;
                        spec.maxCycles = _maxCycles;
                        if (variant.apply)
                            variant.apply(spec);
                        spec.id = spec.canonicalId();
                        // Seed from identity, not list position, so
                        // skip() cannot shift the seeds of survivors.
                        spec.seed = mixSeed(baseSeed, spec.id);
                        if (_skip && _skip(spec))
                            continue;
                        out.push_back(std::move(spec));
                    }
                }
            }
        }
    }
    }
    return out;
}

ResultRow
ExperimentRunner::runOne(const ExperimentSpec &spec) const
{
    return runBatch({ &spec }).front();
}

std::vector<ResultRow>
ExperimentRunner::runBatch(
    const std::vector<const ExperimentSpec *> &specs) const
{
    return runSpecBatch(_repo, specs);
}

std::vector<ResultRow>
runSpecBatch(workloads::WorkloadRepo &repo,
             const std::vector<const ExperimentSpec *> &specs)
{
    MOMSIM_ASSERT(!specs.empty(), "empty batch");
    using clock = std::chrono::steady_clock;
    constexpr uint64_t kBatchQuantumCycles =
        ExperimentRunner::kBatchQuantumCycles;

    // Construct every machine up front, then arm the runs. The
    // per-spec setup wall time is attributed to that spec's row; the
    // interleaved simulation time is self-measured per advance() by
    // each Simulation.
    struct Active
    {
        std::shared_ptr<const workloads::MediaWorkload> workload;
        std::unique_ptr<core::Simulation> sim;
        double setupMs = 0.0;
    };
    std::vector<Active> act(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        const ExperimentSpec &spec = *specs[i];
        auto start = clock::now();

        cpu::CoreConfig cfg =
            cpu::CoreConfig::preset(spec.threads, spec.simd, spec.policy);
        if (spec.tweakCore)
            spec.tweakCore(cfg);

        mem::MemConfig memCfg;
        if (spec.tweakMem)
            spec.tweakMem(memCfg);

        act[i].workload = repo.get(spec.workload);
        act[i].sim = std::make_unique<core::Simulation>(
            cfg, spec.memModel, act[i].workload->rotation(spec.simd),
            memCfg);
        act[i].sim->begin(spec.targetCompletions, spec.maxCycles);
        act[i].setupMs = std::chrono::duration<double, std::milli>(
                             clock::now() - start)
                             .count();
    }

    // Round-robin the runs in fixed cycle quanta until all complete.
    // The machines are fully independent — interleaving only changes
    // which simulation the worker touches next, never what any of
    // them computes, so each row is byte-identical to a solo run.
    size_t live = 0;
    for (const Active &a : act)
        live += a.sim->done() ? 0 : 1;
    while (live > 0) {
        for (Active &a : act) {
            if (a.sim->done())
                continue;
            if (a.sim->advance(kBatchQuantumCycles))
                live -= 1;
        }
    }

    std::vector<ResultRow> rows(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        const ExperimentSpec &spec = *specs[i];
        core::RunResult run = act[i].sim->finish();
        ResultRow row;
        row.id = spec.id.empty() ? spec.canonicalId() : spec.id;
        row.workload = spec.workload;
        row.simd = spec.simd;
        row.threads = spec.threads;
        row.memModel = spec.memModel;
        row.policy = spec.policy;
        row.variant = spec.variant;
        row.seed = spec.seed;
        row.run = run;
        row.headline = ResultSink::headlineOf(run, spec.simd);
        row.wallMs = act[i].setupMs + run.wallMs;
        rows[i] = std::move(row);
    }
    return rows;
}

void
ExperimentRunner::prebuildWorkloads(const std::vector<std::string> &names)
{
    // Distinct missing specs synthesize concurrently on the pool;
    // without this, the first sweep point for each workload would
    // build it serially inside runOne.
    std::vector<std::string> todo = _repo.missing(names);
    _pool.parallelFor(todo.size(),
                      [this, &todo](size_t i) { _repo.get(todo[i]); });
}

ResultSink
ExperimentRunner::run(const std::vector<ExperimentSpec> &specs)
{
    std::vector<std::string> names;
    names.reserve(specs.size());
    for (const ExperimentSpec &spec : specs)
        names.push_back(spec.workload);
    prebuildWorkloads(names);

    std::vector<double> costs(specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        costs[i] = specCost(specs[i],
                            _repo.get(specs[i].workload)->numPrograms());

    // Deal ceil(n/K) groups of K consecutive points to the pool; each
    // group's cost is the sum of its members' so the LPT deal stays
    // balanced. K == 1 degenerates to one task per point.
    const size_t k = static_cast<size_t>(_batchSize);
    const size_t groups = (specs.size() + k - 1) / k;
    std::vector<double> groupCosts(groups, 0.0);
    for (size_t i = 0; i < specs.size(); ++i)
        groupCosts[i / k] += costs[i];

    std::vector<ResultRow> rows(specs.size());
    _pool.parallelFor(groups, groupCosts,
                      [this, k, &specs, &rows](size_t g) {
                          size_t lo = g * k;
                          size_t hi = std::min(specs.size(), lo + k);
                          std::vector<const ExperimentSpec *> batch;
                          batch.reserve(hi - lo);
                          for (size_t i = lo; i < hi; ++i)
                              batch.push_back(&specs[i]);
                          std::vector<ResultRow> out = runBatch(batch);
                          for (size_t i = lo; i < hi; ++i)
                              rows[i] = std::move(out[i - lo]);
                      });

    ResultSink sink;
    for (ResultRow &row : rows)
        sink.append(std::move(row));
    return sink;
}

ResultSink
ExperimentRunner::run(const SweepGrid &grid, uint64_t baseSeed)
{
    return run(grid.expand(baseSeed));
}

ResultSink
ExperimentRunner::run(const RunPlan &plan, ResultStore *store,
                      const RowFn &onRow)
{
    std::vector<size_t> todo;
    std::vector<double> costs;
    std::vector<std::string> names;
    for (size_t i = 0; i < plan.points.size(); ++i) {
        const PlannedPoint &p = plan.points[i];
        if (p.shard == plan.shardIndex && !p.cached) {
            todo.push_back(i);
            costs.push_back(p.cost);
            names.push_back(p.spec.workload);
        }
    }
    // Only the workloads this shard actually simulates are built; a
    // fully-cached re-run synthesizes nothing at all.
    prebuildWorkloads(names);

    // Deal ceil(n/K) groups of K consecutive misses to the pool (K ==
    // 1 degenerates to one task per point); groups carry summed costs
    // so the LPT deal stays balanced.
    const size_t k = static_cast<size_t>(_batchSize);
    const size_t groups = (todo.size() + k - 1) / k;
    std::vector<double> groupCosts(groups, 0.0);
    for (size_t i = 0; i < todo.size(); ++i)
        groupCosts[i / k] += costs[i];

    // Persist each row the moment its batch finishes (not after the
    // whole sweep): an interrupted multi-hour run then resumes from
    // its last completed point instead of from scratch. The store is
    // not thread-safe, so puts serialize through a mutex.
    momsim::Mutex storeMutex;
    std::vector<ResultRow> fresh(todo.size());
    _pool.parallelFor(groups, groupCosts,
                      [this, k, &plan, &todo, &fresh, store, &onRow,
                       &storeMutex](size_t g) {
                          size_t lo = g * k;
                          size_t hi = std::min(todo.size(), lo + k);
                          std::vector<const ExperimentSpec *> batch;
                          batch.reserve(hi - lo);
                          for (size_t i = lo; i < hi; ++i)
                              batch.push_back(&plan.points[todo[i]].spec);
                          std::vector<ResultRow> out = runBatch(batch);
                          for (size_t i = lo; i < hi; ++i) {
                              if (store || onRow) {
                                  MutexLock lock(storeMutex);
                                  if (store)
                                      store->put(plan.points[todo[i]].key,
                                                 out[i - lo]);
                                  if (onRow)
                                      onRow(plan.points[todo[i]],
                                            out[i - lo]);
                              }
                              fresh[i] = std::move(out[i - lo]);
                          }
                      });

    // Splice in sweep order: cached rows verbatim, fresh rows from the
    // pool.
    ResultSink sink;
    size_t next = 0;
    for (const PlannedPoint &p : plan.points) {
        if (p.shard != plan.shardIndex)
            continue;
        if (p.cached) {
            sink.append(p.row);
        } else {
            sink.append(std::move(fresh[next]));
            ++next;
        }
    }
    return sink;
}

ResultSink
runPlanOnScheduler(PointScheduler &sched, workloads::WorkloadRepo &repo,
                   const RunPlan &plan, int batchSize,
                   ResultStore *store,
                   const ExperimentRunner::RowFn &onRow)
{
    std::vector<size_t> todo;
    for (size_t i = 0; i < plan.points.size(); ++i) {
        const PlannedPoint &p = plan.points[i];
        if (p.shard == plan.shardIndex && !p.cached)
            todo.push_back(i);
    }

    // Deliveries run on scheduler workers (several rows of this
    // request may complete concurrently) — one mutex preserves the
    // RowFn/store contract: puts and onRow fire serialized, per row,
    // the moment it completes. Rows the request did not simulate
    // itself (joins, memory-cache replays) pass through here too, so
    // a request-private --cache-dir still ends up complete.
    std::vector<ResultRow> fresh(todo.size());
    momsim::Mutex deliverMutex;
    PointScheduler::Request request(
        sched,
        [&repo](const std::vector<const ExperimentSpec *> &specs) {
            return runSpecBatch(repo, specs);
        },
        [&](size_t slot, const ResultRow &row) {
            MutexLock lock(deliverMutex);
            if (store)
                store->put(plan.points[todo[slot]].key, row);
            if (onRow)
                onRow(plan.points[todo[slot]], row);
            fresh[slot] = row;
        },
        batchSize);
    for (size_t i : todo)
        request.add(plan.points[i].spec, plan.points[i].key);
    request.wait();

    // Splice in sweep order, exactly like the pool path above.
    ResultSink sink;
    size_t next = 0;
    for (const PlannedPoint &p : plan.points) {
        if (p.shard != plan.shardIndex)
            continue;
        if (p.cached) {
            sink.append(p.row);
        } else {
            sink.append(std::move(fresh[next]));
            ++next;
        }
    }
    return sink;
}

} // namespace momsim::driver
