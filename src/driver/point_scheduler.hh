/**
 * @file
 * PointScheduler — the process-wide, point-level execution engine
 * behind concurrent request serving.
 *
 * Every submitted sweep (a `momsim batch` line, a serve connection's
 * request, a fabric shard_run deal) decomposes into content-addressed
 * sweep points; this scheduler owns the one worker pool they all feed,
 * and layers three request-path properties on top of raw execution:
 *
 *  - **Singleflight dedup**: a point already queued or executing for
 *    another request is *joined*, not re-simulated. The key is the
 *    existing result-cache key (canonical id + config fingerprint +
 *    workload fingerprint + schema/sim versions), so "same point"
 *    means byte-identical row by construction — N concurrent identical
 *    sweeps cost ~1x simulation instead of Nx.
 *  - **In-memory LRU row cache**: recently completed rows are served
 *    from memory without touching the disk ResultStore, bounded at
 *    `memCacheRows` rows (0 disables).
 *  - **Fair interleaved dispatch**: workers pick the next task group
 *    round-robin across *active requests*, not FIFO across the global
 *    queue — a 2-point request submitted behind a 600-point sweep gets
 *    its points onto a worker within one rotation instead of waiting
 *    for the whole sweep (no head-of-line blocking).
 *
 * Determinism contract: rows are deterministic per point and the key
 * embeds everything that could change them, so whether a request's row
 * was freshly simulated, joined from another request's in-flight
 * execution, or replayed from the memory cache is *unobservable* in
 * the bytes delivered — only the gauge counters can tell. All existing
 * byte-identity gates therefore hold verbatim over this scheduler.
 *
 * Threading: every public entry point is thread-safe. Requests are
 * driven by their submitting thread (add points, then wait); delivery
 * callbacks fire on scheduler workers (or on the submitting thread for
 * memory-cache hits), serialized per request by the caller's own lock
 * if it needs one (driver::runPlanOnScheduler takes one).
 */

#ifndef MOMSIM_DRIVER_POINT_SCHEDULER_HH
#define MOMSIM_DRIVER_POINT_SCHEDULER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "driver/result_sink.hh"

namespace momsim::driver
{

struct ExperimentSpec;
struct PointRequestState;
struct PointSchedulerState;

class PointScheduler
{
  public:
    struct Config
    {
        int workers = 0;            ///< worker threads; <=0 => hardware
        size_t memCacheRows = 4096; ///< LRU row-cache capacity; 0 = off
    };

    /**
     * The scheduler's gauge set, exported by the serve ping and
     * `momsim batch --stats`. Simulated + deduped + memCacheHits +
     * the caller-reported diskCacheHits account for every point every
     * request was answered (exactly-once execution is the dedup
     * acceptance gate: N identical concurrent requests must leave
     * pointsSimulated at 1x the sweep size).
     */
    struct Counters
    {
        uint64_t pointsSimulated = 0;   ///< executed on a worker
        uint64_t pointsDeduped = 0;     ///< joined an in-flight point
        uint64_t memCacheHits = 0;      ///< served from the LRU cache
        uint64_t diskCacheHits = 0;     ///< planning-time store hits
        uint64_t requestsStarted = 0;   ///< Request handles ever opened
        int activeRequests = 0;         ///< handles open right now
    };

    PointScheduler();           ///< default Config
    explicit PointScheduler(Config cfg);
    ~PointScheduler();

    PointScheduler(const PointScheduler &) = delete;
    PointScheduler &operator=(const PointScheduler &) = delete;

    int workers() const;
    Counters counters() const;

    /** Fold planning-time disk-store hits into the gauge set — the
     *  scheduler never sees those points, but the operator counting
     *  "where did my rows come from" should. */
    void noteDiskCacheHits(uint64_t n);

    /** Simulate a group of points on a worker thread; row i answers
     *  spec i. One call per dispatched task group (the request's batch
     *  size K controls grouping, exactly like the pool path). */
    using ExecFn = std::function<std::vector<ResultRow>(
        const std::vector<const ExperimentSpec *> &)>;

    /** Deliver the row of slot @p slot (the add() ordinal) to the
     *  request. Runs on a worker thread, or on the submitting thread
     *  for memory-cache hits; must not throw. */
    using DeliverFn =
        std::function<void(size_t slot, const ResultRow &row)>;

    /**
     * One request's handle on the scheduler. The owning thread add()s
     * every point (specs must stay alive until wait() returns), then
     * wait()s for all deliveries; the handle deregisters from the fair-
     * dispatch rotation when wait() completes. Not thread-safe itself —
     * one driving thread per handle, like a ResultSink.
     */
    class Request
    {
      public:
        Request(PointScheduler &sched, ExecFn exec, DeliverFn deliver,
                int batchSize = 1);
        ~Request();

        Request(const Request &) = delete;
        Request &operator=(const Request &) = delete;

        /**
         * Schedule one point. Slot ids are the add() ordinals, starting
         * at 0. A memory-cache hit delivers before returning; an
         * in-flight duplicate joins the executing request; otherwise
         * the point queues on this request's own lane (grouped K
         * consecutive points per worker task).
         */
        void add(const ExperimentSpec &spec, const std::string &key);

        /**
         * Flush any open partial group, then block until every added
         * point was delivered (or failed). Rethrows the first exec
         * failure after the request fully drains. Idempotent.
         */
        void wait();

      private:
        PointScheduler &_sched;
        std::shared_ptr<PointRequestState> _state;
        bool _waited = false;
    };

  private:
    friend class Request;

    std::shared_ptr<PointRequestState>
    registerRequest(ExecFn exec, DeliverFn deliver, int batchSize);
    void addPoint(const std::shared_ptr<PointRequestState> &req,
                  const ExperimentSpec &spec, const std::string &key);
    void waitRequest(const std::shared_ptr<PointRequestState> &req);
    void workerLoop();

    std::unique_ptr<PointSchedulerState> _state;
};

} // namespace momsim::driver

#endif // MOMSIM_DRIVER_POINT_SCHEDULER_HH
