#include "driver/point_scheduler.hh"

#include <algorithm>
#include <deque>
#include <list>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/logging.hh"
#include "common/thread_annotations.hh"
#include "driver/experiment.hh"

namespace momsim::driver
{

namespace
{

/** One scheduled-but-unfinished point of a request. */
struct PendingPoint
{
    const ExperimentSpec *spec = nullptr;
    std::string key;
    size_t slot = 0;
};

} // namespace

/**
 * Mutable request fields (nextSlot, open, queue, undelivered, error)
 * are guarded by the owning PointSchedulerState's mutex. That guard is
 * not expressible as a GUARDED_BY here — the capability lives on
 * another object — so the scheduler's REQUIRES-annotated sections are
 * where the analysis enforces it; exec/deliver/batchSize are
 * set once at registration and immutable after.
 */
struct PointRequestState
{
    PointScheduler::ExecFn exec;
    PointScheduler::DeliverFn deliver;
    size_t batchSize = 1;
    size_t nextSlot = 0;

    /** The accumulating partial group (< batchSize points). */
    std::vector<PendingPoint> open;
    /** Sealed task groups awaiting a worker, oldest first. */
    std::deque<std::vector<PendingPoint>> queue;
    /** Points added but not yet delivered or failed. */
    size_t undelivered = 0;
    /** First execution failure; rethrown from wait(). */
    std::exception_ptr error;
};

struct PointSchedulerState
{
    /** A point queued or executing; joiners receive its row too. */
    struct Inflight
    {
        std::vector<std::pair<std::shared_ptr<PointRequestState>, size_t>>
            joiners;
    };

    explicit PointSchedulerState(size_t cacheRows)
        : memCacheRows(cacheRows)
    {}

    Mutex mutex;
    CondVar workCv;                     ///< workers: "a group is queued"
    CondVar doneCv;                     ///< requests: "a delivery landed"

    std::vector<std::shared_ptr<PointRequestState>> active
        GUARDED_BY(mutex);
    size_t cursor GUARDED_BY(mutex) = 0;    ///< round-robin position

    std::unordered_map<std::string, Inflight> inflight GUARDED_BY(mutex);

    // LRU row cache: list front = most recent; index into the list.
    const size_t memCacheRows;          ///< capacity; fixed at creation
    std::list<std::pair<std::string, ResultRow>> lru GUARDED_BY(mutex);
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, ResultRow>>::iterator>
        lruIndex GUARDED_BY(mutex);

    PointScheduler::Counters counters GUARDED_BY(mutex);

    bool stop GUARDED_BY(mutex) = false;
    std::vector<std::thread> workers;   ///< ctor/dtor only

    bool anyQueuedLocked() const REQUIRES(mutex)
    {
        for (const auto &req : active) {
            if (!req->queue.empty())
                return true;
        }
        return false;
    }

    bool lruFindLocked(const std::string &key, ResultRow &out)
        REQUIRES(mutex)
    {
        auto it = lruIndex.find(key);
        if (it == lruIndex.end())
            return false;
        lru.splice(lru.begin(), lru, it->second);   // touch: move to MRU
        out = lru.front().second;
        return true;
    }

    void lruInsertLocked(const std::string &key, const ResultRow &row)
        REQUIRES(mutex)
    {
        if (memCacheRows == 0)
            return;
        auto it = lruIndex.find(key);
        if (it != lruIndex.end()) {
            lru.splice(lru.begin(), lru, it->second);
            lru.front().second = row;
            return;
        }
        lru.emplace_front(key, row);
        lruIndex[key] = lru.begin();
        while (lru.size() > memCacheRows) {
            lruIndex.erase(lru.back().first);
            lru.pop_back();
        }
    }
};

PointScheduler::PointScheduler() : PointScheduler(Config {}) {}

PointScheduler::PointScheduler(Config cfg)
    : _state(std::make_unique<PointSchedulerState>(cfg.memCacheRows))
{
    unsigned n = cfg.workers > 0
                     ? static_cast<unsigned>(cfg.workers)
                     : std::thread::hardware_concurrency();
    if (n == 0)
        n = 1;
    _state->workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        _state->workers.emplace_back([this] { workerLoop(); });
}

PointScheduler::~PointScheduler()
{
    {
        MutexLock lock(_state->mutex);
        _state->stop = true;
    }
    _state->workCv.notify_all();
    for (std::thread &t : _state->workers)
        t.join();
}

int
PointScheduler::workers() const
{
    return static_cast<int>(_state->workers.size());
}

PointScheduler::Counters
PointScheduler::counters() const
{
    MutexLock lock(_state->mutex);
    return _state->counters;
}

void
PointScheduler::noteDiskCacheHits(uint64_t n)
{
    if (n == 0)
        return;
    MutexLock lock(_state->mutex);
    _state->counters.diskCacheHits += n;
}

std::shared_ptr<PointRequestState>
PointScheduler::registerRequest(ExecFn exec, DeliverFn deliver,
                                int batchSize)
{
    auto req = std::make_shared<PointRequestState>();
    req->exec = std::move(exec);
    req->deliver = std::move(deliver);
    req->batchSize = batchSize < 1 ? 1 : static_cast<size_t>(batchSize);
    MutexLock lock(_state->mutex);
    _state->active.push_back(req);
    _state->counters.requestsStarted += 1;
    _state->counters.activeRequests =
        static_cast<int>(_state->active.size());
    return req;
}

void
PointScheduler::addPoint(const std::shared_ptr<PointRequestState> &req,
                         const ExperimentSpec &spec,
                         const std::string &key)
{
    ResultRow hit;
    size_t slot;
    {
        MutexLock lock(_state->mutex);
        slot = req->nextSlot++;

        if (_state->lruFindLocked(key, hit)) {
            _state->counters.memCacheHits += 1;
            // fall through to deliver outside the lock
        } else if (auto it = _state->inflight.find(key);
                   it != _state->inflight.end()) {
            // Singleflight: ride the execution some request already
            // queued — this is the "N concurrent identical sweeps cost
            // ~1x" path.
            it->second.joiners.emplace_back(req, slot);
            _state->counters.pointsDeduped += 1;
            req->undelivered += 1;
            return;
        } else {
            _state->inflight.emplace(key,
                                     PointSchedulerState::Inflight {});
            req->open.push_back(PendingPoint { &spec, key, slot });
            req->undelivered += 1;
            if (req->open.size() >= req->batchSize) {
                req->queue.push_back(std::move(req->open));
                req->open.clear();
                _state->workCv.notify_one();
            }
            return;
        }
    }
    req->deliver(slot, hit);
}

void
PointScheduler::waitRequest(const std::shared_ptr<PointRequestState> &req)
{
    MutexLock lock(_state->mutex);
    if (!req->open.empty()) {
        req->queue.push_back(std::move(req->open));
        req->open.clear();
        _state->workCv.notify_one();
    }
    while (req->undelivered != 0)
        _state->doneCv.wait(_state->mutex);

    auto &active = _state->active;
    active.erase(std::remove(active.begin(), active.end(), req),
                 active.end());
    if (!active.empty())
        _state->cursor %= active.size();
    else
        _state->cursor = 0;
    _state->counters.activeRequests = static_cast<int>(active.size());

    std::exception_ptr error = req->error;
    req->error = nullptr;
    lock.unlock();
    if (error)
        std::rethrow_exception(error);
}

void
PointScheduler::workerLoop()
{
    PointSchedulerState &s = *_state;
    MutexLock lock(s.mutex);
    for (;;) {
        while (!s.stop && !s.anyQueuedLocked())
            s.workCv.wait(s.mutex);
        if (s.stop)
            return;

        // Fair dispatch: scan the active requests round-robin from the
        // rotating cursor and take ONE group from the first that has
        // work — so every active request gets a worker within one
        // rotation, regardless of how deep any single request's queue
        // is.
        std::shared_ptr<PointRequestState> req;
        const size_t n = s.active.size();
        for (size_t i = 0; i < n; ++i) {
            auto &cand = s.active[(s.cursor + i) % n];
            if (!cand->queue.empty()) {
                req = cand;
                s.cursor = (s.cursor + i + 1) % n;
                break;
            }
        }
        if (!req)
            continue;       // raced another worker; re-wait
        std::vector<PendingPoint> group = std::move(req->queue.front());
        req->queue.pop_front();
        lock.unlock();

        std::vector<const ExperimentSpec *> specs;
        specs.reserve(group.size());
        for (const PendingPoint &p : group)
            specs.push_back(p.spec);

        std::vector<ResultRow> rows;
        std::exception_ptr error;
        try {
            rows = req->exec(specs);
            if (rows.size() != specs.size())
                throw std::runtime_error(
                    "point scheduler: exec returned wrong row count");
        } catch (...) {
            error = std::current_exception();
        }

        // Resolve every point of the group under the lock: publish to
        // the LRU, collect the owner + joiner deliveries, and retire
        // the in-flight entries — then run the delivery callbacks
        // outside the lock.
        struct Delivery
        {
            std::shared_ptr<PointRequestState> req;
            size_t slot;
            size_t rowIdx;
        };
        std::vector<Delivery> deliveries;
        lock.lock();
        if (!error)
            s.counters.pointsSimulated += group.size();
        for (size_t i = 0; i < group.size(); ++i) {
            if (!error) {
                s.lruInsertLocked(group[i].key, rows[i]);
                deliveries.push_back(
                    Delivery { req, group[i].slot, i });
            }
            auto it = s.inflight.find(group[i].key);
            MOMSIM_ASSERT(it != s.inflight.end(),
                          "executed point missing from inflight map");
            for (auto &joiner : it->second.joiners) {
                if (!error) {
                    deliveries.push_back(Delivery { joiner.first,
                                                    joiner.second, i });
                } else {
                    if (!joiner.first->error)
                        joiner.first->error = error;
                    joiner.first->undelivered -= 1;
                }
            }
            s.inflight.erase(it);
            if (error) {
                if (!req->error)
                    req->error = error;
                req->undelivered -= 1;
            }
        }
        if (error) {
            lock.unlock();
            s.doneCv.notify_all();
            lock.lock();
            continue;
        }
        lock.unlock();

        for (const Delivery &d : deliveries) {
            try {
                d.req->deliver(d.slot, rows[d.rowIdx]);
            } catch (...) {
                MutexLock errLock(s.mutex);
                if (!d.req->error)
                    d.req->error = std::current_exception();
            }
        }

        lock.lock();
        for (const Delivery &d : deliveries)
            d.req->undelivered -= 1;
        lock.unlock();
        s.doneCv.notify_all();
        lock.lock();
    }
}

PointScheduler::Request::Request(PointScheduler &sched, ExecFn exec,
                                 DeliverFn deliver, int batchSize)
    : _sched(sched),
      _state(sched.registerRequest(std::move(exec), std::move(deliver),
                                   batchSize))
{}

PointScheduler::Request::~Request()
{
    if (_waited)
        return;
    // A handle abandoned without wait() still has to drain (workers
    // hold references to its state) — but a destructor cannot rethrow.
    try {
        wait();
    } catch (...) {
    }
}

void
PointScheduler::Request::add(const ExperimentSpec &spec,
                             const std::string &key)
{
    MOMSIM_ASSERT(!_waited, "add() after wait()");
    _sched.addPoint(_state, spec, key);
}

void
PointScheduler::Request::wait()
{
    if (_waited)
        return;
    _waited = true;
    _sched.waitRequest(_state);
}

} // namespace momsim::driver
