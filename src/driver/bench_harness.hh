/**
 * @file
 * Shared command-line harness for the figure/table subcommands of the
 * `momsim` multi-tool and the examples — the successor of
 * bench/bench_util.hh's hand-rolled loops.
 *
 * The flags every subcommand accepts are defined once, in
 * BenchOptions::flagTable(): spelling, alias, value placeholder and
 * help line. takesValue(), the usage synopsis, `momsim help <bench>`
 * and this documentation all derive from that table, so they cannot
 * drift from the parser. Flags worth extra context beyond their table
 * help line:
 *
 *   --max-cycles  the cap is part of the result-store key, so rows
 *                 cached under different limits never collide
 *   --seed        today's simulations are fully deterministic and
 *                 consume no randomness, so --seed never changes
 *                 results — it exists so future stochastic components
 *                 inherit per-task reproducibility
 *   --cache-dir   rows are keyed by (point id, per-workload
 *                 fingerprint, schema version); re-runs simulate only
 *                 the keys that miss and splice cached rows back so
 *                 stdout stays byte-identical
 *   --shard       the slicing is deterministic and cost-weighted, so N
 *                 processes with --cache-dir cover the sweep exactly
 *                 once between them
 *   --merge       with every shard's store present the run simulates
 *                 nothing and reproduces the canonical unsharded output
 *
 * The harness owns a WorkloadRepo (at the scale --quick selects) that
 * builds each selected workload lazily, once, sharing it across every
 * sweep point; distinct workloads build concurrently on the pool. It
 * plans every sweep through the result store (see result_store.hh)
 * and hands benches an ExperimentRunner. All harness chatter goes to
 * stderr so stdout stays byte-comparable across --jobs / --cache-dir /
 * shard-and-merge settings.
 */

#ifndef MOMSIM_DRIVER_BENCH_HARNESS_HH
#define MOMSIM_DRIVER_BENCH_HARNESS_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "driver/experiment.hh"

namespace momsim::driver
{

/**
 * One harness flag: its spelling, optional short alias, the
 * placeholder name of its value (nullptr for boolean flags) and a
 * one-line help string. The single source of truth behind
 * BenchOptions::takesValue(), the generated usage/help text and the
 * `momsim help` output — the parser, the usage string and the docs can
 * no longer drift apart.
 */
struct BenchFlagInfo
{
    const char *flag;           ///< "--jobs"
    const char *alias;          ///< "-j", or nullptr
    const char *valueName;      ///< "N", or nullptr for boolean flags
    const char *help;           ///< one-line description
};

struct BenchOptions
{
    int jobs = 0;               ///< 0 => hardware concurrency
    int batch = 1;              ///< sweep points interleaved per task
    bool quick = false;
    bool dryRun = false;
    bool listWorkloads = false; ///< print the registry and exit
    uint64_t baseSeed = 0;
    uint64_t maxCycles = 0;     ///< 0 => keep the grid's own limit
    int shardIndex = 1;         ///< 1-based, <= shardCount
    int shardCount = 1;
    std::string csvPath;
    std::string jsonPath;
    std::string cacheDir;
    std::vector<std::string> mergePaths;
    /** --workload selections; empty means the default ("paper"). */
    std::vector<std::string> workloads;

    /**
     * Parse argv. On any problem (unknown flag, missing value, bad
     * --shard, unknown workload) prints a one-line error plus usage
     * and exits nonzero; --list-workloads prints the registry and
     * exits 0.
     */
    static BenchOptions parse(int argc, char **argv);

    /**
     * As parse(), but tokens that are not harness flags land in
     * @p positionals (in argv order) instead of erroring — the calling
     * convention of subcommands that take positional arguments (the
     * explorer). "-"-prefixed tokens other than the known aliases stay
     * positional too, so a negative number is never eaten as a flag.
     */
    static BenchOptions parse(int argc, char **argv,
                              std::vector<std::string> *positionals);

    /**
     * Non-exiting core of parse(): fills @p out, or returns false with
     * a one-line description in @p error. Exists so argument handling
     * is unit-testable without forking. When @p positionals is given,
     * non-flag tokens collect there instead of rejecting.
     */
    static bool parseInto(int argc, char **argv, BenchOptions &out,
                          std::string &error,
                          std::vector<std::string> *positionals = nullptr);

    /**
     * True if @p flag is a harness flag that consumes the following
     * token. Derived from flagTable(). For callers that mix harness
     * flags with their own positional arguments.
     */
    static bool takesValue(const char *flag);

    /** True if @p arg is any known harness flag (either spelling). */
    static bool isKnownFlag(const char *arg);

    /** The flag registry every piece of help text is generated from. */
    static const std::vector<BenchFlagInfo> &flagTable();

    /** The generated one-screen usage synopsis (no trailing newline). */
    static std::string usageText(const char *argv0);

    /** The generated per-flag help table (flag, value, description). */
    static std::string helpText();
};

class BenchHarness
{
  public:
    explicit BenchHarness(const BenchOptions &opts,
                          std::string name = "sweep");
    BenchHarness(int argc, char **argv, std::string name = "sweep")
        : BenchHarness(BenchOptions::parse(argc, argv), std::move(name))
    {}
    ~BenchHarness();

    const BenchOptions &options() const { return _opts; }
    bool quick() const { return _opts.quick; }
    const std::string &name() const { return _name; }

    /**
     * The user's --workload selection (default: {"paper"}). Benches
     * with no sweep stage iterate this; sweeping benches get it folded
     * into their grid by run().
     */
    const std::vector<std::string> &workloadNames() const
    {
        return _workloadNames;
    }

    /** The workload cache (Paper scale normally, Tiny under --quick). */
    workloads::WorkloadRepo &repo() { return _repo; }

    ThreadPool &pool() { return _pool; }
    ExperimentRunner &runner();

    /**
     * Plan the grid (cache lookups, shard assignment), honour
     * --dry-run, execute via the planned runner path, then honour any
     * --csv/--json request and report plan + sweep cost on stderr.
     * Grids that left the workload axis unset sweep the --workload
     * selection.
     */
    ResultSink run(const SweepGrid &grid);

    /**
     * Invoke @p fn(sub-sink, name) once per workload of the last run()
     * grid, in axis order, printing a stdout section header between
     * workloads when there is more than one — so single-workload runs
     * keep the one-table output shape they always had.
     */
    template <typename Fn>
    void
    perWorkload(const ResultSink &sink, Fn &&fn)
    {
        const std::vector<std::string> &names =
            _lastWorkloads.empty() ? _workloadNames : _lastWorkloads;
        for (const std::string &name : names) {
            sectionHeader(names, name);
            fn(sink.filtered(name), name);
        }
    }

    /**
     * The no-sweep-bench variant (table2/table3): @p fn(workload,
     * name) once per --workload selection, building each lazily, with
     * the same section-header rule as above.
     */
    template <typename Fn>
    void
    perWorkload(Fn &&fn)
    {
        for (const std::string &name : _workloadNames) {
            sectionHeader(_workloadNames, name);
            fn(*_repo.get(name), name);
        }
    }

    /**
     * For benches with no sweep stage (table2/table3, which drive the
     * pool directly). Call before doing any work: --dry-run prints an
     * empty plan and exits immediately, and shard/cache/merge flags
     * draw an upfront no-effect warning instead of N shard processes
     * silently redoing 100% of the work each.
     */
    void declareNoSweep();

  private:
    /** One header per mix, only when the run spans more than one. */
    static void
    sectionHeader(const std::vector<std::string> &names,
                  const std::string &name)
    {
        if (names.size() > 1)
            std::printf("\n=== workload: %s ===\n", name.c_str());
    }

    BenchOptions _opts;
    std::string _name;
    ThreadPool _pool;
    workloads::WorkloadRepo _repo;
    std::vector<std::string> _workloadNames;
    std::vector<std::string> _lastWorkloads;    ///< last run() grid axis
    std::unique_ptr<ExperimentRunner> _runner;
    bool _ranSweep = false;
};

} // namespace momsim::driver

#endif // MOMSIM_DRIVER_BENCH_HARNESS_HH
