/**
 * @file
 * Shared command-line harness for the figure/table benches and the
 * examples — the successor of bench/bench_util.hh's hand-rolled loops.
 *
 * Every bench accepts:
 *   --jobs N      worker threads for the sweep (default: all hardware)
 *   --quick       tiny workload scale, for smoke tests and CI
 *   --csv PATH    write the raw sweep results as CSV
 *   --json PATH   write the raw sweep results as JSON
 *   --seed S      base of the identity-derived per-task seeds recorded
 *                 in the CSV/JSON rows. Today's simulations are fully
 *                 deterministic and consume no randomness, so --seed
 *                 never changes results — it exists so future
 *                 stochastic components inherit per-task
 *                 reproducibility
 *   --cache-dir D persist completed rows to D/results.jsonl, keyed by
 *                 (point id, workload fingerprint, schema version);
 *                 re-runs simulate only the keys that miss and splice
 *                 cached rows back so stdout stays byte-identical
 *   --shard I/N   run only the I-th of N cost-weighted slices of the
 *                 sweep (I is 1-based); the slicing is deterministic,
 *                 so N processes with --cache-dir cover the sweep
 *                 exactly once between them
 *   --merge F,... preload per-shard store files as cache hits; with
 *                 every shard present the run simulates nothing and
 *                 reproduces the canonical unsharded output
 *   --dry-run     print the plan (ids, shard assignment, cache
 *                 hit/miss) and exit without simulating
 *
 * The harness builds the workload once (lazily, at the scale --quick
 * selects), owns the thread pool, plans every sweep through the result
 * store (see result_store.hh), and hands benches an ExperimentRunner.
 * All harness chatter goes to stderr so stdout stays byte-comparable
 * across --jobs / --cache-dir / shard-and-merge settings.
 */

#ifndef MOMSIM_DRIVER_BENCH_HARNESS_HH
#define MOMSIM_DRIVER_BENCH_HARNESS_HH

#include <memory>
#include <string>
#include <vector>

#include "driver/experiment.hh"

namespace momsim::driver
{

struct BenchOptions
{
    int jobs = 0;               ///< 0 => hardware concurrency
    bool quick = false;
    bool dryRun = false;
    uint64_t baseSeed = 0;
    int shardIndex = 1;         ///< 1-based, <= shardCount
    int shardCount = 1;
    std::string csvPath;
    std::string jsonPath;
    std::string cacheDir;
    std::vector<std::string> mergePaths;

    /** Parse argv; exits with a usage message on unknown flags. */
    static BenchOptions parse(int argc, char **argv);

    /**
     * True if @p flag is a harness flag that consumes the following
     * token. For callers that mix harness flags with their own
     * positional arguments (the explorer).
     */
    static bool takesValue(const char *flag);
};

class BenchHarness
{
  public:
    explicit BenchHarness(const BenchOptions &opts,
                          std::string name = "sweep");
    BenchHarness(int argc, char **argv, std::string name = "sweep")
        : BenchHarness(BenchOptions::parse(argc, argv), std::move(name))
    {}
    ~BenchHarness();

    const BenchOptions &options() const { return _opts; }
    bool quick() const { return _opts.quick; }
    const std::string &name() const { return _name; }

    /** Paper scale normally, Tiny under --quick; built once, lazily. */
    workloads::MediaWorkload &workload();

    ThreadPool &pool() { return _pool; }
    ExperimentRunner &runner();

    /**
     * Plan the grid (cache lookups, shard assignment), honour
     * --dry-run, execute via the planned runner path, then honour any
     * --csv/--json request and report plan + sweep cost on stderr.
     */
    ResultSink run(const SweepGrid &grid);

    /**
     * For benches with no sweep stage (table2/table3, which drive the
     * pool directly). Call before doing any work: --dry-run prints an
     * empty plan and exits immediately, and shard/cache/merge flags
     * draw an upfront no-effect warning instead of N shard processes
     * silently redoing 100% of the work each.
     */
    void declareNoSweep();

  private:
    BenchOptions _opts;
    std::string _name;
    ThreadPool _pool;
    std::unique_ptr<workloads::MediaWorkload> _workload;
    std::unique_ptr<ExperimentRunner> _runner;
    bool _ranSweep = false;
};

} // namespace momsim::driver

#endif // MOMSIM_DRIVER_BENCH_HARNESS_HH
