/**
 * @file
 * Shared command-line harness for the figure/table benches and the
 * examples — the successor of bench/bench_util.hh's hand-rolled loops.
 *
 * Every bench accepts:
 *   --jobs N     worker threads for the sweep (default: all hardware)
 *   --quick      tiny workload scale, for smoke tests and CI
 *   --csv PATH   write the raw sweep results as CSV
 *   --json PATH  write the raw sweep results as JSON
 *   --seed S     base of the identity-derived per-task seeds recorded
 *                in the CSV/JSON rows. Today's simulations are fully
 *                deterministic and consume no randomness, so --seed
 *                never changes results — it exists so future
 *                stochastic components inherit per-task reproducibility
 *
 * The harness builds the workload once (lazily, at the scale --quick
 * selects), owns the thread pool, and hands benches an
 * ExperimentRunner. All harness chatter goes to stderr so stdout stays
 * byte-comparable across --jobs settings.
 */

#ifndef MOMSIM_DRIVER_BENCH_HARNESS_HH
#define MOMSIM_DRIVER_BENCH_HARNESS_HH

#include <memory>
#include <string>

#include "driver/experiment.hh"

namespace momsim::driver
{

struct BenchOptions
{
    int jobs = 0;               ///< 0 => hardware concurrency
    bool quick = false;
    uint64_t baseSeed = 0;
    std::string csvPath;
    std::string jsonPath;

    /** Parse argv; exits with a usage message on unknown flags. */
    static BenchOptions parse(int argc, char **argv);

    /**
     * True if @p flag is a harness flag that consumes the following
     * token. For callers that mix harness flags with their own
     * positional arguments (the explorer).
     */
    static bool takesValue(const char *flag);
};

class BenchHarness
{
  public:
    explicit BenchHarness(const BenchOptions &opts);
    BenchHarness(int argc, char **argv)
        : BenchHarness(BenchOptions::parse(argc, argv))
    {}

    const BenchOptions &options() const { return _opts; }
    bool quick() const { return _opts.quick; }

    /** Paper scale normally, Tiny under --quick; built once, lazily. */
    workloads::MediaWorkload &workload();

    ThreadPool &pool() { return _pool; }
    ExperimentRunner &runner();

    /**
     * Expand + run a grid with the harness seed, then honour any
     * --csv/--json request and report sweep cost on stderr.
     */
    ResultSink run(const SweepGrid &grid);

  private:
    BenchOptions _opts;
    ThreadPool _pool;
    std::unique_ptr<workloads::MediaWorkload> _workload;
    std::unique_ptr<ExperimentRunner> _runner;
};

} // namespace momsim::driver

#endif // MOMSIM_DRIVER_BENCH_HARNESS_HH
