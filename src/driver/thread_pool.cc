#include "driver/thread_pool.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace momsim::driver
{

int
ThreadPool::defaultWorkers()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int numWorkers)
{
    _size = numWorkers <= 0 ? defaultWorkers() : numWorkers;
    _queues.reserve(static_cast<size_t>(_size));
    for (int i = 0; i < _size; ++i)
        _queues.push_back(std::make_unique<Queue>());
    // Worker 0 is the calling thread; only spawn the helpers.
    for (int i = 1; i < _size; ++i)
        _threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(_mutex);
        _stopping = true;
    }
    _wake.notify_all();
    for (auto &t : _threads)
        t.join();
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &body)
{
    static const std::vector<double> kNoCosts;
    parallelFor(n, kNoCosts, body);
}

void
ThreadPool::parallelFor(size_t n, const std::vector<double> &costs,
                        const std::function<void(size_t)> &body)
{
    // Unconditional (MOMSIM_ASSERT compiles away in Release): a
    // mismatched cost vector would read out of bounds in the deal.
    if (!costs.empty() && costs.size() != n)
        panic("parallelFor: costs must be empty or one per index");
    if (n == 0)
        return;

    if (_size == 1 || n == 1) {
        // Serial reference path: exactly the order a plain loop gives.
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    {
        MutexLock lock(_mutex);
        MOMSIM_ASSERT(_remaining == 0, "parallelFor is not reentrant");
        _body = &body;
        _remaining = n;
        _firstError = nullptr;
        _batchId += 1;
        if (costs.empty()) {
            // Deal contiguous index blocks so neighbouring experiments
            // (which tend to have similar cost) spread across workers.
            size_t per = (n + static_cast<size_t>(_size) - 1) /
                         static_cast<size_t>(_size);
            size_t next = 0;
            for (int w = 0; w < _size && next < n; ++w) {
                MutexLock qlock(_queues[w]->mutex);
                size_t end = std::min(n, next + per);
                for (size_t i = next; i < end; ++i)
                    _queues[w]->tasks.push_back(i);
                next = end;
            }
        } else {
            // LPT deal: heaviest index onto the least-loaded worker.
            // stable_sort + lowest-worker tie-break keep the schedule a
            // pure function of (n, costs, _size).
            std::vector<size_t> order(n);
            std::iota(order.begin(), order.end(), size_t { 0 });
            std::stable_sort(order.begin(), order.end(),
                             [&costs](size_t a, size_t b) {
                                 return costs[a] > costs[b];
                             });
            std::vector<std::vector<size_t>> dealt(
                static_cast<size_t>(_size));
            std::vector<double> load(static_cast<size_t>(_size), 0.0);
            for (size_t idx : order) {
                size_t best = 0;
                for (size_t w = 1; w < load.size(); ++w) {
                    if (load[w] < load[best])
                        best = w;
                }
                dealt[best].push_back(idx);
                load[best] += costs[idx];
            }
            for (int w = 0; w < _size; ++w) {
                MutexLock qlock(_queues[w]->mutex);
                // Owners pop LIFO from the back: push in reverse so
                // each worker starts with its heaviest assignment
                // (thieves then take the lightest from the front).
                const std::vector<size_t> &mine =
                    dealt[static_cast<size_t>(w)];
                for (auto it = mine.rbegin(); it != mine.rend(); ++it)
                    _queues[w]->tasks.push_back(*it);
            }
        }
    }
    _wake.notify_all();

    drain(0, body);

    MutexLock lock(_mutex);
    while (_remaining != 0)
        _done.wait(_mutex);
    _body = nullptr;
    if (_firstError)
        std::rethrow_exception(_firstError);
}

void
ThreadPool::workerLoop(int self)
{
    uint64_t seenBatch = 0;
    for (;;) {
        const std::function<void(size_t)> *body = nullptr;
        {
            MutexLock lock(_mutex);
            while (!_stopping &&
                   !(_batchId != seenBatch && _remaining > 0))
                _wake.wait(_mutex);
            if (_stopping)
                return;
            seenBatch = _batchId;
            // Snapshot the batch body while holding _mutex: tasks run
            // outside any lock, and the pointer itself is rebound by
            // the next parallelFor. The object it points at outlives
            // the batch (parallelFor blocks on _done before returning).
            body = _body;
        }
        drain(self, *body);
    }
}

void
ThreadPool::drain(int self, const std::function<void(size_t)> &body)
{
    size_t idx;
    while (popOwn(self, idx) || steal(self, idx))
        runTask(body, idx);
    // Every deque is empty. A batch never adds tasks after the deal,
    // so nothing further can become stealable: in-flight tasks finish
    // on the workers that hold them. The caller blocks on _done in
    // parallelFor, helpers go back to sleep in workerLoop.
}

bool
ThreadPool::popOwn(int self, size_t &idx)
{
    Queue &q = *_queues[self];
    MutexLock lock(q.mutex);
    if (q.tasks.empty())
        return false;
    idx = q.tasks.back();   // LIFO on the owner: hot, just-dealt work
    q.tasks.pop_back();
    return true;
}

bool
ThreadPool::steal(int self, size_t &idx)
{
    for (int off = 1; off < _size; ++off) {
        int victim = (self + off) % _size;
        Queue &q = *_queues[victim];
        MutexLock lock(q.mutex);
        if (q.tasks.empty())
            continue;
        idx = q.tasks.front();  // FIFO on thieves: take the coldest task
        q.tasks.pop_front();
        return true;
    }
    return false;
}

void
ThreadPool::runTask(const std::function<void(size_t)> &body, size_t idx)
{
    try {
        body(idx);
    } catch (...) {
        MutexLock lock(_mutex);
        if (!_firstError)
            _firstError = std::current_exception();
    }
    MutexLock lock(_mutex);
    _remaining -= 1;
    if (_remaining == 0)
        _done.notify_all();
}

} // namespace momsim::driver
