/**
 * @file
 * Aggregation endpoint of the experiment runner.
 *
 * Every completed experiment lands here as one ResultRow, in sweep
 * order (never completion order), so the sink's contents — and the CSV
 * and JSON renderings — are byte-identical no matter how many worker
 * threads executed the sweep, with one deliberate exception: the two
 * schema-v4 tail columns (sim_kcps, wall_ms) are the run's wall-clock
 * self-measurement and vary run to run. They stay last so consumers
 * that compare simulation results can cut them with a single tail
 * strip, which is exactly what the kernel_equivalence gate does.
 *
 * The sink also owns the presentation helpers the benches share: the
 * headline metric (IPC for MMX machines, EIPC for MOM machines, the
 * paper's comparison basis), geometric means, and table rules. These
 * used to be copy-pasted across bench/bench_util.hh and the figure
 * drivers.
 */

#ifndef MOMSIM_DRIVER_RESULT_SINK_HH
#define MOMSIM_DRIVER_RESULT_SINK_HH

#include <string>
#include <vector>

#include "core/simulation.hh"
#include "cpu/fetch_policy.hh"
#include "isa/simd_isa.hh"
#include "mem/hierarchy.hh"

namespace momsim::driver
{

/**
 * Escape a string for embedding in a JSON double-quoted literal.
 * Shared by the sink's presentation JSON and the result store's
 * JSON-lines format so the two can never drift.
 */
std::string jsonEscape(const std::string &s);

/** One experiment's identity and measurements. */
struct ResultRow
{
    std::string id;
    std::string workload = "paper";     ///< registry workload name
    isa::SimdIsa simd = isa::SimdIsa::Mmx;
    int threads = 1;
    mem::MemModel memModel = mem::MemModel::Conventional;
    cpu::FetchPolicy policy = cpu::FetchPolicy::RoundRobin;
    std::string variant;        ///< grid-variant label ("" if none)
    uint64_t seed = 0;
    core::RunResult run;
    double headline = 0.0;      ///< IPC (MMX) or EIPC (MOM)
    /**
     * Wall-clock of the whole experiment (workload resolution + run);
     * informational only, never serialized. The *simulation loop's* own
     * wall clock and throughput live in run.wallMs / run.simKcps and
     * are serialized (schema v4) as the tail columns of CSV/JSON rows.
     */
    double wallMs = 0.0;
};

class ResultSink
{
  public:
    void append(ResultRow row) { _rows.push_back(std::move(row)); }

    const std::vector<ResultRow> &rows() const { return _rows; }
    size_t size() const { return _rows.size(); }
    bool empty() const { return _rows.empty(); }

    /**
     * Rows of one workload, in sweep order. Multi-workload sweeps
     * filter before using the coordinate lookups below, which are
     * workload-agnostic (they return the first row at the
     * coordinates, whatever mix produced it).
     */
    ResultSink filtered(const std::string &workload) const;

    /** Row lookup by sweep coordinates; nullptr when absent/skipped. */
    const ResultRow *find(isa::SimdIsa simd, int threads,
                          mem::MemModel memModel, cpu::FetchPolicy policy,
                          const std::string &variant = "") const;

    /**
     * Headline metric at the given coordinates, or 0.0 when the point
     * was skipped (the benches print skipped combinations as 0.0).
     */
    double headlineAt(isa::SimdIsa simd, int threads,
                      mem::MemModel memModel, cpu::FetchPolicy policy,
                      const std::string &variant = "") const;

    /** Sum of per-run wall clock (the serial cost of the sweep). */
    double totalWallMs() const;

    // ---- serialization (deterministic: sweep order, fixed formats) ----
    std::string toCsv() const;
    std::string toJson() const;
    bool writeCsv(const std::string &path) const;
    bool writeJson(const std::string &path) const;

    // ---- shared presentation helpers (ex bench_util.hh) ----

    /** The paper's comparison basis: IPC for MMX, EIPC for MOM. */
    static double headlineOf(const core::RunResult &r, isa::SimdIsa simd);
    static const char *headlineName(isa::SimdIsa simd);

    /** Geometric mean; 0.0 for an empty set or any non-positive term. */
    static double geomean(const std::vector<double> &xs);

    /** A horizontal table rule of @p width characters. */
    static std::string rule(int width, char fill = '-');

  private:
    std::vector<ResultRow> _rows;
};

} // namespace momsim::driver

#endif // MOMSIM_DRIVER_RESULT_SINK_HH
