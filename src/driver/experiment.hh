/**
 * @file
 * Declarative experiment sweeps over the simulator's configuration
 * space, executed by the work-stealing thread pool.
 *
 * The paper's figures and tables are all cartesian sweeps over the same
 * axes — workload mix, µ-SIMD extension, hardware thread count, memory
 * hierarchy and fetch policy — sometimes crossed with ad-hoc parameter
 * variants (Table 1's window sizes, the memory-system ablation).
 * SweepGrid captures that shape declaratively; ExperimentRunner
 * executes every point of the expansion concurrently and delivers the
 * results in sweep order, so a `--jobs 1` and a `--jobs N` run of the
 * same grid are indistinguishable byte for byte.
 *
 * Workloads are a first-class axis: each spec names a registry
 * workload ("paper" by default) and the runner resolves it through a
 * shared WorkloadRepo, so one process can sweep several mixes while
 * each mix is synthesized exactly once.
 *
 * Determinism contract: each expanded spec carries a seed derived only
 * from the grid's base seed and the spec's identity — never from the
 * expansion index of a *filtered* list, wall-clock time, or the worker
 * that happens to run it.
 */

#ifndef MOMSIM_DRIVER_EXPERIMENT_HH
#define MOMSIM_DRIVER_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cpu/core_config.hh"
#include "driver/result_sink.hh"
#include "driver/thread_pool.hh"
#include "mem/hierarchy.hh"
#include "workloads/workload_repo.hh"

namespace momsim::driver
{

class ResultStore;
struct PlannedPoint;
struct RunPlan;

/** One fully-specified simulation point. */
struct ExperimentSpec
{
    std::string id;             ///< unique key; defaulted by SweepGrid
    std::string workload = "paper";     ///< registry workload name
    isa::SimdIsa simd = isa::SimdIsa::Mmx;
    int threads = 1;
    mem::MemModel memModel = mem::MemModel::Conventional;
    cpu::FetchPolicy policy = cpu::FetchPolicy::RoundRobin;
    std::string variant;        ///< grid-variant label ("" if none)
    /**
     * Identity-derived per-task seed, recorded in the ResultRow. The
     * present simulator consumes no randomness at run time (workload
     * synthesis is seeded separately, once per process), so this is
     * provenance for the serialized results and the hook future
     * stochastic components draw from — not a current Simulation input.
     */
    uint64_t seed = 0;

    /** Optional parameter overrides applied after CoreConfig::preset. */
    std::function<void(cpu::CoreConfig &)> tweakCore;
    /** Optional memory-system overrides (ablation studies). */
    std::function<void(mem::MemConfig &)> tweakMem;

    int targetCompletions = -1;
    uint64_t maxCycles = 400'000'000ull;

    /** "workload/isa/threads/mem/policy[/variant]" — stable key. */
    std::string canonicalId() const;
};

/** A labelled mutation crossed into the grid (ablation axes). */
struct SweepVariant
{
    std::string label;
    std::function<void(ExperimentSpec &)> apply;
};

/**
 * Cartesian product builder. Unset axes default to a single element
 * (the paper workload, MMX, 1 thread, conventional memory, round-robin
 * fetch, no variant).
 */
class SweepGrid
{
  public:
    /**
     * The workload axis: registry names ("paper", "mpeg2x8", ...),
     * swept outermost. Benches normally leave this unset and let
     * BenchHarness fold in the user's --workload selection; setting it
     * explicitly (the mix-sensitivity bench) pins the axis.
     */
    SweepGrid &workloadSpecs(std::vector<std::string> v);
    SweepGrid &isas(std::vector<isa::SimdIsa> v);
    SweepGrid &threadCounts(std::vector<int> v);
    SweepGrid &memModels(std::vector<mem::MemModel> v);
    SweepGrid &policies(std::vector<cpu::FetchPolicy> v);
    SweepGrid &variants(std::vector<SweepVariant> v);

    /** True once workloadSpecs() was called. */
    bool hasExplicitWorkloads() const { return _explicitWorkloads; }
    const std::vector<std::string> &workloadList() const
    {
        return _workloads;
    }

    /** Drop points matching @p pred (e.g. OCOUNT on an MMX machine). */
    SweepGrid &skip(std::function<bool(const ExperimentSpec &)> pred);

    /** Run length bounds of every run in the grid. */
    SweepGrid &limits(int targetCompletions, uint64_t maxCycles);
    int targetCompletionsValue() const { return _targetCompletions; }
    uint64_t maxCyclesValue() const { return _maxCycles; }

    /** Full product size, before the skip predicate. */
    size_t size() const;

    /**
     * Expand to the spec list in axis-nesting order (workload
     * outermost, then isa, variant innermost), with ids and per-task
     * seeds filled in.
     */
    std::vector<ExperimentSpec> expand(uint64_t baseSeed = 0) const;

  private:
    std::vector<std::string> _workloads { "paper" };
    bool _explicitWorkloads = false;
    std::vector<isa::SimdIsa> _isas { isa::SimdIsa::Mmx };
    std::vector<int> _threads { 1 };
    std::vector<mem::MemModel> _mems { mem::MemModel::Conventional };
    std::vector<cpu::FetchPolicy> _policies { cpu::FetchPolicy::RoundRobin };
    std::vector<SweepVariant> _variants;
    std::function<bool(const ExperimentSpec &)> _skip;
    int _targetCompletions = -1;
    uint64_t _maxCycles = 400'000'000ull;
};

/**
 * Executes spec lists by resolving each spec's workload through a
 * shared WorkloadRepo and running one independent Simulation per spec
 * on a ThreadPool. Distinct workloads named by a spec list are built
 * concurrently on the pool before the sweep proper starts; the sweep's
 * pool deal is cost-ordered (specCost) so the expensive points start
 * first and the tail stays short.
 *
 * With setBatchSize(K > 1) the runner groups K consecutive sweep
 * points into one worker task and interleaves their simulations in
 * fixed cycle quanta (runBatch), amortizing per-point task overhead
 * and keeping the kernel's hot columns resident across points — most
 * effective for sweeps dominated by cheap low-thread-count points.
 * Results are byte-identical to unbatched execution for any K: each
 * Simulation is an independent machine, and chunked advance() is
 * byte-identical to an uncapped run by construction.
 */
class ExperimentRunner
{
  public:
    ExperimentRunner(workloads::WorkloadRepo &repo, ThreadPool &pool)
        : _repo(repo), _pool(pool)
    {}

    /** Run every spec; rows arrive in the sink in spec order. */
    ResultSink run(const std::vector<ExperimentSpec> &specs);

    /** Convenience: expand the grid, then run it. */
    ResultSink run(const SweepGrid &grid, uint64_t baseSeed = 0);

    /**
     * Per-completion callback of the RunPlan overload: fired once per
     * freshly simulated row, serialized (under the same lock as store
     * puts) but in completion order, not sweep order. The fabric
     * worker streams rows back to its coordinator from here.
     */
    using RowFn =
        std::function<void(const PlannedPoint &, const ResultRow &)>;

    /**
     * Execute a RunPlan (see result_store.hh): simulate only this
     * shard's cache misses, splice cached rows back in sweep order,
     * and persist freshly simulated rows to @p store when given. The
     * sink holds exactly this shard's points — for an unsharded plan
     * that is the whole sweep, byte-identical to run(specs).
     */
    ResultSink run(const RunPlan &plan, ResultStore *store = nullptr,
                   const RowFn &onRow = nullptr);

    /** Execute one spec on the calling thread. */
    ResultRow runOne(const ExperimentSpec &spec) const;

    /**
     * Execute several specs on the calling thread, interleaved in
     * kBatchQuantumCycles slices. Row i corresponds to spec i; every
     * row is byte-identical to what runOne would produce. (Delegates
     * to the free runSpecBatch(), which the point scheduler's exec
     * hook uses directly.)
     */
    std::vector<ResultRow>
    runBatch(const std::vector<const ExperimentSpec *> &specs) const;

    /**
     * Group @p k consecutive sweep points per worker task (default 1 =
     * classic one-task-per-point execution). Values < 1 clamp to 1.
     */
    void setBatchSize(int k) { _batchSize = k < 1 ? 1 : k; }
    int batchSize() const { return _batchSize; }

    /** The interleave slice of batched execution, in cycles. */
    static constexpr uint64_t kBatchQuantumCycles = 32768;

    ThreadPool &pool() { return _pool; }
    workloads::WorkloadRepo &repo() { return _repo; }

  private:
    /** Build every distinct workload the specs name, on the pool. */
    void prebuildWorkloads(const std::vector<std::string> &names);

    workloads::WorkloadRepo &_repo;
    ThreadPool &_pool;
    int _batchSize = 1;
};

/**
 * Fold a caller's run selection into @p grid, the one way every entry
 * point does it: grids that left the workload axis unset sweep
 * @p workloads (or "paper" when that is empty; grids that pinned their
 * own axis win), and a nonzero @p maxCycles overrides the grid's cycle
 * cap — which lands in every spec's maxCycles and therefore in the
 * result-store keys, so rows cached under one limit never replay under
 * another. Shared by BenchHarness::run (the CLI) and
 * svc::SimService::submit (the service) so the two paths cannot drift
 * on key-affecting semantics.
 */
void applyRunSelection(SweepGrid &grid,
                       const std::vector<std::string> &workloads,
                       uint64_t maxCycles);

/** SplitMix64 step — the seed-derivation primitive used by SweepGrid. */
uint64_t mixSeed(uint64_t base, const std::string &key);

/**
 * The batched-execution core of ExperimentRunner::runBatch as a free
 * function: construct every machine, interleave the runs in
 * kBatchQuantumCycles slices, return row i for spec i. Thread-safe for
 * concurrent callers (the repo's get() is); this is the exec hook the
 * PointScheduler workers run.
 */
std::vector<ResultRow>
runSpecBatch(workloads::WorkloadRepo &repo,
             const std::vector<const ExperimentSpec *> &specs);

class PointScheduler;

/**
 * Execute a RunPlan through the shared PointScheduler instead of a
 * private ThreadPool: this shard's cache misses are add()ed as one
 * scheduler request (grouped @p batchSize consecutive points per
 * worker task), rows land back via the request's deliver hook — which
 * also persists each row to @p store and fires @p onRow, serialized,
 * the moment it completes — and the sink splices cached + fresh rows
 * in sweep order, byte-identical to ExperimentRunner::run(plan, ...).
 *
 * Rows another request simulated (singleflight joins) and memory-cache
 * replays flow through the same deliver hook, so @p store still ends
 * up holding every row this plan claims to have produced and @p onRow
 * still fires once per non-disk-cached point.
 *
 * The plan must have been built against @p repo (planSweep's
 * fingerprinting already built every workload the specs name, so
 * scheduler workers never race a first-time build... they would be
 * safe anyway: WorkloadRepo::get is thread-safe).
 */
ResultSink runPlanOnScheduler(PointScheduler &sched,
                              workloads::WorkloadRepo &repo,
                              const RunPlan &plan, int batchSize,
                              ResultStore *store = nullptr,
                              const ExperimentRunner::RowFn &onRow =
                                  nullptr);

} // namespace momsim::driver

#endif // MOMSIM_DRIVER_EXPERIMENT_HH
