#include "driver/bench_harness.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "driver/result_store.hh"

namespace momsim::driver
{

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--jobs N] [--quick] [--seed S]\n"
                 "          [--csv PATH] [--json PATH]\n"
                 "          [--cache-dir DIR] [--shard I/N]\n"
                 "          [--merge FILE[,FILE...]] [--dry-run]\n",
                 argv0);
    std::exit(2);
}

const char *
argValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage(argv[0]);
    return argv[++i];
}

void
printPlan(const RunPlan &plan, const std::string &name,
          uint64_t fingerprint)
{
    std::printf("plan %s: total=%zu shard=%d/%d cached=%zu simulated=%zu "
                "foreign=%zu fingerprint=%016llx schema=v%d\n",
                name.c_str(), plan.points.size(), plan.shardIndex + 1,
                plan.shardCount, plan.cachedMineCount(),
                plan.simulateCount(),
                plan.points.size() - plan.mineCount(),
                static_cast<unsigned long long>(fingerprint),
                kResultSchemaVersion);
    for (const PlannedPoint &p : plan.points)
        std::printf("  %-44s shard=%d/%d cost=%.2f %s\n",
                    p.spec.id.c_str(), p.shard + 1, plan.shardCount,
                    p.cost, p.cached ? "cached" : "miss");
}

} // namespace

bool
BenchOptions::takesValue(const char *flag)
{
    return std::strcmp(flag, "--jobs") == 0 ||
           std::strcmp(flag, "-j") == 0 ||
           std::strcmp(flag, "--seed") == 0 ||
           std::strcmp(flag, "--csv") == 0 ||
           std::strcmp(flag, "--json") == 0 ||
           std::strcmp(flag, "--cache-dir") == 0 ||
           std::strcmp(flag, "--shard") == 0 ||
           std::strcmp(flag, "--merge") == 0;
}

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0 ||
            std::strcmp(arg, "-j") == 0) {
            opts.jobs = std::atoi(argValue(argc, argv, i));
            if (opts.jobs < 1)
                usage(argv[0]);
        } else if (std::strcmp(arg, "--quick") == 0) {
            opts.quick = true;
        } else if (std::strcmp(arg, "--seed") == 0) {
            opts.baseSeed = std::strtoull(argValue(argc, argv, i),
                                          nullptr, 0);
        } else if (std::strcmp(arg, "--csv") == 0) {
            opts.csvPath = argValue(argc, argv, i);
        } else if (std::strcmp(arg, "--json") == 0) {
            opts.jsonPath = argValue(argc, argv, i);
        } else if (std::strcmp(arg, "--cache-dir") == 0) {
            opts.cacheDir = argValue(argc, argv, i);
        } else if (std::strcmp(arg, "--shard") == 0) {
            const char *v = argValue(argc, argv, i);
            int consumed = 0;
            if (std::sscanf(v, "%d/%d%n", &opts.shardIndex,
                            &opts.shardCount, &consumed) != 2 ||
                v[consumed] != '\0' ||  // trailing garbage: "1/3,2/3"
                opts.shardCount < 1 || opts.shardIndex < 1 ||
                opts.shardIndex > opts.shardCount) {
                std::fprintf(stderr, "bad --shard '%s' (want I/N with "
                                     "1 <= I <= N)\n", v);
                usage(argv[0]);
            }
        } else if (std::strcmp(arg, "--merge") == 0) {
            std::string v = argValue(argc, argv, i);
            size_t start = 0;
            while (start <= v.size()) {
                size_t comma = v.find(',', start);
                if (comma == std::string::npos)
                    comma = v.size();
                if (comma > start)
                    opts.mergePaths.push_back(
                        v.substr(start, comma - start));
                start = comma + 1;
            }
        } else if (std::strcmp(arg, "--dry-run") == 0) {
            opts.dryRun = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg);
            usage(argv[0]);
        }
    }
    return opts;
}

BenchHarness::BenchHarness(const BenchOptions &opts, std::string name)
    : _opts(opts), _name(std::move(name)), _pool(opts.jobs)
{}

BenchHarness::~BenchHarness()
{
    if (_ranSweep)
        return;
    if (_opts.dryRun || _opts.shardCount > 1 || !_opts.cacheDir.empty() ||
        !_opts.mergePaths.empty()) {
        std::fprintf(stderr,
                     "[bench] note: --dry-run/--shard/--cache-dir/--merge "
                     "affect sweeps only; %s ran none\n", _name.c_str());
    }
}

void
BenchHarness::declareNoSweep()
{
    _ranSweep = true;   // the destructor note would be redundant now
    if (_opts.shardCount > 1 || !_opts.cacheDir.empty() ||
        !_opts.mergePaths.empty()) {
        std::fprintf(stderr,
                     "[bench] note: %s has no sweep stage; "
                     "--shard/--cache-dir/--merge have no effect\n",
                     _name.c_str());
    }
    if (_opts.dryRun) {
        std::printf("plan %s: no sweep stage (nothing to plan)\n",
                    _name.c_str());
        std::exit(0);
    }
}

workloads::MediaWorkload &
BenchHarness::workload()
{
    if (!_workload) {
        const char *scale = _opts.quick ? "tiny" : "paper";
        std::fprintf(stderr, "[bench] building %s-scale workload "
                             "(both ISAs)...\n", scale);
        _workload = workloads::MediaWorkload::build(
            _opts.quick ? workloads::WorkloadScale::Tiny
                        : workloads::WorkloadScale::Paper);
        std::fprintf(stderr, "[bench] workload ready\n");
    }
    return *_workload;
}

ExperimentRunner &
BenchHarness::runner()
{
    if (!_runner) {
        _runner =
            std::make_unique<ExperimentRunner>(workload(), _pool);
    }
    return *_runner;
}

ResultSink
BenchHarness::run(const SweepGrid &grid)
{
    _ranSweep = true;

    ResultStore store;
    const bool persist = !_opts.cacheDir.empty();
    if (persist && !store.openDir(_opts.cacheDir))
        fatal("cannot open --cache-dir " + _opts.cacheDir);
    for (const std::string &path : _opts.mergePaths) {
        if (!store.loadFile(path))
            fatal("cannot read --merge store " + path);
    }

    const uint64_t fingerprint = workload().fingerprint();
    RunPlan plan = planSweep(grid.expand(_opts.baseSeed), fingerprint,
                             &store, _opts.shardIndex - 1,
                             _opts.shardCount);

    if (_opts.dryRun) {
        printPlan(plan, _name, fingerprint);
        std::exit(0);
    }

    if (_opts.shardCount > 1) {
        // On stdout deliberately: anyone reading or piping a shard
        // run's table must see it is partial. Unsharded and --merge
        // runs never print this, so their stdout stays canonical.
        std::printf("[shard %d/%d] partial sweep: %zu of %zu points; "
                    "foreign points print as 0.0 — merge the per-shard "
                    "stores for the full figure\n",
                    _opts.shardIndex, _opts.shardCount, plan.mineCount(),
                    plan.points.size());
    }

    std::fprintf(stderr,
                 "[bench] %s plan: total=%zu cached=%zu simulated=%zu "
                 "foreign=%zu (shard %d/%d)\n",
                 _name.c_str(), plan.points.size(), plan.cachedMineCount(),
                 plan.simulateCount(),
                 plan.points.size() - plan.mineCount(), _opts.shardIndex,
                 _opts.shardCount);

    ResultSink sink = runner().run(plan, persist ? &store : nullptr);
    std::fprintf(stderr,
                 "[bench] %zu experiments on %d worker(s); "
                 "serial cost %.0f ms\n",
                 sink.size(), _pool.size(), sink.totalWallMs());
    if (!_opts.csvPath.empty()) {
        if (!sink.writeCsv(_opts.csvPath))
            fatal("cannot write CSV to " + _opts.csvPath);
        std::fprintf(stderr, "[bench] wrote %s\n", _opts.csvPath.c_str());
    }
    if (!_opts.jsonPath.empty()) {
        if (!sink.writeJson(_opts.jsonPath))
            fatal("cannot write JSON to " + _opts.jsonPath);
        std::fprintf(stderr, "[bench] wrote %s\n", _opts.jsonPath.c_str());
    }
    return sink;
}

} // namespace momsim::driver
