#include "driver/bench_harness.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "driver/result_store.hh"
#include "workloads/workload_spec.hh"

namespace momsim::driver
{

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::string text = BenchOptions::usageText(argv0);
    std::fprintf(stderr, "%s\n", text.c_str());
    std::exit(2);
}

/** Split a comma-separated list, dropping empty segments. */
void
splitCommaList(const std::string &v, std::vector<std::string> &out)
{
    size_t start = 0;
    while (start <= v.size()) {
        size_t comma = v.find(',', start);
        if (comma == std::string::npos)
            comma = v.size();
        if (comma > start)
            out.push_back(v.substr(start, comma - start));
        start = comma + 1;
    }
}

void
printPlan(const RunPlan &plan, const std::string &name,
          const std::vector<std::string> &workloadNames,
          workloads::WorkloadRepo &repo)
{
    std::printf("plan %s: total=%zu shard=%d/%d cached=%zu simulated=%zu "
                "foreign=%zu schema=v%d\n",
                name.c_str(), plan.points.size(), plan.shardIndex + 1,
                plan.shardCount, plan.cachedMineCount(),
                plan.simulateCount(),
                plan.points.size() - plan.mineCount(),
                kResultSchemaVersion);
    for (const std::string &wl : workloadNames)
        std::printf("  workload %s: fingerprint=%016llx programs=%d\n",
                    wl.c_str(),
                    static_cast<unsigned long long>(repo.fingerprintOf(wl)),
                    repo.get(wl)->numPrograms());
    for (const PlannedPoint &p : plan.points)
        std::printf("  %-52s shard=%d/%d cost=%.2f %s\n",
                    p.spec.id.c_str(), p.shard + 1, plan.shardCount,
                    p.cost, p.cached ? "cached" : "miss");
}

} // namespace

const std::vector<BenchFlagInfo> &
BenchOptions::flagTable()
{
    // The one place a harness flag is declared. parseInto() dispatches
    // over these spellings; test_bench_options asserts the two agree
    // (every table flag parses, every parsed flag is in the table).
    static const std::vector<BenchFlagInfo> table = {
        { "--jobs", "-j", "N",
          "worker threads for the sweep (default: all hardware)" },
        { "--batch", nullptr, "K",
          "interleave K consecutive sweep points per worker task "
          "(default 1); results are byte-identical for any K" },
        { "--quick", nullptr, nullptr,
          "tiny workload scale, for smoke tests and CI" },
        { "--workload", nullptr, "NAME[,NAME...]",
          "registry workload specs to sweep as an axis (default: "
          "\"paper\", the Table-2 mix); repeatable" },
        { "--list-workloads", nullptr, nullptr,
          "print the workload registry and exit" },
        { "--csv", nullptr, "PATH",
          "write the raw sweep results as CSV" },
        { "--json", nullptr, "PATH",
          "write the raw sweep results as JSON" },
        { "--max-cycles", nullptr, "N",
          "cap every simulation at N cycles (default: the grid's own "
          "limit, normally 400M)" },
        { "--seed", nullptr, "S",
          "base of the identity-derived per-task seeds recorded in the "
          "CSV/JSON rows" },
        { "--cache-dir", nullptr, "DIR",
          "persist completed rows to DIR/results.jsonl and replay them "
          "on re-runs" },
        { "--shard", nullptr, "I/N",
          "run only the I-th of N cost-weighted slices of the sweep "
          "(1-based)" },
        { "--merge", nullptr, "FILE[,FILE...]",
          "preload per-shard store files as cache hits" },
        { "--dry-run", nullptr, nullptr,
          "print the plan (ids, shards, cache hits, fingerprints) and "
          "exit without simulating" },
        { "--help", "-h", nullptr, "print this help and exit" },
    };
    return table;
}

bool
BenchOptions::takesValue(const char *flag)
{
    for (const BenchFlagInfo &info : flagTable()) {
        if (std::strcmp(flag, info.flag) == 0 ||
            (info.alias && std::strcmp(flag, info.alias) == 0))
            return info.valueName != nullptr;
    }
    return false;
}

bool
BenchOptions::isKnownFlag(const char *arg)
{
    for (const BenchFlagInfo &info : flagTable()) {
        if (std::strcmp(arg, info.flag) == 0 ||
            (info.alias && std::strcmp(arg, info.alias) == 0))
            return true;
    }
    return false;
}

std::string
BenchOptions::usageText(const char *argv0)
{
    // One bracketed token per table entry, wrapped at ~72 columns and
    // aligned under the first flag.
    std::string head = strfmt("usage: %s ", argv0);
    std::string indent(head.size() > 30 ? 10 : head.size(), ' ');
    std::string out = head;
    size_t col = head.size();
    bool first = true;
    for (const BenchFlagInfo &info : flagTable()) {
        std::string tok = "[";
        tok += info.flag;
        if (info.valueName) {
            tok += ' ';
            tok += info.valueName;
        }
        tok += ']';
        if (!first && col + 1 + tok.size() > 72) {
            out += "\n" + indent;
            col = indent.size();
        } else if (!first) {
            out += ' ';
            ++col;
        }
        out += tok;
        col += tok.size();
        first = false;
    }
    return out;
}

std::string
BenchOptions::helpText()
{
    std::string out;
    for (const BenchFlagInfo &info : flagTable()) {
        std::string spelling = info.flag;
        if (info.alias) {
            spelling += ", ";
            spelling += info.alias;
        }
        if (info.valueName) {
            spelling += ' ';
            spelling += info.valueName;
        }
        out += strfmt("  %-28s %s\n", spelling.c_str(), info.help);
    }
    return out;
}

bool
BenchOptions::parseInto(int argc, char **argv, BenchOptions &out,
                        std::string &error,
                        std::vector<std::string> *positionals)
{
    BenchOptions opts;
    auto value = [&](int &i, const char **v) {
        if (i + 1 >= argc) {
            error = strfmt("%s expects a value", argv[i]);
            return false;
        }
        *v = argv[++i];
        return true;
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *v = nullptr;
        if (std::strcmp(arg, "--jobs") == 0 ||
            std::strcmp(arg, "-j") == 0) {
            if (!value(i, &v))
                return false;
            opts.jobs = std::atoi(v);
            if (opts.jobs < 1) {
                error = strfmt("bad --jobs '%s' (want an integer >= 1)", v);
                return false;
            }
        } else if (std::strcmp(arg, "--batch") == 0) {
            if (!value(i, &v))
                return false;
            opts.batch = std::atoi(v);
            if (opts.batch < 1) {
                error = strfmt("bad --batch '%s' (want an integer >= 1)",
                               v);
                return false;
            }
        } else if (std::strcmp(arg, "--quick") == 0) {
            opts.quick = true;
        } else if (std::strcmp(arg, "--seed") == 0) {
            if (!value(i, &v))
                return false;
            opts.baseSeed = std::strtoull(v, nullptr, 0);
        } else if (std::strcmp(arg, "--max-cycles") == 0) {
            if (!value(i, &v))
                return false;
            char *end = nullptr;
            opts.maxCycles = std::strtoull(v, &end, 0);
            // strtoull silently wraps negative input; reject it.
            if (!end || *end != '\0' || *v == '\0' || *v == '-' ||
                opts.maxCycles < 1) {
                error = strfmt("bad --max-cycles '%s' (want an integer "
                               ">= 1)", v);
                return false;
            }
        } else if (std::strcmp(arg, "--csv") == 0) {
            if (!value(i, &v))
                return false;
            opts.csvPath = v;
        } else if (std::strcmp(arg, "--json") == 0) {
            if (!value(i, &v))
                return false;
            opts.jsonPath = v;
        } else if (std::strcmp(arg, "--cache-dir") == 0) {
            if (!value(i, &v))
                return false;
            opts.cacheDir = v;
        } else if (std::strcmp(arg, "--shard") == 0) {
            if (!value(i, &v))
                return false;
            int consumed = 0;
            if (std::sscanf(v, "%d/%d%n", &opts.shardIndex,
                            &opts.shardCount, &consumed) != 2 ||
                v[consumed] != '\0' ||  // trailing garbage: "1/3,2/3"
                opts.shardCount < 1 || opts.shardIndex < 1 ||
                opts.shardIndex > opts.shardCount) {
                error = strfmt("bad --shard '%s' (want I/N with "
                               "1 <= I <= N)", v);
                return false;
            }
        } else if (std::strcmp(arg, "--merge") == 0) {
            if (!value(i, &v))
                return false;
            splitCommaList(v, opts.mergePaths);
        } else if (std::strcmp(arg, "--workload") == 0) {
            if (!value(i, &v))
                return false;
            std::vector<std::string> names;
            splitCommaList(v, names);
            if (names.empty()) {
                error = strfmt("bad --workload '%s' (want "
                               "NAME[,NAME...])", v);
                return false;
            }
            for (const std::string &name : names) {
                if (!workloads::WorkloadSpec::isKnown(name)) {
                    error = strfmt("unknown workload '%s' (see "
                                   "--list-workloads)", name.c_str());
                    return false;
                }
                // Dedup, keeping first-seen order: a repeated name
                // would expand duplicate sweep points with identical
                // ids, seeds and cache keys.
                if (std::find(opts.workloads.begin(),
                              opts.workloads.end(),
                              name) == opts.workloads.end())
                    opts.workloads.push_back(name);
            }
        } else if (std::strcmp(arg, "--list-workloads") == 0) {
            opts.listWorkloads = true;
        } else if (std::strcmp(arg, "--dry-run") == 0) {
            opts.dryRun = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            error = "";     // empty error: plain usage request
            return false;
        } else if (positionals && std::strncmp(arg, "--", 2) != 0) {
            // Subcommands with positional operands: every token that
            // is not a "--" flag (or a known short alias, handled
            // above) stays positional — including negative numbers.
            positionals->push_back(arg);
        } else {
            error = strfmt("unknown argument: %s", arg);
            return false;
        }
    }
    out = std::move(opts);
    return true;
}

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    return parse(argc, argv, nullptr);
}

BenchOptions
BenchOptions::parse(int argc, char **argv,
                    std::vector<std::string> *positionals)
{
    BenchOptions opts;
    std::string error;
    if (!parseInto(argc, argv, opts, error, positionals)) {
        if (error.empty()) {
            // An explicit --help/-h request: full generated help on
            // stdout, success exit — unlike real parse errors, which
            // go to stderr with exit 2.
            std::printf("%s\n\nflags:\n%s",
                        usageText(argv[0]).c_str(), helpText().c_str());
            std::exit(0);
        }
        std::fprintf(stderr, "%s\n", error.c_str());
        usage(argv[0]);
    }
    if (opts.listWorkloads) {
        std::printf("workload registry (--workload NAME[,NAME...]):\n");
        for (const workloads::WorkloadSpec &spec :
             workloads::WorkloadSpec::registry()) {
            std::string mix;
            for (size_t i = 0; i < spec.slots.size(); ++i) {
                if (i)
                    mix += " ";
                mix += workloads::toString(spec.slots[i]);
            }
            std::printf("  %-14s %s\n                 [%s]\n",
                        spec.name.c_str(), spec.description.c_str(),
                        mix.c_str());
        }
        std::printf("  %-14s the paper mix repeated N times "
                    "(2 <= N <= 8)\n", "paperxN");
        std::exit(0);
    }
    return opts;
}

BenchHarness::BenchHarness(const BenchOptions &opts, std::string name)
    : _opts(opts), _name(std::move(name)), _pool(opts.jobs),
      _repo(opts.quick ? workloads::WorkloadScale::Tiny
                       : workloads::WorkloadScale::Paper),
      _workloadNames(opts.workloads.empty()
                         ? std::vector<std::string> { "paper" }
                         : opts.workloads)
{}

BenchHarness::~BenchHarness()
{
    if (_ranSweep)
        return;
    if (_opts.dryRun || _opts.shardCount > 1 || !_opts.cacheDir.empty() ||
        !_opts.mergePaths.empty()) {
        std::fprintf(stderr,
                     "[bench] note: --dry-run/--shard/--cache-dir/--merge "
                     "affect sweeps only; %s ran none\n", _name.c_str());
    }
}

void
BenchHarness::declareNoSweep()
{
    _ranSweep = true;   // the destructor note would be redundant now
    if (_opts.shardCount > 1 || !_opts.cacheDir.empty() ||
        !_opts.mergePaths.empty()) {
        std::fprintf(stderr,
                     "[bench] note: %s has no sweep stage; "
                     "--shard/--cache-dir/--merge have no effect\n",
                     _name.c_str());
    }
    if (_opts.dryRun) {
        std::printf("plan %s: no sweep stage (nothing to plan)\n",
                    _name.c_str());
        std::exit(0);
    }
}

ExperimentRunner &
BenchHarness::runner()
{
    if (!_runner) {
        _runner = std::make_unique<ExperimentRunner>(_repo, _pool);
        _runner->setBatchSize(_opts.batch);
    }
    return *_runner;
}

ResultSink
BenchHarness::run(const SweepGrid &grid)
{
    _ranSweep = true;

    // Grids that pin their own workload axis (the mix-sensitivity
    // bench) win; everything else sweeps the --workload selection.
    // applyRunSelection is shared with SimService::submit, so the CLI
    // and the service agree on these key-affecting folds by
    // construction.
    SweepGrid g = grid;
    applyRunSelection(g, _workloadNames, _opts.maxCycles);
    _lastWorkloads = g.workloadList();

    ResultStore store;
    const bool persist = !_opts.cacheDir.empty();
    if (persist && !store.openDir(_opts.cacheDir))
        fatal("cannot open --cache-dir " + _opts.cacheDir);
    for (const std::string &path : _opts.mergePaths) {
        if (!store.loadFile(path))
            fatal("cannot read --merge store " + path);
    }

    // Every workload of the grid participates in the plan keys, so all
    // of them must exist before planning; distinct specs synthesize
    // concurrently on the pool.
    std::vector<std::string> toBuild = _repo.missing(_lastWorkloads);
    if (!toBuild.empty()) {
        std::fprintf(stderr, "[bench] building %zu workload(s) at %s "
                             "scale (both ISAs)...\n", toBuild.size(),
                     _opts.quick ? "tiny" : "paper");
        _pool.parallelFor(toBuild.size(), [this, &toBuild](size_t i) {
            _repo.get(toBuild[i]);
        });
        std::fprintf(stderr, "[bench] workloads ready\n");
    }

    RunPlan plan = planSweep(g.expand(_opts.baseSeed), _repo, &store,
                             _opts.shardIndex - 1, _opts.shardCount);

    if (_opts.dryRun) {
        printPlan(plan, _name, _lastWorkloads, _repo);
        std::exit(0);
    }

    if (_opts.shardCount > 1) {
        // On stdout deliberately: anyone reading or piping a shard
        // run's table must see it is partial. Unsharded and --merge
        // runs never print this, so their stdout stays canonical.
        std::printf("[shard %d/%d] partial sweep: %zu of %zu points; "
                    "foreign points print as 0.0 — merge the per-shard "
                    "stores for the full figure\n",
                    _opts.shardIndex, _opts.shardCount, plan.mineCount(),
                    plan.points.size());
    }

    std::fprintf(stderr,
                 "[bench] %s plan: total=%zu cached=%zu simulated=%zu "
                 "foreign=%zu (shard %d/%d)\n",
                 _name.c_str(), plan.points.size(), plan.cachedMineCount(),
                 plan.simulateCount(),
                 plan.points.size() - plan.mineCount(), _opts.shardIndex,
                 _opts.shardCount);

    ResultSink sink = runner().run(plan, persist ? &store : nullptr);
    std::fprintf(stderr,
                 "[bench] %zu experiments on %d worker(s); "
                 "serial cost %.0f ms\n",
                 sink.size(), _pool.size(), sink.totalWallMs());
    if (!_opts.csvPath.empty()) {
        if (!sink.writeCsv(_opts.csvPath))
            fatal("cannot write CSV to " + _opts.csvPath);
        std::fprintf(stderr, "[bench] wrote %s\n", _opts.csvPath.c_str());
    }
    if (!_opts.jsonPath.empty()) {
        if (!sink.writeJson(_opts.jsonPath))
            fatal("cannot write JSON to " + _opts.jsonPath);
        std::fprintf(stderr, "[bench] wrote %s\n", _opts.jsonPath.c_str());
    }
    return sink;
}

} // namespace momsim::driver
