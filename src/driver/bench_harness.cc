#include "driver/bench_harness.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace momsim::driver
{

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--jobs N] [--quick] [--seed S]\n"
                 "          [--csv PATH] [--json PATH]\n",
                 argv0);
    std::exit(2);
}

const char *
argValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage(argv[0]);
    return argv[++i];
}

} // namespace

bool
BenchOptions::takesValue(const char *flag)
{
    return std::strcmp(flag, "--jobs") == 0 ||
           std::strcmp(flag, "-j") == 0 ||
           std::strcmp(flag, "--seed") == 0 ||
           std::strcmp(flag, "--csv") == 0 ||
           std::strcmp(flag, "--json") == 0;
}

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0 ||
            std::strcmp(arg, "-j") == 0) {
            opts.jobs = std::atoi(argValue(argc, argv, i));
            if (opts.jobs < 1)
                usage(argv[0]);
        } else if (std::strcmp(arg, "--quick") == 0) {
            opts.quick = true;
        } else if (std::strcmp(arg, "--seed") == 0) {
            opts.baseSeed = std::strtoull(argValue(argc, argv, i),
                                          nullptr, 0);
        } else if (std::strcmp(arg, "--csv") == 0) {
            opts.csvPath = argValue(argc, argv, i);
        } else if (std::strcmp(arg, "--json") == 0) {
            opts.jsonPath = argValue(argc, argv, i);
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg);
            usage(argv[0]);
        }
    }
    return opts;
}

BenchHarness::BenchHarness(const BenchOptions &opts)
    : _opts(opts), _pool(opts.jobs)
{}

workloads::MediaWorkload &
BenchHarness::workload()
{
    if (!_workload) {
        const char *scale = _opts.quick ? "tiny" : "paper";
        std::fprintf(stderr, "[bench] building %s-scale workload "
                             "(both ISAs)...\n", scale);
        _workload = workloads::MediaWorkload::build(
            _opts.quick ? workloads::WorkloadScale::Tiny
                        : workloads::WorkloadScale::Paper);
        std::fprintf(stderr, "[bench] workload ready\n");
    }
    return *_workload;
}

ExperimentRunner &
BenchHarness::runner()
{
    if (!_runner) {
        _runner =
            std::make_unique<ExperimentRunner>(workload(), _pool);
    }
    return *_runner;
}

ResultSink
BenchHarness::run(const SweepGrid &grid)
{
    ResultSink sink = runner().run(grid, _opts.baseSeed);
    std::fprintf(stderr,
                 "[bench] %zu experiments on %d worker(s); "
                 "serial cost %.0f ms\n",
                 sink.size(), _pool.size(), sink.totalWallMs());
    if (!_opts.csvPath.empty()) {
        if (!sink.writeCsv(_opts.csvPath))
            fatal("cannot write CSV to " + _opts.csvPath);
        std::fprintf(stderr, "[bench] wrote %s\n", _opts.csvPath.c_str());
    }
    if (!_opts.jsonPath.empty()) {
        if (!sink.writeJson(_opts.jsonPath))
            fatal("cannot write JSON to " + _opts.jsonPath);
        std::fprintf(stderr, "[bench] wrote %s\n", _opts.jsonPath.c_str());
    }
    return sink;
}

} // namespace momsim::driver
