#include "driver/result_sink.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace momsim::driver
{

namespace
{

/** Quote a CSV field only when it needs it (comma, quote, newline). */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** Fixed double rendering so serializations are byte-stable. */
std::string
num(double v)
{
    // momlint: allow(float-format) deliberate display precision: CSV/table
    // renders quantize for readability; the store keeps the exact %.17g
    return strfmt("%.6g", v);
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = n == text.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else if (static_cast<unsigned char>(c) < 0x20) {
            // Raw control characters are illegal in JSON strings.
            out += strfmt("\\u%04x", c);
        } else {
            out += c;
        }
    }
    return out;
}

ResultSink
ResultSink::filtered(const std::string &workload) const
{
    ResultSink out;
    for (const ResultRow &r : _rows) {
        if (r.workload == workload)
            out.append(r);
    }
    return out;
}

const ResultRow *
ResultSink::find(isa::SimdIsa simd, int threads, mem::MemModel memModel,
                 cpu::FetchPolicy policy, const std::string &variant) const
{
    for (const ResultRow &r : _rows) {
        if (r.simd == simd && r.threads == threads &&
            r.memModel == memModel && r.policy == policy &&
            r.variant == variant) {
            return &r;
        }
    }
    return nullptr;
}

double
ResultSink::headlineAt(isa::SimdIsa simd, int threads,
                       mem::MemModel memModel, cpu::FetchPolicy policy,
                       const std::string &variant) const
{
    const ResultRow *r = find(simd, threads, memModel, policy, variant);
    return r ? r->headline : 0.0;
}

double
ResultSink::totalWallMs() const
{
    double total = 0.0;
    for (const ResultRow &r : _rows)
        total += r.wallMs;
    return total;
}

std::string
ResultSink::toCsv() const
{
    // sim_kcps and wall_ms (the run's nondeterministic self-measurement)
    // stay the last two columns so consumers comparing simulation
    // results can strip them with a single tail cut — the
    // kernel_equivalence gate does exactly that.
    std::string out =
        "id,workload,isa,threads,mem,policy,variant,seed,cycles,"
        "committed_eq,ipc,eipc,headline,l1_hit_rate,icache_hit_rate,"
        "l1_avg_latency,mispredicts,cond_branches,completions,"
        "hit_cycle_limit,sim_kcps,wall_ms\n";
    for (const ResultRow &r : _rows) {
        out += csvField(r.id);
        out += ",";
        out += csvField(r.workload);
        out += strfmt(",%s,%d,%s,%s,", isa::toString(r.simd), r.threads,
                      mem::toString(r.memModel), cpu::toString(r.policy));
        out += csvField(r.variant);
        out += strfmt(",%llu,%llu,%llu",
                      static_cast<unsigned long long>(r.seed),
                      static_cast<unsigned long long>(r.run.cycles),
                      static_cast<unsigned long long>(r.run.committedEq));
        out += "," + num(r.run.ipc) + "," + num(r.run.eipc) + "," +
               num(r.headline) + "," + num(r.run.l1HitRate) + "," +
               num(r.run.icacheHitRate) + "," + num(r.run.l1AvgLatency);
        out += strfmt(",%llu,%llu,%d,%d",
                      static_cast<unsigned long long>(r.run.mispredicts),
                      static_cast<unsigned long long>(r.run.condBranches),
                      r.run.completions, r.run.hitCycleLimit ? 1 : 0);
        out += "," + num(r.run.simKcps) + "," + num(r.run.wallMs) + "\n";
    }
    return out;
}

std::string
ResultSink::toJson() const
{
    std::string out = "[\n";
    for (size_t i = 0; i < _rows.size(); ++i) {
        const ResultRow &r = _rows[i];
        out += "  {";
        out += strfmt("\"id\":\"%s\",", jsonEscape(r.id).c_str());
        out += strfmt("\"workload\":\"%s\",",
                      jsonEscape(r.workload).c_str());
        out += strfmt("\"isa\":\"%s\",\"threads\":%d,",
                      isa::toString(r.simd), r.threads);
        out += strfmt("\"mem\":\"%s\",\"policy\":\"%s\",",
                      mem::toString(r.memModel), cpu::toString(r.policy));
        out += strfmt("\"variant\":\"%s\",\"seed\":%llu,",
                      jsonEscape(r.variant).c_str(),
                      static_cast<unsigned long long>(r.seed));
        out += strfmt("\"cycles\":%llu,\"committed_eq\":%llu,",
                      static_cast<unsigned long long>(r.run.cycles),
                      static_cast<unsigned long long>(r.run.committedEq));
        out += "\"ipc\":" + num(r.run.ipc) + ",\"eipc\":" + num(r.run.eipc) +
               ",\"headline\":" + num(r.headline) +
               ",\"l1_hit_rate\":" + num(r.run.l1HitRate) +
               ",\"icache_hit_rate\":" + num(r.run.icacheHitRate) +
               ",\"l1_avg_latency\":" + num(r.run.l1AvgLatency);
        out += strfmt(",\"mispredicts\":%llu,\"cond_branches\":%llu,"
                      "\"completions\":%d,\"hit_cycle_limit\":%s",
                      static_cast<unsigned long long>(r.run.mispredicts),
                      static_cast<unsigned long long>(r.run.condBranches),
                      r.run.completions,
                      r.run.hitCycleLimit ? "true" : "false");
        out += ",\"sim_kcps\":" + num(r.run.simKcps) +
               ",\"wall_ms\":" + num(r.run.wallMs) + "}";
        out += i + 1 < _rows.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
}

bool
ResultSink::writeCsv(const std::string &path) const
{
    return writeFile(path, toCsv());
}

bool
ResultSink::writeJson(const std::string &path) const
{
    return writeFile(path, toJson());
}

double
ResultSink::headlineOf(const core::RunResult &r, isa::SimdIsa simd)
{
    return simd == isa::SimdIsa::Mom ? r.eipc : r.ipc;
}

const char *
ResultSink::headlineName(isa::SimdIsa simd)
{
    return simd == isa::SimdIsa::Mom ? "EIPC" : "IPC";
}

double
ResultSink::geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

std::string
ResultSink::rule(int width, char fill)
{
    return std::string(static_cast<size_t>(width < 0 ? 0 : width), fill);
}

} // namespace momsim::driver
