#include "driver/result_store.hh"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>

#include "common/hash.hh"
#include "common/logging.hh"

namespace momsim::driver
{

namespace
{

/**
 * Exact double rendering: 17 significant digits guarantee that strtod
 * of the output returns the bit-identical value, so a cached row
 * re-renders (CSV %.6g, table %.2f, ...) byte-identically to the run
 * that produced it. Presentation formats live in ResultSink; this one
 * is for storage only.
 */
std::string
exactNum(double v)
{
    return strfmt("%.17g", v);
}

bool
skipWs(const std::string &s, size_t &i)
{
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t'))
        ++i;
    return i < s.size();
}

bool
parseQuoted(const std::string &s, size_t &i, std::string &out)
{
    if (i >= s.size() || s[i] != '"')
        return false;
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
        char c = s[i++];
        if (c != '\\') {
            out += c;
            continue;
        }
        if (i >= s.size())
            return false;
        char e = s[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (i + 4 > s.size())
                return false;
            unsigned v = 0;
            for (int k = 0; k < 4; ++k) {
                char h = s[i++];
                v <<= 4;
                if (h >= '0' && h <= '9')
                    v |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    v |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    v |= static_cast<unsigned>(h - 'A' + 10);
                else
                    return false;
            }
            if (v > 0xff)   // we never emit beyond Latin-1
                return false;
            out += static_cast<char>(v);
            break;
          }
          default:
            return false;
        }
    }
    if (i >= s.size())
        return false;
    ++i;    // closing quote
    return true;
}

/** A bare value (number / true / false) up to the next ',' or '}'. */
bool
parseBare(const std::string &s, size_t &i, std::string &out)
{
    out.clear();
    while (i < s.size() && s[i] != ',' && s[i] != '}')
        out += s[i++];
    return !out.empty();
}

bool
toU64(const std::string &tok, uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(tok.c_str(), &end, 10);
    return end && *end == '\0' && !tok.empty();
}

bool
toInt(const std::string &tok, int &out)
{
    char *end = nullptr;
    long v = std::strtol(tok.c_str(), &end, 10);
    if (!end || *end != '\0' || tok.empty())
        return false;
    out = static_cast<int>(v);
    return true;
}

bool
toDouble(const std::string &tok, double &out)
{
    char *end = nullptr;
    out = std::strtod(tok.c_str(), &end);
    return end && *end == '\0' && !tok.empty();
}

/** Bit positions of the required row fields, for presence checking. */
enum RowField : uint32_t
{
    kFSchema, kFId, kFWorkload, kFIsa, kFThreads, kFMem, kFPolicy,
    kFVariant, kFSeed, kFCycles, kFCommittedEq, kFIpc, kFEipc, kFHeadline,
    kFL1Hit, kFIcacheHit, kFL1Lat, kFMispredicts, kFCondBranches,
    kFCompletions, kFHitCycleLimit, kFSimKcps, kFWallMs,
    kFCount,
};

std::string
serializeRowFields(const ResultRow &r)
{
    std::string out;
    out += strfmt("\"schema\":%d,", kResultSchemaVersion);
    out += "\"id\":\"" + jsonEscape(r.id) + "\",";
    out += "\"workload\":\"" + jsonEscape(r.workload) + "\",";
    out += strfmt("\"isa\":\"%s\",\"threads\":%d,", isa::toString(r.simd),
                  r.threads);
    out += strfmt("\"mem\":\"%s\",\"policy\":\"%s\",",
                  mem::toString(r.memModel), cpu::toString(r.policy));
    out += "\"variant\":\"" + jsonEscape(r.variant) + "\",";
    out += strfmt("\"seed\":%llu,\"cycles\":%llu,\"committed_eq\":%llu,",
                  static_cast<unsigned long long>(r.seed),
                  static_cast<unsigned long long>(r.run.cycles),
                  static_cast<unsigned long long>(r.run.committedEq));
    out += "\"ipc\":" + exactNum(r.run.ipc) +
           ",\"eipc\":" + exactNum(r.run.eipc) +
           ",\"headline\":" + exactNum(r.headline) +
           ",\"l1_hit_rate\":" + exactNum(r.run.l1HitRate) +
           ",\"icache_hit_rate\":" + exactNum(r.run.icacheHitRate) +
           ",\"l1_avg_latency\":" + exactNum(r.run.l1AvgLatency) + ",";
    out += strfmt("\"mispredicts\":%llu,\"cond_branches\":%llu,"
                  "\"completions\":%d,",
                  static_cast<unsigned long long>(r.run.mispredicts),
                  static_cast<unsigned long long>(r.run.condBranches),
                  r.run.completions);
    out += strfmt("\"hit_cycle_limit\":%s,",
                  r.run.hitCycleLimit ? "true" : "false");
    out += "\"sim_kcps\":" + exactNum(r.run.simKcps) +
           ",\"wall_ms\":" + exactNum(r.run.wallMs);
    return out;
}

/** True when @p line carries a parseable "schema" field != current. */
bool
hasForeignSchema(const std::string &line)
{
    const std::string tag = "\"schema\":";
    size_t i = line.find(tag);
    if (i == std::string::npos)
        return false;
    i += tag.size();
    std::string tok;
    int v = 0;
    return parseBare(line, i, tok) && toInt(tok, v) &&
           v != kResultSchemaVersion;
}

/** Create every missing component of @p dir (mkdir -p). */
bool
makeDirs(const std::string &dir)
{
    size_t start = 0;
    while (start <= dir.size()) {
        size_t slash = dir.find('/', start);
        if (slash == std::string::npos)
            slash = dir.size();
        std::string prefix = dir.substr(0, slash);
        if (!prefix.empty() && prefix != ".")
            ::mkdir(prefix.c_str(), 0755);      // EEXIST is fine
        start = slash + 1;
    }
    struct stat st;
    return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

} // namespace

std::string
serializeResultRow(const ResultRow &row)
{
    return "{" + serializeRowFields(row) + "}";
}

bool
parseStoreLine(const std::string &line, std::string &key, ResultRow &out)
{
    key.clear();
    ResultRow row;
    uint32_t seen = 0;
    auto mark = [&seen](RowField f) { seen |= 1u << f; };

    size_t i = 0;
    if (!skipWs(line, i) || line[i] != '{')
        return false;
    ++i;
    for (;;) {
        if (!skipWs(line, i))
            return false;
        if (line[i] == '}') {
            ++i;
            break;
        }
        if (line[i] == ',') {
            ++i;
            continue;
        }
        std::string name;
        if (!parseQuoted(line, i, name))
            return false;
        if (!skipWs(line, i) || line[i] != ':')
            return false;
        ++i;
        if (!skipWs(line, i))
            return false;
        if (line[i] == '"') {
            std::string v;
            if (!parseQuoted(line, i, v))
                return false;
            if (name == "key") {
                key = v;
            } else if (name == "id") {
                row.id = v;
                mark(kFId);
            } else if (name == "workload") {
                row.workload = v;
                mark(kFWorkload);
            } else if (name == "isa") {
                if (!isa::fromString(v.c_str(), row.simd))
                    return false;
                mark(kFIsa);
            } else if (name == "mem") {
                if (!mem::fromString(v.c_str(), row.memModel))
                    return false;
                mark(kFMem);
            } else if (name == "policy") {
                if (!cpu::fromString(v.c_str(), row.policy))
                    return false;
                mark(kFPolicy);
            } else if (name == "variant") {
                row.variant = v;
                mark(kFVariant);
            }
            // Unknown string fields are ignored (forward compatibility
            // within a schema version).
        } else {
            std::string tok;
            if (!parseBare(line, i, tok))
                return false;
            bool ok = true;
            if (name == "schema") {
                int v = 0;
                ok = toInt(tok, v) && v == kResultSchemaVersion;
                mark(kFSchema);
            } else if (name == "threads") {
                ok = toInt(tok, row.threads);
                mark(kFThreads);
            } else if (name == "seed") {
                ok = toU64(tok, row.seed);
                mark(kFSeed);
            } else if (name == "cycles") {
                ok = toU64(tok, row.run.cycles);
                mark(kFCycles);
            } else if (name == "committed_eq") {
                ok = toU64(tok, row.run.committedEq);
                mark(kFCommittedEq);
            } else if (name == "ipc") {
                ok = toDouble(tok, row.run.ipc);
                mark(kFIpc);
            } else if (name == "eipc") {
                ok = toDouble(tok, row.run.eipc);
                mark(kFEipc);
            } else if (name == "headline") {
                ok = toDouble(tok, row.headline);
                mark(kFHeadline);
            } else if (name == "l1_hit_rate") {
                ok = toDouble(tok, row.run.l1HitRate);
                mark(kFL1Hit);
            } else if (name == "icache_hit_rate") {
                ok = toDouble(tok, row.run.icacheHitRate);
                mark(kFIcacheHit);
            } else if (name == "l1_avg_latency") {
                ok = toDouble(tok, row.run.l1AvgLatency);
                mark(kFL1Lat);
            } else if (name == "mispredicts") {
                ok = toU64(tok, row.run.mispredicts);
                mark(kFMispredicts);
            } else if (name == "cond_branches") {
                ok = toU64(tok, row.run.condBranches);
                mark(kFCondBranches);
            } else if (name == "completions") {
                ok = toInt(tok, row.run.completions);
                mark(kFCompletions);
            } else if (name == "hit_cycle_limit") {
                if (tok == "true")
                    row.run.hitCycleLimit = true;
                else if (tok == "false")
                    row.run.hitCycleLimit = false;
                else
                    ok = false;
                mark(kFHitCycleLimit);
            } else if (name == "sim_kcps") {
                ok = toDouble(tok, row.run.simKcps);
                mark(kFSimKcps);
            } else if (name == "wall_ms") {
                ok = toDouble(tok, row.run.wallMs);
                mark(kFWallMs);
            }
            if (!ok)
                return false;
        }
    }
    if (seen != (1u << kFCount) - 1)
        return false;
    out = std::move(row);
    return true;
}

bool
parseResultRow(const std::string &line, ResultRow &out)
{
    std::string key;
    return parseStoreLine(line, key, out);
}

uint64_t
configFingerprint(const ExperimentSpec &spec)
{
    // NOTE: adding a field to CoreConfig/MemConfig/CacheConfig/
    // DramConfig requires folding it here, or rows cached across the
    // change may be replayed stale. Kept exhaustive on purpose — this
    // hash is what makes a tweak closure's *parameters* part of the
    // cache key instead of just its label.
    cpu::CoreConfig c =
        cpu::CoreConfig::preset(spec.threads, spec.simd, spec.policy);
    if (spec.tweakCore)
        spec.tweakCore(c);
    mem::MemConfig m;
    if (spec.tweakMem)
        spec.tweakMem(m);

    uint64_t h = kHashSeed;
    auto fold = [&h](uint64_t v) { h = hashMix64(h, v); };
    auto foldInt = [&fold](int v) { fold(static_cast<uint64_t>(v)); };
    auto foldCache = [&](const mem::CacheConfig &cc) {
        h = hashMixString(h, cc.name);
        fold(cc.sizeBytes);
        fold(cc.lineBytes);
        fold(cc.ways);
        fold(cc.banks);
        fold(cc.bankShift);
        fold(cc.hitLatency);
        fold(cc.numMshrs);
        fold(cc.writeBufferEntries);
        fold(cc.writeBack ? 1 : 0);
        fold(cc.portsPerCycle);
        fold(cc.bankPumps);
        fold(cc.fillBytesPerCycle);
    };

    foldInt(c.numThreads);
    foldInt(static_cast<int>(c.simd));
    foldInt(static_cast<int>(c.fetchPolicy));
    foldInt(c.fetchGroups);
    foldInt(c.fetchGroupSize);
    foldInt(c.fetchQueueDepth);
    foldInt(c.decodeWidth);
    foldInt(c.mispredictPenalty);
    foldInt(c.intIssue);
    foldInt(c.memIssue);
    foldInt(c.fpIssue);
    foldInt(c.simdIssue);
    foldInt(c.vectorLanes);
    foldInt(c.commitWidth);
    foldInt(c.windowPerThread);
    foldInt(c.intQueue);
    foldInt(c.memQueue);
    foldInt(c.fpQueue);
    foldInt(c.simdQueue);
    foldInt(c.intPhysRegs);
    foldInt(c.fpPhysRegs);
    foldInt(c.simdPhysRegs);
    // Results-neutral by contract (the differential test enforces it),
    // but folded anyway: the fingerprint is exhaustive over config
    // fields, full stop.
    foldInt(c.enableFastForward ? 1 : 0);

    foldCache(m.l1);
    foldCache(m.icache);
    foldCache(m.l2);
    fold(m.dram.accessLatency);
    fold(m.dram.bytesPerCycle);
    fold(m.dram.numDevices);
    fold(m.dram.deviceShift);
    fold(m.dram.deviceBusy);
    fold(m.vectorPorts);
    fold(m.invalidatePenalty);
    return h;
}

std::string
resultCacheKey(const ExperimentSpec &spec, uint64_t workloadFingerprint)
{
    // The per-task seed participates: a row records its seed (and any
    // future stochastic component consumes it), so a --seed 7 run must
    // never replay rows produced under --seed 0. The config fingerprint
    // keys variants by their actual post-tweak parameters, and the code
    // version invalidates on simulator-semantics changes.
    return strfmt("%s|tc%d|mc%llu|s%016llx|cc%016llx|fp%016llx|v%d.%d",
                  spec.canonicalId().c_str(), spec.targetCompletions,
                  static_cast<unsigned long long>(spec.maxCycles),
                  static_cast<unsigned long long>(spec.seed),
                  static_cast<unsigned long long>(configFingerprint(spec)),
                  static_cast<unsigned long long>(workloadFingerprint),
                  kResultSchemaVersion, kSimCodeVersion);
}

double
specCost(const ExperimentSpec &spec, int workloadPrograms)
{
    // Linear fit through cost(1thr)=1, cost(8thr)=4 (ROADMAP's measured
    // ratio for the sweep-aware-scheduling item).
    double cost = (4.0 + 3.0 * spec.threads) / 7.0;
    if (spec.memModel != mem::MemModel::Perfect)
        cost *= 1.5;
    // One run is one pass over the rotation: a 16-program mix is ~2x
    // the work of the 8-program paper mix at the same configuration.
    cost *= static_cast<double>(workloadPrograms) / 8.0;
    return cost;
}

namespace
{

/**
 * The process-wide append lock for one store file, keyed by the
 * canonical (realpath) directory so "cache" and "./cache" — or two
 * ResultStore instances different requests opened on one --cache-dir —
 * resolve to the same mutex. Entries are never removed: the set of
 * distinct cache dirs a process touches is tiny, and a stable address
 * is what lets stores cache the pointer.
 */
Mutex &
appendLockFor(const std::string &dir)
{
    // registry is guarded by registryMutex; every access below is
    // inside one MutexLock hold, so the guard needs no attribute (and
    // GUARDED_BY is not specified for function-local statics).
    static Mutex registryMutex;
    static std::unordered_map<std::string, std::unique_ptr<Mutex>>
        registry;
    std::string key = dir;
    if (char *canon = ::realpath(dir.c_str(), nullptr)) {
        key.assign(canon);
        std::free(canon);
    }
    MutexLock lock(registryMutex);
    std::unique_ptr<Mutex> &slot = registry[key];
    if (!slot)
        slot = std::make_unique<Mutex>();
    return *slot;
}

} // namespace

bool
ResultStore::openDir(const std::string &dir)
{
    if (dir.empty() || !makeDirs(dir))
        return false;
    std::string path = dir + "/" + kFileName;
    Mutex *appendLock = &appendLockFor(dir);
    {
        MutexLock lock(_mutex);
        _path = path;
        _appendLock = appendLock;
    }
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return true;    // nothing persisted yet: an empty, bound store
    std::fclose(f);
    return loadFile(path);
}

bool
ResultStore::loadFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    std::string text;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok)
        return false;

    // Parse the whole file into file-ordered rows first, then merge
    // under one lock hold: the parse is the expensive part, and doing
    // it unlocked keeps a big --merge load from stalling concurrent
    // find()/put() traffic on a shared store.
    std::vector<std::pair<std::string, ResultRow>> parsed;
    size_t foreignRows = 0;
    size_t start = 0;
    while (start < text.size()) {
        size_t eol = text.find('\n', start);
        bool lastLine = eol == std::string::npos;
        if (lastLine)
            eol = text.size();
        std::string line = text.substr(start, eol - start);
        start = eol + 1;
        if (line.empty())
            continue;
        std::string key;
        ResultRow row;
        if (!parseStoreLine(line, key, row) || key.empty()) {
            // Rows written under another schema version are not
            // corruption — they simply can never hit (the key embeds
            // the version), so a bumped binary reuses the same store
            // and old rows fall away as misses.
            if (hasForeignSchema(line)) {
                ++foreignRows;
                continue;
            }
            // A truncated final line means a writer died mid-append;
            // the rows before it are still good. Anything else is
            // corruption the caller must know about.
            if (lastLine) {
                warn("result store: ignoring truncated final line in " +
                     path);
                continue;
            }
            return false;
        }
        parsed.emplace_back(std::move(key), std::move(row));
    }
    if (foreignRows)
        warn(strfmt("result store: skipped %zu row(s) of another schema "
                    "version in %s", foreignRows, path.c_str()));
    MutexLock lock(_mutex);
    for (auto &kv : parsed)
        _rows[kv.first] = std::move(kv.second);     // last wins
    return true;
}

const ResultRow *
ResultStore::lookup(const std::string &key) const
{
    auto it = _rows.find(key);
    return it == _rows.end() ? nullptr : &it->second;
}

bool
ResultStore::find(const std::string &key, ResultRow &out) const
{
    MutexLock lock(_mutex);
    auto it = _rows.find(key);
    if (it == _rows.end())
        return false;
    out = it->second;
    return true;
}

void
ResultStore::put(const std::string &key, const ResultRow &row)
{
    // Snapshot the path *and* the append lock together: a concurrent
    // openDir() may rebind both, and appending to the new path under
    // the old file's lock would lose the whole-line guarantee.
    std::string path;
    Mutex *appendLock = nullptr;
    {
        MutexLock lock(_mutex);
        _rows[key] = row;
        path = _path;
        appendLock = _appendLock;
    }
    if (path.empty())
        return;
    std::string line = "{\"key\":\"" + jsonEscape(key) + "\"," +
                       serializeRowFields(row) + "}\n";
    bool shortWrite;
    {
        // One whole line per lock hold: concurrent puts — from this
        // store's workers or a sibling store another request bound to
        // the same file — append whole lines, never interleaved bytes.
        MutexLock appendHold(*appendLock);
        std::FILE *f = std::fopen(path.c_str(), "a");
        if (!f) {
            warn("result store: cannot append to " + path);
            return;
        }
        size_t written = std::fwrite(line.data(), 1, line.size(), f);
        shortWrite = std::fclose(f) != 0 || written != line.size();
    }
    if (shortWrite) {
        // A partial line may now be on disk. Stop appending: another
        // put would continue on the same line and turn a tolerable
        // truncated *tail* into corruption in the *middle* of the
        // file, which loadFile rightly refuses.
        warn("result store: short write to " + path +
             "; disabling persistence for this run");
        MutexLock lock(_mutex);
        _path.clear();
    }
}

size_t
RunPlan::mineCount() const
{
    size_t count = 0;
    for (const PlannedPoint &p : points)
        count += p.shard == shardIndex;
    return count;
}

size_t
RunPlan::cachedMineCount() const
{
    size_t count = 0;
    for (const PlannedPoint &p : points)
        count += p.shard == shardIndex && p.cached;
    return count;
}

size_t
RunPlan::simulateCount() const
{
    size_t count = 0;
    for (const PlannedPoint &p : points)
        count += p.shard == shardIndex && !p.cached;
    return count;
}

RunPlan
planSweep(std::vector<ExperimentSpec> specs,
          const WorkloadFingerprintFn &fingerprintOf,
          const SpecCostFn &costOf, const ResultStore *store,
          int shardIndex, int shardCount)
{
    MOMSIM_ASSERT(shardCount >= 1 && shardIndex >= 0 &&
                      shardIndex < shardCount,
                  "invalid shard selection");

    RunPlan plan;
    plan.shardIndex = shardIndex;
    plan.shardCount = shardCount;
    plan.points.reserve(specs.size());
    for (ExperimentSpec &spec : specs) {
        PlannedPoint p;
        p.key = resultCacheKey(spec, fingerprintOf(spec.workload));
        p.cost = costOf(spec);
        p.spec = std::move(spec);
        if (store) {
            // find(), not lookup(): on a serve daemon's shared store
            // another request may be put()ting concurrently.
            ResultRow hit;
            if (store->find(p.key, hit)) {
                p.cached = true;
                p.row = std::move(hit);
            }
        }
        plan.points.push_back(std::move(p));
    }

    // Cost-weighted dealing: heaviest points first, each onto the
    // least-loaded shard. Depends only on the spec list — never on the
    // cache — so independent shard processes agree on the assignment.
    std::vector<double> costs;
    costs.reserve(plan.points.size());
    for (const PlannedPoint &p : plan.points)
        costs.push_back(p.cost);
    std::vector<int> bins = dealByCost(costs, shardCount);
    for (size_t i = 0; i < plan.points.size(); ++i)
        plan.points[i].shard = bins[i];
    return plan;
}

std::vector<int>
dealByCost(const std::vector<double> &costs, int binCount)
{
    MOMSIM_ASSERT(binCount >= 1, "dealByCost needs at least one bin");
    std::vector<size_t> order(costs.size());
    std::iota(order.begin(), order.end(), size_t { 0 });
    std::stable_sort(order.begin(), order.end(),
                     [&costs](size_t a, size_t b) {
                         return costs[a] > costs[b];
                     });
    std::vector<double> load(static_cast<size_t>(binCount), 0.0);
    std::vector<int> bins(costs.size(), 0);
    for (size_t idx : order) {
        size_t best = 0;
        for (size_t s = 1; s < load.size(); ++s) {
            if (load[s] < load[best])
                best = s;
        }
        bins[idx] = static_cast<int>(best);
        load[best] += costs[idx];
    }
    return bins;
}

RunPlan
planSweep(std::vector<ExperimentSpec> specs, workloads::WorkloadRepo &repo,
          const ResultStore *store, int shardIndex, int shardCount)
{
    return planSweep(
        std::move(specs),
        [&repo](const std::string &name) {
            return repo.fingerprintOf(name);
        },
        [&repo](const ExperimentSpec &spec) {
            return specCost(spec, repo.get(spec.workload)->numPrograms());
        },
        store, shardIndex, shardCount);
}

} // namespace momsim::driver
