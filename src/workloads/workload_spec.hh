/**
 * @file
 * Workloads as named, parameterized inputs: a WorkloadSpec is a stable
 * name plus a scale and a program-mix recipe (which benchmark fills
 * each rotation slot, in order). The registry maps the names the
 * driver's `--workload` axis accepts — the paper's Table-2 mix,
 * decode-/encode-heavy variants, per-codec homogeneous mixes, and
 * N-copies scalings of the paper mix — onto recipes, so benches can
 * compare mixes instead of hard-wiring one process-global workload.
 */

#ifndef MOMSIM_WORKLOADS_WORKLOAD_SPEC_HH
#define MOMSIM_WORKLOADS_WORKLOAD_SPEC_HH

#include <string>
#include <vector>

namespace momsim::workloads
{

/** How large a workload is built. */
enum class WorkloadScale
{
    Tiny,       ///< unit/integration tests: seconds to build & run
    Paper,      ///< bench runs: the full Table-2-shaped data sets
};

/**
 * One rotation-slot role. Values are dense so tables (profile names,
 * data-set descriptions) can index by kind.
 */
enum class ProgramKind : int
{
    Mpeg2Enc = 0,
    Mpeg2Dec,
    GsmEnc,
    GsmDec,
    JpegEnc,
    JpegDec,
    Mesa,
};

constexpr int kNumProgramKinds = 7;

/** Base benchmark name of a kind ("mpeg2enc", "gsmdec", ...). */
const char *toString(ProgramKind kind);

/** A named program-mix recipe at a given build scale. */
struct WorkloadSpec
{
    std::string name;           ///< stable registry name ("paper", ...)
    WorkloadScale scale = WorkloadScale::Paper;
    std::vector<ProgramKind> slots;     ///< rotation recipe, in order
    std::string description;    ///< one line for --list-workloads

    /** The paper's Table-2 mix (Section 5.1 rotation order). */
    static WorkloadSpec paper(WorkloadScale scale = WorkloadScale::Paper);

    /**
     * Resolve @p name against the registry. Fixed names first
     * ("paper", "decode-heavy", "encode-heavy", "mpeg2x8", "gsmx8",
     * "jpegx8"), then the scaled-mix pattern "paperxN" (the paper
     * rotation repeated N times, 2 <= N <= 8). Returns false for
     * unknown names; @p out.scale is left at its default and must be
     * set by the caller.
     */
    static bool byName(const std::string &name, WorkloadSpec &out);

    static bool isKnown(const std::string &name);

    /** The fixed registry entries, for --list-workloads. */
    static std::vector<WorkloadSpec> registry();
};

} // namespace momsim::workloads

#endif // MOMSIM_WORKLOADS_WORKLOAD_SPEC_HH
