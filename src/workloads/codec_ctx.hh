/**
 * @file
 * Bundles a TraceBuilder with the three emitters, the constant pool and
 * both kernel backends — the standard toolkit each codec builds on.
 */

#ifndef MOMSIM_WORKLOADS_CODEC_CTX_HH
#define MOMSIM_WORKLOADS_CODEC_CTX_HH

#include "workloads/backend.hh"

namespace momsim::workloads
{

struct CodecCtx
{
    trace::TraceBuilder tb;
    ScalarEmitter s;
    MmxEmitter mx;
    MomEmitter mv;
    ConstPool cp;
    MmxBackend bmx;
    MomBackend bmm;

    CodecCtx(const char *name, isa::SimdIsa simd, uint32_t base,
             uint32_t dataCapacity = 4u << 20)
        : tb(name, simd, base, dataCapacity),
          s(tb), mx(tb), mv(tb),
          cp(tb, s, mx),
          bmx(s, mx, cp),
          bmm(s, mx, mv, cp)
    {}
};

/** Select the backend matching a template parameter. */
template <class B> B &backendOf(CodecCtx &ctx);

template <>
inline MmxBackend &
backendOf<MmxBackend>(CodecCtx &ctx)
{
    return ctx.bmx;
}

template <>
inline MomBackend &
backendOf<MomBackend>(CodecCtx &ctx)
{
    return ctx.bmm;
}

} // namespace momsim::workloads

#endif // MOMSIM_WORKLOADS_CODEC_CTX_HH
