#include "workloads/workload_spec.hh"

#include "common/logging.hh"

namespace momsim::workloads
{

namespace
{

using PK = ProgramKind;

WorkloadSpec
fixedSpec(const char *name, std::vector<ProgramKind> slots,
          const char *description)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.slots = std::move(slots);
    spec.description = description;
    return spec;
}

} // namespace

const char *
toString(ProgramKind kind)
{
    switch (kind) {
      case PK::Mpeg2Enc: return "mpeg2enc";
      case PK::Mpeg2Dec: return "mpeg2dec";
      case PK::GsmEnc: return "gsmenc";
      case PK::GsmDec: return "gsmdec";
      case PK::JpegEnc: return "jpegenc";
      case PK::JpegDec: return "jpegdec";
      case PK::Mesa: return "mesa";
    }
    return "?";
}

WorkloadSpec
WorkloadSpec::paper(WorkloadScale scale)
{
    // The exact Section 5.1 rotation: MPEG-2 encoder, GSM decoder,
    // MPEG-2 decoder, GSM encoder, JPEG decoder, JPEG encoder, mesa,
    // and MPEG-2 decoder a second time.
    WorkloadSpec spec = fixedSpec(
        "paper",
        { PK::Mpeg2Enc, PK::GsmDec, PK::Mpeg2Dec, PK::GsmEnc, PK::JpegDec,
          PK::JpegEnc, PK::Mesa, PK::Mpeg2Dec },
        "the Table-2 mix (Section 5.1 rotation; the default)");
    spec.scale = scale;
    return spec;
}

std::vector<WorkloadSpec>
WorkloadSpec::registry()
{
    std::vector<WorkloadSpec> out;
    out.push_back(paper());
    out.push_back(fixedSpec(
        "decode-heavy",
        { PK::Mpeg2Dec, PK::GsmDec, PK::JpegDec, PK::Mpeg2Dec, PK::JpegDec,
          PK::GsmDec, PK::Mesa, PK::Mpeg2Dec },
        "playback-shaped mix: seven decoders plus mesa"));
    out.push_back(fixedSpec(
        "encode-heavy",
        { PK::Mpeg2Enc, PK::GsmEnc, PK::JpegEnc, PK::Mpeg2Enc, PK::JpegEnc,
          PK::GsmEnc, PK::Mesa, PK::Mpeg2Enc },
        "capture-shaped mix: seven encoders plus mesa"));
    out.push_back(fixedSpec(
        "mpeg2x8",
        { PK::Mpeg2Enc, PK::Mpeg2Dec, PK::Mpeg2Enc, PK::Mpeg2Dec,
          PK::Mpeg2Enc, PK::Mpeg2Dec, PK::Mpeg2Enc, PK::Mpeg2Dec },
        "homogeneous video: four MPEG-2 encode/decode pairs"));
    out.push_back(fixedSpec(
        "gsmx8",
        { PK::GsmEnc, PK::GsmDec, PK::GsmEnc, PK::GsmDec, PK::GsmEnc,
          PK::GsmDec, PK::GsmEnc, PK::GsmDec },
        "homogeneous speech: four GSM encode/decode pairs"));
    out.push_back(fixedSpec(
        "jpegx8",
        { PK::JpegEnc, PK::JpegDec, PK::JpegEnc, PK::JpegDec, PK::JpegEnc,
          PK::JpegDec, PK::JpegEnc, PK::JpegDec },
        "homogeneous still image: four JPEG encode/decode pairs"));
    return out;
}

bool
WorkloadSpec::byName(const std::string &name, WorkloadSpec &out)
{
    for (WorkloadSpec &spec : registry()) {
        if (spec.name == name) {
            out = std::move(spec);
            return true;
        }
    }

    // "paperxN": the paper rotation repeated N times (2 <= N <= 8),
    // scaling thread pressure without changing the mix's shape. N is a
    // single bare digit — no signs, whitespace or leading zeros — so
    // every accepted workload has exactly one name (names key cache
    // rows and canonical ids; "paperx+3" aliasing "paperx3" would
    // split their cache entries).
    const std::string prefix = "paperx";
    if (name.size() == prefix.size() + 1 &&
        name.compare(0, prefix.size(), prefix) == 0) {
        long n = name.back() - '0';
        if (n >= 2 && n <= 8) {
            WorkloadSpec base = paper();
            WorkloadSpec spec;
            spec.name = name;
            spec.description = strfmt("the paper mix repeated %ld times "
                                      "(%ld programs)", n,
                                      n * static_cast<long>(
                                              base.slots.size()));
            for (long i = 0; i < n; ++i)
                spec.slots.insert(spec.slots.end(), base.slots.begin(),
                                  base.slots.end());
            out = std::move(spec);
            return true;
        }
    }
    return false;
}

bool
WorkloadSpec::isKnown(const std::string &name)
{
    WorkloadSpec unused;
    return byName(name, unused);
}

} // namespace momsim::workloads
