#include "workloads/mesa.hh"

#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "workloads/codec_ctx.hh"

namespace momsim::workloads
{

namespace
{

struct Vec3
{
    float x, y, z;
};

struct Tri
{
    int v0, v1, v2;
};

/** Parametric torus mesh with per-vertex normals. */
void
makeTorus(int rings, int sides, std::vector<Vec3> &verts,
          std::vector<Vec3> &normals, std::vector<Tri> &tris)
{
    const float R = 1.0f, r = 0.45f;
    for (int i = 0; i < rings; ++i) {
        float u = 2.0f * 3.14159265f * i / rings;
        for (int j = 0; j < sides; ++j) {
            float v = 2.0f * 3.14159265f * j / sides;
            float cx = std::cos(u), sx = std::sin(u);
            float cv = std::cos(v), sv = std::sin(v);
            verts.push_back({ (R + r * cv) * cx, (R + r * cv) * sx,
                              r * sv });
            normals.push_back({ cv * cx, cv * sx, sv });
        }
    }
    for (int i = 0; i < rings; ++i) {
        for (int j = 0; j < sides; ++j) {
            int a = i * sides + j;
            int b = ((i + 1) % rings) * sides + j;
            int c = i * sides + (j + 1) % sides;
            int d = ((i + 1) % rings) * sides + (j + 1) % sides;
            tris.push_back({ a, b, c });
            tris.push_back({ b, d, c });
        }
    }
}

} // namespace

trace::Program
buildMesa(isa::SimdIsa simd, uint32_t base, const MesaConfig &cfg,
          MesaRendered *out)
{
    CodecCtx ctx("mesa", simd, base, 2u << 20);
    ScalarEmitter &s = ctx.s;
    trace::TraceBuilder &tb = ctx.tb;

    int W = cfg.width, H = cfg.height;
    uint32_t colorBuf = tb.alloc(static_cast<uint32_t>(W) * H, 64);
    uint32_t depthBuf = tb.alloc(static_cast<uint32_t>(W) * H * 4, 64);
    uint32_t vtxBuf = tb.alloc(1, 64);          // placeholder base

    std::vector<Vec3> verts, normals;
    std::vector<Tri> tris;
    makeTorus(cfg.rings, cfg.sides, verts, normals, tris);
    (void)vtxBuf;

    uint64_t pixelsShaded = 0, trianglesDrawn = 0;

    for (int frame = 0; frame < cfg.frames; ++frame) {
        // ---- clear buffers (scalar loop, as in a software rasterizer)
        s.call("clear_buffers", 2048);
        {
            IVal cp = s.imm(static_cast<int32_t>(colorBuf));
            IVal zp = s.imm(static_cast<int32_t>(depthBuf));
            FVal farZ = s.fconst(1.0e9f);
            IVal zero32 = s.imm(0x20202020);
            IVal n = s.imm(W * H / 4);
            uint32_t head = s.loopHead();
            for (int i = 0; i < W * H / 4; ++i) {
                s.storeI32(cp, i * 4, zero32);
                for (int k = 0; k < 4; ++k)
                    s.storeF(zp, (i * 4 + k) * 4, farZ);
                n = s.subi(n, 1);
                s.loopBack(head, n, i + 1 < W * H / 4);
            }
        }
        s.ret();

        // ---- transform + light vertices ----
        float ang = 0.5f + 0.35f * frame;
        float ca = std::cos(ang), sa = std::sin(ang);
        float cb = std::cos(0.7f * ang), sb = std::sin(0.7f * ang);
        // Rotation about Z then X, translate back, perspective.
        auto xform = [&](const Vec3 &v) {
            Vec3 t;
            t.x = ca * v.x - sa * v.y;
            t.y = sa * v.x + ca * v.y;
            t.z = v.z;
            float y2 = cb * t.y - sb * t.z;
            float z2 = sb * t.y + cb * t.z;
            t.y = y2;
            t.z = z2 + 3.2f;
            return t;
        };
        Vec3 light = { 0.4f, 0.5f, -0.77f };

        struct SVert
        {
            float sx, sy, z;
            int shade;
        };
        std::vector<SVert> sv(verts.size());

        s.call("transform_light", 2048);
        {
            FVal fca = s.fconst(ca), fsa = s.fconst(sa);
            FVal fcb = s.fconst(cb), fsb = s.fconst(sb);
            FVal dist = s.fconst(3.2f);
            FVal focal = s.fconst(110.0f);
            FVal halfW = s.fconst(W / 2.0f), halfH = s.fconst(H / 2.0f);
            FVal lx = s.fconst(light.x), ly = s.fconst(light.y),
                 lz = s.fconst(light.z);
            IVal cnt = s.imm(static_cast<int32_t>(verts.size()));
            uint32_t head = s.loopHead();
            for (size_t i = 0; i < verts.size(); ++i) {
                Vec3 t = xform(verts[i]);
                Vec3 nr = xform(normals[i]);
                nr.z -= 3.2f;       // normals rotate, not translate
                // Emit the same arithmetic through the FP pipeline.
                FVal vx = s.fconst(verts[i].x);
                FVal vy = s.fconst(verts[i].y);
                FVal vz = s.fconst(verts[i].z);
                FVal tx = s.fsub(s.fmul(fca, vx), s.fmul(fsa, vy));
                FVal ty0 = s.fadd(s.fmul(fsa, vx), s.fmul(fca, vy));
                FVal ty = s.fsub(s.fmul(fcb, ty0), s.fmul(fsb, vz));
                FVal tz = s.fadd(s.fadd(s.fmul(fsb, ty0),
                                        s.fmul(fcb, vz)), dist);
                FVal inv = s.fdiv(focal, tz);
                FVal sx = s.fadd(s.fmul(tx, inv), halfW);
                FVal sy = s.fadd(s.fmul(ty, inv), halfH);
                // Diffuse lighting on the rotated normal.
                FVal nx = s.fconst(nr.x), ny = s.fconst(nr.y),
                     nz = s.fconst(nr.z);
                FVal dot = s.fadd(s.fadd(s.fmul(nx, lx), s.fmul(ny, ly)),
                                  s.fmul(nz, lz));
                FVal clamped = s.fabs_(dot);
                IVal shade = s.cvtFI(s.fmul(clamped, s.fconst(220.0f)));
                shade = s.addi(shade, 30);

                float fz = t.z;
                float finv = 110.0f / fz;
                float fsx = t.x * finv + W / 2.0f;
                float fsy = t.y * finv + H / 2.0f;
                float dotH = std::fabs(nr.x * light.x + nr.y * light.y +
                                       nr.z * light.z);
                sv[i] = { fsx, fsy, fz,
                          std::min(250, static_cast<int>(dotH * 220) + 30) };
                (void)sx;
                (void)sy;
                (void)shade;
                cnt = s.subi(cnt, 1);
                s.loopBack(head, cnt, i + 1 < verts.size());
            }
        }
        s.ret();

        // ---- rasterize with z-buffer ----
        s.call("rasterize", 2048);
        IVal cbuf = s.imm(static_cast<int32_t>(colorBuf));
        IVal zbuf = s.imm(static_cast<int32_t>(depthBuf));
        for (const Tri &tri : tris) {
            const SVert &a = sv[static_cast<size_t>(tri.v0)];
            const SVert &b = sv[static_cast<size_t>(tri.v1)];
            const SVert &c = sv[static_cast<size_t>(tri.v2)];
            // Back-face cull via signed area.
            float area = (b.sx - a.sx) * (c.sy - a.sy) -
                         (c.sx - a.sx) * (b.sy - a.sy);
            IVal areaIv = s.imm(static_cast<int32_t>(area * 16.0f));
            s.condBr(areaIv, area <= 0.0f);
            if (area <= 0.0f)
                continue;
            ++trianglesDrawn;
            int minx = std::max(0, static_cast<int>(
                std::floor(std::min({ a.sx, b.sx, c.sx }))));
            int maxx = std::min(W - 1, static_cast<int>(
                std::ceil(std::max({ a.sx, b.sx, c.sx }))));
            int miny = std::max(0, static_cast<int>(
                std::floor(std::min({ a.sy, b.sy, c.sy }))));
            int maxy = std::min(H - 1, static_cast<int>(
                std::ceil(std::max({ a.sy, b.sy, c.sy }))));
            int shade = (a.shade + b.shade + c.shade) / 3;
            IVal shadeIv = s.imm(shade);
            float invArea = 1.0f / area;
            float zavg = (a.z + b.z + c.z) / 3.0f;
            FVal zIv = s.fconst(zavg);

            IVal rows = s.imm(maxy - miny + 1);
            uint32_t rowHead = s.loopHead();
            for (int y = miny; y <= maxy; ++y) {
                IVal cols = s.imm(maxx - minx + 1);
                uint32_t colHead = s.loopHead();
                for (int x = minx; x <= maxx; ++x) {
                    float px = x + 0.5f, py = y + 0.5f;
                    float w0 = (b.sx - a.sx) * (py - a.sy) -
                               (px - a.sx) * (b.sy - a.sy);
                    float w1 = (c.sx - b.sx) * (py - b.sy) -
                               (px - b.sx) * (c.sy - b.sy);
                    float w2 = (a.sx - c.sx) * (py - c.sy) -
                               (px - c.sx) * (a.sy - c.sy);
                    bool inside = w0 >= 0 && w1 >= 0 && w2 >= 0;
                    // Edge tests in fixed point through the int pipe.
                    IVal e0 = s.imm(static_cast<int32_t>(w0 * 16));
                    IVal e1 = s.imm(static_cast<int32_t>(w1 * 16));
                    IVal e2 = s.imm(static_cast<int32_t>(w2 * 16));
                    IVal m = s.and_(s.and_(e0, e1), e2);
                    s.condBr(m, !inside);
                    if (inside) {
                        (void)invArea;
                        int idx = y * W + x;
                        FVal zOld = s.loadF(zbuf, idx * 4);
                        IVal lt = s.fcmplt(zIv, zOld);
                        float zh;
                        {
                            uint32_t bits = tb.peek32(
                                depthBuf + static_cast<uint32_t>(idx * 4));
                            float f;
                            static_assert(sizeof(f) == 4);
                            std::memcpy(&f, &bits, 4);
                            zh = f;
                        }
                        bool pass = zavg < zh;
                        s.condBr(lt, !pass);
                        if (pass) {
                            s.storeF(zbuf, idx * 4, zIv);
                            s.storeU8(cbuf, idx, shadeIv);
                            ++pixelsShaded;
                        }
                    }
                    cols = s.subi(cols, 1);
                    s.loopBack(colHead, cols, x < maxx);
                }
                rows = s.subi(rows, 1);
                s.loopBack(rowHead, rows, y < maxy);
            }
        }
        s.ret();
    }

    if (out) {
        out->width = W;
        out->height = H;
        out->color.resize(static_cast<size_t>(W) * H);
        tb.peekBytes(colorBuf, out->color.data(),
                     static_cast<uint32_t>(out->color.size()));
        out->depth.resize(static_cast<size_t>(W) * H);
        for (int i = 0; i < W * H; ++i) {
            uint32_t bits = tb.peek32(depthBuf +
                                      static_cast<uint32_t>(i * 4));
            std::memcpy(&out->depth[static_cast<size_t>(i)], &bits, 4);
        }
        out->pixelsShaded = pixelsShaded;
        out->trianglesDrawn = trianglesDrawn;
    }
    (void)simd;
    return ctx.tb.take();
}

} // namespace momsim::workloads
