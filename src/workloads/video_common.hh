/**
 * @file
 * Shared pieces of the video codecs: deterministic synthetic video
 * frames (the substitution for Mediabench's input clips — see DESIGN.md),
 * 16x16 SAD kernels for motion estimation in both ISAs, and bitstream
 * I/O wrappers that write real bits host-side while emitting the scalar
 * instruction cost of the bit-twiddling (the "protocol overhead" that
 * dominates Table 3's integer share).
 */

#ifndef MOMSIM_WORKLOADS_VIDEO_COMMON_HH
#define MOMSIM_WORKLOADS_VIDEO_COMMON_HH

#include <cstdint>
#include <vector>

#include "common/bitio.hh"
#include "common/rng.hh"
#include "trace/mmx_emitter.hh"
#include "trace/mom_emitter.hh"
#include "trace/scalar_emitter.hh"

namespace momsim::workloads
{

using trace::IVal;
using trace::MmxEmitter;
using trace::MomEmitter;
using trace::MVal;
using trace::ScalarEmitter;
using trace::SVal;

/**
 * Deterministic synthetic video: a shaded background plus textured
 * moving rectangles plus mild sensor noise. Motion between consecutive
 * frames is a few pixels, so block motion search has real work to do.
 */
std::vector<uint8_t> makeLumaFrame(int w, int h, int frame, uint64_t seed);

/** Chroma planes: downsampled colour wash following the same motion. */
std::vector<uint8_t> makeChromaFrame(int w, int h, int frame, uint64_t seed,
                                     bool cr);

/** Synthetic planar RGB image for the JPEG codec. */
void makeRgbImage(int w, int h, uint64_t seed, std::vector<uint8_t> &r,
                  std::vector<uint8_t> &g, std::vector<uint8_t> &b);

/**
 * MMX 16x16 SAD: per row two 8-byte loads from each image, PSADBW,
 * accumulate; plus the loop-control scalar overhead of real unrolled-
 * by-one code. Returns the SAD in an integer register.
 */
IVal sad16x16Mmx(ScalarEmitter &s, MmxEmitter &mx, IVal cur, IVal ref,
                 int pitch);

/**
 * MOM 16x16 SAD: two strided stream loads per image (left/right
 * halves, stride = pitch, length 16) into ACCSAD.OB — no per-row loop.
 */
IVal sad16x16Mom(ScalarEmitter &s, MomEmitter &mv, IVal cur, IVal ref,
                 int pitch);

/**
 * Bitstream writer pairing a host-side BitWriter with the emitted
 * scalar cost of the buffer bookkeeping (shift/or/store/advance).
 */
class VlcWriter
{
  public:
    VlcWriter(ScalarEmitter &s, uint32_t bufAddr)
        : _s(s), _ptr(s.imm(static_cast<int32_t>(bufAddr)))
    {}

    /** Write @p bits bits of @p value; emits the bit-packing cost. */
    void
    put(uint32_t value, int bits)
    {
        _bw.put(value, bits);
        // Real VLC writers look the code length up, shift the window,
        // mask, or-accumulate and check for flushes — all integer work.
        IVal v = _s.imm(static_cast<int32_t>(value));
        IVal len = _s.andi(v, 31);                  // code-length extract
        IVal shifted = _s.slli(v, bits & 15);
        IVal merged = _s.or_(shifted, _acc.reg != isa::kNoReg
                             ? _acc : _s.imm(0));
        IVal room = _s.cmplti(len, 32 - (_pending & 31));
        _s.condBr(room, (_pending + bits) < 32);
        _acc = merged;
        _pending += bits;
        while (_pending >= 32) {
            _s.storeI32(_ptr, _offset, _acc);
            _offset += 4;
            _acc = _s.srli(_acc, 16);
            _pending -= 32;
        }
    }

    /** Signed Exp-Golomb code (used for levels and motion vectors). */
    void
    putSigned(int32_t v)
    {
        uint32_t mapped = v <= 0 ? static_cast<uint32_t>(-2 * v)
                                 : static_cast<uint32_t>(2 * v - 1);
        putUnsigned(mapped);
    }

    /** Unsigned Exp-Golomb code. */
    void
    putUnsigned(uint32_t v)
    {
        uint32_t x = v + 1;
        int len = 0;
        while ((x >> len) > 1)
            ++len;
        put(0, len);
        put(x, len + 1);
    }

    void
    alignByte()
    {
        _bw.alignByte();
    }

    const BitWriter &writer() const { return _bw; }
    size_t bitCount() const { return _bw.bitCount(); }

  private:
    ScalarEmitter &_s;
    BitWriter _bw;
    IVal _ptr;
    IVal _acc;
    int _pending = 0;
    int32_t _offset = 0;
};

/** Bitstream reader: host BitReader + emitted parse cost. */
class VlcReader
{
  public:
    VlcReader(ScalarEmitter &s, const std::vector<uint8_t> &bytes,
              uint32_t bufAddr)
        : _s(s), _br(bytes), _ptr(s.imm(static_cast<int32_t>(bufAddr)))
    {}

    uint32_t
    get(int bits)
    {
        uint32_t v = _br.get(bits);
        // Real VLC decode: refill check, window shift/mask, and a code
        // table walk (load + compare + branch) — all integer work.
        if (_sinceLoad >= 24) {
            _window = _s.loadI32(_ptr, _offset);
            _offset += 4;
            _sinceLoad = 0;
        }
        IVal win = _window.reg != isa::kNoReg ? _window : _s.imm(0);
        IVal shifted = _s.srli(win, bits & 15);
        IVal masked = _s.andi(shifted, 0xFFFF);
        IVal probe = _s.loadU8(_ptr, static_cast<int32_t>(
            (_offset + (static_cast<int32_t>(v) & 63))));
        IVal cmp = _s.cmplt(probe, masked);
        _s.condBr(cmp, (v & 1) != 0);
        _window = masked;
        _sinceLoad += bits;
        return v;
    }

    int32_t
    getSigned()
    {
        uint32_t mapped = getUnsigned();
        if (mapped & 1)
            return static_cast<int32_t>((mapped + 1) / 2);
        return -static_cast<int32_t>(mapped / 2);
    }

    uint32_t
    getUnsigned()
    {
        int len = 0;
        while (_br.peek(len + 1) == 0 && len < 31)
            ++len;
        // emitted cost of the leading-zero scan
        IVal probe = _s.andi(_window.reg != isa::kNoReg ? _window
                                                        : _s.imm(0), 1);
        _s.condBr(probe, len > 0);
        uint32_t x = get(2 * len + 1);
        return x - 1;
    }

    bool exhausted() const { return _br.exhausted(); }

  private:
    ScalarEmitter &_s;
    BitReader _br;
    IVal _ptr;
    IVal _window;
    int _sinceLoad = 99;        // force initial load
    int32_t _offset = 0;
};

} // namespace momsim::workloads

#endif // MOMSIM_WORKLOADS_VIDEO_COMMON_HH
