#include "workloads/mpeg2.hh"

#include <cmath>

#include "common/logging.hh"
#include "workloads/blocks.hh"
#include "workloads/codec_ctx.hh"
#include "workloads/video_common.hh"

namespace momsim::workloads
{

namespace
{

/** Standard zig-zag scan order (row-major index per scan position). */
constexpr int kZigzag[64] = {
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63,
};

/** Quantizer step per row-major coefficient position. */
int
qStep(const VideoConfig &cfg, int pos)
{
    if (pos == 0)
        return std::max(4, cfg.quant / 2);
    int r = pos / 8, c = pos % 8;
    return cfg.quant + ((r + c) * cfg.quant) / 16;
}

struct Planes
{
    uint32_t y, cb, cr;
};

struct Layout
{
    int w, h, cw, ch, mbx, mby, nMb, nBlocks;
    uint32_t curY, curCb, curCr;
    Planes ref, next;
    Planes gray;
    uint32_t blkDiff, blkDct, blkQuant;
    uint32_t deqBlk, idctBlk;
    uint32_t recipTab, qTab;
    uint32_t bitBuf;
};

Layout
makeLayout(CodecCtx &ctx, const VideoConfig &cfg, bool encoder)
{
    Layout L;
    L.w = cfg.width;
    L.h = cfg.height;
    L.cw = cfg.width / 2;
    L.ch = cfg.height / 2;
    L.mbx = L.w / 16;
    L.mby = L.h / 16;
    L.nMb = L.mbx * L.mby;
    L.nBlocks = L.nMb * 6;

    auto plane = [&](int w, int h) {
        return ctx.tb.alloc(static_cast<uint32_t>(w) * h, 64);
    };
    L.curY = plane(L.w, L.h);
    L.curCb = plane(L.cw, L.ch);
    L.curCr = plane(L.cw, L.ch);
    L.ref = { plane(L.w, L.h), plane(L.cw, L.ch), plane(L.cw, L.ch) };
    L.next = { plane(L.w, L.h), plane(L.cw, L.ch), plane(L.cw, L.ch) };
    L.gray = { plane(L.w, L.h), plane(L.cw, L.ch), plane(L.cw, L.ch) };
    for (uint32_t p : { L.gray.y }) {
        for (int i = 0; i < L.w * L.h; ++i)
            ctx.tb.poke8(p + static_cast<uint32_t>(i), 128);
    }
    for (uint32_t p : { L.gray.cb, L.gray.cr }) {
        for (int i = 0; i < L.cw * L.ch; ++i)
            ctx.tb.poke8(p + static_cast<uint32_t>(i), 128);
    }
    uint32_t blockBytes = static_cast<uint32_t>(L.nBlocks) * kBlockBytes;
    L.blkDiff = ctx.tb.alloc(blockBytes, 64);
    L.blkDct = ctx.tb.alloc(blockBytes, 64);
    L.blkQuant = ctx.tb.alloc(blockBytes, 64);
    L.deqBlk = ctx.tb.alloc(kBlockBytes, 64);
    L.idctBlk = ctx.tb.alloc(kBlockBytes, 64);
    L.recipTab = ctx.tb.alloc(kBlockBytes, 64);
    L.qTab = ctx.tb.alloc(kBlockBytes, 64);
    L.bitBuf = ctx.tb.alloc(encoder ? (1u << 18) : (1u << 18), 64);

    for (int pos = 0; pos < 64; ++pos) {
        int q = qStep(cfg, pos);
        int recip = std::min(32767, 65536 / q);
        // Tables live in block geometry: 16B row pitch.
        uint32_t off = static_cast<uint32_t>((pos / 8) * 16 + (pos % 8) * 2);
        ctx.tb.poke16(L.recipTab + off, static_cast<uint16_t>(recip));
        ctx.tb.poke16(L.qTab + off, static_cast<uint16_t>(q));
    }
    return L;
}

/** Geometry of one of the six 8x8 blocks of a macroblock. */
struct BlockRef
{
    uint32_t curPlane, refPlane, newPlane, grayPlane;
    int pitch;
    int px, py;     // top-left pixel of the block in its plane
    int mvx, mvy;   // motion vector applied to this plane
};

BlockRef
blockRef(const Layout &L, Planes ref, Planes next, int mb, int k,
         int mvx, int mvy)
{
    BlockRef r;
    int bx = (mb % L.mbx) * 16, by = (mb / L.mbx) * 16;
    int planeW, planeH;
    if (k < 4) {
        r.curPlane = L.curY;
        r.refPlane = ref.y;
        r.newPlane = next.y;
        r.grayPlane = L.gray.y;
        r.pitch = L.w;
        r.px = bx + (k % 2) * 8;
        r.py = by + (k / 2) * 8;
        r.mvx = mvx;
        r.mvy = mvy;
        planeW = L.w;
        planeH = L.h;
    } else {
        r.curPlane = (k == 4) ? L.curCb : L.curCr;
        r.refPlane = (k == 4) ? ref.cb : ref.cr;
        r.newPlane = (k == 4) ? next.cb : next.cr;
        r.grayPlane = (k == 4) ? L.gray.cb : L.gray.cr;
        r.pitch = L.cw;
        r.px = bx / 2;
        r.py = by / 2;
        r.mvx = mvx / 2;
        r.mvy = mvy / 2;
        planeW = L.cw;
        planeH = L.ch;
    }
    // Keep the motion-compensated block inside its plane (chroma
    // half-vectors can poke past the edge after rounding). Both codec
    // sides apply the same clamp, so they stay bit-identical.
    r.mvx = std::max(-r.px, std::min(planeW - 8 - r.px, r.mvx));
    r.mvy = std::max(-r.py, std::min(planeH - 8 - r.py, r.mvy));
    return r;
}

uint32_t
pixAddr(uint32_t plane, int pitch, int x, int y)
{
    return plane + static_cast<uint32_t>(y) * static_cast<uint32_t>(pitch) +
           static_cast<uint32_t>(x);
}

template <class B>
void
reconBlock(CodecCtx &ctx, B &b, const Layout &L, const BlockRef &r,
           bool coded, bool intra, uint32_t quantBlkAddr)
{
    ScalarEmitter &s = ctx.s;
    uint32_t predPlane = intra ? r.grayPlane : r.refPlane;
    int mvx = intra ? 0 : r.mvx;
    int mvy = intra ? 0 : r.mvy;
    uint32_t predA = pixAddr(predPlane, r.pitch, r.px + mvx, r.py + mvy);
    uint32_t outA = pixAddr(r.newPlane, r.pitch, r.px, r.py);

    IVal pred = s.imm(static_cast<int32_t>(predA));
    IVal dst = s.imm(static_cast<int32_t>(outA));
    if (!coded) {
        forEachBlockRow(b, s, pred, dst, s.imm(0), r.pitch,
                        [](B &bb, IVal a, IVal c, IVal) {
                            copyPixelRow(bb, a, c);
                        });
        return;
    }
    IVal qsrc = s.imm(static_cast<int32_t>(quantBlkAddr));
    IVal qtab = s.imm(static_cast<int32_t>(L.qTab));
    forEachBlock(b, s, quantBlkAddr, L.deqBlk, 1,
                 [&](B &bb, IVal pa, IVal pb) {
                     dequantBlock(bb, pa, pb, qtab);
                 });
    (void)qsrc;
    forEachBlock(b, s, L.deqBlk, L.idctBlk, 1,
                 [](B &bb, IVal pa, IVal pb) { idct8x8(bb, pa, pb); });
    IVal res = s.imm(static_cast<int32_t>(L.idctBlk));
    forEachBlockRow(b, s, pred, dst, res, r.pitch,
                    [](B &bb, IVal a, IVal c, IVal blk) {
                        addClampRow(bb, a, blk, c);
                    });
}

template <class B>
trace::Program
encodeImpl(isa::SimdIsa simd, uint32_t base, const VideoConfig &cfg,
           Mpeg2Bitstream *out)
{
    CodecCtx ctx("mpeg2enc", simd, base);
    B &b = backendOf<B>(ctx);
    ScalarEmitter &s = ctx.s;
    Layout L = makeLayout(ctx, cfg, true);
    Planes ref = L.ref, next = L.next;

    VlcWriter vlc(s, L.bitBuf);
    vlc.put(static_cast<uint32_t>(L.mbx), 8);
    vlc.put(static_cast<uint32_t>(L.mby), 8);
    vlc.put(static_cast<uint32_t>(cfg.frames), 8);
    vlc.put(static_cast<uint32_t>(cfg.quant), 8);

    std::vector<int> mvx(static_cast<size_t>(L.nMb));
    std::vector<int> mvy(static_cast<size_t>(L.nMb));

    for (int f = 0; f < cfg.frames; ++f) {
        bool intra = (f == 0);
        // New input frame into the current planes.
        auto y = makeLumaFrame(L.w, L.h, f, cfg.seed);
        auto cbPlane = makeChromaFrame(L.cw, L.ch, f, cfg.seed, false);
        auto crp = makeChromaFrame(L.cw, L.ch, f, cfg.seed, true);
        ctx.tb.pokeBytes(L.curY, y.data(), static_cast<uint32_t>(y.size()));
        ctx.tb.pokeBytes(L.curCb, cbPlane.data(),
                         static_cast<uint32_t>(cbPlane.size()));
        ctx.tb.pokeBytes(L.curCr, crp.data(),
                         static_cast<uint32_t>(crp.size()));
        if (out)
            out->origY.push_back(y);

        vlc.put(intra ? 1u : 0u, 1);

        // ---- Motion estimation (P frames) ----
        std::fill(mvx.begin(), mvx.end(), 0);
        std::fill(mvy.begin(), mvy.end(), 0);
        if (!intra) {
            s.call("motion_search", 2048);
            IVal refBase = s.imm(static_cast<int32_t>(ref.y));
            for (int mb = 0; mb < L.nMb; ++mb) {
                int bx = (mb % L.mbx) * 16, by = (mb / L.mbx) * 16;
                IVal cur = s.imm(static_cast<int32_t>(
                    pixAddr(L.curY, L.w, bx, by)));
                int32_t best = INT32_MAX;
                IVal bestIv = s.imm(INT32_MAX);
                IVal mvCostTab = s.imm(static_cast<int32_t>(L.qTab));
                for (int dy = -cfg.searchRange; dy <= cfg.searchRange; ++dy) {
                    if (by + dy < 0 || by + dy + 16 > L.h)
                        continue;
                    for (int dx = -cfg.searchRange; dx <= cfg.searchRange;
                         ++dx) {
                        if (bx + dx < 0 || bx + dx + 16 > L.w)
                            continue;
                        // Candidate bookkeeping a real encoder performs:
                        // window-bound checks and a rate-biased MV cost
                        // looked up from a table.
                        IVal cdx = s.imm(dx);
                        IVal inWin = s.cmplti(cdx, cfg.searchRange + 1);
                        s.condBr(inWin, true);
                        IVal mvCost = s.loadU8(mvCostTab,
                                               std::abs(dx) +
                                               std::abs(dy));
                        IVal refAddr = s.addi(refBase,
                            (by + dy) * L.w + bx + dx);
                        IVal sad = (simd == isa::SimdIsa::Mom)
                            ? sad16x16Mom(s, ctx.mv, cur, refAddr, L.w)
                            : sad16x16Mmx(s, ctx.mx, cur, refAddr, L.w);
                        IVal biased = s.add(sad, mvCost);
                        IVal lt = s.cmplt(biased, bestIv);
                        s.condBr(lt, sad.v < best);
                        bestIv = s.cmovne(lt, biased, bestIv);
                        if (sad.v < best) {
                            best = sad.v;
                            mvx[static_cast<size_t>(mb)] = dx;
                            mvy[static_cast<size_t>(mb)] = dy;
                        }
                    }
                }
            }
            s.ret();
        }

        // ---- Mode decision: scalar activity measure per macroblock ----
        // (intra/inter decision + quantizer adaptation bookkeeping; this
        // is classic unvectorized encoder control code.)
        s.call("mode_decision", 2048);
        for (int mb = 0; mb < L.nMb; ++mb) {
            int bx = (mb % L.mbx) * 16, by = (mb / L.mbx) * 16;
            IVal p = s.imm(static_cast<int32_t>(
                pixAddr(L.curY, L.w, bx, by)));
            IVal sum = s.imm(0);
            IVal sumSq = s.imm(0);
            IVal rows = s.imm(8);
            uint32_t head = s.loopHead();
            for (int r = 0; r < 8; ++r) {          // sampled every 2nd row
                for (int c = 0; c < 16; c += 4) {
                    IVal px = s.loadU8(p, c);
                    sum = s.add(sum, px);
                    sumSq = s.add(sumSq, s.mul(px, px));
                }
                p = s.addi(p, 2 * L.w);
                rows = s.subi(rows, 1);
                s.loopBack(head, rows, r + 1 < 8);
            }
            IVal mean = s.srai(sum, 5);
            IVal var = s.sub(s.srai(sumSq, 5), s.mul(mean, mean));
            IVal act = s.cmplti(var, 4096);
            s.condBr(act, var.v < 4096);
        }
        s.ret();

        // ---- Residual extraction into the block array ----
        s.call("extract_diff", 2048);
        for (int mb = 0; mb < L.nMb; ++mb) {
            for (int k = 0; k < 6; ++k) {
                BlockRef r = blockRef(L, ref, next, mb, k,
                                      mvx[static_cast<size_t>(mb)],
                                      mvy[static_cast<size_t>(mb)]);
                uint32_t predPlane = intra ? r.grayPlane : r.refPlane;
                int mx = intra ? 0 : r.mvx, my = intra ? 0 : r.mvy;
                IVal cur = s.imm(static_cast<int32_t>(
                    pixAddr(r.curPlane, r.pitch, r.px, r.py)));
                IVal pred = s.imm(static_cast<int32_t>(
                    pixAddr(predPlane, r.pitch, r.px + mx, r.py + my)));
                IVal blk = s.imm(static_cast<int32_t>(
                    L.blkDiff + static_cast<uint32_t>(mb * 6 + k) *
                    kBlockBytes));
                forEachBlockRow(b, s, cur, pred, blk, r.pitch,
                                [](B &bb, IVal a, IVal c, IVal d) {
                                    extractDiffRow(bb, a, c, d);
                                });
            }
        }
        s.ret();

        // ---- Transform and quantization sweeps ----
        s.call("dct_sweep", 2048);
        forEachBlock(b, s, L.blkDiff, L.blkDct, L.nBlocks,
                     [](B &bb, IVal pa, IVal pb) { dct8x8(bb, pa, pb); });
        s.ret();
        s.call("quant_sweep", 2048);
        IVal recip = s.imm(static_cast<int32_t>(L.recipTab));
        forEachBlock(b, s, L.blkDct, L.blkQuant, L.nBlocks,
                     [&](B &bb, IVal pa, IVal pb) {
                         quantBlock(bb, pa, pb, recip);
                     });
        s.ret();

        // ---- Entropy coding + in-loop reconstruction ----
        s.call("entropy_recon", 2048);
        for (int mb = 0; mb < L.nMb; ++mb) {
            if (!intra) {
                vlc.putSigned(mvx[static_cast<size_t>(mb)]);
                vlc.putSigned(mvy[static_cast<size_t>(mb)]);
            }
            uint32_t cbp = 0;
            uint32_t blkBase =
                L.blkQuant + static_cast<uint32_t>(mb * 6) * kBlockBytes;
            // Scan all six blocks (this is also the cbp computation).
            std::vector<std::vector<std::pair<int, int>>> runs(6);
            for (int k = 0; k < 6; ++k) {
                uint32_t qb = blkBase + static_cast<uint32_t>(k) *
                              kBlockBytes;
                IVal qIv = s.imm(static_cast<int32_t>(qb));
                IVal zzTab = s.imm(static_cast<int32_t>(L.recipTab));
                IVal runIv = s.imm(0);
                int run = 0;
                for (int i = 0; i < 64; ++i) {
                    int pos = kZigzag[i];
                    int off = (pos / 8) * 16 + (pos % 8) * 2;
                    // scan-order table lookup + address formation +
                    // run-length update: the entropy coder's integer core
                    IVal zz = s.loadU8(zzTab, i);
                    IVal coefOff = s.slli(zz, 1);
                    (void)coefOff;
                    IVal lvl = s.loadS16(qIv, off);
                    s.condBr(lvl, lvl.v != 0);
                    if (lvl.v != 0) {
                        runs[static_cast<size_t>(k)].emplace_back(run,
                                                                  lvl.v);
                        run = 0;
                        runIv = s.imm(0);
                    } else {
                        ++run;
                        runIv = s.addi(runIv, 1);
                    }
                }
                if (!runs[static_cast<size_t>(k)].empty())
                    cbp |= (1u << k);
            }
            vlc.put(cbp, 6);
            for (int k = 0; k < 6; ++k) {
                if (!(cbp & (1u << k)))
                    continue;
                const auto &list = runs[static_cast<size_t>(k)];
                vlc.putUnsigned(static_cast<uint32_t>(list.size()));
                for (auto &[run, level] : list) {
                    vlc.putUnsigned(static_cast<uint32_t>(run));
                    vlc.putSigned(level);
                }
            }
            // Reconstruction mirrors the decoder exactly.
            for (int k = 0; k < 6; ++k) {
                BlockRef r = blockRef(L, ref, next, mb, k,
                                      mvx[static_cast<size_t>(mb)],
                                      mvy[static_cast<size_t>(mb)]);
                reconBlock(ctx, b, L, r, (cbp >> k) & 1, intra,
                           blkBase + static_cast<uint32_t>(k) *
                           kBlockBytes);
            }
        }
        s.ret();

        // Capture the reconstruction and swap reference planes.
        if (out) {
            std::vector<uint8_t> ry(static_cast<size_t>(L.w) * L.h);
            std::vector<uint8_t> rcb(static_cast<size_t>(L.cw) * L.ch);
            std::vector<uint8_t> rcr(static_cast<size_t>(L.cw) * L.ch);
            ctx.tb.peekBytes(next.y, ry.data(),
                             static_cast<uint32_t>(ry.size()));
            ctx.tb.peekBytes(next.cb, rcb.data(),
                             static_cast<uint32_t>(rcb.size()));
            ctx.tb.peekBytes(next.cr, rcr.data(),
                             static_cast<uint32_t>(rcr.size()));
            out->reconY.push_back(std::move(ry));
            out->reconCb.push_back(std::move(rcb));
            out->reconCr.push_back(std::move(rcr));
        }
        std::swap(ref, next);
    }

    vlc.alignByte();
    if (out) {
        out->cfg = cfg;
        out->bytes = vlc.writer().bytes();
        out->bitCount = vlc.bitCount();
    }
    return ctx.tb.take();
}

template <class B>
trace::Program
decodeImpl(isa::SimdIsa simd, uint32_t base, const Mpeg2Bitstream &stream,
           Mpeg2Decoded *out)
{
    const VideoConfig &cfg = stream.cfg;
    CodecCtx ctx("mpeg2dec", simd, base);
    B &b = backendOf<B>(ctx);
    ScalarEmitter &s = ctx.s;
    Layout L = makeLayout(ctx, cfg, false);
    Planes ref = L.ref, next = L.next;

    ctx.tb.pokeBytes(L.bitBuf, stream.bytes.data(),
                     static_cast<uint32_t>(stream.bytes.size()));
    VlcReader vlc(s, stream.bytes, L.bitBuf);
    int mbx = static_cast<int>(vlc.get(8));
    int mby = static_cast<int>(vlc.get(8));
    int frames = static_cast<int>(vlc.get(8));
    (void)vlc.get(8);   // quant (tables already built from cfg)
    MOMSIM_ASSERT(mbx == L.mbx && mby == L.mby && frames == cfg.frames,
                  "bitstream header mismatch");

    uint32_t scratchQuant = L.blkQuant;     // one block at a time

    for (int f = 0; f < frames; ++f) {
        bool intra = vlc.get(1) != 0;
        for (int mb = 0; mb < L.nMb; ++mb) {
            int mvx = 0, mvy = 0;
            if (!intra) {
                mvx = vlc.getSigned();
                mvy = vlc.getSigned();
            }
            uint32_t cbp = vlc.get(6);
            for (int k = 0; k < 6; ++k) {
                BlockRef r = blockRef(L, ref, next, mb, k, mvx, mvy);
                bool coded = (cbp >> k) & 1;
                if (coded) {
                    // Zero the scratch block, then scatter the levels.
                    forEachBlock(b, s, scratchQuant, scratchQuant, 1,
                                 [](B &bb, IVal, IVal pb) {
                        auto zero = bb.zeroVec();
                        for (int g = 0; g < 16; ++g)
                            bb.store(pb, g * 8, zero);
                    });
                    IVal qIv = s.imm(static_cast<int32_t>(scratchQuant));
                    uint32_t nnz = vlc.getUnsigned();
                    int scanPos = 0;
                    for (uint32_t n = 0; n < nnz; ++n) {
                        int run = static_cast<int>(vlc.getUnsigned());
                        int level = vlc.getSigned();
                        scanPos += run;
                        int pos = kZigzag[std::min(scanPos, 63)];
                        ++scanPos;
                        int off = (pos / 8) * 16 + (pos % 8) * 2;
                        s.storeI16(qIv, off, s.imm(level));
                    }
                }
                reconBlock(ctx, b, L, r, coded, intra, scratchQuant);
            }
        }
        if (out) {
            std::vector<uint8_t> ry(static_cast<size_t>(L.w) * L.h);
            std::vector<uint8_t> rcb(static_cast<size_t>(L.cw) * L.ch);
            std::vector<uint8_t> rcr(static_cast<size_t>(L.cw) * L.ch);
            ctx.tb.peekBytes(next.y, ry.data(),
                             static_cast<uint32_t>(ry.size()));
            ctx.tb.peekBytes(next.cb, rcb.data(),
                             static_cast<uint32_t>(rcb.size()));
            ctx.tb.peekBytes(next.cr, rcr.data(),
                             static_cast<uint32_t>(rcr.size()));
            out->y.push_back(std::move(ry));
            out->cb.push_back(std::move(rcb));
            out->cr.push_back(std::move(rcr));
        }
        std::swap(ref, next);
    }
    (void)simd;
    return ctx.tb.take();
}

} // namespace

trace::Program
buildMpeg2Encoder(isa::SimdIsa simd, uint32_t base, const VideoConfig &cfg,
                  Mpeg2Bitstream *out)
{
    if (simd == isa::SimdIsa::Mom)
        return encodeImpl<MomBackend>(simd, base, cfg, out);
    return encodeImpl<MmxBackend>(simd, base, cfg, out);
}

trace::Program
buildMpeg2Decoder(isa::SimdIsa simd, uint32_t base,
                  const Mpeg2Bitstream &stream, Mpeg2Decoded *out)
{
    if (simd == isa::SimdIsa::Mom)
        return decodeImpl<MomBackend>(simd, base, stream, out);
    return decodeImpl<MmxBackend>(simd, base, stream, out);
}

double
planePsnr(const std::vector<uint8_t> &a, const std::vector<uint8_t> &b)
{
    MOMSIM_ASSERT(a.size() == b.size() && !a.empty(),
                  "psnr over mismatched planes");
    double mse = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        double d = static_cast<double>(a[i]) - b[i];
        mse += d * d;
    }
    mse /= static_cast<double>(a.size());
    if (mse <= 1e-9)
        return 99.0;
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

} // namespace momsim::workloads
