/**
 * @file
 * GSM 06.10-style full-rate speech encoder/decoder as emulation-library
 * programs (the paper's MPEG-4 "audio speech" profile).
 *
 * Coding structure follows the standard: preemphasis, autocorrelation,
 * Schur recursion to reflection coefficients, LAR quantization, lattice
 * short-term analysis, and per-subframe long-term prediction (lag
 * search by cross-correlation, quantized gain) with RPE-style
 * decimation and block-adaptive PCM of the residual. The decoder
 * inverts every stage. The bit packing uses the shared Exp-Golomb
 * writer rather than the exact 06.10 frame format (see DESIGN.md).
 *
 * Speech is mostly serial integer DSP; only the correlation kernels
 * vectorize — which is exactly why the gsm rows of Table 3 stay
 * integer-dominated in both ISAs.
 */

#ifndef MOMSIM_WORKLOADS_GSM_HH
#define MOMSIM_WORKLOADS_GSM_HH

#include <cstdint>
#include <vector>

#include "isa/simd_isa.hh"
#include "trace/program.hh"

namespace momsim::workloads
{

struct GsmConfig
{
    int frames = 35;        ///< 160-sample frames (20 ms each)
    uint64_t seed = 99;
};

struct GsmStream
{
    GsmConfig cfg;
    std::vector<uint8_t> bytes;
    size_t bitCount = 0;
    std::vector<int16_t> input;         ///< synthesized source speech
};

struct GsmDecoded
{
    std::vector<int16_t> samples;
};

trace::Program buildGsmEncoder(isa::SimdIsa simd, uint32_t memBase,
                               const GsmConfig &cfg,
                               GsmStream *out = nullptr);

trace::Program buildGsmDecoder(isa::SimdIsa simd, uint32_t memBase,
                               const GsmStream &stream,
                               GsmDecoded *out = nullptr);

/** Normalized cross-correlation of two equal-length sample buffers. */
double sampleCorrelation(const std::vector<int16_t> &a,
                         const std::vector<int16_t> &b);

} // namespace momsim::workloads

#endif // MOMSIM_WORKLOADS_GSM_HH
