/**
 * @file
 * The paper's multiprogrammed workload (Table 2): eight program
 * instances approximating the MPEG-4 profiles, in the exact rotation
 * order of Section 5.1 — MPEG-2 encoder, GSM decoder, MPEG-2 decoder,
 * GSM encoder, JPEG decoder, JPEG encoder, mesa, and MPEG-2 decoder a
 * second time ("the most significant program is included twice").
 *
 * Every benchmark is built in both ISAs; the MMX equivalent-instruction
 * counts feed the EIPC metric for MOM runs.
 */

#ifndef MOMSIM_WORKLOADS_MEDIA_WORKLOAD_HH
#define MOMSIM_WORKLOADS_MEDIA_WORKLOAD_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "trace/program.hh"

namespace momsim::workloads
{

/** How large the workload is built. */
enum class WorkloadScale
{
    Tiny,       ///< unit/integration tests: seconds to build & run
    Paper,      ///< bench runs: the full Table-2-shaped mix
};

class MediaWorkload
{
  public:
    static constexpr int kNumPrograms = 8;

    /** Build every program of both ISAs at the given scale. */
    static std::unique_ptr<MediaWorkload> build(WorkloadScale scale);

    /** Program name in rotation slot @p i (paper order). */
    const std::string &name(int i) const { return _names[static_cast<size_t>(i)]; }

    const trace::Program &program(isa::SimdIsa simd, int i) const
    {
        const auto &arr = (simd == isa::SimdIsa::Mom) ? _mom : _mmx;
        return arr[static_cast<size_t>(i)];
    }

    /** The Section 5.1 rotation for a given ISA, with EIPC weights. */
    std::vector<core::WorkloadProgram> rotation(isa::SimdIsa simd) const;

    /**
     * Content hash over every program of both ISAs (names plus the full
     * dynamic instruction streams), computed once at build time. Any
     * change to workload synthesis — scale, codec parameters, emitter
     * fixes — changes the fingerprint, which is what keys persisted
     * ResultRows so stale cached results can never be replayed.
     */
    uint64_t fingerprint() const { return _fingerprint; }

  private:
    std::array<trace::Program, kNumPrograms> _mmx;
    std::array<trace::Program, kNumPrograms> _mom;
    std::array<std::string, kNumPrograms> _names;
    /** Cached MMX equivalent-instruction counts (the EIPC weights). */
    std::array<uint64_t, kNumPrograms> _mmxEq {};
    uint64_t _fingerprint = 0;
};

} // namespace momsim::workloads

#endif // MOMSIM_WORKLOADS_MEDIA_WORKLOAD_HH
