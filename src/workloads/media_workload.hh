/**
 * @file
 * An immutable multiprogrammed workload built from a WorkloadSpec
 * recipe: one program instance per rotation slot, in both ISAs, with
 * the MMX equivalent-instruction counts that feed the EIPC metric for
 * MOM runs.
 *
 * The default recipe is the paper's Table-2 mix (eight program
 * instances approximating the MPEG-4 profiles, in the exact rotation
 * order of Section 5.1 — "the most significant program is included
 * twice"), but any registry spec builds the same way: duplicate slots
 * share one synthesis and are rebased into their own address space,
 * and decoder slots whose matching encoder is absent from the mix get
 * their bitstream from a throwaway encoder build.
 */

#ifndef MOMSIM_WORKLOADS_MEDIA_WORKLOAD_HH
#define MOMSIM_WORKLOADS_MEDIA_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "trace/inst_arena.hh"
#include "trace/program.hh"
#include "workloads/workload_spec.hh"

namespace momsim::workloads
{

class MediaWorkload
{
  public:
    /** Rotation size of the paper's Table-2 mix (the default spec). */
    static constexpr int kNumPrograms = 8;

    /** Build every program of both ISAs for @p spec's recipe. */
    static std::unique_ptr<MediaWorkload> build(const WorkloadSpec &spec);

    /** The paper mix at the given scale (the pre-spec default). */
    static std::unique_ptr<MediaWorkload> build(WorkloadScale scale);

    /** The spec name this workload was built from ("paper", ...). */
    const std::string &specName() const { return _specName; }

    int numPrograms() const { return static_cast<int>(_names.size()); }

    /** Program instance name in rotation slot @p i ("mpeg2dec2"). */
    const std::string &name(int i) const { return _names[static_cast<size_t>(i)]; }

    /** Benchmark role filling rotation slot @p i. */
    ProgramKind kind(int i) const { return _kinds[static_cast<size_t>(i)]; }

    const trace::Program &program(isa::SimdIsa simd, int i) const
    {
        const auto &arr = (simd == isa::SimdIsa::Mom) ? _mom : _mmx;
        return arr[static_cast<size_t>(i)];
    }

    /** Equivalent-instruction count of slot @p i under @p simd. */
    uint64_t eqInsts(isa::SimdIsa simd, int i) const
    {
        const auto &eq = (simd == isa::SimdIsa::Mom) ? _momEq : _mmxEq;
        return eq[static_cast<size_t>(i)];
    }

    /** The spec's rotation for a given ISA, with EIPC weights. */
    std::vector<core::WorkloadProgram> rotation(isa::SimdIsa simd) const;

    /**
     * Content hash over every program of both ISAs (names plus the full
     * dynamic instruction streams), computed once at build time. Any
     * change to workload synthesis — recipe, scale, codec parameters,
     * emitter fixes — changes the fingerprint, which is what keys
     * persisted ResultRows so stale cached results can never be
     * replayed. Deliberately content-only: two spec names with an
     * identical recipe hash equal, so their cached rows are shared.
     */
    uint64_t fingerprint() const { return _fingerprint; }

    /** The packed trace block every sealed program points into. */
    const trace::InstArena &arena() const { return _arena; }

  private:
    /** Contiguous storage for every sealed trace of both ISAs. */
    trace::InstArena _arena;
    std::vector<trace::Program> _mmx;
    std::vector<trace::Program> _mom;
    std::vector<std::string> _names;
    std::vector<ProgramKind> _kinds;
    /** Cached equivalent-instruction counts (MMX ones = EIPC weights). */
    std::vector<uint64_t> _mmxEq;
    std::vector<uint64_t> _momEq;
    std::string _specName;
    uint64_t _fingerprint = 0;
};

} // namespace momsim::workloads

#endif // MOMSIM_WORKLOADS_MEDIA_WORKLOAD_HH
