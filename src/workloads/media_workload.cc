#include "workloads/media_workload.hh"

#include "common/hash.hh"
#include "common/logging.hh"
#include "workloads/gsm.hh"
#include "workloads/jpeg.hh"
#include "workloads/mesa.hh"
#include "workloads/mpeg2.hh"

namespace momsim::workloads
{

namespace
{

/**
 * Address-space slot for each program instance (128 MB main memory).
 * The per-slot stagger keeps different programs' hot lines from landing
 * on identical cache indices (as an OS's varied text/heap placement
 * does); perfectly aligned slots would make all eight threads thrash a
 * single I-cache set.
 */
uint32_t
slotBase(int slot)
{
    return (4u << 20) + static_cast<uint32_t>(slot) * (15u << 20) +
           static_cast<uint32_t>(slot) * 0x21840u;
}

struct ScaledConfigs
{
    VideoConfig video;
    JpegConfig jpeg;
    GsmConfig gsm;
    MesaConfig mesa;
};

ScaledConfigs
configsFor(WorkloadScale scale)
{
    ScaledConfigs c;
    if (scale == WorkloadScale::Tiny) {
        c.video = { 48, 48, 2, 2, 14, 11 };
        c.jpeg = { 48, 48, 14, 77 };
        c.gsm = { 3, 99 };
        c.mesa = { 64, 48, 8, 6, 1, 3 };
    } else {
        c.video = { 176, 144, 3, 4, 16, 11 };
        c.jpeg = { 160, 128, 14, 77 };
        c.gsm = { 55, 99 };
        c.mesa = { 160, 120, 14, 10, 3, 3 };
    }
    return c;
}

/** Hash the complete dynamic instruction stream of one program. */
uint64_t
mixProgram(uint64_t h, const trace::Program &prog)
{
    h = hashMixString(h, prog.name());
    h = hashMix64(h, prog.size());
    for (const isa::TraceInst &ti : prog.insts()) {
        h = hashMix64(h, (static_cast<uint64_t>(ti.pc) << 32) | ti.addr);
        h = hashMix64(h, static_cast<uint64_t>(ti.op) |
                             (static_cast<uint64_t>(ti.flags) << 16) |
                             (static_cast<uint64_t>(ti.dst) << 24) |
                             (static_cast<uint64_t>(ti.src0) << 32) |
                             (static_cast<uint64_t>(ti.src1) << 40) |
                             (static_cast<uint64_t>(ti.src2) << 48) |
                             (static_cast<uint64_t>(ti.accessSize) << 56));
        h = hashMix64(h, static_cast<uint64_t>(ti.streamLen) |
                             (static_cast<uint64_t>(
                                  static_cast<uint16_t>(ti.stride))
                              << 8));
    }
    return h;
}

} // namespace

std::unique_ptr<MediaWorkload>
MediaWorkload::build(WorkloadScale scale)
{
    auto wl = std::make_unique<MediaWorkload>();
    ScaledConfigs cfg = configsFor(scale);

    // Rotation order (Section 5.1). Slot -> benchmark:
    //  0 mpeg2enc, 1 gsmdec, 2 mpeg2dec, 3 gsmenc,
    //  4 jpegdec, 5 jpegenc, 6 mesa, 7 mpeg2dec (2nd instance)
    wl->_names = { "mpeg2enc", "gsmdec", "mpeg2dec", "gsmenc",
                   "jpegdec", "jpegenc", "mesa", "mpeg2dec2" };

    for (isa::SimdIsa simd : { isa::SimdIsa::Mmx, isa::SimdIsa::Mom }) {
        auto &arr = (simd == isa::SimdIsa::Mom) ? wl->_mom : wl->_mmx;

        Mpeg2Bitstream videoStream;
        arr[0] = buildMpeg2Encoder(simd, slotBase(0), cfg.video,
                                   &videoStream);

        GsmStream gsmStream;
        arr[3] = buildGsmEncoder(simd, slotBase(3), cfg.gsm, &gsmStream);
        arr[1] = buildGsmDecoder(simd, slotBase(1), gsmStream);

        arr[2] = buildMpeg2Decoder(simd, slotBase(2), videoStream);
        arr[7] = arr[2].rebased(slotBase(7) - slotBase(2), "mpeg2dec2");

        JpegStream jpegStream;
        arr[5] = buildJpegEncoder(simd, slotBase(5), cfg.jpeg,
                                  &jpegStream);
        arr[4] = buildJpegDecoder(simd, slotBase(4), jpegStream);

        arr[6] = buildMesa(simd, slotBase(6), cfg.mesa);
    }

    // The EIPC weights are invariant once the traces exist; computing
    // them here keeps rotation() — called once per experiment, possibly
    // from many driver threads — free of O(trace-length) walks.
    for (int i = 0; i < kNumPrograms; ++i)
        wl->_mmxEq[static_cast<size_t>(i)] =
            wl->_mmx[static_cast<size_t>(i)].mix().eqInsts;

    // Content fingerprint over both ISAs' traces (see fingerprint()).
    uint64_t h = kHashSeed;
    for (const auto *arr : { &wl->_mmx, &wl->_mom })
        for (const trace::Program &prog : *arr)
            h = mixProgram(h, prog);
    wl->_fingerprint = h;
    return wl;
}

std::vector<core::WorkloadProgram>
MediaWorkload::rotation(isa::SimdIsa simd) const
{
    std::vector<core::WorkloadProgram> rot;
    rot.reserve(kNumPrograms);
    for (int i = 0; i < kNumPrograms; ++i) {
        core::WorkloadProgram wp;
        wp.prog = &program(simd, i);
        wp.mmxEq = _mmxEq[static_cast<size_t>(i)];
        rot.push_back(wp);
    }
    return rot;
}

} // namespace momsim::workloads
