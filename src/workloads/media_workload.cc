#include "workloads/media_workload.hh"

#include "common/hash.hh"
#include "common/logging.hh"
#include "workloads/gsm.hh"
#include "workloads/jpeg.hh"
#include "workloads/mesa.hh"
#include "workloads/mpeg2.hh"

namespace momsim::workloads
{

namespace
{

/**
 * Address-space slot for each program instance (128 MB main memory).
 * The per-slot stagger keeps different programs' hot lines from landing
 * on identical cache indices (as an OS's varied text/heap placement
 * does); perfectly aligned slots would make all eight threads thrash a
 * single I-cache set.
 */
uint32_t
slotBase(int slot)
{
    return (4u << 20) + static_cast<uint32_t>(slot) * (15u << 20) +
           static_cast<uint32_t>(slot) * 0x21840u;
}

struct ScaledConfigs
{
    VideoConfig video;
    JpegConfig jpeg;
    GsmConfig gsm;
    MesaConfig mesa;
};

ScaledConfigs
configsFor(WorkloadScale scale)
{
    ScaledConfigs c;
    if (scale == WorkloadScale::Tiny) {
        c.video = { 48, 48, 2, 2, 14, 11 };
        c.jpeg = { 48, 48, 14, 77 };
        c.gsm = { 3, 99 };
        c.mesa = { 64, 48, 8, 6, 1, 3 };
    } else {
        c.video = { 176, 144, 3, 4, 16, 11 };
        c.jpeg = { 160, 128, 14, 77 };
        c.gsm = { 55, 99 };
        c.mesa = { 160, 120, 14, 10, 3, 3 };
    }
    return c;
}

/** Hash the complete dynamic instruction stream of one program. */
uint64_t
mixProgram(uint64_t h, const trace::Program &prog)
{
    h = hashMixString(h, prog.name());
    h = hashMix64(h, prog.size());
    for (const isa::TraceInst &ti : prog.insts()) {
        h = hashMix64(h, (static_cast<uint64_t>(ti.pc) << 32) | ti.addr);
        h = hashMix64(h, static_cast<uint64_t>(ti.op) |
                             (static_cast<uint64_t>(ti.flags) << 16) |
                             (static_cast<uint64_t>(ti.dst) << 24) |
                             (static_cast<uint64_t>(ti.src0) << 32) |
                             (static_cast<uint64_t>(ti.src1) << 40) |
                             (static_cast<uint64_t>(ti.src2) << 48) |
                             (static_cast<uint64_t>(ti.accessSize) << 56));
        h = hashMix64(h, static_cast<uint64_t>(ti.streamLen) |
                             (static_cast<uint64_t>(
                                  static_cast<uint16_t>(ti.stride))
                              << 8));
    }
    return h;
}

bool
isEncoder(ProgramKind kind)
{
    return kind == ProgramKind::Mpeg2Enc || kind == ProgramKind::GsmEnc ||
           kind == ProgramKind::JpegEnc;
}

/**
 * Per-ISA build state: codec bitstreams flow from encoder builds to
 * decoder builds. When a recipe holds a decoder but not its encoder,
 * the stream comes from a throwaway encoder build placed in a scratch
 * slot past the rotation's end — deterministic, so the decoder trace
 * (and the fingerprint) depends only on the spec.
 */
struct BuildStreams
{
    Mpeg2Bitstream video;
    GsmStream gsm;
    JpegStream jpeg;
    bool haveVideo = false, haveGsm = false, haveJpeg = false;
    int scratchSlot = 0;        ///< next scratch slot (starts at size)
};

} // namespace

std::unique_ptr<MediaWorkload>
MediaWorkload::build(WorkloadScale scale)
{
    return build(WorkloadSpec::paper(scale));
}

std::unique_ptr<MediaWorkload>
MediaWorkload::build(const WorkloadSpec &spec)
{
    MOMSIM_ASSERT(!spec.slots.empty(), "workload spec has no slots");
    auto wl = std::make_unique<MediaWorkload>();
    ScaledConfigs cfg = configsFor(spec.scale);
    const int n = static_cast<int>(spec.slots.size());

    wl->_specName = spec.name;
    wl->_kinds = spec.slots;

    // Instance names: the base benchmark name, with an ordinal suffix
    // from the second copy on (the paper's second MPEG-2 decoder is
    // "mpeg2dec2"). firstSlot[i] is the slot a duplicate rebases from.
    std::vector<int> firstSlot(static_cast<size_t>(n));
    int copies[kNumProgramKinds] = {};
    for (int i = 0; i < n; ++i) {
        ProgramKind kind = spec.slots[static_cast<size_t>(i)];
        int &count = copies[static_cast<int>(kind)];
        count += 1;
        std::string name = toString(kind);
        if (count > 1)
            name += strfmt("%d", count);
        wl->_names.push_back(std::move(name));
        firstSlot[static_cast<size_t>(i)] = i;
        for (int j = 0; j < i; ++j) {
            if (spec.slots[static_cast<size_t>(j)] == kind) {
                firstSlot[static_cast<size_t>(i)] = j;
                break;
            }
        }
    }

    for (isa::SimdIsa simd : { isa::SimdIsa::Mmx, isa::SimdIsa::Mom }) {
        auto &arr = (simd == isa::SimdIsa::Mom) ? wl->_mom : wl->_mmx;
        arr.resize(static_cast<size_t>(n));
        BuildStreams st;
        st.scratchSlot = n;

        // Pass 1: encoders at their first slots, producing the codec
        // streams the decoder builds consume.
        for (int i = 0; i < n; ++i) {
            ProgramKind kind = spec.slots[static_cast<size_t>(i)];
            if (firstSlot[static_cast<size_t>(i)] != i || !isEncoder(kind))
                continue;
            uint32_t base = slotBase(i);
            if (kind == ProgramKind::Mpeg2Enc) {
                arr[static_cast<size_t>(i)] =
                    buildMpeg2Encoder(simd, base, cfg.video, &st.video);
                st.haveVideo = true;
            } else if (kind == ProgramKind::GsmEnc) {
                arr[static_cast<size_t>(i)] =
                    buildGsmEncoder(simd, base, cfg.gsm, &st.gsm);
                st.haveGsm = true;
            } else {
                arr[static_cast<size_t>(i)] =
                    buildJpegEncoder(simd, base, cfg.jpeg, &st.jpeg);
                st.haveJpeg = true;
            }
        }

        // Pass 2: decoders and mesa at their first slots; streams still
        // missing come from throwaway scratch-slot encoder builds.
        for (int i = 0; i < n; ++i) {
            ProgramKind kind = spec.slots[static_cast<size_t>(i)];
            if (firstSlot[static_cast<size_t>(i)] != i || isEncoder(kind))
                continue;
            uint32_t base = slotBase(i);
            switch (kind) {
              case ProgramKind::Mpeg2Dec:
                if (!st.haveVideo) {
                    buildMpeg2Encoder(simd, slotBase(st.scratchSlot++),
                                      cfg.video, &st.video);
                    st.haveVideo = true;
                }
                arr[static_cast<size_t>(i)] =
                    buildMpeg2Decoder(simd, base, st.video);
                break;
              case ProgramKind::GsmDec:
                if (!st.haveGsm) {
                    buildGsmEncoder(simd, slotBase(st.scratchSlot++),
                                    cfg.gsm, &st.gsm);
                    st.haveGsm = true;
                }
                arr[static_cast<size_t>(i)] =
                    buildGsmDecoder(simd, base, st.gsm);
                break;
              case ProgramKind::JpegDec:
                if (!st.haveJpeg) {
                    buildJpegEncoder(simd, slotBase(st.scratchSlot++),
                                     cfg.jpeg, &st.jpeg);
                    st.haveJpeg = true;
                }
                arr[static_cast<size_t>(i)] =
                    buildJpegDecoder(simd, base, st.jpeg);
                break;
              default:
                arr[static_cast<size_t>(i)] =
                    buildMesa(simd, base, cfg.mesa);
                break;
            }
        }

        // Pass 3: duplicate slots share the first instance's synthesis,
        // rebased into their own address space.
        for (int i = 0; i < n; ++i) {
            int first = firstSlot[static_cast<size_t>(i)];
            if (first == i)
                continue;
            arr[static_cast<size_t>(i)] =
                arr[static_cast<size_t>(first)].rebased(
                    slotBase(i) - slotBase(first),
                    wl->_names[static_cast<size_t>(i)]);
        }
    }

    // The equivalent-instruction counts are invariant once the traces
    // exist; computing them here keeps rotation() — called once per
    // experiment, possibly from many driver threads — free of
    // O(trace-length) walks.
    for (int i = 0; i < n; ++i) {
        wl->_mmxEq.push_back(wl->_mmx[static_cast<size_t>(i)].mix().eqInsts);
        wl->_momEq.push_back(wl->_mom[static_cast<size_t>(i)].mix().eqInsts);
    }

    // Seal every finished program of both ISAs into one contiguous
    // arena block: a simulation interleaving the rotation then streams
    // through a single dense region instead of per-program heap
    // allocations. Content (and therefore the fingerprint below) is
    // unchanged — seal() is a straight copy.
    size_t totalRecords = 0;
    for (const auto *arr : { &wl->_mmx, &wl->_mom })
        for (const trace::Program &prog : *arr)
            totalRecords += prog.size();
    wl->_arena.reserve(totalRecords);
    for (auto *arr : { &wl->_mmx, &wl->_mom })
        for (trace::Program &prog : *arr)
            prog.seal(wl->_arena);

    // Content fingerprint over both ISAs' traces (see fingerprint()).
    uint64_t h = kHashSeed;
    for (const auto *arr : { &wl->_mmx, &wl->_mom })
        for (const trace::Program &prog : *arr)
            h = mixProgram(h, prog);
    wl->_fingerprint = h;
    return wl;
}

std::vector<core::WorkloadProgram>
MediaWorkload::rotation(isa::SimdIsa simd) const
{
    std::vector<core::WorkloadProgram> rot;
    rot.reserve(_names.size());
    for (int i = 0; i < numPrograms(); ++i) {
        core::WorkloadProgram wp;
        wp.prog = &program(simd, i);
        wp.mmxEq = _mmxEq[static_cast<size_t>(i)];
        rot.push_back(wp);
    }
    return rot;
}

} // namespace momsim::workloads
