/**
 * @file
 * Lazily-built, cached, immutable workloads keyed by spec name — the
 * shared source every sweep point draws from. One MediaWorkload is
 * built per (name, scale) for the whole process, shared across all
 * sweep points and benches that reference it; distinct specs can be
 * built concurrently (see missing() + a caller-side parallel loop).
 */

#ifndef MOMSIM_WORKLOADS_WORKLOAD_REPO_HH
#define MOMSIM_WORKLOADS_WORKLOAD_REPO_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hh"
#include "workloads/media_workload.hh"

namespace momsim::workloads
{

class WorkloadRepo
{
  public:
    explicit WorkloadRepo(WorkloadScale scale = WorkloadScale::Paper)
        : _scale(scale)
    {}

    WorkloadScale scale() const { return _scale; }

    /**
     * The workload for registry spec @p name, built on first use and
     * cached for the process lifetime. Thread-safe: concurrent calls
     * for distinct names build concurrently; concurrent calls for the
     * same missing name may both build, and the first insert wins (the
     * builds are deterministic, so the loser's copy is identical and
     * simply dropped). Unknown names are fatal — CLI layers validate
     * against WorkloadSpec::isKnown first.
     */
    std::shared_ptr<const MediaWorkload> get(const std::string &name);

    /** Content fingerprint of @p name's workload (builds on demand). */
    uint64_t fingerprintOf(const std::string &name);

    /**
     * Deduplicated subset of @p names not yet built, in first-seen
     * order. The idiom for concurrent prebuilds:
     *   auto todo = repo.missing(grid.workloadList());
     *   pool.parallelFor(todo.size(), [&](size_t i) { repo.get(todo[i]); });
     */
    std::vector<std::string> missing(
        const std::vector<std::string> &names) const;

    size_t size() const;

  private:
    WorkloadScale _scale;
    mutable momsim::Mutex _mutex;
    std::unordered_map<std::string, std::shared_ptr<const MediaWorkload>>
        _cache GUARDED_BY(_mutex);
};

} // namespace momsim::workloads

#endif // MOMSIM_WORKLOADS_WORKLOAD_REPO_HH
