#include "workloads/jpeg.hh"

#include "common/logging.hh"
#include "workloads/blocks.hh"
#include "workloads/codec_ctx.hh"
#include "workloads/video_common.hh"

namespace momsim::workloads
{

namespace
{

constexpr int kZigzag[64] = {
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63,
};

int
qStep(const JpegConfig &cfg, int pos, bool chroma)
{
    if (pos == 0)
        return std::max(4, cfg.quant / 2);
    int r = pos / 8, c = pos % 8;
    int ramp = ((r + c) * cfg.quant) / (chroma ? 10 : 14);
    return cfg.quant + ramp;
}

struct Layout
{
    int w, h, nBlocksPerComp, nBlocks;
    uint32_t rp, gp, bp;            ///< RGB input planes
    uint32_t yp, cbp, crp;          ///< YCbCr planes
    uint32_t gray;                  ///< 128 plane for level shift
    uint32_t blkA, blkB, blkC;      ///< working block arrays
    uint32_t recipY, recipC, qY, qC;
    uint32_t bitBuf;
};

Layout
makeLayout(CodecCtx &ctx, const JpegConfig &cfg)
{
    Layout L;
    L.w = cfg.width;
    L.h = cfg.height;
    L.nBlocksPerComp = (L.w / 8) * (L.h / 8);
    L.nBlocks = 3 * L.nBlocksPerComp;
    uint32_t planeBytes = static_cast<uint32_t>(L.w) * L.h;
    L.rp = ctx.tb.alloc(planeBytes, 64);
    L.gp = ctx.tb.alloc(planeBytes, 64);
    L.bp = ctx.tb.alloc(planeBytes, 64);
    L.yp = ctx.tb.alloc(planeBytes, 64);
    L.cbp = ctx.tb.alloc(planeBytes, 64);
    L.crp = ctx.tb.alloc(planeBytes, 64);
    L.gray = ctx.tb.alloc(planeBytes, 64);
    for (uint32_t i = 0; i < planeBytes; ++i)
        ctx.tb.poke8(L.gray + i, 128);
    uint32_t blockBytes =
        static_cast<uint32_t>(L.nBlocksPerComp) * kBlockBytes;
    L.blkA = ctx.tb.alloc(blockBytes, 64);
    L.blkB = ctx.tb.alloc(blockBytes, 64);
    L.blkC = ctx.tb.alloc(blockBytes, 64);
    L.recipY = ctx.tb.alloc(kBlockBytes, 64);
    L.recipC = ctx.tb.alloc(kBlockBytes, 64);
    L.qY = ctx.tb.alloc(kBlockBytes, 64);
    L.qC = ctx.tb.alloc(kBlockBytes, 64);
    L.bitBuf = ctx.tb.alloc(1u << 18, 64);
    for (int pos = 0; pos < 64; ++pos) {
        uint32_t off = static_cast<uint32_t>((pos / 8) * 16 +
                                             (pos % 8) * 2);
        int qy = qStep(cfg, pos, false), qc = qStep(cfg, pos, true);
        ctx.tb.poke16(L.recipY + off,
                      static_cast<uint16_t>(std::min(32767, 65536 / qy)));
        ctx.tb.poke16(L.recipC + off,
                      static_cast<uint16_t>(std::min(32767, 65536 / qc)));
        ctx.tb.poke16(L.qY + off, static_cast<uint16_t>(qy));
        ctx.tb.poke16(L.qC + off, static_cast<uint16_t>(qc));
    }
    return L;
}

/**
 * Fixed-point BT.601-style colour conversion over 4 pixels per vector:
 *   Y  = (38 R + 75 G + 15 B) >> 7          (Q7 keeps products in s16)
 *   Cb = 128 + (B - Y) * 0.564              (Q15 round-multiply)
 *   Cr = 128 + (R - Y) * 0.713
 */
template <class B>
void
rgbToYcc4(B &b, IVal rp, IVal gp, IVal bp, IVal yp, IVal cbp, IVal crp)
{
    MVal wr = b.constW(38), wg = b.constW(75), wb = b.constW(15);
    MVal kCb = b.constW(18482), kCr = b.constW(23364);
    MVal c128 = b.constW(128);
    typename B::Vec r = b.loadPixels4(rp, 0);
    typename B::Vec g = b.loadPixels4(gp, 0);
    typename B::Vec bl = b.loadPixels4(bp, 0);
    typename B::Vec y = b.sra(
        b.add(b.add(b.mullwC(r, wr), b.mullwC(g, wg)), b.mullwC(bl, wb)),
        7);
    b.storePixels4(yp, 0, y);
    typename B::Vec cb = b.addC(b.mulrC(b.subs(bl, y), kCb), c128);
    typename B::Vec cr = b.addC(b.mulrC(b.subs(r, y), kCr), c128);
    b.storePixels4(cbp, 0, cb);
    b.storePixels4(crp, 0, cr);
}

/**
 * Inverse conversion over 4 pixels per vector, with the byte store
 * supplying the saturation:
 *   R = Y + 1.403 Cr'   G = Y - 0.344 Cb' - 0.714 Cr'   B = Y + 1.773 Cb'
 * Coefficients above 1.0 are applied as (x<<1) * (k/2 in Q15).
 */
template <class B>
void
yccToRgb4(B &b, IVal yp, IVal cbp, IVal crp, IVal rp, IVal gp, IVal bp)
{
    MVal c128 = b.constW(128);
    MVal kR = b.constW(22986);      // 0.7015 in Q15 (x2 via shifts)
    MVal kGb = b.constW(5637);      // 0.172 (x2)
    MVal kGr = b.constW(11700);     // 0.357 (x2)
    MVal kB = b.constW(29046);      // 0.8865 (x2)
    typename B::Vec y = b.loadPixels4(yp, 0);
    typename B::Vec cb = b.subC(b.loadPixels4(cbp, 0), c128);
    typename B::Vec cr = b.subC(b.loadPixels4(crp, 0), c128);
    typename B::Vec cb2 = b.sll(cb, 1);
    typename B::Vec cr2 = b.sll(cr, 1);
    typename B::Vec r = b.adds(y, b.sll(b.mulhC(cr2, kR), 1));
    typename B::Vec g =
        b.subs(b.subs(y, b.mulhC(cb2, kGb)), b.mulhC(cr2, kGr));
    typename B::Vec bl = b.adds(y, b.sll(b.mulhC(cb2, kB), 1));
    b.storePixels4(rp, 0, r);
    b.storePixels4(gp, 0, g);
    b.storePixels4(bp, 0, bl);
}

template <class B>
void
colorConvert(CodecCtx &ctx, B &b, const Layout &L)
{
    ScalarEmitter &s = ctx.s;
    s.call("color_convert", 2048);
    int quads = (L.w * L.h) / 4;
    int batch = B::kIsStream ? 16 : 1;
    IVal rp = s.imm(static_cast<int32_t>(L.rp));
    IVal gp = s.imm(static_cast<int32_t>(L.gp));
    IVal bp = s.imm(static_cast<int32_t>(L.bp));
    IVal yp = s.imm(static_cast<int32_t>(L.yp));
    IVal cbp = s.imm(static_cast<int32_t>(L.cbp));
    IVal crp = s.imm(static_cast<int32_t>(L.crp));
    IVal count = s.imm(quads / batch);
    uint32_t head = s.loopHead();
    for (int q = 0; q < quads; q += batch) {
        int n = std::min(batch, quads - q);
        b.beginBatch(n, 4, 4);      // 4-pixel groups, unit stride
        rgbToYcc4(b, rp, gp, bp, yp, cbp, crp);
        int step = n * 4;
        rp = s.addi(rp, step);
        gp = s.addi(gp, step);
        bp = s.addi(bp, step);
        yp = s.addi(yp, step);
        cbp = s.addi(cbp, step);
        crp = s.addi(crp, step);
        count = s.subi(count, 1);
        s.loopBack(head, count, q + batch < quads);
    }
    s.ret();
}

struct Component
{
    uint32_t plane;
    uint32_t recip, q;
    const char *name;
};

template <class B>
trace::Program
encodeImpl(isa::SimdIsa simd, uint32_t base, const JpegConfig &cfg,
           JpegStream *out)
{
    CodecCtx ctx("jpegenc", simd, base);
    B &b = backendOf<B>(ctx);
    ScalarEmitter &s = ctx.s;
    Layout L = makeLayout(ctx, cfg);

    std::vector<uint8_t> r, g, bl;
    makeRgbImage(L.w, L.h, cfg.seed, r, g, bl);
    ctx.tb.pokeBytes(L.rp, r.data(), static_cast<uint32_t>(r.size()));
    ctx.tb.pokeBytes(L.gp, g.data(), static_cast<uint32_t>(g.size()));
    ctx.tb.pokeBytes(L.bp, bl.data(), static_cast<uint32_t>(bl.size()));

    colorConvert(ctx, b, L);
    if (out) {
        out->y.resize(r.size());
        out->cb.resize(r.size());
        out->cr.resize(r.size());
        ctx.tb.peekBytes(L.yp, out->y.data(),
                         static_cast<uint32_t>(out->y.size()));
        ctx.tb.peekBytes(L.cbp, out->cb.data(),
                         static_cast<uint32_t>(out->cb.size()));
        ctx.tb.peekBytes(L.crp, out->cr.data(),
                         static_cast<uint32_t>(out->cr.size()));
    }

    VlcWriter vlc(s, L.bitBuf);
    vlc.put(static_cast<uint32_t>(L.w / 8), 8);
    vlc.put(static_cast<uint32_t>(L.h / 8), 8);
    vlc.put(static_cast<uint32_t>(cfg.quant), 8);

    Component comps[3] = {
        { L.yp, L.recipY, L.qY, "Y" },
        { L.cbp, L.recipC, L.qC, "Cb" },
        { L.crp, L.recipC, L.qC, "Cr" },
    };

    int bw = L.w / 8;
    for (const Component &comp : comps) {
        // Level shift + blockize.
        s.call("blockize", 2048);
        for (int blk = 0; blk < L.nBlocksPerComp; ++blk) {
            int px = (blk % bw) * 8, py = (blk / bw) * 8;
            IVal cur = s.imm(static_cast<int32_t>(
                comp.plane + static_cast<uint32_t>(py * L.w + px)));
            IVal gray = s.imm(static_cast<int32_t>(L.gray));
            IVal dst = s.imm(static_cast<int32_t>(
                L.blkA + static_cast<uint32_t>(blk) * kBlockBytes));
            forEachBlockRow(b, s, cur, gray, dst, L.w,
                            [](B &bb, IVal a, IVal c, IVal d) {
                                extractDiffRow(bb, a, c, d);
                            });
        }
        s.ret();

        s.call("dct_sweep", 2048);
        forEachBlock(b, s, L.blkA, L.blkB, L.nBlocksPerComp,
                     [](B &bb, IVal pa, IVal pb) { dct8x8(bb, pa, pb); });
        s.ret();
        s.call("quant_sweep", 2048);
        IVal recip = s.imm(static_cast<int32_t>(comp.recip));
        forEachBlock(b, s, L.blkB, L.blkC, L.nBlocksPerComp,
                     [&](B &bb, IVal pa, IVal pb) {
                         quantBlock(bb, pa, pb, recip);
                     });
        s.ret();

        // Entropy: differential DC + (run, level) AC list per block.
        s.call("entropy", 2048);
        int prevDc = 0;
        for (int blk = 0; blk < L.nBlocksPerComp; ++blk) {
            uint32_t qb = L.blkC + static_cast<uint32_t>(blk) * kBlockBytes;
            IVal qIv = s.imm(static_cast<int32_t>(qb));
            IVal dc = s.loadS16(qIv, 0);
            vlc.putSigned(dc.v - prevDc);
            prevDc = dc.v;
            int run = 0;
            std::vector<std::pair<int, int>> list;
            IVal zzTab = s.imm(static_cast<int32_t>(comp.recip));
            IVal runIv = s.imm(0);
            for (int i = 1; i < 64; ++i) {
                int pos = kZigzag[i];
                int off = (pos / 8) * 16 + (pos % 8) * 2;
                // Huffman-coder integer core: scan-table lookup, coded-
                // size classification, run bookkeeping.
                IVal zz = s.loadU8(zzTab, i);
                IVal lvl = s.loadS16(qIv, off);
                IVal size = s.andi(s.xor_(lvl, zz), 15);
                (void)size;
                s.condBr(lvl, lvl.v != 0);
                if (lvl.v != 0) {
                    list.emplace_back(run, lvl.v);
                    run = 0;
                    runIv = s.imm(0);
                } else {
                    ++run;
                    runIv = s.addi(runIv, 1);
                }
            }
            vlc.putUnsigned(static_cast<uint32_t>(list.size()));
            for (auto &[rr, lv] : list) {
                vlc.putUnsigned(static_cast<uint32_t>(rr));
                vlc.putSigned(lv);
            }
        }
        s.ret();
    }

    vlc.alignByte();
    if (out) {
        out->cfg = cfg;
        out->bytes = vlc.writer().bytes();
        out->bitCount = vlc.bitCount();
    }
    return ctx.tb.take();
}

template <class B>
trace::Program
decodeImpl(isa::SimdIsa simd, uint32_t base, const JpegStream &stream,
           JpegDecoded *out)
{
    const JpegConfig &cfg = stream.cfg;
    CodecCtx ctx("jpegdec", simd, base);
    B &b = backendOf<B>(ctx);
    ScalarEmitter &s = ctx.s;
    Layout L = makeLayout(ctx, cfg);

    ctx.tb.pokeBytes(L.bitBuf, stream.bytes.data(),
                     static_cast<uint32_t>(stream.bytes.size()));
    VlcReader vlc(s, stream.bytes, L.bitBuf);
    int bw = static_cast<int>(vlc.get(8));
    int bh = static_cast<int>(vlc.get(8));
    (void)vlc.get(8);
    MOMSIM_ASSERT(bw == L.w / 8 && bh == L.h / 8, "jpeg header mismatch");

    Component comps[3] = {
        { L.yp, L.recipY, L.qY, "Y" },
        { L.cbp, L.recipC, L.qC, "Cb" },
        { L.crp, L.recipC, L.qC, "Cr" },
    };

    for (const Component &comp : comps) {
        s.call("parse", 2048);
        int prevDc = 0;
        for (int blk = 0; blk < L.nBlocksPerComp; ++blk) {
            uint32_t qb = L.blkC + static_cast<uint32_t>(blk) * kBlockBytes;
            // Zero then scatter.
            forEachBlock(b, s, qb, qb, 1, [](B &bb, IVal, IVal pb) {
                auto zero = bb.zeroVec();
                for (int g = 0; g < 16; ++g)
                    bb.store(pb, g * 8, zero);
            });
            IVal qIv = s.imm(static_cast<int32_t>(qb));
            prevDc += vlc.getSigned();
            s.storeI16(qIv, 0, s.imm(prevDc));
            uint32_t nnz = vlc.getUnsigned();
            int scanPos = 0;
            for (uint32_t n = 0; n < nnz; ++n) {
                int run = static_cast<int>(vlc.getUnsigned());
                int level = vlc.getSigned();
                scanPos += run + 1;
                int pos = kZigzag[std::min(scanPos, 63)];
                int off = (pos / 8) * 16 + (pos % 8) * 2;
                s.storeI16(qIv, off, s.imm(level));
            }
        }
        s.ret();

        s.call("dequant_sweep", 2048);
        IVal qt = s.imm(static_cast<int32_t>(comp.q));
        forEachBlock(b, s, L.blkC, L.blkB, L.nBlocksPerComp,
                     [&](B &bb, IVal pa, IVal pb) {
                         dequantBlock(bb, pa, pb, qt);
                     });
        s.ret();
        s.call("idct_sweep", 2048);
        forEachBlock(b, s, L.blkB, L.blkA, L.nBlocksPerComp,
                     [](B &bb, IVal pa, IVal pb) { idct8x8(bb, pa, pb); });
        s.ret();

        // Un-blockize with +128 level shift.
        s.call("unblockize", 2048);
        for (int blk = 0; blk < L.nBlocksPerComp; ++blk) {
            int px = (blk % bw) * 8, py = (blk / bw) * 8;
            IVal gray = s.imm(static_cast<int32_t>(L.gray));
            IVal dst = s.imm(static_cast<int32_t>(
                comp.plane + static_cast<uint32_t>(py * L.w + px)));
            IVal res = s.imm(static_cast<int32_t>(
                L.blkA + static_cast<uint32_t>(blk) * kBlockBytes));
            forEachBlockRow(b, s, gray, dst, res, L.w,
                            [](B &bb, IVal a, IVal c, IVal d) {
                                addClampRow(bb, a, d, c);
                            });
        }
        s.ret();
    }

    // YCbCr -> RGB, vectorized like the forward conversion (the byte
    // stores provide the saturation).
    s.call("ycc_to_rgb", 2048);
    uint32_t rOut = ctx.tb.alloc(static_cast<uint32_t>(L.w) * L.h, 64);
    uint32_t gOut = ctx.tb.alloc(static_cast<uint32_t>(L.w) * L.h, 64);
    uint32_t bOut = ctx.tb.alloc(static_cast<uint32_t>(L.w) * L.h, 64);
    {
        int quads = (L.w * L.h) / 4;
        int batch = B::kIsStream ? 16 : 1;
        IVal yv = s.imm(static_cast<int32_t>(L.yp));
        IVal cbv = s.imm(static_cast<int32_t>(L.cbp));
        IVal crv = s.imm(static_cast<int32_t>(L.crp));
        IVal rv = s.imm(static_cast<int32_t>(rOut));
        IVal gv = s.imm(static_cast<int32_t>(gOut));
        IVal bv = s.imm(static_cast<int32_t>(bOut));
        IVal count = s.imm(quads / batch);
        uint32_t head = s.loopHead();
        for (int q = 0; q < quads; q += batch) {
            int n = std::min(batch, quads - q);
            b.beginBatch(n, 4, 4);
            yccToRgb4(b, yv, cbv, crv, rv, gv, bv);
            int step = n * 4;
            yv = s.addi(yv, step);
            cbv = s.addi(cbv, step);
            crv = s.addi(crv, step);
            rv = s.addi(rv, step);
            gv = s.addi(gv, step);
            bv = s.addi(bv, step);
            count = s.subi(count, 1);
            s.loopBack(head, count, q + batch < quads);
        }
    }
    s.ret();

    if (out) {
        size_t planeBytes = static_cast<size_t>(L.w) * L.h;
        out->y.resize(planeBytes);
        out->cb.resize(planeBytes);
        out->cr.resize(planeBytes);
        out->r.resize(planeBytes);
        out->g.resize(planeBytes);
        out->b.resize(planeBytes);
        ctx.tb.peekBytes(L.yp, out->y.data(),
                         static_cast<uint32_t>(planeBytes));
        ctx.tb.peekBytes(L.cbp, out->cb.data(),
                         static_cast<uint32_t>(planeBytes));
        ctx.tb.peekBytes(L.crp, out->cr.data(),
                         static_cast<uint32_t>(planeBytes));
        ctx.tb.peekBytes(rOut, out->r.data(),
                         static_cast<uint32_t>(planeBytes));
        ctx.tb.peekBytes(gOut, out->g.data(),
                         static_cast<uint32_t>(planeBytes));
        ctx.tb.peekBytes(bOut, out->b.data(),
                         static_cast<uint32_t>(planeBytes));
    }
    (void)simd;
    return ctx.tb.take();
}

} // namespace

trace::Program
buildJpegEncoder(isa::SimdIsa simd, uint32_t base, const JpegConfig &cfg,
                 JpegStream *out)
{
    if (simd == isa::SimdIsa::Mom)
        return encodeImpl<MomBackend>(simd, base, cfg, out);
    return encodeImpl<MmxBackend>(simd, base, cfg, out);
}

trace::Program
buildJpegDecoder(isa::SimdIsa simd, uint32_t base, const JpegStream &stream,
                 JpegDecoded *out)
{
    if (simd == isa::SimdIsa::Mom)
        return decodeImpl<MomBackend>(simd, base, stream, out);
    return decodeImpl<MmxBackend>(simd, base, stream, out);
}

} // namespace momsim::workloads
