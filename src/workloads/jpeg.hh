/**
 * @file
 * Baseline-JPEG-style image encoder/decoder as emulation-library
 * programs (the paper's MPEG-4 "still image 2D" profile).
 *
 * Real coding structure: planar RGB -> YCbCr colour conversion
 * (vectorized fixed-point kernel), per-component 8x8 DCT, quantization,
 * zig-zag scan with differential-DC + run/level entropy coding, and a
 * decoder that inverts every stage. 4:4:4 sampling (legal baseline
 * JPEG; keeps the kernels shared with MPEG-2 — see DESIGN.md).
 */

#ifndef MOMSIM_WORKLOADS_JPEG_HH
#define MOMSIM_WORKLOADS_JPEG_HH

#include <cstdint>
#include <vector>

#include "isa/simd_isa.hh"
#include "trace/program.hh"

namespace momsim::workloads
{

struct JpegConfig
{
    int width = 176;        ///< multiple of 8
    int height = 144;       ///< multiple of 8
    int quant = 14;         ///< base quantizer step
    uint64_t seed = 77;
};

struct JpegStream
{
    JpegConfig cfg;
    std::vector<uint8_t> bytes;
    size_t bitCount = 0;
    /** Encoder-side YCbCr planes (pre-quantization truth for PSNR). */
    std::vector<uint8_t> y, cb, cr;
};

struct JpegDecoded
{
    std::vector<uint8_t> y, cb, cr;
    std::vector<uint8_t> r, g, b;
};

trace::Program buildJpegEncoder(isa::SimdIsa simd, uint32_t memBase,
                                const JpegConfig &cfg,
                                JpegStream *out = nullptr);

trace::Program buildJpegDecoder(isa::SimdIsa simd, uint32_t memBase,
                                const JpegStream &stream,
                                JpegDecoded *out = nullptr);

} // namespace momsim::workloads

#endif // MOMSIM_WORKLOADS_JPEG_HH
