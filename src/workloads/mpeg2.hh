/**
 * @file
 * MPEG-2-style video encoder/decoder as emulation-library programs
 * (the MPEG-4 "video" profile members of the paper's workload).
 *
 * The encoder implements the real MPEG-2 coding structure: an I-frame
 * followed by P-frames with full-search block motion estimation (16x16
 * SAD over +/-range), motion-compensated residuals, 8x8 DCT,
 * quantization, zig-zag run-length entropy coding, and in-loop
 * reconstruction that exactly mirrors the decoder. The bitstream syntax
 * is a compact Exp-Golomb-based equivalent of the MPEG-2 macroblock
 * layer (see DESIGN.md substitutions); the decoder parses it and
 * reproduces the encoder's reconstruction bit-exactly.
 *
 * Both programs exist in MMX and MOM builds; the kernels come from
 * workloads/blocks.hh via the dual backend.
 */

#ifndef MOMSIM_WORKLOADS_MPEG2_HH
#define MOMSIM_WORKLOADS_MPEG2_HH

#include <cstdint>
#include <vector>

#include "isa/simd_isa.hh"
#include "trace/program.hh"

namespace momsim::workloads
{

struct VideoConfig
{
    int width = 176;        ///< QCIF luma width  (multiple of 16)
    int height = 144;       ///< QCIF luma height (multiple of 16)
    int frames = 3;         ///< GOP prefix: I P P ...
    int searchRange = 4;    ///< full-search window, +/- pixels
    int quant = 16;         ///< base quantizer step
    uint64_t seed = 1234;
};

/** Encoder products handed to the decoder build and the tests. */
struct Mpeg2Bitstream
{
    VideoConfig cfg;
    std::vector<uint8_t> bytes;
    /** Encoder in-loop reconstruction (decoder must match exactly). */
    std::vector<std::vector<uint8_t>> reconY, reconCb, reconCr;
    /** Original frames for PSNR evaluation. */
    std::vector<std::vector<uint8_t>> origY;
    size_t bitCount = 0;
};

/** Decoder products for the tests. */
struct Mpeg2Decoded
{
    std::vector<std::vector<uint8_t>> y, cb, cr;
};

/** Build the encoder program; fills @p out when non-null. */
trace::Program buildMpeg2Encoder(isa::SimdIsa simd, uint32_t memBase,
                                 const VideoConfig &cfg,
                                 Mpeg2Bitstream *out = nullptr);

/** Build the decoder program for an encoded stream. */
trace::Program buildMpeg2Decoder(isa::SimdIsa simd, uint32_t memBase,
                                 const Mpeg2Bitstream &stream,
                                 Mpeg2Decoded *out = nullptr);

/** PSNR between two planes (host-side metric for tests/examples). */
double planePsnr(const std::vector<uint8_t> &a,
                 const std::vector<uint8_t> &b);

} // namespace momsim::workloads

#endif // MOMSIM_WORKLOADS_MPEG2_HH
