#include "workloads/workload_repo.hh"

#include <set>

#include "common/logging.hh"

namespace momsim::workloads
{

std::shared_ptr<const MediaWorkload>
WorkloadRepo::get(const std::string &name)
{
    {
        MutexLock lock(_mutex);
        auto it = _cache.find(name);
        if (it != _cache.end())
            return it->second;
    }

    WorkloadSpec spec;
    if (!WorkloadSpec::byName(name, spec))
        fatal("unknown workload '" + name + "' (see --list-workloads)");
    spec.scale = _scale;

    // Build outside the lock so distinct specs synthesize concurrently.
    std::shared_ptr<const MediaWorkload> built = MediaWorkload::build(spec);

    MutexLock lock(_mutex);
    auto [it, inserted] = _cache.emplace(name, std::move(built));
    (void)inserted;     // lost race: the earlier identical build wins
    return it->second;
}

uint64_t
WorkloadRepo::fingerprintOf(const std::string &name)
{
    return get(name)->fingerprint();
}

std::vector<std::string>
WorkloadRepo::missing(const std::vector<std::string> &names) const
{
    MutexLock lock(_mutex);
    std::vector<std::string> out;
    std::set<std::string> seen;
    for (const std::string &name : names) {
        if (_cache.count(name) == 0 && seen.insert(name).second)
            out.push_back(name);
    }
    return out;
}

size_t
WorkloadRepo::size() const
{
    MutexLock lock(_mutex);
    return _cache.size();
}

} // namespace momsim::workloads
