#include "workloads/video_common.hh"

#include <algorithm>

#include "common/fixed.hh"

namespace momsim::workloads
{

namespace
{

struct Blob
{
    double x, y;        // position at frame 0
    double dx, dy;      // velocity (pixels per frame)
    int w, h;
    int base;           // base intensity
    int texture;        // texture amplitude
};

std::vector<Blob>
makeBlobs(int w, int h, uint64_t seed, int count)
{
    Rng rng(seed * 77 + 13);
    std::vector<Blob> blobs;
    for (int i = 0; i < count; ++i) {
        Blob b;
        b.x = rng.real() * w;
        b.y = rng.real() * h;
        b.dx = rng.range(-3, 3);
        b.dy = rng.range(-2, 2);
        b.w = static_cast<int>(rng.range(12, 40));
        b.h = static_cast<int>(rng.range(12, 40));
        b.base = static_cast<int>(rng.range(60, 200));
        b.texture = static_cast<int>(rng.range(8, 48));
        blobs.push_back(b);
    }
    return blobs;
}

} // namespace

std::vector<uint8_t>
makeLumaFrame(int w, int h, int frame, uint64_t seed)
{
    std::vector<uint8_t> plane(static_cast<size_t>(w) * h);
    std::vector<Blob> blobs = makeBlobs(w, h, seed, 6);
    Rng noise(seed ^ (0x9E37u + static_cast<uint64_t>(frame) * 1315423911u));

    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            int v = 40 + (x * 60) / std::max(1, w) +
                    (y * 40) / std::max(1, h);
            plane[static_cast<size_t>(y) * w + x] = satU8(v);
        }
    }
    for (const Blob &b : blobs) {
        int bx = static_cast<int>(b.x + b.dx * frame);
        int by = static_cast<int>(b.y + b.dy * frame);
        for (int y = 0; y < b.h; ++y) {
            int py = by + y;
            if (py < 0 || py >= h)
                continue;
            for (int x = 0; x < b.w; ++x) {
                int px = bx + x;
                if (px < 0 || px >= w)
                    continue;
                // Texture is attached to the blob so it moves with it.
                int tex = ((x * 7 + y * 13) % 17) * b.texture / 17;
                plane[static_cast<size_t>(py) * w + px] =
                    satU8(b.base + tex);
            }
        }
    }
    for (auto &px : plane) {
        int n = static_cast<int>(noise.below(5)) - 2;
        px = satU8(px + n);
    }
    return plane;
}

std::vector<uint8_t>
makeChromaFrame(int w, int h, int frame, uint64_t seed, bool cr)
{
    std::vector<uint8_t> plane(static_cast<size_t>(w) * h);
    std::vector<Blob> blobs = makeBlobs(w * 2, h * 2, seed, 6);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            int v = 128 + (cr ? (x * 24) / std::max(1, w) - 12
                              : (y * 24) / std::max(1, h) - 12);
            plane[static_cast<size_t>(y) * w + x] = satU8(v);
        }
    }
    for (const Blob &b : blobs) {
        int bx = static_cast<int>(b.x + b.dx * frame) / 2;
        int by = static_cast<int>(b.y + b.dy * frame) / 2;
        int tint = cr ? (b.base / 3) - 20 : 20 - (b.base / 4);
        for (int y = 0; y < b.h / 2; ++y) {
            int py = by + y;
            if (py < 0 || py >= h)
                continue;
            for (int x = 0; x < b.w / 2; ++x) {
                int px = bx + x;
                if (px < 0 || px >= w)
                    continue;
                plane[static_cast<size_t>(py) * w + px] =
                    satU8(128 + tint);
            }
        }
    }
    return plane;
}

void
makeRgbImage(int w, int h, uint64_t seed, std::vector<uint8_t> &r,
             std::vector<uint8_t> &g, std::vector<uint8_t> &b)
{
    r.assign(static_cast<size_t>(w) * h, 0);
    g = r;
    b = r;
    std::vector<Blob> blobs = makeBlobs(w, h, seed, 10);
    Rng noise(seed * 31 + 7);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            size_t i = static_cast<size_t>(y) * w + x;
            r[i] = satU8(30 + (x * 180) / std::max(1, w));
            g[i] = satU8(30 + (y * 180) / std::max(1, h));
            b[i] = satU8(200 - (x * 120) / std::max(1, w));
        }
    }
    for (const Blob &bl : blobs) {
        for (int y = 0; y < bl.h; ++y) {
            int py = static_cast<int>(bl.y) + y;
            if (py < 0 || py >= h)
                continue;
            for (int x = 0; x < bl.w; ++x) {
                int px = static_cast<int>(bl.x) + x;
                if (px < 0 || px >= w)
                    continue;
                size_t i = static_cast<size_t>(py) * w + px;
                int tex = ((x * 5 + y * 11) % 13) * bl.texture / 13;
                r[i] = satU8(bl.base + tex);
                g[i] = satU8(255 - bl.base + tex);
                b[i] = satU8(bl.base / 2 + tex);
            }
        }
    }
    for (size_t i = 0; i < r.size(); ++i) {
        r[i] = satU8(r[i] + static_cast<int>(noise.below(3)) - 1);
        g[i] = satU8(g[i] + static_cast<int>(noise.below(3)) - 1);
    }
}

IVal
sad16x16Mmx(ScalarEmitter &s, MmxEmitter &mx, IVal cur, IVal ref, int pitch)
{
    MVal acc = mx.zero();
    IVal c = s.copy(cur);
    IVal r = s.copy(ref);
    IVal rows = s.imm(16);
    uint32_t head = s.loopHead();
    for (int row = 0; row < 16; ++row) {
        MVal cl = mx.loadQ(c, 0);
        MVal ch = mx.loadQ(c, 8);
        MVal rl = mx.loadQ(r, 0);
        MVal rh = mx.loadQ(r, 8);
        acc = mx.paddd(acc, mx.psadbw(cl, rl));
        acc = mx.paddd(acc, mx.psadbw(ch, rh));
        c = s.addi(c, pitch);
        r = s.addi(r, pitch);
        rows = s.subi(rows, 1);
        s.loopBack(head, rows, row + 1 < 16);
    }
    return mx.movdfm(acc);
}

IVal
sad16x16Mom(ScalarEmitter &s, MomEmitter &mv, IVal cur, IVal ref, int pitch)
{
    if (mv.curLen() != 16)
        mv.setLen(s.imm(16));
    SVal cl = mv.loadQ(cur, 0, pitch);
    SVal ch = mv.loadQ(cur, 8, pitch);
    SVal rl = mv.loadQ(ref, 0, pitch);
    SVal rh = mv.loadQ(ref, 8, pitch);
    mv.clrAcc(0);
    mv.accSadOB(0, cl, rl);
    mv.accSadOB(0, ch, rh);
    return mv.raccToInt(0);
}

} // namespace momsim::workloads
