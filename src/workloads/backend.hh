/**
 * @file
 * Dual vector backend for the media kernels.
 *
 * The vectorizable kernels (DCT, quantization, motion compensation,
 * colour conversion, ...) are written once as templates over a backend:
 *
 *  - MmxBackend: one 64-bit packed value per operation; the caller loops
 *    over blocks and pays scalar loop overhead per block (address
 *    updates, counter, backward branch) — conventional µ-SIMD code.
 *  - MomBackend: one *stream* per operation covering up to 16 blocks at
 *    a fixed stride (MOM's second dimension of parallelism); the
 *    per-block loop and its scalar overhead disappear, which is exactly
 *    the instruction-count reduction mechanism of Table 3.
 *
 * Both backends compute identical values; only the instruction streams
 * differ.
 */

#ifndef MOMSIM_WORKLOADS_BACKEND_HH
#define MOMSIM_WORKLOADS_BACKEND_HH

#include <map>

#include "trace/mmx_emitter.hh"
#include "trace/mom_emitter.hh"
#include "trace/packed.hh"
#include "trace/scalar_emitter.hh"

namespace momsim::workloads
{

using trace::FVal;
using trace::IVal;
using trace::MmxEmitter;
using trace::MomEmitter;
using trace::MVal;
using trace::ScalarEmitter;
using trace::SVal;
using trace::TraceBuilder;

/**
 * Small pool of packed constants living in simulated memory; loaded once
 * per kernel invocation and cached per 64-bit pattern.
 */
class ConstPool
{
  public:
    ConstPool(TraceBuilder &tb, ScalarEmitter &s, MmxEmitter &mx)
        : _tb(tb), _s(s), _mx(mx)
    {}

    /** A packed constant register with all lanes = @p w. */
    MVal
    splatW(int16_t w)
    {
        return q(trace::splatW(w));
    }

    /** A packed constant with explicit lanes. */
    MVal
    packW(int16_t w0, int16_t w1, int16_t w2, int16_t w3)
    {
        return q(trace::packW(w0, w1, w2, w3));
    }

    MVal
    zero()
    {
        return q(0);
    }

    /** Invalidate the register cache (new kernel = reload constants). */
    void
    spill()
    {
        _cached.clear();
    }

  private:
    MVal
    q(uint64_t bits)
    {
        auto hit = _cached.find(bits);
        if (hit != _cached.end())
            return hit->second;
        uint32_t slot;
        auto mem = _inMemory.find(bits);
        if (mem != _inMemory.end()) {
            slot = mem->second;
        } else {
            slot = _tb.alloc(8, 8);
            _tb.poke64(slot, bits);
            _inMemory.emplace(bits, slot);
        }
        if (!_poolBaseInit) {
            _poolBase = _s.imm(static_cast<int32_t>(_tb.dataBase()));
            _poolBaseInit = true;
        }
        MVal v = _mx.loadQ(_poolBase,
                           static_cast<int32_t>(slot - _tb.dataBase()));
        _cached.emplace(bits, v);
        return v;
    }

    TraceBuilder &_tb;
    ScalarEmitter &_s;
    MmxEmitter &_mx;
    IVal _poolBase;
    bool _poolBaseInit = false;
    std::map<uint64_t, uint32_t> _inMemory;
    std::map<uint64_t, MVal> _cached;
};

/** Conventional packed-µ-SIMD backend: one block per kernel call. */
class MmxBackend
{
  public:
    using Vec = MVal;
    static constexpr bool kIsStream = false;

    MmxBackend(ScalarEmitter &s, MmxEmitter &mx, ConstPool &cp)
        : _s(s), _mx(mx), _cp(cp)
    {}

    /** Number of blocks one kernel invocation covers. */
    int batch() const { return 1; }

    /** Prepare a batch; for MMX this is a no-op (strides unused). */
    void beginBatch(int blocks, int blockStride, int pixelStride = 8)
    {
        (void)blocks;
        (void)blockStride;
        (void)pixelStride;
        _cp.spill();
    }

    MVal constW(int16_t w) { return _cp.splatW(w); }

    Vec load(IVal base, int32_t disp) { return _mx.loadQ(base, disp); }

    /** A table qword shared by every block of the batch. */
    Vec loadShared(IVal base, int32_t disp) { return _mx.loadQ(base, disp); }
    void store(IVal base, int32_t disp, Vec v) { _mx.storeQ(base, disp, v); }
    void storeNT(IVal base, int32_t disp, Vec v) { _mx.storeNTQ(base, disp, v); }

    /** Load 4 pixels (bytes) widened to halfwords: MOVQ + PUNPCKLBW. */
    Vec
    loadPixels4(IVal base, int32_t disp)
    {
        MVal eight = _mx.loadQ(base, disp & ~7);
        MVal z = _cp.zero();
        // Select the half holding the 4 requested pixels.
        if (disp & 4)
            return _mx.punpckhbw(eight, z);
        return _mx.punpcklbw(eight, z);
    }

    /** Store 4 halfwords as saturated bytes: PACKUSWB + MOVD-store. */
    void
    storePixels4(IVal base, int32_t disp, Vec v)
    {
        MVal packed = _mx.packuswb(v, v);
        IVal word = _mx.movdfm(packed);
        _s.storeI32(base, disp, word);
    }

    Vec add(Vec a, Vec b) { return _mx.paddw(a, b); }
    Vec adds(Vec a, Vec b) { return _mx.paddsw(a, b); }
    Vec sub(Vec a, Vec b) { return _mx.psubw(a, b); }
    Vec subs(Vec a, Vec b) { return _mx.psubsw(a, b); }
    Vec minW(Vec a, Vec b) { return _mx.pminsw(a, b); }
    Vec maxW(Vec a, Vec b) { return _mx.pmaxsw(a, b); }
    Vec mulh(Vec a, Vec b) { return _mx.pmulhw(a, b); }
    Vec mullw(Vec a, Vec b) { return _mx.pmullw(a, b); }
    Vec mullwC(Vec a, MVal c) { return _mx.pmullw(a, c); }
    Vec mulhC(Vec a, MVal c) { return _mx.pmulhw(a, c); }
    Vec mulrC(Vec a, MVal c)
    {
        // Q15 round-multiply: MMX has no rounding form; bias then mulh.
        MVal biased = _mx.paddsw(a, _cp.splatW(1));
        return _mx.pmulhw(biased, c);
    }
    Vec addC(Vec a, MVal c) { return _mx.paddsw(a, c); }
    Vec subC(Vec a, MVal c) { return _mx.psubsw(a, c); }
    Vec sll(Vec a, int n) { return _mx.psllw(a, n); }
    Vec sra(Vec a, int n) { return _mx.psraw(a, n); }

    /** Arithmetic shift right with rounding: 2 MMX ops (no MSRAR). */
    Vec
    srar(Vec a, int n)
    {
        if (n == 0)
            return a;
        MVal bias = _cp.splatW(static_cast<int16_t>(1 << (n - 1)));
        return _mx.psraw(_mx.paddw(a, bias), n);
    }

    Vec unpcklwd(Vec a, Vec b) { return _mx.punpcklwd(a, b); }
    Vec unpckhwd(Vec a, Vec b) { return _mx.punpckhwd(a, b); }
    Vec unpckldq(Vec a, Vec b) { return _mx.punpckldq(a, b); }
    Vec unpckhdq(Vec a, Vec b) { return _mx.punpckhdq(a, b); }

    /** Per-lane select by sign mask. */
    Vec
    select(Vec mask, Vec a, Vec b)
    {
        MVal ta = _mx.pand(mask, a);
        MVal tb = _mx.pandn(mask, b);
        return _mx.por(ta, tb);
    }

    Vec cmpgt(Vec a, Vec b) { return _mx.pcmpgtw(a, b); }

    /** A zeroed vector register (PXOR idiom). */
    Vec zeroVec() { return _mx.zero(); }

    /** |x| per lane; MMX has no PABSW, so max(x, 0-x): two ops. */
    Vec
    absW(Vec zero, Vec x)
    {
        return _mx.pmaxsw(x, _mx.psubsw(zero, x));
    }

    ScalarEmitter &scalar() { return _s; }
    MmxEmitter &mmx() { return _mx; }

  private:
    ScalarEmitter &_s;
    MmxEmitter &_mx;
    ConstPool &_cp;
};

/** Streaming vector backend: one op covers a batch of blocks. */
class MomBackend
{
  public:
    using Vec = SVal;
    static constexpr bool kIsStream = true;

    MomBackend(ScalarEmitter &s, MmxEmitter &mx, MomEmitter &mv,
               ConstPool &cp)
        : _s(s), _mx(mx), _mv(mv), _cp(cp)
    {}

    int batch() const { return _len; }

    /**
     * Configure the stream: @p blocks consecutive blocks, one element
     * each, spaced @p blockStride bytes apart in block arrays and
     * @p pixelStride bytes apart in pixel planes.
     */
    void
    beginBatch(int blocks, int blockStride, int pixelStride = 8)
    {
        _len = blocks;
        _stride = blockStride;
        _pixelStride = pixelStride;
        _cp.spill();
        _mv.setLen(_s.imm(blocks));
    }

    MVal constW(int16_t w) { return _cp.splatW(w); }

    Vec
    load(IVal base, int32_t disp)
    {
        return _mv.loadQ(base, disp, _stride);
    }

    /** A table qword shared by every block: broadcast load (MLDBC). */
    Vec
    loadShared(IVal base, int32_t disp)
    {
        return _mv.loadBC(base, disp);
    }

    void
    store(IVal base, int32_t disp, Vec v)
    {
        _mv.storeQ(base, disp, _stride, v);
    }

    void
    storeNT(IVal base, int32_t disp, Vec v)
    {
        _mv.storeNTQ(base, disp, _stride, v);
    }

    Vec
    loadPixels4(IVal base, int32_t disp)
    {
        return _mv.loadUB2QH(base, disp, _pixelStride);
    }

    void
    storePixels4(IVal base, int32_t disp, Vec v)
    {
        _mv.storeQH2UB(base, disp, _pixelStride, v);
    }

    Vec add(Vec a, Vec b) { return _mv.addQH(a, b); }
    Vec adds(Vec a, Vec b) { return _mv.addsQH(a, b); }
    Vec sub(Vec a, Vec b) { return _mv.subQH(a, b); }
    Vec subs(Vec a, Vec b) { return _mv.subsQH(a, b); }
    Vec minW(Vec a, Vec b) { return _mv.minQH(a, b); }
    Vec maxW(Vec a, Vec b) { return _mv.maxQH(a, b); }
    Vec mulh(Vec a, Vec b) { return _mv.mulhQH(a, b); }
    Vec mullw(Vec a, Vec b) { return _mv.mullQH(a, b); }
    Vec mullwC(Vec a, MVal c) { return _mv.mullVSQH(a, c); }
    Vec mulhC(Vec a, MVal c) { return _mv.mulhVSQH(a, c); }
    Vec mulrC(Vec a, MVal c) { return _mv.scaleVSQH(a, c); }
    Vec addC(Vec a, MVal c) { return _mv.addVSQH(a, c); }
    Vec subC(Vec a, MVal c) { return _mv.subVSQH(a, c); }
    Vec sll(Vec a, int n) { return _mv.sllQH(a, n); }
    Vec sra(Vec a, int n) { return _mv.sraQH(a, n); }
    Vec srar(Vec a, int n) { return n == 0 ? a : _mv.srarQH(a, n); }

    Vec
    unpcklwd(Vec a, Vec b)
    {
        return binPacked(a, b, trace::punpcklwd, isa::Op::MUNPCKL_WD);
    }

    Vec
    unpckhwd(Vec a, Vec b)
    {
        return binPacked(a, b, trace::punpckhwd, isa::Op::MUNPCKH_WD);
    }

    Vec
    unpckldq(Vec a, Vec b)
    {
        return binPacked(a, b,
                         [](uint64_t x, uint64_t y) {
                             return (x & 0xFFFFFFFFull) | (y << 32);
                         },
                         isa::Op::MUNPCKL_DQ);
    }

    Vec
    unpckhdq(Vec a, Vec b)
    {
        return binPacked(a, b,
                         [](uint64_t x, uint64_t y) {
                             return (x >> 32) | (y & 0xFFFFFFFF00000000ull);
                         },
                         isa::Op::MUNPCKH_DQ);
    }

    Vec
    select(Vec mask, Vec a, Vec b)
    {
        return _mv.bitsel(mask, a, b);
    }

    Vec cmpgt(Vec a, Vec b) { return _mv.cmpgtQH(a, b); }

    /** A zeroed stream register (MZERO). */
    Vec zeroVec() { return _mv.zero(); }

    /** |x| per lane: MABS.QH, one op (an honest MOM ISA advantage). */
    Vec
    absW(Vec zero, Vec x)
    {
        (void)zero;
        return _mv.absQH(x);
    }

    ScalarEmitter &scalar() { return _s; }
    MomEmitter &mom() { return _mv; }

  private:
    /** Element-wise binary stream op with explicit semantics. */
    template <typename Fn>
    Vec
    binPacked(Vec a, Vec b, Fn fn, isa::Op op)
    {
        SVal r = _mv.rawBinop(op, a, b);
        for (int i = 0; i < a.len; ++i)
            r.e[i] = fn(a.e[i], b.e[i]);
        return r;
    }

    ScalarEmitter &_s;
    MmxEmitter &_mx;
    MomEmitter &_mv;
    ConstPool &_cp;
    int _len = 0;
    int _stride = 128;
    int _pixelStride = 8;
};

} // namespace momsim::workloads

#endif // MOMSIM_WORKLOADS_BACKEND_HH
