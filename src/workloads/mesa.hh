/**
 * @file
 * A mesa-style software 3D pipeline as an emulation-library program
 * (the paper's MPEG-4 "still image 3D graphics" profile).
 *
 * Implements the classic fixed-function path: model-view transform,
 * perspective projection and viewport mapping (scalar FP), diffuse
 * lighting, and a z-buffered edge-function rasterizer with flat-shaded
 * spans (integer). As in the paper, this benchmark is *not* vectorized
 * ("mesa has not been vectorized because our emulation libraries do not
 * have floating-point µ-SIMD instructions"), so its MMX and MOM builds
 * are identical instruction streams.
 */

#ifndef MOMSIM_WORKLOADS_MESA_HH
#define MOMSIM_WORKLOADS_MESA_HH

#include <cstdint>
#include <vector>

#include "isa/simd_isa.hh"
#include "trace/program.hh"

namespace momsim::workloads
{

struct MesaConfig
{
    int width = 160;
    int height = 120;
    int rings = 14;         ///< torus tessellation
    int sides = 10;
    int frames = 2;         ///< rotation steps rendered
    uint64_t seed = 3;
};

struct MesaRendered
{
    int width = 0, height = 0;
    /** Final frame's colour buffer (8-bit intensity). */
    std::vector<uint8_t> color;
    /** Final frame's depth buffer (float bits). */
    std::vector<float> depth;
    uint64_t pixelsShaded = 0;
    uint64_t trianglesDrawn = 0;
};

trace::Program buildMesa(isa::SimdIsa simd, uint32_t memBase,
                         const MesaConfig &cfg,
                         MesaRendered *out = nullptr);

} // namespace momsim::workloads

#endif // MOMSIM_WORKLOADS_MESA_HH
