#include "workloads/blocks.hh"

#include "common/fixed.hh"

namespace momsim::workloads
{

namespace
{

using detail::mulcRef;

/** One 1-D forward pass down the columns of an 8x8 int16 block. */
void
dctColumnsRef(int16_t *blk)
{
    for (int col = 0; col < 8; ++col) {
        int16_t x[8];
        for (int r = 0; r < 8; ++r)
            x[r] = blk[r * 8 + col];

        int16_t s07 = satAdd16(x[0], x[7]), d07 = satSub16(x[0], x[7]);
        int16_t s16 = satAdd16(x[1], x[6]), d16 = satSub16(x[1], x[6]);
        int16_t s25 = satAdd16(x[2], x[5]), d25 = satSub16(x[2], x[5]);
        int16_t s34 = satAdd16(x[3], x[4]), d34 = satSub16(x[3], x[4]);

        int16_t a = satAdd16(s07, s34), c = satSub16(s07, s34);
        int16_t b = satAdd16(s16, s25), d = satSub16(s16, s25);

        x[0] = mulcRef(satAdd16(a, b), DctConsts::c4);
        x[4] = mulcRef(satSub16(a, b), DctConsts::c4);
        x[2] = satAdd16(mulcRef(c, DctConsts::c2), mulcRef(d, DctConsts::c6));
        x[6] = satSub16(mulcRef(c, DctConsts::c6), mulcRef(d, DctConsts::c2));

        x[1] = satAdd16(
            satAdd16(mulcRef(d07, DctConsts::c1), mulcRef(d16, DctConsts::c3)),
            satAdd16(mulcRef(d25, DctConsts::c5), mulcRef(d34, DctConsts::c7)));
        x[3] = satSub16(
            satSub16(mulcRef(d07, DctConsts::c3), mulcRef(d16, DctConsts::c7)),
            satAdd16(mulcRef(d25, DctConsts::c1), mulcRef(d34, DctConsts::c5)));
        x[5] = satAdd16(
            satSub16(mulcRef(d07, DctConsts::c5), mulcRef(d16, DctConsts::c1)),
            satAdd16(mulcRef(d25, DctConsts::c7), mulcRef(d34, DctConsts::c3)));
        x[7] = satAdd16(
            satSub16(mulcRef(d07, DctConsts::c7), mulcRef(d16, DctConsts::c5)),
            satSub16(mulcRef(d25, DctConsts::c3), mulcRef(d34, DctConsts::c1)));

        for (int r = 0; r < 8; ++r)
            blk[r * 8 + col] = x[r];
    }
}

/** One 1-D inverse (DCT-III) pass down the columns. */
void
idctColumnsRef(int16_t *blk)
{
    for (int col = 0; col < 8; ++col) {
        int16_t X[8];
        for (int r = 0; r < 8; ++r)
            X[r] = blk[r * 8 + col];

        int16_t a = mulcRef(X[0], DctConsts::c4);
        int16_t b = mulcRef(X[4], DctConsts::c4);
        int16_t e0 = satAdd16(a, b), e1 = satSub16(a, b);
        int16_t c = satAdd16(mulcRef(X[2], DctConsts::c2),
                             mulcRef(X[6], DctConsts::c6));
        int16_t d = satSub16(mulcRef(X[2], DctConsts::c6),
                             mulcRef(X[6], DctConsts::c2));

        int16_t s07 = satAdd16(e0, c), s34 = satSub16(e0, c);
        int16_t s16 = satAdd16(e1, d), s25 = satSub16(e1, d);

        int16_t o0 = satAdd16(
            satAdd16(mulcRef(X[1], DctConsts::c1), mulcRef(X[3], DctConsts::c3)),
            satAdd16(mulcRef(X[5], DctConsts::c5), mulcRef(X[7], DctConsts::c7)));
        int16_t o1 = satSub16(
            satSub16(mulcRef(X[1], DctConsts::c3), mulcRef(X[3], DctConsts::c7)),
            satAdd16(mulcRef(X[5], DctConsts::c1), mulcRef(X[7], DctConsts::c5)));
        int16_t o2 = satAdd16(
            satSub16(mulcRef(X[1], DctConsts::c5), mulcRef(X[3], DctConsts::c1)),
            satAdd16(mulcRef(X[5], DctConsts::c7), mulcRef(X[7], DctConsts::c3)));
        int16_t o3 = satAdd16(
            satSub16(mulcRef(X[1], DctConsts::c7), mulcRef(X[3], DctConsts::c5)),
            satSub16(mulcRef(X[5], DctConsts::c3), mulcRef(X[7], DctConsts::c1)));

        X[0] = satAdd16(s07, o0);
        X[7] = satSub16(s07, o0);
        X[1] = satAdd16(s16, o1);
        X[6] = satSub16(s16, o1);
        X[2] = satAdd16(s25, o2);
        X[5] = satSub16(s25, o2);
        X[3] = satAdd16(s34, o3);
        X[4] = satSub16(s34, o3);

        for (int r = 0; r < 8; ++r)
            blk[r * 8 + col] = X[r];
    }
}

void
transposeRef(int16_t *blk)
{
    for (int r = 0; r < 8; ++r) {
        for (int c = r + 1; c < 8; ++c)
            std::swap(blk[r * 8 + c], blk[c * 8 + r]);
    }
}

} // namespace

void
dct8x8Ref(const int16_t *in, int16_t *out)
{
    int16_t tmp[64];
    for (int i = 0; i < 64; ++i)
        tmp[i] = in[i];
    dctColumnsRef(tmp);
    transposeRef(tmp);
    dctColumnsRef(tmp);
    transposeRef(tmp);
    for (int i = 0; i < 64; ++i)
        out[i] = tmp[i];
}

void
idct8x8Ref(const int16_t *in, int16_t *out)
{
    int16_t tmp[64];
    for (int i = 0; i < 64; ++i)
        tmp[i] = in[i];
    idctColumnsRef(tmp);
    transposeRef(tmp);
    idctColumnsRef(tmp);
    transposeRef(tmp);
    for (int i = 0; i < 64; ++i)
        out[i] = tmp[i];
}

} // namespace momsim::workloads
