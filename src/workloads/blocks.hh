/**
 * @file
 * The 8x8 block kernels shared by the video codecs (MPEG-2 and JPEG),
 * written once as templates over the dual vector backend:
 *
 *  - forward DCT (Chen even/odd butterfly decomposition, Q15 constants,
 *    each 1-D pass scales by 1/2 — the inverse undoes it exactly);
 *  - inverse DCT (DCT-III flowgraph with the same constants);
 *  - quantization by reciprocal multiply, dequantization by multiply;
 *  - motion-compensated reconstruction (add residual + clamp to u8).
 *
 * Blocks are 8x8 int16 arrays with a 16-byte row pitch (128 bytes per
 * block). Under the MMX backend one invocation processes one block;
 * under the MOM backend one invocation processes a whole batch of
 * consecutive blocks (the stream dimension).
 *
 * A scalar host-side reference (dct8x8Ref / idct8x8Ref) implements the
 * identical arithmetic for the test suite to diff against.
 */

#ifndef MOMSIM_WORKLOADS_BLOCKS_HH
#define MOMSIM_WORKLOADS_BLOCKS_HH

#include <algorithm>
#include <array>
#include <cstdint>

#include "workloads/backend.hh"

namespace momsim::workloads
{

/** Bytes between consecutive 8x8 int16 blocks (8 rows x 16 B pitch). */
constexpr int kBlockBytes = 128;

/** Q15 cosine constants for the Chen butterflies. */
struct DctConsts
{
    static constexpr int16_t c1 = 32138;    // cos(1*pi/16) * 32768
    static constexpr int16_t c2 = 30274;
    static constexpr int16_t c3 = 27246;
    static constexpr int16_t c4 = 23170;
    static constexpr int16_t c5 = 18205;
    static constexpr int16_t c6 = 12540;
    static constexpr int16_t c7 = 6393;
};

/** Host reference: one 8x8 forward DCT over int16 (same arithmetic). */
void dct8x8Ref(const int16_t *in, int16_t *out);

/** Host reference: matching inverse DCT. */
void idct8x8Ref(const int16_t *in, int16_t *out);

namespace detail
{

/** mulc(x, c) = (x * c) >> 16 per lane — matches pmulhw semantics. */
inline int16_t
mulcRef(int16_t x, int16_t c)
{
    return static_cast<int16_t>((static_cast<int32_t>(x) * c) >> 16);
}

/**
 * One 1-D forward pass over a column group of 8 vectors (vector lane i
 * is column i); outputs overwrite the input array.
 */
template <class B>
void
dctColumnPass(B &b, std::array<typename B::Vec, 8> &x)
{
    using V = typename B::Vec;
    MVal C1 = b.constW(DctConsts::c1);
    MVal C2 = b.constW(DctConsts::c2);
    MVal C3 = b.constW(DctConsts::c3);
    MVal C4 = b.constW(DctConsts::c4);
    MVal C5 = b.constW(DctConsts::c5);
    MVal C6 = b.constW(DctConsts::c6);
    MVal C7 = b.constW(DctConsts::c7);

    V s07 = b.adds(x[0], x[7]), d07 = b.subs(x[0], x[7]);
    V s16 = b.adds(x[1], x[6]), d16 = b.subs(x[1], x[6]);
    V s25 = b.adds(x[2], x[5]), d25 = b.subs(x[2], x[5]);
    V s34 = b.adds(x[3], x[4]), d34 = b.subs(x[3], x[4]);

    V a = b.adds(s07, s34), c = b.subs(s07, s34);
    V bb = b.adds(s16, s25), d = b.subs(s16, s25);

    x[0] = b.mulhC(b.adds(a, bb), C4);
    x[4] = b.mulhC(b.subs(a, bb), C4);
    x[2] = b.adds(b.mulhC(c, C2), b.mulhC(d, C6));
    x[6] = b.subs(b.mulhC(c, C6), b.mulhC(d, C2));

    x[1] = b.adds(b.adds(b.mulhC(d07, C1), b.mulhC(d16, C3)),
                  b.adds(b.mulhC(d25, C5), b.mulhC(d34, C7)));
    x[3] = b.subs(b.subs(b.mulhC(d07, C3), b.mulhC(d16, C7)),
                  b.adds(b.mulhC(d25, C1), b.mulhC(d34, C5)));
    x[5] = b.adds(b.subs(b.mulhC(d07, C5), b.mulhC(d16, C1)),
                  b.adds(b.mulhC(d25, C7), b.mulhC(d34, C3)));
    x[7] = b.adds(b.subs(b.mulhC(d07, C7), b.mulhC(d16, C5)),
                  b.subs(b.mulhC(d25, C3), b.mulhC(d34, C1)));
}

/** One 1-D inverse (DCT-III) pass; exact inverse of dctColumnPass. */
template <class B>
void
idctColumnPass(B &b, std::array<typename B::Vec, 8> &X)
{
    using V = typename B::Vec;
    MVal C1 = b.constW(DctConsts::c1);
    MVal C2 = b.constW(DctConsts::c2);
    MVal C3 = b.constW(DctConsts::c3);
    MVal C4 = b.constW(DctConsts::c4);
    MVal C5 = b.constW(DctConsts::c5);
    MVal C6 = b.constW(DctConsts::c6);
    MVal C7 = b.constW(DctConsts::c7);

    V a = b.mulhC(X[0], C4);
    V bb = b.mulhC(X[4], C4);
    V e0 = b.adds(a, bb), e1 = b.subs(a, bb);
    V c = b.adds(b.mulhC(X[2], C2), b.mulhC(X[6], C6));
    V d = b.subs(b.mulhC(X[2], C6), b.mulhC(X[6], C2));

    V s07 = b.adds(e0, c), s34 = b.subs(e0, c);
    V s16 = b.adds(e1, d), s25 = b.subs(e1, d);

    V o0 = b.adds(b.adds(b.mulhC(X[1], C1), b.mulhC(X[3], C3)),
                  b.adds(b.mulhC(X[5], C5), b.mulhC(X[7], C7)));
    V o1 = b.subs(b.subs(b.mulhC(X[1], C3), b.mulhC(X[3], C7)),
                  b.adds(b.mulhC(X[5], C1), b.mulhC(X[7], C5)));
    V o2 = b.adds(b.subs(b.mulhC(X[1], C5), b.mulhC(X[3], C1)),
                  b.adds(b.mulhC(X[5], C7), b.mulhC(X[7], C3)));
    V o3 = b.adds(b.subs(b.mulhC(X[1], C7), b.mulhC(X[3], C5)),
                  b.subs(b.mulhC(X[5], C3), b.mulhC(X[7], C1)));

    // No rescale needed: the forward pass's mulc halving cancels inside
    // the inverse butterfly (s07' = s07/2, o0 = d07/2, and their sum is
    // exactly x0).
    X[0] = b.adds(s07, o0);
    X[7] = b.subs(s07, o0);
    X[1] = b.adds(s16, o1);
    X[6] = b.subs(s16, o1);
    X[2] = b.adds(s25, o2);
    X[5] = b.subs(s25, o2);
    X[3] = b.adds(s34, o3);
    X[4] = b.subs(s34, o3);
}

/** 4x4 halfword transpose of four vectors (classic unpack ladder). */
template <class B>
void
transpose4(B &b, typename B::Vec &a0, typename B::Vec &a1,
           typename B::Vec &a2, typename B::Vec &a3)
{
    using V = typename B::Vec;
    V t0 = b.unpcklwd(a0, a1);
    V t1 = b.unpckhwd(a0, a1);
    V t2 = b.unpcklwd(a2, a3);
    V t3 = b.unpckhwd(a2, a3);
    a0 = b.unpckldq(t0, t2);
    a1 = b.unpckhdq(t0, t2);
    a2 = b.unpckldq(t1, t3);
    a3 = b.unpckhdq(t1, t3);
}

/** Full 8x8 transpose over the lo/hi column-group vectors. */
template <class B>
void
transpose8x8(B &b, std::array<typename B::Vec, 8> &lo,
             std::array<typename B::Vec, 8> &hi)
{
    // Quadrants: [lo rows0-3] [hi rows0-3; lo rows4-7] [hi rows4-7].
    transpose4(b, lo[0], lo[1], lo[2], lo[3]);      // Q00 in place
    transpose4(b, hi[4], hi[5], hi[6], hi[7]);      // Q11 in place
    transpose4(b, hi[0], hi[1], hi[2], hi[3]);      // Q01 -> new Q10
    transpose4(b, lo[4], lo[5], lo[6], lo[7]);      // Q10 -> new Q01
    for (int i = 0; i < 4; ++i)
        std::swap(hi[i], lo[i + 4]);
}

} // namespace detail

/**
 * Forward 8x8 DCT over one batch of blocks at @p src, writing @p dst
 * (both int16, 16-byte pitch; batch geometry set by b.beginBatch()).
 */
template <class B>
void
dct8x8(B &b, IVal src, IVal dst)
{
    std::array<typename B::Vec, 8> lo, hi;
    for (int r = 0; r < 8; ++r) {
        lo[static_cast<size_t>(r)] = b.load(src, r * 16);
        hi[static_cast<size_t>(r)] = b.load(src, r * 16 + 8);
    }
    detail::dctColumnPass(b, lo);
    detail::dctColumnPass(b, hi);
    detail::transpose8x8(b, lo, hi);
    detail::dctColumnPass(b, lo);
    detail::dctColumnPass(b, hi);
    detail::transpose8x8(b, lo, hi);
    for (int r = 0; r < 8; ++r) {
        b.store(dst, r * 16, lo[static_cast<size_t>(r)]);
        b.store(dst, r * 16 + 8, hi[static_cast<size_t>(r)]);
    }
}

/** Inverse 8x8 DCT (same geometry). */
template <class B>
void
idct8x8(B &b, IVal src, IVal dst)
{
    std::array<typename B::Vec, 8> lo, hi;
    for (int r = 0; r < 8; ++r) {
        lo[static_cast<size_t>(r)] = b.load(src, r * 16);
        hi[static_cast<size_t>(r)] = b.load(src, r * 16 + 8);
    }
    detail::idctColumnPass(b, lo);
    detail::idctColumnPass(b, hi);
    detail::transpose8x8(b, lo, hi);
    detail::idctColumnPass(b, lo);
    detail::idctColumnPass(b, hi);
    detail::transpose8x8(b, lo, hi);
    for (int r = 0; r < 8; ++r) {
        b.store(dst, r * 16, lo[static_cast<size_t>(r)]);
        b.store(dst, r * 16 + 8, hi[static_cast<size_t>(r)]);
    }
}

/** Host reference for the quantizer: sign(x) * ((|x| * r) >> 16). */
inline int16_t
quantRef(int16_t x, int16_t recip)
{
    int16_t mag = satAbs16(x);
    int16_t level = detail::mulcRef(mag, recip);
    return x < 0 ? static_cast<int16_t>(-level) : level;
}

/**
 * Quantize a batch of DCT blocks: level = sign(X)*((|X| * recip[pos])
 * >> 16), reciprocal table packed per 4-lane group (16 qwords / block).
 */
template <class B>
void
quantBlock(B &b, IVal src, IVal dst, IVal recipTable)
{
    typename B::Vec zero = b.zeroVec();
    for (int g = 0; g < 16; ++g) {
        typename B::Vec x = b.load(src, g * 8);
        typename B::Vec mag = b.absW(zero, x);
        typename B::Vec level =
            b.mulh(mag, b.loadShared(recipTable, g * 8));
        typename B::Vec neg = b.cmpgt(zero, x);
        typename B::Vec signedLevel =
            b.select(neg, b.sub(zero, level), level);
        b.store(dst, g * 8, signedLevel);
    }
}

/** Dequantize: X = level * q[pos] (pmullw semantics). */
template <class B>
void
dequantBlock(B &b, IVal src, IVal dst, IVal qTable)
{
    for (int g = 0; g < 16; ++g) {
        typename B::Vec x = b.load(src, g * 8);
        x = b.mullw(x, b.loadShared(qTable, g * 8));
        b.store(dst, g * 8, x);
    }
}

/**
 * Reconstruct one row group: out_u8 = clamp(pred_u8 + residual_s16).
 * One invocation covers a batch of rows (MOM: the whole 8x8 block with
 * pixel stride = image pitch and residual stride = 16; MMX: one row,
 * the caller loops). Displacements are relative to the row base.
 */
template <class B>
void
addClampRow(B &b, IVal pred, IVal residual, IVal out)
{
    for (int half = 0; half < 2; ++half) {
        typename B::Vec p = b.loadPixels4(pred, half * 4);
        typename B::Vec d = b.load(residual, half * 8);
        typename B::Vec sum = b.adds(p, d);
        b.storePixels4(out, half * 4, sum);
    }
}

/** Extract one row group of residuals: blk_s16 = cur_u8 - pred_u8. */
template <class B>
void
extractDiffRow(B &b, IVal cur, IVal pred, IVal blk)
{
    for (int half = 0; half < 2; ++half) {
        typename B::Vec c = b.loadPixels4(cur, half * 4);
        typename B::Vec p = b.loadPixels4(pred, half * 4);
        b.store(blk, half * 8, b.subs(c, p));
    }
}

/** Copy one row group of pixels (uncoded-block reconstruction). */
template <class B>
void
copyPixelRow(B &b, IVal src, IVal dst)
{
    for (int half = 0; half < 2; ++half) {
        typename B::Vec p = b.loadPixels4(src, half * 4);
        b.storePixels4(dst, half * 4, p);
    }
}

/**
 * Row-kernel driver: runs @p rowFn over the 8 rows of one 8x8 block.
 * Under MOM one batched invocation covers all rows (pixel stride =
 * @p pitch, residual stride = 16); under MMX the driver emits the
 * classic per-row loop with address updates and a backward branch.
 */
template <class B, typename RowFn>
void
forEachBlockRow(B &b, ScalarEmitter &s, IVal pixA, IVal pixB, IVal blk,
                int pitch, RowFn rowFn)
{
    if (B::kIsStream) {
        b.beginBatch(8, 16, pitch);
        rowFn(b, pixA, pixB, blk);
        return;
    }
    b.beginBatch(1, 16, pitch);
    IVal a = s.copy(pixA);
    IVal c = s.copy(pixB);
    IVal blkRow = s.copy(blk);
    IVal rows = s.imm(8);
    uint32_t head = s.loopHead();
    for (int r = 0; r < 8; ++r) {
        rowFn(b, a, c, blkRow);
        a = s.addi(a, pitch);
        c = s.addi(c, pitch);
        blkRow = s.addi(blkRow, 16);
        rows = s.subi(rows, 1);
        s.loopBack(head, rows, r + 1 < 8);
    }
}

/**
 * Block-sweep driver: runs @p blockFn over @p nBlocks consecutive
 * 128-byte blocks starting at @p src / @p dst. MOM covers up to 16
 * blocks per invocation; MMX emits the per-block loop.
 */
template <class B, typename BlockFn>
void
forEachBlock(B &b, ScalarEmitter &s, uint32_t src, uint32_t dst,
             int nBlocks, BlockFn blockFn)
{
    int batch = B::kIsStream ? 16 : 1;
    IVal pa = s.imm(static_cast<int32_t>(src));
    IVal pb = s.imm(static_cast<int32_t>(dst));
    IVal count = s.imm((nBlocks + batch - 1) / batch);
    uint32_t head = s.loopHead();
    for (int start = 0; start < nBlocks; start += batch) {
        int n = std::min(batch, nBlocks - start);
        b.beginBatch(n, kBlockBytes);
        blockFn(b, pa, pb);
        pa = s.addi(pa, n * kBlockBytes);
        pb = s.addi(pb, n * kBlockBytes);
        count = s.subi(count, 1);
        s.loopBack(head, count, start + batch < nBlocks);
    }
}

} // namespace momsim::workloads

#endif // MOMSIM_WORKLOADS_BLOCKS_HH
