#include "workloads/gsm.hh"

#include <cmath>

#include "common/fixed.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/codec_ctx.hh"
#include "workloads/video_common.hh"

namespace momsim::workloads
{

namespace
{

constexpr int kFrame = 160;
constexpr int kSub = 40;
constexpr int kOrder = 8;
constexpr int kMinLag = 40;
constexpr int kMaxLag = 120;
constexpr int16_t kGainLevels[4] = { 3277, 11469, 21299, 32767 }; // Q15

/** Deterministic voiced-speech-like source: pitch pulses + formants. */
std::vector<int16_t>
makeSpeech(int frames, uint64_t seed)
{
    Rng rng(seed);
    int n = frames * kFrame;
    std::vector<int16_t> out(static_cast<size_t>(n));
    double f1 = 0.031, f2 = 0.094;
    int pitch = 72;
    double env = 0.0;
    for (int i = 0; i < n; ++i) {
        double t = static_cast<double>(i);
        env = 0.999 * env + ((i % (kFrame * 8)) < kFrame * 6 ? 0.002 : 0.0);
        double pulse = (i % pitch) < 3 ? 1.0 : 0.0;
        double v = 1200.0 * std::sin(2 * 3.14159265 * f1 * t) +
                   700.0 * std::sin(2 * 3.14159265 * f2 * t + 1.1) +
                   900.0 * pulse;
        v *= 0.4 + env;
        v += static_cast<double>(rng.range(-60, 60));
        out[static_cast<size_t>(i)] = satS16(static_cast<int32_t>(v * 0.9));
    }
    return out;
}

/**
 * Vectorized dot product of two int16 buffers of length 40 (one LTP
 * window): PMADDWD loop under MMX, a single ACCMAC stream under MOM.
 */
IVal
dot40(CodecCtx &ctx, isa::SimdIsa simd, IVal a, IVal b)
{
    ScalarEmitter &s = ctx.s;
    if (simd == isa::SimdIsa::Mom) {
        MomEmitter &mv = ctx.mv;
        if (mv.curLen() != 10)
            mv.setLen(s.imm(10));
        trace::SVal va = mv.loadQ(a, 0, 8);
        trace::SVal vb = mv.loadQ(b, 0, 8);
        mv.clrAcc(0);
        mv.accMacQH(0, va, vb);
        // Sum the four accumulator lanes through the scalar unit.
        trace::MVal dw = mv.raccDW(0);
        IVal lo = ctx.mx.movdfm(dw);
        IVal hi = ctx.mx.movdfm(mv.raccDW(0));
        (void)hi;
        // Host truth: full 4-lane sum; the extra ops above model the
        // 2-step readout.
        int64_t total = 0;
        // recompute host-side from the stream values
        for (int e = 0; e < 10; ++e) {
            for (int l = 0; l < 4; ++l) {
                total += static_cast<int64_t>(
                             trace::laneW(va.e[static_cast<size_t>(e)], l)) *
                         trace::laneW(vb.e[static_cast<size_t>(e)], l);
            }
        }
        return { static_cast<int32_t>(total), lo.reg };
    }
    MmxEmitter &mx = ctx.mx;
    trace::MVal acc = mx.zero();
    IVal pa = s.copy(a), pb = s.copy(b);
    IVal cnt = s.imm(10);
    uint32_t head = s.loopHead();
    int64_t total = 0;
    for (int q = 0; q < 10; ++q) {
        trace::MVal va = mx.loadQ(pa, 0);
        trace::MVal vb = mx.loadQ(pb, 0);
        for (int l = 0; l < 4; ++l) {
            total += static_cast<int64_t>(trace::laneW(va.v, l)) *
                     trace::laneW(vb.v, l);
        }
        acc = mx.paddd(acc, mx.pmaddwd(va, vb));
        pa = s.addi(pa, 8);
        pb = s.addi(pb, 8);
        cnt = s.subi(cnt, 1);
        s.loopBack(head, cnt, q + 1 < 10);
    }
    // Horizontal 32-bit add: unpack-high + add + extract.
    trace::MVal hi = mx.punpckhdq(acc, acc);
    trace::MVal sum = mx.paddd(acc, hi);
    IVal res = mx.movdfm(sum);
    return { static_cast<int32_t>(total), res.reg };
}

/** Emitted-cost Schur recursion; returns Q15 reflection coefficients. */
std::vector<int32_t>
schur(CodecCtx &ctx, const int64_t *r)
{
    ScalarEmitter &s = ctx.s;
    std::vector<int32_t> refl(kOrder, 0);
    // Normalize r to Q15 relative to r[0].
    if (r[0] == 0)
        return refl;
    double p[kOrder + 1];
    for (int i = 0; i <= kOrder; ++i)
        p[i] = static_cast<double>(r[i]);
    double err = p[0];
    double a[kOrder + 1][kOrder + 1] = {};
    for (int m = 1; m <= kOrder; ++m) {
        double acc = p[m];
        for (int j = 1; j < m; ++j)
            acc -= a[m - 1][j] * p[m - j];
        double km = err > 1e-9 ? acc / err : 0.0;
        km = std::max(-0.98, std::min(0.98, km));
        a[m][m] = km;
        for (int j = 1; j < m; ++j)
            a[m][j] = a[m - 1][j] - km * a[m - 1][m - j];
        err *= (1.0 - km * km);
        refl[static_cast<size_t>(m - 1)] =
            static_cast<int32_t>(km * 32767.0);
        // Emitted cost of one recursion step: one divide plus the
        // inner-product update.
        IVal num = s.imm(static_cast<int32_t>(acc / 1024.0));
        IVal den = s.imm(std::max(1, static_cast<int32_t>(err / 1024.0)));
        IVal q = s.div(num, den);
        for (int j = 1; j < m; ++j) {
            IVal t = s.mul(q, s.imm(refl[static_cast<size_t>(j - 1)]));
            s.srai(t, 15);
        }
    }
    return refl;
}

/** Quantize a Q15 reflection coefficient to a 7-bit LAR-style code. */
int
quantLar(int32_t q15)
{
    int v = (q15 >> 9) + 64;
    return std::max(0, std::min(127, v));
}

int32_t
dequantLar(int code)
{
    // Multiply rather than shift: code < 64 makes the operand negative,
    // and left-shifting a negative value is UB before C++20.
    return static_cast<int32_t>((code - 64) * 512);
}

struct GsmMem
{
    uint32_t samples;       ///< current frame, int16 x 160
    uint32_t resid;         ///< short-term residual, int16 x 160
    uint32_t history;       ///< past residual ring, int16 x (120+160)
    uint32_t excite;        ///< LTP-removed excitation
    uint32_t outBuf;        ///< decoder output frame
    uint32_t bitBuf;
};

GsmMem
allocGsm(CodecCtx &ctx)
{
    GsmMem m;
    m.samples = ctx.tb.alloc(kFrame * 2, 64);
    m.resid = ctx.tb.alloc(kFrame * 2, 64);
    m.history = ctx.tb.alloc((kMaxLag + kFrame) * 2, 64);
    m.excite = ctx.tb.alloc(kFrame * 2, 64);
    m.outBuf = ctx.tb.alloc(kFrame * 2, 64);
    m.bitBuf = ctx.tb.alloc(1u << 17, 64);
    return m;
}

/**
 * Lattice filter step cost, emitted per sample per stage. Host-side
 * math runs in int32 Q15 (the same arithmetic for analysis and
 * synthesis keeps the round trip coherent).
 */
void
emitLatticeStage(ScalarEmitter &s, IVal r, IVal d, IVal u)
{
    IVal t = s.mul(r, u);
    t = s.srai(t, 15);
    s.sub(d, t);
    IVal t2 = s.mul(r, d);
    t2 = s.srai(t2, 15);
    s.add(u, t2);
}

} // namespace

trace::Program
buildGsmEncoder(isa::SimdIsa simd, uint32_t base, const GsmConfig &cfg,
                GsmStream *out)
{
    CodecCtx ctx("gsmenc", simd, base, 1u << 20);
    ScalarEmitter &s = ctx.s;
    GsmMem mem = allocGsm(ctx);

    std::vector<int16_t> speech = makeSpeech(cfg.frames, cfg.seed);
    if (out)
        out->input = speech;

    VlcWriter vlc(s, mem.bitBuf);
    vlc.put(static_cast<uint32_t>(cfg.frames), 16);

    // Persistent filter / predictor state (host side mirrors emitted).
    std::vector<int32_t> hist(kMaxLag + kFrame, 0);    // residual history
    int32_t preZ = 0;

    for (int f = 0; f < cfg.frames; ++f) {
        // ---- load + preemphasis ----
        s.call("preprocess", 2048);
        std::vector<int32_t> x(kFrame);
        for (int i = 0; i < kFrame; ++i) {
            int32_t raw = speech[static_cast<size_t>(f * kFrame + i)] / 2;
            int32_t pre = raw - ((preZ * 28180) >> 15);
            preZ = raw;
            x[static_cast<size_t>(i)] = satS16(pre);
            ctx.tb.poke16(mem.samples + static_cast<uint32_t>(i * 2),
                          static_cast<uint16_t>(satS16(pre)));
        }
        {
            IVal p = s.imm(static_cast<int32_t>(mem.samples));
            IVal n = s.imm(kFrame);
            uint32_t head = s.loopHead();
            for (int i = 0; i < kFrame; ++i) {
                IVal v = s.loadS16(p, i * 2);
                IVal t = s.srai(s.muli(v, 28180), 15);
                s.sub(v, t);
                n = s.subi(n, 1);
                s.loopBack(head, n, i + 1 < kFrame);
            }
        }
        s.ret();

        // ---- autocorrelation (vectorized) + Schur ----
        s.call("lpc_analysis", 2048);
        int64_t r[kOrder + 1];
        for (int k = 0; k <= kOrder; ++k) {
            int64_t acc = 0;
            for (int i = 0; i < kFrame - k; ++i) {
                acc += static_cast<int64_t>(x[static_cast<size_t>(i)]) *
                       x[static_cast<size_t>(i + k)];
            }
            r[k] = acc;
            // Emitted: four dot40 windows cover the 160-sample frame.
            IVal pa = s.imm(static_cast<int32_t>(mem.samples));
            IVal pb = s.imm(static_cast<int32_t>(
                mem.samples + static_cast<uint32_t>(2 * k)));
            IVal acc0 = dot40(ctx, simd, pa, pb);
            for (int wdw = 1; wdw < 4; ++wdw) {
                IVal qa = s.addi(pa, wdw * kSub * 2);
                IVal qb = s.addi(pb, wdw * kSub * 2);
                IVal part = dot40(ctx, simd, qa, qb);
                acc0 = s.add(acc0, part);
            }
        }
        std::vector<int32_t> refl = schur(ctx, r);
        for (int k = 0; k < kOrder; ++k) {
            int lar = quantLar(refl[static_cast<size_t>(k)]);
            vlc.put(static_cast<uint32_t>(lar), 7);
            refl[static_cast<size_t>(k)] = dequantLar(lar);
        }
        s.ret();

        // ---- short-term analysis lattice (serial) ----
        s.call("st_analysis", 2048);
        std::vector<int32_t> d(kFrame);
        {
            std::vector<int32_t> u(kOrder, 0);
            IVal rc[kOrder];
            for (int k = 0; k < kOrder; ++k)
                rc[k] = s.imm(refl[static_cast<size_t>(k)]);
            IVal sp = s.imm(static_cast<int32_t>(mem.samples));
            IVal rp = s.imm(static_cast<int32_t>(mem.resid));
            IVal n = s.imm(kFrame);
            uint32_t head = s.loopHead();
            for (int i = 0; i < kFrame; ++i) {
                int32_t di = x[static_cast<size_t>(i)];
                IVal dv = s.loadS16(sp, i * 2);
                for (int k = 0; k < kOrder; ++k) {
                    int32_t rk = refl[static_cast<size_t>(k)];
                    int32_t uk = u[static_cast<size_t>(k)];
                    int32_t dNew = satS16(di - ((rk * uk) >> 15));
                    u[static_cast<size_t>(k)] =
                        satS16(uk + ((rk * dNew) >> 15));
                    di = dNew;
                    emitLatticeStage(s, rc[k], dv, dv);
                }
                d[static_cast<size_t>(i)] = di;
                s.storeI16(rp, i * 2, dv);
                ctx.tb.poke16(mem.resid + static_cast<uint32_t>(i * 2),
                              static_cast<uint16_t>(satS16(di)));
                n = s.subi(n, 1);
                s.loopBack(head, n, i + 1 < kFrame);
            }
        }
        s.ret();

        // ---- per-subframe LTP + RPE ----
        for (int sub = 0; sub < 4; ++sub) {
            s.call("ltp_rpe", 2048);
            int off = sub * kSub;
            // Refresh the emitted history buffer (hist[kMaxLag + i]
            // holds this frame's residual as it is consumed).
            for (int i = 0; i < kSub; ++i) {
                ctx.tb.poke16(mem.history + static_cast<uint32_t>(
                                  (kMaxLag + off + i) * 2),
                              static_cast<uint16_t>(satS16(
                                  hist[static_cast<size_t>(
                                      kMaxLag + off + i)] =
                                      d[static_cast<size_t>(off + i)])));
            }

            // Lag search maximizing cross-correlation (vectorized dots).
            int bestLag = kMinLag;
            int64_t bestCorr = INT64_MIN;
            IVal dsub = s.imm(static_cast<int32_t>(
                mem.history + static_cast<uint32_t>((kMaxLag + off) * 2)));
            IVal bestIv = s.imm(0);
            for (int lag = kMinLag; lag <= kMaxLag; ++lag) {
                IVal past = s.imm(static_cast<int32_t>(
                    mem.history + static_cast<uint32_t>(
                        (kMaxLag + off - lag) * 2)));
                IVal corr = dot40(ctx, simd, dsub, past);
                int64_t hc = 0;
                for (int i = 0; i < kSub; ++i) {
                    hc += static_cast<int64_t>(
                              hist[static_cast<size_t>(kMaxLag + off + i)]) *
                          hist[static_cast<size_t>(kMaxLag + off + i - lag)];
                }
                IVal gt = s.cmplt(bestIv, corr);
                s.condBr(gt, hc > bestCorr);
                bestIv = s.cmovne(gt, corr, bestIv);
                if (hc > bestCorr) {
                    bestCorr = hc;
                    bestLag = lag;
                }
            }
            // Gain = corr / energy, quantized to 2 bits.
            int64_t energy = 1;
            for (int i = 0; i < kSub; ++i) {
                int32_t past = hist[static_cast<size_t>(
                    kMaxLag + off + i - bestLag)];
                energy += static_cast<int64_t>(past) * past;
            }
            double gain = static_cast<double>(bestCorr) /
                          static_cast<double>(energy);
            int gainIdx = 0;
            double bestDist = 1e30;
            for (int gi = 0; gi < 4; ++gi) {
                double lvl = kGainLevels[gi] / 32768.0;
                double dist = std::fabs(gain - lvl);
                if (dist < bestDist) {
                    bestDist = dist;
                    gainIdx = gi;
                }
            }
            IVal den = s.imm(std::max(1,
                static_cast<int32_t>(energy >> 12)));
            s.div(bestIv, den);
            vlc.put(static_cast<uint32_t>(bestLag - kMinLag), 7);
            vlc.put(static_cast<uint32_t>(gainIdx), 2);

            // Excitation e = d - gain * past (emitted scalar loop).
            int32_t g = kGainLevels[gainIdx];
            std::vector<int32_t> e(kSub);
            {
                IVal gv = s.imm(g);
                IVal ep = s.imm(static_cast<int32_t>(mem.excite));
                IVal n = s.imm(kSub);
                uint32_t head = s.loopHead();
                for (int i = 0; i < kSub; ++i) {
                    int32_t past = hist[static_cast<size_t>(
                        kMaxLag + off + i - bestLag)];
                    e[static_cast<size_t>(i)] = satS16(
                        d[static_cast<size_t>(off + i)] -
                        ((g * past) >> 15));
                    IVal pv = s.loadS16(dsub, i * 2);
                    IVal sc = s.srai(s.mul(pv, gv), 15);
                    IVal ev = s.sub(pv, sc);
                    s.storeI16(ep, i * 2, ev);
                    n = s.subi(n, 1);
                    s.loopBack(head, n, i + 1 < kSub);
                }
            }

            // RPE: pick the strongest of 3 decimation phases.
            int bestPhase = 0;
            int64_t bestEn = -1;
            for (int p = 0; p < 3; ++p) {
                int64_t en = 0;
                IVal acc = s.imm(0);
                for (int i = p; i < kSub; i += 3) {
                    int32_t v = e[static_cast<size_t>(i)];
                    en += static_cast<int64_t>(v) * v;
                    IVal ev = s.imm(v);
                    acc = s.add(acc, s.srai(s.mul(ev, ev), 4));
                }
                s.condBr(acc, en > bestEn);
                if (en > bestEn) {
                    bestEn = en;
                    bestPhase = p;
                }
            }
            // APCM: 6-bit block scale + 3-bit samples.
            int32_t maxAbs = 1;
            for (int i = bestPhase; i < kSub; i += 3)
                maxAbs = std::max(maxAbs,
                                  std::abs(e[static_cast<size_t>(i)]));
            int scaleBits = 0;
            while ((maxAbs >> scaleBits) > 3 && scaleBits < 14)
                ++scaleBits;
            vlc.put(static_cast<uint32_t>(bestPhase), 2);
            vlc.put(static_cast<uint32_t>(scaleBits), 4);
            std::vector<int32_t> erec(kSub, 0);
            for (int i = bestPhase; i < kSub; i += 3) {
                int32_t q = e[static_cast<size_t>(i)] >> scaleBits;
                q = std::max(-4, std::min(3, q));
                vlc.put(static_cast<uint32_t>(q + 4), 3);
                IVal ev = s.imm(e[static_cast<size_t>(i)]);
                s.srai(ev, scaleBits);
                // q can be negative; multiply instead of shifting (UB
                // on negative operands before C++20).
                erec[static_cast<size_t>(i)] =
                    satS16(q * (1 << scaleBits));
            }

            // Feedback: rebuild this subframe's residual as the decoder
            // will see it, and roll the history window.
            for (int i = 0; i < kSub; ++i) {
                int32_t past = hist[static_cast<size_t>(
                    kMaxLag + off + i - bestLag)];
                int32_t rec = satS16(((g * past) >> 15) +
                                     erec[static_cast<size_t>(i)]);
                hist[static_cast<size_t>(kMaxLag + off + i)] = rec;
                ctx.tb.poke16(mem.history + static_cast<uint32_t>(
                                  (kMaxLag + off + i) * 2),
                              static_cast<uint16_t>(rec));
                IVal t = s.loadS16(dsub, i * 2);
                s.storeI16(dsub, i * 2, t);
            }
            s.ret();
        }

        // Roll history: keep the last kMaxLag reconstructed samples.
        for (int i = 0; i < kMaxLag; ++i) {
            hist[static_cast<size_t>(i)] =
                hist[static_cast<size_t>(kFrame + i)];
            ctx.tb.poke16(mem.history + static_cast<uint32_t>(i * 2),
                          static_cast<uint16_t>(satS16(
                              hist[static_cast<size_t>(i)])));
        }
    }

    vlc.alignByte();
    if (out) {
        out->cfg = cfg;
        out->bytes = vlc.writer().bytes();
        out->bitCount = vlc.bitCount();
    }
    return ctx.tb.take();
}

trace::Program
buildGsmDecoder(isa::SimdIsa simd, uint32_t base, const GsmStream &stream,
                GsmDecoded *out)
{
    const GsmConfig &cfg = stream.cfg;
    CodecCtx ctx("gsmdec", simd, base, 1u << 20);
    ScalarEmitter &s = ctx.s;
    GsmMem mem = allocGsm(ctx);

    ctx.tb.pokeBytes(mem.bitBuf, stream.bytes.data(),
                     static_cast<uint32_t>(stream.bytes.size()));
    VlcReader vlc(s, stream.bytes, mem.bitBuf);
    int frames = static_cast<int>(vlc.get(16));
    MOMSIM_ASSERT(frames == cfg.frames, "gsm header mismatch");

    std::vector<int32_t> hist(kMaxLag + kFrame, 0);
    std::vector<int32_t> u(kOrder, 0);
    int32_t deemZ = 0;
    if (out)
        out->samples.clear();

    for (int f = 0; f < frames; ++f) {
        s.call("gsm_decode_frame", 2048);
        int32_t refl[kOrder];
        for (int k = 0; k < kOrder; ++k)
            refl[k] = dequantLar(static_cast<int>(vlc.get(7)));

        std::vector<int32_t> d(kFrame, 0);
        for (int sub = 0; sub < 4; ++sub) {
            int off = sub * kSub;
            int lag = kMinLag + static_cast<int>(vlc.get(7));
            int gainIdx = static_cast<int>(vlc.get(2));
            int phase = static_cast<int>(vlc.get(2));
            int scaleBits = static_cast<int>(vlc.get(4));
            int32_t g = kGainLevels[gainIdx];
            std::vector<int32_t> erec(kSub, 0);
            for (int i = phase; i < kSub; i += 3) {
                int q = static_cast<int>(vlc.get(3)) - 4;
                erec[static_cast<size_t>(i)] =
                    satS16(q * (1 << scaleBits));  // q may be negative
                IVal ev = s.imm(q);
                s.slli(ev, scaleBits);
            }
            IVal gv = s.imm(g);
            for (int i = 0; i < kSub; ++i) {
                int32_t past = hist[static_cast<size_t>(
                    kMaxLag + off + i - lag)];
                int32_t rec = satS16(((g * past) >> 15) +
                                     erec[static_cast<size_t>(i)]);
                hist[static_cast<size_t>(kMaxLag + off + i)] = rec;
                d[static_cast<size_t>(off + i)] = rec;
                ctx.tb.poke16(mem.history + static_cast<uint32_t>(
                                  (kMaxLag + off + i) * 2),
                              static_cast<uint16_t>(rec));
                IVal pv = s.loadS16(s.imm(static_cast<int32_t>(
                    mem.history + static_cast<uint32_t>(
                        (kMaxLag + off + i - lag) * 2))), 0);
                IVal sc = s.srai(s.mul(pv, gv), 15);
                IVal rv = s.add(sc, s.imm(erec[static_cast<size_t>(i)]));
                s.storeI16(s.imm(static_cast<int32_t>(
                    mem.history + static_cast<uint32_t>(
                        (kMaxLag + off + i) * 2))), 0, rv);
            }
        }

        // Short-term synthesis lattice (inverse filter) + deemphasis.
        IVal rc[kOrder];
        for (int k = 0; k < kOrder; ++k)
            rc[k] = s.imm(refl[k]);
        IVal op = s.imm(static_cast<int32_t>(mem.outBuf));
        IVal n = s.imm(kFrame);
        uint32_t head = s.loopHead();
        for (int i = 0; i < kFrame; ++i) {
            int32_t acc = d[static_cast<size_t>(i)];
            IVal dv = s.imm(acc);
            for (int k = kOrder - 1; k >= 0; --k) {
                acc = satS16(acc + ((refl[k] * u[static_cast<size_t>(k)])
                                    >> 15));
                u[static_cast<size_t>(k)] = satS16(
                    u[static_cast<size_t>(k)] -
                    ((refl[k] * acc) >> 15));
                emitLatticeStage(s, rc[k], dv, dv);
            }
            // shift lattice memory
            for (int k = kOrder - 1; k > 0; --k)
                u[static_cast<size_t>(k)] = u[static_cast<size_t>(k - 1)];
            u[0] = acc;
            int32_t res = satS16(acc + ((deemZ * 28180) >> 15));
            deemZ = res;
            IVal dm = s.srai(s.muli(dv, 28180), 15);
            IVal ov = s.add(dv, dm);
            s.storeI16(op, i * 2, ov);
            ctx.tb.poke16(mem.outBuf + static_cast<uint32_t>(i * 2),
                          static_cast<uint16_t>(res));
            if (out)
                out->samples.push_back(satS16(res * 2));
            n = s.subi(n, 1);
            s.loopBack(head, n, i + 1 < kFrame);
        }
        // Roll history window.
        for (int i = 0; i < kMaxLag; ++i)
            hist[static_cast<size_t>(i)] =
                hist[static_cast<size_t>(kFrame + i)];
        s.ret();
    }
    (void)simd;
    return ctx.tb.take();
}

double
sampleCorrelation(const std::vector<int16_t> &a,
                  const std::vector<int16_t> &b)
{
    size_t n = std::min(a.size(), b.size());
    if (n == 0)
        return 0.0;
    double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
    for (size_t i = 0; i < n; ++i) {
        double x = a[i], y = b[i];
        sa += x;
        sb += y;
        saa += x * x;
        sbb += y * y;
        sab += x * y;
    }
    double num = sab - sa * sb / static_cast<double>(n);
    double den = std::sqrt((saa - sa * sa / static_cast<double>(n)) *
                           (sbb - sb * sb / static_cast<double>(n)));
    return den > 1e-9 ? num / den : 0.0;
}

} // namespace momsim::workloads
