/**
 * @file
 * Tests for the result-store subsystem: ResultRow serialize→parse
 * round-trips (every field, exact doubles), cache-key invalidation on
 * workload-fingerprint and schema changes, on-disk store persistence,
 * cost-weighted shard planning, and the end-to-end contracts the CI
 * shard-equivalence and warm-cache jobs also enforce: a sharded-and-
 * merged sweep is byte-identical to the unsharded run, and a warm
 * cache simulates zero points.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "driver/experiment.hh"
#include "driver/result_store.hh"
#include "driver/thread_pool.hh"
#include "tests/csv_test_util.hh"
#include "workloads/workload_repo.hh"

namespace momsim::driver
{
namespace
{

using isa::SimdIsa;

/** Constant-fingerprint planSweep inputs for unit tests. */
WorkloadFingerprintFn
constFp(uint64_t fp)
{
    return [fp](const std::string &) { return fp; };
}

SpecCostFn
defaultCost()
{
    return [](const ExperimentSpec &s) { return specCost(s); };
}

ResultRow
sampleRow()
{
    ResultRow row;
    row.id = "paper/MOM/8thr/decoupled/OC/win64";
    row.workload = "paper";
    row.simd = SimdIsa::Mom;
    row.threads = 8;
    row.memModel = mem::MemModel::Decoupled;
    row.policy = cpu::FetchPolicy::OCount;
    row.variant = "win64";
    row.seed = 0xdeadbeefcafef00dull;
    row.run.cycles = 123456789012ull;
    row.run.committedEq = 987654321098ull;
    row.run.ipc = 1.0 / 3.0;                // not representable in %.6g
    row.run.eipc = 0.1;
    row.run.l1HitRate = 0.98431529999999997;
    row.run.icacheHitRate = 1e-30;
    row.run.l1AvgLatency = 12345.678901234567;
    row.headline = 2.7182818284590452;
    row.run.mispredicts = 424242;
    row.run.condBranches = 8888888;
    row.run.completions = 8;
    row.run.hitCycleLimit = true;
    row.run.simKcps = 1234.5678901234567;   // schema v4 self-measurement
    row.run.wallMs = 1.0 / 7.0;
    row.wallMs = 555.0;                     // never serialized
    return row;
}

void
expectRowsBitIdentical(const ResultRow &a, const ResultRow &b)
{
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.simd, b.simd);
    EXPECT_EQ(a.threads, b.threads);
    EXPECT_EQ(a.memModel, b.memModel);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.variant, b.variant);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.committedEq, b.run.committedEq);
    // EXPECT_EQ on doubles is exact ==; %.17g must round-trip bits.
    EXPECT_EQ(a.run.ipc, b.run.ipc);
    EXPECT_EQ(a.run.eipc, b.run.eipc);
    EXPECT_EQ(a.headline, b.headline);
    EXPECT_EQ(a.run.l1HitRate, b.run.l1HitRate);
    EXPECT_EQ(a.run.icacheHitRate, b.run.icacheHitRate);
    EXPECT_EQ(a.run.l1AvgLatency, b.run.l1AvgLatency);
    EXPECT_EQ(a.run.mispredicts, b.run.mispredicts);
    EXPECT_EQ(a.run.condBranches, b.run.condBranches);
    EXPECT_EQ(a.run.completions, b.run.completions);
    EXPECT_EQ(a.run.hitCycleLimit, b.run.hitCycleLimit);
    EXPECT_EQ(a.run.simKcps, b.run.simKcps);
    EXPECT_EQ(a.run.wallMs, b.run.wallMs);
}

// ---------------------------------------------------------------------------
// Serialize / parse round-trip
// ---------------------------------------------------------------------------

TEST(ResultRowSerialization, RoundTripsEveryFieldExactly)
{
    ResultRow row = sampleRow();
    std::string line = serializeResultRow(row);
    ResultRow back;
    ASSERT_TRUE(parseResultRow(line, back)) << line;
    expectRowsBitIdentical(row, back);

    // Round-trip is a fixed point: serializing the parse reproduces
    // the identical line.
    EXPECT_EQ(serializeResultRow(back), line);
}

TEST(ResultRowSerialization, FloatsAreFiniteDecimalText)
{
    std::string line = serializeResultRow(sampleRow());
    EXPECT_EQ(line.find("nan"), std::string::npos);
    EXPECT_EQ(line.find("inf"), std::string::npos);
    EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(ResultRowSerialization, EscapedStringsSurvive)
{
    ResultRow row = sampleRow();
    row.id = "we\"ird,id";
    row.workload = "mix\"quote";
    row.variant = "line\nbreak\tand\\slash";
    ResultRow back;
    ASSERT_TRUE(parseResultRow(serializeResultRow(row), back));
    EXPECT_EQ(back.id, row.id);
    EXPECT_EQ(back.workload, row.workload);
    EXPECT_EQ(back.variant, row.variant);
}

TEST(ResultRowSerialization, RejectsMissingFieldsAndGarbage)
{
    ResultRow out;
    EXPECT_FALSE(parseResultRow("", out));
    EXPECT_FALSE(parseResultRow("{}", out));
    EXPECT_FALSE(parseResultRow("not json at all", out));

    std::string line = serializeResultRow(sampleRow());
    // Truncation loses the tail fields.
    EXPECT_FALSE(parseResultRow(line.substr(0, line.size() / 2), out));
    // Dropping one required field must fail, not default-fill.
    std::string noSeed = line;
    size_t pos = noSeed.find("\"seed\":");
    ASSERT_NE(pos, std::string::npos);
    size_t end = noSeed.find(',', pos);
    noSeed.erase(pos, end - pos + 1);
    EXPECT_FALSE(parseResultRow(noSeed, out));
}

TEST(ResultRowSerialization, RejectsForeignOrAbsentSchemaVersion)
{
    std::string line = serializeResultRow(sampleRow());
    ResultRow out;
    ASSERT_TRUE(parseResultRow(line, out));

    std::string old = line;
    size_t pos = old.find("\"schema\":");
    ASSERT_NE(pos, std::string::npos);
    old.replace(pos, strfmt("\"schema\":%d", kResultSchemaVersion).size(),
                "\"schema\":1");
    EXPECT_FALSE(parseResultRow(old, out));

    // Schema is a required field, not an optional check: a line with
    // no version at all must not parse as the current version.
    std::string stripped = line;
    size_t end = stripped.find(',', pos);
    ASSERT_NE(end, std::string::npos);
    stripped.erase(pos, end - pos + 1);
    EXPECT_FALSE(parseResultRow(stripped, out));
}

// ---------------------------------------------------------------------------
// Cache keys
// ---------------------------------------------------------------------------

ExperimentSpec
sampleSpec()
{
    SweepGrid grid;
    grid.isas({ SimdIsa::Mom }).threadCounts({ 8 });
    return grid.expand(7)[0];
}

TEST(ResultCacheKey, StableForIdenticalInputs)
{
    EXPECT_EQ(resultCacheKey(sampleSpec(), 0x1234),
              resultCacheKey(sampleSpec(), 0x1234));
}

TEST(ResultCacheKey, InvalidatedByWorkloadFingerprint)
{
    EXPECT_NE(resultCacheKey(sampleSpec(), 0x1234),
              resultCacheKey(sampleSpec(), 0x1235));
}

TEST(ResultCacheKey, InvalidatedByPerTaskSeed)
{
    // Rows record their seed, so a --seed 7 run must never replay rows
    // produced under a different base seed.
    SweepGrid grid;
    grid.isas({ SimdIsa::Mom }).threadCounts({ 8 });
    ExperimentSpec a = grid.expand(7)[0];
    ExperimentSpec b = grid.expand(8)[0];
    ASSERT_NE(a.seed, b.seed);
    EXPECT_NE(resultCacheKey(a, 1), resultCacheKey(b, 1));
}

TEST(ResultCacheKey, InvalidatedByRunLengthLimits)
{
    ExperimentSpec a = sampleSpec(), b = sampleSpec();
    b.maxCycles = a.maxCycles / 2;
    EXPECT_NE(resultCacheKey(a, 1), resultCacheKey(b, 1));
    ExperimentSpec c = sampleSpec();
    c.targetCompletions = 3;
    EXPECT_NE(resultCacheKey(a, 1), resultCacheKey(c, 1));
}

TEST(ResultCacheKey, InvalidatedByTweakParametersBehindSameLabel)
{
    // Editing a variant's tweak closure must invalidate cached rows
    // even when its label (and thus the canonical id) is unchanged.
    auto specWithWindow = [](int window) {
        ExperimentSpec s = sampleSpec();
        s.variant = "win";
        s.id = s.canonicalId();
        s.tweakCore = [window](cpu::CoreConfig &c) {
            c.windowPerThread = window;
        };
        return s;
    };
    ExperimentSpec a = specWithWindow(64), b = specWithWindow(16);
    ASSERT_EQ(a.id, b.id);
    EXPECT_NE(configFingerprint(a), configFingerprint(b));
    EXPECT_NE(resultCacheKey(a, 1), resultCacheKey(b, 1));

    ExperimentSpec c = sampleSpec();
    c.tweakMem = [](mem::MemConfig &m) { m.l1.numMshrs = 4; };
    EXPECT_NE(resultCacheKey(sampleSpec(), 1), resultCacheKey(c, 1));
}

TEST(ResultCacheKey, InvalidatedByWorkloadNameAndFingerprint)
{
    // The canonical id carries the workload name, so two mixes never
    // share a key even under a (hypothetically) colliding fingerprint.
    ExperimentSpec a = sampleSpec();
    ExperimentSpec b = a;
    b.workload = "mpeg2x8";
    b.id = b.canonicalId();
    EXPECT_NE(resultCacheKey(a, 1), resultCacheKey(b, 1));
}

TEST(ResultCacheKey, CarriesTheSchemaVersion)
{
    std::string key = resultCacheKey(sampleSpec(), 1);
    EXPECT_NE(key.find(strfmt("|v%d", kResultSchemaVersion)),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// ResultStore persistence
// ---------------------------------------------------------------------------

void
wipeStoreDir(const std::string &dir)
{
    std::remove((dir + "/" + ResultStore::kFileName).c_str());
}

TEST(ResultStore, PersistsAcrossReopen)
{
    const std::string dir = "test_result_store.persist";
    wipeStoreDir(dir);

    ResultRow row = sampleRow();
    {
        ResultStore store;
        ASSERT_TRUE(store.openDir(dir));
        EXPECT_EQ(store.size(), 0u);
        EXPECT_EQ(store.lookup("k1"), nullptr);
        store.put("k1", row);
        EXPECT_EQ(store.size(), 1u);
    }
    ResultStore reopened;
    ASSERT_TRUE(reopened.openDir(dir));
    ASSERT_EQ(reopened.size(), 1u);
    const ResultRow *hit = reopened.lookup("k1");
    ASSERT_NE(hit, nullptr);
    expectRowsBitIdentical(row, *hit);
}

TEST(ResultStore, LastPutWinsAndTruncatedTailIsIgnored)
{
    const std::string dir = "test_result_store.tail";
    wipeStoreDir(dir);

    ResultRow a = sampleRow(), b = sampleRow();
    b.run.cycles = 1;
    {
        ResultStore store;
        ASSERT_TRUE(store.openDir(dir));
        store.put("k", a);
        store.put("k", b);      // appended twice; later line wins
    }
    // Simulate a writer that died mid-append.
    std::FILE *f =
        std::fopen((dir + "/" + ResultStore::kFileName).c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"key\":\"half", f);
    std::fclose(f);

    ResultStore reopened;
    ASSERT_TRUE(reopened.openDir(dir));
    ASSERT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.lookup("k")->run.cycles, 1u);
}

TEST(ResultStore, ForeignSchemaRowsAreSkippedNotFatal)
{
    // A schema bump must turn old rows into misses, not make the
    // store unloadable: same dir keeps working across versions.
    const std::string dir = "test_result_store.schema";
    wipeStoreDir(dir);
    {
        ResultStore store;
        ASSERT_TRUE(store.openDir(dir));
        store.put("knew", sampleRow());
    }
    // Splice in a v1-era row (mid-file, before the current-schema row).
    const std::string file = dir + "/" + ResultStore::kFileName;
    std::string current;
    {
        std::FILE *f = std::fopen(file.c_str(), "r");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            current.append(buf, n);
        std::fclose(f);
    }
    std::string oldLine =
        "{\"key\":\"kold\",\"schema\":1,\"id\":\"x\"}\n";
    {
        std::FILE *f = std::fopen(file.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs(oldLine.c_str(), f);
        std::fputs(current.c_str(), f);
        std::fclose(f);
    }
    ResultStore reopened;
    ASSERT_TRUE(reopened.openDir(dir));
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.lookup("kold"), nullptr);
    EXPECT_NE(reopened.lookup("knew"), nullptr);
}

TEST(ResultStore, LoadFileMergesForeignStores)
{
    const std::string dirA = "test_result_store.mergeA";
    const std::string dirB = "test_result_store.mergeB";
    wipeStoreDir(dirA);
    wipeStoreDir(dirB);
    {
        ResultStore a, b;
        ASSERT_TRUE(a.openDir(dirA));
        ASSERT_TRUE(b.openDir(dirB));
        a.put("ka", sampleRow());
        b.put("kb", sampleRow());
    }
    ResultStore merged;     // in-memory: loadFile never adopts a path
    ASSERT_TRUE(merged.loadFile(dirA + "/" + ResultStore::kFileName));
    ASSERT_TRUE(merged.loadFile(dirB + "/" + ResultStore::kFileName));
    EXPECT_EQ(merged.size(), 2u);
    EXPECT_NE(merged.lookup("ka"), nullptr);
    EXPECT_NE(merged.lookup("kb"), nullptr);
    EXPECT_TRUE(merged.path().empty());
    EXPECT_FALSE(merged.loadFile("no/such/store.jsonl"));
}

// ---------------------------------------------------------------------------
// Sweep planning: shard dealing and cache resolution
// ---------------------------------------------------------------------------

SweepGrid
planGrid()
{
    SweepGrid grid;
    grid.isas({ SimdIsa::Mmx, SimdIsa::Mom })
        .threadCounts({ 1, 2, 4, 8 });
    return grid;
}

TEST(PlanSweep, ShardsPartitionTheSweepDeterministically)
{
    auto specs = planGrid().expand(3);
    std::set<std::string> covered;
    for (int shard = 0; shard < 3; ++shard) {
        RunPlan plan = planSweep(planGrid().expand(3), constFp(9),
                                 defaultCost(), nullptr, shard, 3);
        ASSERT_EQ(plan.points.size(), specs.size());
        RunPlan again = planSweep(planGrid().expand(3), constFp(9),
                                  defaultCost(), nullptr, shard, 3);
        for (size_t i = 0; i < plan.points.size(); ++i) {
            // Deterministic: same inputs, same dealing, in every
            // process regardless of which shard it will execute.
            EXPECT_EQ(plan.points[i].shard, again.points[i].shard);
            EXPECT_EQ(plan.points[i].spec.id, specs[i].id);
            if (plan.points[i].shard == shard)
                covered.insert(plan.points[i].spec.id);
        }
        EXPECT_GT(plan.mineCount(), 0u) << "empty shard " << shard;
        EXPECT_EQ(plan.simulateCount(), plan.mineCount());
    }
    // Union over shards = the whole sweep, each point exactly once.
    EXPECT_EQ(covered.size(), specs.size());
}

TEST(PlanSweep, CostWeightingSeparatesExpensivePoints)
{
    // Two 8-thread points (the expensive ones): LPT dealing must not
    // pile both onto one shard.
    SweepGrid grid;
    grid.isas({ SimdIsa::Mmx, SimdIsa::Mom }).threadCounts({ 1, 8 });
    RunPlan plan = planSweep(grid.expand(0), constFp(1),
                             defaultCost(), nullptr, 0, 2);
    ASSERT_EQ(plan.points.size(), 4u);
    int shardOf8[2] = { -1, -1 };
    int n8 = 0;
    for (const PlannedPoint &p : plan.points) {
        EXPECT_GT(p.cost, 0.0);
        if (p.spec.threads == 8)
            shardOf8[n8++] = p.shard;
    }
    ASSERT_EQ(n8, 2);
    EXPECT_NE(shardOf8[0], shardOf8[1]);
}

TEST(PlanSweep, EightThreadPointsCostAboutFourTimesOneThread)
{
    ExperimentSpec one = sampleSpec(), eight = sampleSpec();
    one.threads = 1;
    eight.threads = 8;
    EXPECT_NEAR(specCost(eight) / specCost(one), 4.0, 1e-9);
    // Real memory costs more than the perfect hierarchy.
    ExperimentSpec perfect = one;
    perfect.memModel = mem::MemModel::Perfect;
    EXPECT_GT(specCost(one), specCost(perfect));
}

TEST(PlanSweep, ResolvesCachedPointsFromTheStore)
{
    auto specs = planGrid().expand(3);
    ResultStore store;      // in-memory
    ResultRow row = sampleRow();
    store.put(resultCacheKey(specs[2], 77), row);

    RunPlan plan = planSweep(planGrid().expand(3), constFp(77),
                             defaultCost(), &store);
    ASSERT_EQ(plan.points.size(), specs.size());
    EXPECT_TRUE(plan.points[2].cached);
    expectRowsBitIdentical(plan.points[2].row, row);
    EXPECT_EQ(plan.cachedMineCount(), 1u);
    EXPECT_EQ(plan.simulateCount(), specs.size() - 1);

    // A different fingerprint must miss everywhere.
    RunPlan cold = planSweep(planGrid().expand(3), constFp(78),
                             defaultCost(), &store);
    EXPECT_EQ(cold.cachedMineCount(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: warm cache simulates nothing; shard+merge == unsharded
// ---------------------------------------------------------------------------

workloads::WorkloadRepo &
tinyRepo()
{
    static workloads::WorkloadRepo repo(workloads::WorkloadScale::Tiny);
    return repo;
}

SweepGrid
integrationGrid()
{
    // Two workloads on purpose: the warm-cache and shard-merge
    // contracts must hold per-workload across one multi-mix sweep.
    SweepGrid grid;
    grid.workloadSpecs({ "paper", "gsmx8" })
        .isas({ SimdIsa::Mmx, SimdIsa::Mom })
        .threadCounts({ 1, 2 })
        .policies({ cpu::FetchPolicy::RoundRobin,
                    cpu::FetchPolicy::ICount });
    return grid;
}

TEST(RunPlanIntegration, WorkloadFingerprintIsNonZero)
{
    EXPECT_NE(tinyRepo().fingerprintOf("paper"), 0u);
}

TEST(RunPlanIntegration, DistinctSpecsGetDistinctFingerprintsAndRows)
{
    // Acceptance (a): two workload specs in one grid key with
    // per-workload-distinct fingerprints and deliver per-workload rows.
    workloads::WorkloadRepo &repo = tinyRepo();
    EXPECT_NE(repo.fingerprintOf("paper"), repo.fingerprintOf("gsmx8"));

    SweepGrid grid;
    grid.workloadSpecs({ "paper", "gsmx8" });
    RunPlan plan = planSweep(grid.expand(2), repo);
    ASSERT_EQ(plan.points.size(), 2u);
    EXPECT_NE(plan.points[0].key, plan.points[1].key);

    ThreadPool pool(2);
    ExperimentRunner runner(repo, pool);
    ResultSink sink = runner.run(plan);
    ASSERT_EQ(sink.size(), 2u);
    EXPECT_EQ(sink.rows()[0].workload, "paper");
    EXPECT_EQ(sink.rows()[1].workload, "gsmx8");
    EXPECT_GT(sink.rows()[0].run.cycles, 0u);
    EXPECT_GT(sink.rows()[1].run.cycles, 0u);
    // The mixes really differ: distinct dynamic work.
    EXPECT_NE(sink.rows()[0].run.committedEq,
              sink.rows()[1].run.committedEq);
    EXPECT_EQ(sink.filtered("gsmx8").size(), 1u);
    EXPECT_EQ(sink.filtered("paper").size(), 1u);
    EXPECT_EQ(sink.filtered("nope").size(), 0u);
}

TEST(RunPlanIntegration, ScaledMixCostsMoreThanThePaperMix)
{
    // specCost weights points by workload size: paperx2 has twice the
    // programs, so its points deal ~2x the cost.
    SweepGrid grid;
    grid.workloadSpecs({ "paper", "paperx2" });
    RunPlan plan = planSweep(grid.expand(0), tinyRepo());
    ASSERT_EQ(plan.points.size(), 2u);
    EXPECT_NEAR(plan.points[1].cost / plan.points[0].cost, 2.0, 1e-9);
}

TEST(RunPlanIntegration, WarmCacheRerunSimulatesZeroPoints)
{
    const std::string dir = "test_result_store.warm";
    wipeStoreDir(dir);

    ThreadPool pool(2);
    ExperimentRunner runner(tinyRepo(), pool);

    ResultStore store;
    ASSERT_TRUE(store.openDir(dir));
    RunPlan cold = planSweep(integrationGrid().expand(11), tinyRepo(),
                             &store);
    EXPECT_EQ(cold.simulateCount(), cold.points.size());
    ResultSink first = runner.run(cold, &store);

    RunPlan warm = planSweep(integrationGrid().expand(11), tinyRepo(),
                             &store);
    EXPECT_EQ(warm.simulateCount(), 0u);
    EXPECT_EQ(warm.cachedMineCount(), warm.points.size());
    ResultSink second = runner.run(warm, nullptr);

    EXPECT_EQ(first.toCsv(), second.toCsv());
    EXPECT_EQ(first.toJson(), second.toJson());
}

// A freshly simulated row and a cached replay agree on every
// simulation-result column but carry their own runs' self-measurement,
// which this strips.
using testutil::stripSelfMeasurement;

TEST(RunPlanIntegration, ShardedStoresMergeToUnshardedOutput)
{
    ThreadPool pool(2);
    ExperimentRunner runner(tinyRepo(), pool);

    // Reference: the unsharded sweep, no caching anywhere.
    ResultSink reference = runner.run(
        planSweep(integrationGrid().expand(5), tinyRepo(), nullptr));

    // Three shard "processes", each with its own store directory.
    std::vector<std::string> storeFiles;
    for (int shard = 0; shard < 3; ++shard) {
        std::string dir =
            strfmt("test_result_store.shard%d", shard);
        wipeStoreDir(dir);
        ResultStore store;
        ASSERT_TRUE(store.openDir(dir));
        RunPlan plan = planSweep(integrationGrid().expand(5), tinyRepo(),
                                 &store, shard, 3);
        ResultSink slice = runner.run(plan, &store);
        EXPECT_EQ(slice.size(), plan.mineCount());
        storeFiles.push_back(store.path());
    }

    // The merge "process": every point is a cache hit, nothing runs.
    ResultStore merged;
    for (const std::string &file : storeFiles)
        ASSERT_TRUE(merged.loadFile(file));
    RunPlan mergePlan = planSweep(integrationGrid().expand(5), tinyRepo(),
                                  &merged);
    EXPECT_EQ(mergePlan.simulateCount(), 0u);
    ResultSink recombined = runner.run(mergePlan, nullptr);

    // Byte-identical modulo the self-measurement tail columns (the
    // recombined rows replay the shard runs' wall clocks, the
    // reference rows carry their own).
    EXPECT_EQ(stripSelfMeasurement(reference.toCsv()),
              stripSelfMeasurement(recombined.toCsv()));
    ASSERT_EQ(reference.size(), recombined.size());
    for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(reference.rows()[i].id, recombined.rows()[i].id);
        EXPECT_EQ(reference.rows()[i].run.cycles,
                  recombined.rows()[i].run.cycles);
        EXPECT_EQ(reference.rows()[i].headline,
                  recombined.rows()[i].headline);
    }
}

} // namespace
} // namespace momsim::driver
