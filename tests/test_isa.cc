/**
 * @file
 * Unit tests for the ISA layer: opcode table invariants (including the
 * paper's exact 67/121 extension sizes), register encoding, TraceInst
 * semantics and the disassembler.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "isa/opcodes.hh"
#include "isa/regs.hh"
#include "isa/trace_inst.hh"

namespace momsim::isa
{
namespace
{

TEST(OpcodeTable, PaperExtensionSizes)
{
    // Section 3: 67 MMX-like instructions, 121 MOM opcodes.
    EXPECT_EQ(kNumMmxOps, 67);
    EXPECT_EQ(kNumMomOps, 121);
    EXPECT_EQ(kNumScalarOps + kNumMmxOps + kNumMomOps,
              static_cast<int>(kNumOps));
}

TEST(OpcodeTable, NamesAreUniqueAndNonEmpty)
{
    std::set<std::string> names;
    for (uint16_t v = 0; v < kNumOps; ++v) {
        const OpInfo &info = opInfo(static_cast<Op>(v));
        ASSERT_NE(info.name, nullptr);
        ASSERT_GT(std::string(info.name).size(), 0u);
        ASSERT_TRUE(names.insert(info.name).second)
            << "duplicate opcode name " << info.name;
    }
}

TEST(OpcodeTable, LatenciesArePositive)
{
    for (uint16_t v = 0; v < kNumOps; ++v) {
        const OpInfo &info = opInfo(static_cast<Op>(v));
        ASSERT_GE(info.latency, 1) << info.name;
        ASSERT_LE(info.latency, 32) << info.name;
    }
}

TEST(OpcodeTable, ClassRangesAreConsistent)
{
    for (uint16_t v = 0; v < kNumOps; ++v) {
        Op op = static_cast<Op>(v);
        OpClass cls = opClass(op);
        if (isMmxOp(op)) {
            EXPECT_TRUE(isMmx(cls)) << opName(op);
        } else if (isMomOp(op)) {
            EXPECT_TRUE(isMom(cls)) << opName(op);
        } else {
            EXPECT_FALSE(isMmx(cls) || isMom(cls)) << opName(op);
        }
    }
}

TEST(OpcodeTable, UnpipelinedOpsAreLongLatency)
{
    for (uint16_t v = 0; v < kNumOps; ++v) {
        const OpInfo &info = opInfo(static_cast<Op>(v));
        if (!info.pipelined) {
            EXPECT_GE(info.latency, 8) << info.name;
        }
    }
}

TEST(OpClassHelpers, Partitions)
{
    // Every class lands in exactly one queue and one mix group.
    for (OpClass c : { OpClass::IntAlu, OpClass::Load, OpClass::MmxAlu,
                       OpClass::MomLoad, OpClass::FpDiv, OpClass::Branch,
                       OpClass::MomAcc, OpClass::MmxStore }) {
        int buckets = 0;
        buckets += isMemory(c) ? 1 : 0;
        buckets += isFp(c) ? 1 : 0;
        buckets += (isSimd(c) && !isMemory(c)) ? 1 : 0;
        MixGroup g = mixGroup(c);
        if (buckets == 0) {
            EXPECT_EQ(g, MixGroup::Int);
        }
    }
    EXPECT_EQ(mixGroup(OpClass::Load), MixGroup::Mem);
    EXPECT_EQ(mixGroup(OpClass::MomLoad), MixGroup::Mem);
    EXPECT_EQ(mixGroup(OpClass::MmxStore), MixGroup::Mem);
    EXPECT_EQ(mixGroup(OpClass::MomAlu), MixGroup::SimdArith);
    EXPECT_EQ(mixGroup(OpClass::MmxMul), MixGroup::SimdArith);
    EXPECT_EQ(mixGroup(OpClass::FpMul), MixGroup::Fp);
    EXPECT_EQ(mixGroup(OpClass::Branch), MixGroup::Int);
    EXPECT_EQ(mixGroup(OpClass::Nop), MixGroup::Int);
}

TEST(OpClassHelpers, QueueAssignment)
{
    EXPECT_EQ(queueKind(OpClass::IntAlu), QueueKind::Int);
    EXPECT_EQ(queueKind(OpClass::Branch), QueueKind::Int);
    EXPECT_EQ(queueKind(OpClass::Load), QueueKind::Mem);
    EXPECT_EQ(queueKind(OpClass::MmxLoad), QueueKind::Mem);
    EXPECT_EQ(queueKind(OpClass::MomStore), QueueKind::Mem);
    EXPECT_EQ(queueKind(OpClass::FpDiv), QueueKind::Fp);
    EXPECT_EQ(queueKind(OpClass::MmxAlu), QueueKind::Simd);
    EXPECT_EQ(queueKind(OpClass::MomAcc), QueueKind::Simd);
}

TEST(Regs, EncodingRoundTrip)
{
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(regClass(intReg(i)), RegClass::Int);
        EXPECT_EQ(regIndex(intReg(i)), i);
        EXPECT_EQ(regClass(fpReg(i)), RegClass::Fp);
        EXPECT_EQ(regIndex(fpReg(i)), i);
        EXPECT_EQ(regClass(mmxReg(i)), RegClass::Mmx);
        EXPECT_EQ(regIndex(mmxReg(i)), i);
    }
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(regClass(momReg(i)), RegClass::Mom);
        EXPECT_EQ(regIndex(momReg(i)), i);
    }
    EXPECT_EQ(regClass(accReg(0)), RegClass::Mom);
    EXPECT_EQ(regIndex(accReg(0)), 16);
    EXPECT_EQ(regIndex(accReg(1)), 17);
    EXPECT_EQ(regClass(slReg()), RegClass::Int);
    EXPECT_EQ(regIndex(slReg()), kSlRegIndex);
}

TEST(Regs, DistinctAcrossClasses)
{
    std::set<RegRef> all;
    for (int i = 0; i < 32; ++i) {
        all.insert(intReg(i));
        all.insert(fpReg(i));
        all.insert(mmxReg(i));
    }
    for (int i = 0; i < 18; ++i)
        all.insert(momReg(i));
    EXPECT_EQ(all.size(), 32u * 3 + 18);
    EXPECT_EQ(all.count(kNoReg), 0u);
}

TEST(TraceInst, EqInstsWeighting)
{
    TraceInst scalar;
    scalar.op = static_cast<uint16_t>(Op::ADDL);
    EXPECT_EQ(scalar.eqInsts(), 1u);

    TraceInst mmx;
    mmx.op = static_cast<uint16_t>(Op::PADDW);
    EXPECT_EQ(mmx.eqInsts(), 1u);

    TraceInst mom;
    mom.op = static_cast<uint16_t>(Op::MADD_QH);
    mom.streamLen = 11;
    EXPECT_EQ(mom.eqInsts(), 11u);   // the paper's exact example

    TraceInst ctl;
    ctl.op = static_cast<uint16_t>(Op::MSETLEN);
    ctl.streamLen = 16;
    EXPECT_EQ(ctl.eqInsts(), 1u);    // control ops are not weighted
}

TEST(TraceInst, MemAccessExpansion)
{
    TraceInst ld;
    ld.op = static_cast<uint16_t>(Op::MLDQS);
    ld.addr = 0x1000;
    ld.streamLen = 4;
    ld.stride = 64;
    ld.accessSize = 8;
    EXPECT_EQ(ld.memAccesses(), 4u);
    EXPECT_EQ(ld.elementAddr(0), 0x1000u);
    EXPECT_EQ(ld.elementAddr(3), 0x10C0u);

    TraceInst neg = ld;
    neg.stride = -8;
    EXPECT_EQ(neg.elementAddr(2), 0x1000u - 16u);

    TraceInst scalar;
    scalar.op = static_cast<uint16_t>(Op::LDQ);
    scalar.addr = 0x2000;
    EXPECT_EQ(scalar.memAccesses(), 1u);
    TraceInst alu;
    alu.op = static_cast<uint16_t>(Op::ADDL);
    EXPECT_EQ(alu.memAccesses(), 0u);
}

TEST(TraceInst, FlagQueries)
{
    TraceInst br;
    br.op = static_cast<uint16_t>(Op::BNE);
    br.flags = kFlagTaken | kFlagCond;
    EXPECT_TRUE(br.isControl());
    EXPECT_TRUE(br.isCondBranch());
    EXPECT_TRUE(br.taken());

    TraceInst jmp;
    jmp.op = static_cast<uint16_t>(Op::BR);
    jmp.flags = kFlagTaken;
    EXPECT_TRUE(jmp.isControl());
    EXPECT_FALSE(jmp.isCondBranch());
}

TEST(Disasm, RendersOperandsAndStreams)
{
    TraceInst inst;
    inst.pc = 0x400100;
    inst.op = static_cast<uint16_t>(Op::MADD_QH);
    inst.dst = momReg(1);
    inst.src0 = momReg(2);
    inst.src1 = momReg(3);
    inst.streamLen = 8;
    std::string s = disasm(inst);
    EXPECT_NE(s.find("MADD_QH"), std::string::npos);
    EXPECT_NE(s.find("v1"), std::string::npos);
    EXPECT_NE(s.find("len=8"), std::string::npos);

    TraceInst ld;
    ld.op = static_cast<uint16_t>(Op::LDQ);
    ld.dst = intReg(5);
    ld.addr = 0xBEEF;
    std::string t = disasm(ld);
    EXPECT_NE(t.find("LDQ"), std::string::npos);
    EXPECT_NE(t.find("beef"), std::string::npos);

    TraceInst sl;
    sl.op = static_cast<uint16_t>(Op::MSETLEN);
    sl.dst = slReg();
    EXPECT_NE(disasm(sl).find("sl"), std::string::npos);
}

} // namespace
} // namespace momsim::isa
