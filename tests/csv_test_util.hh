/**
 * @file
 * Shared CSV helpers for test suites that compare serialized sweep
 * results across runs.
 */

#ifndef MOMSIM_TESTS_CSV_TEST_UTIL_HH
#define MOMSIM_TESTS_CSV_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <string>

namespace momsim::testutil
{

/**
 * Drop the last two fields of every CSV line: sim_kcps and wall_ms are
 * the run's wall-clock self-measurement (ResultRow schema v4),
 * nondeterministic by nature and deliberately excluded from the
 * byte-stability contract — they are the tail columns precisely so
 * consumers can cut them like this (cmake/KernelEquivalence.cmake does
 * the same with a regex).
 */
inline std::string
stripSelfMeasurement(const std::string &csv)
{
    std::string out;
    size_t start = 0;
    while (start < csv.size()) {
        size_t eol = csv.find('\n', start);
        if (eol == std::string::npos)
            eol = csv.size();
        std::string line = csv.substr(start, eol - start);
        for (int cut = 0; cut < 2; ++cut) {
            size_t comma = line.rfind(',');
            EXPECT_NE(comma, std::string::npos) << line;
            line.resize(comma);
        }
        out += line;
        out += '\n';
        start = eol + 1;
    }
    return out;
}

} // namespace momsim::testutil

#endif // MOMSIM_TESTS_CSV_TEST_UTIL_HH
