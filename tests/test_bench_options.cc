/**
 * @file
 * Tests for the bench harness's command-line contract: every flag
 * round-trips through BenchOptions::parseInto, unknown flags and
 * malformed values reject with a one-line error (never by reading past
 * argv), --shard arguments are validated, and takesValue() agrees with
 * the parser about which flags consume the following token.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/bench_harness.hh"

namespace momsim::driver
{
namespace
{

/** Run parseInto over a brace-list argv (argv[0] is added). */
bool
parseArgs(std::vector<std::string> args, BenchOptions &out,
          std::string &error)
{
    std::vector<std::string> storage;
    storage.push_back("bench");
    for (std::string &a : args)
        storage.push_back(std::move(a));
    std::vector<char *> argv;
    for (std::string &s : storage)
        argv.push_back(s.data());
    return BenchOptions::parseInto(static_cast<int>(argv.size()),
                                   argv.data(), out, error);
}

BenchOptions
expectOk(std::vector<std::string> args)
{
    BenchOptions opts;
    std::string error;
    EXPECT_TRUE(parseArgs(args, opts, error)) << error;
    return opts;
}

std::string
expectError(std::vector<std::string> args)
{
    BenchOptions opts;
    std::string error;
    EXPECT_FALSE(parseArgs(args, opts, error));
    EXPECT_FALSE(error.empty());
    return error;
}

TEST(BenchOptions, DefaultsAreNeutral)
{
    BenchOptions opts = expectOk({});
    EXPECT_EQ(opts.jobs, 0);
    EXPECT_EQ(opts.batch, 1);
    EXPECT_FALSE(opts.quick);
    EXPECT_FALSE(opts.dryRun);
    EXPECT_FALSE(opts.listWorkloads);
    EXPECT_EQ(opts.baseSeed, 0u);
    EXPECT_EQ(opts.maxCycles, 0u);
    EXPECT_EQ(opts.shardIndex, 1);
    EXPECT_EQ(opts.shardCount, 1);
    EXPECT_TRUE(opts.csvPath.empty());
    EXPECT_TRUE(opts.jsonPath.empty());
    EXPECT_TRUE(opts.cacheDir.empty());
    EXPECT_TRUE(opts.mergePaths.empty());
    EXPECT_TRUE(opts.workloads.empty());
}

TEST(BenchOptions, EveryFlagRoundTrips)
{
    BenchOptions opts = expectOk({ "--jobs", "3", "--batch", "4",
                                   "--quick", "--seed",
                                   "0x2a", "--max-cycles", "500000",
                                   "--csv", "a.csv", "--json",
                                   "b.json", "--cache-dir", "cache",
                                   "--shard", "2/5", "--merge", "x,y",
                                   "--workload", "paper,gsmx8",
                                   "--dry-run" });
    EXPECT_EQ(opts.jobs, 3);
    EXPECT_EQ(opts.batch, 4);
    EXPECT_TRUE(opts.quick);
    EXPECT_TRUE(opts.dryRun);
    EXPECT_EQ(opts.baseSeed, 42u);
    EXPECT_EQ(opts.maxCycles, 500000u);
    EXPECT_EQ(opts.csvPath, "a.csv");
    EXPECT_EQ(opts.jsonPath, "b.json");
    EXPECT_EQ(opts.cacheDir, "cache");
    EXPECT_EQ(opts.shardIndex, 2);
    EXPECT_EQ(opts.shardCount, 5);
    ASSERT_EQ(opts.mergePaths.size(), 2u);
    EXPECT_EQ(opts.mergePaths[0], "x");
    EXPECT_EQ(opts.mergePaths[1], "y");
    ASSERT_EQ(opts.workloads.size(), 2u);
    EXPECT_EQ(opts.workloads[0], "paper");
    EXPECT_EQ(opts.workloads[1], "gsmx8");
}

TEST(BenchOptions, ShortJobsAliasAndRepeatableWorkload)
{
    BenchOptions opts = expectOk({ "-j", "2", "--workload", "paper",
                                   "--workload", "mpeg2x8" });
    EXPECT_EQ(opts.jobs, 2);
    ASSERT_EQ(opts.workloads.size(), 2u);
    EXPECT_EQ(opts.workloads[1], "mpeg2x8");
}

TEST(BenchOptions, ListWorkloadsIsAFlagNotAValue)
{
    BenchOptions opts = expectOk({ "--list-workloads" });
    EXPECT_TRUE(opts.listWorkloads);
    EXPECT_FALSE(BenchOptions::takesValue("--list-workloads"));
}

TEST(BenchOptions, UnknownFlagsReject)
{
    std::string error = expectError({ "--frobnicate" });
    EXPECT_NE(error.find("--frobnicate"), std::string::npos);
    expectError({ "--jobs3" });
    expectError({ "stray" });
}

TEST(BenchOptions, ValueFlagsAtEndOfArgvErrorInsteadOfReadingPast)
{
    for (const char *flag : { "--jobs", "-j", "--seed", "--max-cycles",
                              "--csv", "--json", "--cache-dir", "--shard",
                              "--merge", "--workload" }) {
        std::string error = expectError({ flag });
        EXPECT_NE(error.find("expects a value"), std::string::npos)
            << flag << ": " << error;
    }
}

TEST(BenchOptions, BatchValidatesAndRoundTrips)
{
    EXPECT_EQ(expectOk({ "--batch", "1" }).batch, 1);
    EXPECT_EQ(expectOk({ "--batch", "8" }).batch, 8);
    // A batch size below 1 cannot mean anything; garbage atoi()s to 0.
    for (const char *bad : { "0", "-2", "x" }) {
        std::string error = expectError({ "--batch", bad });
        EXPECT_NE(error.find("--batch"), std::string::npos) << error;
    }
    EXPECT_TRUE(BenchOptions::takesValue("--batch"));
}

TEST(BenchOptions, TakesValueMatchesTheParser)
{
    for (const char *flag : { "--jobs", "-j", "--batch", "--seed",
                              "--max-cycles",
                              "--csv", "--json", "--cache-dir", "--shard",
                              "--merge", "--workload" })
        EXPECT_TRUE(BenchOptions::takesValue(flag)) << flag;
    for (const char *flag : { "--quick", "--dry-run", "--list-workloads",
                              "--help", "-h" })
        EXPECT_FALSE(BenchOptions::takesValue(flag)) << flag;
}

TEST(BenchOptions, FlagTableAgreesWithTheParser)
{
    // Every value-taking table flag must be known to the parser and
    // error with "expects a value" at end-of-argv; boolean flags must
    // parse standalone. This is the anti-drift contract: a flag added
    // to parseInto() without a table row (or vice versa) fails here.
    for (const BenchFlagInfo &info : BenchOptions::flagTable()) {
        EXPECT_TRUE(BenchOptions::isKnownFlag(info.flag)) << info.flag;
        if (info.alias)
            EXPECT_TRUE(BenchOptions::isKnownFlag(info.alias))
                << info.alias;
        EXPECT_NE(info.help, nullptr) << info.flag;
        if (std::string(info.flag) == "--help")
            continue;   // help "fails" parse by design (empty error)
        if (info.valueName) {
            std::string error = expectError({ info.flag });
            EXPECT_NE(error.find("expects a value"), std::string::npos)
                << info.flag << ": " << error;
        } else if (std::string(info.flag) != "--list-workloads") {
            expectOk({ info.flag });
        } else {
            expectOk({ info.flag });    // flag parses; parse() exits later
        }
    }
    // And the reverse direction: the parser rejects flags the table
    // does not declare, so parseInto cannot grow a hidden flag.
    EXPECT_FALSE(BenchOptions::isKnownFlag("--frobnicate"));
    expectError({ "--frobnicate" });
}

TEST(BenchOptions, UsageAndHelpAreGeneratedFromTheTable)
{
    std::string usage = BenchOptions::usageText("momsim fig6");
    std::string help = BenchOptions::helpText();
    EXPECT_NE(usage.find("usage: momsim fig6"), std::string::npos);
    for (const BenchFlagInfo &info : BenchOptions::flagTable()) {
        EXPECT_NE(usage.find(info.flag), std::string::npos) << info.flag;
        EXPECT_NE(help.find(info.flag), std::string::npos) << info.flag;
        EXPECT_NE(help.find(info.help), std::string::npos) << info.flag;
    }
}

TEST(BenchOptions, PositionalsCollectWhenRequested)
{
    // The explorer's calling convention: flags anywhere, everything
    // else positional — including "-"-prefixed non-flags.
    BenchOptions opts;
    std::string error;
    std::vector<std::string> positionals;
    std::vector<std::string> storage = { "bench",   "mom",  "--quick",
                                         "8",       "-j",   "2",
                                         "decoupled", "oc", "-5" };
    std::vector<char *> argv;
    for (std::string &s : storage)
        argv.push_back(s.data());
    ASSERT_TRUE(BenchOptions::parseInto(static_cast<int>(argv.size()),
                                        argv.data(), opts, error,
                                        &positionals))
        << error;
    EXPECT_TRUE(opts.quick);
    EXPECT_EQ(opts.jobs, 2);
    ASSERT_EQ(positionals.size(), 5u);
    EXPECT_EQ(positionals[0], "mom");
    EXPECT_EQ(positionals[1], "8");
    EXPECT_EQ(positionals[2], "decoupled");
    EXPECT_EQ(positionals[3], "oc");
    EXPECT_EQ(positionals[4], "-5");

    // Unknown "--" flags still reject even in positional mode.
    positionals.clear();
    std::vector<std::string> bad = { "bench", "--frobnicate" };
    std::vector<char *> argv2;
    for (std::string &s : bad)
        argv2.push_back(s.data());
    EXPECT_FALSE(BenchOptions::parseInto(static_cast<int>(argv2.size()),
                                         argv2.data(), opts, error,
                                         &positionals));
    // Without the positional sink, stray tokens keep rejecting.
    EXPECT_FALSE(parseArgs({ "stray" }, opts, error));
}

TEST(BenchOptions, ShardValidationRejectsOutOfRangeAndGarbage)
{
    // 1-based index: shard 0 does not exist.
    EXPECT_NE(expectError({ "--shard", "0/3" }).find("bad --shard"),
              std::string::npos);
    // Index beyond the shard count.
    EXPECT_NE(expectError({ "--shard", "4/3" }).find("bad --shard"),
              std::string::npos);
    // Malformed strings, trailing garbage, zero/negative counts.
    for (const char *v : { "nonsense", "1/", "/3", "1//3", "1/3,2/3",
                           "1/0", "-1/3", "0/0", "2", "" })
        EXPECT_NE(expectError({ "--shard", v }).find("bad --shard"),
                  std::string::npos) << "'" << v << "'";
    // The boundary cases that must be accepted.
    BenchOptions opts = expectOk({ "--shard", "1/1" });
    EXPECT_EQ(opts.shardCount, 1);
    opts = expectOk({ "--shard", "3/3" });
    EXPECT_EQ(opts.shardIndex, 3);
}

TEST(BenchOptions, JobsMustBePositive)
{
    expectError({ "--jobs", "0" });
    expectError({ "--jobs", "-2" });
    expectError({ "--jobs", "banana" });
}

TEST(BenchOptions, MaxCyclesRoundTripsAndRejectsGarbage)
{
    // Decimal and 0x-prefixed values parse; 0 means "grid default" and
    // is only reachable by not passing the flag at all.
    EXPECT_EQ(expectOk({ "--max-cycles", "1" }).maxCycles, 1u);
    EXPECT_EQ(expectOk({ "--max-cycles", "400000000" }).maxCycles,
              400000000u);
    EXPECT_EQ(expectOk({ "--max-cycles", "0x100" }).maxCycles, 256u);
    for (const char *v : { "0", "banana", "12banana", "", "-5" })
        EXPECT_NE(expectError({ "--max-cycles", v })
                      .find("bad --max-cycles"),
                  std::string::npos) << "'" << v << "'";
}

TEST(BenchOptions, WorkloadNamesAreValidatedAgainstTheRegistry)
{
    std::string error = expectError({ "--workload", "nonsense" });
    EXPECT_NE(error.find("unknown workload 'nonsense'"),
              std::string::npos);
    EXPECT_NE(error.find("--list-workloads"), std::string::npos);
    // Empty selections reject instead of silently sweeping nothing.
    expectError({ "--workload", "," });
    // Registry names and the paperxN pattern are accepted.
    expectOk({ "--workload",
               "paper,decode-heavy,encode-heavy,mpeg2x8,gsmx8,jpegx8" });
    expectOk({ "--workload", "paperx2" });
    expectError({ "--workload", "paperx1" });
    expectError({ "--workload", "paperx9" });
    expectError({ "--workload", "paperx2x" });
    // No aliases: signs and leading zeros would split cache identities.
    expectError({ "--workload", "paperx+3" });
    expectError({ "--workload", "paperx03" });
}

TEST(BenchOptions, RepeatedWorkloadNamesAreDeduplicated)
{
    // Duplicates would expand sweep points with identical ids, seeds
    // and cache keys; first-seen order wins.
    BenchOptions opts = expectOk({ "--workload", "paper,paper",
                                   "--workload", "gsmx8,paper" });
    ASSERT_EQ(opts.workloads.size(), 2u);
    EXPECT_EQ(opts.workloads[0], "paper");
    EXPECT_EQ(opts.workloads[1], "gsmx8");
}

TEST(BenchOptions, HelpRequestsSurfaceAsEmptyError)
{
    BenchOptions opts;
    std::string error = "sentinel";
    EXPECT_FALSE(parseArgs({ "--help" }, opts, error));
    EXPECT_TRUE(error.empty());
    error = "sentinel";
    EXPECT_FALSE(parseArgs({ "-h" }, opts, error));
    EXPECT_TRUE(error.empty());
}

} // namespace
} // namespace momsim::driver
