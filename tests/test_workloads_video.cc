/**
 * @file
 * Functional tests for the video workload programs: DCT/IDCT kernel
 * correctness against the scalar reference, quantizer semantics, and
 * full MPEG-2 encoder/decoder round trips in both ISAs (the decoder must
 * reproduce the encoder's in-loop reconstruction bit-exactly, and the
 * reconstruction must be a faithful image).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "workloads/blocks.hh"
#include "workloads/codec_ctx.hh"
#include "workloads/mpeg2.hh"
#include "workloads/video_common.hh"

namespace momsim::workloads
{
namespace
{

constexpr uint32_t kBase = 16u << 20;

class BlockKernels : public ::testing::TestWithParam<isa::SimdIsa>
{
};

template <class Fn>
void
withBackend(CodecCtx &ctx, isa::SimdIsa simd, Fn fn)
{
    if (simd == isa::SimdIsa::Mom)
        fn(ctx.bmm);
    else
        fn(ctx.bmx);
}

TEST_P(BlockKernels, DctMatchesReference)
{
    isa::SimdIsa simd = GetParam();
    CodecCtx ctx("t", simd, kBase);
    uint32_t src = ctx.tb.alloc(kBlockBytes * 4, 64);
    uint32_t dst = ctx.tb.alloc(kBlockBytes * 4, 64);

    Rng rng(7);
    std::vector<int16_t> blocks(4 * 64);
    for (auto &v : blocks)
        v = static_cast<int16_t>(rng.range(-255, 255));
    for (int blk = 0; blk < 4; ++blk) {
        for (int i = 0; i < 64; ++i) {
            uint32_t off = static_cast<uint32_t>(
                blk * kBlockBytes + (i / 8) * 16 + (i % 8) * 2);
            ctx.tb.poke16(src + off,
                          static_cast<uint16_t>(blocks[blk * 64 + i]));
        }
    }

    withBackend(ctx, simd, [&](auto &b) {
        forEachBlock(b, ctx.s, src, dst, 4,
                     [](auto &bb, IVal pa, IVal pb) {
                         dct8x8(bb, pa, pb);
                     });
    });

    for (int blk = 0; blk < 4; ++blk) {
        int16_t ref[64];
        dct8x8Ref(&blocks[blk * 64], ref);
        for (int i = 0; i < 64; ++i) {
            uint32_t off = static_cast<uint32_t>(
                blk * kBlockBytes + (i / 8) * 16 + (i % 8) * 2);
            int16_t got = static_cast<int16_t>(ctx.tb.peek16(dst + off));
            ASSERT_EQ(got, ref[i]) << "block " << blk << " coef " << i;
        }
    }
}

TEST_P(BlockKernels, IdctInvertsDct)
{
    isa::SimdIsa simd = GetParam();
    CodecCtx ctx("t", simd, kBase);
    uint32_t src = ctx.tb.alloc(kBlockBytes, 64);
    uint32_t mid = ctx.tb.alloc(kBlockBytes, 64);
    uint32_t dst = ctx.tb.alloc(kBlockBytes, 64);

    Rng rng(21);
    std::vector<int16_t> block(64);
    for (auto &v : block)
        v = static_cast<int16_t>(rng.range(-200, 200));
    for (int i = 0; i < 64; ++i) {
        uint32_t off = static_cast<uint32_t>((i / 8) * 16 + (i % 8) * 2);
        ctx.tb.poke16(src + off, static_cast<uint16_t>(block[i]));
    }

    withBackend(ctx, simd, [&](auto &b) {
        forEachBlock(b, ctx.s, src, mid, 1,
                     [](auto &bb, IVal pa, IVal pb) {
                         dct8x8(bb, pa, pb);
                     });
        forEachBlock(b, ctx.s, mid, dst, 1,
                     [](auto &bb, IVal pa, IVal pb) {
                         idct8x8(bb, pa, pb);
                     });
    });

    // Fixed-point DCT->IDCT reproduces the input within a small error.
    for (int i = 0; i < 64; ++i) {
        uint32_t off = static_cast<uint32_t>((i / 8) * 16 + (i % 8) * 2);
        int16_t got = static_cast<int16_t>(ctx.tb.peek16(dst + off));
        ASSERT_NEAR(got, block[i], 24) << "coef " << i;
    }
}

TEST_P(BlockKernels, QuantizerIsSignSymmetric)
{
    isa::SimdIsa simd = GetParam();
    CodecCtx ctx("t", simd, kBase);
    uint32_t src = ctx.tb.alloc(kBlockBytes, 64);
    uint32_t dst = ctx.tb.alloc(kBlockBytes, 64);
    uint32_t recip = ctx.tb.alloc(kBlockBytes, 64);
    for (int i = 0; i < 64; ++i) {
        uint32_t off = static_cast<uint32_t>((i / 8) * 16 + (i % 8) * 2);
        ctx.tb.poke16(recip + off, 4096);       // q = 16
        int16_t x = static_cast<int16_t>((i - 32) * 9);
        ctx.tb.poke16(src + off, static_cast<uint16_t>(x));
    }
    withBackend(ctx, simd, [&](auto &b) {
        IVal r = ctx.s.imm(static_cast<int32_t>(recip));
        forEachBlock(b, ctx.s, src, dst, 1,
                     [&](auto &bb, IVal pa, IVal pb) {
                         quantBlock(bb, pa, pb, r);
                     });
    });
    for (int i = 0; i < 64; ++i) {
        uint32_t off = static_cast<uint32_t>((i / 8) * 16 + (i % 8) * 2);
        int16_t x = static_cast<int16_t>((i - 32) * 9);
        int16_t got = static_cast<int16_t>(ctx.tb.peek16(dst + off));
        EXPECT_EQ(got, quantRef(x, 4096)) << i;
        // small coefficients must quantize to zero in both directions
        if (std::abs(x) < 16)
            EXPECT_EQ(got, 0) << i;
    }
}

INSTANTIATE_TEST_SUITE_P(BothIsas, BlockKernels,
                         ::testing::Values(isa::SimdIsa::Mmx,
                                           isa::SimdIsa::Mom),
                         [](const auto &info) {
                             return std::string(isa::toString(info.param));
                         });

VideoConfig
tinyVideo()
{
    VideoConfig cfg;
    cfg.width = 48;
    cfg.height = 48;
    cfg.frames = 2;
    cfg.searchRange = 2;
    cfg.quant = 12;
    cfg.seed = 5;
    return cfg;
}

class VideoRoundTrip : public ::testing::TestWithParam<isa::SimdIsa>
{
};

TEST_P(VideoRoundTrip, DecoderMatchesEncoderRecon)
{
    isa::SimdIsa simd = GetParam();
    VideoConfig cfg = tinyVideo();
    Mpeg2Bitstream stream;
    trace::Program enc = buildMpeg2Encoder(simd, kBase, cfg, &stream);
    EXPECT_GT(enc.size(), 1000u);
    EXPECT_GT(stream.bitCount, 100u);
    ASSERT_EQ(stream.reconY.size(), 2u);

    Mpeg2Decoded dec;
    trace::Program decProg =
        buildMpeg2Decoder(simd, kBase + (32u << 20), stream, &dec);
    EXPECT_GT(decProg.size(), 500u);
    ASSERT_EQ(dec.y.size(), 2u);

    // Bit-exact agreement between decoder output and in-loop recon.
    for (int f = 0; f < 2; ++f) {
        EXPECT_EQ(dec.y[static_cast<size_t>(f)],
                  stream.reconY[static_cast<size_t>(f)]) << "frame " << f;
        EXPECT_EQ(dec.cb[static_cast<size_t>(f)],
                  stream.reconCb[static_cast<size_t>(f)]);
        EXPECT_EQ(dec.cr[static_cast<size_t>(f)],
                  stream.reconCr[static_cast<size_t>(f)]);
    }
}

TEST_P(VideoRoundTrip, ReconstructionIsFaithful)
{
    isa::SimdIsa simd = GetParam();
    VideoConfig cfg = tinyVideo();
    Mpeg2Bitstream stream;
    buildMpeg2Encoder(simd, kBase, cfg, &stream);
    for (size_t f = 0; f < stream.origY.size(); ++f) {
        double psnr = planePsnr(stream.origY[f], stream.reconY[f]);
        EXPECT_GT(psnr, 24.0) << "frame " << f;
    }
}

TEST_P(VideoRoundTrip, MixIsPlausible)
{
    isa::SimdIsa simd = GetParam();
    VideoConfig cfg = tinyVideo();
    trace::Program enc = buildMpeg2Encoder(simd, kBase, cfg, nullptr);
    trace::MixSummary m = enc.mix();
    EXPECT_GT(m.intPct(), 0.12);         // integer-heavy even at tiny scale
    EXPECT_GT(m.simdPct(), 0.05);        // real SIMD content
    EXPECT_LT(m.fpPct(), 0.02);          // video codecs are integer
    EXPECT_GT(m.memPct(), 0.10);
}

TEST(VideoIsaComparison, MomNeedsFewerInstructions)
{
    VideoConfig cfg = tinyVideo();
    trace::Program mmx =
        buildMpeg2Encoder(isa::SimdIsa::Mmx, kBase, cfg, nullptr);
    trace::Program mom =
        buildMpeg2Encoder(isa::SimdIsa::Mom, kBase + (32u << 20), cfg,
                          nullptr);
    auto mmxMix = mmx.mix();
    auto momMix = mom.mix();
    // Equivalent-instruction reduction (Table 3: ~0.57x for mpeg2enc).
    EXPECT_LT(momMix.eqInsts, mmxMix.eqInsts);
    // Fetch-stream reduction is much larger (stream ops fuse records).
    EXPECT_LT(momMix.records * 2, mmxMix.records);
    // Both compute identical bitstreams.
    Mpeg2Bitstream a, b;
    buildMpeg2Encoder(isa::SimdIsa::Mmx, kBase, cfg, &a);
    buildMpeg2Encoder(isa::SimdIsa::Mom, kBase, cfg, &b);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.reconY, b.reconY);
}

INSTANTIATE_TEST_SUITE_P(BothIsas, VideoRoundTrip,
                         ::testing::Values(isa::SimdIsa::Mmx,
                                           isa::SimdIsa::Mom),
                         [](const auto &info) {
                             return std::string(isa::toString(info.param));
                         });

} // namespace
} // namespace momsim::workloads
