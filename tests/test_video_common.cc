/**
 * @file
 * Tests for the shared video-codec pieces: Exp-Golomb VLC round trips
 * through the emitted-cost writer/reader, both SAD kernels against a
 * host reference, and properties of the deterministic synthetic
 * sources.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "trace/builder.hh"
#include "workloads/video_common.hh"

namespace momsim::workloads
{
namespace
{

constexpr uint32_t kBase = 16u << 20;

TEST(Vlc, SignedUnsignedRoundTrip)
{
    trace::TraceBuilder tb("t", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    uint32_t buf = tb.alloc(1 << 16);
    VlcWriter w(s, buf);

    Rng rng(11);
    std::vector<int32_t> signedVals;
    std::vector<uint32_t> unsignedVals;
    for (int i = 0; i < 500; ++i) {
        int32_t sv = static_cast<int32_t>(rng.range(-2000, 2000));
        uint32_t uv = static_cast<uint32_t>(rng.below(5000));
        signedVals.push_back(sv);
        unsignedVals.push_back(uv);
        w.putSigned(sv);
        w.putUnsigned(uv);
    }
    w.alignByte();

    trace::TraceBuilder tb2("t2", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s2(tb2);
    uint32_t buf2 = tb2.alloc(1 << 16);
    const auto &bytes = w.writer().bytes();
    tb2.pokeBytes(buf2, bytes.data(), static_cast<uint32_t>(bytes.size()));
    VlcReader r(s2, bytes, buf2);
    for (int i = 0; i < 500; ++i) {
        ASSERT_EQ(r.getSigned(), signedVals[static_cast<size_t>(i)]) << i;
        ASSERT_EQ(r.getUnsigned(),
                  unsignedVals[static_cast<size_t>(i)]) << i;
    }
}

TEST(Vlc, EmitsParseCost)
{
    trace::TraceBuilder tb("t", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    uint32_t buf = tb.alloc(4096);
    VlcWriter w(s, buf);
    size_t before = tb.instCount();
    for (int i = 0; i < 50; ++i)
        w.putSigned(i - 25);
    size_t emitted = tb.instCount() - before;
    // Several integer ops per symbol: that is the protocol overhead.
    EXPECT_GT(emitted, 50u * 4);
}

int
hostSad16x16(trace::TraceBuilder &tb, uint32_t a, uint32_t b, int pitch)
{
    int sum = 0;
    for (int y = 0; y < 16; ++y) {
        for (int x = 0; x < 16; ++x) {
            int pa = tb.peek8(a + static_cast<uint32_t>(y * pitch + x));
            int pb = tb.peek8(b + static_cast<uint32_t>(y * pitch + x));
            sum += std::abs(pa - pb);
        }
    }
    return sum;
}

TEST(Sad, BothKernelsMatchHostReference)
{
    for (isa::SimdIsa simd : { isa::SimdIsa::Mmx, isa::SimdIsa::Mom }) {
        trace::TraceBuilder tb("t", simd, kBase);
        ScalarEmitter s(tb);
        MmxEmitter mx(tb);
        MomEmitter mv(tb);
        int pitch = 64;
        uint32_t a = tb.alloc(static_cast<uint32_t>(pitch) * 20);
        uint32_t b = tb.alloc(static_cast<uint32_t>(pitch) * 20);
        Rng rng(simd == isa::SimdIsa::Mmx ? 3 : 4);
        for (int i = 0; i < pitch * 18; ++i) {
            tb.poke8(a + static_cast<uint32_t>(i),
                     static_cast<uint8_t>(rng.below(256)));
            tb.poke8(b + static_cast<uint32_t>(i),
                     static_cast<uint8_t>(rng.below(256)));
        }
        IVal av = s.imm(static_cast<int32_t>(a));
        IVal bv = s.imm(static_cast<int32_t>(b));
        IVal sad = simd == isa::SimdIsa::Mom
            ? sad16x16Mom(s, mv, av, bv, pitch)
            : sad16x16Mmx(s, mx, av, bv, pitch);
        EXPECT_EQ(sad.v, hostSad16x16(tb, a, b, pitch))
            << isa::toString(simd);
    }
}

TEST(Sad, MomUsesFarFewerRecords)
{
    auto countRecords = [](isa::SimdIsa simd) {
        trace::TraceBuilder tb("t", simd, kBase);
        ScalarEmitter s(tb);
        MmxEmitter mx(tb);
        MomEmitter mv(tb);
        uint32_t a = tb.alloc(64 * 20), b = tb.alloc(64 * 20);
        IVal av = s.imm(static_cast<int32_t>(a));
        IVal bv = s.imm(static_cast<int32_t>(b));
        size_t before = tb.instCount();
        if (simd == isa::SimdIsa::Mom)
            sad16x16Mom(s, mv, av, bv, 64);
        else
            sad16x16Mmx(s, mx, av, bv, 64);
        return tb.instCount() - before;
    };
    size_t mmx = countRecords(isa::SimdIsa::Mmx);
    size_t mom = countRecords(isa::SimdIsa::Mom);
    // The fetch/issue pressure reduction of stream instructions.
    EXPECT_LT(mom * 5, mmx);
}

TEST(Synthetic, FramesAreDeterministicAndMove)
{
    auto f0a = makeLumaFrame(64, 48, 0, 9);
    auto f0b = makeLumaFrame(64, 48, 0, 9);
    EXPECT_EQ(f0a, f0b);                     // deterministic
    auto f1 = makeLumaFrame(64, 48, 1, 9);
    EXPECT_NE(f0a, f1);                      // motion between frames
    int diff = 0;
    for (size_t i = 0; i < f0a.size(); ++i)
        diff += std::abs(static_cast<int>(f0a[i]) - f1[i]);
    // Small per-frame motion: different but correlated.
    EXPECT_GT(diff, 0);
    EXPECT_LT(diff, static_cast<int>(f0a.size()) * 64);
    auto g = makeLumaFrame(64, 48, 0, 10);
    EXPECT_NE(f0a, g);                       // seed changes content
}

TEST(Synthetic, RgbImageHasStructure)
{
    std::vector<uint8_t> r, g, b;
    makeRgbImage(64, 64, 5, r, g, b);
    ASSERT_EQ(r.size(), 64u * 64u);
    // Not flat: the DCT must have real work.
    int distinct = 0;
    std::array<bool, 256> seen{};
    for (uint8_t v : r) {
        if (!seen[v]) {
            seen[v] = true;
            ++distinct;
        }
    }
    EXPECT_GT(distinct, 20);
}

} // namespace
} // namespace momsim::workloads
