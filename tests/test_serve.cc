/**
 * @file
 * Tests for the socket transport behind `momsim serve`: the shared
 * ResponseSequencer state machine (in-order emission, id salvage,
 * blank-line skipping, kOverloaded shedding, write-failure draining),
 * the Listener (TCP + unix accept, wake), and Connection end to end
 * over a real loopback socket — including the abrupt-disconnect case
 * the daemon must survive.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/net.hh"
#include "svc/connection.hh"
#include "svc/listener.hh"
#include "svc/sequencer.hh"
#include "svc/sim_service.hh"

namespace momsim::svc
{
namespace
{

// ---------------------------------------------------------------------
// ResponseSequencer
// ---------------------------------------------------------------------

/** A submit hook that echoes ok responses without simulating. */
SimResponse
echoSubmit(const SimRequest &req)
{
    SimResponse resp;
    resp.id = req.id;
    resp.ok = true;
    return resp;
}

std::string
requestLine(const std::string &id)
{
    SimRequest req;
    req.id = id;
    return req.toJson();
}

TEST(Sequencer, EmitsInInputOrderDespiteOutOfOrderCompletion)
{
    std::vector<std::string> out;
    ResponseSequencer::Config cfg;
    cfg.submit = [](const SimRequest &req) {
        // The first request finishes last: emission order must still
        // be input order.
        if (req.id == "slow")
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return echoSubmit(req);
    };
    cfg.emit = [&out](const std::string &line) {
        out.push_back(line);
        return true;
    };
    cfg.parallel = 4;
    {
        ResponseSequencer seq(cfg);
        seq.push(requestLine("slow"));
        seq.push(requestLine("fast1"));
        seq.push(requestLine("fast2"));
        seq.finish();
        EXPECT_EQ(seq.accepted(), 3u);
        EXPECT_EQ(seq.emitted(), 3u);
        EXPECT_FALSE(seq.writeFailed());
    }
    ASSERT_EQ(out.size(), 3u);
    EXPECT_NE(out[0].find("\"id\":\"slow\""), std::string::npos);
    EXPECT_NE(out[1].find("\"id\":\"fast1\""), std::string::npos);
    EXPECT_NE(out[2].find("\"id\":\"fast2\""), std::string::npos);
}

TEST(Sequencer, MalformedLineSalvagesIdAndBlankLinesSkip)
{
    std::vector<std::string> out;
    ResponseSequencer::Config cfg;
    cfg.submit = echoSubmit;
    cfg.emit = [&out](const std::string &line) {
        out.push_back(line);
        return true;
    };
    cfg.clientTag = "c9";
    ResponseSequencer seq(cfg);
    seq.push("");
    seq.push(requestLine("good"));
    seq.push("");
    seq.push("{\"id\":\"lost-req\", this is not json");
    seq.push("");
    seq.finish();

    ASSERT_EQ(out.size(), 2u);  // blank lines produce no slots
    EXPECT_EQ(seq.accepted(), 2u);
    EXPECT_NE(out[0].find("\"id\":\"good\""), std::string::npos);
    // The bad_request response echoes the salvaged id and the
    // transport's client tag, so the client can correlate it.
    EXPECT_NE(out[1].find("\"id\":\"lost-req\""), std::string::npos);
    EXPECT_NE(out[1].find("\"ok\":false"), std::string::npos);
    EXPECT_NE(out[1].find("\"code\":\"bad_request\""), std::string::npos);
    EXPECT_NE(out[1].find("\"client\":\"c9\""), std::string::npos);
}

TEST(Sequencer, ShedsWithOverloadedWhenQueueFull)
{
    // One submitter parked inside submit; maxPending 1. Line A is
    // in-flight, line B queued (fills the queue), line C must shed
    // with a structured kOverloaded error in its slot, in order.
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    std::atomic<int> entered{ 0 };

    std::vector<std::string> out;
    ResponseSequencer::Config cfg;
    cfg.submit = [&](const SimRequest &req) {
        entered.fetch_add(1);
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return release; });
        return echoSubmit(req);
    };
    cfg.emit = [&out](const std::string &line) {
        out.push_back(line);
        return true;
    };
    cfg.parallel = 1;
    cfg.maxPending = 1;
    cfg.shedOnFull = true;
    ResponseSequencer seq(cfg);

    seq.push(requestLine("a"));
    // Wait until the submitter holds "a" so the queue is empty again.
    while (entered.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    seq.push(requestLine("b"));     // queued: pending = 1 = max
    seq.push(requestLine("c"));     // full: shed
    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    seq.finish();

    EXPECT_EQ(seq.shedCount(), 1u);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_NE(out[0].find("\"id\":\"a\""), std::string::npos);
    EXPECT_NE(out[1].find("\"id\":\"b\""), std::string::npos);
    EXPECT_NE(out[2].find("\"id\":\"c\""), std::string::npos);
    EXPECT_NE(out[2].find("\"code\":\"overloaded\""), std::string::npos);
    EXPECT_NE(out[2].find("\"ok\":false"), std::string::npos);
    // Shed requests are never executed.
    EXPECT_EQ(entered.load(), 2);
}

TEST(Sequencer, WriteFailureDrainsWithoutSimulating)
{
    // Delivery dies on the first emit. With one submitter and a
    // 1-deep queue, at most two requests can already be in the
    // pipeline; everything after must drain unexecuted.
    std::atomic<int> executed{ 0 };
    ResponseSequencer::Config cfg;
    cfg.submit = [&](const SimRequest &req) {
        executed.fetch_add(1);
        // Slow enough that the emitter's failure lands before the
        // pipeline can race far ahead.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return echoSubmit(req);
    };
    cfg.emit = [](const std::string &) { return false; };
    cfg.parallel = 1;
    cfg.maxPending = 1;
    ResponseSequencer seq(cfg);

    for (int i = 0; i < 20; ++i)
        seq.push(requestLine(strfmt("r%d", i)));
    seq.finish();

    EXPECT_TRUE(seq.writeFailed());
    EXPECT_EQ(seq.emitted(), 0u);
    EXPECT_LE(executed.load(), 3);  // in-flight + queued at failure
    EXPECT_LT(seq.accepted(), 20u); // pushes after failure are dropped
}

// ---------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------

TEST(Listener, BindsTcpAndUnixAndWakes)
{
    const std::string sock = "test_serve.listener.sock";
    Listener listener;
    Listener::Options opts;
    opts.tcpPort = 0;       // ephemeral
    opts.unixPath = sock;
    std::string error;
    ASSERT_TRUE(listener.open(opts, error)) << error;
    EXPECT_GT(listener.boundPort(), 0);
    ASSERT_EQ(listener.boundAddresses().size(), 2u);

    // A TCP client and a unix client both get accepted.
    std::thread tcpClient([&] {
        std::string err;
        int fd = net::connectTcp("127.0.0.1", listener.boundPort(), err);
        ASSERT_GE(fd, 0) << err;
        ::close(fd);
    });
    int accepted = listener.acceptClient();
    EXPECT_GE(accepted, 0);
    ::close(accepted);
    tcpClient.join();

    std::thread unixClient([&] {
        std::string err;
        int fd = net::connectUnix(sock, err);
        ASSERT_GE(fd, 0) << err;
        ::close(fd);
    });
    accepted = listener.acceptClient();
    EXPECT_GE(accepted, 0);
    ::close(accepted);
    unixClient.join();

    // wake() unblocks a pending accept with -1 (the drain signal).
    std::thread waker([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        listener.wake();
    });
    EXPECT_EQ(listener.acceptClient(), -1);
    waker.join();
    listener.close();
}

TEST(Listener, RejectsEmptyOptionsAndBadAddresses)
{
    Listener listener;
    std::string error;
    EXPECT_FALSE(listener.open({}, error));
    EXPECT_FALSE(error.empty());

    Listener::Options bad;
    bad.tcpPort = 80;
    bad.host = "not-an-ip";
    error.clear();
    EXPECT_FALSE(listener.open(bad, error));
    EXPECT_NE(error.find("not-an-ip"), std::string::npos);
}

// ---------------------------------------------------------------------
// Connection over a real loopback socket
// ---------------------------------------------------------------------

/** Read from fd until EOF; returns everything received. */
std::string
readAll(int fd)
{
    std::string out;
    char buf[4096];
    for (;;) {
        long got = net::readSome(fd, buf, sizeof(buf));
        if (got <= 0)
            return out;
        out.append(buf, static_cast<size_t>(got));
    }
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

/** A tiny explicit-axes request that simulates in milliseconds. */
SimRequest
tinyRequest(const std::string &id)
{
    SimRequest req;
    req.id = id;
    req.isas = { "mmx" };
    req.threads = { 1 };
    req.memModels = { "perfect" };
    req.quick = true;
    req.maxCycles = 50000;
    return req;
}

TEST(ServeConnection, ServesATaggedStreamInOrder)
{
    SimService service;
    Listener listener;
    Listener::Options opts;
    opts.tcpPort = 0;
    std::string error;
    ASSERT_TRUE(listener.open(opts, error)) << error;

    std::string err;
    int clientFd =
        net::connectTcp("127.0.0.1", listener.boundPort(), err);
    ASSERT_GE(clientFd, 0) << err;
    int serverFd = listener.acceptClient();
    ASSERT_GE(serverFd, 0);

    Connection conn(serverFd, service, {}, "c1");
    conn.start();

    // Two valid requests (one carrying its own client tag), one
    // malformed line with a salvageable id, and no trailing newline on
    // the last request — all answered, in order.
    SimRequest tagged = tinyRequest("t2");
    tagged.client = "external-7";
    std::string wire = tinyRequest("t1").toJson() + "\n" +
                       "{\"id\":\"broken\" not json\n" +
                       tagged.toJson();
    ASSERT_TRUE(net::writeAll(clientFd, wire.data(), wire.size()));
    ::shutdown(clientFd, SHUT_WR);

    std::vector<std::string> lines = splitLines(readAll(clientFd));
    ::close(clientFd);
    conn.join();
    EXPECT_TRUE(conn.done());

    ASSERT_EQ(lines.size(), 3u);
    EXPECT_NE(lines[0].find("\"id\":\"t1\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"client\":\"c1\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos);
    EXPECT_NE(lines[1].find("\"id\":\"broken\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"code\":\"bad_request\""),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"client\":\"c1\""), std::string::npos);
    // A request's own client tag wins over the connection's.
    EXPECT_NE(lines[2].find("\"id\":\"t2\""), std::string::npos);
    EXPECT_NE(lines[2].find("\"client\":\"external-7\""),
              std::string::npos);
}

TEST(ServeConnection, SurvivesAbruptClientDisconnect)
{
    SimService service;
    Listener listener;
    Listener::Options opts;
    opts.tcpPort = 0;
    std::string error;
    ASSERT_TRUE(listener.open(opts, error)) << error;

    // Client sends requests then resets the connection without
    // reading a byte. The connection must finish (dropping what it
    // cannot deliver) and the service must stay healthy.
    std::string err;
    int clientFd =
        net::connectTcp("127.0.0.1", listener.boundPort(), err);
    ASSERT_GE(clientFd, 0) << err;
    int serverFd = listener.acceptClient();
    ASSERT_GE(serverFd, 0);

    Connection conn(serverFd, service, {}, "c1");
    conn.start();

    std::string wire;
    for (int i = 0; i < 8; ++i)
        wire += tinyRequest(strfmt("d%d", i)).toJson() + "\n";
    ASSERT_TRUE(net::writeAll(clientFd, wire.data(), wire.size()));
    net::setAbortiveClose(clientFd);
    ::close(clientFd);      // RST: the server's next write must fail

    conn.join();            // must terminate, not hang or crash
    EXPECT_TRUE(conn.done());

    // The daemon (and its warm service) keeps serving after the rude
    // client is gone.
    SimResponse after = service.submit(tinyRequest("after"));
    EXPECT_TRUE(after.ok) << after.errorMessage;
}

TEST(SimService, SharedCacheWarmsAcrossRequests)
{
    const std::string dir = "test_serve.cache";
    std::remove((dir + "/results.jsonl").c_str());
    ::rmdir(dir.c_str());

    SimService service;
    std::string error;
    ASSERT_TRUE(service.openCache(dir, error)) << error;
    EXPECT_EQ(service.cacheDir(), dir);

    SimRequest req = tinyRequest("warm1");
    SimResponse cold = service.submit(req);
    ASSERT_TRUE(cold.ok) << cold.errorMessage;
    EXPECT_EQ(cold.simulatedPoints, 1u);
    EXPECT_EQ(cold.cachedPoints, 0u);

    // Same request again, no cacheDir named in the request: the
    // service-lifetime store answers it without simulating.
    req.id = "warm2";
    SimResponse warm = service.submit(req);
    ASSERT_TRUE(warm.ok) << warm.errorMessage;
    EXPECT_EQ(warm.simulatedPoints, 0u);
    EXPECT_EQ(warm.cachedPoints, 1u);
    ASSERT_EQ(warm.rows.size(), 1u);
    EXPECT_EQ(warm.rows[0].run.cycles, cold.rows[0].run.cycles);

    // A fresh service on the same dir starts warm (persistence), and
    // a request naming the same dir explicitly shares the store.
    SimService reopened;
    ASSERT_TRUE(reopened.openCache(dir, error)) << error;
    req.id = "warm3";
    req.cacheDir = dir;
    SimResponse again = reopened.submit(req);
    ASSERT_TRUE(again.ok) << again.errorMessage;
    EXPECT_EQ(again.simulatedPoints, 0u);
    EXPECT_EQ(again.cachedPoints, 1u);
}

} // namespace
} // namespace momsim::svc
