/**
 * @file
 * Tests for the point-level scheduler (src/driver/point_scheduler.*)
 * and the concurrency contracts layered on it: singleflight dedup
 * executes every point exactly once no matter how many concurrent
 * requests ask for it, the in-memory LRU row cache replays within its
 * capacity and re-simulates past it, dispatch is round-robin-fair
 * across active requests (a small request never waits behind a large
 * sweep), exec failures propagate to wait(), concurrent duplicate
 * SimService submissions stay byte-identical to a serial replay, and
 * two ResultStore instances sharing one directory append whole lines.
 *
 * The scheduler-level tests inject a stub ExecFn and run a single
 * worker, gating the first execution on a latch — so the interleaving
 * under test (who queued what while the worker was busy) is fully
 * deterministic, not a matter of sleeps.
 */

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "driver/experiment.hh"
#include "driver/point_scheduler.hh"
#include "driver/result_store.hh"
#include "svc/sim_request.hh"
#include "svc/sim_response.hh"
#include "svc/sim_service.hh"

namespace momsim::driver
{
namespace
{

ExperimentSpec
specNamed(const std::string &id)
{
    ExperimentSpec spec;
    spec.id = id;
    return spec;
}

ResultRow
rowFor(const ExperimentSpec &spec)
{
    ResultRow row;
    row.id = spec.id;
    row.workload = spec.workload;
    row.threads = spec.threads;
    row.seed = spec.seed;
    row.run.cycles = 42;
    return row;
}

/**
 * The deterministic single-worker harness: records the order specs
 * reach exec, and (when armed) blocks the first exec call until the
 * test opens the gate — so the test can stack more requests behind a
 * busy worker and observe exactly what the dispatcher does next.
 */
struct StubExecHarness
{
    std::mutex m;
    std::condition_variable cv;
    bool gateArmed = false;
    bool gateOpen = false;
    bool firstTaken = false;
    bool firstBlocked = false;
    std::vector<std::string> order;     ///< spec ids, execution order

    PointScheduler::ExecFn exec()
    {
        return [this](const std::vector<const ExperimentSpec *> &specs) {
            {
                std::unique_lock<std::mutex> lock(m);
                if (gateArmed && !firstTaken) {
                    firstTaken = true;
                    firstBlocked = true;
                    cv.notify_all();
                    cv.wait(lock, [this] { return gateOpen; });
                }
                for (const ExperimentSpec *spec : specs)
                    order.push_back(spec->id);
            }
            std::vector<ResultRow> rows;
            rows.reserve(specs.size());
            for (const ExperimentSpec *spec : specs)
                rows.push_back(rowFor(*spec));
            return rows;
        };
    }

    /** Block until the worker is inside the gated first exec. */
    void awaitFirstBlocked()
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [this] { return firstBlocked; });
    }

    void openGate()
    {
        {
            std::lock_guard<std::mutex> lock(m);
            gateOpen = true;
        }
        cv.notify_all();
    }

    size_t indexOf(const std::string &id) const
    {
        for (size_t i = 0; i < order.size(); ++i) {
            if (order[i] == id)
                return i;
        }
        return order.size();
    }
};

PointScheduler::Config
oneWorker(size_t memCacheRows = 4096)
{
    PointScheduler::Config cfg;
    cfg.workers = 1;
    cfg.memCacheRows = memCacheRows;
    return cfg;
}

// ---------------------------------------------------------------------------
// Singleflight dedup + memory cache (stub exec)
// ---------------------------------------------------------------------------

TEST(PointScheduler, DuplicateJoinsInFlightThenReplaysFromMemory)
{
    StubExecHarness h;
    h.gateArmed = true;
    PointScheduler sched(oneWorker());

    ExperimentSpec dup = specNamed("dup");
    ExperimentSpec extra = specNamed("extra");

    std::vector<ResultRow> got(3);
    auto deliverTo = [&](size_t base) {
        return [&got, base](size_t slot, const ResultRow &row) {
            got[base + slot] = row;
        };
    };

    PointScheduler::Request a(sched, h.exec(), deliverTo(0));
    a.add(dup, "key-dup");
    h.awaitFirstBlocked();      // the worker is now executing "dup"

    // While "dup" executes for A, B asking for the same key must join
    // that execution, and B's second point queues normally.
    PointScheduler::Request b(sched, h.exec(), deliverTo(1));
    b.add(dup, "key-dup");
    b.add(extra, "key-extra");

    h.openGate();
    a.wait();
    b.wait();

    // Exactly-once: "dup" reached exec a single time.
    EXPECT_EQ(h.order, (std::vector<std::string> { "dup", "extra" }));
    EXPECT_EQ(got[0].id, "dup");
    EXPECT_EQ(got[1].id, "dup");    // B's joined copy of A's execution
    EXPECT_EQ(got[2].id, "extra");

    PointScheduler::Counters c = sched.counters();
    EXPECT_EQ(c.pointsSimulated, 2u);
    EXPECT_EQ(c.pointsDeduped, 1u);
    EXPECT_EQ(c.memCacheHits, 0u);

    // After completion the row sits in the LRU: a third request for the
    // same key never reaches exec at all.
    PointScheduler::Request later(sched, h.exec(),
                                  [&](size_t, const ResultRow &row) {
                                      EXPECT_EQ(row.id, "dup");
                                  });
    later.add(dup, "key-dup");
    later.wait();
    EXPECT_EQ(h.order.size(), 2u);
    c = sched.counters();
    EXPECT_EQ(c.pointsSimulated, 2u);
    EXPECT_EQ(c.memCacheHits, 1u);
    EXPECT_EQ(c.requestsStarted, 3u);
    EXPECT_EQ(c.activeRequests, 0);
}

TEST(PointScheduler, LruCapacityBoundsTheRowCache)
{
    StubExecHarness h;
    PointScheduler sched(oneWorker(/*memCacheRows=*/1));

    ExperimentSpec k1 = specNamed("k1");
    ExperimentSpec k2 = specNamed("k2");
    auto drop = [](size_t, const ResultRow &) {};
    auto oneShot = [&](const ExperimentSpec &spec, const char *key) {
        PointScheduler::Request req(sched, h.exec(), drop);
        req.add(spec, key);
        req.wait();
    };

    oneShot(k1, "key1");        // simulated, cached
    oneShot(k1, "key1");        // memory hit
    oneShot(k2, "key2");        // simulated, evicts key1 (capacity 1)
    oneShot(k1, "key1");        // simulated again

    PointScheduler::Counters c = sched.counters();
    EXPECT_EQ(c.pointsSimulated, 3u);
    EXPECT_EQ(c.memCacheHits, 1u);
    EXPECT_EQ(h.order,
              (std::vector<std::string> { "k1", "k2", "k1" }));
}

TEST(PointScheduler, ZeroMemCacheRowsDisablesTheRowCache)
{
    StubExecHarness h;
    PointScheduler sched(oneWorker(/*memCacheRows=*/0));

    ExperimentSpec k1 = specNamed("k1");
    auto drop = [](size_t, const ResultRow &) {};
    for (int i = 0; i < 2; ++i) {
        PointScheduler::Request req(sched, h.exec(), drop);
        req.add(k1, "key1");
        req.wait();
    }

    PointScheduler::Counters c = sched.counters();
    EXPECT_EQ(c.pointsSimulated, 2u);
    EXPECT_EQ(c.memCacheHits, 0u);
}

// ---------------------------------------------------------------------------
// Fair dispatch / no head-of-line blocking (stub exec)
// ---------------------------------------------------------------------------

TEST(PointScheduler, SmallRequestIsNotBlockedBehindALargeSweep)
{
    StubExecHarness h;
    h.gateArmed = true;
    PointScheduler sched(oneWorker());

    std::vector<ExperimentSpec> big;
    for (int i = 0; i < 6; ++i)
        big.push_back(specNamed(strfmt("big%d", i)));
    std::vector<ExperimentSpec> small;
    for (int i = 0; i < 2; ++i)
        small.push_back(specNamed(strfmt("small%d", i)));

    auto drop = [](size_t, const ResultRow &) {};
    PointScheduler::Request a(sched, h.exec(), drop);
    for (const ExperimentSpec &spec : big)
        a.add(spec, spec.id);
    h.awaitFirstBlocked();      // worker busy on big0, 5 groups queued

    PointScheduler::Request b(sched, h.exec(), drop);
    for (const ExperimentSpec &spec : small)
        b.add(spec, spec.id);

    h.openGate();
    a.wait();
    b.wait();

    // Round-robin dispatch interleaves B within one rotation: both of
    // B's points execute while A still has queued work, instead of
    // waiting for A's whole sweep (the head-of-line-blocking failure
    // this scheduler exists to prevent).
    ASSERT_EQ(h.order.size(), 8u);
    EXPECT_LT(h.indexOf("small1"), h.indexOf("big3"));
    EXPECT_LT(h.indexOf("small0"), h.indexOf("small1"));
}

TEST(PointScheduler, DispatchRotatesFairlyAcrossThreeRequests)
{
    StubExecHarness h;
    h.gateArmed = true;
    PointScheduler sched(oneWorker());

    // Three requests of three points each, all queued while the single
    // worker sits inside request A's gated first execution.
    std::vector<ExperimentSpec> specs;
    for (char r = 'A'; r <= 'C'; ++r) {
        for (int i = 0; i < 3; ++i)
            specs.push_back(specNamed(strfmt("%c%d", r, i)));
    }
    auto drop = [](size_t, const ResultRow &) {};
    PointScheduler::Request a(sched, h.exec(), drop);
    for (int i = 0; i < 3; ++i)
        a.add(specs[static_cast<size_t>(i)], specs[static_cast<size_t>(i)].id);
    h.awaitFirstBlocked();

    PointScheduler::Request b(sched, h.exec(), drop);
    PointScheduler::Request c(sched, h.exec(), drop);
    for (int i = 0; i < 3; ++i) {
        b.add(specs[static_cast<size_t>(3 + i)],
              specs[static_cast<size_t>(3 + i)].id);
        c.add(specs[static_cast<size_t>(6 + i)],
              specs[static_cast<size_t>(6 + i)].id);
    }

    h.openGate();
    a.wait();
    b.wait();
    c.wait();

    // order[0] is A's gated point; afterwards every rotation of three
    // picks must touch three *distinct* requests while all three still
    // have queued work — that is the fairness contract.
    ASSERT_EQ(h.order.size(), 9u);
    for (size_t base : { size_t(1), size_t(4) }) {
        std::set<char> owners;
        for (size_t i = base; i < base + 3; ++i)
            owners.insert(h.order[i][0]);
        EXPECT_EQ(owners.size(), 3u)
            << "picks " << base << ".." << base + 2
            << " starved a request";
    }
}

// ---------------------------------------------------------------------------
// Failure propagation
// ---------------------------------------------------------------------------

TEST(PointScheduler, ExecFailureRethrowsFromWait)
{
    PointScheduler sched(oneWorker());
    ExperimentSpec spec = specNamed("boom");
    PointScheduler::Request req(
        sched,
        [](const std::vector<const ExperimentSpec *> &)
            -> std::vector<ResultRow> {
            throw std::runtime_error("injected exec failure");
        },
        [](size_t, const ResultRow &) { FAIL() << "delivered a row"; });
    req.add(spec, "key-boom");
    EXPECT_THROW(req.wait(), std::runtime_error);
    EXPECT_EQ(sched.counters().pointsSimulated, 0u);
}

// ---------------------------------------------------------------------------
// SimService: concurrent duplicate submissions
// ---------------------------------------------------------------------------

svc::SimRequest
tinySweep(const std::string &id)
{
    svc::SimRequest req;
    req.id = id;
    req.client = "t";
    req.isas = { "mmx" };
    req.threads = { 1, 2 };
    req.memModels = { "perfect" };
    req.quick = true;
    req.maxCycles = 20000;
    return req;
}

TEST(SimServiceScheduler, ConcurrentDuplicatesSimulateEachPointOnce)
{
    svc::SimServiceConfig cfg;
    cfg.jobs = 2;
    svc::SimService service(cfg);

    constexpr int kClients = 4;
    std::vector<svc::SimResponse> responses(kClients);
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&service, &responses, i] {
            responses[static_cast<size_t>(i)] =
                service.submit(tinySweep("dup"));
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Byte-identity: every concurrent response equals a serial replay
    // on a fresh service, timing zeroed.
    svc::SimService fresh;
    const std::string want = fresh.submit(tinySweep("dup")).toJson(false);
    for (const svc::SimResponse &resp : responses) {
        ASSERT_TRUE(resp.ok) << resp.errorMessage;
        EXPECT_EQ(resp.toJson(false), want);
    }

    // Exactly-once: the sweep has 2 points; 4 concurrent copies must
    // leave the simulated counter at 2, with the other 6 answers
    // accounted as in-flight joins or memory-cache replays.
    const PointScheduler::Counters c = service.counters();
    EXPECT_EQ(c.pointsSimulated, 2u);
    EXPECT_EQ(c.pointsDeduped + c.memCacheHits,
              static_cast<uint64_t>(2 * (kClients - 1)));
    EXPECT_EQ(c.requestsStarted, static_cast<uint64_t>(kClients));
    EXPECT_EQ(c.activeRequests, 0);
    EXPECT_EQ(c.diskCacheHits, 0u);
}

// ---------------------------------------------------------------------------
// ResultStore: concurrent appends to one directory
// ---------------------------------------------------------------------------

TEST(ResultStoreConcurrency, InterleavedPutsFromTwoStoresStayLineAtomic)
{
    const std::string dir = "test_scheduler.store";
    std::remove((dir + "/" + ResultStore::kFileName).c_str());

    // Two in-process store instances on the same directory — the shape
    // of two requests carrying the same --cache-dir — hammered from
    // four threads. Every row must survive as its own parseable line.
    ResultStore a, b;
    ASSERT_TRUE(a.openDir(dir));
    ASSERT_TRUE(b.openDir(dir));

    constexpr int kThreads = 4;
    constexpr int kRowsPerThread = 50;
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&a, &b, t] {
            ResultStore &store = (t % 2) ? b : a;
            for (int i = 0; i < kRowsPerThread; ++i) {
                ExperimentSpec spec =
                    specNamed(strfmt("row-%d-%d", t, i));
                spec.seed = static_cast<uint64_t>(t) * 1000u +
                            static_cast<uint64_t>(i);
                store.put(strfmt("k-%d-%d", t, i), rowFor(spec));
            }
        });
    }
    for (std::thread &t : writers)
        t.join();

    ResultStore reopened;
    ASSERT_TRUE(reopened.openDir(dir));
    ASSERT_EQ(reopened.size(),
              static_cast<size_t>(kThreads * kRowsPerThread));
    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kRowsPerThread; ++i) {
            ResultRow row;
            ASSERT_TRUE(reopened.find(strfmt("k-%d-%d", t, i), row));
            EXPECT_EQ(row.id, strfmt("row-%d-%d", t, i));
            EXPECT_EQ(row.seed, static_cast<uint64_t>(t) * 1000u +
                                    static_cast<uint64_t>(i));
        }
    }
}

} // namespace
} // namespace momsim::driver
