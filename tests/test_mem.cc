/**
 * @file
 * Unit tests for the memory system: DRAM channel bandwidth/latency, cache
 * hit/miss/LRU/MSHR/write-buffer behaviour, and the three hierarchies
 * (perfect / conventional / decoupled with exclusive-bit coherence).
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"

namespace momsim::mem
{
namespace
{

TEST(Dram, LatencyAndOccupancy)
{
    RambusChannel ch;
    uint64_t t1 = ch.access(0, 0x1000, 128, false);
    // 56 latency + 128/4 = 32 transfer
    EXPECT_EQ(t1, 56u + 32u);
    // Back-to-back: second transfer queues behind channel occupancy.
    uint64_t t2 = ch.access(0, 0x800000, 128, false);
    EXPECT_GT(t2, t1);
}

TEST(Dram, DeviceInterleavingReducesQueueing)
{
    RambusChannel a, b;
    // Same device repeatedly vs spread across devices.
    uint64_t sameDone = 0, spreadDone = 0;
    for (int i = 0; i < 8; ++i)
        sameDone = a.access(0, 0x1000, 32, false);
    for (int i = 0; i < 8; ++i)
        spreadDone = b.access(0, 0x1000 + (static_cast<uint64_t>(i) << 12),
                              32, false);
    EXPECT_GE(sameDone, spreadDone);
}

CacheConfig
smallL1()
{
    CacheConfig cfg;
    cfg.name = "t1";
    cfg.sizeBytes = 1024;
    cfg.lineBytes = 32;
    cfg.ways = 1;
    cfg.banks = 4;
    cfg.bankShift = 3;
    cfg.hitLatency = 1;
    cfg.numMshrs = 2;
    cfg.writeBufferEntries = 2;
    cfg.writeBack = false;
    cfg.portsPerCycle = 4;
    return cfg;
}

TEST(Cache, MissThenHit)
{
    Cache c(smallL1());
    CacheResult m = c.access(0, 0x100, false);
    ASSERT_TRUE(m.accepted);
    EXPECT_FALSE(m.hit);
    ASSERT_TRUE(m.needsFill);
    c.fillDone(m.missAddr, 20);

    // A hit on the still-in-flight line is a delayed hit: it waits for
    // the fill to land.
    CacheResult h = c.access(1, 0x104, false);   // same line
    ASSERT_TRUE(h.accepted);
    EXPECT_TRUE(h.hit);
    EXPECT_EQ(h.readyCycle, 20u);
    // Once the fill has landed, hits take one cycle.
    CacheResult h2 = c.access(25, 0x104, false);
    ASSERT_TRUE(h2.accepted);
    EXPECT_TRUE(h2.hit);
    EXPECT_EQ(h2.readyCycle, 26u);
}

TEST(Cache, DirectMappedConflictEvicts)
{
    Cache c(smallL1());   // 1KB DM, 32 sets of 32B
    CacheResult a = c.access(0, 0x0, false);
    c.fillDone(a.missAddr, 5);
    // Same index, different tag (offset by cache size).
    CacheResult b = c.access(10, 0x400, false);
    ASSERT_TRUE(b.accepted);
    EXPECT_FALSE(b.hit);
    c.fillDone(b.missAddr, 15);
    // The original line is gone.
    CacheResult back = c.access(20, 0x0, false);
    EXPECT_FALSE(back.hit);
}

TEST(Cache, TwoWayLruKeepsRecentlyUsed)
{
    CacheConfig cfg = smallL1();
    cfg.ways = 2;
    Cache c(cfg);
    // Three lines mapping to the same set (set stride = 512B for 2-way 1KB).
    auto r0 = c.access(0, 0x000, false);
    c.fillDone(r0.missAddr, 1);
    auto r1 = c.access(2, 0x200, false);
    c.fillDone(r1.missAddr, 3);
    // Touch line0 so line1 is LRU.
    EXPECT_TRUE(c.access(4, 0x000, false).hit);
    auto r2 = c.access(6, 0x400, false);   // evicts 0x200
    c.fillDone(r2.missAddr, 8);
    EXPECT_TRUE(c.access(10, 0x000, false).hit);
    EXPECT_FALSE(c.access(11, 0x200, false).hit);
}

TEST(Cache, MshrLimitCausesStall)
{
    Cache c(smallL1());   // 2 MSHRs; addresses chosen on distinct banks
    auto a = c.access(0, 0x000, false);   // bank 0, set 0
    auto b = c.access(0, 0x108, false);   // bank 1, set 8
    ASSERT_TRUE(a.needsFill);
    ASSERT_TRUE(b.needsFill);
    // Third distinct miss cannot get an MSHR.
    auto d = c.access(0, 0x210, false);   // bank 2, set 16
    EXPECT_FALSE(d.accepted);
    EXPECT_GE(c.stats().get("mshrFull"), 1u);
    // Coalescing to an outstanding line still works.
    c.fillDone(a.missAddr, 50);
    auto e = c.access(1, 0x008, false);
    ASSERT_TRUE(e.accepted);
    EXPECT_EQ(e.readyCycle, 50u);
    // After the fill completes, the MSHR recycles.
    auto f = c.access(60, 0x210, false);
    EXPECT_TRUE(f.accepted);
}

TEST(Cache, BankConflictRejectsSameCycle)
{
    CacheConfig cfg = smallL1();
    cfg.banks = 2;
    cfg.bankShift = 3;
    Cache c(cfg);
    auto a = c.access(0, 0x000, false);     // bank 0
    ASSERT_TRUE(a.accepted);
    c.fillDone(a.missAddr, 2);
    auto b = c.access(0, 0x010, false);     // also bank 0 (bit3=0? 0x10>>3=2 -> bank 0)
    EXPECT_FALSE(b.accepted);
    EXPECT_GE(c.stats().get("bankConflicts"), 1u);
    auto d = c.access(0, 0x008, false);     // bank 1, same cycle: fine
    EXPECT_TRUE(d.accepted);
}

TEST(Cache, DoublePumpedBankTakesTwoPerCycle)
{
    CacheConfig cfg = smallL1();
    cfg.banks = 1;
    cfg.bankPumps = 2;
    cfg.portsPerCycle = 2;
    Cache c(cfg);
    auto a = c.access(0, 0x000, false);
    auto b = c.access(0, 0x300, false);
    EXPECT_TRUE(a.accepted);
    EXPECT_TRUE(b.accepted);
    auto d = c.access(0, 0x600, false);
    EXPECT_FALSE(d.accepted);   // ports exhausted this cycle
}

TEST(Cache, PortLimitPerCycle)
{
    CacheConfig cfg = smallL1();
    cfg.portsPerCycle = 2;
    Cache c(cfg);
    EXPECT_TRUE(c.access(0, 0x000, false).accepted);
    EXPECT_TRUE(c.access(0, 0x008, false).accepted);
    EXPECT_FALSE(c.access(0, 0x010, false).accepted);
    EXPECT_GE(c.stats().get("portConflicts"), 1u);
    // Next cycle the ports are fresh.
    EXPECT_TRUE(c.access(1, 0x210, false).accepted);
}

TEST(Cache, WriteThroughStoreMissDoesNotAllocate)
{
    Cache c(smallL1());
    auto w = c.access(0, 0x100, true);
    ASSERT_TRUE(w.accepted);
    EXPECT_FALSE(w.hit);
    EXPECT_FALSE(w.needsFill);
    // A later load still misses: the store did not allocate.
    auto r = c.access(1, 0x100, false);
    EXPECT_FALSE(r.hit);
}

TEST(Cache, WriteBackSetsDirtyAndEvicts)
{
    CacheConfig cfg = smallL1();
    cfg.writeBack = true;
    Cache c(cfg);
    auto w = c.access(0, 0x040, true);
    ASSERT_TRUE(w.needsFill);
    c.fillDone(w.missAddr, 3);
    // Conflict eviction of the dirty line reports the victim.
    auto v = c.access(10, 0x440, false);
    ASSERT_TRUE(v.accepted);
    EXPECT_TRUE(v.dirtyEviction);
    EXPECT_EQ(v.victimAddr, 0x040u);
}

TEST(Cache, WriteBufferCoalescesAndFills)
{
    Cache c(smallL1());   // 2 WB entries
    EXPECT_TRUE(c.wbProbe(0, 0x100));
    c.wbInsert(0, 0x100, 100);
    bool coalesced = false;
    c.wbInsert(0, 0x108, 100, &coalesced);   // same line
    EXPECT_TRUE(coalesced);
    c.wbInsert(0, 0x200, 100);
    EXPECT_FALSE(c.wbProbe(1, 0x300));       // full with two lines
    EXPECT_TRUE(c.wbProbe(1, 0x100));        // coalescing still admissible
    EXPECT_TRUE(c.wbHit(5, 0x104));
    EXPECT_FALSE(c.wbHit(200, 0x104));       // drained by then
    EXPECT_TRUE(c.wbProbe(200, 0x300));      // slots recycled
}

TEST(Cache, BlockingAccessWaitsInsteadOfRejecting)
{
    CacheConfig cfg = smallL1();
    cfg.banks = 1;
    Cache c(cfg);
    auto a = c.accessBlocking(0, 0x000, false, 32);
    ASSERT_TRUE(a.accepted);
    c.fillDone(a.missAddr, 40);
    // Fill occupied the bank for 32/16 = 2 cycles; a second blocking
    // access at the same cycle still gets served (later).
    auto b = c.accessBlocking(0, 0x200, false, 32);
    EXPECT_TRUE(b.accepted);
}

MemConfig
testConfig()
{
    return MemConfig{};
}

TEST(Hierarchy, PerfectAlwaysHitsNextCycle)
{
    PerfectMemory pm;
    MemAccess req;
    req.addr = 0xDEAD00;
    MemReply rep = pm.access(7, req);
    EXPECT_TRUE(rep.accepted);
    EXPECT_TRUE(rep.l1Hit);
    EXPECT_EQ(rep.readyCycle, 8u);
    EXPECT_DOUBLE_EQ(pm.l1HitRate(), 1.0);
}

TEST(Hierarchy, ConventionalLoadMissGoesThroughL2)
{
    ConventionalHierarchy h(testConfig());
    MemAccess req;
    req.addr = 16u << 20;
    MemReply miss = h.access(0, req);
    ASSERT_TRUE(miss.accepted);
    EXPECT_FALSE(miss.l1Hit);
    // L2 also misses -> DRAM: latency well beyond the 12-cycle L2.
    EXPECT_GT(miss.readyCycle, 60u);

    MemReply hit = h.access(miss.readyCycle + 1, req);
    ASSERT_TRUE(hit.accepted);
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(hit.readyCycle, miss.readyCycle + 2);

    // A second L1 miss to the same L2 line is an L2 hit: ~12+1 cycles.
    MemAccess near = req;
    near.addr = req.addr + 64;   // same 128B L2 line, different L1 line
    MemReply l2hit = h.access(miss.readyCycle + 5, near);
    ASSERT_TRUE(l2hit.accepted);
    EXPECT_FALSE(l2hit.l1Hit);
    EXPECT_LE(l2hit.readyCycle, miss.readyCycle + 5 + 20);
}

TEST(Hierarchy, StoreCompletesIntoWriteBufferAndForwards)
{
    ConventionalHierarchy h(testConfig());
    MemAccess st;
    st.addr = 16u << 20;
    st.isWrite = true;
    MemReply w = h.access(0, st);
    ASSERT_TRUE(w.accepted);
    EXPECT_EQ(w.readyCycle, 1u);    // into the buffer, not to memory

    // A load right behind it forwards from the write buffer.
    MemAccess ld = st;
    ld.isWrite = false;
    MemReply f = h.access(1, ld);
    ASSERT_TRUE(f.accepted);
    EXPECT_TRUE(f.l1Hit);
    EXPECT_EQ(f.readyCycle, 2u);
    EXPECT_GE(h.statsOf("l1")->get("wbForwards"), 1u);
}

TEST(Hierarchy, IfetchMissesThenHits)
{
    ConventionalHierarchy h(testConfig());
    FetchReply a = h.ifetch(0, 0x400000);
    ASSERT_TRUE(a.accepted);
    EXPECT_FALSE(a.hit);
    EXPECT_GT(a.readyCycle, 12u);
    FetchReply b = h.ifetch(a.readyCycle, 0x400004);
    ASSERT_TRUE(b.accepted);
    EXPECT_TRUE(b.hit);
}

TEST(Hierarchy, DecoupledVectorBypassesL1)
{
    DecoupledHierarchy h(testConfig());
    MemAccess vec;
    vec.addr = 32u << 20;
    vec.isVector = true;
    MemReply r = h.access(0, vec);
    ASSERT_TRUE(r.accepted);
    EXPECT_FALSE(r.l1Hit);
    // The L1 saw nothing.
    EXPECT_EQ(h.statsOf("l1")->get("accesses"), 0u);
    EXPECT_GE(h.statsOf("l2")->get("accesses"), 1u);
}

TEST(Hierarchy, DecoupledVectorPortLimit)
{
    DecoupledHierarchy h(testConfig());
    MemAccess vec;
    vec.isVector = true;
    vec.addr = 32u << 20;
    MemReply a = h.access(0, vec);
    vec.addr += 128;
    MemReply b = h.access(0, vec);
    vec.addr += 128;
    MemReply c = h.access(0, vec);
    EXPECT_TRUE(a.accepted);
    EXPECT_TRUE(b.accepted);
    EXPECT_FALSE(c.accepted);   // only 2 vector ports per cycle
}

TEST(Hierarchy, ExclusiveBitInvalidatesL1Copy)
{
    DecoupledHierarchy h(testConfig());
    uint64_t addr = 48u << 20;

    // Scalar load caches the line in L1.
    MemAccess sc;
    sc.addr = addr;
    MemReply warm = h.access(0, sc);
    ASSERT_TRUE(warm.accepted);
    MemReply hit = h.access(warm.readyCycle + 1, sc);
    EXPECT_TRUE(hit.l1Hit);

    // Vector store to the same line must invalidate the L1 copy.
    MemAccess vec;
    vec.addr = addr;
    vec.isVector = true;
    vec.isWrite = true;
    MemReply v = h.access(hit.readyCycle + 1, vec);
    ASSERT_TRUE(v.accepted);
    EXPECT_GE(h.statsOf("l2")->get("vecInvalidations"), 1u);

    // The next scalar load misses in L1 again.
    MemReply after = h.access(v.readyCycle + 1, sc);
    ASSERT_TRUE(after.accepted);
    EXPECT_FALSE(after.l1Hit);
}

TEST(Hierarchy, FactoryProducesAllModels)
{
    for (MemModel m : { MemModel::Perfect, MemModel::Conventional,
                        MemModel::Decoupled }) {
        auto sys = makeMemorySystem(m);
        ASSERT_NE(sys, nullptr) << toString(m);
        MemAccess req;
        req.addr = 16u << 20;
        MemReply rep = sys->access(0, req);
        EXPECT_TRUE(rep.accepted) << toString(m);
    }
}

TEST(Hierarchy, ThrashingDegradesHitRate)
{
    // Property: a working set far beyond 32 KB produces a much lower hit
    // rate than one that fits; the Table-4 interference phenomenon in
    // miniature.
    auto run = [](uint32_t span) {
        ConventionalHierarchy h(MemConfig{});
        uint64_t cycle = 0;
        for (int pass = 0; pass < 4; ++pass) {
            for (uint32_t off = 0; off < span; off += 32) {
                MemAccess req;
                req.addr = (16u << 20) + off;
                MemReply rep = h.access(cycle, req);
                cycle = std::max(cycle + 1, rep.readyCycle);
            }
        }
        return h.l1HitRate();
    };
    double small = run(8 * 1024);
    double large = run(256 * 1024);
    EXPECT_GT(small, 0.70);
    EXPECT_LT(large, small - 0.3);
}

} // namespace
} // namespace momsim::mem
