/**
 * @file
 * Functional tests for the JPEG, GSM and mesa workload programs plus
 * the assembled 8-program media workload, and end-to-end integration
 * runs checking the paper's ordering claims at small scale.
 */

#include <gtest/gtest.h>

#include "core/simulation.hh"
#include "workloads/gsm.hh"
#include "workloads/jpeg.hh"
#include "workloads/media_workload.hh"
#include "workloads/mesa.hh"
#include "workloads/mpeg2.hh"

namespace momsim::workloads
{
namespace
{

constexpr uint32_t kBase = 16u << 20;

class JpegRoundTrip : public ::testing::TestWithParam<isa::SimdIsa>
{
};

TEST_P(JpegRoundTrip, EncodeDecodePreservesImage)
{
    JpegConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    JpegStream stream;
    trace::Program enc = buildJpegEncoder(GetParam(), kBase, cfg, &stream);
    EXPECT_GT(enc.size(), 1000u);
    EXPECT_GT(stream.bytes.size(), 50u);
    JpegDecoded dec;
    trace::Program decp =
        buildJpegDecoder(GetParam(), kBase + (32u << 20), stream, &dec);
    EXPECT_GT(decp.size(), 1000u);
    EXPECT_GT(planePsnr(stream.y, dec.y), 26.0);
    EXPECT_GT(planePsnr(stream.cb, dec.cb), 26.0);
    // The RGB output planes are populated and plausible.
    ASSERT_EQ(dec.r.size(), static_cast<size_t>(64 * 64));
    uint64_t sum = 0;
    for (uint8_t v : dec.r)
        sum += v;
    EXPECT_GT(sum, 0u);
}

TEST_P(JpegRoundTrip, CompressesTheImage)
{
    JpegConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    JpegStream stream;
    buildJpegEncoder(GetParam(), kBase, cfg, &stream);
    // 3 x 64 x 64 bytes raw = 12288; expect meaningful compression.
    EXPECT_LT(stream.bytes.size(), 5000u);
}

INSTANTIATE_TEST_SUITE_P(BothIsas, JpegRoundTrip,
                         ::testing::Values(isa::SimdIsa::Mmx,
                                           isa::SimdIsa::Mom),
                         [](const auto &info) {
                             return std::string(isa::toString(info.param));
                         });

TEST(Gsm, RoundTripIsDeterministicAndBounded)
{
    GsmConfig cfg;
    cfg.frames = 6;
    GsmStream stream;
    trace::Program enc =
        buildGsmEncoder(isa::SimdIsa::Mom, kBase, cfg, &stream);
    EXPECT_GT(enc.size(), 10000u);
    ASSERT_EQ(stream.input.size(), static_cast<size_t>(6 * 160));
    // ~13 kbit/s: 6 frames = 0.12 s => on the order of 200 bytes.
    EXPECT_GT(stream.bytes.size(), 100u);
    EXPECT_LT(stream.bytes.size(), 600u);

    GsmDecoded a, b;
    buildGsmDecoder(isa::SimdIsa::Mom, kBase + (32u << 20), stream, &a);
    buildGsmDecoder(isa::SimdIsa::Mom, kBase + (32u << 20), stream, &b);
    ASSERT_EQ(a.samples.size(), stream.input.size());
    EXPECT_EQ(a.samples, b.samples);     // bit-deterministic decode

    // The decoded signal is energetic and correlates with the input
    // (the simplified lattice keeps this loose; see EXPERIMENTS.md).
    double corr = sampleCorrelation(stream.input, a.samples);
    EXPECT_GT(corr, 0.05);
    int64_t energy = 0;
    for (int16_t v : a.samples)
        energy += static_cast<int64_t>(v) * v;
    EXPECT_GT(energy, 1000000);
}

TEST(Gsm, MixIsIntegerDominated)
{
    GsmConfig cfg;
    cfg.frames = 4;
    trace::Program enc =
        buildGsmEncoder(isa::SimdIsa::Mmx, kBase, cfg, nullptr);
    auto m = enc.mix();
    EXPECT_GT(m.intPct(), 0.5);     // speech coding is serial integer DSP
    trace::Program dec;
    GsmStream stream;
    buildGsmEncoder(isa::SimdIsa::Mmx, kBase, cfg, &stream);
    dec = buildGsmDecoder(isa::SimdIsa::Mmx, kBase + (32u << 20), stream);
    EXPECT_GT(dec.mix().intPct(), 0.8);
}

TEST(Mesa, RendersAndIsIsaInvariant)
{
    MesaConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.rings = 8;
    cfg.sides = 6;
    cfg.frames = 1;
    MesaRendered out;
    trace::Program mmx = buildMesa(isa::SimdIsa::Mmx, kBase, cfg, &out);
    trace::Program mom = buildMesa(isa::SimdIsa::Mom, kBase, cfg);
    // Not vectorized => byte-identical instruction streams (paper).
    ASSERT_EQ(mmx.size(), mom.size());
    auto a = mmx.mix(), b = mom.mix();
    EXPECT_EQ(a.eqInsts, b.eqInsts);
    EXPECT_EQ(a.simdOps, 0u);
    EXPECT_GT(a.fpOps, 0u);
    // Real rendering happened.
    EXPECT_GT(out.trianglesDrawn, 10u);
    EXPECT_GT(out.pixelsShaded, 200u);
    uint64_t lit = 0;
    for (uint8_t px : out.color) {
        if (px != 0x20)
            ++lit;
    }
    EXPECT_GT(lit, 200u);
    // Depth buffer: shaded pixels must carry a nearer depth than clear.
    size_t nearCount = 0;
    for (float z : out.depth) {
        if (z < 1.0e8f)
            ++nearCount;
    }
    EXPECT_GE(nearCount, lit);
}

TEST(MediaWorkloadSuite, BuildsAllEightProgramsBothIsas)
{
    auto wl = MediaWorkload::build(WorkloadScale::Tiny);
    for (int i = 0; i < MediaWorkload::kNumPrograms; ++i) {
        const auto &mmx = wl->program(isa::SimdIsa::Mmx, i);
        const auto &mom = wl->program(isa::SimdIsa::Mom, i);
        EXPECT_GT(mmx.size(), 100u) << wl->name(i);
        EXPECT_GT(mom.size(), 100u) << wl->name(i);
        EXPECT_EQ(mmx.simdIsa(), isa::SimdIsa::Mmx);
        EXPECT_EQ(mom.simdIsa(), isa::SimdIsa::Mom);
        // MOM never needs more equivalent instructions than MMX.
        EXPECT_LE(mom.mix().eqInsts, mmx.mix().eqInsts) << wl->name(i);
    }
    // The two mpeg2dec instances are rebased copies of each other.
    EXPECT_EQ(wl->program(isa::SimdIsa::Mmx, 2).size(),
              wl->program(isa::SimdIsa::Mmx, 7).size());
    EXPECT_NE(wl->program(isa::SimdIsa::Mmx, 2).insts()[0].pc,
              wl->program(isa::SimdIsa::Mmx, 7).insts()[0].pc);
}

TEST(MediaWorkloadSuite, RotationCarriesMmxWeights)
{
    auto wl = MediaWorkload::build(WorkloadScale::Tiny);
    auto rot = wl->rotation(isa::SimdIsa::Mom);
    ASSERT_EQ(rot.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(rot[static_cast<size_t>(i)].mmxEq,
                  wl->program(isa::SimdIsa::Mmx, i).mix().eqInsts);
    }
}

TEST(Integration, PaperOrderingClaimsAtTinyScale)
{
    auto wl = MediaWorkload::build(WorkloadScale::Tiny);

    auto run = [&](isa::SimdIsa simd, int threads, mem::MemModel model) {
        cpu::CoreConfig cfg = cpu::CoreConfig::preset(threads, simd);
        core::Simulation sim(cfg, model, wl->rotation(simd));
        core::RunResult r = sim.run();
        return simd == isa::SimdIsa::Mom ? r.eipc : r.ipc;
    };

    // SMT scales under ideal memory.
    double mmx1 = run(isa::SimdIsa::Mmx, 1, mem::MemModel::Perfect);
    double mmx4 = run(isa::SimdIsa::Mmx, 4, mem::MemModel::Perfect);
    EXPECT_GT(mmx4, mmx1 * 1.3);

    // MOM EIPC beats MMX IPC on the same machine shape.
    double mom4 = run(isa::SimdIsa::Mom, 4, mem::MemModel::Perfect);
    EXPECT_GT(mom4, mmx4 * 0.95);

    // Real memory costs performance; the decoupled hierarchy recovers
    // part of it for the 8-thread MOM machine.
    double momIdeal8 = run(isa::SimdIsa::Mom, 8, mem::MemModel::Perfect);
    double momConv8 =
        run(isa::SimdIsa::Mom, 8, mem::MemModel::Conventional);
    double momDec8 = run(isa::SimdIsa::Mom, 8, mem::MemModel::Decoupled);
    EXPECT_LT(momConv8, momIdeal8);
    EXPECT_GT(momDec8, momConv8 * 0.95);
}

} // namespace
} // namespace momsim::workloads
