/**
 * @file
 * Pipeline tests for the SMT core using small synthetic programs:
 * throughput of independent work, serialization of dependence chains,
 * structural limits (issue widths, unpipelined dividers, the single MOM
 * media FU), branch misprediction flushes, SMT scaling and fetch
 * policies, plus full-commit correctness invariants.
 */

#include <gtest/gtest.h>

#include "core/simulation.hh"
#include "cpu/smt_core.hh"
#include "trace/builder.hh"
#include "trace/mmx_emitter.hh"
#include "trace/mom_emitter.hh"
#include "trace/scalar_emitter.hh"

namespace momsim::cpu
{
namespace
{

using trace::IVal;
using trace::MmxEmitter;
using trace::MomEmitter;
using trace::Program;
using trace::ScalarEmitter;
using trace::SVal;
using trace::TraceBuilder;

constexpr uint32_t kBase = 16u << 20;

struct RunOutcome
{
    uint64_t cycles = 0;
    uint64_t commits = 0;
    double ipc = 0.0;
    uint64_t mispredicts = 0;
};

/** Run one or more copies of a program to completion on a fresh core. */
RunOutcome
runToCompletion(const Program &prog, CoreConfig cfg,
                mem::MemModel model = mem::MemModel::Perfect,
                uint64_t maxCycles = 2'000'000)
{
    auto mem = mem::makeMemorySystem(model);
    SmtCore core(cfg, *mem);
    for (int tid = 0; tid < cfg.numThreads; ++tid)
        core.attachProgram(tid, &prog);
    auto allIdle = [&] {
        for (int tid = 0; tid < cfg.numThreads; ++tid) {
            if (!core.threadIdle(tid))
                return false;
        }
        return true;
    };
    while (!allIdle() && core.now() < maxCycles)
        core.step();
    EXPECT_LT(core.now(), maxCycles) << "core appears hung";
    RunOutcome out;
    out.cycles = core.now();
    out.commits = core.committedRecords();
    out.ipc = core.ipc();
    out.mispredicts = core.stats().get("mispredicts");
    return out;
}

/** A straight line of independent integer immediates. */
Program
independentIntProgram(int count)
{
    TraceBuilder tb("indep", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    for (int i = 0; i < count; ++i)
        s.imm(i);
    return tb.take();
}

/** A serial dependence chain of adds. */
Program
chainProgram(int count)
{
    TraceBuilder tb("chain", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    IVal acc = s.imm(0);
    for (int i = 0; i < count; ++i)
        acc = s.addi(acc, 1);
    return tb.take();
}

TEST(SmtCore, IndependentWorkApproachesIntIssueWidth)
{
    Program p = independentIntProgram(4000);
    CoreConfig cfg = CoreConfig::preset(1, isa::SimdIsa::Mmx);
    RunOutcome out = runToCompletion(p, cfg);
    EXPECT_EQ(out.commits, p.size());
    // 4-wide integer issue: expect IPC comfortably above 3.
    EXPECT_GT(out.ipc, 3.0);
    EXPECT_LE(out.ipc, 4.05);
}

TEST(SmtCore, DependenceChainSerializes)
{
    Program p = chainProgram(3000);
    CoreConfig cfg = CoreConfig::preset(1, isa::SimdIsa::Mmx);
    RunOutcome out = runToCompletion(p, cfg);
    EXPECT_EQ(out.commits, p.size());
    EXPECT_GT(out.ipc, 0.8);
    EXPECT_LT(out.ipc, 1.2);
}

TEST(SmtCore, UnpipelinedDividerThrottles)
{
    TraceBuilder tb("divs", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    IVal d = s.imm(7);
    for (int i = 0; i < 100; ++i)
        s.div(s.imm(1000 + i), d);   // independent divides
    Program p = tb.take();
    CoreConfig cfg = CoreConfig::preset(1, isa::SimdIsa::Mmx);
    RunOutcome out = runToCompletion(p, cfg);
    // 100 divides at 20 cycles each on one unpipelined unit.
    EXPECT_GT(out.cycles, 100u * 20u - 40u);
}

TEST(SmtCore, LoopBranchesArePredictable)
{
    TraceBuilder tb("loop", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    IVal n = s.imm(500);
    uint32_t head = s.loopHead();
    for (int i = 0; i < 500; ++i) {
        s.imm(i);
        n = s.subi(n, 1);
        s.loopBack(head, n, i + 1 < 500);
    }
    Program p = tb.take();
    CoreConfig cfg = CoreConfig::preset(1, isa::SimdIsa::Mmx);
    RunOutcome out = runToCompletion(p, cfg);
    EXPECT_EQ(out.commits, p.size());
    // Gshare learns the backward branch quickly: only a handful of
    // mispredicts out of 500.
    EXPECT_LT(out.mispredicts, 25u);
}

TEST(SmtCore, RandomBranchesMispredictAndStillCommitExactly)
{
    TraceBuilder tb("rand", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    uint32_t lfsr = 0xACE1;
    for (int i = 0; i < 800; ++i) {
        IVal c = s.imm(static_cast<int32_t>(lfsr & 1));
        s.condBr(c, (lfsr & 1) != 0);
        lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xB400u);
        s.imm(i);
    }
    Program p = tb.take();
    CoreConfig cfg = CoreConfig::preset(1, isa::SimdIsa::Mmx);
    RunOutcome out = runToCompletion(p, cfg);
    // Everything commits exactly once despite heavy flushing.
    EXPECT_EQ(out.commits, p.size());
    EXPECT_GT(out.mispredicts, 100u);
    // Each mispredict costs cycles: IPC must be visibly depressed.
    EXPECT_LT(out.ipc, 3.0);
}

TEST(SmtCore, LoadLatencyRespectedUnderPerfectMemory)
{
    TraceBuilder tb("loads", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    uint32_t buf = tb.alloc(4096);
    IVal base = s.imm(static_cast<int32_t>(buf));
    IVal acc = s.imm(0);
    for (int i = 0; i < 500; ++i) {
        IVal v = s.loadI32(base, (i * 4) % 4096);
        acc = s.add(acc, v);
    }
    Program p = tb.take();
    CoreConfig cfg = CoreConfig::preset(1, isa::SimdIsa::Mmx);
    RunOutcome out = runToCompletion(p, cfg);
    EXPECT_EQ(out.commits, p.size());
    // Chain through acc: one add per load, IPC near 2 (load + add pairs).
    EXPECT_GT(out.ipc, 1.2);
}

TEST(SmtCore, MomFuOccupancyMatchesStreamLength)
{
    // Two dependent stream ops of length 16 on a 2-lane FU: each needs
    // 8 cycles of occupancy.
    TraceBuilder tb("mom", isa::SimdIsa::Mom, kBase);
    ScalarEmitter s(tb);
    MomEmitter mv(tb);
    uint32_t buf = tb.alloc(4096);
    mv.setLen(s.imm(16));
    IVal base = s.imm(static_cast<int32_t>(buf));
    SVal v = mv.loadQ(base, 0, 8);
    for (int i = 0; i < 50; ++i)
        v = mv.addQH(v, v);
    mv.storeQ(base, 2048, 8, v);
    Program p = tb.take();
    CoreConfig cfg = CoreConfig::preset(1, isa::SimdIsa::Mom);
    RunOutcome out = runToCompletion(p, cfg);
    EXPECT_EQ(out.commits, p.size());
    // 50 chained stream adds x ceil(16/2)=8 cycles occupancy >= 400.
    EXPECT_GT(out.cycles, 390u);
}

TEST(SmtCore, MomStreamMemoryExpandsElements)
{
    TraceBuilder tb("mommem", isa::SimdIsa::Mom, kBase);
    ScalarEmitter s(tb);
    MomEmitter mv(tb);
    uint32_t buf = tb.alloc(1 << 16);
    mv.setLen(s.imm(16));
    IVal base = s.imm(static_cast<int32_t>(buf));
    for (int i = 0; i < 20; ++i) {
        SVal v = mv.loadQ(base, i * 128, 8);
        mv.storeQ(base, 32768 + i * 128, 8, v);
    }
    Program p = tb.take();
    CoreConfig cfg = CoreConfig::preset(1, isa::SimdIsa::Mom);
    RunOutcome out = runToCompletion(p, cfg);
    EXPECT_EQ(out.commits, p.size());
    // 40 stream ops x 16 elements at <=2 elements/cycle: >= 320 cycles.
    EXPECT_GT(out.cycles, 300u);
}

TEST(SmtCore, SmtScalingOnNarrowPrograms)
{
    // A serial chain leaves most of the machine idle; adding a second
    // thread should give close to 2x aggregate throughput.
    Program p = chainProgram(2000);
    RunOutcome one =
        runToCompletion(p, CoreConfig::preset(1, isa::SimdIsa::Mmx));
    RunOutcome two =
        runToCompletion(p, CoreConfig::preset(2, isa::SimdIsa::Mmx));
    EXPECT_GT(two.ipc, one.ipc * 1.7);
    RunOutcome four =
        runToCompletion(p, CoreConfig::preset(4, isa::SimdIsa::Mmx));
    EXPECT_GT(four.ipc, one.ipc * 3.2);
}

TEST(SmtCore, AllFetchPoliciesCompleteAndPerformSanely)
{
    Program p = chainProgram(1500);
    for (FetchPolicy pol : { FetchPolicy::RoundRobin, FetchPolicy::ICount,
                             FetchPolicy::OCount, FetchPolicy::Balance }) {
        CoreConfig cfg = CoreConfig::preset(4, isa::SimdIsa::Mmx, pol);
        RunOutcome out = runToCompletion(p, cfg);
        EXPECT_EQ(out.commits, p.size() * 4) << toString(pol);
        EXPECT_GT(out.ipc, 2.5) << toString(pol);
    }
}

TEST(SmtCore, RealMemorySlowerThanPerfect)
{
    TraceBuilder tb("stream", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    uint32_t buf = tb.alloc(512 * 1024);
    IVal base = s.imm(static_cast<int32_t>(buf));
    IVal acc = s.imm(0);
    for (int i = 0; i < 4000; ++i)
        acc = s.add(acc, s.loadI32(base, (i * 64) % (512 * 1024)));
    Program p = tb.take();
    CoreConfig cfg = CoreConfig::preset(1, isa::SimdIsa::Mmx);
    RunOutcome ideal = runToCompletion(p, cfg, mem::MemModel::Perfect);
    RunOutcome real = runToCompletion(p, cfg, mem::MemModel::Conventional);
    EXPECT_EQ(ideal.commits, real.commits);
    EXPECT_GT(real.cycles, ideal.cycles * 2);
}

TEST(Simulation, RotationRunsAllProgramsAndReportsEipc)
{
    Program a = chainProgram(400);
    Program b = independentIntProgram(600);
    std::vector<core::WorkloadProgram> rotation;
    for (int i = 0; i < 4; ++i) {
        rotation.push_back({ &a, a.mix().eqInsts });
        rotation.push_back({ &b, b.mix().eqInsts });
    }
    cpu::CoreConfig cfg = CoreConfig::preset(2, isa::SimdIsa::Mmx);
    core::Simulation sim(cfg, mem::MemModel::Perfect, rotation);
    core::RunResult res = sim.run();
    EXPECT_GE(res.completions, 8);
    EXPECT_GT(res.cycles, 0u);
    // For an MMX machine EIPC equals IPC by construction (same work).
    EXPECT_NEAR(res.eipc, res.ipc, 0.25);
}

TEST(Simulation, MoreThreadsMoreThroughputIdealMemory)
{
    Program p = chainProgram(1200);
    auto runWith = [&](int threads) {
        std::vector<core::WorkloadProgram> rotation(
            8, core::WorkloadProgram{ &p, p.mix().eqInsts });
        cpu::CoreConfig cfg = CoreConfig::preset(threads, isa::SimdIsa::Mmx);
        core::Simulation sim(cfg, mem::MemModel::Perfect, rotation);
        return sim.run().ipc;
    };
    double t1 = runWith(1), t4 = runWith(4);
    EXPECT_GT(t4, t1 * 2.5);
}

} // namespace
} // namespace momsim::cpu
