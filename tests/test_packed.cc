/**
 * @file
 * Property tests for the packed µ-SIMD semantics: every packed operation
 * is cross-checked against an independent scalar reference loop over
 * randomized inputs, plus hand-picked saturation corner cases.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "trace/builder.hh"
#include "trace/inst_arena.hh"
#include "trace/packed.hh"
#include "trace/program.hh"
#include "trace/scalar_emitter.hh"

namespace momsim::trace
{
namespace
{

class PackedRandom : public ::testing::TestWithParam<uint64_t>
{
  protected:
    Rng rng{GetParam()};
    uint64_t ra() { return rng.next(); }
};

TEST_P(PackedRandom, LaneAccessorsRoundTrip)
{
    for (int iter = 0; iter < 100; ++iter) {
        uint64_t v = ra();
        for (int i = 0; i < 8; ++i) {
            uint64_t w = setLaneB(v, i, 0xAB);
            EXPECT_EQ(laneB(w, i), 0xAB);
            for (int j = 0; j < 8; ++j) {
                if (j != i)
                    EXPECT_EQ(laneB(w, j), laneB(v, j));
            }
        }
        for (int i = 0; i < 4; ++i) {
            uint64_t w = setLaneW(v, i, 0xBEEF);
            EXPECT_EQ(laneUW(w, i), 0xBEEF);
        }
    }
}

TEST_P(PackedRandom, ByteAddSubSaturation)
{
    for (int iter = 0; iter < 200; ++iter) {
        uint64_t a = ra(), b = ra();
        uint64_t sum = paddusb(a, b), dif = psubusb(a, b);
        for (int i = 0; i < 8; ++i) {
            int s = laneB(a, i) + laneB(b, i);
            int d = laneB(a, i) - laneB(b, i);
            EXPECT_EQ(laneB(sum, i), s > 255 ? 255 : s);
            EXPECT_EQ(laneB(dif, i), d < 0 ? 0 : d);
        }
    }
}

TEST_P(PackedRandom, ByteMinMaxAvgAbsd)
{
    for (int iter = 0; iter < 200; ++iter) {
        uint64_t a = ra(), b = ra();
        uint64_t mx = pmaxub(a, b), mn = pminub(a, b);
        uint64_t av = pavgb(a, b), ad = pabsdb(a, b);
        for (int i = 0; i < 8; ++i) {
            int x = laneB(a, i), y = laneB(b, i);
            EXPECT_EQ(laneB(mx, i), std::max(x, y));
            EXPECT_EQ(laneB(mn, i), std::min(x, y));
            EXPECT_EQ(laneB(av, i), (x + y + 1) >> 1);
            EXPECT_EQ(laneB(ad, i), std::abs(x - y));
        }
    }
}

TEST_P(PackedRandom, SadMatchesScalar)
{
    for (int iter = 0; iter < 200; ++iter) {
        uint64_t a = ra(), b = ra();
        uint32_t ref = 0;
        for (int i = 0; i < 8; ++i)
            ref += std::abs(static_cast<int>(laneB(a, i)) - laneB(b, i));
        EXPECT_EQ(psadbw(a, b), ref);
    }
}

TEST_P(PackedRandom, WordArithmetic)
{
    for (int iter = 0; iter < 200; ++iter) {
        uint64_t a = ra(), b = ra();
        uint64_t sum = paddw(a, b), ssum = paddsw(a, b);
        uint64_t dif = psubw(a, b), sdif = psubsw(a, b);
        uint64_t mull = pmullw(a, b), mulh = pmulhw(a, b);
        for (int i = 0; i < 4; ++i) {
            int32_t x = laneW(a, i), y = laneW(b, i);
            EXPECT_EQ(laneW(sum, i), static_cast<int16_t>(x + y));
            EXPECT_EQ(laneW(ssum, i), satS16(x + y));
            EXPECT_EQ(laneW(dif, i), static_cast<int16_t>(x - y));
            EXPECT_EQ(laneW(sdif, i), satS16(x - y));
            EXPECT_EQ(laneW(mull, i), static_cast<int16_t>((x * y) & 0xFFFF));
            EXPECT_EQ(laneW(mulh, i), static_cast<int16_t>((x * y) >> 16));
        }
    }
}

TEST_P(PackedRandom, MaddPairsWords)
{
    for (int iter = 0; iter < 200; ++iter) {
        uint64_t a = ra(), b = ra();
        uint64_t r = pmaddwd(a, b);
        EXPECT_EQ(laneD(r, 0),
                  laneW(a, 0) * laneW(b, 0) + laneW(a, 1) * laneW(b, 1));
        EXPECT_EQ(laneD(r, 1),
                  laneW(a, 2) * laneW(b, 2) + laneW(a, 3) * laneW(b, 3));
    }
}

TEST_P(PackedRandom, ShiftFamilies)
{
    for (int iter = 0; iter < 100; ++iter) {
        uint64_t a = ra();
        for (int n : { 0, 1, 5, 15 }) {
            uint64_t sl = psllw(a, n), srl = psrlw(a, n), sra = psraw(a, n);
            for (int i = 0; i < 4; ++i) {
                EXPECT_EQ(laneUW(sl, i),
                          static_cast<uint16_t>(laneUW(a, i) << n));
                EXPECT_EQ(laneUW(srl, i),
                          static_cast<uint16_t>(laneUW(a, i) >> n));
                EXPECT_EQ(laneW(sra, i),
                          static_cast<int16_t>(laneW(a, i) >> n));
            }
        }
    }
}

TEST_P(PackedRandom, RoundingShiftBiasesTowardNearest)
{
    for (int iter = 0; iter < 200; ++iter) {
        uint64_t a = ra();
        for (int n : { 1, 3, 8 }) {
            uint64_t r = psrarw(a, n);
            for (int i = 0; i < 4; ++i) {
                int32_t x = laneW(a, i);
                EXPECT_EQ(laneW(r, i), static_cast<int16_t>(
                    (x + (1 << (n - 1))) >> n));
            }
        }
    }
}

TEST_P(PackedRandom, PackUnpackInverse)
{
    for (int iter = 0; iter < 200; ++iter) {
        // Halfwords already in byte range survive pack+unpack unchanged.
        uint64_t a = 0, b = 0;
        for (int i = 0; i < 4; ++i) {
            a = setLaneW(a, i, static_cast<uint16_t>(rng.below(256)));
            b = setLaneW(b, i, static_cast<uint16_t>(rng.below(256)));
        }
        uint64_t packed = packuswb(a, b);
        uint64_t zero = 0;
        uint64_t lo = punpcklbw(packed, zero);
        uint64_t hi = punpckhbw(packed, zero);
        EXPECT_EQ(lo, a);
        EXPECT_EQ(hi, b);
    }
}

TEST_P(PackedRandom, LogicalAndSelect)
{
    for (int iter = 0; iter < 100; ++iter) {
        uint64_t a = ra(), b = ra(), m = ra();
        EXPECT_EQ(pand(a, b), (a & b));
        EXPECT_EQ(pandn(a, b), (~a & b));
        EXPECT_EQ(por(a, b), (a | b));
        EXPECT_EQ(pxor(a, b), (a ^ b));
        uint64_t sel = pbitsel(m, a, b);
        for (int bit = 0; bit < 64; ++bit) {
            uint64_t want = ((m >> bit) & 1) ? ((a >> bit) & 1)
                                             : ((b >> bit) & 1);
            ASSERT_EQ((sel >> bit) & 1, want);
        }
    }
}

TEST_P(PackedRandom, Reductions)
{
    for (int iter = 0; iter < 200; ++iter) {
        uint64_t a = ra();
        uint32_t sb = 0;
        int32_t sw = 0;
        int16_t mx = laneW(a, 0), mn = laneW(a, 0);
        for (int i = 0; i < 8; ++i)
            sb += laneB(a, i);
        for (int i = 0; i < 4; ++i) {
            sw += laneW(a, i);
            mx = std::max(mx, laneW(a, i));
            mn = std::min(mn, laneW(a, i));
        }
        EXPECT_EQ(phsumbw(a), sb);
        EXPECT_EQ(phsumwd(a), sw);
        EXPECT_EQ(phmaxw(a), mx);
        EXPECT_EQ(phminw(a), mn);
    }
}

TEST_P(PackedRandom, WidenNarrowRoundTrip)
{
    for (int iter = 0; iter < 200; ++iter) {
        uint32_t four = static_cast<uint32_t>(ra());
        uint64_t wide = widenUB2QH(four);
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(laneUW(wide, i), (four >> (8 * i)) & 0xFF);
        EXPECT_EQ(narrowQH2UB(wide), four);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackedRandom,
                         ::testing::Values(1ull, 42ull, 0xDEADBEEFull));

TEST(Packed, PackSaturatesOutOfRange)
{
    uint64_t a = packW(-5, 300, 255, 256);
    uint64_t p = packuswb(a, a);
    EXPECT_EQ(laneB(p, 0), 0);
    EXPECT_EQ(laneB(p, 1), 255);
    EXPECT_EQ(laneB(p, 2), 255);
    EXPECT_EQ(laneB(p, 3), 255);
}

TEST(Packed, SplatHelpers)
{
    uint64_t w = splatW(-7);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(laneW(w, i), -7);
    uint64_t b = splatB(0x5A);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(laneB(b, i), 0x5A);
}

TEST(Packed, ShufflesAndSwaps)
{
    uint64_t a = packW(10, 20, 30, 40);
    uint64_t rev = pshufw(a, 0x1B);  // 00 01 10 11 -> lanes 3,2,1,0
    EXPECT_EQ(laneW(rev, 0), 40);
    EXPECT_EQ(laneW(rev, 1), 30);
    EXPECT_EQ(laneW(rev, 2), 20);
    EXPECT_EQ(laneW(rev, 3), 10);
    uint64_t sw = pswaphl(a);
    EXPECT_EQ(laneW(sw, 0), 30);
    EXPECT_EQ(laneW(sw, 1), 40);
    EXPECT_EQ(laneW(sw, 2), 10);
    EXPECT_EQ(laneW(sw, 3), 20);
}

TEST(Packed, PairAdd)
{
    uint64_t a = packW(100, -50, 32767, 1);
    uint64_t r = ppairaddw(a);
    EXPECT_EQ(laneD(r, 0), 50);
    EXPECT_EQ(laneD(r, 1), 32768);
}

TEST(Packed, CompareProducesMasks)
{
    uint64_t a = packW(5, -3, 7, 0);
    uint64_t b = packW(5, 0, -7, 0);
    uint64_t eq = pcmpeqw(a, b);
    EXPECT_EQ(laneUW(eq, 0), 0xFFFF);
    EXPECT_EQ(laneUW(eq, 1), 0);
    EXPECT_EQ(laneUW(eq, 2), 0);
    EXPECT_EQ(laneUW(eq, 3), 0xFFFF);
    uint64_t gt = pcmpgtw(a, b);
    EXPECT_EQ(laneUW(gt, 0), 0);
    EXPECT_EQ(laneUW(gt, 1), 0);
    EXPECT_EQ(laneUW(gt, 2), 0xFFFF);
    EXPECT_EQ(laneUW(gt, 3), 0);
}

TEST(Packed, Q15RoundMultiply)
{
    uint64_t a = splatW(16384);   // 0.5 in Q15
    uint64_t b = splatW(16384);
    uint64_t r = pmulrw(a, b);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(laneW(r, i), 8192);   // 0.25
    uint64_t corner = pmulrw(splatW(-32768), splatW(-32768));
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(laneW(corner, i), 32767);
}

// ---------------------------------------------------------------------
// Sealed trace layout: Program::seal() into an InstArena
// ---------------------------------------------------------------------

/** A small deterministic program with memory, branch and ALU records. */
Program
smallProgram(const std::string &name, int length)
{
    TraceBuilder tb(name, isa::SimdIsa::Mmx, 16u << 20);
    ScalarEmitter s(tb);
    uint32_t buf = tb.alloc(1 << 12);
    IVal base = s.imm(static_cast<int32_t>(buf));
    IVal acc = s.imm(0);
    for (int i = 0; i < length; ++i) {
        acc = s.add(acc, s.loadI32(base, (i * 8) % (1 << 12)));
        if (i % 5 == 0)
            s.condBr(acc, (i % 2) != 0);
    }
    return tb.take();
}

TEST(SealedTrace, SealPacksProgramsContiguouslyWithIdenticalContent)
{
    Program a = smallProgram("a", 40);
    Program b = smallProgram("b", 25);
    // Read through const refs: the mutable insts() overload is (by
    // design) illegal on sealed programs.
    const Program &ca = a;
    const Program &cb = b;
    // Snapshot the build-mode records and mix before sealing.
    std::vector<isa::TraceInst> beforeA(ca.insts().begin(),
                                        ca.insts().end());
    std::vector<isa::TraceInst> beforeB(cb.insts().begin(),
                                        cb.insts().end());
    MixSummary mixA = a.mix();

    InstArena arena;
    arena.reserve(a.size() + b.size());
    a.seal(arena);
    b.seal(arena);

    ASSERT_TRUE(a.sealed());
    ASSERT_TRUE(b.sealed());
    ASSERT_EQ(a.size(), beforeA.size());
    ASSERT_EQ(b.size(), beforeB.size());
    EXPECT_EQ(arena.size(), a.size() + b.size());
    EXPECT_EQ(arena.capacity(), arena.size());

    // Sealed spans are dense inside the arena block, in seal order.
    EXPECT_EQ(ca.insts().data(), arena.data());
    EXPECT_EQ(cb.insts().data(), arena.data() + a.size());

    // Byte-identical records through the view.
    EXPECT_EQ(std::memcmp(ca.insts().data(), beforeA.data(),
                          beforeA.size() * sizeof(isa::TraceInst)), 0);
    EXPECT_EQ(std::memcmp(cb.insts().data(), beforeB.data(),
                          beforeB.size() * sizeof(isa::TraceInst)), 0);

    // The memoized mix survives unchanged, and sealing is idempotent.
    EXPECT_EQ(a.mix().records, mixA.records);
    EXPECT_EQ(a.mix().eqInsts, mixA.eqInsts);
    EXPECT_EQ(a.mix().memAccesses, mixA.memAccesses);
    a.seal(arena);
    EXPECT_EQ(arena.size(), beforeA.size() + beforeB.size());
    EXPECT_EQ(ca.insts().data(), arena.data());
}

TEST(SealedTrace, RebasedCopiesOfSealedProgramsAreUnsealed)
{
    Program a = smallProgram("orig", 30);
    InstArena arena;
    arena.reserve(a.size());
    a.seal(arena);

    constexpr uint32_t kDelta = 1u << 20;
    const Program &ca = a;
    Program moved = a.rebased(kDelta, "copy");
    const Program &cmoved = moved;
    EXPECT_FALSE(moved.sealed());
    ASSERT_EQ(moved.size(), a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const isa::TraceInst &src = ca.insts()[i];
        const isa::TraceInst &dst = cmoved.insts()[i];
        EXPECT_EQ(dst.pc, src.pc + kDelta);
        EXPECT_EQ(dst.op, src.op);
    }
    // The copy is independent build storage: appending to it is legal
    // and leaves the sealed original untouched.
    EXPECT_EQ(moved.mix().eqInsts, a.mix().eqInsts);
}

} // namespace
} // namespace momsim::trace
