#!/usr/bin/env bash
# concurrent_dedup — the acceptance gate for the point-level scheduler:
#
#  N=4 clients fire the *same* sweep at one daemon concurrently and
#
#  (1) every response is byte-identical (responses pin their own
#      "client" tag, so the bytes carry no connection identity);
#  (2) the daemon's {"kind":"ping"} gauges prove each sweep point was
#      *executed exactly once* — pointsSimulated equals the sweep size,
#      and the other 3N-3 per-point answers are accounted as in-flight
#      joins (pointsDeduped) or memory-row-cache replays (memCacheHits);
#  (3) a serial `momsim batch --no-timing` replay of the same request
#      produces those same bytes — coalescing is unobservable in the
#      response, only in the gauges.
#
# Usage: concurrent_dedup.sh <momsim-binary> <workdir>
set -u

MOMSIM=$1
WORKDIR=${2:-.}
dir="$WORKDIR/concurrent_dedup"
rm -rf "$dir"
mkdir -p "$dir"

server_pid=""
fail() {
    echo "concurrent_dedup: FAIL: $*" >&2
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null
    exit 1
}

# One request, 4 points (2 isas x 2 thread counts), with a pinned
# client tag so all transports emit identical bytes.
req='{"schemaVersion":1,"id":"dedup","client":"gate","isas":["mmx","mom"],"threads":[1,2],"memModels":["perfect"],"quick":true,"maxCycles":100000}'
points=4
clients=4
printf '%s\n' "$req" > "$dir/request.jsonl"

# ---- serial reference bytes ----
timeout 120 "$MOMSIM" batch --no-timing < "$dir/request.jsonl" \
    > "$dir/batch.out" 2> "$dir/batch.err" \
    || fail "momsim batch exited $?"

# ---- one daemon, N concurrent identical submissions ----
sock="$dir/momsim.sock"
ready="$dir/ready"
"$MOMSIM" serve --unix "$sock" --no-timing --ready-file "$ready" \
    2> "$dir/serve.err" &
server_pid=$!
for _ in $(seq 1 200); do
    [ -f "$ready" ] && break
    kill -0 "$server_pid" 2>/dev/null \
        || fail "daemon died during startup (see $dir/serve.err)"
    sleep 0.05
done
[ -f "$ready" ] || fail "daemon never wrote --ready-file"

client_pids=
for i in $(seq 1 "$clients"); do
    timeout 120 "$MOMSIM" client --unix "$sock" \
        < "$dir/request.jsonl" > "$dir/client.$i.out" &
    client_pids="$client_pids $!"
done
for pid in $client_pids; do
    wait "$pid" || fail "a concurrent client exited non-zero"
done

# ---- (1)+(3) byte-identity across all clients and vs. batch ----
for i in $(seq 1 "$clients"); do
    cmp -s "$dir/batch.out" "$dir/client.$i.out" \
        || fail "client $i differs from the serial batch replay (see $dir/batch.out vs $dir/client.$i.out)"
done

# ---- (2) exactly-once execution, proven by the scheduler gauges ----
printf '{"kind":"ping"}\n' | timeout 120 "$MOMSIM" client --unix "$sock" \
    > "$dir/pong.out" || fail "ping client exited $?"
grep -q "\"pointsSimulated\":$points," "$dir/pong.out" \
    || fail "expected pointsSimulated:$points — a point was re-simulated or lost: $(cat "$dir/pong.out")"
# The remaining (clients-1)*points answers came from coalescing.
joined=$(sed -n 's/.*"pointsDeduped":\([0-9]*\).*/\1/p' "$dir/pong.out")
memhits=$(sed -n 's/.*"memCacheHits":\([0-9]*\).*/\1/p' "$dir/pong.out")
[ -n "$joined" ] && [ -n "$memhits" ] \
    || fail "pong carries no scheduler gauges: $(cat "$dir/pong.out")"
want=$(( (clients - 1) * points ))
[ $((joined + memhits)) -eq "$want" ] \
    || fail "coalesced answers joined=$joined + memhits=$memhits != $want: $(cat "$dir/pong.out")"

kill -TERM "$server_pid"
wait "$server_pid" || fail "daemon exited non-zero on SIGTERM"
server_pid=""

echo "concurrent_dedup: $clients identical concurrent sweeps byte-identical, $points points simulated exactly once ($joined joined, $memhits memory replays), exit 0"
