#!/usr/bin/env bash
# fabric_equivalence — the acceptance gate for the distributed sweep
# fabric (`momsim coord` + a fleet of `momsim serve` workers):
#
#  (1) a coordinator dealing fig6 --quick to two local workers prints
#      stdout byte-identical to the plain single-process run, and its
#      final render replays every point from the merged store
#      (simulated=0 — nothing is ever computed twice);
#  (2) SIGKILLing one worker mid-shard must not lose or corrupt the
#      sweep: the coordinator re-deals the dead worker's unfinished
#      points to the survivor and still exits 0 with byte-identical
#      stdout.
#
# Usage: fabric_equivalence.sh <momsim-binary> <workdir>
set -u

MOMSIM=$1
WORKDIR=${2:-.}
dir="$WORKDIR/fabric_equivalence"
rm -rf "$dir"
mkdir -p "$dir"

pids=""
fail() {
    echo "fabric_equivalence: FAIL: $*" >&2
    [ -n "$pids" ] && kill -9 $pids 2>/dev/null
    exit 1
}

# start_worker NAME [extra serve args...] — sets $port and appends to
# $pids; the worker publishes its ephemeral TCP port via --ready-file.
start_worker() {
    name=$1
    shift
    rm -f "$dir/$name.ready"
    "$MOMSIM" serve --port 0 --no-timing --ready-file "$dir/$name.ready" \
        "$@" 2> "$dir/$name.err" &
    worker_pid=$!
    pids="$pids $worker_pid"
    for _ in $(seq 1 200); do
        [ -f "$dir/$name.ready" ] && break
        kill -0 "$worker_pid" 2>/dev/null \
            || fail "worker $name died during startup (see $dir/$name.err)"
        sleep 0.05
    done
    [ -f "$dir/$name.ready" ] || fail "worker $name never wrote --ready-file"
    port=$(sed -n 's/^tcp:127\.0\.0\.1:\([0-9]*\)$/\1/p' "$dir/$name.ready")
    [ -n "$port" ] \
        || fail "no tcp address in $name ready file: $(cat "$dir/$name.ready")"
}

# ---- reference: the plain single-process run ----
timeout 300 "$MOMSIM" fig6 --quick > "$dir/ref.out" 2> "$dir/ref.err" \
    || fail "reference momsim fig6 --quick exited $?"
[ -s "$dir/ref.out" ] || fail "reference run printed nothing"

# ---- (1) happy path: coordinator + two workers, byte-identical ----
start_worker w1
port1=$port
start_worker w2
port2=$port

timeout 300 "$MOMSIM" coord --workers "127.0.0.1:$port1,127.0.0.1:$port2" \
    fig6 --quick > "$dir/coord.out" 2> "$dir/coord.err" \
    || fail "momsim coord exited $? (see $dir/coord.err)"
cmp -s "$dir/ref.out" "$dir/coord.out" \
    || fail "coordinator stdout differs from the single-process run" \
            "(see $dir/ref.out vs $dir/coord.out)"
grep -q ' simulated=0 ' "$dir/coord.err" \
    || fail "final render re-simulated points instead of replaying the" \
            "fleet's store (see $dir/coord.err)"
grep -q '\[coord\] plan:' "$dir/coord.err" \
    || fail "coordinator never logged its plan (see $dir/coord.err)"

# ---- (2) kill one worker mid-shard: re-deal, still byte-identical ----
# The victim runs --jobs 1 so its shard executes serially, leaving a
# wide window between its `[fabric] shard_run` log line (printed before
# execution starts) and shard completion.  A worker can still finish a
# small deal before the poll loop lands the SIGKILL, so the whole
# scenario retries a few times; one successful mid-shard kill passes.
killed_ok=""
for attempt in 1 2 3 4; do
    start_worker "victim$attempt" --jobs 1
    vport=$port
    vpid=$worker_pid

    timeout 300 "$MOMSIM" coord \
        --workers "127.0.0.1:$port1,127.0.0.1:$vport" \
        --worker-timeout-ms 60000 \
        fig6 --quick > "$dir/kill.out" 2> "$dir/kill.err" &
    coord_pid=$!
    pids="$pids $coord_pid"

    # Kill the victim the moment it starts executing a deal.
    for _ in $(seq 1 400); do
        grep -q '\[fabric\] shard_run' "$dir/victim$attempt.err" && break
        kill -0 "$coord_pid" 2>/dev/null || break
        sleep 0.05
    done
    kill -9 "$vpid" 2>/dev/null

    wait "$coord_pid"
    rc=$?
    [ "$rc" -eq 0 ] \
        || fail "coord exited $rc after worker kill (see $dir/kill.err)"
    cmp -s "$dir/ref.out" "$dir/kill.out" \
        || fail "stdout differs after worker kill" \
                "(see $dir/ref.out vs $dir/kill.out)"
    if grep -q 're-deal' "$dir/kill.err"; then
        killed_ok=yes
        break
    fi
    # The victim finished its whole shard before the kill landed; the
    # run was still byte-identical, but it did not exercise the
    # re-deal path.  Try again.
    echo "fabric_equivalence: attempt $attempt missed the mid-shard" \
         "window, retrying" >&2
done
[ -n "$killed_ok" ] \
    || fail "never caught a worker mid-shard in 4 attempts" \
            "(see $dir/kill.err)"

kill $pids 2>/dev/null
wait 2>/dev/null
pids=""

echo "fabric_equivalence: coord==solo byte-identical, render replayed" \
     "the fleet store (simulated=0), worker kill mid-shard re-dealt and" \
     "stayed byte-identical, exit 0"
