#!/usr/bin/env bash
# serve_equivalence — the acceptance gate for `momsim serve`:
#
#  (1) the same request stream answered via `momsim batch --no-timing`
#      and via a loopback `momsim client` against a running daemon is
#      byte-identical (batch and serve are two transports over one
#      SimService + ResponseSequencer);
#  (2) an abrupt client disconnect (`momsim client --abort`: send all,
#      RST without reading) must not take the daemon down — the next
#      client is served normally, still byte-identical;
#  (3) both transports work on one daemon: unix socket and TCP
#      (ephemeral port published through --ready-file);
#  (4) SIGTERM with a connection in flight drains gracefully: the
#      in-flight request is answered, the daemon exits 0.
#
# Usage: serve_equivalence.sh <momsim-binary> <workdir>
set -u

MOMSIM=$1
WORKDIR=${2:-.}
dir="$WORKDIR/serve_equivalence"
rm -rf "$dir"
mkdir -p "$dir"

server_pid=""
fail() {
    echo "serve_equivalence: FAIL: $*" >&2
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null
    exit 1
}

# The stream exercises the ok path, a structured error and a malformed
# line with a salvageable id — all three must cross the wire intact.
cat > "$dir/requests.jsonl" <<'EOF'
{"schemaVersion":1,"id":"eq-axes","isas":["mmx","mom"],"threads":[1],"memModels":["perfect"],"quick":true,"maxCycles":100000}
{"schemaVersion":1,"id":"eq-bad","workloads":["nonsense"],"quick":true}
{"id":"eq-mangled", this line is not json
EOF

# ---- reference runs: batch with the tags serve will auto-assign ----
# Daemon connections are tagged c<serial> in accept order; the batch
# runs below pin the same tags so each comparison is byte-for-byte.
for tag in c1 c3 c4; do
    timeout 120 "$MOMSIM" batch --no-timing --client "$tag" \
        < "$dir/requests.jsonl" > "$dir/batch.$tag.out" \
        2> "$dir/batch.$tag.err" \
        || fail "momsim batch --client $tag exited $?"
done

# ---- start one daemon on both transports ----
sock="$dir/momsim.sock"
ready="$dir/ready"
"$MOMSIM" serve --unix "$sock" --port 0 --no-timing \
    --ready-file "$ready" 2> "$dir/serve.err" &
server_pid=$!

for _ in $(seq 1 200); do
    [ -f "$ready" ] && break
    kill -0 "$server_pid" 2>/dev/null \
        || fail "daemon died during startup (see $dir/serve.err)"
    sleep 0.05
done
[ -f "$ready" ] || fail "daemon never wrote --ready-file"
port=$(sed -n 's/^tcp:127\.0\.0\.1:\([0-9]*\)$/\1/p' "$ready")
[ -n "$port" ] || fail "no tcp address in ready file: $(cat "$ready")"

# ---- (1) connection 1: unix loopback, byte-identical to batch ----
timeout 120 "$MOMSIM" client --unix "$sock" \
    < "$dir/requests.jsonl" > "$dir/serve.c1.out" \
    || fail "client (unix) exited $?"
cmp -s "$dir/batch.c1.out" "$dir/serve.c1.out" \
    || fail "serve (unix) differs from batch (see $dir/batch.c1.out vs $dir/serve.c1.out)"

# ---- (2) connection 2: abrupt disconnect; connection 3 must still
#          be served, byte-identically ----
timeout 120 "$MOMSIM" client --unix "$sock" --abort \
    < "$dir/requests.jsonl" || fail "client --abort exited $?"
kill -0 "$server_pid" 2>/dev/null \
    || fail "daemon died after abrupt client disconnect"
timeout 120 "$MOMSIM" client --unix "$sock" \
    < "$dir/requests.jsonl" > "$dir/serve.c3.out" \
    || fail "client (after abort) exited $?"
cmp -s "$dir/batch.c3.out" "$dir/serve.c3.out" \
    || fail "serve after abrupt disconnect differs from batch"

# ---- (3) connection 4: same daemon over TCP ----
timeout 120 "$MOMSIM" client --connect "127.0.0.1:$port" \
    < "$dir/requests.jsonl" > "$dir/serve.c4.out" \
    || fail "client (tcp) exited $?"
cmp -s "$dir/batch.c4.out" "$dir/serve.c4.out" \
    || fail "serve (tcp) differs from batch"

# ---- (4) SIGTERM with a request in flight: answered, exit 0 ----
fifo="$dir/fifo"
mkfifo "$fifo"
timeout 120 "$MOMSIM" client --unix "$sock" \
    < "$fifo" > "$dir/drain.out" &
client_pid=$!
exec 3> "$fifo"     # hold the write end open: connection stays live
printf '%s\n' '{"schemaVersion":1,"id":"drain-1","isas":["mmx"],"threads":[1],"memModels":["perfect"],"quick":true,"maxCycles":100000}' >&3
sleep 0.3           # let the request reach the daemon
kill -TERM "$server_pid"
sleep 0.3
exec 3>&-           # client EOF: the connection can now drain
wait "$client_pid" || fail "drain client exited non-zero"
wait "$server_pid"
rc=$?
[ "$rc" -eq 0 ] || fail "daemon exited $rc after SIGTERM drain (see $dir/serve.err)"
server_pid=""
grep -q '"id":"drain-1"' "$dir/drain.out" \
    || fail "in-flight request dropped during drain (see $dir/drain.out)"
grep -q '"ok":true' "$dir/drain.out" \
    || fail "in-flight request failed during drain (see $dir/drain.out)"
[ -S "$sock" ] && fail "daemon left its unix socket behind"

echo "serve_equivalence: batch==serve (unix+tcp), abrupt disconnect survived, SIGTERM drained in-flight work, exit 0"
